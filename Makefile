# Standard loops for the alfnet reproduction. Everything is pure Go
# stdlib; no tags, no generated code.

GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with real concurrency: the metrics registry is the only
# code meant to be hit from multiple goroutines, and parallel hosts the
# worker-pool dispatch experiment.
race:
	$(GO) test -race ./internal/metrics ./internal/core ./internal/otp ./internal/parallel

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem ./internal/metrics

check: build vet test race
