# Standard loops for the alfnet reproduction. Everything is pure Go
# stdlib; no tags, no generated code.

GO ?= go

.PHONY: build test race vet lint bench bench-json bench-flows bench-dtn bench-crypto fuzz soak soak-dtn soak-udp alloc-guard check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with real concurrency: the metrics registry is meant to
# be hit from multiple goroutines, parallel hosts the worker-pool
# dispatch experiment, buf's refcounts are atomic by contract, and the
# sharded endpoint (core + sim.Group + the experiments flow-scale
# sweep) drains per-shard schedulers from a worker pool — its
# determinism and near-linear-scaling tests must hold under -race.
# telemetry rides along: the flight recorder samples the same registry
# the workers write, and its barrier-sampled FlowScale determinism
# test is part of the experiments run.
race:
	$(GO) test -race ./internal/metrics ./internal/core ./internal/otp ./internal/parallel ./internal/buf ./internal/netsim ./internal/sim ./internal/telemetry ./internal/udplink
	$(GO) test -race -run 'FlowScale' ./internal/experiments

vet:
	$(GO) vet ./...

# Benchmarks across the whole tree (kernels, endpoints, tracer,
# registry). -run '^$' keeps the regular tests out of the timing run.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Archive today's benchmark numbers as JSON (op, ns/op, allocs) for
# cross-commit diffing: writes BENCH_<date>.json in the repo root.
BENCH_DATE := $(shell date +%Y-%m-%d)
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH_$(BENCH_DATE).json

# Archive the §7 flow-scaling curve (BenchmarkFlowScale at 1/2/4/8
# workers; 64 Ki flows per point) as BENCH_0006.json. The headline
# vMb/s figures are virtual-time throughput — deterministic for the
# seed, so the file diffs clean across hosts. docs/SCALING.md explains
# how to read it. `alfbench -flows N -workers W` runs the same
# experiment at arbitrary scale (the acceptance run is -flows 1000000).
bench-flows:
	$(GO) test -run '^$$' -bench 'FlowScale' -benchtime 1x -benchmem . | $(GO) run ./cmd/benchjson -o BENCH_0006.json

# Native fuzzers over the ALF wire formats. The budget is deliberately
# small so check stays fast; raise FUZZTIME for a real session.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzHandlePacket$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzHandleControl$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzHandleCustody$$' -fuzztime $(FUZZTIME) ./internal/core

# One seeded chaos pass: every scenario x policy plus the blackout
# shed/report assertions, and the overload family (closed-loop passes,
# fixed-rate collapses, both reproducible from fixed seeds — the
# TestDeterminism/TestOverloadDeterminism assertions), deterministic
# for the checked-in seeds. With SOAK_FLIGHTREC_DIR set, a failing
# headline run leaves its flight-recorder black-box JSON there (CI
# uploads the directory as an artifact on failure).
soak:
	$(GO) test -run 'TestScenarioMatrix|TestBlackoutShedsAndReports|TestDeterminism|TestOverloadClosedLoopNoCollapse|TestOverloadFixedRateCollapses|TestOverloadDeterminism' -v ./internal/faults/soak

# The DTN family: hours of virtual blackout on an 8-minute-one-way
# path, custody relays + the model-based rate controller versus the
# end-to-end baseline. Virtual-clock, deterministic, seed-swept — the
# whole multi-hour soak runs in about a second of wall time. Honors
# SOAK_FLIGHTREC_DIR like `make soak`.
soak-dtn:
	$(GO) test -count=1 -run 'TestDTN' -v ./internal/faults/soak

# The real-socket soak: authenticated ADU transfer across kernel
# loopback UDP with deterministic send-side drops, asserting the same
# exactly-once / intact / drained invariants as `make soak` — plus the
# plain link round-trip and lossy-conn determinism checks.
soak-udp:
	$(GO) test -count=1 -v ./internal/udplink

# Archive the DTN contrast (custody vs end-to-end over three seeds) as
# BENCH_0007.json in the repo root.
bench-dtn:
	$(GO) run ./cmd/alfchaos -dtn -all -json BENCH_0007.json

# Archive the crypto-plane numbers as BENCH_0008.json: the fused vs
# staged ChaCha20-Poly1305 kernels across payload sizes (internal/ilp,
# the headline is fused/staged >= 1.3x at 1 KiB), the cipher
# primitives, the end-to-end suite contrast (SendSteadyState cleartext
# vs scramble vs AEAD, all 0 allocs/op), and goodput over real
# loopback UDP sockets. -benchtime 1s keeps the numbers steady enough
# to diff across commits on a shared machine.
bench-crypto:
	$(GO) test -run '^$$' -bench 'AEAD|ChaCha20Block|XORKeyStream4KB|Poly1305_4KB|SendSteadyState|UDPLoopback' -benchtime 1s -benchmem \
		./internal/ilp ./internal/cipher ./internal/core ./internal/udplink \
		| $(GO) run ./cmd/benchjson -o BENCH_0008.json

# Static analysis beyond vet. staticcheck is not vendored; the target
# no-ops with a notice where the binary is absent (CI installs it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Allocation-regression gate: the steady-state datapath
# (send -> forward -> deliver, plus the FEC paths) must run at
# 0 allocs/op. The tests assert testing.AllocsPerRun == 0; the bench
# run reports the same numbers with -benchmem for the log.
alloc-guard:
	$(GO) test -count=1 -run 'ZeroAlloc' -v ./internal/core
	$(GO) test -run '^$$' -bench 'SendSteadyState|ReceivePath|FECSender|FECRepair|NetsimForward' -benchmem ./internal/core ./internal/netsim

check: build vet test race fuzz soak soak-dtn soak-udp alloc-guard
