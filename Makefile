# Standard loops for the alfnet reproduction. Everything is pure Go
# stdlib; no tags, no generated code.

GO ?= go

.PHONY: build test race vet lint bench bench-json fuzz soak alloc-guard check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with real concurrency: the metrics registry is meant to
# be hit from multiple goroutines, parallel hosts the worker-pool
# dispatch experiment, and buf's refcounts are atomic by contract.
race:
	$(GO) test -race ./internal/metrics ./internal/core ./internal/otp ./internal/parallel ./internal/buf ./internal/netsim ./internal/sim

vet:
	$(GO) vet ./...

# Benchmarks across the whole tree (kernels, endpoints, tracer,
# registry). -run '^$' keeps the regular tests out of the timing run.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Archive today's benchmark numbers as JSON (op, ns/op, allocs) for
# cross-commit diffing: writes BENCH_<date>.json in the repo root.
BENCH_DATE := $(shell date +%Y-%m-%d)
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH_$(BENCH_DATE).json

# Native fuzzers over the ALF wire formats. The budget is deliberately
# small so check stays fast; raise FUZZTIME for a real session.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzHandlePacket$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzHandleControl$$' -fuzztime $(FUZZTIME) ./internal/core

# One seeded chaos pass: every scenario x policy plus the blackout
# shed/report assertions, and the overload family (closed-loop passes,
# fixed-rate collapses, both reproducible from fixed seeds — the
# TestDeterminism/TestOverloadDeterminism assertions), deterministic
# for the checked-in seeds.
soak:
	$(GO) test -run 'TestScenarioMatrix|TestBlackoutShedsAndReports|TestDeterminism|TestOverloadClosedLoopNoCollapse|TestOverloadFixedRateCollapses|TestOverloadDeterminism' -v ./internal/faults/soak

# Static analysis beyond vet. staticcheck is not vendored; the target
# no-ops with a notice where the binary is absent (CI installs it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Allocation-regression gate: the steady-state datapath
# (send -> forward -> deliver, plus the FEC paths) must run at
# 0 allocs/op. The tests assert testing.AllocsPerRun == 0; the bench
# run reports the same numbers with -benchmem for the log.
alloc-guard:
	$(GO) test -count=1 -run 'ZeroAlloc' -v ./internal/core
	$(GO) test -run '^$$' -bench 'SendSteadyState|ReceivePath|FECSender|FECRepair|NetsimForward' -benchmem ./internal/core ./internal/netsim

check: build vet test race fuzz soak alloc-guard
