// Benchmark suite: one benchmark (or benchmark family) per table and
// figure in DESIGN.md §4. Kernel benches (T1, E2, E3, E5, F1, F5, A1)
// measure host CPU directly with testing.B; protocol experiments (F2,
// F3, F4, F6, F7, F8, A2) run one deterministic simulation per
// iteration and report their headline result via b.ReportMetric, so
// `go test -bench .` regenerates every number the paper's evaluation
// reports. cmd/alfbench prints the same results as tables.
package repro

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/checksum"
	alf "repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/scramble"
	"repro/internal/xcode"
)

func randBuf(n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(1)).Read(b)
	return b
}

func randInts(n int) []int32 {
	vs := make([]int32, n)
	r := rand.New(rand.NewSource(2))
	for i := range vs {
		vs[i] = int32(r.Uint32())
	}
	return vs
}

// sizes used throughout: 4 KB is the paper's "typical large packet
// today" (cache-resident); 4 MB exposes the memory-bound regime where
// the ILP argument is strongest on modern hosts.
var benchSizes = []int{4 << 10, 4 << 20}

func sizeName(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMB", n>>20)
	}
	return fmt.Sprintf("%dKB", n>>10)
}

// --- T1: Table 1 — copy and checksum in Mb/s. ---

func BenchmarkT1_Copy(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			src, dst := randBuf(n), make([]byte, n)
			b.SetBytes(int64(n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ilp.WordCopy(dst, src)
			}
		})
	}
}

func BenchmarkT1_Checksum(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			src := randBuf(n)
			b.SetBytes(int64(n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				checksum.Sum16(src)
			}
		})
	}
}

// --- E2: separate copy-then-checksum passes vs one fused loop. ---

func BenchmarkE2_SeparatePasses(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			src, dst := randBuf(n), make([]byte, n)
			b.SetBytes(int64(n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ilp.SeparateCopyThenChecksum(dst, src)
			}
		})
	}
}

func BenchmarkE2_FusedCopyChecksum(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			src, dst := randBuf(n), make([]byte, n)
			b.SetBytes(int64(n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ilp.FusedCopyChecksum(dst, src)
			}
		})
	}
}

// --- E3: presentation conversion vs copy. ---

func BenchmarkE3_Copy(b *testing.B) {
	src, dst := randBuf(4096), make([]byte, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ilp.WordCopy(dst, src)
	}
}

func BenchmarkE3_BEREncodeIntArray(b *testing.B) {
	ints := randInts(1024) // 4 KB of application data
	buf := make([]byte, 0, 8192)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = ilp.EncodeBERInt32s(buf[:0], ints)
	}
}

func BenchmarkE3_BERDecodeIntArray(b *testing.B) {
	enc := ilp.EncodeBERInt32s(nil, randInts(1024))
	out := make([]int32, 1024)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ilp.DecodeBERInt32sInto(enc, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_XDREncodeIntArray(b *testing.B) {
	v := xcode.Int32sValue(randInts(1024))
	buf := make([]byte, 0, 8192)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = (xcode.XDR{}).EncodeValue(buf[:0], v)
	}
}

func BenchmarkE3_LWTSEncodeIntArray(b *testing.B) {
	v := xcode.Int32sValue(randInts(1024))
	buf := make([]byte, 0, 8192)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = (xcode.LWTS{}).EncodeValue(buf[:0], v)
	}
}

// --- E4: the full layered stack, OCTET STRING vs INTEGER array. ---

func BenchmarkE4_StackOctetString(b *testing.B) {
	benchStack(b, false)
}

func BenchmarkE4_StackIntArray(b *testing.B) {
	benchStack(b, true)
}

func benchStack(b *testing.B, ints bool) {
	// One timed simulation per iteration batch through the experiments
	// package (which owns the rig); report app-level Mb/s.
	const valueBytes = 64 << 10
	rep, err := experiments.RunStack(xcode.BER{}, valueBytes, 4, 20*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	mbps := rep.OctetMbps
	if ints {
		mbps = rep.IntMbps
	}
	// Re-run the measured case under the bench clock for ns/op, then
	// attach the headline metric.
	b.ReportMetric(mbps, "Mb/s")
	b.ReportMetric(rep.Slowdown, "slowdown_vs_octet")
	b.ReportMetric(rep.PresentationShare*100, "%presentation")
}

// --- E5: conversion alone vs conversion with the checksum fused in. ---

func BenchmarkE5_ConvertOnly(b *testing.B) {
	ints := randInts(1024)
	buf := make([]byte, 0, 8192)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = ilp.EncodeBERInt32s(buf[:0], ints)
	}
}

func BenchmarkE5_ConvertChecksumFused(b *testing.B) {
	ints := randInts(1024)
	buf := make([]byte, 0, 8192)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = ilp.EncodeBERInt32sChecksum(buf[:0], ints)
	}
}

// --- F1: control path vs manipulation path, per packet. ---

func BenchmarkF1_ControlPath(b *testing.B) {
	hdr := make([]byte, 16)
	hdr[0] = 1
	ck := checksum.Sum16(hdr)
	hdr[12], hdr[13] = byte(ck>>8), byte(ck)
	sink := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !checksum.Verify16(hdr) {
			sink++
		}
		seq := int(hdr[2])<<24 | int(hdr[3])<<16 | int(hdr[4])<<8 | int(hdr[5])
		if seq == sink {
			sink++
		}
	}
	_ = sink
}

func BenchmarkF1_ManipulationPath(b *testing.B) {
	src, dst := randBuf(4096), make([]byte, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ilp.FusedCopyChecksum(dst, src)
	}
}

// --- F5: receive path with k stages, layered vs ILP-fused. ---

func BenchmarkF5_Layered(b *testing.B) {
	benchPipeline(b, true)
}

func BenchmarkF5_Fused(b *testing.B) {
	benchPipeline(b, false)
}

func benchPipeline(b *testing.B, layered bool) {
	const n = 256 << 10
	src := randBuf(n)
	dst := make([]byte, n)
	scratch := make([]byte, n)
	for k := 1; k <= 5; k++ {
		b.Run(fmt.Sprintf("stages=%d", k), func(b *testing.B) {
			stages, _ := ilp.StandardStages(k, 99)
			b.SetBytes(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if layered {
					ilp.LayeredPath(dst, scratch, src, stages)
				} else {
					ilp.FusedPath(dst, src, stages)
				}
			}
		})
	}
}

// --- A1 ablation: layered vs generic fused vs hand-fused. ---

func BenchmarkA1_Layered(b *testing.B) {
	const n = 256 << 10
	src, dst, scratch := randBuf(n), make([]byte, n), make([]byte, n)
	stages, _ := ilp.StandardStages(2, 99)
	b.SetBytes(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ilp.LayeredPath(dst, scratch, src, stages)
	}
}

func BenchmarkA1_GenericFused(b *testing.B) {
	const n = 256 << 10
	src, dst := randBuf(n), make([]byte, n)
	stages, _ := ilp.StandardStages(2, 99)
	b.SetBytes(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ilp.FusedPath(dst, src, stages)
	}
}

func BenchmarkA1_HandFused(b *testing.B) {
	const n = 256 << 10
	src, dst := randBuf(n), make([]byte, n)
	b.SetBytes(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ilp.FusedCopyChecksum(dst, src)
	}
}

// --- ALF receive-path kernels (stage one of two-stage processing). ---

func BenchmarkALF_FusedDecryptCopySum(b *testing.B) {
	const n = 4096
	src, dst := randBuf(n), make([]byte, n)
	b.SetBytes(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ilp.FusedDecryptCopySum(dst, src, 42, 0)
	}
}

func BenchmarkALF_SenderEncryptPath(b *testing.B) {
	const n = 4096
	src, dst := randBuf(n), make([]byte, n)
	b.SetBytes(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ilp.FusedEncryptCopySum(dst, src, 42, 0)
	}
}

func BenchmarkALF_KeystreamXORAt(b *testing.B) {
	const n = 4096
	buf := randBuf(n)
	b.SetBytes(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scramble.XORAt(42, 0, buf)
	}
}

// --- Simulation experiments: one deterministic run per iteration, ---
// --- headline result as a reported metric.                        ---

func BenchmarkF2_OTPUnderLoss(b *testing.B) {
	var pt experiments.F2Point
	var err error
	for i := 0; i < b.N; i++ {
		pt, err = experiments.RunF2(experiments.F2Config{Bytes: 1 << 20, Seed: int64(i + 1)}, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pt.OTPGoodputMbps, "goodput_Mb/s")
	b.ReportMetric(pt.OTPIdleFrac*100, "%app_idle")
}

func BenchmarkF2_ALFUnderLoss(b *testing.B) {
	var pt experiments.F2Point
	var err error
	for i := 0; i < b.N; i++ {
		pt, err = experiments.RunF2(experiments.F2Config{Bytes: 1 << 20, Seed: int64(i + 1)}, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pt.ALFGoodputMbps, "goodput_Mb/s")
	b.ReportMetric(pt.ALFIdleFrac*100, "%app_idle")
}

func BenchmarkF3_ADUSizeSweep(b *testing.B) {
	for _, size := range []int{256, 1024, 8 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("adu=%d", size), func(b *testing.B) {
			var pt experiments.F3Point
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = experiments.RunF3(experiments.F3Config{
					Bytes: 256 << 10, Seed: int64(i + 1)}, size)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.GoodputMbps, "goodput_Mb/s")
			b.ReportMetric(pt.PIntactMeasured*100, "%ADU_intact")
		})
	}
}

func BenchmarkF4_ATMReassembly(b *testing.B) {
	var pt experiments.F4Point
	var err error
	for i := 0; i < b.N; i++ {
		pt, err = experiments.RunF4(experiments.F4Config{
			Bytes: 128 << 10, Seed: int64(i + 1)}, 0.5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pt.GoodputMbps, "goodput_Mb/s")
	b.ReportMetric(pt.PADUMeasured*100, "%ADU_survival")
	b.ReportMetric(float64(pt.CellsPerADU), "cells/ADU")
}

func BenchmarkF6_ParallelALF(b *testing.B) {
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var pt experiments.F6Point
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = experiments.RunF6(experiments.F6Config{
					Bytes: 2 << 20, Seed: int64(i + 1)}, w)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.ALFMbps, "ALF_Mb/s")
			b.ReportMetric(pt.SerialMbps, "serial_Mb/s")
			b.ReportMetric(pt.Speedup, "speedup")
		})
	}
}

func BenchmarkF7_VideoUnderLoss(b *testing.B) {
	var pt experiments.F7Point
	var err error
	for i := 0; i < b.N; i++ {
		pt, err = experiments.RunF7(experiments.F7Config{
			Frames: 60, Seed: int64(i + 1)}, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pt.ALFOnTimeFrac*100, "%ALF_frames_on_time")
	b.ReportMetric(pt.OTPOnTimeFrac*100, "%OTP_frames_on_time")
}

func BenchmarkF8_Policy(b *testing.B) {
	cases := []struct {
		name   string
		policy alf.Policy
	}{
		{"sender-buffered", alf.SenderBuffered},
		{"app-recompute", alf.AppRecompute},
		{"no-retransmit", alf.NoRetransmit},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var pt experiments.F8Point
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = experiments.RunF8(experiments.F8Config{
					Bytes: 1 << 20, Seed: int64(i + 1)}, c.policy)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.GoodputMbps, "goodput_Mb/s")
			b.ReportMetric(pt.DeliveredFrac*100, "%delivered")
			b.ReportMetric(pt.MaxBufferedKB, "sender_buffer_KB")
		})
	}
}

func BenchmarkA2_InlineControl(b *testing.B) {
	var pt experiments.A2Point
	var err error
	for i := 0; i < b.N; i++ {
		pt, err = experiments.RunA2(1<<20, 0, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pt.AcksSent), "acks")
	b.ReportMetric(pt.GoodputMbps, "goodput_Mb/s")
}

func BenchmarkA2_OutOfBandControl(b *testing.B) {
	var pt experiments.A2Point
	var err error
	for i := 0; i < b.N; i++ {
		pt, err = experiments.RunA2(1<<20, 5*time.Millisecond, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pt.AcksSent), "acks")
	b.ReportMetric(pt.GoodputMbps, "goodput_Mb/s")
}

func BenchmarkF9_FECRecovery(b *testing.B) {
	for _, mode := range []string{"none", "nack", "fec", "fec+nack"} {
		b.Run(mode, func(b *testing.B) {
			var pt experiments.F9Point
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = experiments.RunF9(experiments.F9Config{
					Bytes: 1 << 20, Seed: int64(i + 1)}, 3, mode)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.DeliveredFrac*100, "%delivered")
			b.ReportMetric(pt.GoodputMbps, "goodput_Mb/s")
			b.ReportMetric(float64(pt.P95Latency.Milliseconds()), "p95_latency_ms")
		})
	}
}

// --- S1: sharded endpoint flow scaling (§7, docs/SCALING.md). ---
// `make bench-flows` archives this family as BENCH_0006.json. The
// headline unit is vMb/s — payload bits per *virtual* second summed
// over all shard trunks — which is deterministic for the seed and
// scales with the shard count on any host; ns/op and wall-clock
// measure only what the simulation costs this machine.

func BenchmarkFlowScale(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var pt experiments.FlowScalePoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = experiments.RunFlowScale(experiments.FlowScaleConfig{
					Flows: 65536, Shards: w, Workers: w, Seed: 6,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.AggMbps, "vMb/s")
			b.ReportMetric(pt.ADUsPerVSec, "ADUs/vsec")
			b.ReportMetric(float64(pt.MaxTrunkQueue), "max_trunk_queue")
			b.ReportMetric(pt.EventsPerSec, "events/s")
		})
	}
}

func BenchmarkE6_LayeredStack(b *testing.B) {
	rep, err := experiments.RunStack(xcode.BER{}, 64<<10, 4, 20*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.OctetMbps, "octet_Mb/s")
	b.ReportMetric(rep.IntMbps, "int32_Mb/s")
}

func BenchmarkE6_ALFILPStack(b *testing.B) {
	rep, err := experiments.RunStackILP(64<<10, 4, 20*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.OctetMbps, "octet_Mb/s")
	b.ReportMetric(rep.IntMbps, "int32_Mb/s")
}
