// Command alfbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4): the Table 1 kernel rates, the §4
// fusion and presentation experiments, and the §5-§7 architectural
// claims as parameter sweeps.
//
// Usage:
//
//	alfbench                     # run everything
//	alfbench -experiment e2,f2   # run selected experiments
//	alfbench -quick              # shorter timing budgets
//	alfbench -csv                # machine-readable output
//	alfbench -seed 7             # change the simulation seed
//
// Flow-scale mode (the §7 sharded endpoint, see docs/SCALING.md)
// replaces the experiment suite when -flows is given:
//
//	alfbench -flows 1000000 -workers 8    # one point: F flows over 8 shards
//	alfbench -flows 65536                 # sweep workers 1,2,4,8
//	alfbench -flows 65536 -flowadus 8 -flowbytes 256
//
// Two more modes exercise the crypto plane:
//
//	alfbench -cipher                      # C1 only: fused vs staged AEAD kernels
//	alfbench -udp                         # authenticated transfer over real
//	                                      # loopback UDP sockets (must complete)
//	alfbench -udp -udploss 0.05           # same, healing 5% send-side drops
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	alf "repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/udplink"
	"repro/internal/xcode"
)

var (
	flagExperiment = flag.String("experiment", "all", "comma-separated experiment ids (t1,e2,e3,e4,e5,e6,f1,f2,f3,f4,f5,f6,f7,f8,f9,a1,a2,a3,c1) or 'all'")
	flagQuick      = flag.Bool("quick", false, "shorter timing budgets (noisier numbers)")
	flagCSV        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flagSeed       = flag.Int64("seed", 1, "simulation seed")

	flagFlows     = flag.Int("flows", 0, "flow-scale mode: concurrent flows through the sharded endpoint (0 = run the experiment suite)")
	flagWorkers   = flag.Int("workers", 0, "flow-scale mode: shard/worker count (0 = sweep 1,2,4,8)")
	flagFlowADUs  = flag.Int("flowadus", 4, "flow-scale mode: ADUs per flow")
	flagFlowBytes = flag.Int("flowbytes", 512, "flow-scale mode: payload bytes per ADU")

	flagCipher  = flag.Bool("cipher", false, "run only C1: fused vs staged ChaCha20-Poly1305 kernels")
	flagUDP     = flag.Bool("udp", false, "UDP mode: authenticated ADU transfer over real loopback sockets")
	flagUDPLoss = flag.Float64("udploss", 0, "UDP mode: send-side drop probability (SenderBuffered recovery must heal it)")
	flagUDPADUs = flag.Int("udpadus", 200, "UDP mode: ADUs to transfer")
)

func main() {
	flag.Parse()
	if *flagUDP {
		if err := runUDP(); err != nil {
			fmt.Fprintf(os.Stderr, "alfbench: udp: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *flagFlows > 0 {
		if err := runFlowScale(); err != nil {
			fmt.Fprintf(os.Stderr, "alfbench: flow-scale: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *flagCipher {
		*flagExperiment = "c1"
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*flagExperiment, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	sel := func(id string) bool { return all || want[id] }

	minTime := 200 * time.Millisecond
	if *flagQuick {
		minTime = 20 * time.Millisecond
	}

	runner := &runner{minTime: minTime, csv: *flagCSV, seed: *flagSeed}
	type exp struct {
		id string
		fn func() error
	}
	exps := []exp{
		{"t1", runner.t1},
		{"e2", runner.e2},
		{"e3", runner.e3},
		{"e4", runner.e4},
		{"e5", runner.e5},
		{"e6", runner.e6},
		{"f1", runner.f1},
		{"f2", runner.f2},
		{"f3", runner.f3},
		{"f4", runner.f4},
		{"f5", runner.f5},
		{"f6", runner.f6},
		{"f7", runner.f7},
		{"f8", runner.f8},
		{"f9", runner.f9},
		{"a1", runner.a1},
		{"a2", runner.a2},
		{"a3", runner.a3},
		{"c1", runner.c1},
	}
	ran := 0
	for _, e := range exps {
		if !sel(e.id) {
			continue
		}
		ran++
		if err := e.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "alfbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "alfbench: no experiment matches %q\n", *flagExperiment)
		os.Exit(2)
	}
}

// runFlowScale drives the sharded endpoint at population scale
// (docs/SCALING.md): -workers N runs one point; -workers 0 sweeps the
// 1/2/4/8 scaling curve archived as BENCH_0006.json.
func runFlowScale() error {
	cfg := experiments.FlowScaleConfig{
		Flows:    *flagFlows,
		FlowADUs: *flagFlowADUs,
		ADUBytes: *flagFlowBytes,
		Seed:     *flagSeed,
	}
	counts := []int{1, 2, 4, 8}
	if *flagWorkers > 0 {
		counts = []int{*flagWorkers}
	}
	t := stats.NewTable("workers", "flows", "agg vMb/s", "ADUs/vsec",
		"makespan vs", "max trunk queue", "events", "wall s")
	var pts []experiments.FlowScalePoint
	for _, n := range counts {
		c := cfg
		c.Shards, c.Workers = n, n
		p, err := experiments.RunFlowScale(c)
		if err != nil {
			return err
		}
		pts = append(pts, p)
		t.AddRow(p.Workers, p.Flows, p.AggMbps, p.ADUsPerVSec,
			p.VirtualSec, p.MaxTrunkQueue, p.EventsFired, p.WallSec)
	}
	title := fmt.Sprintf("S1: sharded endpoint flow scaling — %d flows x %d ADUs x %d B",
		cfg.Flows, cfg.FlowADUs, cfg.ADUBytes)
	paper := "ADUs carry their own delivery metadata, so receivers parallelize without a serializing reassembly point (§7); aggregate virtual throughput tracks the shard count"
	(&runner{csv: *flagCSV}).emit(title, paper, t)
	if len(pts) > 1 {
		base := pts[0].AggMbps
		fmt.Printf("scaling: %d workers sustain %.2fx the 1-worker aggregate (near-linear is the claim; >=3x at 8 is the bar)\n",
			pts[len(pts)-1].Workers, pts[len(pts)-1].AggMbps/base)
	}
	return nil
}

type runner struct {
	minTime time.Duration
	csv     bool
	seed    int64

	kernels *experiments.KernelReport // shared by t1/e2/e3/e5
}

func (r *runner) emit(title, paper string, t *stats.Table) {
	if r.csv {
		fmt.Printf("# %s\n%s", title, t.CSV())
		return
	}
	fmt.Printf("=== %s ===\n", title)
	if paper != "" {
		fmt.Printf("paper: %s\n", paper)
	}
	fmt.Println(t.String())
}

func (r *runner) kernelReport() *experiments.KernelReport {
	if r.kernels == nil {
		k := experiments.RunKernels(4096, r.minTime)
		r.kernels = &k
	}
	return r.kernels
}

func (r *runner) t1() error {
	k := r.kernelReport()
	t := stats.NewTable("operation", "Mb/s (this host)", "µVax (paper)", "R2000 (paper)")
	t.AddRow("Copy", k.Copy, 42, 130)
	t.AddRow("Checksum", k.Checksum, 60, 115)
	r.emit("T1: Table 1 — manipulation operation rates (4 KB buffers)",
		"copy 42/130, checksum 60/115 Mb/s; absolute rates scale with the host, the copy:checksum ratio is the shape", t)
	return nil
}

func (r *runner) e2() error {
	k := r.kernelReport()
	t := stats.NewTable("variant", "Mb/s", "vs copy")
	t.AddRow("copy only", k.Copy, 1.0)
	t.AddRow("checksum only", k.Checksum, k.Checksum/k.Copy)
	t.AddRow("separate passes (measured)", k.SeparateCopyChecksum, k.SeparateCopyChecksum/k.Copy)
	t.AddRow("separate passes (harmonic prediction)", k.PredictedSeparate, k.PredictedSeparate/k.Copy)
	t.AddRow("fused single loop", k.FusedCopyChecksum, k.FusedCopyChecksum/k.Copy)
	r.emit("E2: copy+checksum — separate passes vs one integrated loop",
		"130 & 115 Mb/s separately -> ~60 effective; fused loop 90 Mb/s (fused sits well above the serial composition)", t)
	return nil
}

func (r *runner) e3() error {
	k := r.kernelReport()
	t := stats.NewTable("operation", "Mb/s", "slower than copy")
	t.AddRow("word copy", k.Copy, 1.0)
	t.AddRow("BER encode []int32", k.BEREncode, k.Copy/k.BEREncode)
	t.AddRow("BER decode []int32", k.BERDecode, k.Copy/k.BERDecode)
	t.AddRow("XDR encode []int32", k.XDREncode, k.Copy/k.XDREncode)
	t.AddRow("LWTS encode []int32", k.LWTSEncode, k.Copy/k.LWTSEncode)
	r.emit("E3: presentation conversion vs copy (4 KB of 32-bit integers)",
		"ASN.1 conversion 28 Mb/s vs copy 130 Mb/s — a factor of 4-5; light-weight syntaxes close most of the gap", t)
	return nil
}

func (r *runner) e4() error {
	rep, err := experiments.RunStack(xcode.BER{}, 64<<10, 8, r.minTime)
	if err != nil {
		return err
	}
	t := stats.NewTable("payload", "stack throughput Mb/s")
	t.AddRow("long OCTET STRING (baseline)", rep.OctetMbps)
	t.AddRow("equal-length []int32 (conversion)", rep.IntMbps)
	t.AddRow("slowdown (x)", rep.Slowdown)
	t.AddRow("presentation share of cost (%)", rep.PresentationShare*100)
	r.emit("E4: full layered stack (OTP + record session + BER presentation)",
		"TCP+ISODE: conversion case ~30x slower, ~97% of stack overhead in presentation; with tuned code the paper expects the hand-coded 4-5x end of the range (footnote 5)", t)
	return nil
}

func (r *runner) e5() error {
	k := r.kernelReport()
	t := stats.NewTable("variant", "Mb/s")
	t.AddRow("BER conversion alone", k.BEREncode)
	t.AddRow("BER conversion + fused checksum", k.BEREncodeChecksum)
	t.AddRow("relative cost of adding checksum (%)",
		(1-k.BEREncodeChecksum/k.BEREncode)*100)
	r.emit("E5: checksum fused into the conversion loop",
		"28 Mb/s alone -> 24 Mb/s fused: the second manipulation is nearly free once the data is in cache", t)
	return nil
}

func (r *runner) e6() error {
	layered, err := experiments.RunStack(xcode.BER{}, 64<<10, 8, r.minTime)
	if err != nil {
		return err
	}
	ilpRep, err := experiments.RunStackILP(64<<10, 8, r.minTime)
	if err != nil {
		return err
	}
	t := stats.NewTable("stack", "octet Mb/s", "[]int32 (BER) Mb/s", "ILP speedup x")
	t.AddRow("layered (OTP + records + BER)", layered.OctetMbps, layered.IntMbps, "")
	t.AddRow("ALF + ILP (two fused passes)", ilpRep.OctetMbps, ilpRep.IntMbps, "")
	t.AddRow("speedup", ilpRep.OctetMbps/layered.OctetMbps, ilpRep.IntMbps/layered.IntMbps, "")
	r.emit("E6 (synthesis): the proposed architecture vs the status quo",
		"ALF's two-stage ILP receive (§6) against the one-pass-per-layer stack on the same workloads; once the other passes are fused away, presentation is what remains to tune (§5)", t)
	return nil
}

func (r *runner) f1() error {
	t := stats.NewTable("packet bytes", "control ns/pkt", "manipulation ns/pkt", "ratio")
	for _, n := range []int{64, 512, 4096, 16384} {
		c := experiments.RunControl(n, r.minTime/4)
		t.AddRow(n, c.ControlNs, c.ManipulationNs, c.ManipulationNs/c.ControlNs)
	}
	r.emit("F1: transfer control vs data manipulation cost per packet",
		"control is tens of instructions regardless of size; manipulation grows with every byte (§4)", t)
	return nil
}

func (r *runner) f2() error {
	pts, err := experiments.RunF2Sweep(experiments.F2Config{Seed: r.seed},
		[]float64{0, 0.5, 1, 2, 5, 10})
	if err != nil {
		return err
	}
	t := stats.NewTable("loss %", "OTP goodput Mb/s", "ALF goodput Mb/s",
		"OTP app idle %", "ALF app idle %")
	for _, p := range pts {
		t.AddRow(p.LossPct, p.OTPGoodputMbps, p.ALFGoodputMbps,
			p.OTPIdleFrac*100, p.ALFIdleFrac*100)
	}
	r.emit("F2: presentation pipeline under loss — in-order stream vs out-of-order ADUs",
		"a lost packet stops the in-order application 'and since it is the bottleneck, it will never catch up' (§5); ALF keeps the pipeline fed", t)
	return nil
}

func (r *runner) f3() error {
	pts, err := experiments.RunF3Sweep(experiments.F3Config{Seed: r.seed},
		[]int{64, 256, 1024, 4 << 10, 16 << 10, 64 << 10, 256 << 10})
	if err != nil {
		return err
	}
	t := stats.NewTable("ADU bytes", "P(intact) predicted", "P(intact) measured",
		"goodput Mb/s", "wire overhead x", "resends")
	for _, p := range pts {
		t.AddRow(p.ADUBytes, p.PIntactPredicted, p.PIntactMeasured,
			p.GoodputMbps, p.Overhead, p.Resends)
	}
	r.emit("F3: ADU size vs goodput at fixed bit-error rate",
		"ADU lengths should be reasonably bounded: tiny ADUs drown in headers, huge ADUs approach certain loss (§5)", t)
	return nil
}

func (r *runner) f4() error {
	pts, err := experiments.RunF4Sweep(experiments.F4Config{Seed: r.seed},
		[]float64{0, 0.1, 0.5, 1, 2})
	if err != nil {
		return err
	}
	t := stats.NewTable("cell loss %", "cells/ADU", "P(ADU) predicted",
		"P(ADU) measured", "goodput Mb/s", "resends")
	for _, p := range pts {
		t.AddRow(p.CellLossPct, p.CellsPerADU, p.PADUPredicted,
			p.PADUMeasured, p.GoodputMbps, p.Resends)
	}
	r.emit("F4: ADUs over ATM cells (AAL3/4-style adaptation, 44-byte net payload)",
		"cells are too small to be manipulation units; the adaptation layer detects cell loss and the ADU is the recovery unit (§5, fn 9)", t)
	return nil
}

func (r *runner) f5() error {
	p := experiments.RunPipeline(256<<10, r.minTime)
	t := stats.NewTable("stages", "layered Mb/s", "ILP fused Mb/s", "ILP advantage x")
	for k := 1; k <= 5; k++ {
		t.AddRow(k, p.LayeredMbps[k], p.FusedMbps[k], p.FusedMbps[k]/p.LayeredMbps[k])
	}
	r.emit("F5: receive path with k manipulation stages — one pass per layer vs one integrated loop (256 KB)",
		"the integrated loop reads and writes memory once regardless of stage count; the layered design pays a full pass per stage (§6)", t)
	return nil
}

func (r *runner) f6() error {
	pts, err := experiments.RunF6Sweep(experiments.F6Config{Seed: r.seed},
		[]int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	t := stats.NewTable("workers", "ALF dispatch Mb/s", "serial front end Mb/s", "speedup x")
	for _, p := range pts {
		t.AddRow(p.Workers, p.ALFMbps, p.SerialMbps, p.Speedup)
	}
	r.emit("F6: parallel receiver — self-dispatching ADUs vs a serial reassembly hot spot",
		"each ADU contains enough information to control its own delivery; without it all data funnels through one point (§7)", t)
	return nil
}

func (r *runner) f7() error {
	pts, err := experiments.RunF7Sweep(experiments.F7Config{Seed: r.seed},
		[]float64{0, 1, 3, 5, 10})
	if err != nil {
		return err
	}
	t := stats.NewTable("loss %", "ALF complete %", "ALF usable (complete+partial) %",
		"OTP on-time %", "OTP retransmits")
	for _, p := range pts {
		t.AddRow(p.LossPct, p.ALFOnTimeFrac*100,
			(p.ALFOnTimeFrac+p.ALFPartialFrac)*100,
			p.OTPOnTimeFrac*100, p.OTPRetransmits)
	}
	r.emit("F7: real-time video under loss — NoRetransmit ALF vs reliable ordered delivery",
		"for real-time media the application accepts less than perfect delivery and continues (§5); reliable ordered recovery arrives after the deadline", t)
	return nil
}

func (r *runner) f8() error {
	pts, err := experiments.RunF8All(experiments.F8Config{Seed: r.seed})
	if err != nil {
		return err
	}
	t := stats.NewTable("policy", "delivered %", "goodput Mb/s",
		"sender buffer KB", "resends", "recomputes", "reported lost")
	for _, p := range pts {
		t.AddRow(p.Policy.String(), p.DeliveredFrac*100, p.GoodputMbps,
			p.MaxBufferedKB, p.Resends, p.Recomputes, p.ReportedLost)
	}
	r.emit("F8: the three loss-recovery options (§5)",
		"buffering by the sender transport, recomputation by the sending application, or proceeding without retransmission — all expressible, with their distinct costs", t)
	_ = alf.SenderBuffered
	return nil
}

func (r *runner) f9() error {
	t := stats.NewTable("loss %", "mode", "delivered %", "goodput Mb/s",
		"mean latency", "p95 latency", "wire overhead x", "resends", "FEC recovered")
	for _, loss := range []float64{0.5, 3, 8} {
		pts, err := experiments.RunF9Sweep(experiments.F9Config{Seed: r.seed}, loss)
		if err != nil {
			return err
		}
		for _, p := range pts {
			t.AddRow(p.LossPct, p.Mode, p.DeliveredFrac*100, p.GoodputMbps,
				p.MeanLatency.String(), p.P95Latency.String(),
				p.WireOverhead, p.Resends, p.FECRecovered)
		}
	}
	r.emit("F9 (extension): ADU-level forward error correction (footnote 10)",
		"ADU-level FEC is explicitly permitted; one XOR parity per 4 fragments trades ~25% fixed bandwidth for retransmission-free recovery of single losses", t)
	return nil
}

func (r *runner) a1() error {
	p := experiments.RunPipeline(256<<10, r.minTime)
	t := stats.NewTable("engineering (2 stages: copy+checksum)", "Mb/s")
	t.AddRow("layered (one pass per stage)", p.LayeredMbps[2])
	t.AddRow("generic fused loop (indirect calls)", p.FusedMbps[2])
	t.AddRow("hand-fused kernel", p.HandFused2)
	t.AddRow("hand-fused 3-stage (copy+checksum+decrypt)", p.HandFused3)
	r.emit("A1 (ablation): the cost of generality in ILP",
		"'vertical integration' risk (§8): the hand kernel is fastest; the generic fused loop trades some of the win for maintainability", t)
	return nil
}

func (r *runner) a2() error {
	inband, err := experiments.RunA2(1<<20, 0, r.seed)
	if err != nil {
		return err
	}
	oob, err := experiments.RunA2(1<<20, 5*time.Millisecond, r.seed)
	if err != nil {
		return err
	}
	t := stats.NewTable("ack strategy", "acks sent", "acks/segment", "goodput Mb/s")
	t.AddRow("in-band (immediate)", inband.AcksSent, inband.AcksPerSeg, inband.GoodputMbps)
	t.AddRow("out-of-band (5 ms batch)", oob.AcksSent, oob.AcksPerSeg, oob.GoodputMbps)
	r.emit("A2 (ablation): in-band vs out-of-band acknowledgement control",
		"reduce to a minimum the number of in-band control operations (§3)", t)
	return nil
}

func (r *runner) c1() error {
	rep := experiments.RunCrypto([]int{256, 1024, 4096, 16384}, r.minTime)
	t := stats.NewTable("payload B", "staged enc+MAC Mb/s", "fused enc+MAC Mb/s",
		"fused dec+verify Mb/s", "fused/staged x")
	for _, p := range rep.Points {
		t.AddRow(p.Bytes, p.StagedMbps, p.FusedMbps, p.DecryptMbps, p.Speedup)
	}
	t.AddRow("legacy scramble XOR (4 KiB)", rep.ScrambleMbps, "", "", "")
	r.emit("C1: ChaCha20-Poly1305 — staged passes vs one fused ILP loop",
		"encryption and integrity are both data manipulations (§4); fusing them into one memory pass recovers the second pass's bandwidth, and the Poly1305 tag then replaces the Internet checksum outright", t)
	return nil
}

// runUDP moves an authenticated workload across real loopback UDP
// sockets (internal/udplink): the same endpoints the simulator drives,
// bound to kernel sockets, with the AEAD plane on. A run that violates
// any soak invariant (duplicate, corrupt, lost, undrained) fails.
func runUDP() error {
	res, err := udplink.RunSoak(udplink.SoakConfig{
		ADUs:     *flagUDPADUs,
		LossProb: *flagUDPLoss,
		Seed:     uint64(*flagSeed),
		Suite:    alf.SuiteAEAD,
	})
	if err != nil {
		return err
	}
	t := stats.NewTable("metric", "value")
	t.AddRow("ADUs delivered (exactly once, intact)", res.Delivered)
	t.AddRow("wire drops injected", res.WireDrops)
	t.AddRow("ADUs retransmitted", res.Resent)
	t.AddRow("tag failures", res.AuthFails)
	t.AddRow("elapsed", res.Elapsed.Round(time.Millisecond).String())
	(&runner{csv: *flagCSV}).emit("UDP: authenticated transfer over loopback sockets",
		"the ALF endpoints are simulator-agnostic: the same state machines run over kernel UDP, fused AEAD and all, with recovery healing real drops", t)
	return nil
}

func (r *runner) a3() error {
	t := stats.NewTable("loss process", "avg loss %", "FEC-only delivered %", "FEC recovered", "ADUs lost")
	for _, burst := range []bool{false, true} {
		name := "independent"
		if burst {
			name = "burst (Gilbert-Elliott)"
		}
		p, err := experiments.RunA3(experiments.F9Config{}, burst, r.seed+100)
		if err != nil {
			return err
		}
		t.AddRow(name, p.AvgLossPct, p.DeliveredFrac*100, p.FECRecovered, p.ADUsLost)
	}
	r.emit("A3 (ablation): FEC under independent vs bursty loss",
		"XOR parity recovers one loss per group; correlated loss defeats it — the boundary of footnote 10's suggestion",
		t)
	return nil
}
