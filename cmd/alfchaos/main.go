// Command alfchaos runs a named fault-injection scenario
// (internal/faults) against the ALF stack and the ordered-transport
// baseline sharing one simulated topology (internal/faults/soak), then
// prints the invariant summary and the full unified metric tree.
//
// The run is deterministic: (scenario, seed, duration, policy) fully
// determine the traffic, the fault schedule, and every loss. A clean
// run exits 0; any invariant violation is printed and exits 1, so the
// command doubles as a scriptable chaos gate.
//
// Usage:
//
//	alfchaos -scenario blackout              # trunk dark for a third of the run
//	alfchaos -scenario flap -seed 7          # asymmetric forward-path flapping
//	alfchaos -scenario random -duration 10s  # seeded random fault composition
//	alfchaos -all                            # every preset x every policy
//	alfchaos -scenario partition -hold       # down trunk parks packets instead
//	alfchaos -trace chaos.json               # record spans; on violation,
//	                                         # dump the culprits' timelines
//	                                         # and write a Perfetto trace
//	alfchaos -overload                       # congestion, not faults: 3 streams
//	                                         # at 18 Mb/s into an 8 Mb/s trunk,
//	                                         # closed-loop, no-collapse invariants
//	alfchaos -overload -mode fixed           # the open-loop baseline (collapses)
//	alfchaos -overload -all                  # every shape x both stances
//	alfchaos -dtn                            # interplanetary path: 8-min one-way
//	                                         # delay, two 40-min blackouts, custody
//	                                         # relays + model-based rate control
//	alfchaos -dtn -mode aimd                 # the end-to-end baseline (collapses)
//	alfchaos -dtn -all -json BENCH.json      # both stances x seed sweep, archived
//	alfchaos -dtn -mode aimd -flightrec box.json
//	                                         # attach the flight recorder: print
//	                                         # the incident timeline and leave the
//	                                         # black-box JSON dump for post-mortem
//
// Scenarios: flap, blackout, degrade, partition, random.
// Overload shapes: steady, burst, flash.
// DTN modes: custody, aimd.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	alf "repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/faults/soak"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

var (
	flagScenario = flag.String("scenario", "random", "fault scenario: flap, blackout, degrade, partition, random")
	flagSeed     = flag.Int64("seed", 1, "simulation seed (traffic, impairments, fault schedule)")
	flagDuration = flag.Duration("duration", 3*time.Second, "virtual horizon; faults heal by ~2/3 of it")
	flagPolicy   = flag.String("policy", "sender-buffered", "ALF recovery policy: sender-buffered, app-recompute, no-retransmit")
	flagADUs     = flag.Int("adus", 60, "ADUs submitted over the first 2/3 of the horizon")
	flagADU      = flag.Int("adu", 3000, "bytes per ADU")
	flagOTP      = flag.Int("otpbytes", 120_000, "OTP stream volume, bytes")
	flagHold     = flag.Bool("hold", false, "down trunk parks packets (HoldOnDown) instead of dropping")
	flagAll      = flag.Bool("all", false, "run every scenario x policy combination (summary only)")
	flagTree     = flag.Bool("tree", true, "print the unified metric tree after the summary")
	flagTrace    = flag.String("trace", "", "record the run with the span tracer; on violation, dump the violating ADUs' timelines and write Perfetto JSON here")

	flagOverload = flag.Bool("overload", false, "run the congestion overload family instead of a fault scenario")
	flagShape    = flag.String("shape", "steady", "overload arrival pattern: steady, burst, flash")
	flagMode     = flag.String("mode", "", "overload stance (closed/fixed, default closed) or DTN stance (custody/aimd, default custody)")

	flagDTN  = flag.Bool("dtn", false, "run the interplanetary DTN family instead of a fault scenario")
	flagJSON = flag.String("json", "", "with -dtn -all: archive the seed-swept contrast as JSON here")

	flagFlightRec = flag.String("flightrec", "", "attach the flight recorder to a single run: print the incident timeline and write the black-box JSON dump here (ignored with -all)")
)

// attachFlightRec builds the recorder for one single-run invocation,
// or nil when -flightrec is unset — the nil recorder costs nothing.
func attachFlightRec(horizon time.Duration, dets []telemetry.Detector) *telemetry.Recorder {
	if *flagFlightRec == "" {
		return nil
	}
	return soak.RecorderFor(horizon, dets...)
}

// finishFlightRec prints the incident timeline and writes the
// black-box JSON dump — the same artifact a failing CI soak leaves
// behind, here available on demand for passing runs too.
func finishFlightRec(rec *telemetry.Recorder) int {
	if rec == nil {
		return 0
	}
	fmt.Println()
	if err := rec.WriteIncidents(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
		return 2
	}
	if err := rec.WriteDumpFile(*flagFlightRec); err != nil {
		fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
		return 2
	}
	fmt.Printf("flight record (%d ticks, %d incidents) written to %s\n",
		rec.Ticks(), len(rec.Incidents()), *flagFlightRec)
	return 0
}

func main() {
	flag.Parse()
	if *flagDTN {
		if *flagAll {
			os.Exit(runDTNAll())
		}
		mode := *flagMode
		if mode == "" {
			mode = "custody"
		}
		os.Exit(runDTN(mode, *flagSeed, true))
	}
	if *flagOverload {
		mode := *flagMode
		if mode == "" {
			mode = "closed"
		}
		if *flagAll {
			os.Exit(runOverloadAll())
		}
		os.Exit(runOverload(*flagShape, mode, true))
	}
	if *flagAll {
		os.Exit(runAll())
	}
	os.Exit(runOne(*flagScenario, *flagPolicy, true))
}

// runOne executes a single scenario and prints its report. verbose
// additionally prints the metric tree (if -tree).
func runOne(scenario, policyName string, verbose bool) int {
	policy, err := parsePolicy(policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
		return 2
	}
	reg := metrics.New()
	var tracer *tracing.Tracer
	if *flagTrace != "" {
		tracer = tracing.New(nil) // soak.Run binds it to the run's clock
		// Chaos runs are long; the default event cap could truncate the
		// tail where a violation most likely lives. Runs are bounded by
		// the horizon, so a larger cap is safe.
		tracer.SetLimit(4 << 20)
	}
	var rec *telemetry.Recorder
	if verbose {
		rec = attachFlightRec(*flagDuration, soak.ChaosDetectors())
	}
	res, err := soak.Run(soak.Config{
		Seed:       *flagSeed,
		Scenario:   scenario,
		Duration:   *flagDuration,
		Policy:     policy,
		ADUs:       *flagADUs,
		ADUBytes:   *flagADU,
		OTPBytes:   *flagOTP,
		HoldOnDown: *flagHold,
		Metrics:    reg,
		Tracer:     tracer,
		Recorder:   rec,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
		return 2
	}

	printSummary(res)
	if verbose && *flagTree {
		fmt.Println()
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
			return 2
		}
	}
	if tracer != nil {
		if err := dumpTrace(tracer, res); err != nil {
			fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
			return 2
		}
	}
	if code := finishFlightRec(rec); code != 0 {
		return code
	}
	if !res.Passed() {
		return 1
	}
	return 0
}

// runOverload executes one overload scenario (congestion, not faults)
// and prints its no-collapse report. verbose additionally prints the
// metric tree (if -tree).
func runOverload(shape, mode string, verbose bool) int {
	ok := false
	for _, s := range soak.OverloadShapes {
		if s == shape {
			ok = true
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "alfchaos: unknown overload shape %q (want steady, burst, flash)\n", shape)
		return 2
	}
	if mode != "closed" && mode != "fixed" {
		fmt.Fprintf(os.Stderr, "alfchaos: unknown overload mode %q (want closed or fixed)\n", mode)
		return 2
	}
	reg := metrics.New()
	var tracer *tracing.Tracer
	if *flagTrace != "" {
		tracer = tracing.New(nil)
		tracer.SetLimit(4 << 20)
	}
	var rec *telemetry.Recorder
	if verbose {
		rec = attachFlightRec(*flagDuration, soak.OverloadDetectors())
	}
	res, err := soak.RunOverload(soak.OverloadConfig{
		Seed:     *flagSeed,
		Shape:    shape,
		Mode:     mode,
		Duration: *flagDuration,
		Metrics:  reg,
		Tracer:   tracer,
		Recorder: rec,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
		return 2
	}

	printOverloadSummary(res)
	if verbose && *flagTree {
		fmt.Println()
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
			return 2
		}
	}
	if tracer != nil {
		f, err := os.Create(*flagTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
			return 2
		}
		if err := tracer.WritePerfetto(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
			return 2
		}
		fmt.Printf("\nperfetto trace (%d events, %d dropped) written to %s\n",
			tracer.Len(), tracer.Dropped, *flagTrace)
	}
	if code := finishFlightRec(rec); code != 0 {
		return code
	}
	if !res.Passed() {
		return 1
	}
	return 0
}

// runOverloadAll sweeps every arrival shape under both sender stances,
// summary lines only. The exit code ignores the expected fixed-stance
// violations — open-loop collapse is the demonstration, not a failure
// of the gate. A closed-loop violation still exits 1.
func runOverloadAll() int {
	exit := 0
	for _, shape := range soak.OverloadShapes {
		for _, mode := range []string{"fixed", "closed"} {
			code := runOverload(shape, mode, false)
			if mode == "fixed" && code == 1 {
				code = 0
			}
			if code > exit {
				exit = code
			}
			fmt.Println()
		}
	}
	return exit
}

// printOverloadSummary renders the no-collapse report of one run.
func printOverloadSummary(res *soak.OverloadResult) {
	fmt.Printf("overload: %s arrivals, %s stance, seed %d, horizon %v\n",
		res.Shape, res.Mode, res.Seed, res.Horizon)
	fmt.Printf("load: %.0f Mb/s offered across %d streams into a %.0f Mb/s trunk\n",
		res.OfferedBps/1e6, len(res.Streams), res.CapacityBps/1e6)
	fmt.Printf("goodput: %.2f Mb/s against a %.2f Mb/s no-collapse floor\n",
		res.GoodputBps/1e6, res.GoodputTarget/1e6)
	fmt.Printf("shed: %d Droppable ADUs refused pre-wire; trunk tail-dropped %d packets\n",
		res.ShedADUs, res.TrunkDrops)
	for _, st := range res.Streams {
		fmt.Printf("stream %d: %d submitted, %d accepted, %d shed, %d delivered, "+
			"%d lost (%d Critical), rate %.2f Mb/s after %d changes, %d retx suppressed\n",
			st.StreamID, st.Submitted, st.Accepted, st.Shed, st.Delivered,
			st.Lost, st.CriticalLost, st.FinalRateBps/1e6, st.RateChanges,
			st.RetxSuppressed)
	}
	fmt.Printf("drain: quiescent at %v after %d post-horizon events\n",
		res.EndVirtual, res.DrainEvents)
	if res.Passed() {
		fmt.Println("invariants: all held (goodput floor, Critical protection, exactly-once, clean drain)")
		return
	}
	fmt.Printf("invariants: %d VIOLATED\n", len(res.Violations))
	const maxPrint = 12
	for i, v := range res.Violations {
		if i == maxPrint {
			fmt.Printf("  (… %d more)\n", len(res.Violations)-maxPrint)
			break
		}
		fmt.Printf("  ! %s\n", v)
	}
}

// runDTN executes one DTN scenario (interplanetary delay, conjunction
// blackouts) and prints its delay-tolerant invariant report. verbose
// additionally prints the metric tree (if -tree).
func runDTN(mode string, seed int64, verbose bool) int {
	ok := false
	for _, m := range soak.DTNModes {
		if m == mode {
			ok = true
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "alfchaos: unknown dtn mode %q (want custody or aimd)\n", mode)
		return 2
	}
	reg := metrics.New()
	var rec *telemetry.Recorder
	if verbose {
		rec = attachFlightRec(4*time.Hour, soak.DTNDetectors(soak.DTNConfig{Mode: mode}))
	}
	res, err := soak.RunDTN(soak.DTNConfig{Seed: seed, Mode: mode, Metrics: reg, Recorder: rec})
	if err != nil {
		fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
		return 2
	}
	printDTNSummary(res)
	if verbose && *flagTree {
		fmt.Println()
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
			return 2
		}
	}
	if code := finishFlightRec(rec); code != 0 {
		return code
	}
	if !res.Passed() {
		return 1
	}
	return 0
}

// runDTNAll sweeps both stances over three seeds, summary lines only,
// and (with -json) archives the contrast. The exit code ignores the
// expected aimd violations — end-to-end collapse at interplanetary
// delay is the demonstration, not a failure of the gate. A custody
// violation still exits 1.
func runDTNAll() int {
	type seedPoints struct {
		Seed   int64                  `json:"seed"`
		Points []experiments.DTNPoint `json:"points"`
	}
	var archive []seedPoints
	exit := 0
	for seed := int64(1); seed <= 3; seed++ {
		for _, mode := range soak.DTNModes {
			res, err := soak.RunDTN(soak.DTNConfig{Seed: seed, Mode: mode})
			if err != nil {
				fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
				return 2
			}
			printDTNSummary(res)
			fmt.Println()
			if mode == "custody" && !res.Passed() && exit < 1 {
				exit = 1
			}
		}
		if *flagJSON != "" {
			pts, err := experiments.RunDTNContrast(experiments.DTNConfig{Seed: seed})
			if err != nil {
				fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
				return 2
			}
			archive = append(archive, seedPoints{Seed: seed, Points: pts})
		}
	}
	if *flagJSON != "" {
		doc := struct {
			Date string       `json:"date"`
			Go   string       `json:"go"`
			DTN  []seedPoints `json:"dtn"`
		}{
			Date: time.Now().UTC().Format("2006-01-02"),
			Go:   runtime.Version(),
			DTN:  archive,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*flagJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "alfchaos: %v\n", err)
			return 2
		}
		fmt.Printf("dtn contrast archived to %s\n", *flagJSON)
	}
	return exit
}

// printDTNSummary renders the delay-tolerant report of one run.
func printDTNSummary(res *soak.DTNResult) {
	fmt.Printf("dtn: %s stance, seed %d, horizon %v (8-min one-way path, two 40-min blackouts)\n",
		res.Mode, res.Seed, res.Horizon)
	fmt.Printf("delivered: %d/%d ADUs, %.1f kb/s goodput, %d reported lost (%d Critical)\n",
		res.Delivered, res.Submitted, res.GoodputBps/1e3, res.LostADUs, res.CriticalLost)
	if res.Mode == "custody" {
		fmt.Printf("custody: %d releases at the sender, store peak %d B, %d evicted, "+
			"%d shed, %d ADUs re-originated, %d NACKs answered in one hop\n",
			res.CustodyReleased, res.RelayPeakBytes, res.RelayEvicted,
			res.RelayShed, res.RelayRetxADUs, res.NacksAnswered)
	} else {
		fmt.Printf("end-to-end: %d retention deadlines expired, %d NACKs nobody could fill\n",
			res.DeadlineDrops, res.UnfilledNacks)
	}
	fmt.Printf("drain: quiescent at %v after %d post-horizon events\n",
		res.EndVirtual, res.DrainEvents)
	if res.Passed() {
		fmt.Println("invariants: all held (Critical exactly-once, bounded custody storage, clean drain)")
		return
	}
	fmt.Printf("invariants: %d VIOLATED\n", len(res.Violations))
	const maxPrint = 12
	for i, v := range res.Violations {
		if i == maxPrint {
			fmt.Printf("  (… %d more)\n", len(res.Violations)-maxPrint)
			break
		}
		fmt.Printf("  ! %s\n", v)
	}
}

// runAll sweeps every preset against every policy, summary lines only.
func runAll() int {
	exit := 0
	for _, scenario := range faults.ScenarioNames {
		for _, policy := range []alf.Policy{alf.SenderBuffered, alf.AppRecompute, alf.NoRetransmit} {
			if code := runOne(scenario, policy.String(), false); code > exit {
				exit = code
			}
			fmt.Println()
		}
	}
	return exit
}

// printSummary renders the invariant report of one run.
func printSummary(res *soak.Result) {
	fmt.Printf("chaos: scenario %s, seed %d, horizon %v, policy %s\n",
		res.Scenario, res.Seed, res.Horizon, res.Policy)
	fmt.Printf("faults: %d down events, %d heals, %d flap cycles, %d blackouts, %d degrades, %d partitions\n",
		res.Faults.DownEvents, res.Faults.Heals, res.Faults.FlapCycles,
		res.Faults.Blackouts, res.Faults.Degrades, res.Faults.Partitions)
	fmt.Printf("trunk: %d packets dropped down, %d parked and replayed\n",
		res.TrunkDownDrops, res.TrunkHeld)
	fmt.Printf("alf: %d/%d ADUs delivered, %d reported lost, %d expired at sender, "+
		"%d resent, %d recomputed, %d unfilled NACKs\n",
		res.Delivered, res.Submitted, res.Lost, res.Expired,
		res.ResentADUs, res.RecomputeADUs, res.UnfilledNacks)
	fmt.Printf("alf: peak retention %d B, peak reassembly %d ADUs\n",
		res.PeakRetention, res.PeakReassembly)
	dead := "alive"
	if res.OTPDead {
		dead = "declared dead"
	}
	fmt.Printf("otp: %d/%d B delivered, %s (%d timeouts, %d retransmits)\n",
		res.OTPDelivered, res.OTPSent, dead, res.OTPTimeouts, res.OTPRetransmits)
	fmt.Printf("drain: quiescent at %v after %d post-horizon events\n",
		res.EndVirtual, res.DrainEvents)

	if res.Passed() {
		fmt.Println("invariants: all held (exactly-once accounting, no corruption, bounded state, clean drain)")
		return
	}
	fmt.Printf("invariants: %d VIOLATED\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("  ! %s\n", v)
	}
}

// dumpTrace writes the recorded run as Perfetto JSON and, when
// invariants broke, prints the violating ADUs' reconstructed
// timelines — the trace of the violating window, not just a counter.
func dumpTrace(tracer *tracing.Tracer, res *soak.Result) error {
	rep := tracer.Analyze()
	if !res.Passed() {
		fmt.Println()
		fmt.Println("trace of the violating window:")
		rep.WriteSummary(os.Stdout)
		const maxDump = 8
		for i, name := range res.ViolatedADUs {
			if i == maxDump {
				fmt.Printf("  (… %d more violating ADUs; open the Perfetto trace for the rest)\n",
					len(res.ViolatedADUs)-maxDump)
				break
			}
			fmt.Println()
			rep.WriteADU(os.Stdout, 0, name)
		}
	}
	f, err := os.Create(*flagTrace)
	if err != nil {
		return err
	}
	if err := tracer.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nperfetto trace (%d events, %d dropped) written to %s\n",
		tracer.Len(), tracer.Dropped, *flagTrace)
	return nil
}

// parsePolicy maps the flag to an ALF policy.
func parsePolicy(s string) (alf.Policy, error) {
	for _, p := range []alf.Policy{alf.SenderBuffered, alf.AppRecompute, alf.NoRetransmit} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}
