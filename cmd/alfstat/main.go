// Command alfstat runs a measured transfer scenario and renders the
// full unified metric tree (internal/metrics) as one table: the same
// workload carried by the ALF stack (internal/core) and by the ordered
// TCP-model transport (internal/otp) over identical lossy links, with
// every layer's counters, gauges, and histograms side by side.
//
// This makes the paper's two headline costs directly visible from one
// command:
//
//   - §4 control vs manipulation: the experiments.control_ns /
//     experiments.manipulation_ns gauges (per-packet control work is
//     size-independent; the data pass is cycles per byte), next to the
//     live ilp_pass_bytes counters from the run itself.
//   - §5 head-of-line blocking: otp.hol_stall_ns records how long the
//     in-order stream sat on data behind each gap, while
//     core.recv.adu_latency_ns shows ALF delivering every other ADU on
//     time.
//
// Usage:
//
//	alfstat                      # default scenario, full tree
//	alfstat -loss 5 -adus 500    # heavier loss, more ADUs
//	alfstat -policy no-retransmit -fec 4
//	alfstat -kernels=false       # skip the wall-clock §4 kernels
//	alfstat -ingest run.csv      # fold an `alfbench -csv` run into the tree
//	alfstat -series delivered    # flight-record the run, render matching
//	                             # series as sparkline rate-vs-time strips
//	alfstat -watch 5ms -seriescsv run.csv
//	                             # sample every 5ms of virtual time, write
//	                             # the recorded window as CSV
//
// Ingested alfbench values are registered as gauges in milli-units
// (value x1000, suffix _milli) because the registry stores integers.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	alf "repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/otp"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/xcode"
)

var (
	flagADUs    = flag.Int("adus", 200, "ADUs to transfer")
	flagADU     = flag.Int("adu", 4096, "bytes per ADU")
	flagLoss    = flag.Float64("loss", 2, "link loss percentage")
	flagRate    = flag.Float64("rate", 20e6, "link rate, bits/s")
	flagDelay   = flag.Duration("delay", 5*time.Millisecond, "one-way propagation delay")
	flagQueue   = flag.Int("queue", 64, "link queue limit, packets (0 = unlimited)")
	flagSeed    = flag.Int64("seed", 1, "simulation seed")
	flagPolicy  = flag.String("policy", "sender-buffered", "ALF recovery policy: sender-buffered, app-recompute, no-retransmit")
	flagFEC     = flag.Int("fec", 0, "ALF FEC group size (0 = off)")
	flagKey     = flag.Uint64("key", 0, "ALF stream key (0 = no encryption)")
	flagOTP     = flag.Bool("otp", true, "also run the ordered-transport comparison")
	flagKernels = flag.Bool("kernels", true, "measure the wall-clock §4 kernels (control vs manipulation)")
	flagQuick   = flag.Bool("quick", false, "shorter kernel timing budgets")
	flagIngest  = flag.String("ingest", "", "CSV file from `alfbench -csv` to fold into the tree (\"-\" = stdin)")
	flagOutage  = flag.Duration("outage", 0, "black out every data link for this long, 100ms into the run (0 = none)")
	flagOver    = flag.Bool("overload", false, "also run the fixed-vs-closed overload contrast through a shared bottleneck")
	flagShape   = flag.String("shape", "steady", "overload arrival pattern: steady, burst, flash")
	flagDTN     = flag.Bool("dtn", false, "also run the end-to-end-vs-custody contrast over an interplanetary path")

	flagSeries    = flag.String("series", "", "attach the flight recorder and render matching series as sparkline timelines (substring match, \"all\" = everything)")
	flagWatch     = flag.Duration("watch", 0, "flight-recorder sampling interval in virtual time (default 10ms; implies recording)")
	flagSeriesCSV = flag.String("seriescsv", "", "write the recorded series window as CSV here (\"-\" = stdout; implies recording)")
)

func main() {
	flag.Parse()
	reg := metrics.New()

	if *flagIngest != "" {
		if err := ingest(reg, *flagIngest); err != nil {
			fmt.Fprintf(os.Stderr, "alfstat: ingest: %v\n", err)
			os.Exit(1)
		}
	}

	// The flight recorder samples the scenario's registry on the
	// virtual clock, turning the end-of-run counter tree into
	// rate-over-time series. Any of the three flags opts in.
	var rec *telemetry.Recorder
	if *flagSeries != "" || *flagSeriesCSV != "" || *flagWatch > 0 {
		iv := *flagWatch
		if iv <= 0 {
			iv = 10 * time.Millisecond
		}
		rec = telemetry.New(telemetry.Config{
			Interval:  iv,
			Detectors: telemetry.DefaultDetectors(0, 0, int64(*flagQueue), 0),
		})
	}

	summary, err := runScenario(reg, rec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alfstat: %v\n", err)
		os.Exit(1)
	}

	if *flagOver {
		over, err := runOverloadContrast(reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alfstat: %v\n", err)
			os.Exit(1)
		}
		summary += over
	}

	if *flagDTN {
		dtn, err := runDTNContrast(reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alfstat: %v\n", err)
			os.Exit(1)
		}
		summary += dtn
	}

	if *flagKernels {
		minTime := 100 * time.Millisecond
		if *flagQuick {
			minTime = 20 * time.Millisecond
		}
		experiments.RunControlInto(reg, 64, minTime/4)
		experiments.RunControlInto(reg, 4096, minTime/4)
		experiments.RunPipelineInto(reg, 64<<10, minTime/4)
	}

	fmt.Print(summary)
	if *flagSeries != "" {
		fmt.Println()
		if err := rec.WriteSparklines(os.Stdout, *flagSeries, 60); err != nil {
			fmt.Fprintf(os.Stderr, "alfstat: %v\n", err)
			os.Exit(1)
		}
	}
	if *flagSeriesCSV != "" {
		out := os.Stdout
		if *flagSeriesCSV != "-" {
			f, err := os.Create(*flagSeriesCSV)
			if err != nil {
				fmt.Fprintf(os.Stderr, "alfstat: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := rec.WriteCSV(out); err != nil {
			fmt.Fprintf(os.Stderr, "alfstat: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Println()
	if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "alfstat: %v\n", err)
		os.Exit(1)
	}
}

// parsePolicy maps the flag to an ALF policy.
func parsePolicy(s string) (alf.Policy, error) {
	for _, p := range []alf.Policy{alf.SenderBuffered, alf.AppRecompute, alf.NoRetransmit} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

// runScenario drives the measured transfer and returns a short text
// summary; all metrics land in reg, and rec (optional) samples them on
// the virtual clock as the run progresses.
func runScenario(reg *metrics.Registry, rec *telemetry.Recorder) (string, error) {
	policy, err := parsePolicy(*flagPolicy)
	if err != nil {
		return "", err
	}
	sched := sim.NewScheduler()
	rec.Bind(sched, reg, sim.Time(0).Add(5*time.Minute))
	net := netsim.New(sched, *flagSeed)
	net.SetMetrics(reg)
	link := netsim.LinkConfig{
		RateBps:    *flagRate,
		Delay:      *flagDelay,
		QueueLimit: *flagQueue,
		LossProb:   *flagLoss / 100,
	}
	total := int64(*flagADUs) * int64(*flagADU)

	// The ALF path: out-of-order ADU delivery over a lossy duplex link.
	alfA, alfB := net.NewNode("alf-src"), net.NewNode("alf-dst")
	ab, ba := net.NewDuplex(alfA, alfB, link)
	cfg := alf.Config{
		StreamID: 1,
		Policy:   policy,
		FECGroup: *flagFEC,
		Key:      *flagKey,
		RateBps:  *flagRate * 0.95, // pace just under the wire
		Metrics:  reg,
	}
	snd, err := alf.NewSender(sched, ab.Send, cfg)
	if err != nil {
		return "", err
	}
	rcv, err := alf.NewReceiver(sched, ba.Send, cfg)
	if err != nil {
		return "", err
	}
	alfA.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	alfB.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })
	var alfBytes int64
	var alfDone sim.Time
	rcv.OnADU = func(a alf.ADU) {
		alfBytes += int64(len(a.Data))
		alfDone = sched.Now()
	}
	var alfLost int
	rcv.OnLost = func(uint64) { alfLost++ }
	// AppRecompute regenerates the deterministic payload on demand.
	snd.OnResend = func(name uint64) (uint64, xcode.SyntaxID, []byte, bool) {
		return name, xcode.SyntaxRaw, aduPayload(int(name), *flagADU), true
	}
	for i := 0; i < *flagADUs; i++ {
		if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, aduPayload(i, *flagADU)); err != nil {
			return "", err
		}
	}

	// The comparison path: the same bytes as one ordered stream over an
	// identical link pair.
	var conn *otp.Conn
	var otpBytes int64
	var otpDone sim.Time
	if *flagOTP {
		otpA, otpB := net.NewNode("otp-src"), net.NewNode("otp-dst")
		oab, oba := net.NewDuplex(otpA, otpB, link)
		ocfg := otp.Config{
			ConnID: 1, FastRetransmit: true, SendBuffer: int(total) + 1,
			Metrics: reg, MetricsLabels: []string{"role=snd"},
		}
		conn = otp.New(sched, oab.Send, ocfg)
		peer := otp.New(sched, oba.Send, otp.Config{
			ConnID: 1, FastRetransmit: true,
			Metrics: reg, MetricsLabels: []string{"role=rcv"},
		})
		otpA.SetHandler(func(p *netsim.Packet) { conn.HandleSegment(p.Payload) })
		otpB.SetHandler(func(p *netsim.Packet) { peer.HandleSegment(p.Payload) })
		peer.OnData = func(p []byte) {
			otpBytes += int64(len(p))
			otpDone = sched.Now()
		}
		if err := conn.Send(make([]byte, total)); err != nil {
			return "", err
		}
	}

	// An optional blackout over every link in the scenario: the summary
	// and the netsim.link.down_drops series then separate outage losses
	// from queue drops and line losses.
	if *flagOutage > 0 {
		inj := faults.New(sched, *flagSeed)
		inj.Blackout(net.Links(), 100*time.Millisecond, *flagOutage)
	}

	if err := sched.RunUntil(sim.Time(0).Add(5 * time.Minute)); err != nil {
		return "", err
	}
	rec.Sample() // final state, even if the run drained between ticks

	// Goodput gauges, from delivered bytes over each path's own
	// completion time (virtual clock, so deterministic per seed).
	goodput := func(bytes int64, at sim.Time) int64 {
		if at <= 0 {
			return 0
		}
		return int64(float64(bytes) * 8 / 1e3 / at.Seconds())
	}
	reg.Gauge("alfstat.goodput_kbps", "path=alf").Set(goodput(alfBytes, alfDone))
	if *flagOTP {
		reg.Gauge("alfstat.goodput_kbps", "path=otp").Set(goodput(otpBytes, otpDone))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %d ADUs x %d B, loss %.3g%%, rate %.3g Mb/s, delay %v, policy %s, fec %d, seed %d\n",
		*flagADUs, *flagADU, *flagLoss, *flagRate/1e6, *flagDelay, policy, *flagFEC, *flagSeed)
	fmt.Fprintf(&b, "alf: delivered %d/%d ADUs (%d B, %d lost) in %v\n",
		rcv.Stats.ADUsDelivered, *flagADUs, alfBytes, alfLost, alfDone)
	if *flagOTP {
		fmt.Fprintf(&b, "otp: delivered %d/%d B in %v\n", otpBytes, total, otpDone)
	}
	// Per-cause loss budget across every link: outage drops are a
	// different failure than congestion or line noise.
	var downDrops, queueDrops, lineLosses int64
	for _, l := range net.Links() {
		downDrops += l.Stats.DownDrops
		queueDrops += l.Stats.QueueDrops
		lineLosses += l.Stats.LineLosses
	}
	fmt.Fprintf(&b, "drops: %d down-link, %d queue, %d line\n",
		downDrops, queueDrops, lineLosses)
	return b.String(), nil
}

// runOverloadContrast runs the fixed-vs-closed overload experiment
// (three streams at 3:1 over a shared bottleneck) and registers each
// stance's headline numbers as alfstat.overload.* gauges, so the §3
// closed-loop argument shows up in the same tree as everything else.
func runOverloadContrast(reg *metrics.Registry) (string, error) {
	pts, err := experiments.RunOverloadContrast(experiments.OverloadConfig{
		Seed: *flagSeed, Shape: *flagShape,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, p := range pts {
		mode := "mode=" + p.Mode
		reg.Gauge("alfstat.overload.goodput_kbps", mode).Set(int64(p.GoodputMbps * 1e3))
		reg.Gauge("alfstat.overload.critical_lost", mode).Set(int64(p.CriticalLost))
		reg.Gauge("alfstat.overload.shed_adus", mode).Set(p.ShedADUs)
		reg.Gauge("alfstat.overload.trunk_drops", mode).Set(p.TrunkDrops)
		verdict := "no-collapse invariants held"
		if !p.Passed {
			verdict = "COLLAPSED (invariants violated)"
		}
		fmt.Fprintf(&b, "overload %-6s: %.2f Mb/s goodput (%.0f%% of capacity), "+
			"%d Critical lost, %d shed, %d trunk drops — %s\n",
			p.Mode, p.GoodputMbps, p.CapacityFrac*100, p.CriticalLost,
			p.ShedADUs, p.TrunkDrops, verdict)
	}
	return b.String(), nil
}

// runDTNContrast runs the end-to-end-vs-custody experiment (a
// three-hop path with 8-minute one-way delay and two 40-minute
// conjunction blackouts) and registers each stance's headline numbers
// as alfstat.dtn.* gauges, so the delay-tolerance argument shows up in
// the same tree as everything else.
func runDTNContrast(reg *metrics.Registry) (string, error) {
	pts, err := experiments.RunDTNContrast(experiments.DTNConfig{Seed: *flagSeed})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, p := range pts {
		mode := "mode=" + p.Mode
		reg.Gauge("alfstat.dtn.goodput_bps", mode).Set(int64(p.GoodputKbps * 1e3))
		reg.Gauge("alfstat.dtn.delivered_permille", mode).Set(int64(p.DeliveredFrac * 1e3))
		reg.Gauge("alfstat.dtn.critical_lost", mode).Set(int64(p.CriticalLost))
		reg.Gauge("alfstat.dtn.deadline_drops", mode).Set(p.DeadlineDrops)
		reg.Gauge("alfstat.dtn.relay_peak_bytes", mode).Set(p.RelayPeakBytes)
		reg.Gauge("alfstat.dtn.custody_released", mode).Set(p.CustodyReleased)
		reg.Gauge("alfstat.dtn.nacks_answered", mode).Set(p.NacksAnswered)
		verdict := "delay-tolerant invariants held"
		if !p.Passed {
			verdict = "COLLAPSED (invariants violated)"
		}
		fmt.Fprintf(&b, "dtn %-7s: %.0f%% delivered (%.1f kb/s), %d Critical lost, "+
			"%d deadline drops, %d custody releases, %d NACKs answered locally — %s\n",
			p.Mode, p.DeliveredFrac*100, p.GoodputKbps, p.CriticalLost,
			p.DeadlineDrops, p.CustodyReleased, p.NacksAnswered, verdict)
	}
	return b.String(), nil
}

// aduPayload builds the deterministic payload of ADU i.
func aduPayload(i, n int) []byte {
	p := make([]byte, n)
	for j := range p {
		p[j] = byte(i*31 + j)
	}
	return p
}

// ingest folds an `alfbench -csv` run into the registry: every numeric
// cell of every table becomes a gauge
// alfbench.<section>.<column>_milli{row=<first cell>} holding the
// value x1000.
func ingest(reg *metrics.Registry, path string) error {
	f := os.Stdin
	if path != "-" {
		var err error
		if f, err = os.Open(path); err != nil {
			return err
		}
		defer f.Close()
	}
	var section string
	var header []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "# "):
			// "# E2: copy+checksum — ..." -> section "e2"
			title := strings.TrimPrefix(line, "# ")
			section = slug(strings.SplitN(title, ":", 2)[0])
			header = nil
		default:
			cells := strings.Split(line, ",")
			if header == nil {
				header = cells
				continue
			}
			if section == "" || len(cells) == 0 {
				continue
			}
			row := "row=" + slug(cells[0])
			for i := 1; i < len(cells) && i < len(header); i++ {
				v, err := strconv.ParseFloat(strings.TrimSpace(cells[i]), 64)
				if err != nil {
					continue
				}
				name := fmt.Sprintf("alfbench.%s.%s_milli", section, slug(header[i]))
				reg.Gauge(name, row).Set(int64(v * 1000))
			}
		}
	}
	return sc.Err()
}

// slug lowercases and strips a string down to [a-z0-9_.-].
func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(s)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ' || r == '/':
			b.WriteRune('_')
		}
	}
	return b.String()
}
