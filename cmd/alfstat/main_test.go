package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

func ingestString(t *testing.T, csv string) *metrics.Snapshot {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	if err := ingest(reg, path); err != nil {
		t.Fatal(err)
	}
	return reg.Snapshot()
}

func TestIngestWellFormed(t *testing.T) {
	snap := ingestString(t, `
# E2: copy+checksum — fused vs separate
size,separate ms,fused ms
4096,1.5,0.75
65536,12.25,6

# Recovery: policy comparison
policy,goodput Mbps
sender-buffered,41.5
`)
	cases := []struct {
		name, row string
		want      int64
	}{
		{"alfbench.e2.separate_ms_milli", "row=4096", 1500},
		{"alfbench.e2.fused_ms_milli", "row=4096", 750},
		{"alfbench.e2.separate_ms_milli", "row=65536", 12250},
		{"alfbench.e2.fused_ms_milli", "row=65536", 6000},
		{"alfbench.recovery.goodput_mbps_milli", "row=sender-buffered", 41500},
	}
	for _, c := range cases {
		if _, ok := snap.Get(c.name, c.row); !ok {
			t.Errorf("missing %s{%s}", c.name, c.row)
			continue
		}
		if got := snap.Value(c.name, c.row); got != c.want {
			t.Errorf("%s{%s} = %d, want %d", c.name, c.row, got, c.want)
		}
	}
	if len(snap.Metrics) != len(cases) {
		t.Errorf("ingested %d series, want %d: %v", len(snap.Metrics), len(cases), snap.Metrics)
	}
}

func TestIngestEmpty(t *testing.T) {
	snap := ingestString(t, "")
	if len(snap.Metrics) != 0 {
		t.Errorf("empty input produced %d series", len(snap.Metrics))
	}
}

func TestIngestMalformed(t *testing.T) {
	// Rows before any section title, non-numeric cells, ragged rows
	// with more cells than the header, and a section with a title but
	// no data must all be skipped without error or bogus series.
	snap := ingestString(t, `
orphan,1,2

# E2: copy+checksum
size,thru
4096,not-a-number
8192,3.5,99,100
# Empty: nothing follows
col_a,col_b
`)
	if _, ok := snap.Get("alfbench.e2.thru_milli", "row=8192"); !ok {
		t.Error("valid cell of ragged row not ingested")
	}
	if got := snap.Value("alfbench.e2.thru_milli", "row=8192"); got != 3500 {
		t.Errorf("value = %d, want 3500", got)
	}
	if len(snap.Metrics) != 1 {
		t.Errorf("malformed input produced %d series, want 1: %v",
			len(snap.Metrics), snap.Metrics)
	}
}

func TestIngestMissingFile(t *testing.T) {
	if err := ingest(metrics.New(), filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"E2":                "e2",
		"  Copy/Checksum  ": "copy_checksum",
		"goodput Mbps":      "goodput_mbps",
		"résumé!":           "rsum",
		"a_b-c.d":           "a_b-c.d",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}
