// Command alftrace runs a short ALF transfer over an impaired link and
// prints the full packet trace — a tcpdump for the simulated wire. Use
// it to watch fragmentation, loss, NACK recovery, FEC parity, and
// heartbeats interact.
//
// Beyond the per-packet view (internal/trace), the run is also
// recorded by the span tracer (internal/tracing), so the same
// execution can be rendered as reconstructed ADU lifecycles:
//
//	alftrace                          # defaults: 6 ADUs, 10% loss
//	alftrace -adus 3 -loss 25 -fec 4  # heavier loss, FEC enabled
//	alftrace -seed 9 -encrypt
//	alftrace -spans -attr             # span summary + latency attribution
//	alftrace -adu 2                   # one ADU's full event timeline
//	alftrace -perfetto out.json       # Chrome/Perfetto trace export
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracing"
	"repro/internal/xcode"
)

// options collects every knob so the whole run is testable as a pure
// (options, writer) function.
type options struct {
	adus    int
	size    int
	loss    float64 // percent
	fec     int
	seed    int64
	encrypt bool
	limit   int64

	packets  bool   // per-packet wire trace (the classic view)
	spans    bool   // span-level run summary
	attr     bool   // per-ADU latency attribution table
	adu      int64  // single-ADU timeline by name (-1 = off)
	perfetto string // write Chrome trace-event JSON here
}

func run(opts options, w io.Writer) error {
	sched := sim.NewScheduler()
	net := netsim.New(sched, opts.seed)
	a := net.NewNode("sender")
	b := net.NewNode("receiver")
	fwd, rev := net.NewDuplex(a, b, netsim.LinkConfig{
		RateBps:  10e6,
		Delay:    5 * time.Millisecond,
		LossProb: opts.loss / 100,
	})

	tracer := tracing.New(sched)
	net.SetTracer(tracer)

	packetOut := w
	if !opts.packets {
		packetOut = io.Discard
	}
	logger := trace.New(packetOut, sched)
	logger.Limit = opts.limit

	cfg := alf.Config{
		MTU:          512 + alf.HeaderSize,
		NackDelay:    10 * time.Millisecond,
		NackInterval: 10 * time.Millisecond,
		FECGroup:     opts.fec,
		Tracer:       tracer,
	}
	if opts.encrypt {
		cfg.Key = 0xC0FFEE
	}
	snd, err := alf.NewSender(sched, logger.WrapSend("snd", trace.ALF, fwd.Send), cfg)
	if err != nil {
		return err
	}
	rcv, err := alf.NewReceiver(sched, logger.WrapSend("rcv", trace.ALF, rev.Send), cfg)
	if err != nil {
		return err
	}
	a.SetHandler(logger.WrapHandler("snd", trace.ALF,
		func(p *netsim.Packet) { snd.HandleControl(p.Payload) }))
	b.SetHandler(logger.WrapHandler("rcv", trace.ALF,
		func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) }))

	delivered := 0
	rcv.OnADU = func(adu alf.ADU) {
		delivered++
		if opts.packets {
			fmt.Fprintf(w, "%12v ** ADU %d delivered (%d bytes, tag=%#x)\n",
				sched.Now(), adu.Name, len(adu.Data), adu.Tag)
		}
	}
	rcv.OnLost = func(name uint64) {
		if opts.packets {
			fmt.Fprintf(w, "%12v ** ADU %d LOST\n", sched.Now(), name)
		}
	}

	for i := 0; i < opts.adus; i++ {
		data := make([]byte, opts.size)
		for j := range data {
			data[j] = byte(i + j)
		}
		if _, err := snd.Send(uint64(i*opts.size), xcode.SyntaxRaw, data); err != nil {
			return err
		}
	}
	if err := sched.Run(); err != nil {
		return err
	}

	if opts.packets {
		fmt.Fprintf(w, "\n%d/%d ADUs delivered; sender sent %d fragments (%d parity, %d resent); receiver saw %d dup / %d late fragments, recovered %d by FEC\n",
			delivered, opts.adus,
			snd.Stats.Fragments, snd.Stats.ParityFrags, snd.Stats.ResentFrags,
			rcv.Stats.DupFragments, rcv.Stats.LateFragments, rcv.Stats.FECRecovered)
	}

	if opts.spans || opts.attr || opts.adu >= 0 {
		rep := tracer.Analyze()
		if opts.spans {
			if opts.packets {
				fmt.Fprintln(w)
			}
			rep.WriteSummary(w)
		}
		if opts.attr {
			if opts.packets || opts.spans {
				fmt.Fprintln(w)
			}
			rep.WriteAttrTable(w)
		}
		if opts.adu >= 0 {
			if opts.packets || opts.spans || opts.attr {
				fmt.Fprintln(w)
			}
			rep.WriteADU(w, cfg.StreamID, uint64(opts.adu))
		}
	}
	if opts.perfetto != "" {
		f, err := os.Create(opts.perfetto)
		if err != nil {
			return err
		}
		if err := tracer.WritePerfetto(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "perfetto trace (%d events) written to %s\n", tracer.Len(), opts.perfetto)
	}
	return nil
}

func main() {
	opts := options{packets: true}
	flag.IntVar(&opts.adus, "adus", 6, "ADUs to transfer")
	flag.IntVar(&opts.size, "size", 2048, "bytes per ADU")
	flag.Float64Var(&opts.loss, "loss", 10, "packet loss percent")
	flag.IntVar(&opts.fec, "fec", 0, "FEC group size (0 = off)")
	flag.Int64Var(&opts.seed, "seed", 1, "simulation seed")
	flag.BoolVar(&opts.encrypt, "encrypt", false, "encipher the stream")
	flag.Int64Var(&opts.limit, "limit", 400, "max trace lines (0 = unlimited)")
	flag.BoolVar(&opts.packets, "packets", true, "print the per-packet wire trace")
	flag.BoolVar(&opts.spans, "spans", false, "print the reconstructed span summary")
	flag.BoolVar(&opts.attr, "attr", false, "print the per-ADU latency attribution table")
	flag.Int64Var(&opts.adu, "adu", -1, "print one ADU's full event timeline by name")
	flag.StringVar(&opts.perfetto, "perfetto", "", "write Chrome/Perfetto trace-event JSON to this file")
	flag.Parse()

	if err := run(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
