// Command alftrace runs a short ALF transfer over an impaired link and
// prints the full packet trace — a tcpdump for the simulated wire. Use
// it to watch fragmentation, loss, NACK recovery, FEC parity, and
// heartbeats interact.
//
//	alftrace                          # defaults: 6 ADUs, 10% loss
//	alftrace -adus 3 -loss 25 -fec 4  # heavier loss, FEC enabled
//	alftrace -seed 9 -encrypt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xcode"
)

var (
	flagADUs    = flag.Int("adus", 6, "ADUs to transfer")
	flagSize    = flag.Int("size", 2048, "bytes per ADU")
	flagLoss    = flag.Float64("loss", 10, "packet loss percent")
	flagFEC     = flag.Int("fec", 0, "FEC group size (0 = off)")
	flagSeed    = flag.Int64("seed", 1, "simulation seed")
	flagEncrypt = flag.Bool("encrypt", false, "encipher the stream")
	flagLimit   = flag.Int64("limit", 400, "max trace lines (0 = unlimited)")
)

func main() {
	flag.Parse()

	sched := sim.NewScheduler()
	net := netsim.New(sched, *flagSeed)
	a := net.NewNode("sender")
	b := net.NewNode("receiver")
	fwd, rev := net.NewDuplex(a, b, netsim.LinkConfig{
		RateBps:  10e6,
		Delay:    5 * time.Millisecond,
		LossProb: *flagLoss / 100,
	})

	logger := trace.New(os.Stdout, sched)
	logger.Limit = *flagLimit

	cfg := alf.Config{
		MTU:          512 + alf.HeaderSize,
		NackDelay:    10 * time.Millisecond,
		NackInterval: 10 * time.Millisecond,
		FECGroup:     *flagFEC,
	}
	if *flagEncrypt {
		cfg.Key = 0xC0FFEE
	}
	snd, err := alf.NewSender(sched, logger.WrapSend("snd", trace.ALF, fwd.Send), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rcv, err := alf.NewReceiver(sched, logger.WrapSend("rcv", trace.ALF, rev.Send), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a.SetHandler(logger.WrapHandler("snd", trace.ALF,
		func(p *netsim.Packet) { snd.HandleControl(p.Payload) }))
	b.SetHandler(logger.WrapHandler("rcv", trace.ALF,
		func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) }))

	delivered := 0
	rcv.OnADU = func(adu alf.ADU) {
		delivered++
		fmt.Printf("%12v ** ADU %d delivered (%d bytes, tag=%#x)\n",
			sched.Now(), adu.Name, len(adu.Data), adu.Tag)
	}
	rcv.OnLost = func(name uint64) {
		fmt.Printf("%12v ** ADU %d LOST\n", sched.Now(), name)
	}

	for i := 0; i < *flagADUs; i++ {
		data := make([]byte, *flagSize)
		for j := range data {
			data[j] = byte(i + j)
		}
		if _, err := snd.Send(uint64(i*(*flagSize)), xcode.SyntaxRaw, data); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := sched.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\n%d/%d ADUs delivered; sender sent %d fragments (%d parity, %d resent); receiver saw %d dup / %d late fragments, recovered %d by FEC\n",
		delivered, *flagADUs,
		snd.Stats.Fragments, snd.Stats.ParityFrags, snd.Stats.ResentFrags,
		rcv.Stats.DupFragments, rcv.Stats.LateFragments, rcv.Stats.FECRecovered)
}
