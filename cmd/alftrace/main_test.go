package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The run is fully deterministic from (code, options): virtual clock,
// seeded loss, ordered exports. Golden files pin the rendered output;
// regenerate deliberately with `go test ./cmd/alftrace -update`.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/alftrace -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

func baseOpts() options {
	return options{
		adus: 4, size: 2048, loss: 10, seed: 1, limit: 400,
		adu: -1,
	}
}

func TestGoldenPackets(t *testing.T) {
	opts := baseOpts()
	opts.packets = true
	var buf bytes.Buffer
	if err := run(opts, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "packets.golden", buf.Bytes())
}

func TestGoldenSpansAttr(t *testing.T) {
	opts := baseOpts()
	opts.spans = true
	opts.attr = true
	var buf bytes.Buffer
	if err := run(opts, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "spans_attr.golden", buf.Bytes())
}

func TestGoldenSingleADU(t *testing.T) {
	opts := baseOpts()
	opts.adu = 1
	var buf bytes.Buffer
	if err := run(opts, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "adu1.golden", buf.Bytes())
}

func TestGoldenFEC(t *testing.T) {
	opts := baseOpts()
	opts.fec = 2
	opts.loss = 25
	opts.spans = true
	opts.attr = true
	var buf bytes.Buffer
	if err := run(opts, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fec.golden", buf.Bytes())
}

// TestPerfettoFlag runs with -perfetto and asserts the file is valid
// Chrome trace-event JSON with the expected envelope.
func TestPerfettoFlag(t *testing.T) {
	opts := baseOpts()
	opts.perfetto = filepath.Join(t.TempDir(), "out.json")
	var buf bytes.Buffer
	if err := run(opts, &buf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(opts.perfetto)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("perfetto trace has no events")
	}
	if !strings.Contains(buf.String(), opts.perfetto) {
		t.Errorf("run output does not mention the perfetto path:\n%s", buf.String())
	}
}

// TestDeterminism double-checks the property the goldens rely on.
func TestDeterminism(t *testing.T) {
	opts := baseOpts()
	opts.packets = true
	opts.spans = true
	opts.attr = true
	var a, b bytes.Buffer
	if err := run(opts, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(opts, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical options produced different output")
	}
}
