// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark runs can be archived and diffed
// across commits (`make bench-json` writes BENCH_<date>.json).
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH_2026-08-06.json
//
// With -series, a flight-recorder CSV (from `alfstat -seriescsv`) is
// embedded in the document as a sidecar, so the archived run keeps its
// rate-over-time record next to the end-state numbers:
//
//	alfstat -seriescsv run.csv >/dev/null
//	go test -bench . -benchmem ./... | benchjson -series run.csv -o BENCH.json
//
// Lines that are not benchmark results (package headers, PASS/ok,
// warnings) pass through to stderr untouched so the run stays
// readable while being captured.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Op   string  `json:"op"`                 // benchmark name, -cpu suffix kept
	Pkg  string  `json:"pkg,omitempty"`      // package, from the preceding "pkg:" line
	Iter int64   `json:"iterations"`         // b.N of the measured run
	NsOp float64 `json:"ns_per_op"`          // nanoseconds per operation
	BOp  int64   `json:"bytes_per_op"`       // -benchmem: allocated bytes per op
	AOp  int64   `json:"allocs_per_op"`      // -benchmem: allocations per op
	MBs  float64 `json:"mb_per_s,omitempty"` // throughput when b.SetBytes was used
	// Extra holds custom units reported via b.ReportMetric (e.g. the
	// flow-scaling benchmark's vMb/s and flows/vsec), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`

	hasMem bool
}

// SeriesSidecar embeds a flight-recorder CSV (`alfstat -seriescsv`,
// or any telemetry WriteCSV output) next to the benchmark numbers, so
// an archived run keeps its rate-over-time record alongside its
// end-state figures.
type SeriesSidecar struct {
	Path string `json:"path"` // where the CSV came from
	CSV  string `json:"csv"`  // verbatim contents
}

// File is the archived document.
type File struct {
	Date       string         `json:"date"`
	GoVersion  string         `json:"go"`
	Benchmarks []Result       `json:"benchmarks"`
	Series     *SeriesSidecar `json:"series,omitempty"`
}

// parseLine parses one "BenchmarkName-N  iter  val unit ..." line, or
// returns false for anything else.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Op: fields[0], Iter: iter}
	// The remainder is (value, unit) pairs.
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsOp = v
			ok = true
		case "B/op":
			r.BOp = int64(v)
			r.hasMem = true
		case "allocs/op":
			r.AOp = int64(v)
			r.hasMem = true
		case "MB/s":
			r.MBs = v
		default:
			// A custom b.ReportMetric unit; archive it verbatim so
			// experiment-defined rates survive the JSON round trip.
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[fields[i+1]] = v
		}
	}
	return r, ok
}

// convert reads benchmark text from r, echoes non-benchmark lines to
// echo, and returns the parsed document.
func convert(r io.Reader, echo io.Writer, now time.Time) (*File, error) {
	f := &File{
		Date:      now.Format("2006-01-02"),
		GoVersion: runtime.Version(),
	}
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 256*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, found := strings.CutPrefix(strings.TrimSpace(line), "pkg: "); found {
			pkg = rest
		}
		if res, ok := parseLine(line); ok {
			res.Pkg = pkg
			f.Benchmarks = append(f.Benchmarks, res)
			continue
		}
		fmt.Fprintln(echo, line)
	}
	return f, sc.Err()
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	series := flag.String("series", "", "flight-recorder CSV to embed in the document as a sidecar")
	flag.Parse()

	f, err := convert(os.Stdin, os.Stderr, time.Now())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *series != "" {
		csv, err := os.ReadFile(*series)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		f.Series = &SeriesSidecar{Path: *series, CSV: string(csv)}
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer file.Close()
		w = file
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks written to %s\n",
			len(f.Benchmarks), *out)
	}
}
