package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/tracing
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDisabledTracer/FragmentSent-8         	795690022	         1.315 ns/op	       0 B/op	       0 allocs/op
BenchmarkEnabledTracer-8                       	 28x45	       broken line
BenchmarkEnabledTracer-8                       	 2845618	       420.5 ns/op	     648 B/op	       1 allocs/op
BenchmarkSenderSend/untraced-8                 	 1635782	       723.0 ns/op	 805.12 MB/s	    2144 B/op	       6 allocs/op
PASS
ok  	repro/internal/tracing	5.562s
pkg: repro/internal/checksum
BenchmarkSum16-8	100	10.0 ns/op
`

func TestConvert(t *testing.T) {
	var echo bytes.Buffer
	f, err := convert(strings.NewReader(sample), &echo,
		time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if f.Date != "2026-08-06" {
		t.Errorf("date = %q", f.Date)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	b0 := f.Benchmarks[0]
	if b0.Op != "BenchmarkDisabledTracer/FragmentSent-8" ||
		b0.Pkg != "repro/internal/tracing" ||
		b0.Iter != 795690022 || b0.NsOp != 1.315 || b0.BOp != 0 || b0.AOp != 0 {
		t.Errorf("benchmark 0 = %+v", b0)
	}
	b1 := f.Benchmarks[1]
	if b1.NsOp != 420.5 || b1.BOp != 648 || b1.AOp != 1 {
		t.Errorf("benchmark 1 = %+v", b1)
	}
	if b2 := f.Benchmarks[2]; b2.MBs != 805.12 || b2.AOp != 6 {
		t.Errorf("benchmark 2 = %+v", b2)
	}
	// The second pkg: line must rebind the package.
	if b3 := f.Benchmarks[3]; b3.Pkg != "repro/internal/checksum" || b3.NsOp != 10.0 {
		t.Errorf("benchmark 3 = %+v", b3)
	}
	// Non-benchmark lines (headers, PASS/ok, the corrupt line) echo.
	for _, want := range []string{"goos: linux", "PASS", "broken line"} {
		if !strings.Contains(echo.String(), want) {
			t.Errorf("echo missing %q:\n%s", want, echo.String())
		}
	}
	if strings.Contains(echo.String(), "420.5 ns/op") {
		t.Error("parsed benchmark line was also echoed")
	}
}

func TestConvertEmpty(t *testing.T) {
	f, err := convert(strings.NewReader(""), &bytes.Buffer{}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 0 {
		t.Errorf("empty input produced %d benchmarks", len(f.Benchmarks))
	}
}

func TestParseLineRejects(t *testing.T) {
	for _, line := range []string{
		"",
		"ok  	repro/internal/trace	0.014s",
		"Benchmark",                     // no fields
		"BenchmarkX notanumber 1 ns/op", // bad iteration count
		"BenchmarkX 100 1 furlongs/op",  // no ns/op pair at all
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
