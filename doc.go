// Package repro is a from-scratch reproduction of Clark & Tennenhouse,
// "Architectural Considerations for a New Generation of Protocols"
// (SIGCOMM 1990): Application Level Framing (ALF) and Integrated Layer
// Processing (ILP), together with every substrate the paper's arguments
// rest on — a discrete-event network simulator, an ATM cell/adaptation
// layer, a TCP-model ordered transport, a presentation layer (ASN.1
// BER, XDR, raw, and a light-weight transfer syntax), fused
// data-manipulation kernels, and the applications (file transfer,
// video, RPC, parallel receivers) the paper motivates.
//
// Every layer also reports into a unified metrics registry
// (internal/metrics): nil-safe atomic counters, gauges, and
// log-bucketed histograms driven by the simulator's virtual clock, so
// any run's full metric tree — fragments, NACKs, head-of-line stall
// times, per-link drops, ADU latency distributions — is deterministic
// for a given seed and renderable as one table.
//
// The root package holds the benchmark suite (bench_test.go), one
// benchmark per table or figure in DESIGN.md. The library lives under
// internal/; runnable demos live under examples/. Three commands ship
// with it: cmd/alfbench regenerates the paper's tables and figures,
// cmd/alfstat runs a measured ALF-vs-ordered-transport scenario and
// prints the metric tree, and cmd/alftrace decodes a simulated run
// packet by packet. docs/ARCHITECTURE.md maps every package to the
// paper section it reproduces.
package repro
