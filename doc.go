// Package repro is a from-scratch reproduction of Clark & Tennenhouse,
// "Architectural Considerations for a New Generation of Protocols"
// (SIGCOMM 1990): Application Level Framing (ALF) and Integrated Layer
// Processing (ILP), together with every substrate the paper's arguments
// rest on — a discrete-event network simulator, an ATM cell/adaptation
// layer, a TCP-model ordered transport, a presentation layer (ASN.1
// BER, XDR, raw, and a light-weight transfer syntax), fused
// data-manipulation kernels, and the applications (file transfer,
// video, RPC, parallel receivers) the paper motivates.
//
// Every layer also reports into a unified metrics registry
// (internal/metrics): nil-safe atomic counters, gauges, and
// log-bucketed histograms driven by the simulator's virtual clock, so
// any run's full metric tree — fragments, NACKs, head-of-line stall
// times, per-link drops, ADU latency distributions — is deterministic
// for a given seed and renderable as one table.
//
// Two planes sit above the per-stream protocol machinery. The control
// plane (§3) keeps control traffic out of the per-packet path:
// internal/session negotiates syntax, keys, and stream parameters out
// of band, and the closed feedback loop in internal/core — periodic
// cumulative receiver reports, pluggable RateController (AIMD or
// fixed), priority shedding before packetization, capped recovery
// bandwidth — turns §3's rate-based transmission control into a
// no-collapse guarantee under overload. The shard plane (§7) scales an
// endpoint to very large flow populations: alf.Sharded hashes flows
// over N shards, each owning a scheduler (sim.Group runs them in
// parallel with epoch barriers), a buffer arena, a scoped metrics
// view, and a trunk, with cross-shard effects confined to a
// control-directive queue applied at barriers — so the worker count
// never changes results, only wall-clock. docs/SCALING.md documents
// that contract and the archived scaling curve (BENCH_0006.json).
//
// The root package holds the benchmark suite (bench_test.go), one
// benchmark per table or figure in DESIGN.md, plus BenchmarkFlowScale,
// the §7 flow-scaling curve. The library lives under internal/;
// runnable demos live under examples/. Five commands ship with it:
// cmd/alfbench regenerates the paper's tables and figures and drives
// the sharded endpoint at scale (-flows), cmd/alfstat runs a measured
// ALF-vs-ordered-transport scenario and prints the metric tree,
// cmd/alfchaos runs fault and overload scenarios against soak
// invariants, cmd/alftrace decodes a simulated run packet by packet,
// and cmd/benchjson archives benchmark output as JSON.
// docs/ARCHITECTURE.md maps every package to the paper section it
// reproduces.
package repro
