// Package repro is a from-scratch reproduction of Clark & Tennenhouse,
// "Architectural Considerations for a New Generation of Protocols"
// (SIGCOMM 1990): Application Level Framing (ALF) and Integrated Layer
// Processing (ILP), together with every substrate the paper's arguments
// rest on — a discrete-event network simulator, an ATM cell/adaptation
// layer, a TCP-model ordered transport, a presentation layer (ASN.1
// BER, XDR, raw, and a light-weight transfer syntax), fused
// data-manipulation kernels, and the applications (file transfer,
// video, RPC, parallel receivers) the paper motivates.
//
// The root package holds the benchmark suite (bench_test.go), one
// benchmark per table or figure in DESIGN.md. The library lives under
// internal/; runnable demos live under examples/; the experiment
// harness is cmd/alfbench.
package repro
