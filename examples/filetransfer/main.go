// File transfer with Application Level Framing: every ADU is labeled
// with the offset it occupies in the receiver's file, so the receiver
// writes chunks to their final locations as they arrive — out of
// order, past holes — while an ordered byte-stream transport (the TCP
// model) makes everything behind a lost packet wait.
//
// The demo moves the same file over the same lossy link both ways and
// prints a progress timeline plus a final comparison.
//
//	go run ./examples/filetransfer
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	alf "repro/internal/core"
	"repro/internal/filetx"
	"repro/internal/netsim"
	"repro/internal/otp"
	"repro/internal/sim"
	"repro/internal/xcode"
)

const (
	fileSize = 512 << 10 // 512 KB
	aduSize  = 8 << 10
	lossProb = 0.03
)

func makeFile() []byte {
	data := make([]byte, fileSize)
	for i := range data {
		data[i] = byte(i*2654435761 + i>>8)
	}
	return data
}

func main() {
	data := makeFile()

	alfDone, alfFirstGapFill := runALF(data)
	otpDone, otpStallMax := runOTP(data)

	fmt.Println("\n=== comparison ===")
	fmt.Printf("ALF  completed at %v; out-of-order writes filled gaps while recovery ran (first backfill at %v)\n",
		alfDone, alfFirstGapFill)
	fmt.Printf("OTP  completed at %v; longest head-of-line stall with zero progress: %v\n",
		otpDone, otpStallMax)
}

func runALF(data []byte) (done sim.Duration, firstBackfill sim.Duration) {
	sched := sim.NewScheduler()
	net := netsim.New(sched, 7)
	a := net.NewNode("a")
	b := net.NewNode("b")
	fwd, rev := net.NewDuplex(a, b, netsim.LinkConfig{
		RateBps: 50e6, Delay: 5 * time.Millisecond, LossProb: lossProb,
	})
	cfg := alf.Config{
		RateBps:      50e6,
		NackDelay:    10 * time.Millisecond,
		NackInterval: 10 * time.Millisecond,
	}
	snd, err := alf.NewSender(sched, fwd.Send, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rcv, err := alf.NewReceiver(sched, rev.Send, cfg)
	if err != nil {
		log.Fatal(err)
	}
	a.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

	chunks := filetx.Plan(data, aduSize)
	w := filetx.NewWriter(filetx.TotalDst(chunks))
	var maxOffSeen int
	rcv.OnADU = func(adu alf.ADU) {
		if int(adu.Tag) < maxOffSeen && firstBackfill == 0 {
			firstBackfill = sim.Duration(sched.Now())
		}
		if int(adu.Tag) > maxOffSeen {
			maxOffSeen = int(adu.Tag)
		}
		if err := w.Apply(adu); err != nil {
			log.Fatalf("apply: %v", err)
		}
	}
	w.OnComplete = func() { done = sim.Duration(sched.Now()) }

	if _, err := filetx.Send(snd, chunks, xcode.SyntaxRaw); err != nil {
		log.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		log.Fatal(err)
	}
	if !w.Complete() || !bytes.Equal(w.Bytes(), data) {
		log.Fatalf("ALF transfer corrupt (missing %v)", w.MissingRanges())
	}
	fmt.Printf("ALF  file intact at %-12v  resends=%d  out-of-order deliveries=%d\n",
		done, snd.Stats.ResentADUs, rcv.Stats.OutOfOrder)
	return done, firstBackfill
}

func runOTP(data []byte) (done sim.Duration, maxStall sim.Duration) {
	sched := sim.NewScheduler()
	net := netsim.New(sched, 7)
	a := net.NewNode("a")
	b := net.NewNode("b")
	fwd, rev := net.NewDuplex(a, b, netsim.LinkConfig{
		RateBps: 50e6, Delay: 5 * time.Millisecond, LossProb: lossProb,
	})
	cfg := otp.Config{MSS: 1024, FastRetransmit: true, SendBuffer: fileSize + (1 << 20)}
	snd := otp.New(sched, fwd.Send, cfg)
	rcv := otp.New(sched, rev.Send, cfg)
	a.SetHandler(func(p *netsim.Packet) { snd.HandleSegment(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { rcv.HandleSegment(p.Payload) })

	out := make([]byte, 0, fileSize)
	var lastProgress sim.Time
	rcv.OnData = func(d []byte) {
		if stall := sim.Duration(sched.Now() - lastProgress); stall > maxStall && len(out) > 0 {
			maxStall = stall
		}
		lastProgress = sched.Now()
		out = append(out, d...)
		if len(out) == fileSize {
			done = sim.Duration(sched.Now())
		}
	}
	if err := snd.Send(data); err != nil {
		log.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		log.Fatal("OTP transfer corrupt")
	}
	fmt.Printf("OTP  file intact at %-12v  retransmits=%d  timeouts=%d\n",
		done, snd.Stats.Retransmits, snd.Stats.Timeouts)
	return done, maxStall
}
