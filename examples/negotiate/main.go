// Session negotiation: the out-of-band control plane (§3) establishes
// an ALF stream — transfer syntax chosen from the initiator's
// preference list, keys combined from both sides, FEC and policy agreed
// — and then typed application values flow as encrypted ADUs.
//
//	go run ./examples/negotiate
package main

import (
	"fmt"
	"log"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/xcode"
)

func main() {
	sched := sim.NewScheduler()
	net := netsim.New(sched, 11)
	a := net.NewNode("initiator")
	b := net.NewNode("responder")
	fwd, rev := net.NewDuplex(a, b, netsim.LinkConfig{
		Delay: 8 * time.Millisecond, LossProb: 0.15, // even the handshake must survive loss
	})

	var snd *alf.Sender
	var rcv *alf.Receiver

	init := session.NewInitiator(sched, sim.NewRand(1), fwd.Send)
	init.RetryInterval = 30 * time.Millisecond
	// The responder only speaks XDR and raw.
	resp := session.NewResponder(sched, sim.NewRand(2), rev.Send,
		[]xcode.SyntaxID{xcode.SyntaxXDR, xcode.SyntaxRaw})

	a.SetHandler(func(p *netsim.Packet) {
		if session.MessageType(p.Payload) != 0 {
			init.Handle(p.Payload)
		} else if snd != nil {
			snd.HandleControl(p.Payload)
		}
	})
	b.SetHandler(func(p *netsim.Packet) {
		if session.MessageType(p.Payload) != 0 {
			resp.Handle(p.Payload)
		} else if rcv != nil {
			rcv.HandlePacket(p.Payload)
		}
	})

	resp.OnEstablished = func(res session.Result) {
		fmt.Printf("%10v  responder: stream %d established, syntax=%d, key=%#x\n",
			sched.Now(), res.Params.StreamID, res.Syntax, res.Key)
		cfg := res.Config()
		cfg.NackDelay = 15 * time.Millisecond
		cfg.NackInterval = 15 * time.Millisecond
		var err error
		rcv, err = alf.NewReceiver(sched, rev.Send, cfg)
		if err != nil {
			log.Fatal(err)
		}
		codec, _ := xcode.ByID(res.Syntax)
		rcv.OnADU = func(adu alf.ADU) {
			v, _, err := codec.DecodeValue(adu.Data)
			if err != nil {
				log.Fatalf("decode: %v", err)
			}
			fmt.Printf("%10v  responder: ADU %d -> %s value (%d wire bytes)\n",
				sched.Now(), adu.Name, v.Kind, len(adu.Data))
		}
	}

	init.OnEstablished = func(res session.Result) {
		fmt.Printf("%10v  initiator: negotiated syntax=%d (wanted BER first), key=%#x\n",
			sched.Now(), res.Syntax, res.Key)
		cfg := res.Config()
		cfg.NackDelay = 15 * time.Millisecond
		cfg.NackInterval = 15 * time.Millisecond
		var err error
		snd, err = alf.NewSender(sched, fwd.Send, cfg)
		if err != nil {
			log.Fatal(err)
		}
		codec, _ := xcode.ByID(res.Syntax)
		values := []xcode.Value{
			xcode.Int32sValue([]int32{3, 1, 4, 1, 5, 9, 2, 6}),
			xcode.StringValue("negotiated, encrypted, FEC-protected"),
			xcode.BytesValue(make([]byte, 5000)),
		}
		for i, v := range values {
			enc, err := codec.EncodeValue(nil, v)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := snd.Send(uint64(i), res.Syntax, enc); err != nil {
				log.Fatal(err)
			}
		}
	}
	init.OnFail = func(err error) { log.Fatalf("handshake failed: %v", err) }

	err := init.Open(session.Params{
		StreamID: 1,
		// Preference: BER first — the responder will force XDR.
		Syntaxes: []xcode.SyntaxID{xcode.SyntaxBER, xcode.SyntaxXDR, xcode.SyntaxRaw},
		Encrypt:  true,
		FECGroup: 4,
		Policy:   alf.SenderBuffered,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndone at %v; sender stats: %d fragments (+%d parity, %d resent)\n",
		sched.Now(), snd.Stats.Fragments, snd.Stats.ParityFrags, snd.Stats.ResentFrags)
}
