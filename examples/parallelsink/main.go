// Parallel receiver (paper §7): a parallel processor has no single hot
// spot that can run at the machine's aggregate rate, so incoming data
// must be dispatched to the right processing element directly. Because
// every ADU carries its own delivery information (the tag), an ALF
// receiver dispatches each ADU straight to its worker; a byte-stream
// transport forces everything through one serial reassembly point
// first.
//
//	go run ./examples/parallelsink
package main

import (
	"fmt"
	"log"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/xcode"
)

const (
	totalBytes = 16 << 20
	aduBytes   = 32 << 10
	workerBps  = 12.5e6 // each worker converts 100 Mb/s
)

func main() {
	fmt.Printf("dispatching %d MB of ADUs to worker pools (each worker processes %.0f Mb/s)\n\n",
		totalBytes>>20, workerBps*8/1e6)
	fmt.Println("workers   ALF direct dispatch     serial front end     speedup")
	fmt.Println("-------   --------------------    -----------------    -------")
	for _, workers := range []int{1, 2, 4, 8, 16} {
		alfT := run(workers, false)
		serT := run(workers, true)
		speed := serT.Seconds() / alfT.Seconds()
		fmt.Printf("%4d      %-12v(%6.0f Mb/s)  %-12v(%5.0f Mb/s)  %5.2fx\n",
			workers,
			alfT, float64(totalBytes)*8/1e6/alfT.Seconds(),
			serT, float64(totalBytes)*8/1e6/serT.Seconds(),
			speed)
	}
	fmt.Println("\nthe serial column is flat: the reassembly hot spot caps the machine at one")
	fmt.Println("worker's rate no matter how many processors sit behind it; ALF scales because")
	fmt.Println("each ADU \"contains enough information to control its own delivery\" (§7)")
}

func run(workers int, serial bool) time.Duration {
	sched := sim.NewScheduler()
	net := netsim.New(sched, 3)
	a := net.NewNode("net")
	b := net.NewNode("machine")
	fwd, rev := net.NewDuplex(a, b, netsim.LinkConfig{RateBps: 2e9, Delay: time.Millisecond})

	cfg := alf.Config{MTU: 8192 + alf.HeaderSize, RateBps: 2e9}
	snd, err := alf.NewSender(sched, fwd.Send, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rcv, err := alf.NewReceiver(sched, rev.Send, cfg)
	if err != nil {
		log.Fatal(err)
	}
	a.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

	serialBps := 0.0
	if serial {
		serialBps = workerBps
	}
	pool := parallel.NewPool(sched, workers, workerBps, serialBps)
	rcv.OnADU = pool.HandleADU

	for i := 0; i*aduBytes < totalBytes; i++ {
		if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, make([]byte, aduBytes)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sched.Run(); err != nil {
		log.Fatal(err)
	}
	return time.Duration(pool.LastFinish)
}
