// Quickstart: send Application Data Units across a lossy simulated link
// and watch them arrive — out of order, each delivered the moment it
// completes, with losses recovered by whole-ADU retransmission.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

func main() {
	// A scheduler drives everything in virtual time; the run is
	// deterministic given the seed.
	sched := sim.NewScheduler()
	net := netsim.New(sched, 42)

	// Two nodes joined by a 10 Mb/s duplex link that loses 10% of
	// packets.
	src := net.NewNode("sender")
	dst := net.NewNode("receiver")
	fwd, rev := net.NewDuplex(src, dst, netsim.LinkConfig{
		RateBps:  10e6,
		Delay:    5 * time.Millisecond,
		LossProb: 0.10,
	})

	// An ALF stream: the sender fragments ADUs and retransmits whole
	// ADUs when the receiver reports them missing.
	cfg := alf.Config{
		NackDelay:    10 * time.Millisecond,
		NackInterval: 10 * time.Millisecond,
	}
	snd, err := alf.NewSender(sched, fwd.Send, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rcv, err := alf.NewReceiver(sched, rev.Send, cfg)
	if err != nil {
		log.Fatal(err)
	}
	src.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	dst.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

	// Deliveries arrive as complete ADUs, possibly out of order — the
	// application decides what the names and tags mean.
	rcv.OnADU = func(adu alf.ADU) {
		fmt.Printf("%8v  ADU %2d arrived (tag=%d, %d bytes) %s\n",
			sched.Now(), adu.Name, adu.Tag, len(adu.Data),
			map[bool]string{true: "", false: " <- out of order"}[adu.Name == 0 || adu.Name <= rcv.Settled()],
		)
	}

	// Send ten 4 KB ADUs, tagged with their logical offset.
	for i := 0; i < 10; i++ {
		payload := make([]byte, 4096)
		for j := range payload {
			payload[j] = byte(i)
		}
		if _, err := snd.Send(uint64(i*4096), xcode.SyntaxRaw, payload); err != nil {
			log.Fatal(err)
		}
	}

	if err := sched.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndone at %v (virtual time)\n", sched.Now())
	fmt.Printf("sender:   %d ADUs, %d fragments, %d whole-ADU resends\n",
		snd.Stats.ADUs, snd.Stats.Fragments, snd.Stats.ResentADUs)
	fmt.Printf("receiver: %d delivered (%d out of order), %d duplicate fragments dropped\n",
		rcv.Stats.ADUsDelivered, rcv.Stats.OutOfOrder, rcv.Stats.DupFragments)
}
