// RPC over ALF: each call is one ADU, each reply is one ADU on the
// reverse stream, arguments travel in a negotiable transfer syntax
// (ASN.1 BER here), and concurrent calls never head-of-line block each
// other — a lost call packet delays only that call.
//
//	go run ./examples/rpcdemo
package main

import (
	"fmt"
	"log"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/xcode"
)

func main() {
	sched := sim.NewScheduler()
	net := netsim.New(sched, 5)
	cn := net.NewNode("client")
	sn := net.NewNode("server")
	fwd, rev := net.NewDuplex(cn, sn, netsim.LinkConfig{
		Delay: 8 * time.Millisecond, LossProb: 0.08,
	})

	// Two ALF streams: calls client->server, replies server->client.
	mkStream := func(id byte, out, back func([]byte) error) (*alf.Sender, *alf.Receiver) {
		cfg := alf.Config{
			StreamID:     id,
			NackDelay:    10 * time.Millisecond,
			NackInterval: 10 * time.Millisecond,
		}
		s, err := alf.NewSender(sched, out, cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := alf.NewReceiver(sched, back, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return s, r
	}
	callSnd, callRcv := mkStream(1, fwd.Send, rev.Send)
	replySnd, replyRcv := mkStream(2, rev.Send, fwd.Send)

	cn.SetHandler(func(p *netsim.Packet) {
		if callSnd.HandleControl(p.Payload) != nil {
			replyRcv.HandlePacket(p.Payload)
		}
	})
	sn.SetHandler(func(p *netsim.Packet) {
		if replySnd.HandleControl(p.Payload) != nil {
			callRcv.HandlePacket(p.Payload)
		}
	})

	// The service: statistics over integer arrays, marshalled in BER.
	server := rpc.NewServer(replySnd, xcode.BER{})
	server.Register("stats.sum", func(args xcode.Message) (xcode.Message, error) {
		var total int64
		for _, a := range args {
			for _, x := range a.Ints {
				total += int64(x)
			}
		}
		return xcode.Message{xcode.Int64Value(total)}, nil
	})
	server.Register("strings.upper", func(args xcode.Message) (xcode.Message, error) {
		out := make(xcode.Message, len(args))
		for i, a := range args {
			s := a.Str
			b := []byte(s)
			for j := range b {
				if b[j] >= 'a' && b[j] <= 'z' {
					b[j] -= 32
				}
			}
			out[i] = xcode.StringValue(string(b))
		}
		return out, nil
	})
	callRcv.OnADU = server.HandleCall

	client := rpc.NewClient(sched, callSnd, xcode.BER{})
	replyRcv.OnADU = client.HandleReply

	// Fire a burst of concurrent calls; report completion times to show
	// that a lost call's recovery delays only itself.
	fmt.Println("20 concurrent stats.sum calls over an 8%-loss link:")
	for i := 0; i < 20; i++ {
		i := i
		arr := make([]int32, 100)
		for j := range arr {
			arr[j] = int32(i + j)
		}
		issued := sched.Now()
		client.Go("stats.sum", xcode.Message{xcode.Int32sValue(arr)},
			func(m xcode.Message, err error) {
				if err != nil {
					fmt.Printf("  call %2d: ERROR %v\n", i, err)
					return
				}
				fmt.Printf("  call %2d -> %6d   (rtt %v)\n", i, m[0].I64, sched.Now().Sub(issued))
			})
	}
	client.Go("strings.upper", xcode.Message{xcode.StringValue("application level framing")},
		func(m xcode.Message, err error) {
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  strings.upper -> %q\n", m[0].Str)
		})

	if err := sched.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver handled %d calls; client: %d replies, %d timeouts\n",
		server.Stats.Calls, client.Stats.Replies, client.Stats.Timeouts)
}
