// Real-time video over a lossy link: the stream uses ALF's NoRetransmit
// policy — ADUs are (frame, slice) units, losses are reported to the
// application in those terms, and the playout deadline renders whatever
// arrived. No retransmission ever delays a later frame.
//
//	go run ./examples/videostream
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/video"
)

func main() {
	sched := sim.NewScheduler()
	net := netsim.New(sched, 99)
	a := net.NewNode("camera")
	b := net.NewNode("display")
	fwd, rev := net.NewDuplex(a, b, netsim.LinkConfig{
		RateBps: 20e6, Delay: 10 * time.Millisecond, LossProb: 0.04,
	})

	cfg := alf.Config{
		Policy:       alf.NoRetransmit,
		HoldTime:     150 * time.Millisecond,
		NackInterval: 20 * time.Millisecond,
	}
	snd, err := alf.NewSender(sched, fwd.Send, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rcv, err := alf.NewReceiver(sched, rev.Send, cfg)
	if err != nil {
		log.Fatal(err)
	}
	a.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

	vcfg := video.SourceConfig{FPS: 30, SlicesPerFrame: 8, SliceBytes: 1200}
	source := video.NewSource(sched, snd, vcfg)
	sink := video.NewSink(sched, 0, 40*time.Millisecond, vcfg)
	rcv.OnADU = sink.HandleADU
	rcv.OnLost = sink.HandleLoss

	const frames = 90
	var bar []string
	sink.OnFrame = func(r video.FrameReport) {
		switch {
		case r.Complete:
			bar = append(bar, "█")
		case r.Slices > 0:
			bar = append(bar, "▒")
		default:
			bar = append(bar, "·")
		}
	}

	source.Start(frames)
	if err := sched.Run(); err != nil {
		log.Fatal(err)
	}
	sink.FlushAll(frames)

	fmt.Println("3 seconds of 30 fps video over a 4%-loss link, 40 ms playout budget")
	fmt.Println("█ complete frame   ▒ partial frame (rendered with missing slices)   · lost frame")
	for off := 0; off < len(bar); off += 30 {
		end := off + 30
		if end > len(bar) {
			end = len(bar)
		}
		fmt.Printf("  %s\n", strings.Join(bar[off:end], ""))
	}
	st := sink.Stats
	fmt.Printf("\nframes: %d complete, %d partial, %d empty (of %d)\n",
		st.FramesComplete, st.FramesPartial, st.FramesEmpty, frames)
	fmt.Printf("slices: %d on time, %d late; sender resends: %d (policy %v)\n",
		st.SlicesOnTime, st.SlicesLate, snd.Stats.ResentADUs, cfg.Policy)
}
