package repro

// Integration tests composing every subsystem of the repository in one
// simulation, the way the paper's "new generation" end system would
// actually be assembled.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/atm"
	alf "repro/internal/core"
	"repro/internal/filetx"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/video"
	"repro/internal/xcode"
)

// TestFullSystemVideoOverATM drives the deepest stack in the repo:
//
//	video source (frame/slice ADUs, NoRetransmit, FEC)
//	  -> session-negotiated ALF stream (encrypted)
//	    -> AAL segmentation -> 53-byte ATM cells
//	      -> lossy cell link
//	    -> AAL reassembly
//	  -> ALF receive (fused decrypt+checksum, FEC recovery)
//	-> playout sink with deadlines
func TestFullSystemVideoOverATM(t *testing.T) {
	s := sim.NewScheduler()
	n := netsim.New(s, 71)
	a := n.NewNode("camera")
	b := n.NewNode("display")

	// Forward path: ATM cells with loss. Reverse: clean control path.
	fwd := n.NewLink(a, b, netsim.LinkConfig{
		RateBps: 150e6, Delay: 5 * time.Millisecond,
		MTU: atm.CellSize, LossProb: 0.002,
	})
	rev := n.NewLink(b, a, netsim.LinkConfig{Delay: 5 * time.Millisecond})

	// Session handshake happens over the cell path too: OFFER/ACCEPT
	// messages are themselves segmented into cells.
	seg := atm.NewSegmenter(1)
	cellSend := func(pkt []byte) error {
		seg.Segment(pkt, func(cell []byte) { fwd.Send(cell) })
		return nil
	}

	var snd *alf.Sender
	var rcv *alf.Receiver
	var sink *video.Sink
	var src *video.Source
	vcfg := video.SourceConfig{FPS: 30, SlicesPerFrame: 4, SliceBytes: 800}
	const frames = 45

	init := session.NewInitiator(s, sim.NewRand(1), cellSend)
	init.RetryInterval = 30 * time.Millisecond
	resp := session.NewResponder(s, sim.NewRand(2), rev.Send,
		[]xcode.SyntaxID{xcode.SyntaxRaw})

	resp.OnEstablished = func(res session.Result) {
		cfg := res.Config()
		cfg.HoldTime = 200 * time.Millisecond
		cfg.NackInterval = 20 * time.Millisecond
		var err error
		rcv, err = alf.NewReceiver(s, rev.Send, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sink = video.NewSink(s, s.Now(), 50*time.Millisecond, vcfg)
		rcv.OnADU = sink.HandleADU
		rcv.OnLost = sink.HandleLoss
	}
	init.OnEstablished = func(res session.Result) {
		cfg := res.Config()
		cfg.NackInterval = 20 * time.Millisecond
		var err error
		snd, err = alf.NewSender(s, cellSend, cfg)
		if err != nil {
			t.Fatal(err)
		}
		src = video.NewSource(s, snd, vcfg)
		src.Start(frames)
	}
	init.OnFail = func(err error) { t.Fatalf("handshake: %v", err) }

	reasm := atm.NewReassembler(1, func(mid uint16, msg []byte) {
		if session.MessageType(msg) != 0 {
			resp.Handle(msg)
			return
		}
		if rcv != nil {
			rcv.HandlePacket(msg)
		}
	})
	b.SetHandler(func(p *netsim.Packet) { reasm.Cell(p.Payload) })
	a.SetHandler(func(p *netsim.Packet) {
		if session.MessageType(p.Payload) != 0 {
			init.Handle(p.Payload)
			return
		}
		if snd != nil {
			snd.HandleControl(p.Payload)
		}
	})

	if err := init.Open(session.Params{
		StreamID: 2,
		Syntaxes: []xcode.SyntaxID{xcode.SyntaxRaw},
		Encrypt:  true,
		FECGroup: 2,
		Policy:   alf.NoRetransmit,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sink == nil || src == nil {
		t.Fatal("stream never established")
	}
	sink.FlushAll(frames)

	total := sink.Stats.FramesComplete + sink.Stats.FramesPartial + sink.Stats.FramesEmpty
	if total != frames {
		t.Fatalf("accounted %d of %d frames", total, frames)
	}
	// With 0.2% cell loss, FEC(2) recovery, ~19 cells per slice: nearly
	// all frames should render complete.
	if sink.Stats.FramesComplete < frames*8/10 {
		t.Errorf("only %d/%d frames complete (partial %d, empty %d)",
			sink.Stats.FramesComplete, frames,
			sink.Stats.FramesPartial, sink.Stats.FramesEmpty)
	}
	if reasm.Stats.DropsSeqGap == 0 {
		t.Error("no cell loss observed; the test exercised nothing")
	}
	if rcv.Stats.FECRecovered == 0 {
		t.Error("FEC never engaged despite cell loss")
	}
	if snd.Stats.ResentADUs != 0 {
		t.Error("NoRetransmit stream retransmitted")
	}
}

// TestFullSystemRPCWithFileTransfer composes RPC control traffic with a
// bulk file transfer on separate streams sharing the same node pair and
// lossy link — the paper's service-integration scenario (§1): one end
// system, multiple media, one architecture.
func TestFullSystemRPCWithFileTransfer(t *testing.T) {
	s := sim.NewScheduler()
	n := netsim.New(s, 81)
	a := n.NewNode("client")
	b := n.NewNode("server")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{
		RateBps: 50e6, Delay: 4 * time.Millisecond, LossProb: 0.04,
	})

	mk := func(id byte, out, back func([]byte) error) (*alf.Sender, *alf.Receiver) {
		cfg := alf.Config{
			StreamID:  id,
			NackDelay: 8 * time.Millisecond, NackInterval: 8 * time.Millisecond,
		}
		snd, err := alf.NewSender(s, out, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rcv, err := alf.NewReceiver(s, back, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return snd, rcv
	}
	callSnd, callRcv := mk(1, ab.Send, ba.Send)   // rpc calls a->b
	replySnd, replyRcv := mk(2, ba.Send, ab.Send) // rpc replies b->a
	fileSnd, fileRcv := mk(3, ab.Send, ba.Send)   // bulk file a->b

	a.SetHandler(func(p *netsim.Packet) {
		if callSnd.HandleControl(p.Payload) == nil {
			return
		}
		if fileSnd.HandleControl(p.Payload) == nil {
			return
		}
		replyRcv.HandlePacket(p.Payload)
	})
	b.SetHandler(func(p *netsim.Packet) {
		if replySnd.HandleControl(p.Payload) == nil {
			return
		}
		if callRcv.HandlePacket(p.Payload) == nil {
			return
		}
		fileRcv.HandlePacket(p.Payload)
	})

	// RPC service: progress queries answered while the file flows.
	srv := rpc.NewServer(replySnd, xcode.XDR{})
	var w *filetx.Writer
	srv.Register("progress", func(args xcode.Message) (xcode.Message, error) {
		return xcode.Message{xcode.Int64Value(int64(w.Written()))}, nil
	})
	callRcv.OnADU = srv.HandleCall
	cli := rpc.NewClient(s, callSnd, xcode.XDR{})
	replyRcv.OnADU = cli.HandleReply

	// File transfer.
	data := make([]byte, 400<<10)
	for i := range data {
		data[i] = byte(i * 13)
	}
	chunks := filetx.Plan(data, 8<<10)
	w = filetx.NewWriter(filetx.TotalDst(chunks))
	fileRcv.OnADU = func(adu alf.ADU) {
		if err := w.Apply(adu); err != nil {
			t.Errorf("apply: %v", err)
		}
	}
	if _, err := filetx.Send(fileSnd, chunks, xcode.SyntaxRaw); err != nil {
		t.Fatal(err)
	}

	// Poll progress over RPC every 20 ms; every call must succeed and
	// progress must be monotone.
	var progress []int64
	var poll func()
	poll = func() {
		cli.Go("progress", nil, func(m xcode.Message, err error) {
			if err != nil {
				t.Errorf("progress call: %v", err)
				return
			}
			progress = append(progress, m[0].I64)
		})
		if !w.Complete() {
			s.After(20*time.Millisecond, poll)
		}
	}
	poll()

	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !w.Complete() || !bytes.Equal(w.Bytes(), data) {
		t.Fatalf("file transfer failed (missing %v)", w.MissingRanges())
	}
	if len(progress) < 3 {
		t.Fatalf("only %d progress samples", len(progress))
	}
	for i := 1; i < len(progress); i++ {
		if progress[i] < progress[i-1] {
			t.Fatal("progress regressed")
		}
	}
	if cli.Stats.Timeouts != 0 {
		t.Errorf("%d RPC timeouts while sharing the link", cli.Stats.Timeouts)
	}
}
