// Package alfio bridges Go's io idioms onto ALF streams: a Writer that
// chunks a byte stream into offset-tagged ADUs, and a Collector that
// reassembles the ordered stream at the receiver.
//
// The Collector deliberately reintroduces in-order delivery — it is the
// compatibility shim for applications that genuinely are byte streams.
// Everything the paper says about head-of-line blocking applies to it:
// a missing ADU stalls OnData until recovery. Applications that can
// consume ADUs out of order should use alf.Receiver.OnADU directly (or
// filetx for placed writes); this package is for the rest.
package alfio

import (
	"errors"
	"fmt"

	alf "repro/internal/core"
	"repro/internal/xcode"
)

// ErrClosed is returned by writes after Close.
var ErrClosed = errors.New("alfio: writer closed")

// Writer chunks a byte stream into ADUs of fixed size. Each ADU's tag
// is its starting offset in the stream, so the receiver can reassemble
// (or place) without any additional framing. Writer buffers partial
// chunks; call Flush (or Close) to push a short final ADU.
type Writer struct {
	snd     *alf.Sender
	syntax  xcode.SyntaxID
	aduSize int
	buf     []byte
	off     uint64
	closed  bool
}

// NewWriter wraps snd. aduSize bounds each ADU's payload (default 8 KiB
// when <= 0).
func NewWriter(snd *alf.Sender, syntax xcode.SyntaxID, aduSize int) *Writer {
	if aduSize <= 0 {
		aduSize = 8 << 10
	}
	return &Writer{snd: snd, syntax: syntax, aduSize: aduSize}
}

// Write implements io.Writer: it never fails partway unless the
// transport refuses an ADU, in which case it reports the bytes durably
// handed over.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, ErrClosed
	}
	written := 0
	for len(p) > 0 {
		room := w.aduSize - len(w.buf)
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		written += n
		if len(w.buf) == w.aduSize {
			if err := w.emit(); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// Flush sends any buffered partial chunk as a short ADU.
func (w *Writer) Flush() error {
	if w.closed {
		return ErrClosed
	}
	if len(w.buf) == 0 {
		return nil
	}
	return w.emit()
}

// Close flushes and marks the writer finished.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	err := w.Flush()
	w.closed = true
	return err
}

// Offset returns the stream offset of the next byte to be written.
func (w *Writer) Offset() uint64 { return w.off + uint64(len(w.buf)) }

func (w *Writer) emit() error {
	if _, err := w.snd.Send(w.off, w.syntax, w.buf); err != nil {
		return fmt.Errorf("alfio: %w", err)
	}
	w.off += uint64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// Collector rebuilds the ordered byte stream from offset-tagged ADUs.
// Wire it with rcv.OnADU = c.HandleADU.
type Collector struct {
	// OnData receives contiguous stream bytes in order.
	OnData func([]byte)
	// OnSkip is told when a lost ADU is skipped (NoRetransmit streams):
	// the stream jumps from its current offset to next, and delivery
	// continues. Wire rcv.OnLost to a closure calling Skip if skipping
	// is acceptable for the application.
	OnSkip func(from, to uint64)

	next    uint64
	pending map[uint64][]byte
	// PendingBytes tracks buffered out-of-order data.
	PendingBytes int
}

// NewCollector returns a collector expecting the stream to start at
// offset 0.
func NewCollector() *Collector {
	return &Collector{pending: make(map[uint64][]byte)}
}

// Next returns the next expected stream offset.
func (c *Collector) Next() uint64 { return c.next }

// Pending returns the number of buffered out-of-order ADUs.
func (c *Collector) Pending() int { return len(c.pending) }

// HandleADU consumes one ADU tagged with its stream offset.
func (c *Collector) HandleADU(adu alf.ADU) {
	off := adu.Tag
	if off < c.next {
		return // duplicate of delivered data
	}
	if _, dup := c.pending[off]; dup {
		return
	}
	c.pending[off] = adu.Data
	c.PendingBytes += len(adu.Data)
	c.drain()
}

func (c *Collector) drain() {
	for {
		data, ok := c.pending[c.next]
		if !ok {
			return
		}
		delete(c.pending, c.next)
		c.PendingBytes -= len(data)
		c.next += uint64(len(data))
		if c.OnData != nil {
			c.OnData(data)
		}
	}
}

// SkipTo abandons the gap before offset to (a lost ADU on a
// NoRetransmit stream) and resumes in-order delivery there. It reports
// an error if to is behind the current frontier.
func (c *Collector) SkipTo(to uint64) error {
	if to < c.next {
		return fmt.Errorf("alfio: skip to %d behind frontier %d", to, c.next)
	}
	from := c.next
	// Discard any pending data the skip jumps over.
	for off, data := range c.pending {
		if off < to {
			delete(c.pending, off)
			c.PendingBytes -= len(data)
		}
	}
	c.next = to
	if c.OnSkip != nil {
		c.OnSkip(from, to)
	}
	c.drain()
	return nil
}
