package alfio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

var _ io.WriteCloser = (*Writer)(nil)

type rig struct {
	sched *sim.Scheduler
	w     *Writer
	c     *Collector
	out   bytes.Buffer
}

func newRig(t *testing.T, linkCfg netsim.LinkConfig, acfg alf.Config, aduSize int, seed int64) *rig {
	t.Helper()
	s := sim.NewScheduler()
	n := netsim.New(s, seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, linkCfg)
	snd, err := alf.NewSender(s, ab.Send, acfg)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := alf.NewReceiver(s, ba.Send, acfg)
	if err != nil {
		t.Fatal(err)
	}
	a.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

	r := &rig{sched: s}
	r.w = NewWriter(snd, xcode.SyntaxRaw, aduSize)
	r.c = NewCollector()
	r.c.OnData = func(d []byte) { r.out.Write(d) }
	rcv.OnADU = r.c.HandleADU
	return r
}

func stream(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*17 + i>>7)
	}
	return b
}

func TestStreamRoundtrip(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, alf.Config{}, 4096, 1)
	data := stream(100_000)
	if n, err := r.w.Write(data); err != nil || n != len(data) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if err := r.w.Close(); err != nil {
		t.Fatal(err)
	}
	r.sched.Run()
	if !bytes.Equal(r.out.Bytes(), data) {
		t.Fatalf("stream mismatch: %d of %d bytes", r.out.Len(), len(data))
	}
	if r.c.Pending() != 0 || r.c.PendingBytes != 0 {
		t.Errorf("pending = %d/%d after completion", r.c.Pending(), r.c.PendingBytes)
	}
}

func TestStreamInOrderUnderLoss(t *testing.T) {
	cfg := alf.Config{NackDelay: 5 * time.Millisecond, NackInterval: 5 * time.Millisecond}
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.08}, cfg, 2048, 7)
	data := stream(200_000)
	// In-order invariant checked byte by byte as data arrives.
	seen := 0
	r.c.OnData = func(d []byte) {
		if !bytes.Equal(d, data[seen:seen+len(d)]) {
			t.Fatalf("out-of-order or corrupt delivery at offset %d", seen)
		}
		seen += len(d)
	}
	r.w.Write(data)
	r.w.Close()
	r.sched.Run()
	if seen != len(data) {
		t.Fatalf("delivered %d of %d", seen, len(data))
	}
}

func TestManySmallWritesCoalesce(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, alf.Config{}, 1000, 1)
	var want []byte
	for i := 0; i < 500; i++ {
		chunk := stream(37)
		want = append(want, chunk...)
		r.w.Write(chunk)
	}
	r.w.Close()
	r.sched.Run()
	if !bytes.Equal(r.out.Bytes(), want) {
		t.Fatal("coalesced stream mismatch")
	}
}

func TestFlushEmitsPartial(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, alf.Config{}, 4096, 1)
	r.w.Write([]byte("partial"))
	if err := r.w.Flush(); err != nil {
		t.Fatal(err)
	}
	r.sched.Run()
	if r.out.String() != "partial" {
		t.Fatalf("got %q", r.out.String())
	}
	if r.w.Offset() != 7 {
		t.Errorf("offset = %d", r.w.Offset())
	}
	// Double flush with empty buffer is a no-op.
	if err := r.w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAfterClose(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{}, alf.Config{}, 128, 1)
	r.w.Close()
	if _, err := r.w.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
	if err := r.w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestCollectorSkipTo(t *testing.T) {
	c := NewCollector()
	var got []byte
	var skips [][2]uint64
	c.OnData = func(d []byte) { got = append(got, d...) }
	c.OnSkip = func(from, to uint64) { skips = append(skips, [2]uint64{from, to}) }

	c.HandleADU(alf.ADU{Tag: 0, Data: []byte("aa")})
	c.HandleADU(alf.ADU{Tag: 4, Data: []byte("cc")}) // gap at [2,4)
	if string(got) != "aa" {
		t.Fatalf("premature delivery: %q", got)
	}
	if err := c.SkipTo(4); err != nil {
		t.Fatal(err)
	}
	if string(got) != "aacc" {
		t.Fatalf("after skip: %q", got)
	}
	if len(skips) != 1 || skips[0] != [2]uint64{2, 4} {
		t.Errorf("skips = %v", skips)
	}
	// Skipping backwards is refused.
	if err := c.SkipTo(1); err == nil {
		t.Error("backward skip accepted")
	}
}

func TestCollectorSkipDiscardsJumpedData(t *testing.T) {
	c := NewCollector()
	c.HandleADU(alf.ADU{Tag: 10, Data: []byte("xx")}) // will be jumped over
	c.HandleADU(alf.ADU{Tag: 20, Data: []byte("yy")})
	if err := c.SkipTo(20); err != nil {
		t.Fatal(err)
	}
	if c.PendingBytes != 0 || c.Pending() != 0 {
		t.Errorf("pending %d/%d after skip", c.Pending(), c.PendingBytes)
	}
	if c.Next() != 22 {
		t.Errorf("next = %d, want 22 (drained after skip)", c.Next())
	}
}

func TestCollectorDuplicatesIgnored(t *testing.T) {
	c := NewCollector()
	total := 0
	c.OnData = func(d []byte) { total += len(d) }
	adu := alf.ADU{Tag: 0, Data: []byte("abc")}
	c.HandleADU(adu)
	c.HandleADU(adu) // dup of delivered
	c.HandleADU(alf.ADU{Tag: 10, Data: []byte("z")})
	c.HandleADU(alf.ADU{Tag: 10, Data: []byte("z")}) // dup of pending
	if total != 3 || c.Pending() != 1 {
		t.Errorf("total=%d pending=%d", total, c.Pending())
	}
}

func TestWriterChunkingProperty(t *testing.T) {
	// Any sequence of write sizes produces the identical stream.
	f := func(sizes []uint8, aduSize uint8) bool {
		r := newRig(t, netsim.LinkConfig{}, alf.Config{}, int(aduSize%64)+8, 3)
		var want []byte
		for _, sz := range sizes {
			chunk := stream(int(sz))
			want = append(want, chunk...)
			if _, err := r.w.Write(chunk); err != nil {
				return false
			}
		}
		if err := r.w.Close(); err != nil {
			return false
		}
		r.sched.Run()
		return bytes.Equal(r.out.Bytes(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCollectorSkipWithNoRetransmitStream(t *testing.T) {
	// Full pipeline: a NoRetransmit stream carrying a byte stream; the
	// application wires OnLost to SkipTo so the ordered stream resumes
	// after unrecoverable holes.
	s := sim.NewScheduler()
	n := netsim.New(s, 61)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.1})
	cfg := alf.Config{
		Policy:       alf.NoRetransmit,
		HoldTime:     50 * time.Millisecond,
		NackInterval: 10 * time.Millisecond,
	}
	snd, _ := alf.NewSender(s, ab.Send, cfg)
	rcv, _ := alf.NewReceiver(s, ba.Send, cfg)
	a.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

	const aduSize = 1024
	w := NewWriter(snd, xcode.SyntaxRaw, aduSize)
	c := NewCollector()
	var delivered, skipped int
	c.OnData = func(d []byte) { delivered += len(d) }
	c.OnSkip = func(from, to uint64) { skipped += int(to - from) }
	rcv.OnADU = c.HandleADU
	// The loss report names the ADU; ADU names are sequential and each
	// full ADU is aduSize bytes, so the byte range follows directly.
	rcv.OnLost = func(name uint64) {
		c.SkipTo((name + 1) * aduSize)
	}

	data := stream(200 * aduSize)
	w.Write(data)
	w.Close()
	s.Run()

	if skipped == 0 {
		t.Fatal("no skips at 10% loss on a NoRetransmit stream")
	}
	if delivered+skipped != len(data) {
		t.Errorf("delivered %d + skipped %d != %d", delivered, skipped, len(data))
	}
	if c.Pending() != 0 {
		t.Errorf("pending = %d at end", c.Pending())
	}
}
