// Package atm models the Asynchronous Transfer Mode substrate the paper
// singles out (§1, §5): data travels in 53-byte cells with a 48-byte
// payload, and an adaptation layer consumes part of that payload for
// segmentation, sequence numbering and error detection, leaving a net
// 44 bytes — "the net cell payload, after adaptation, is 44-46 bytes"
// (footnote 9).
//
// The adaptation layer here follows the AAL3/4 shape: each cell carries
// a 2-byte SAR header (segment type, 4-bit sequence number, 10-bit
// message ID), 44 data bytes, and a 2-byte trailer (6-bit length,
// 10-bit CRC). Cell loss is detected by sequence-number gaps, exactly
// the provision the CCITT drafts made "primarily within the Adaptation
// Layer".
package atm

import (
	"errors"
	"fmt"
)

// Cell geometry.
const (
	CellSize   = 53 // header + payload on the wire
	HeaderSize = 5  // VCI, flags, HEC
	PayloadLen = 48 // cell payload available to the adaptation layer
	SARHeader  = 2
	SARTrailer = 2
	SARPayload = PayloadLen - SARHeader - SARTrailer // 44 net data bytes
)

// Segment types in the SAR header.
const (
	stCOM = 0 // continuation of message
	stBOM = 1 // beginning of message
	stEOM = 2 // end of message
	stSSM = 3 // single-segment message
)

// Errors reported by the reassembler. Test with errors.Is.
var (
	ErrCellSize  = errors.New("atm: wrong cell size")
	ErrHEC       = errors.New("atm: header error check failed")
	ErrCRC       = errors.New("atm: SAR payload CRC failed")
	ErrSeqGap    = errors.New("atm: cell sequence gap (cell loss)")
	ErrProtocol  = errors.New("atm: SAR protocol violation")
	ErrOversize  = errors.New("atm: message exceeds reassembly limit")
	ErrBadLength = errors.New("atm: SAR length field invalid")
)

// crc10 implements the AAL3/4 CRC-10 (generator x^10+x^9+x^5+x^4+x+1,
// i.e. 0x633) over the data bits, bit-at-a-time. It is applied to the
// SAR header + data + length field with the CRC field zeroed.
func crc10(crc uint16, data []byte) uint16 {
	const poly = 0x633
	for _, b := range data {
		crc ^= uint16(b) << 2
		for i := 0; i < 8; i++ {
			crc <<= 1
			if crc&0x400 != 0 {
				crc ^= poly
			}
		}
	}
	return crc & 0x3FF
}

// hec computes the 1-byte header error check over the first four header
// bytes (a simple sum; real ATM uses CRC-8, the detection role is the
// same).
func hec(h []byte) byte {
	var s byte
	for _, b := range h[:4] {
		s += b
	}
	return ^s
}

// Segmenter converts messages (ADU-sized byte strings) into cells on one
// virtual circuit. Each message gets the next 10-bit message ID so that
// interleaved reassembly at the receiver can keep circuits' messages
// apart.
type Segmenter struct {
	vci  uint16
	mid  uint16
	cell [CellSize]byte
}

// NewSegmenter returns a segmenter for virtual circuit vci.
func NewSegmenter(vci uint16) *Segmenter {
	return &Segmenter{vci: vci}
}

// CellsFor returns the number of cells needed to carry an n-byte
// message.
func CellsFor(n int) int {
	if n == 0 {
		return 1
	}
	return (n + SARPayload - 1) / SARPayload
}

// Segment splits msg into cells and calls emit for each. The emitted
// slice is reused across calls; emit must copy if it retains (netsim
// links copy on Send, so passing straight to Link.Send is safe).
func (s *Segmenter) Segment(msg []byte, emit func(cell []byte)) {
	mid := s.mid
	s.mid = (s.mid + 1) & 0x3FF

	ncells := CellsFor(len(msg))
	seq := 0
	for i := 0; i < ncells; i++ {
		var st byte
		switch {
		case ncells == 1:
			st = stSSM
		case i == 0:
			st = stBOM
		case i == ncells-1:
			st = stEOM
		default:
			st = stCOM
		}
		chunk := msg
		if len(chunk) > SARPayload {
			chunk = chunk[:SARPayload]
		}
		msg = msg[len(chunk):]
		s.fill(st, byte(seq&0x0F), mid, chunk)
		seq++
		emit(s.cell[:])
	}
}

// fill builds one cell in place.
func (s *Segmenter) fill(st, sn byte, mid uint16, data []byte) {
	c := s.cell[:]
	// Cell header: VCI(2), flags(1), spare(1), HEC(1).
	c[0] = byte(s.vci >> 8)
	c[1] = byte(s.vci)
	c[2] = 0
	c[3] = 0
	c[4] = hec(c)
	// SAR header: ST(2 bits) | SN(4 bits) | MID(10 bits).
	p := c[HeaderSize:]
	p[0] = st<<6 | sn<<2 | byte(mid>>8)
	p[1] = byte(mid)
	// Data + zero pad.
	n := copy(p[SARHeader:SARHeader+SARPayload], data)
	for i := SARHeader + n; i < SARHeader+SARPayload; i++ {
		p[i] = 0
	}
	// Trailer: LI(6 bits) in first byte, CRC-10 across header+data+LI.
	p[PayloadLen-2] = byte(n)
	p[PayloadLen-1] = 0
	crc := crc10(0, p[:PayloadLen-1])
	p[PayloadLen-2] = byte(n)&0x3F | byte(crc>>8)<<6
	p[PayloadLen-1] = byte(crc)
}

// Reassembler rebuilds messages from cells for any number of message
// IDs on one virtual circuit. Complete messages are handed to deliver;
// damaged or gapped messages are dropped and counted.
type Reassembler struct {
	vci     uint16
	deliver func(mid uint16, msg []byte)
	// MaxMessage bounds reassembly buffer growth; messages larger than
	// this are discarded. Zero means DefaultMaxMessage.
	MaxMessage int

	partial map[uint16]*partialMsg
	Stats   ReassemblyStats
}

// DefaultMaxMessage bounds a reassembled message to 1 MiB unless
// overridden.
const DefaultMaxMessage = 1 << 20

// ReassemblyStats counts reassembler events.
type ReassemblyStats struct {
	Cells       int64 // structurally valid cells processed
	BadCells    int64 // wrong size / HEC / CRC / protocol errors
	WrongVCI    int64 // cells for another circuit (ignored, not errors)
	Messages    int64 // complete messages delivered
	DropsSeqGap int64 // messages abandoned due to detected cell loss
	DropsOther  int64 // messages abandoned for other reasons
}

type partialMsg struct {
	buf     []byte
	nextSeq byte
	open    bool
}

// NewReassembler creates a reassembler for circuit vci.
func NewReassembler(vci uint16, deliver func(mid uint16, msg []byte)) *Reassembler {
	return &Reassembler{vci: vci, deliver: deliver, partial: make(map[uint16]*partialMsg)}
}

// Cell processes one received cell. Errors describe why a cell (or the
// message it belonged to) was discarded; processing continues across
// errors.
func (r *Reassembler) Cell(cell []byte) error {
	if len(cell) != CellSize {
		r.Stats.BadCells++
		return fmt.Errorf("%w: %d", ErrCellSize, len(cell))
	}
	if hec(cell) != cell[4] {
		r.Stats.BadCells++
		return ErrHEC
	}
	vci := uint16(cell[0])<<8 | uint16(cell[1])
	if vci != r.vci {
		r.Stats.WrongVCI++
		return nil
	}
	p := cell[HeaderSize:]
	st := p[0] >> 6
	sn := p[0] >> 2 & 0x0F
	mid := uint16(p[0]&0x03)<<8 | uint16(p[1])

	// Verify trailer CRC: recompute over header+data+LI with CRC bits
	// zeroed.
	li := p[PayloadLen-2] & 0x3F
	gotCRC := uint16(p[PayloadLen-2]>>6)<<8 | uint16(p[PayloadLen-1])
	var tmp [PayloadLen - 1]byte
	copy(tmp[:], p[:PayloadLen-1])
	tmp[PayloadLen-2] = li
	if crc10(0, tmp[:]) != gotCRC {
		r.Stats.BadCells++
		// A corrupted cell may hide a gap; the sequence check below
		// will catch it on the next good cell.
		return ErrCRC
	}
	if int(li) > SARPayload {
		r.Stats.BadCells++
		return fmt.Errorf("%w: %d", ErrBadLength, li)
	}
	r.Stats.Cells++
	data := p[SARHeader : SARHeader+int(li)]

	pm := r.partial[mid]
	switch st {
	case stSSM:
		if pm != nil && pm.open {
			r.abandon(mid, &r.Stats.DropsOther)
		}
		r.done(mid, append([]byte(nil), data...))
		return nil
	case stBOM:
		if pm != nil && pm.open {
			r.abandon(mid, &r.Stats.DropsOther)
		}
		r.partial[mid] = &partialMsg{buf: append([]byte(nil), data...), nextSeq: (sn + 1) & 0x0F, open: true}
		return nil
	case stCOM, stEOM:
		if pm != nil && !pm.open {
			// Remainder of a message we are already discarding. EOM ends
			// the discard window.
			if st == stEOM {
				delete(r.partial, mid)
			}
			return nil
		}
		if pm == nil {
			// Middle of a message whose beginning we never saw: the BOM
			// cell was lost. Count the message once and discard the rest.
			r.Stats.DropsSeqGap++
			if st != stEOM {
				r.partial[mid] = &partialMsg{open: false}
			}
			return fmt.Errorf("%w: %s without BOM", ErrSeqGap, stName(st))
		}
		if sn != pm.nextSeq {
			// A cell in the middle was lost. Count once, discard the
			// rest of this message.
			r.Stats.DropsSeqGap++
			if st == stEOM {
				delete(r.partial, mid)
			} else {
				r.partial[mid] = &partialMsg{open: false}
			}
			return fmt.Errorf("%w: seq %d, want %d", ErrSeqGap, sn, pm.nextSeq)
		}
		pm.nextSeq = (sn + 1) & 0x0F
		max := r.MaxMessage
		if max == 0 {
			max = DefaultMaxMessage
		}
		if len(pm.buf)+len(data) > max {
			r.Stats.DropsOther++
			if st == stEOM {
				delete(r.partial, mid)
			} else {
				r.partial[mid] = &partialMsg{open: false}
			}
			return ErrOversize
		}
		pm.buf = append(pm.buf, data...)
		if st == stEOM {
			buf := pm.buf
			delete(r.partial, mid)
			r.done(mid, buf)
		}
		return nil
	default:
		r.Stats.BadCells++
		return ErrProtocol
	}
}

func stName(st byte) string {
	switch st {
	case stBOM:
		return "BOM"
	case stCOM:
		return "COM"
	case stEOM:
		return "EOM"
	case stSSM:
		return "SSM"
	default:
		return "?"
	}
}

func (r *Reassembler) abandon(mid uint16, counter *int64) {
	delete(r.partial, mid)
	*counter++
}

func (r *Reassembler) done(mid uint16, msg []byte) {
	r.Stats.Messages++
	if r.deliver != nil {
		r.deliver(mid, msg)
	}
}

// PendingMessages returns the number of partially reassembled messages.
func (r *Reassembler) PendingMessages() int { return len(r.partial) }
