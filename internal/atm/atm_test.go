package atm

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// segmentAll collects the cells for one message, copying each.
func segmentAll(s *Segmenter, msg []byte) [][]byte {
	var cells [][]byte
	s.Segment(msg, func(c []byte) {
		cells = append(cells, append([]byte(nil), c...))
	})
	return cells
}

func TestGeometry(t *testing.T) {
	if SARPayload != 44 {
		t.Errorf("SARPayload = %d, want 44 (paper: net payload after adaptation is 44-46)", SARPayload)
	}
	if CellSize != 53 || PayloadLen != 48 {
		t.Errorf("cell geometry %d/%d, want 53/48", CellSize, PayloadLen)
	}
}

func TestCellsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {44, 1}, {45, 2}, {88, 2}, {89, 3},
	}
	for _, c := range cases {
		if got := CellsFor(c.n); got != c.want {
			t.Errorf("CellsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSingleCellRoundtrip(t *testing.T) {
	seg := NewSegmenter(7)
	var got []byte
	r := NewReassembler(7, func(mid uint16, msg []byte) { got = msg })
	for _, c := range segmentAll(seg, []byte("tiny")) {
		if err := r.Cell(c); err != nil {
			t.Fatal(err)
		}
	}
	if string(got) != "tiny" {
		t.Fatalf("got %q", got)
	}
	if r.Stats.Messages != 1 {
		t.Errorf("messages = %d", r.Stats.Messages)
	}
}

func TestEmptyMessage(t *testing.T) {
	seg := NewSegmenter(1)
	delivered := false
	r := NewReassembler(1, func(mid uint16, msg []byte) {
		delivered = true
		if len(msg) != 0 {
			t.Errorf("msg = %v, want empty", msg)
		}
	})
	cells := segmentAll(seg, nil)
	if len(cells) != 1 {
		t.Fatalf("cells = %d", len(cells))
	}
	if err := r.Cell(cells[0]); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Error("empty message not delivered")
	}
}

func TestMultiCellRoundtrip(t *testing.T) {
	sizes := []int{45, 88, 100, 1000, 44 * 20}
	for _, n := range sizes {
		seg := NewSegmenter(3)
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i * 7)
		}
		var got []byte
		r := NewReassembler(3, func(mid uint16, m []byte) { got = m })
		cells := segmentAll(seg, msg)
		if len(cells) != CellsFor(n) {
			t.Errorf("n=%d: %d cells, want %d", n, len(cells), CellsFor(n))
		}
		for _, c := range cells {
			if err := r.Cell(c); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("n=%d: reassembly mismatch", n)
		}
	}
}

func TestLostMiddleCellDetected(t *testing.T) {
	seg := NewSegmenter(9)
	msg := make([]byte, 44*5)
	cells := segmentAll(seg, msg)
	r := NewReassembler(9, func(mid uint16, m []byte) {
		t.Error("gapped message delivered")
	})
	var sawGap bool
	for i, c := range cells {
		if i == 2 {
			continue // lose one COM cell
		}
		if err := r.Cell(c); errors.Is(err, ErrSeqGap) {
			sawGap = true
		}
	}
	if !sawGap {
		t.Error("cell loss not detected")
	}
	if r.Stats.DropsSeqGap != 1 {
		t.Errorf("DropsSeqGap = %d, want 1 (counted once per message)", r.Stats.DropsSeqGap)
	}
}

func TestLostBOMDetected(t *testing.T) {
	seg := NewSegmenter(9)
	cells := segmentAll(seg, make([]byte, 44*4))
	r := NewReassembler(9, func(mid uint16, m []byte) { t.Error("delivered") })
	for _, c := range cells[1:] {
		r.Cell(c)
	}
	if r.Stats.DropsSeqGap != 1 {
		t.Errorf("DropsSeqGap = %d, want 1", r.Stats.DropsSeqGap)
	}
	if r.PendingMessages() != 0 {
		t.Errorf("pending = %d after EOM of discarded message", r.PendingMessages())
	}
}

func TestLostEOMThenNextMessage(t *testing.T) {
	seg := NewSegmenter(2)
	m1 := bytes.Repeat([]byte{1}, 44*3)
	m2 := bytes.Repeat([]byte{2}, 44*2)
	c1 := segmentAll(seg, m1)
	c2 := segmentAll(seg, m2)

	var got [][]byte
	r := NewReassembler(2, func(mid uint16, m []byte) { got = append(got, m) })
	for _, c := range c1[:len(c1)-1] { // lose EOM of message 1
		r.Cell(c)
	}
	for _, c := range c2 {
		r.Cell(c)
	}
	// Message 1 must not be delivered; message 2 must be.
	if len(got) != 1 || !bytes.Equal(got[0], m2) {
		t.Fatalf("delivered %d messages", len(got))
	}
	// The unfinished m1 partial hangs on its own MID until garbage
	// collected; with distinct MIDs it cannot corrupt m2.
	if r.Stats.Messages != 1 {
		t.Errorf("Messages = %d", r.Stats.Messages)
	}
}

func TestCorruptedCellCRC(t *testing.T) {
	seg := NewSegmenter(4)
	cells := segmentAll(seg, bytes.Repeat([]byte{0xAA}, 100))
	// Flip a data bit in cell 1: CRC-10 must catch it.
	cells[1][HeaderSize+10] ^= 0x04
	r := NewReassembler(4, func(mid uint16, m []byte) { t.Error("corrupt message delivered") })
	var sawCRC bool
	for _, c := range cells {
		if err := r.Cell(c); errors.Is(err, ErrCRC) {
			sawCRC = true
		}
	}
	if !sawCRC {
		t.Error("corruption not detected by CRC-10")
	}
}

func TestCorruptedHeaderHEC(t *testing.T) {
	seg := NewSegmenter(4)
	cells := segmentAll(seg, []byte("x"))
	cells[0][0] ^= 0x01
	r := NewReassembler(4, nil)
	if err := r.Cell(cells[0]); !errors.Is(err, ErrHEC) {
		t.Errorf("err = %v, want ErrHEC", err)
	}
}

func TestWrongVCIIgnored(t *testing.T) {
	seg := NewSegmenter(5)
	cells := segmentAll(seg, []byte("x"))
	r := NewReassembler(6, func(mid uint16, m []byte) { t.Error("delivered on wrong VCI") })
	if err := r.Cell(cells[0]); err != nil {
		t.Errorf("wrong VCI should be silently ignored, got %v", err)
	}
	if r.Stats.WrongVCI != 1 {
		t.Errorf("WrongVCI = %d", r.Stats.WrongVCI)
	}
}

func TestWrongSizeCell(t *testing.T) {
	r := NewReassembler(1, nil)
	if err := r.Cell(make([]byte, 52)); !errors.Is(err, ErrCellSize) {
		t.Errorf("err = %v, want ErrCellSize", err)
	}
}

func TestInterleavedMessages(t *testing.T) {
	// Two segmenters on the same VCI with different MIDs interleave;
	// the reassembler must keep them apart. (Emulates two senders
	// multiplexed onto a circuit.)
	segA := NewSegmenter(8)
	segB := NewSegmenter(8)
	segB.mid = 512 // force distinct MID space
	mA := bytes.Repeat([]byte{0xA}, 44*3)
	mB := bytes.Repeat([]byte{0xB}, 44*3)
	ca := segmentAll(segA, mA)
	cb := segmentAll(segB, mB)

	var got [][]byte
	r := NewReassembler(8, func(mid uint16, m []byte) { got = append(got, m) })
	for i := range ca {
		r.Cell(ca[i])
		r.Cell(cb[i])
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2", len(got))
	}
	ok := bytes.Equal(got[0], mA) && bytes.Equal(got[1], mB) ||
		bytes.Equal(got[0], mB) && bytes.Equal(got[1], mA)
	if !ok {
		t.Error("interleaved messages mixed")
	}
}

func TestSequenceNumbersWrap(t *testing.T) {
	// A message longer than 16 cells exercises the 4-bit SN wrap.
	seg := NewSegmenter(1)
	msg := make([]byte, 44*40)
	for i := range msg {
		msg[i] = byte(i)
	}
	var got []byte
	r := NewReassembler(1, func(mid uint16, m []byte) { got = m })
	for _, c := range segmentAll(seg, msg) {
		if err := r.Cell(c); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, msg) {
		t.Error("long message mismatch across SN wrap")
	}
}

func TestOversizeMessageBounded(t *testing.T) {
	seg := NewSegmenter(1)
	r := NewReassembler(1, func(mid uint16, m []byte) { t.Error("oversize delivered") })
	r.MaxMessage = 100
	var sawOversize bool
	for _, c := range segmentAll(seg, make([]byte, 44*10)) {
		if err := r.Cell(c); errors.Is(err, ErrOversize) {
			sawOversize = true
		}
	}
	if !sawOversize {
		t.Error("oversize message not rejected")
	}
	if r.Stats.DropsOther != 1 {
		t.Errorf("DropsOther = %d, want 1", r.Stats.DropsOther)
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(msg []byte) bool {
		if len(msg) > 44*100 {
			msg = msg[:44*100]
		}
		seg := NewSegmenter(2)
		var got []byte
		ok := false
		r := NewReassembler(2, func(mid uint16, m []byte) { got = m; ok = true })
		for _, c := range segmentAll(seg, msg) {
			if err := r.Cell(c); err != nil {
				return false
			}
		}
		return ok && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCRC10KnownProperties(t *testing.T) {
	// CRC of empty data is 0; CRC is sensitive to single-bit changes.
	if crc10(0, nil) != 0 {
		t.Error("crc10(nil) != 0")
	}
	a := []byte("hello world")
	b := []byte("hellp world")
	if crc10(0, a) == crc10(0, b) {
		t.Error("crc10 collision on single-bit-ish change")
	}
	if crc10(0, a)&^0x3FF != 0 {
		t.Error("crc10 wider than 10 bits")
	}
}

func TestOverNetsimLossyLink(t *testing.T) {
	// End-to-end over netsim: messages over a cell-loss link; the
	// reassembler must deliver only intact messages, and cell loss must
	// translate into whole-message loss (the ADU loss-unit argument).
	s := sim.NewScheduler()
	n := netsim.New(s, 21)
	a := n.NewNode("a")
	b := n.NewNode("b")
	link := n.NewLink(a, b, netsim.LinkConfig{MTU: CellSize, LossProb: 0.02})

	seg := NewSegmenter(1)
	delivered := 0
	r := NewReassembler(1, func(mid uint16, m []byte) { delivered++ })
	b.SetHandler(func(p *netsim.Packet) { r.Cell(p.Payload) })

	const nmsg = 300
	msg := make([]byte, 44*10) // 10 cells per message
	for i := 0; i < nmsg; i++ {
		seg.Segment(msg, func(c []byte) { link.Send(c) })
	}
	s.Run()

	if delivered == 0 || delivered == nmsg {
		t.Fatalf("delivered = %d of %d, want partial", delivered, nmsg)
	}
	// With ~2% cell loss and 10 cells/message, P(msg survives) ~ 0.98^10
	// ~ 0.82. Allow a wide band.
	frac := float64(delivered) / nmsg
	if frac < 0.70 || frac > 0.92 {
		t.Errorf("survival rate = %v, want ~0.82", frac)
	}
	if r.Stats.DropsSeqGap == 0 {
		t.Error("no sequence-gap drops recorded despite cell loss")
	}
}

func TestArbitraryCellLossNeverCorrupts(t *testing.T) {
	// Property: deliver any subset of a message's cells in order — the
	// reassembler either delivers the exact original or nothing.
	f := func(msgSeed int64, dropMask uint32) bool {
		r := rand.New(rand.NewSource(msgSeed))
		msg := make([]byte, 44*8+r.Intn(100))
		r.Read(msg)
		seg := NewSegmenter(6)
		var delivered [][]byte
		re := NewReassembler(6, func(mid uint16, m []byte) {
			delivered = append(delivered, m)
		})
		i := 0
		seg.Segment(msg, func(c []byte) {
			if dropMask&(1<<uint(i%32)) == 0 {
				re.Cell(append([]byte(nil), c...))
			}
			i++
		})
		for _, d := range delivered {
			if !bytes.Equal(d, msg) {
				return false
			}
		}
		return len(delivered) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReassemblerFuzzNeverPanics(t *testing.T) {
	re := NewReassembler(1, func(uint16, []byte) {})
	f := func(cell []byte) bool {
		re.Cell(cell)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Also fuzz with correct-size cells (random contents).
	g := func(body [CellSize]byte) bool {
		re.Cell(body[:])
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
