// Package buf provides pooled, reference-counted wire buffers — the
// allocation-free substrate under the transport datapath.
//
// The paper's §4 argument is that touching memory dominates protocol
// cost; its §6 conclusion is that data should cross layers without one
// pass (or one allocation) per layer. The fused kernels in internal/ilp
// remove the extra passes; this package removes the extra allocations
// and copies around them:
//
//   - A Pool hands out size-classed slabs and takes them back, so the
//     steady-state send/forward/receive path allocates nothing.
//   - A Ref is a counted reference to one slab. The sender, the network
//     simulator, sender-side retention, and duplicated deliveries can
//     all hold the same bytes at once; the last Release returns the
//     slab to the pool.
//   - Headroom-aware views let a protocol header be prepended in place
//     (Prepend), so packetization writes the payload once and never
//     copies it again to make room for the header.
//
// Ownership rules (see docs/ARCHITECTURE.md, "The buffer plane"):
//
//   - Get returns a Ref with count 1; whoever holds a count owns one
//     release.
//   - Passing a Ref to a function transfers the caller's count unless
//     the callee's contract says otherwise; keep your own with Retain.
//   - The bytes of a shared Ref (Shared() == true) are immutable: a
//     holder that must mutate (e.g. netsim's bit-error impairment)
//     clones first (copy-on-write).
//
// Counts are atomic and the pool is mutex-guarded, so refs may be
// retained and released across goroutines, but a single Ref's view
// (Prepend/Trim) must not be reshaped concurrently.
package buf

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Size classes are powers of two from minClass to maxClass; larger
// buffers are allocated exactly and never pooled (they would pin large
// slabs for rare jumbo ADUs).
const (
	minClassBits = 6  // 64 B
	maxClassBits = 24 // 16 MiB, the default MaxADU
	numClasses   = maxClassBits - minClassBits + 1
)

// classFor returns the size-class index for a capacity, or -1 when the
// capacity is too large to pool.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassBits
	if c >= numClasses {
		return -1
	}
	return c
}

// Stats counts pool events. Gets - News is the number of recycled
// hand-outs; a steady-state datapath shows News flat while Gets climbs.
type Stats struct {
	Gets     int64 // buffers handed out
	Puts     int64 // buffers returned
	News     int64 // pool misses: a fresh Ref had to be allocated
	Unpooled int64 // over-maxClass allocations, never recycled
}

// Pool hands out refcounted slab buffers by size class. The zero value
// is not usable; create pools with NewPool. Pools are safe for
// concurrent use.
type Pool struct {
	mu      sync.Mutex
	classes [numClasses][]*Ref
	free    []*Ref // Ref structs whose slabs were unpooled
	stats   Stats
}

// Default is the process-wide pool the transport layers fall back to
// when no explicit pool is configured. Sharing one pool closes the
// recycling loop end to end: a fragment slab released by the network
// after delivery is the next fragment the sender gets.
var Default = NewPool()

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// BindMetrics registers the pool's counters as func-backed series with
// r, sampled at snapshot time. Pass a scoped view (Registry.Scope) to
// keep several pool arenas — e.g. one per shard of the sharded
// endpoint — distinct under the same names. Nil r is a no-op.
func (p *Pool) BindMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("buf.pool.gets", func() int64 { return p.Stats().Gets })
	r.CounterFunc("buf.pool.puts", func() int64 { return p.Stats().Puts })
	r.CounterFunc("buf.pool.news", func() int64 { return p.Stats().News })
	r.CounterFunc("buf.pool.unpooled", func() int64 { return p.Stats().Unpooled })
}

// Get returns a Ref viewing n bytes with no headroom and a reference
// count of 1. The bytes are not zeroed.
func (p *Pool) Get(n int) *Ref { return p.GetHeadroom(n, 0) }

// GetHeadroom returns a Ref viewing n bytes, preceded by at least
// headroom spare bytes that Prepend can later claim for a header
// without moving the payload. The view's bytes are not zeroed.
func (p *Pool) GetHeadroom(n, headroom int) *Ref {
	if n < 0 || headroom < 0 {
		panic("buf: negative size")
	}
	need := n + headroom
	c := classFor(need)
	p.mu.Lock()
	p.stats.Gets++
	var r *Ref
	if c >= 0 {
		if fl := p.classes[c]; len(fl) > 0 {
			r = fl[len(fl)-1]
			fl[len(fl)-1] = nil
			p.classes[c] = fl[:len(fl)-1]
		}
	}
	if r == nil && len(p.free) > 0 {
		r = p.free[len(p.free)-1]
		p.free[len(p.free)-1] = nil
		p.free = p.free[:len(p.free)-1]
	}
	if r == nil {
		p.stats.News++
		r = &Ref{pool: p}
	}
	if c >= 0 {
		if want := 1 << (uint(c) + minClassBits); len(r.slab) != want {
			r.slab = make([]byte, want)
		}
	} else {
		p.stats.Unpooled++
		r.slab = make([]byte, need)
	}
	p.mu.Unlock()
	r.off, r.n = headroom, n
	r.refs.Store(1)
	return r
}

// put returns a released ref to the freelist.
func (p *Pool) put(r *Ref) {
	c := classFor(len(r.slab))
	if c >= 0 && len(r.slab) != 1<<(uint(c)+minClassBits) {
		c = -1 // unpooled exact-size slab; drop it
	}
	p.mu.Lock()
	p.stats.Puts++
	if c >= 0 {
		p.classes[c] = append(p.classes[c], r)
	} else {
		r.slab = nil
		p.free = append(p.free, r)
	}
	p.mu.Unlock()
}

// Ref is one counted reference to a pooled slab, exposing a
// [off, off+n) view of it. Create refs with Pool.Get/GetHeadroom.
type Ref struct {
	pool *Pool
	slab []byte
	off  int
	n    int
	refs atomic.Int32
}

// Bytes returns the current view. The slice is valid until the last
// reference is released; a shared ref's bytes must not be mutated.
func (r *Ref) Bytes() []byte { return r.slab[r.off : r.off+r.n] }

// Len returns the view length.
func (r *Ref) Len() int { return r.n }

// Headroom returns the spare bytes in front of the view that Prepend
// may still claim.
func (r *Ref) Headroom() int { return r.off }

// Shared reports whether more than one reference is outstanding.
// Holders must treat a shared ref's bytes as immutable.
func (r *Ref) Shared() bool { return r.refs.Load() > 1 }

// Retain adds a reference and returns r for chaining.
func (r *Ref) Retain() *Ref {
	if r.refs.Add(1) <= 1 {
		panic("buf: Retain of released ref")
	}
	return r
}

// Release drops one reference. The last release returns the slab to
// the pool; using the view after that is a use-after-free.
func (r *Ref) Release() {
	switch left := r.refs.Add(-1); {
	case left == 0:
		r.pool.put(r)
	case left < 0:
		panic("buf: Release of released ref")
	}
}

// Prepend grows the view downward by k bytes — claiming headroom so a
// header lands immediately before the payload with no copy — and
// returns the newly exposed front region. It panics when less than k
// headroom remains.
func (r *Ref) Prepend(k int) []byte {
	if k < 0 || k > r.off {
		panic(fmt.Sprintf("buf: Prepend(%d) with %d headroom", k, r.off))
	}
	r.off -= k
	r.n += k
	return r.slab[r.off : r.off+k]
}

// Trim shrinks the view to its first n bytes. It panics when n exceeds
// the current length.
func (r *Ref) Trim(n int) {
	if n < 0 || n > r.n {
		panic(fmt.Sprintf("buf: Trim(%d) of %d-byte view", n, r.n))
	}
	r.n = n
}

// Clone returns an independent count-1 copy of the view taken from the
// same pool, preserving the current headroom. This is the
// copy-on-write step for holders that must mutate shared bytes.
func (r *Ref) Clone() *Ref {
	c := r.pool.GetHeadroom(r.n, r.off)
	copy(c.Bytes(), r.Bytes())
	return c
}
