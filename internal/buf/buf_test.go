package buf

import (
	"bytes"
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 24, maxClassBits - minClassBits}, {1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetReleaseRecycles(t *testing.T) {
	p := NewPool()
	r := p.Get(100)
	if r.Len() != 100 {
		t.Fatalf("Len = %d", r.Len())
	}
	slab := &r.slab[0]
	r.Release()
	r2 := p.Get(80) // same class (128)
	if &r2.slab[0] != slab {
		t.Error("expected slab reuse within the class")
	}
	st := p.Stats()
	if st.Gets != 2 || st.Puts != 1 || st.News != 1 {
		t.Errorf("stats = %+v", st)
	}
	r2.Release()
}

func TestRetainDelaysRecycle(t *testing.T) {
	p := NewPool()
	r := p.Get(64)
	copy(r.Bytes(), "hello")
	r.Retain()
	r.Release()
	if got := string(r.Bytes()[:5]); got != "hello" {
		t.Fatalf("bytes after first release = %q", got)
	}
	if r.Shared() {
		t.Error("Shared after one release of two refs")
	}
	r.Release()
	if p.Stats().Puts != 1 {
		t.Error("slab not returned after last release")
	}
}

func TestHeadroomPrepend(t *testing.T) {
	p := NewPool()
	r := p.GetHeadroom(32, 16)
	if r.Headroom() != 16 || r.Len() != 32 {
		t.Fatalf("headroom %d len %d", r.Headroom(), r.Len())
	}
	payload := r.Bytes()
	for i := range payload {
		payload[i] = byte(i)
	}
	hdr := r.Prepend(8)
	if len(hdr) != 8 || r.Len() != 40 || r.Headroom() != 8 {
		t.Fatalf("after prepend: hdr %d len %d headroom %d", len(hdr), r.Len(), r.Headroom())
	}
	copy(hdr, "HDRHDRHD")
	want := append([]byte("HDRHDRHD"), payload...)
	if !bytes.Equal(r.Bytes(), want) {
		t.Error("prepend moved or corrupted the payload")
	}
	// The payload slice and the grown view alias the same memory.
	if &r.Bytes()[8] != &payload[0] {
		t.Error("payload was copied by Prepend")
	}
}

func TestTrim(t *testing.T) {
	p := NewPool()
	r := p.Get(64)
	r.Trim(10)
	if r.Len() != 10 {
		t.Fatalf("Len = %d", r.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("Trim beyond view did not panic")
		}
	}()
	r.Trim(11)
}

func TestCloneIsIndependent(t *testing.T) {
	p := NewPool()
	r := p.GetHeadroom(16, 4)
	copy(r.Bytes(), "abcdefghijklmnop")
	c := r.Clone()
	if !bytes.Equal(c.Bytes(), r.Bytes()) {
		t.Fatal("clone differs")
	}
	if c.Headroom() != r.Headroom() {
		t.Error("clone lost headroom")
	}
	c.Bytes()[0] = 'X'
	if r.Bytes()[0] != 'a' {
		t.Error("clone shares backing store")
	}
	c.Release()
	r.Release()
}

func TestUnpooledLargeBuffer(t *testing.T) {
	p := NewPool()
	r := p.Get(1<<24 + 1)
	if r.Len() != 1<<24+1 {
		t.Fatalf("Len = %d", r.Len())
	}
	r.Release()
	if st := p.Stats(); st.Unpooled != 1 {
		t.Errorf("Unpooled = %d", st.Unpooled)
	}
	// The Ref struct is recycled even though the slab is not.
	r2 := p.Get(64)
	if st := p.Stats(); st.News != 1 {
		t.Errorf("News = %d after large-then-small, want 1", st.News)
	}
	r2.Release()
}

func TestReleasePanicsOnDouble(t *testing.T) {
	p := NewPool()
	r := p.Get(8)
	r.Release()
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	r.Release()
}

func TestConcurrentRetainRelease(t *testing.T) {
	p := NewPool()
	const workers = 8
	r := p.Get(128)
	for i := 0; i < workers; i++ {
		r.Retain()
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = r.Bytes()[0]
			r.Release()
		}()
	}
	wg.Wait()
	r.Release()
	if st := p.Stats(); st.Puts != 1 {
		t.Errorf("Puts = %d", st.Puts)
	}
}

func TestSteadyStateZeroAlloc(t *testing.T) {
	p := NewPool()
	warm := p.GetHeadroom(1024, 34)
	warm.Release()
	allocs := testing.AllocsPerRun(1000, func() {
		r := p.GetHeadroom(1024, 34)
		r.Prepend(34)
		r.Release()
	})
	if allocs != 0 {
		t.Errorf("steady-state Get/Prepend/Release allocates %.1f/op", allocs)
	}
}

func BenchmarkGetRelease(b *testing.B) {
	p := NewPool()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := p.GetHeadroom(1024, 34)
		r.Release()
	}
}
