// Package checksum implements the error-detection kernels used as data
// manipulation stages throughout the stack: the Internet one's-complement
// checksum (the "TCP checksum" of the paper's Table 1), Fletcher-32, and
// CRC-32.
//
// The Internet checksum is written word-at-a-time with an unrolled inner
// loop, mirroring the hand-coded unrolled loops the paper measured. All
// functions are allocation-free.
package checksum

import "encoding/binary"

// Sum16 computes the Internet checksum (RFC 1071 style: 16-bit one's
// complement of the one's-complement sum) over data. The returned value
// is the checksum field content: the complemented fold of the sum.
func Sum16(data []byte) uint16 {
	return ^Fold(Accumulate(0, data))
}

// Verify16 reports whether data whose trailing/embedded checksum is
// already included sums to the all-ones pattern, i.e. the data is intact.
func Verify16(data []byte) bool {
	return Fold(Accumulate(0, data)) == 0xffff
}

// Accumulate adds data into a running 32-bit partial one's-complement
// sum. Use Fold to collapse the result to 16 bits. Partial sums over
// consecutive even-length chunks may be chained; data here is treated as
// big-endian 16-bit words with an implicit zero pad on odd length (so
// only the final chunk of a chained computation may have odd length).
//
// The inner loop is unrolled eight words at a time, the paper's
// "hand coded unrolled loop" discipline.
func Accumulate(sum uint64, data []byte) uint64 {
	// 8x unrolled 16-bit word loop.
	for len(data) >= 16 {
		sum += uint64(binary.BigEndian.Uint16(data[0:2])) +
			uint64(binary.BigEndian.Uint16(data[2:4])) +
			uint64(binary.BigEndian.Uint16(data[4:6])) +
			uint64(binary.BigEndian.Uint16(data[6:8])) +
			uint64(binary.BigEndian.Uint16(data[8:10])) +
			uint64(binary.BigEndian.Uint16(data[10:12])) +
			uint64(binary.BigEndian.Uint16(data[12:14])) +
			uint64(binary.BigEndian.Uint16(data[14:16]))
		data = data[16:]
	}
	for len(data) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(data[0:2]))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint64(data[0]) << 8
	}
	return sum
}

// Fold collapses a partial sum into the 16-bit one's-complement result
// (not yet complemented).
func Fold(sum uint64) uint16 {
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return uint16(sum)
}

// Fletcher32 computes the Fletcher-32 checksum over data, treating it as
// a sequence of big-endian 16-bit words (odd length is zero-padded).
// Offered as the cheaper alternative error code for ablations.
func Fletcher32(data []byte) uint32 {
	var c0, c1 uint32
	for len(data) > 0 {
		// Fletcher requires periodic modular reduction; 359 words is the
		// largest block that cannot overflow 32-bit accumulators.
		block := len(data)
		if block > 718 {
			block = 718
		}
		chunk := data[:block]
		data = data[block:]
		for len(chunk) >= 2 {
			c0 += uint32(binary.BigEndian.Uint16(chunk[0:2]))
			c1 += c0
			chunk = chunk[2:]
		}
		if len(chunk) == 1 {
			c0 += uint32(chunk[0]) << 8
			c1 += c0
		}
		c0 %= 65535
		c1 %= 65535
	}
	return c1<<16 | c0
}

// crcTable is the IEEE 802.3 reflected CRC-32 lookup table, built at
// package init from the reversed polynomial 0xEDB88320.
var crcTable [256]uint32

func init() {
	const poly = 0xEDB88320
	for i := range crcTable {
		crc := uint32(i)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
		crcTable[i] = crc
	}
}

// CRC32 computes the IEEE CRC-32 of data (same algorithm as Ethernet,
// gzip, and hash/crc32's IEEE table), implemented from scratch with the
// standard byte-wise table method.
func CRC32(data []byte) uint32 {
	return CRC32Update(0, data)
}

// CRC32Update continues a CRC-32 computation: pass the previous return
// value (or 0 to start) and the next chunk.
func CRC32Update(crc uint32, data []byte) uint32 {
	crc = ^crc
	for _, b := range data {
		crc = crcTable[byte(crc)^b] ^ crc>>8
	}
	return ^crc
}
