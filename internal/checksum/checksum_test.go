package checksum

import (
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSum16KnownVector(t *testing.T) {
	// Classic RFC 1071 worked example: the words 0x0001, 0xf203, 0xf4f5,
	// 0xf6f7 sum to 0x2ddf0 -> fold 0xddf2 -> complement 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Sum16(data); got != 0x220d {
		t.Errorf("Sum16 = %#04x, want 0x220d", got)
	}
}

func TestSum16Empty(t *testing.T) {
	if got := Sum16(nil); got != 0xffff {
		t.Errorf("Sum16(nil) = %#04x, want 0xffff", got)
	}
}

func TestSum16OddLength(t *testing.T) {
	// Odd final byte is padded with zero on the right: 0xab00.
	if got := Sum16([]byte{0xab}); got != ^uint16(0xab00) {
		t.Errorf("Sum16 odd = %#04x, want %#04x", got, ^uint16(0xab00))
	}
}

func TestVerify16RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(4096) + 2
		if n%2 != 0 {
			n++
		}
		data := make([]byte, n)
		r.Read(data)
		// Zero a checksum slot, compute, insert, verify.
		data[0], data[1] = 0, 0
		ck := Sum16(data)
		data[0], data[1] = byte(ck>>8), byte(ck)
		if !Verify16(data) {
			t.Fatalf("trial %d: verify failed after inserting checksum", trial)
		}
		// Flip one bit: must fail (one's-complement sum detects all
		// single-bit errors).
		pos := r.Intn(n)
		data[pos] ^= 1 << uint(r.Intn(8))
		if Verify16(data) {
			t.Fatalf("trial %d: verify passed with flipped bit", trial)
		}
	}
}

func TestAccumulateChaining(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := make([]byte, 1024)
	r.Read(data)
	whole := Fold(Accumulate(0, data))
	// Chain over even-length chunks must match.
	sum := uint64(0)
	for i := 0; i < len(data); i += 128 {
		sum = Accumulate(sum, data[i:i+128])
	}
	if Fold(sum) != whole {
		t.Error("chained accumulation differs from whole-buffer sum")
	}
}

func TestSum16ByteSwapInvariance(t *testing.T) {
	// A well-known property: swapping the two bytes within any 16-bit
	// word leaves the one's-complement sum... NOT invariant, but
	// reordering whole 16-bit words does. Verify word-reorder invariance.
	data := []byte{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc}
	perm := []byte{0x9a, 0xbc, 0x12, 0x34, 0x56, 0x78}
	if Sum16(data) != Sum16(perm) {
		t.Error("word reordering changed the one's-complement sum")
	}
}

func TestSum16PropertyMatchesReference(t *testing.T) {
	// Reference: naive two-byte-at-a-time implementation.
	ref := func(data []byte) uint16 {
		var sum uint32
		for i := 0; i+1 < len(data); i += 2 {
			sum += uint32(data[i])<<8 | uint32(data[i+1])
		}
		if len(data)%2 == 1 {
			sum += uint32(data[len(data)-1]) << 8
		}
		for sum > 0xffff {
			sum = sum>>16 + sum&0xffff
		}
		return ^uint16(sum)
	}
	f := func(data []byte) bool { return Sum16(data) == ref(data) }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	f := func(data []byte) bool {
		return CRC32(data) == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCRC32KnownVector(t *testing.T) {
	if got := CRC32([]byte("123456789")); got != 0xCBF43926 {
		t.Errorf("CRC32 check value = %#08x, want 0xCBF43926", got)
	}
}

func TestCRC32UpdateChaining(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	whole := CRC32(data)
	part := CRC32Update(CRC32Update(0, data[:10]), data[10:])
	if part != whole {
		t.Errorf("chained CRC %#08x != whole %#08x", part, whole)
	}
}

func TestFletcher32KnownVectors(t *testing.T) {
	// The classic literature vectors ("abcde" -> 0xF04FC729) are stated
	// for little-endian 16-bit words. This package uses network byte
	// order, so the expected values are the same sums over byte-swapped
	// words, computed here with an independent per-word-reduction
	// reference.
	ref := func(in []byte) uint32 {
		var c0, c1 uint32
		for i := 0; i < len(in); i += 2 {
			w := uint32(in[i]) << 8
			if i+1 < len(in) {
				w |= uint32(in[i+1])
			}
			c0 = (c0 + w) % 65535
			c1 = (c1 + c0) % 65535
		}
		return c1<<16 | c0
	}
	for _, in := range []string{"", "a", "ab", "abcde", "abcdef", "abcdefgh"} {
		if got, want := Fletcher32([]byte(in)), ref([]byte(in)); got != want {
			t.Errorf("Fletcher32(%q) = %#08x, want %#08x", in, got, want)
		}
	}
	// Spot-check against the published little-endian vector by swapping
	// input bytes pairwise: Fletcher32_BE(swap("abcde")) == 0xF04FC729.
	swapped := []byte{'b', 'a', 'd', 'c', 0, 'e'}
	if got := Fletcher32(swapped); got != 0xF04FC729 {
		t.Errorf("byte-swapped literature vector = %#08x, want 0xF04FC729", got)
	}
}

func TestFletcher32LargeNoOverflow(t *testing.T) {
	// A long run of 0xff words stresses the modular-reduction blocking.
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = 0xff
	}
	got := Fletcher32(data)
	// Reference with per-word reduction.
	var c0, c1 uint32
	for i := 0; i < len(data); i += 2 {
		c0 = (c0 + 0xffff) % 65535
		c1 = (c1 + c0) % 65535
	}
	want := c1<<16 | c0
	if got != want {
		t.Errorf("Fletcher32 = %#08x, want %#08x", got, want)
	}
}

func TestFletcher32DetectsTransposition(t *testing.T) {
	// Unlike the plain sum, Fletcher is position-sensitive.
	a := Fletcher32([]byte{1, 2, 3, 4})
	b := Fletcher32([]byte{3, 4, 1, 2})
	if a == b {
		t.Error("Fletcher32 failed to detect word transposition")
	}
}

func BenchmarkSum16_4KB(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum16(data)
	}
}

func BenchmarkCRC32_4KB(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CRC32(data)
	}
}

func BenchmarkFletcher32_4KB(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Fletcher32(data)
	}
}
