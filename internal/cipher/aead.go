package cipher

import "encoding/binary"

// Seal is the RFC 8439 §2.8 AEAD_CHACHA20_POLY1305 construction:
// encrypt plaintext with the keystream starting at block counter 1,
// authenticate aad‖pad16‖ciphertext‖pad16‖len(aad)‖len(ciphertext)
// under the one-time key from block counter 0, and append the 16-byte
// tag. The ciphertext‖tag is appended to dst and returned.
//
// The transport datapath does not use Seal/Open — it fuses the same
// primitives per fragment (see ilp.FusedEncryptCopyMAC); Seal exists as
// the staged reference construction, anchored to the RFC §2.8.2 test
// vector, that the fused path is cross-checked against.
func Seal(dst []byte, key *Key, nonce *[NonceSize]byte, plaintext, aad []byte) []byte {
	off := len(dst)
	n := len(plaintext)
	dst = append(dst, make([]byte, n+TagSize)...)
	ct := dst[off : off+n]
	XORKeyStream(key, nonce, 0, ct, plaintext)
	var otk [KeySize]byte
	TagKey(key, nonce, 0, &otk)
	mac := NewMAC(&otk)
	macPadded(&mac, aad)
	macPadded(&mac, ct)
	var lens [16]byte
	binary.LittleEndian.PutUint64(lens[0:8], uint64(len(aad)))
	binary.LittleEndian.PutUint64(lens[8:16], uint64(n))
	mac.Update(lens[:])
	mac.Sum(dst[off+n : off+n+TagSize])
	return dst
}

// Open verifies and decrypts a Seal output (ciphertext‖tag). The
// plaintext is appended to dst; ok is false (and dst is returned
// unextended) if the tag does not authenticate.
func Open(dst []byte, key *Key, nonce *[NonceSize]byte, box, aad []byte) ([]byte, bool) {
	if len(box) < TagSize {
		return dst, false
	}
	ct, tag := box[:len(box)-TagSize], box[len(box)-TagSize:]
	var otk [KeySize]byte
	TagKey(key, nonce, 0, &otk)
	mac := NewMAC(&otk)
	macPadded(&mac, aad)
	macPadded(&mac, ct)
	var lens [16]byte
	binary.LittleEndian.PutUint64(lens[0:8], uint64(len(aad)))
	binary.LittleEndian.PutUint64(lens[8:16], uint64(len(ct)))
	mac.Update(lens[:])
	if !mac.Verify(tag) {
		return dst, false
	}
	off := len(dst)
	dst = append(dst, make([]byte, len(ct))...)
	XORKeyStream(key, nonce, 0, dst[off:], ct)
	return dst, true
}

// macPadded absorbs p followed by zero padding to a 16-byte boundary
// (RFC 8439 §2.8's pad16).
func macPadded(mac *MAC, p []byte) {
	mac.Update(p)
	if r := len(p) % 16; r != 0 {
		var pad [16]byte
		mac.Update(pad[:16-r])
	}
}
