package cipher

import "testing"

func BenchmarkChaCha20Block(b *testing.B) {
	key := ExpandKey(1)
	var nonce [NonceSize]byte
	var out [BlockSize]byte
	b.SetBytes(BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Block(&key, &nonce, uint32(i), &out)
	}
}

func BenchmarkXORKeyStream4KB(b *testing.B) {
	key := ExpandKey(2)
	var nonce [NonceSize]byte
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XORKeyStream(&key, &nonce, 0, buf, buf)
	}
}

func BenchmarkPoly1305_4KB(b *testing.B) {
	var otk [KeySize]byte
	for i := range otk {
		otk[i] = byte(i)
	}
	buf := make([]byte, 4096)
	var tag [TagSize]byte
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewMAC(&otk)
		m.Update(buf)
		m.Sum(tag[:])
	}
}
