// Package cipher implements RFC 8439 ChaCha20 and Poly1305 in pure Go
// with no dependencies, shaped for Integrated Layer Processing: the
// ChaCha20 block function is addressable by 64-byte block counter, so —
// exactly like scramble.WordAt — any 8-byte-aligned fragment offset is
// its own cryptographic synchronization point and ADU fragments can be
// enciphered/deciphered out of order. internal/ilp fuses the keystream
// generation, the layer-boundary copy, and the Poly1305 accumulation
// into one loop over the payload (see ilp.FusedEncryptCopyMAC).
//
// The primitives here are the real RFC 8439 constructions (verified
// against the RFC test vectors in vectors_test.go); the repo-specific
// part is only how the transport assigns nonces and counters (see
// internal/core). Unlike package scramble this IS a real cipher, but
// the transport's key-management story (ExpandKey from a 64-bit
// benchmark seed) is not: treat the integration as a measured datapath,
// not a vetted secure channel.
package cipher

import "encoding/binary"

const (
	// KeySize is the ChaCha20 (and derived Poly1305) key size in bytes.
	KeySize = 32
	// NonceSize is the RFC 8439 96-bit nonce size in bytes.
	NonceSize = 12
	// BlockSize is the ChaCha20 keystream block size in bytes.
	BlockSize = 64
	// TagSize is the Poly1305 authenticator size in bytes.
	TagSize = 16
)

// Key is an expanded ChaCha20 key: the eight little-endian 32-bit words
// of the 256-bit key, ready to drop into the block-function state. It
// is a value type so configs can embed it with no per-packet pointer
// chasing or allocation.
type Key struct {
	k [8]uint32
}

// NewKey expands a 32-byte key.
func NewKey(key *[KeySize]byte) Key {
	var k Key
	for i := range k.k {
		k.k[i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	return k
}

// ExpandKey derives a 256-bit key from a 64-bit seed with a splitmix64
// stream. It exists so configs keyed by a uint64 (the legacy scramble
// convention) can opt into the AEAD suite without new plumbing; a seed
// has only 64 bits of entropy, so use NewKey with a real key when the
// key material matters.
func ExpandKey(seed uint64) Key {
	var k Key
	s := seed
	for i := 0; i < 4; i++ {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		z ^= z >> 31
		k.k[2*i] = uint32(z)
		k.k[2*i+1] = uint32(z >> 32)
	}
	return k
}

// Block computes one ChaCha20 block (RFC 8439 §2.3): 20 rounds over the
// 4×4 word state [constants | key | counter nonce], plus the initial
// state, serialized little-endian into out. It is the seekable
// primitive everything else builds on: counter c yields keystream bytes
// [64c, 64c+64) of the (key, nonce) stream.
func Block(key *Key, nonce *[NonceSize]byte, counter uint32, out *[BlockSize]byte) {
	n0 := binary.LittleEndian.Uint32(nonce[0:])
	n1 := binary.LittleEndian.Uint32(nonce[4:])
	n2 := binary.LittleEndian.Uint32(nonce[8:])

	x0, x1, x2, x3 := uint32(0x61707865), uint32(0x3320646e), uint32(0x79622d32), uint32(0x6b206574)
	x4, x5, x6, x7 := key.k[0], key.k[1], key.k[2], key.k[3]
	x8, x9, x10, x11 := key.k[4], key.k[5], key.k[6], key.k[7]
	x12, x13, x14, x15 := counter, n0, n1, n2

	for i := 0; i < 10; i++ {
		// Column round.
		x0 += x4
		x12 ^= x0
		x12 = x12<<16 | x12>>16
		x8 += x12
		x4 ^= x8
		x4 = x4<<12 | x4>>20
		x0 += x4
		x12 ^= x0
		x12 = x12<<8 | x12>>24
		x8 += x12
		x4 ^= x8
		x4 = x4<<7 | x4>>25

		x1 += x5
		x13 ^= x1
		x13 = x13<<16 | x13>>16
		x9 += x13
		x5 ^= x9
		x5 = x5<<12 | x5>>20
		x1 += x5
		x13 ^= x1
		x13 = x13<<8 | x13>>24
		x9 += x13
		x5 ^= x9
		x5 = x5<<7 | x5>>25

		x2 += x6
		x14 ^= x2
		x14 = x14<<16 | x14>>16
		x10 += x14
		x6 ^= x10
		x6 = x6<<12 | x6>>20
		x2 += x6
		x14 ^= x2
		x14 = x14<<8 | x14>>24
		x10 += x14
		x6 ^= x10
		x6 = x6<<7 | x6>>25

		x3 += x7
		x15 ^= x3
		x15 = x15<<16 | x15>>16
		x11 += x15
		x7 ^= x11
		x7 = x7<<12 | x7>>20
		x3 += x7
		x15 ^= x3
		x15 = x15<<8 | x15>>24
		x11 += x15
		x7 ^= x11
		x7 = x7<<7 | x7>>25

		// Diagonal round.
		x0 += x5
		x15 ^= x0
		x15 = x15<<16 | x15>>16
		x10 += x15
		x5 ^= x10
		x5 = x5<<12 | x5>>20
		x0 += x5
		x15 ^= x0
		x15 = x15<<8 | x15>>24
		x10 += x15
		x5 ^= x10
		x5 = x5<<7 | x5>>25

		x1 += x6
		x12 ^= x1
		x12 = x12<<16 | x12>>16
		x11 += x12
		x6 ^= x11
		x6 = x6<<12 | x6>>20
		x1 += x6
		x12 ^= x1
		x12 = x12<<8 | x12>>24
		x11 += x12
		x6 ^= x11
		x6 = x6<<7 | x6>>25

		x2 += x7
		x13 ^= x2
		x13 = x13<<16 | x13>>16
		x8 += x13
		x7 ^= x8
		x7 = x7<<12 | x7>>20
		x2 += x7
		x13 ^= x2
		x13 = x13<<8 | x13>>24
		x8 += x13
		x7 ^= x8
		x7 = x7<<7 | x7>>25

		x3 += x4
		x14 ^= x3
		x14 = x14<<16 | x14>>16
		x9 += x14
		x4 ^= x9
		x4 = x4<<12 | x4>>20
		x3 += x4
		x14 ^= x3
		x14 = x14<<8 | x14>>24
		x9 += x14
		x4 ^= x9
		x4 = x4<<7 | x4>>25
	}

	binary.LittleEndian.PutUint32(out[0:], x0+0x61707865)
	binary.LittleEndian.PutUint32(out[4:], x1+0x3320646e)
	binary.LittleEndian.PutUint32(out[8:], x2+0x79622d32)
	binary.LittleEndian.PutUint32(out[12:], x3+0x6b206574)
	binary.LittleEndian.PutUint32(out[16:], x4+key.k[0])
	binary.LittleEndian.PutUint32(out[20:], x5+key.k[1])
	binary.LittleEndian.PutUint32(out[24:], x6+key.k[2])
	binary.LittleEndian.PutUint32(out[28:], x7+key.k[3])
	binary.LittleEndian.PutUint32(out[32:], x8+key.k[4])
	binary.LittleEndian.PutUint32(out[36:], x9+key.k[5])
	binary.LittleEndian.PutUint32(out[40:], x10+key.k[6])
	binary.LittleEndian.PutUint32(out[44:], x11+key.k[7])
	binary.LittleEndian.PutUint32(out[48:], x12+counter)
	binary.LittleEndian.PutUint32(out[52:], x13+n0)
	binary.LittleEndian.PutUint32(out[56:], x14+n1)
	binary.LittleEndian.PutUint32(out[60:], x15+n2)
}

// XORKeyStream XORs src into dst with the keystream of (key, nonce)
// starting at byte offset off of the stream that begins at block
// counter 1 (counter 0 is reserved for one-time MAC keys, per RFC 8439
// §2.8). off may be any byte offset; dst and src may alias. It
// processes min(len(dst), len(src)) bytes and returns the count.
// Encrypt and decrypt are the same operation.
func XORKeyStream(key *Key, nonce *[NonceSize]byte, off int, dst, src []byte) int {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	ctr := uint32(1 + off/BlockSize)
	skip := off % BlockSize
	var ks [BlockSize]byte
	i := 0
	for i < n {
		Block(key, nonce, ctr, &ks)
		ctr++
		m := BlockSize - skip
		if m > n-i {
			m = n - i
		}
		j := 0
		for ; m-j >= 8; j += 8 {
			w := binary.LittleEndian.Uint64(src[i+j:]) ^ binary.LittleEndian.Uint64(ks[skip+j:])
			binary.LittleEndian.PutUint64(dst[i+j:], w)
		}
		for ; j < m; j++ {
			dst[i+j] = src[i+j] ^ ks[skip+j]
		}
		i += m
		skip = 0
	}
	return n
}

// TagKey derives a Poly1305 one-time key: the first 32 bytes of the
// ChaCha20 block at the given counter (RFC 8439 §2.6 uses counter 0;
// the transport uses per-fragment counters in a disjoint range so each
// fragment gets an independent one-time key — see internal/core).
func TagKey(key *Key, nonce *[NonceSize]byte, counter uint32, out *[KeySize]byte) {
	var blk [BlockSize]byte
	Block(key, nonce, counter, &blk)
	copy(out[:], blk[:KeySize])
}
