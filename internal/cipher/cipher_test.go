package cipher

import (
	"bytes"
	"testing"
)

// Seekability: XORKeyStream from byte offset off must equal the
// corresponding window of the stream generated from 0 — the property
// that lets ALF fragments decipher out of order at any 8-byte-aligned
// offset (and, at the primitive level, any offset at all).
func TestXORKeyStreamSeek(t *testing.T) {
	key := ExpandKey(0xC0FFEE)
	nonce := [NonceSize]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	const total = 4 * BlockSize
	zero := make([]byte, total)
	full := make([]byte, total)
	XORKeyStream(&key, &nonce, 0, full, zero) // full keystream

	for _, off := range []int{0, 1, 7, 8, 56, 63, 64, 65, 128, 200} {
		for _, n := range []int{0, 1, 8, 63, 64, 65, 130} {
			if off+n > total {
				continue
			}
			got := make([]byte, n)
			XORKeyStream(&key, &nonce, off, got, zero[:n])
			if !bytes.Equal(got, full[off:off+n]) {
				t.Fatalf("seek off=%d n=%d: window mismatch", off, n)
			}
		}
	}
}

func TestXORKeyStreamInPlace(t *testing.T) {
	key := ExpandKey(42)
	nonce := [NonceSize]byte{0xAA}
	msg := []byte("in-place encryption must equal out-of-place encryption!!")
	out := make([]byte, len(msg))
	XORKeyStream(&key, &nonce, 8, out, msg)
	inPlace := append([]byte(nil), msg...)
	XORKeyStream(&key, &nonce, 8, inPlace, inPlace)
	if !bytes.Equal(out, inPlace) {
		t.Fatal("in-place result differs")
	}
	XORKeyStream(&key, &nonce, 8, inPlace, inPlace)
	if !bytes.Equal(inPlace, msg) {
		t.Fatal("double application is not the identity")
	}
}

func TestExpandKeyDistinct(t *testing.T) {
	a, b := ExpandKey(1), ExpandKey(2)
	if a == b {
		t.Fatal("distinct seeds produced identical keys")
	}
	if a != ExpandKey(1) {
		t.Fatal("ExpandKey is not deterministic")
	}
}

// UpdateWords must agree with Update on whole blocks.
func TestMACUpdateWords(t *testing.T) {
	var otk [KeySize]byte
	for i := range otk {
		otk[i] = byte(i*7 + 3)
	}
	msg := make([]byte, 96)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	ref := NewMAC(&otk)
	ref.Update(msg)
	var want [TagSize]byte
	ref.Sum(want[:])

	m := NewMAC(&otk)
	for i := 0; i < len(msg); i += 16 {
		m.UpdateWords(le64(msg[i:]), le64(msg[i+8:]))
	}
	if !m.Verify(want[:]) {
		t.Fatal("UpdateWords digest differs from Update")
	}
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Poly1305 must survive accumulator growth: long messages with
// all-ones blocks stress the carry/reduction paths.
func TestMACCarryStress(t *testing.T) {
	var otk [KeySize]byte
	for i := range otk {
		otk[i] = 0xFF
	}
	msg := make([]byte, 1024)
	for i := range msg {
		msg[i] = 0xFF
	}
	one := NewMAC(&otk)
	one.Update(msg)
	var a [TagSize]byte
	one.Sum(a[:])

	// Same digest regardless of chunking.
	two := NewMAC(&otk)
	for i := 0; i < len(msg); i += 13 {
		end := i + 13
		if end > len(msg) {
			end = len(msg)
		}
		two.Update(msg[i:end])
	}
	if !two.Verify(a[:]) {
		t.Fatal("chunked all-ones digest differs")
	}
}
