package cipher

import (
	"encoding/binary"
	"math/bits"
)

// This file is the one-pass AEAD engine behind ilp.FusedEncryptCopyMAC
// and ilp.FusedDecryptCopyVerify. The loop bodies below are mechanical
// expansions (two interleaved ChaCha20 block states per iteration, the
// Poly1305 block folded inline); the shapes were derived from Block and
// MAC.block above, and the RFC-vector tests plus the ilp fuzz target
// cross-check this path against the staged primitives byte-for-byte.
//
// Why it looks like this:
//
//   - Two independent ChaCha20 states per iteration give the
//     out-of-order core eight parallel quarter-round chains instead of
//     four, lifting IPC on the ALU ports.
//   - The Poly1305 accumulator lives in locals for the whole run (no
//     store/load of h per 16-byte block, no call boundaries), so its
//     multiply chain — which uses the multiplier ports ChaCha20 barely
//     touches — executes underneath the next blocks' rounds. This is
//     the instruction-level form of the paper's §6 argument: integrity
//     and encryption share one pass, and the hardware overlaps them.
//   - The keystream is never materialized: state words are XORed
//     against the source during serialization, in registers.
//
// FusedXORMAC processes whole 64-byte blocks of src into dst starting
// at block counter ctr: dst = src XOR keystream, and the ciphertext
// stream (dst words when encrypting — ctInDst true — or src words when
// decrypting) is absorbed into mac. mac must have no buffered partial
// bytes (Aligned). It processes len(src)/64*64 bytes and returns the
// count; the caller handles tails and intra-block offsets.
func FusedXORMAC(key *Key, nonce *[NonceSize]byte, ctr uint32, dst, src []byte, mac *MAC, ctInDst bool) int {
	if mac.n != 0 {
		panic("cipher: FusedXORMAC requires an aligned MAC")
	}
	n := len(src) / BlockSize * BlockSize
	if len(dst) < n {
		panic("cipher: FusedXORMAC dst shorter than src blocks")
	}
	// mask selects the Poly1305 input: 0 → ciphertext is the XOR result
	// (encrypt), all-ones → ciphertext is the raw source (decrypt).
	var mask uint64
	if !ctInDst {
		mask = ^uint64(0)
	}
	h0, h1, h2 := mac.h0, mac.h1, mac.h2
	r0, r1 := mac.r0, mac.r1
	var c, ca, cb, c2 uint64
	var hi0, lo0, hi1, lo1, hi2, lo2, hi3, lo3 uint64
	var t1, t2, t3, cl uint64
	n0 := binary.LittleEndian.Uint32(nonce[0:])
	n1 := binary.LittleEndian.Uint32(nonce[4:])
	n2 := binary.LittleEndian.Uint32(nonce[8:])
	k := key.k
	pair := n / (2 * BlockSize) * (2 * BlockSize)
	i := 0
	for ; i < pair; i += 2 * BlockSize {
		s := src[i : i+2*BlockSize : i+2*BlockSize]
		d := dst[i : i+2*BlockSize : i+2*BlockSize]
		a0, a1, a2, a3 := uint32(0x61707865), uint32(0x3320646e), uint32(0x79622d32), uint32(0x6b206574)
		a4, a5, a6, a7 := k[0], k[1], k[2], k[3]
		a8, a9, a10, a11 := k[4], k[5], k[6], k[7]
		a12, a13, a14, a15 := ctr, n0, n1, n2
		ctrB := ctr + 1
		b0, b1, b2, b3 := uint32(0x61707865), uint32(0x3320646e), uint32(0x79622d32), uint32(0x6b206574)
		b4, b5, b6, b7 := k[0], k[1], k[2], k[3]
		b8, b9, b10, b11 := k[4], k[5], k[6], k[7]
		b12, b13, b14, b15 := ctrB, n0, n1, n2
		for r := 0; r < 10; r++ {
			a0 += a4
			a12 ^= a0
			a12 = a12<<16 | a12>>16
			a8 += a12
			a4 ^= a8
			a4 = a4<<12 | a4>>20
			a0 += a4
			a12 ^= a0
			a12 = a12<<8 | a12>>24
			a8 += a12
			a4 ^= a8
			a4 = a4<<7 | a4>>25
			b0 += b4
			b12 ^= b0
			b12 = b12<<16 | b12>>16
			b8 += b12
			b4 ^= b8
			b4 = b4<<12 | b4>>20
			b0 += b4
			b12 ^= b0
			b12 = b12<<8 | b12>>24
			b8 += b12
			b4 ^= b8
			b4 = b4<<7 | b4>>25
			a1 += a5
			a13 ^= a1
			a13 = a13<<16 | a13>>16
			a9 += a13
			a5 ^= a9
			a5 = a5<<12 | a5>>20
			a1 += a5
			a13 ^= a1
			a13 = a13<<8 | a13>>24
			a9 += a13
			a5 ^= a9
			a5 = a5<<7 | a5>>25
			b1 += b5
			b13 ^= b1
			b13 = b13<<16 | b13>>16
			b9 += b13
			b5 ^= b9
			b5 = b5<<12 | b5>>20
			b1 += b5
			b13 ^= b1
			b13 = b13<<8 | b13>>24
			b9 += b13
			b5 ^= b9
			b5 = b5<<7 | b5>>25
			a2 += a6
			a14 ^= a2
			a14 = a14<<16 | a14>>16
			a10 += a14
			a6 ^= a10
			a6 = a6<<12 | a6>>20
			a2 += a6
			a14 ^= a2
			a14 = a14<<8 | a14>>24
			a10 += a14
			a6 ^= a10
			a6 = a6<<7 | a6>>25
			b2 += b6
			b14 ^= b2
			b14 = b14<<16 | b14>>16
			b10 += b14
			b6 ^= b10
			b6 = b6<<12 | b6>>20
			b2 += b6
			b14 ^= b2
			b14 = b14<<8 | b14>>24
			b10 += b14
			b6 ^= b10
			b6 = b6<<7 | b6>>25
			a3 += a7
			a15 ^= a3
			a15 = a15<<16 | a15>>16
			a11 += a15
			a7 ^= a11
			a7 = a7<<12 | a7>>20
			a3 += a7
			a15 ^= a3
			a15 = a15<<8 | a15>>24
			a11 += a15
			a7 ^= a11
			a7 = a7<<7 | a7>>25
			b3 += b7
			b15 ^= b3
			b15 = b15<<16 | b15>>16
			b11 += b15
			b7 ^= b11
			b7 = b7<<12 | b7>>20
			b3 += b7
			b15 ^= b3
			b15 = b15<<8 | b15>>24
			b11 += b15
			b7 ^= b11
			b7 = b7<<7 | b7>>25
			a0 += a5
			a15 ^= a0
			a15 = a15<<16 | a15>>16
			a10 += a15
			a5 ^= a10
			a5 = a5<<12 | a5>>20
			a0 += a5
			a15 ^= a0
			a15 = a15<<8 | a15>>24
			a10 += a15
			a5 ^= a10
			a5 = a5<<7 | a5>>25
			b0 += b5
			b15 ^= b0
			b15 = b15<<16 | b15>>16
			b10 += b15
			b5 ^= b10
			b5 = b5<<12 | b5>>20
			b0 += b5
			b15 ^= b0
			b15 = b15<<8 | b15>>24
			b10 += b15
			b5 ^= b10
			b5 = b5<<7 | b5>>25
			a1 += a6
			a12 ^= a1
			a12 = a12<<16 | a12>>16
			a11 += a12
			a6 ^= a11
			a6 = a6<<12 | a6>>20
			a1 += a6
			a12 ^= a1
			a12 = a12<<8 | a12>>24
			a11 += a12
			a6 ^= a11
			a6 = a6<<7 | a6>>25
			b1 += b6
			b12 ^= b1
			b12 = b12<<16 | b12>>16
			b11 += b12
			b6 ^= b11
			b6 = b6<<12 | b6>>20
			b1 += b6
			b12 ^= b1
			b12 = b12<<8 | b12>>24
			b11 += b12
			b6 ^= b11
			b6 = b6<<7 | b6>>25
			a2 += a7
			a13 ^= a2
			a13 = a13<<16 | a13>>16
			a8 += a13
			a7 ^= a8
			a7 = a7<<12 | a7>>20
			a2 += a7
			a13 ^= a2
			a13 = a13<<8 | a13>>24
			a8 += a13
			a7 ^= a8
			a7 = a7<<7 | a7>>25
			b2 += b7
			b13 ^= b2
			b13 = b13<<16 | b13>>16
			b8 += b13
			b7 ^= b8
			b7 = b7<<12 | b7>>20
			b2 += b7
			b13 ^= b2
			b13 = b13<<8 | b13>>24
			b8 += b13
			b7 ^= b8
			b7 = b7<<7 | b7>>25
			a3 += a4
			a14 ^= a3
			a14 = a14<<16 | a14>>16
			a9 += a14
			a4 ^= a9
			a4 = a4<<12 | a4>>20
			a3 += a4
			a14 ^= a3
			a14 = a14<<8 | a14>>24
			a9 += a14
			a4 ^= a9
			a4 = a4<<7 | a4>>25
			b3 += b4
			b14 ^= b3
			b14 = b14<<16 | b14>>16
			b9 += b14
			b4 ^= b9
			b4 = b4<<12 | b4>>20
			b3 += b4
			b14 ^= b3
			b14 = b14<<8 | b14>>24
			b9 += b14
			b4 ^= b9
			b4 = b4<<7 | b4>>25
		}
		var sva, svb, wa, wb [8]uint64
		sva[0] = binary.LittleEndian.Uint64(s[0:8])
		wa[0] = sva[0] ^ (uint64(a0+0x61707865) | uint64(a1+0x3320646e)<<32)
		sva[1] = binary.LittleEndian.Uint64(s[8:16])
		wa[1] = sva[1] ^ (uint64(a2+0x79622d32) | uint64(a3+0x6b206574)<<32)
		sva[2] = binary.LittleEndian.Uint64(s[16:24])
		wa[2] = sva[2] ^ (uint64(a4+k[0]) | uint64(a5+k[1])<<32)
		sva[3] = binary.LittleEndian.Uint64(s[24:32])
		wa[3] = sva[3] ^ (uint64(a6+k[2]) | uint64(a7+k[3])<<32)
		sva[4] = binary.LittleEndian.Uint64(s[32:40])
		wa[4] = sva[4] ^ (uint64(a8+k[4]) | uint64(a9+k[5])<<32)
		sva[5] = binary.LittleEndian.Uint64(s[40:48])
		wa[5] = sva[5] ^ (uint64(a10+k[6]) | uint64(a11+k[7])<<32)
		sva[6] = binary.LittleEndian.Uint64(s[48:56])
		wa[6] = sva[6] ^ (uint64(a12+ctr) | uint64(a13+n0)<<32)
		sva[7] = binary.LittleEndian.Uint64(s[56:64])
		wa[7] = sva[7] ^ (uint64(a14+n1) | uint64(a15+n2)<<32)
		svb[0] = binary.LittleEndian.Uint64(s[64:72])
		wb[0] = svb[0] ^ (uint64(b0+0x61707865) | uint64(b1+0x3320646e)<<32)
		svb[1] = binary.LittleEndian.Uint64(s[72:80])
		wb[1] = svb[1] ^ (uint64(b2+0x79622d32) | uint64(b3+0x6b206574)<<32)
		svb[2] = binary.LittleEndian.Uint64(s[80:88])
		wb[2] = svb[2] ^ (uint64(b4+k[0]) | uint64(b5+k[1])<<32)
		svb[3] = binary.LittleEndian.Uint64(s[88:96])
		wb[3] = svb[3] ^ (uint64(b6+k[2]) | uint64(b7+k[3])<<32)
		svb[4] = binary.LittleEndian.Uint64(s[96:104])
		wb[4] = svb[4] ^ (uint64(b8+k[4]) | uint64(b9+k[5])<<32)
		svb[5] = binary.LittleEndian.Uint64(s[104:112])
		wb[5] = svb[5] ^ (uint64(b10+k[6]) | uint64(b11+k[7])<<32)
		svb[6] = binary.LittleEndian.Uint64(s[112:120])
		wb[6] = svb[6] ^ (uint64(b12+ctrB) | uint64(b13+n0)<<32)
		svb[7] = binary.LittleEndian.Uint64(s[120:128])
		wb[7] = svb[7] ^ (uint64(b14+n1) | uint64(b15+n2)<<32)
		ctr += 2
		binary.LittleEndian.PutUint64(d[0:8], wa[0])
		binary.LittleEndian.PutUint64(d[8:16], wa[1])
		binary.LittleEndian.PutUint64(d[16:24], wa[2])
		binary.LittleEndian.PutUint64(d[24:32], wa[3])
		binary.LittleEndian.PutUint64(d[32:40], wa[4])
		binary.LittleEndian.PutUint64(d[40:48], wa[5])
		binary.LittleEndian.PutUint64(d[48:56], wa[6])
		binary.LittleEndian.PutUint64(d[56:64], wa[7])
		binary.LittleEndian.PutUint64(d[64:72], wb[0])
		binary.LittleEndian.PutUint64(d[72:80], wb[1])
		binary.LittleEndian.PutUint64(d[80:88], wb[2])
		binary.LittleEndian.PutUint64(d[88:96], wb[3])
		binary.LittleEndian.PutUint64(d[96:104], wb[4])
		binary.LittleEndian.PutUint64(d[104:112], wb[5])
		binary.LittleEndian.PutUint64(d[112:120], wb[6])
		binary.LittleEndian.PutUint64(d[120:128], wb[7])
		for j := 0; j < 8; j += 2 {
			pA := wa[j] ^ ((wa[j] ^ sva[j]) & mask)
			pB := wa[j+1] ^ ((wa[j+1] ^ sva[j+1]) & mask)
			h0, c = bits.Add64(h0, pA, 0)
			h1, c = bits.Add64(h1, pB, c)
			h2 += c + 1
			hi0, lo0 = bits.Mul64(h0, r0)
			hi1, lo1 = bits.Mul64(h1, r0)
			hi2, lo2 = bits.Mul64(h0, r1)
			hi3, lo3 = bits.Mul64(h1, r1)
			t1, ca = bits.Add64(hi0, lo1, 0)
			t1, cb = bits.Add64(t1, lo2, 0)
			t2, c2 = bits.Add64(hi1, hi2, 0)
			t3 = hi3 + c2
			t2, c2 = bits.Add64(t2, lo3, 0)
			t3 += c2
			t2, c2 = bits.Add64(t2, h2*r0, 0)
			t3 += c2
			t2, c2 = bits.Add64(t2, ca+cb, 0)
			t3 += c2 + h2*r1
			h0, h1, h2 = lo0, t1, t2&3
			cl = t2 &^ 3
			h0, c = bits.Add64(h0, cl, 0)
			h1, c = bits.Add64(h1, t3, c)
			h2 += c
			cl = cl>>2 | t3<<62
			h0, c = bits.Add64(h0, cl, 0)
			h1, c = bits.Add64(h1, t3>>2, c)
			h2 += c
		}
		for j := 0; j < 8; j += 2 {
			pA := wb[j] ^ ((wb[j] ^ svb[j]) & mask)
			pB := wb[j+1] ^ ((wb[j+1] ^ svb[j+1]) & mask)
			h0, c = bits.Add64(h0, pA, 0)
			h1, c = bits.Add64(h1, pB, c)
			h2 += c + 1
			hi0, lo0 = bits.Mul64(h0, r0)
			hi1, lo1 = bits.Mul64(h1, r0)
			hi2, lo2 = bits.Mul64(h0, r1)
			hi3, lo3 = bits.Mul64(h1, r1)
			t1, ca = bits.Add64(hi0, lo1, 0)
			t1, cb = bits.Add64(t1, lo2, 0)
			t2, c2 = bits.Add64(hi1, hi2, 0)
			t3 = hi3 + c2
			t2, c2 = bits.Add64(t2, lo3, 0)
			t3 += c2
			t2, c2 = bits.Add64(t2, h2*r0, 0)
			t3 += c2
			t2, c2 = bits.Add64(t2, ca+cb, 0)
			t3 += c2 + h2*r1
			h0, h1, h2 = lo0, t1, t2&3
			cl = t2 &^ 3
			h0, c = bits.Add64(h0, cl, 0)
			h1, c = bits.Add64(h1, t3, c)
			h2 += c
			cl = cl>>2 | t3<<62
			h0, c = bits.Add64(h0, cl, 0)
			h1, c = bits.Add64(h1, t3>>2, c)
			h2 += c
		}
	}
	mac.h0, mac.h1, mac.h2 = h0, h1, h2
	// Odd trailing 64-byte block.
	if i < n {
		var ks [BlockSize]byte
		Block(key, nonce, ctr, &ks)
		for j := 0; j < BlockSize; j += 16 {
			s0 := binary.LittleEndian.Uint64(src[i+j:])
			s1 := binary.LittleEndian.Uint64(src[i+j+8:])
			w0 := s0 ^ binary.LittleEndian.Uint64(ks[j:])
			w1 := s1 ^ binary.LittleEndian.Uint64(ks[j+8:])
			binary.LittleEndian.PutUint64(dst[i+j:], w0)
			binary.LittleEndian.PutUint64(dst[i+j+8:], w1)
			mac.UpdateWords(w0^((w0^s0)&mask), w1^((w1^s1)&mask))
		}
	}
	return n
}

// Aligned reports whether the MAC has no buffered partial block, i.e.
// the bytes absorbed so far are a multiple of 16 — the precondition for
// the word-fed fast paths (UpdateWords, FusedXORMAC).
func (m *MAC) Aligned() bool { return m.n == 0 }
