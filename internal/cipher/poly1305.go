package cipher

import (
	"encoding/binary"
	"math/bits"
)

// MAC is an incremental Poly1305 authenticator (RFC 8439 §2.5) over a
// one-time 32-byte key: r (clamped, the evaluation point) in the first
// half, s (the final pad) in the second. It is a value type with no
// internal pointers, so the ILP kernels can keep one on the stack and
// feed it ciphertext words as they stream past — the accumulator update
// is the integrity pass, fused into the same loop as keystream
// generation and the layer-boundary copy.
//
// The 130-bit accumulator h lives in limbs h0,h1 (64 bits each) and h2
// (the two high bits plus carries). Arithmetic follows the standard
// 64×64→128 schoolbook evaluation with the 2^130 ≡ 5 (mod p) folding.
type MAC struct {
	r0, r1 uint64 // clamped r
	s0, s1 uint64 // final pad
	h0, h1, h2 uint64 // accumulator
	buf [TagSize]byte // partial block
	n   int           // bytes buffered in buf
}

// NewMAC returns a MAC keyed with the given one-time key. A (key,
// message) pair must never repeat with a different message — the
// transport guarantees this by deriving the key from a per-fragment
// ChaCha20 block counter (see TagKey).
func NewMAC(key *[KeySize]byte) MAC {
	var m MAC
	m.r0 = binary.LittleEndian.Uint64(key[0:8]) & 0x0FFFFFFC0FFFFFFF
	m.r1 = binary.LittleEndian.Uint64(key[8:16]) & 0x0FFFFFFC0FFFFFFC
	m.s0 = binary.LittleEndian.Uint64(key[16:24])
	m.s1 = binary.LittleEndian.Uint64(key[24:32])
	return m
}

// block folds one 16-byte block (m0,m1 little-endian) into h. hibit is
// 1 for full blocks (the 2^128 marker) and 0 for the padded final
// partial block, whose 0x01 marker is already in the bytes.
func (m *MAC) block(m0, m1, hibit uint64) {
	h0, c := bits.Add64(m.h0, m0, 0)
	h1, c := bits.Add64(m.h1, m1, c)
	h2 := m.h2 + c + hibit

	// h *= r. h2 stays small (< 8) and r is clamped below 2^60, so the
	// h2 products fit in 64 bits.
	// Column sums: t0 = lo0; t1 = hi0+lo1+lo2; t2 = hi1+hi2+lo3+h2·r0;
	// t3 = hi3+h2·r1 plus propagated carries.
	hi0, lo0 := bits.Mul64(h0, m.r0)
	hi1, lo1 := bits.Mul64(h1, m.r0)
	hi2, lo2 := bits.Mul64(h0, m.r1)
	hi3, lo3 := bits.Mul64(h1, m.r1)
	t0 := lo0
	t1, ca := bits.Add64(hi0, lo1, 0)
	t1, cb := bits.Add64(t1, lo2, 0)
	t2, c2 := bits.Add64(hi1, hi2, 0)
	t3 := hi3 + c2
	t2, c2 = bits.Add64(t2, lo3, 0)
	t3 += c2
	t2, c2 = bits.Add64(t2, h2*m.r0, 0)
	t3 += c2
	t2, c2 = bits.Add64(t2, ca+cb, 0)
	t3 += c2 + h2*m.r1

	// Reduce mod p = 2^130 - 5: keep the low 130 bits, and fold the
	// high part C·2^130 back in as 5C = 4C + C, i.e. h += C + C>>2
	// where C is the 128-bit value formed by (t2 &^ 3, t3).
	h0, h1, h2 = t0, t1, t2&3
	cLo := t2 &^ 3
	cHi := t3
	h0, c = bits.Add64(h0, cLo, 0)
	h1, c = bits.Add64(h1, cHi, c)
	h2 += c
	cLo = cLo>>2 | cHi<<62
	cHi >>= 2
	h0, c = bits.Add64(h0, cLo, 0)
	h1, c = bits.Add64(h1, cHi, c)
	h2 += c

	m.h0, m.h1, m.h2 = h0, h1, h2
}

// Update absorbs p into the authenticator. It may be called any number
// of times with arbitrary split points; the digest depends only on the
// concatenation.
func (m *MAC) Update(p []byte) {
	if m.n > 0 {
		k := copy(m.buf[m.n:], p)
		m.n += k
		p = p[k:]
		if m.n < TagSize {
			return
		}
		m.n = 0
		m.block(binary.LittleEndian.Uint64(m.buf[0:8]), binary.LittleEndian.Uint64(m.buf[8:16]), 1)
	}
	for len(p) >= TagSize {
		m.block(binary.LittleEndian.Uint64(p[0:8]), binary.LittleEndian.Uint64(p[8:16]), 1)
		p = p[TagSize:]
	}
	if len(p) > 0 {
		m.n = copy(m.buf[:], p)
	}
}

// UpdateWords absorbs two little-endian 64-bit words — one full
// Poly1305 block already in registers. It must only be used when no
// partial bytes are buffered (the fused kernels guarantee this by
// feeding 8-byte-aligned fragments and finishing tails via Update).
func (m *MAC) UpdateWords(m0, m1 uint64) {
	m.block(m0, m1, 1)
}

// Sum finalizes the authenticator and writes the 16-byte tag into out.
// The MAC must not be used after Sum.
func (m *MAC) Sum(out []byte) {
	if m.n > 0 {
		// Final partial block: append 0x01 then zeros, no 2^128 bit.
		m.buf[m.n] = 1
		for i := m.n + 1; i < TagSize; i++ {
			m.buf[i] = 0
		}
		m.block(binary.LittleEndian.Uint64(m.buf[0:8]), binary.LittleEndian.Uint64(m.buf[8:16]), 0)
		m.n = 0
	}
	// h %= p by conditional subtraction: after the multiply-reduce, h
	// is below 2p, so one subtract-and-select suffices.
	h0, h1, h2 := m.h0, m.h1, m.h2
	t0, b := bits.Sub64(h0, 0xFFFFFFFFFFFFFFFB, 0)
	t1, b := bits.Sub64(h1, 0xFFFFFFFFFFFFFFFF, b)
	_, b = bits.Sub64(h2, 3, b)
	// b == 1 means h < p: keep h; else take t.
	mask := uint64(b) - 1 // 0 if h < p, all-ones if h >= p
	h0 = h0&^mask | t0&mask
	h1 = h1&^mask | t1&mask
	// tag = (h + s) mod 2^128
	h0, c := bits.Add64(h0, m.s0, 0)
	h1, _ = bits.Add64(h1, m.s1, c)
	binary.LittleEndian.PutUint64(out[0:8], h0)
	binary.LittleEndian.PutUint64(out[8:16], h1)
}

// Verify finalizes the authenticator and compares it with tag in
// constant time. The MAC must not be used after Verify.
func (m *MAC) Verify(tag []byte) bool {
	var want [TagSize]byte
	m.Sum(want[:])
	var v byte
	for i := 0; i < TagSize; i++ {
		v |= want[i] ^ tag[i]
	}
	return v == 0
}
