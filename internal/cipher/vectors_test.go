package cipher

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\n', '\t', ':':
			return -1
		}
		return r
	}, s))
	if err != nil {
		t.Fatalf("bad hex: %v", err)
	}
	return b
}

func keyFrom(t *testing.T, s string) Key {
	t.Helper()
	b := unhex(t, s)
	if len(b) != KeySize {
		t.Fatalf("key is %d bytes", len(b))
	}
	var kb [KeySize]byte
	copy(kb[:], b)
	return NewKey(&kb)
}

func nonceFrom(t *testing.T, s string) [NonceSize]byte {
	t.Helper()
	b := unhex(t, s)
	if len(b) != NonceSize {
		t.Fatalf("nonce is %d bytes", len(b))
	}
	var n [NonceSize]byte
	copy(n[:], b)
	return n
}

// RFC 8439 §2.3.2: ChaCha20 block function test vector.
func TestRFC8439BlockVector(t *testing.T) {
	key := keyFrom(t, `00:01:02:03:04:05:06:07:08:09:0a:0b:0c:0d:0e:0f:10:11:12:13:14:15:16:17:18:19:1a:1b:1c:1d:1e:1f`)
	nonce := nonceFrom(t, `00:00:00:09:00:00:00:4a:00:00:00:00`)
	want := unhex(t, `
		10 f1 e7 e4 d1 3b 59 15 50 0f dd 1f a3 20 71 c4
		c7 d1 f4 c7 33 c0 68 03 04 22 aa 9a c3 d4 6c 4e
		d2 82 64 46 07 9f aa 09 14 c2 d7 05 d9 8b 02 a2
		b5 12 9c d1 de 16 4e b9 cb d0 83 e8 a2 50 3c 4e`)
	var out [BlockSize]byte
	Block(&key, &nonce, 1, &out)
	if !bytes.Equal(out[:], want) {
		t.Fatalf("block mismatch:\n got %x\nwant %x", out[:], want)
	}
}

// RFC 8439 §2.4.2: ChaCha20 encryption of the sunscreen plaintext at
// counter 1.
func TestRFC8439EncryptVector(t *testing.T) {
	key := keyFrom(t, `00:01:02:03:04:05:06:07:08:09:0a:0b:0c:0d:0e:0f:10:11:12:13:14:15:16:17:18:19:1a:1b:1c:1d:1e:1f`)
	nonce := nonceFrom(t, `00:00:00:00:00:00:00:4a:00:00:00:00`)
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.")
	want := unhex(t, `
		6e 2e 35 9a 25 68 f9 80 41 ba 07 28 dd 0d 69 81
		e9 7e 7a ec 1d 43 60 c2 0a 27 af cc fd 9f ae 0b
		f9 1b 65 c5 52 47 33 ab 8f 59 3d ab cd 62 b3 57
		16 39 d6 24 e6 51 52 ab 8f 53 0c 35 9f 08 61 d8
		07 ca 0d bf 50 0d 6a 61 56 a3 8e 08 8a 22 b6 5e
		52 bc 51 4d 16 cc f8 06 81 8c e9 1a b7 79 37 36
		5a f9 0b bf 74 a3 5b e6 b4 0b 8e ed f2 78 5e 42
		87 4d`)
	got := make([]byte, len(plaintext))
	XORKeyStream(&key, &nonce, 0, got, plaintext)
	if !bytes.Equal(got, want) {
		t.Fatalf("ciphertext mismatch:\n got %x\nwant %x", got, want)
	}
	// Decrypt round-trips.
	back := make([]byte, len(got))
	XORKeyStream(&key, &nonce, 0, back, got)
	if !bytes.Equal(back, plaintext) {
		t.Fatalf("decrypt round-trip failed")
	}
}

// RFC 8439 §2.5.2: Poly1305 tag over the CFRG message.
func TestRFC8439Poly1305Vector(t *testing.T) {
	keyBytes := unhex(t, `85:d6:be:78:57:55:6d:33:7f:44:52:fe:42:d5:06:a8:01:03:80:8a:fb:0d:b2:fd:4a:bf:f6:af:41:49:f5:1b`)
	var otk [KeySize]byte
	copy(otk[:], keyBytes)
	msg := []byte("Cryptographic Forum Research Group")
	want := unhex(t, `a8:06:1d:c1:30:51:36:c6:c2:2b:8b:af:0c:01:27:a9`)

	mac := NewMAC(&otk)
	mac.Update(msg)
	var tag [TagSize]byte
	mac.Sum(tag[:])
	if !bytes.Equal(tag[:], want) {
		t.Fatalf("tag mismatch:\n got %x\nwant %x", tag[:], want)
	}

	// The digest must be split-invariant: feed the message in awkward
	// pieces, including ones that straddle the 16-byte block boundary.
	for _, cut := range []int{1, 5, 15, 16, 17, 33} {
		m2 := NewMAC(&otk)
		rest := msg
		for len(rest) > 0 {
			k := cut
			if k > len(rest) {
				k = len(rest)
			}
			m2.Update(rest[:k])
			rest = rest[k:]
		}
		if !m2.Verify(want) {
			t.Fatalf("split at %d: tag mismatch", cut)
		}
	}
}

// RFC 8439 §2.6.2: Poly1305 one-time key generation from ChaCha20.
func TestRFC8439TagKeyVector(t *testing.T) {
	key := keyFrom(t, `80 81 82 83 84 85 86 87 88 89 8a 8b 8c 8d 8e 8f 90 91 92 93 94 95 96 97 98 99 9a 9b 9c 9d 9e 9f`)
	nonce := nonceFrom(t, `00 00 00 00 00 01 02 03 04 05 06 07`)
	want := unhex(t, `
		8a d5 a0 8b 90 5f 81 cc 81 50 40 27 4a b2 94 71
		a8 33 b6 37 e3 fd 0d a5 08 db b8 e2 fd d1 a6 46`)
	var otk [KeySize]byte
	TagKey(&key, &nonce, 0, &otk)
	if !bytes.Equal(otk[:], want) {
		t.Fatalf("one-time key mismatch:\n got %x\nwant %x", otk[:], want)
	}
}

// RFC 8439 §2.8.2: the full AEAD construction.
func TestRFC8439AEADVector(t *testing.T) {
	key := keyFrom(t, `80 81 82 83 84 85 86 87 88 89 8a 8b 8c 8d 8e 8f 90 91 92 93 94 95 96 97 98 99 9a 9b 9c 9d 9e 9f`)
	nonce := nonceFrom(t, `07 00 00 00 40 41 42 43 44 45 46 47`)
	aad := unhex(t, `50 51 52 53 c0 c1 c2 c3 c4 c5 c6 c7`)
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.")
	wantCT := unhex(t, `
		d3 1a 8d 34 64 8e 60 db 7b 86 af bc 53 ef 7e c2
		a4 ad ed 51 29 6e 08 fe a9 e2 b5 a7 36 ee 62 d6
		3d be a4 5e 8c a9 67 12 82 fa fb 69 da 92 72 8b
		1a 71 de 0a 9e 06 0b 29 05 d6 a5 b6 7e cd 3b 36
		92 dd bd 7f 2d 77 8b 8c 98 03 ae e3 28 09 1b 58
		fa b3 24 e4 fa d6 75 94 55 85 80 8b 48 31 d7 bc
		3f f4 de f0 8e 4b 7a 9d e5 76 d2 65 86 ce c6 4b
		61 16`)
	wantTag := unhex(t, `1a:e1:0b:59:4f:09:e2:6a:7e:90:2e:cb:d0:60:06:91`)

	box := Seal(nil, &key, &nonce, plaintext, aad)
	if !bytes.Equal(box[:len(box)-TagSize], wantCT) {
		t.Fatalf("AEAD ciphertext mismatch:\n got %x\nwant %x", box[:len(box)-TagSize], wantCT)
	}
	if !bytes.Equal(box[len(box)-TagSize:], wantTag) {
		t.Fatalf("AEAD tag mismatch:\n got %x\nwant %x", box[len(box)-TagSize:], wantTag)
	}

	pt, ok := Open(nil, &key, &nonce, box, aad)
	if !ok || !bytes.Equal(pt, plaintext) {
		t.Fatalf("Open failed: ok=%v", ok)
	}
	// Any single flipped bit must fail authentication.
	for _, i := range []int{0, len(box) / 2, len(box) - 1} {
		mut := append([]byte(nil), box...)
		mut[i] ^= 0x40
		if _, ok := Open(nil, &key, &nonce, mut, aad); ok {
			t.Fatalf("Open accepted corrupted box (flip at %d)", i)
		}
	}
	// Wrong AAD must fail.
	if _, ok := Open(nil, &key, &nonce, box, aad[:len(aad)-1]); ok {
		t.Fatal("Open accepted truncated aad")
	}
}
