package alf

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// benchSteadyStateSuite is BenchmarkSendSteadyState with a configurable
// cipher suite: the full datapath (fragment, two-hop forward,
// reassemble, deliver) with the crypto plane on, so the suite overhead
// is measured in situ rather than in a kernel microbenchmark.
func benchSteadyStateSuite(b *testing.B, cfg Config) {
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	src := n.NewNode("src")
	rtr := n.NewRouter("rtr")
	dst := n.NewNode("dst")
	sl, _ := n.NewDuplex(src, rtr.Node, netsim.LinkConfig{})
	rd, _ := n.NewDuplex(rtr.Node, dst, netsim.LinkConfig{})
	rtr.AddRoute(dst, rd)

	cfg.Policy = NoRetransmit
	snd, err := NewSender(s, func(p []byte) error { return netsim.SendVia(sl, dst, p) }, cfg)
	if err != nil {
		b.Fatal(err)
	}
	snd.SendRef = func(ref *buf.Ref) error { return netsim.SendRefVia(sl, dst, ref) }
	rcv, err := NewReceiver(s, nil, cfg)
	if err != nil {
		b.Fatal(err)
	}
	delivered := 0
	rcv.OnADU = func(adu ADU) { delivered++; adu.Release() }
	dst.SetHandler(func(p *netsim.Packet) { _ = rcv.HandlePacket(p.Payload) })

	data := make([]byte, benchADUBytes)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(benchADUBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, data); err != nil {
			b.Fatal(err)
		}
		_ = s.RunUntil(s.Now())
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkSendSteadyStateAEAD: ChaCha20-Poly1305 on, fused kernels,
// per-fragment tags end to end.
func BenchmarkSendSteadyStateAEAD(b *testing.B) {
	benchSteadyStateSuite(b, Config{Suite: SuiteAEAD, Key: 0xFEEDFACE})
}

// BenchmarkSendSteadyStateScramble: the legacy xorshift keystream with
// the Internet checksum, for contrast with the AEAD suite above and the
// cleartext BenchmarkSendSteadyState.
func BenchmarkSendSteadyStateScramble(b *testing.B) {
	benchSteadyStateSuite(b, Config{Suite: SuiteScramble, Key: 0xFEEDFACE})
}
