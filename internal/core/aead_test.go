package alf

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/buf"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// aeadCfg is the baseline SuiteAEAD stream configuration for these
// tests: real ChaCha20-Poly1305 on the datapath, per-fragment tags.
func aeadCfg() Config {
	return Config{Suite: SuiteAEAD, Key: 0xFEEDFACE}
}

func TestAEADSingleADU(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, aeadCfg(), 1)
	data := payload(100, 1)
	if _, err := p.snd.Send(42, xcode.SyntaxRaw, data); err != nil {
		t.Fatal(err)
	}
	p.sched.Run()
	if len(p.adus) != 1 || !bytes.Equal(p.adus[0].Data, data) {
		t.Fatalf("AEAD ADU not delivered intact: %d ADUs", len(p.adus))
	}
	if p.rcv.Stats.AuthFails != 0 {
		t.Errorf("AuthFails = %d on a clean link", p.rcv.Stats.AuthFails)
	}
}

func TestAEADEmptyADU(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, aeadCfg(), 1)
	if _, err := p.snd.Send(7, xcode.SyntaxRaw, nil); err != nil {
		t.Fatal(err)
	}
	p.sched.Run()
	if len(p.adus) != 1 || len(p.adus[0].Data) != 0 {
		t.Fatalf("empty AEAD ADU not delivered: %+v", p.adus)
	}
}

func TestAEADMultiFragment(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, aeadCfg(), 1)
	data := payload(10_000, 3)
	p.snd.Send(0, xcode.SyntaxRaw, data)
	p.sched.Run()
	if len(p.adus) != 1 || !bytes.Equal(p.adus[0].Data, data) {
		t.Fatal("multi-fragment AEAD ADU corrupted")
	}
}

// TestAEADWireIsCiphertext checks the plaintext never appears on the
// wire: every data fragment's payload differs from the corresponding
// plaintext range.
func TestAEADWireIsCiphertext(t *testing.T) {
	s := sim.NewScheduler()
	data := payload(4096, 9)
	var wire [][]byte
	snd, err := NewSender(s, func(p []byte) error {
		wire = append(wire, append([]byte(nil), p...))
		return nil
	}, aeadCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snd.Send(0, xcode.SyntaxRaw, data); err != nil {
		t.Fatal(err)
	}
	for _, pkt := range wire {
		h, err := parseHeader(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if h.Flags&flagAEAD == 0 {
			t.Fatal("fragment missing flagAEAD")
		}
		if h.ADUCheck != 0 {
			t.Errorf("ADUCheck = %#x, want 0 under AEAD", h.ADUCheck)
		}
		if h.Flags&flagParity != 0 || h.FragLen == 0 {
			continue
		}
		ct := pkt[HeaderSize : HeaderSize+h.FragLen]
		if bytes.Equal(ct, data[h.FragOff:h.FragOff+h.FragLen]) {
			t.Fatalf("fragment at %d is plaintext on the wire", h.FragOff)
		}
	}
}

// TestAEADCorruptionDroppedAndRecovered flips one ciphertext bit of one
// fragment in transit. The receiver must reject exactly that fragment
// (AuthFails), leave its range unaccounted, and recover it through the
// normal NACK path — end state: intact delivery.
func TestAEADCorruptionDroppedAndRecovered(t *testing.T) {
	cfg := aeadCfg()
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, cfg, 1)
	data := payload(5000, 5)

	// Rewrap the receive handler to corrupt the second data fragment's
	// first transmission.
	corrupted := false
	inner := p.rcv
	seen := 0
	reinstallReceiver(p, func(pkt []byte) {
		if h, err := parseHeader(pkt); err == nil && h.Flags&flagParity == 0 && h.FragLen > 0 {
			if seen == 1 && !corrupted {
				pkt[HeaderSize+3] ^= 0x40
				corrupted = true
			}
			seen++
		}
		inner.HandlePacket(pkt)
	})

	if _, err := p.snd.Send(0, xcode.SyntaxRaw, data); err != nil {
		t.Fatal(err)
	}
	p.sched.Run()
	if !corrupted {
		t.Fatal("corruption hook never fired")
	}
	if p.rcv.Stats.AuthFails != 1 {
		t.Fatalf("AuthFails = %d, want 1", p.rcv.Stats.AuthFails)
	}
	if len(p.adus) != 1 || !bytes.Equal(p.adus[0].Data, data) {
		t.Fatal("ADU not recovered intact after corruption")
	}
	if p.snd.Stats.ResentADUs == 0 {
		t.Error("expected a NACK-driven resend")
	}
}

// reinstallReceiver replaces the b-side packet handler of a pair. The
// netsim node handler receives packets; tests use this to interpose
// corruption or drops between the link and the receiver.
func reinstallReceiver(p *pair, h func([]byte)) {
	// newPair wired b.SetHandler -> rcv.HandlePacket. The node is not
	// retained on the pair, so route through the data link's endpoint.
	p.ab.To().SetHandler(func(pk *netsim.Packet) { h(pk.Payload) })
}

// TestAEADTamperedTagRejected flips a bit in the tag instead of the
// ciphertext; same rejection path.
func TestAEADTamperedTagRejected(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, aeadCfg(), 1)
	done := false
	inner := p.rcv
	reinstallReceiver(p, func(pkt []byte) {
		if h, err := parseHeader(pkt); err == nil && !done && h.FragLen > 0 {
			pkt[HeaderSize+h.FragLen] ^= 0x01 // first tag byte
			done = true
		}
		inner.HandlePacket(pkt)
	})
	data := payload(256, 2)
	p.snd.Send(0, xcode.SyntaxRaw, data)
	p.sched.Run()
	if p.rcv.Stats.AuthFails != 1 {
		t.Fatalf("AuthFails = %d, want 1", p.rcv.Stats.AuthFails)
	}
	if len(p.adus) != 1 || !bytes.Equal(p.adus[0].Data, data) {
		t.Fatal("ADU not recovered after tag tamper")
	}
}

// TestAEADFECReconstruct drops one data fragment per FEC group; the
// receiver must rebuild it from the parity blob without any recovery
// round trip, and the rebuilt plaintext must be correct (transitive
// authentication: parity tag + surviving tags).
func TestAEADFECReconstruct(t *testing.T) {
	cfg := aeadCfg()
	cfg.FECGroup = 4
	cfg.Policy = NoRetransmit
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, cfg, 1)
	inner := p.rcv
	dataIdx := 0
	reinstallReceiver(p, func(pkt []byte) {
		if h, err := parseHeader(pkt); err == nil && h.Flags&flagParity == 0 && h.FragLen > 0 {
			if dataIdx%4 == 1 { // drop the second fragment of each group
				dataIdx++
				return
			}
			dataIdx++
		}
		inner.HandlePacket(pkt)
	})
	data := payload(8<<10, 11)
	p.snd.Send(0, xcode.SyntaxRaw, data)
	p.sched.Run()
	if len(p.adus) != 1 || !bytes.Equal(p.adus[0].Data, data) {
		t.Fatal("FEC-reconstructed AEAD ADU corrupted")
	}
	if p.rcv.Stats.FECRecovered == 0 {
		t.Error("no FEC reconstruction happened")
	}
	if p.rcv.Stats.AuthFails != 0 {
		t.Errorf("AuthFails = %d during FEC recovery", p.rcv.Stats.AuthFails)
	}
	if p.rcv.Stats.NacksSent != 0 {
		t.Errorf("NacksSent = %d; FEC should have avoided recovery", p.rcv.Stats.NacksSent)
	}
}

// TestAEADTamperedParityRejected corrupts a parity blob in transit: the
// parity must be rejected (never stored), and since no data fragment is
// lost the ADU still completes from data fragments alone.
func TestAEADTamperedParityRejected(t *testing.T) {
	cfg := aeadCfg()
	cfg.FECGroup = 4
	cfg.Policy = NoRetransmit
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, cfg, 1)
	inner := p.rcv
	tampered := 0
	reinstallReceiver(p, func(pkt []byte) {
		if h, err := parseHeader(pkt); err == nil && h.Flags&flagParity != 0 {
			pkt[HeaderSize] ^= 0x80
			tampered++
		}
		inner.HandlePacket(pkt)
	})
	data := payload(8<<10, 4)
	p.snd.Send(0, xcode.SyntaxRaw, data)
	p.sched.Run()
	if tampered == 0 {
		t.Fatal("no parity fragment crossed the link")
	}
	// The final group's parity trails the last data fragment, so it
	// arrives after the ADU completed and is filtered as late before
	// the tag check; every parity that reached verification must fail.
	if p.rcv.Stats.AuthFails == 0 || int(p.rcv.Stats.AuthFails) > tampered {
		t.Fatalf("AuthFails = %d with %d tampered parities", p.rcv.Stats.AuthFails, tampered)
	}
	if p.rcv.Stats.ParityFrags != 0 {
		t.Errorf("a tampered parity was stored (ParityFrags = %d)", p.rcv.Stats.ParityFrags)
	}
	if len(p.adus) != 1 || !bytes.Equal(p.adus[0].Data, data) {
		t.Fatal("ADU lost despite intact data fragments")
	}
}

// TestAEADSuiteMismatch: fragments from a cleartext sender must be
// dropped by an AEAD receiver (unauthenticated input), and AEAD
// fragments by a cleartext receiver (unverifiable).
func TestAEADSuiteMismatch(t *testing.T) {
	s := sim.NewScheduler()
	var pkts [][]byte
	snd, err := NewSender(s, func(p []byte) error {
		pkts = append(pkts, append([]byte(nil), p...))
		return nil
	}, Config{Policy: NoRetransmit})
	if err != nil {
		t.Fatal(err)
	}
	snd.Send(0, xcode.SyntaxRaw, payload(100, 1))

	rcv, err := NewReceiver(s, nil, Config{Policy: NoRetransmit, Suite: SuiteAEAD, Key: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkt := range pkts {
		if err := rcv.HandlePacket(pkt); !errors.Is(err, ErrBadHeader) {
			t.Fatalf("cleartext fragment on AEAD stream: err = %v", err)
		}
	}
	if rcv.Stats.Fragments != 0 {
		t.Fatal("AEAD receiver accepted a cleartext fragment")
	}

	pkts = nil
	asnd, err := NewSender(s, func(p []byte) error {
		pkts = append(pkts, append([]byte(nil), p...))
		return nil
	}, Config{Policy: NoRetransmit, Suite: SuiteAEAD, Key: 5})
	if err != nil {
		t.Fatal(err)
	}
	asnd.Send(0, xcode.SyntaxRaw, payload(100, 1))
	crcv, err := NewReceiver(s, nil, Config{Policy: NoRetransmit})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkt := range pkts {
		if err := crcv.HandlePacket(pkt); !errors.Is(err, ErrBadHeader) {
			t.Fatalf("AEAD fragment on cleartext stream: err = %v", err)
		}
	}
	if crcv.Stats.Fragments != 0 {
		t.Fatal("cleartext receiver accepted an AEAD fragment")
	}
}

// TestAEADLossySoak runs a lossy, reordering link under SuiteAEAD and
// checks the exactly-once/intact-delivery invariants hold with the
// crypto plane on.
func TestAEADLossySoak(t *testing.T) {
	cfg := aeadCfg()
	p := newPair(t, netsim.LinkConfig{RateBps: 1e8, Delay: 2 * time.Millisecond, LossProb: 0.1}, cfg, 7)
	const n = 100
	var want [][]byte
	for i := 0; i < n; i++ {
		d := payload(500+i*13, byte(i))
		want = append(want, d)
		if _, err := p.snd.Send(uint64(i), xcode.SyntaxRaw, d); err != nil {
			t.Fatal(err)
		}
	}
	p.sched.Run()
	if len(p.adus) != n {
		t.Fatalf("delivered %d of %d", len(p.adus), n)
	}
	for _, a := range p.adus {
		if !bytes.Equal(a.Data, want[a.Name]) {
			t.Fatalf("ADU %d corrupted", a.Name)
		}
	}
	if p.rcv.Stats.AuthFails != 0 {
		t.Errorf("AuthFails = %d; loss is not corruption", p.rcv.Stats.AuthFails)
	}
}

// TestAEADConfigValidation covers the suite-specific Validate rules.
func TestAEADConfigValidation(t *testing.T) {
	s := sim.NewScheduler()
	if _, err := NewSender(s, nil, Config{Suite: SuiteAEAD}); !errors.Is(err, ErrConfig) {
		t.Errorf("SuiteAEAD without Key: err = %v", err)
	}
	if _, err := NewSender(s, nil, Config{Suite: SuiteScramble}); !errors.Is(err, ErrConfig) {
		t.Errorf("SuiteScramble without Key: err = %v", err)
	}
	if _, err := NewSender(s, nil, Config{Suite: 99}); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown suite: err = %v", err)
	}
	if _, err := NewSender(s, nil, Config{Suite: SuiteAEAD, Key: 1, MaxADU: aeadMaxADU + 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("MaxADU beyond AEAD counter domain: err = %v", err)
	}
	if _, err := NewSender(s, func([]byte) error { return nil }, Config{Suite: SuiteAEAD, Key: 1}); err != nil {
		t.Errorf("valid AEAD config rejected: %v", err)
	}
}

// TestSendSteadyStateAEADZeroAlloc is the allocation guard for the
// crypto-on datapath: Send -> AEAD packetize (keystream + tags) ->
// netsim forward -> HandlePacket -> verify + decrypt -> deliver ->
// Release must not allocate in steady state. The name matches the
// alloc-guard make target's -run pattern.
func TestSendSteadyStateAEADZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	src := n.NewNode("src")
	rtr := n.NewRouter("rtr")
	dst := n.NewNode("dst")
	sl, _ := n.NewDuplex(src, rtr.Node, netsim.LinkConfig{})
	rd, _ := n.NewDuplex(rtr.Node, dst, netsim.LinkConfig{})
	rtr.AddRoute(dst, rd)

	cfg := aeadCfg()
	cfg.Policy = NoRetransmit
	snd, err := NewSender(s, func(p []byte) error { return netsim.SendVia(sl, dst, p) }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snd.SendRef = func(ref *buf.Ref) error { return netsim.SendRefVia(sl, dst, ref) }
	rcv, err := NewReceiver(s, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	rcv.OnADU = func(adu ADU) { delivered++; adu.Release() }
	dst.SetHandler(func(p *netsim.Packet) { _ = rcv.HandlePacket(p.Payload) })

	data := make([]byte, benchADUBytes)
	for i := range data {
		data[i] = byte(i)
	}
	name := uint64(0)
	send := func() {
		if _, err := snd.Send(name, xcode.SyntaxRaw, data); err != nil {
			t.Fatal(err)
		}
		name++
		_ = s.RunUntil(s.Now())
	}
	for i := 0; i < 8; i++ {
		send()
	}
	if allocs := testing.AllocsPerRun(100, send); allocs != 0 {
		t.Fatalf("AEAD steady-state datapath allocates %v allocs/op, want 0", allocs)
	}
	if delivered != int(name) {
		t.Fatalf("delivered %d of %d", delivered, name)
	}
}
