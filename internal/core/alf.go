// Package alf implements Application Level Framing — the paper's key
// architectural principle (§5, §7) — as a transport whose unit of
// transfer, manipulation, and error recovery is the Application Data
// Unit (ADU), not the packet or the byte stream.
//
// ADUs carry a sender-assigned sequential name and an opaque
// application tag (the "higher-level name-space in which ADUs are
// named": a file offset, a (frame, slice) pair, an RPC call id).
// Complete ADUs are delivered to the application as soon as they
// arrive, out of order with respect to other ADUs — a lost packet never
// stalls the presentation pipeline behind it.
//
// Receive processing is the paper's two-stage structure (§6):
//
//   - Stage one, per arriving fragment: control only (demultiplex,
//     locate the fragment's slot) plus one fused data pass that copies
//     the fragment into place, decrypts it (position-addressable
//     keystream, so any fragment order works), and accumulates the
//     ADU's checksum — internal/ilp kernels, one load and one store per
//     word.
//   - Stage two, on ADU completion: fold the checksum, and hand the
//     whole ADU to the application (which may then run presentation
//     conversion, also out of order).
//
// Loss recovery is application-directed (§5 "the manner of coping with
// data loss is highly dependent on the needs of the application"):
//
//   - SenderBuffered: the transport keeps a ciphertext copy and
//     retransmits whole ADUs on NACK (the classic transport model).
//   - AppRecompute: the transport buffers nothing; on NACK it asks the
//     sending application to regenerate the ADU.
//   - NoRetransmit: losses are reported to the receiving application
//     and skipped (real-time delivery).
//
// Losses are always expressed in ADU names — terms meaningful to the
// application — never in byte offsets.
//
// For large flow populations, Sharded scales the same endpoints out
// (§7): flows hash over per-shard schedulers, buffer arenas, metrics
// views, and trunks (sim.Group runs the shards in parallel with epoch
// barriers), with cross-shard effects confined to control directives
// applied at barriers. ADUs carry enough information to control their
// own delivery, so no serializing hot spot connects the shards, and
// the worker count executing them cannot change results — only
// wall-clock. See docs/SCALING.md and ExampleSharded.
package alf

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/buf"
	"repro/internal/cipher"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tracing"
	"repro/internal/xcode"
)

// Policy selects the loss-recovery scheme for a stream (§5).
type Policy uint8

const (
	// SenderBuffered keeps a copy at the sending transport and resends
	// whole ADUs when the receiver reports them missing.
	SenderBuffered Policy = iota + 1
	// AppRecompute asks the sending application (via Sender.OnResend)
	// to regenerate a missing ADU; the transport buffers nothing.
	AppRecompute
	// NoRetransmit never recovers: the receiver reports the loss to its
	// application (via Receiver.OnLost) and moves on.
	NoRetransmit
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case SenderBuffered:
		return "sender-buffered"
	case AppRecompute:
		return "app-recompute"
	case NoRetransmit:
		return "no-retransmit"
	default:
		return "invalid-policy"
	}
}

// ADU is a received Application Data Unit.
type ADU struct {
	// Name is the sender-assigned sequential identity of this ADU
	// within its stream. Losses are reported in these terms.
	Name uint64
	// Tag is the application's own naming information, carried opaquely
	// (e.g. destination file offset, (frame<<32)|slice, RPC id).
	Tag uint64
	// Syntax identifies the transfer syntax of Data.
	Syntax xcode.SyntaxID
	// Data is the complete ADU payload (plaintext). The receiver
	// transfers ownership to the application. The backing store is a
	// pooled reassembly buffer: an application that is done with the
	// bytes may call Release to recycle it, or simply keep the slice
	// forever (the pool never reclaims a buffer that is not released).
	Data []byte

	ref *buf.Ref // pooled backing store of Data; nil after Release
}

// Release returns the ADU's pooled reassembly buffer for reuse. Data
// (and anything aliasing it) is invalid afterwards. Optional: an ADU
// that is never released is simply garbage-collected like any slice,
// but a steady-state consumer that releases keeps the datapath
// allocation-free. Releasing twice is a no-op.
func (a *ADU) Release() {
	if a.ref != nil {
		a.ref.Release()
		a.ref = nil
		a.Data = nil
	}
}

// Errors. Test with errors.Is.
var (
	ErrADUTooLarge  = errors.New("alf: ADU exceeds MaxADU")
	ErrBufferLimit  = errors.New("alf: sender retention buffer full")
	ErrBadHeader    = errors.New("alf: malformed or corrupt header")
	ErrWrongStream  = errors.New("alf: fragment for another stream")
	ErrNameOrder    = errors.New("alf: ADU names must be assigned by the sender")
	ErrMTUTooSmall  = errors.New("alf: MTU leaves no fragment payload")
	ErrInconsistent = errors.New("alf: fragment disagrees with earlier fragments of the same ADU")
	// ErrConfig wraps every constructor-time configuration rejection;
	// the message names the offending field and value.
	ErrConfig = errors.New("alf: invalid config")
	// ErrShed is returned by SendClass when a Droppable ADU is shed
	// before transmission under overload. The ADU consumed no name and
	// nothing reached the wire; the application decides whether to
	// retry, downgrade, or move on (§5).
	ErrShed = errors.New("alf: droppable ADU shed under overload")
	// ErrAuthFail is returned by Receiver.HandlePacket when a SuiteAEAD
	// fragment's Poly1305 tag does not verify. The fragment is treated
	// as lost: nothing is accounted and recovery re-requests the range.
	ErrAuthFail = errors.New("alf: fragment failed authentication")
)

// Config parameterizes one stream. The same Config should be given to
// both ends. Zero fields take defaults.
type Config struct {
	// StreamID demultiplexes streams sharing a node.
	StreamID byte
	// MTU is the maximum wire fragment size including the ALF header
	// (default 1024+HeaderSize). The fragment payload is
	// (MTU-HeaderSize) rounded down to a multiple of 8.
	MTU int
	// RateBps paces fragment emission (0 = unpaced). Rate negotiation
	// is out-of-band by design (§3): call Sender.SetRate at any time.
	RateBps float64
	// Policy selects loss recovery (default SenderBuffered).
	Policy Policy
	// Key enables encryption when non-zero. Each ADU is enciphered
	// under (Key, Name) with a position-addressable keystream, so ADUs
	// and fragments decrypt in any order. Which cipher runs is chosen
	// by Suite; under SuiteAEAD the 256-bit ChaCha20 key is expanded
	// from this seed (cipher.ExpandKey).
	Key uint64
	// Suite selects the cipher stage. The zero value (SuiteAuto) keeps
	// the historical behavior — scramble keystream when Key != 0,
	// cleartext otherwise. SuiteAEAD switches the datapath to fused
	// ChaCha20-Poly1305: fragments carry a 16-byte tag after the
	// ciphertext, the tag replaces the Internet checksum as the
	// integrity pass, and corrupt fragments are dropped and recovered
	// like losses. Both ends must agree.
	Suite CipherSuite
	// NackDelay is how long the receiver waits after first noticing a
	// gap before requesting recovery, to let reordering settle
	// (default 20 ms).
	NackDelay sim.Duration
	// NackInterval is the receiver's scan period for gaps and repeat
	// NACKs (default 20 ms).
	NackInterval sim.Duration
	// HoldTime bounds how long the receiver waits for an ADU before
	// declaring it lost to the application (default 2 s; NoRetransmit
	// streams typically set this near the playout deadline).
	HoldTime sim.Duration
	// MaxNacks bounds recovery attempts per ADU (default 10).
	MaxNacks int
	// MaxADU bounds a single ADU (default 16 MiB).
	MaxADU int
	// BufferLimit bounds sender retention under SenderBuffered
	// (default 64 MiB of payload).
	BufferLimit int
	// HeartbeatInterval is how often the sender declares the extent of
	// the stream while deliveries are unconfirmed, so a receiver can
	// detect tail loss (default = NackInterval).
	HeartbeatInterval sim.Duration
	// HeartbeatMaxInterval caps the heartbeat backoff: during silence
	// (consecutive heartbeats with no receiver progress) the interval
	// doubles from HeartbeatInterval up to this cap, with deterministic
	// ±25% jitter so a fleet of streams does not probe a healing path in
	// lockstep (default max(1s, HeartbeatInterval)).
	HeartbeatMaxInterval sim.Duration
	// HeartbeatLimit bounds consecutive heartbeats without receiver
	// progress before the sender stops trying (default 200). It exists
	// so a dead path eventually goes quiet. With backoff, 200 misses
	// against a 1 s cap means a dead path is probed for minutes, not
	// seconds, before the sender gives up.
	HeartbeatLimit int
	// ADUDeadline, when non-zero, bounds how long a SenderBuffered
	// stream retains an unconfirmed ADU: past the deadline the copy is
	// shed (OnExpire, then OnRelease) and later NACKs for it go
	// unfilled. This is the give-up point that keeps sender retention
	// bounded during a sustained blackout — the application decided how
	// stale its data may usefully be (§5). Zero retains until the
	// receiver confirms or BufferLimit pushes back.
	ADUDeadline sim.Duration
	// NameWindow bounds how far ahead of the settled frontier an
	// arriving ADU name may claim to be (default 1<<20). Headers are
	// protected by a 16-bit checksum, so one in ~65k corrupted headers
	// survives verification; without this bound a surviving garbage
	// name would have the receiver record an astronomically large gap.
	NameWindow uint64
	// FECGroup enables forward error correction on ADU sub-units
	// (paper footnote 10): after every FECGroup data fragments of an
	// ADU, the sender emits one XOR parity fragment, letting the
	// receiver reconstruct any single lost fragment per group without a
	// retransmission round trip. Zero disables FEC. The bandwidth
	// overhead is 1/FECGroup.
	FECGroup int
	// Metrics, if non-nil, registers this endpoint's event counters
	// (views over Sender.Stats/Receiver.Stats), buffer gauges, ADU
	// size histograms, and the receiver's ADU-latency histogram with
	// the unified registry, labeled stream=<StreamID>. A nil registry
	// costs one branch per event (see internal/metrics).
	Metrics *metrics.Registry
	// Tracer, if non-nil, records this endpoint's per-ADU lifecycle
	// events (submit, fragment tx/rx, NACKs, delivery/loss/expiry)
	// with the span recorder. A nil tracer costs one branch per event
	// (see internal/tracing).
	Tracer *tracing.Tracer
	// Pool supplies the pooled buffers the datapath runs on: the
	// sender's wire fragments (with header headroom), FEC parity
	// accumulators, and the receiver's reassembly buffers. Default
	// buf.Default, shared with netsim so the recycling loop closes end
	// to end.
	Pool *buf.Pool

	// Encap, when non-empty, is an encapsulation prefix stamped in
	// front of the ALF header on every data-plane wire packet the
	// sender emits — the hook an outer demultiplexer (e.g. the sharded
	// endpoint's 8-byte flow id) uses to route packets without parsing
	// ALF headers. The prefix is written once at stamp time into the
	// same pooled buffer (headroom is reserved during packetization),
	// so retransmissions of retained fragments carry it for free and
	// the zero-copy path stays intact. The outer layer must strip the
	// prefix before Receiver.HandlePacket; the receiver adds
	// len(Encap) back per accepted packet when accounting WireBytes so
	// the sender's feedback loop sees consistent byte counts. Encap
	// rides outside the MTU budget, and the sender does not prefix
	// control-plane []byte sends (heartbeats) — the outer layer frames
	// those itself.
	Encap []byte

	// FeedbackInterval, when non-zero, has the receiver periodically
	// report cumulative delivery counters (wire bytes accepted, verified
	// payload delivered) on the control channel — the measurement half
	// of the §3 rate-based control loop. Zero disables feedback (the
	// pre-existing open-loop behavior). The report timer runs only
	// while the stream is active and stops on its own when the stream
	// goes idle, so an idle receiver leaves the event loop quiescent.
	FeedbackInterval sim.Duration
	// Controller, when non-nil, closes the loop: each accepted feedback
	// report is turned into a RateSample and the controller's answer
	// replaces the pacing rate (Sender.SetRate under the hood, no
	// longer blind). Nil keeps Config.RateBps fixed. Requires
	// FeedbackInterval > 0 (enforced by Validate) and RateBps > 0 —
	// an unpaced stream has no rate to control.
	Controller RateController
	// ShedBacklog is the pacer-backlog threshold beyond which Droppable
	// ADUs are shed before transmission (default 100 ms). The backlog
	// is how far in the future the pacer would schedule the next
	// fragment; a deep backlog means the application is offering more
	// than the current rate carries.
	ShedBacklog sim.Duration
	// ShedLossFrac sheds Droppable ADUs while the smoothed reported
	// loss fraction (EWMA over feedback reports) exceeds it
	// (default 0.25). Only meaningful with FeedbackInterval set.
	ShedLossFrac float64
	// Custody opts the sender into DTN-style custody transfer: a
	// downstream store-and-forward relay (internal/relay) that has a
	// complete copy of an ADU sends a custody-ack frame, and the sender
	// releases its retained copy and stops answering NACKs for that
	// name — recovery responsibility has moved one hop downstream.
	// This trades end-to-end retention for bounded buffers at
	// interplanetary delays: without custody, a sender facing a 40-min
	// blackout either holds gigabytes or blows ADUDeadline. Off by
	// default because releasing before end-to-end confirmation is a
	// semantic change the application must ask for.
	Custody bool
	// PathRTT, when non-zero, documents the path's expected round-trip
	// time for validation: Validate rejects a WindowedRate controller
	// whose StaleAfter is shorter than the RTT (every report would
	// look stale and the model could never form). Informational
	// otherwise — the protocol measures, it does not assume (§3).
	PathRTT sim.Duration
	// aeadKey is the expanded ChaCha20 key, precomputed by fill when
	// Suite resolves to SuiteAEAD so the per-fragment path never
	// re-expands it.
	aeadKey cipher.Key

	// RecoveryFrac caps recovery traffic: retransmissions (SenderBuffered
	// resends and AppRecompute regenerations) may consume at most this
	// fraction of the current send rate, enforced by a token bucket
	// with a one-second burst. Suppressed resends are counted
	// (SenderStats.RetxSuppressed) and answered by the receiver's next
	// backed-off NACK instead — recovery pressure can no longer grow
	// just when the path is saturated. Critical ADUs bypass the cap
	// (their resends still debit it). Zero disables the cap; pacing
	// must be on (RateBps > 0) for the cap to apply.
	RecoveryFrac float64
}

// Validate rejects configurations that cannot mean anything sensible —
// negative rates, an MTU with no room for a payload, negative
// durations or counts — with a descriptive error naming the field.
// Zero values are not errors: they take the documented defaults in
// fill. NewSender and NewReceiver call Validate, so a nonsense config
// fails loudly at construction instead of misbehaving silently.
func (c *Config) Validate() error {
	if c.RateBps < 0 {
		return fmt.Errorf("%w: RateBps %v is negative", ErrConfig, c.RateBps)
	}
	if c.MTU < 0 || (c.MTU > 0 && c.MTU <= HeaderSize) {
		return fmt.Errorf("%w: MTU %d leaves no fragment payload (header is %d bytes)",
			ErrConfig, c.MTU, HeaderSize)
	}
	for _, d := range []struct {
		name string
		v    sim.Duration
	}{
		{"NackDelay", c.NackDelay},
		{"NackInterval", c.NackInterval},
		{"HoldTime", c.HoldTime},
		{"HeartbeatInterval", c.HeartbeatInterval},
		{"HeartbeatMaxInterval", c.HeartbeatMaxInterval},
		{"ADUDeadline", c.ADUDeadline},
		{"FeedbackInterval", c.FeedbackInterval},
		{"ShedBacklog", c.ShedBacklog},
		{"PathRTT", c.PathRTT},
	} {
		if d.v < 0 {
			return fmt.Errorf("%w: %s %v is negative", ErrConfig, d.name, d.v)
		}
	}
	for _, n := range []struct {
		name string
		v    int
	}{
		{"MaxNacks", c.MaxNacks},
		{"MaxADU", c.MaxADU},
		{"BufferLimit", c.BufferLimit},
		{"HeartbeatLimit", c.HeartbeatLimit},
		{"FECGroup", c.FECGroup},
	} {
		if n.v < 0 {
			return fmt.Errorf("%w: %s %d is negative", ErrConfig, n.name, n.v)
		}
	}
	if c.ShedLossFrac < 0 || c.ShedLossFrac > 1 {
		return fmt.Errorf("%w: ShedLossFrac %v outside [0, 1]", ErrConfig, c.ShedLossFrac)
	}
	if c.RecoveryFrac < 0 || c.RecoveryFrac > 1 {
		return fmt.Errorf("%w: RecoveryFrac %v outside [0, 1]", ErrConfig, c.RecoveryFrac)
	}
	if c.Controller != nil {
		if c.FeedbackInterval == 0 {
			return fmt.Errorf("%w: Controller set without FeedbackInterval; the loop can never close",
				ErrConfig)
		}
		if c.RateBps == 0 {
			return fmt.Errorf("%w: Controller set on an unpaced stream (RateBps 0); there is no rate to control",
				ErrConfig)
		}
	}
	if wr, ok := c.Controller.(*WindowedRate); ok {
		if wr.Window < 0 {
			return fmt.Errorf("%w: WindowedRate.Window %d is negative", ErrConfig, wr.Window)
		}
		if wr.StaleAfter < 0 {
			return fmt.Errorf("%w: WindowedRate.StaleAfter %v is negative", ErrConfig, wr.StaleAfter)
		}
		if c.PathRTT > 0 && wr.StaleAfter > 0 && wr.StaleAfter < c.PathRTT {
			return fmt.Errorf("%w: WindowedRate.StaleAfter %v is shorter than PathRTT %v; every report would look stale and the delivery model could never form",
				ErrConfig, wr.StaleAfter, c.PathRTT)
		}
	}
	switch c.Suite {
	case SuiteAuto, SuiteNone, SuiteScramble, SuiteAEAD:
	default:
		return fmt.Errorf("%w: unknown cipher suite %d", ErrConfig, c.Suite)
	}
	if (c.Suite == SuiteScramble || c.Suite == SuiteAEAD) && c.Key == 0 {
		return fmt.Errorf("%w: suite %v requires a non-zero Key", ErrConfig, c.Suite)
	}
	if c.Suite == SuiteAEAD && c.MaxADU > aeadMaxADU {
		return fmt.Errorf("%w: MaxADU %d exceeds the AEAD counter-domain limit %d",
			ErrConfig, c.MaxADU, aeadMaxADU)
	}
	if c.Custody && c.Policy == AppRecompute {
		return fmt.Errorf("%w: Custody with the app-recompute policy; there is no retained copy for a custody ack to release",
			ErrConfig)
	}
	return nil
}

func (c *Config) fill() {
	if c.Suite == SuiteAuto {
		if c.Key != 0 {
			c.Suite = SuiteScramble
		} else {
			c.Suite = SuiteNone
		}
	}
	if c.Suite == SuiteAEAD {
		c.aeadKey = cipher.ExpandKey(c.Key)
	}
	if c.MTU == 0 {
		c.MTU = 1024 + HeaderSize
	}
	if c.Policy == 0 {
		c.Policy = SenderBuffered
	}
	if c.NackDelay == 0 {
		c.NackDelay = 20 * time.Millisecond
	}
	if c.NackInterval == 0 {
		c.NackInterval = 20 * time.Millisecond
	}
	if c.HoldTime == 0 {
		c.HoldTime = 2 * time.Second
	}
	if c.MaxNacks == 0 {
		c.MaxNacks = 10
	}
	if c.MaxADU == 0 {
		c.MaxADU = 16 << 20
	}
	if c.BufferLimit == 0 {
		c.BufferLimit = 64 << 20
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = c.NackInterval
	}
	if c.HeartbeatMaxInterval == 0 {
		c.HeartbeatMaxInterval = time.Second
		if c.HeartbeatInterval > c.HeartbeatMaxInterval {
			c.HeartbeatMaxInterval = c.HeartbeatInterval
		}
	}
	if c.HeartbeatLimit == 0 {
		c.HeartbeatLimit = 200
	}
	if c.NameWindow == 0 {
		c.NameWindow = 1 << 20
	}
	if c.Pool == nil {
		c.Pool = buf.Default
	}
	if c.ShedBacklog == 0 {
		c.ShedBacklog = 100 * time.Millisecond
	}
	if c.ShedLossFrac == 0 {
		c.ShedLossFrac = 0.25
	}
}

// fragPayload returns the usable payload bytes per fragment: the MTU
// minus the header (and, under SuiteAEAD, the per-fragment tag),
// rounded down to a multiple of 8 (the fused-kernel alignment unit)
// and capped at what the 16-bit wire length field can carry.
func (c *Config) fragPayload() int {
	budget := c.MTU - HeaderSize
	if c.Suite == SuiteAEAD {
		budget -= aeadTagSize
	}
	fp := budget &^ 7
	if fp > 0xFFF8 {
		fp = 0xFFF8
	}
	return fp
}
