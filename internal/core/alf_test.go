package alf

import (
	"bytes"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// pair wires an ALF sender and receiver across a duplex netsim link:
// data flows a->b, control flows b->a.
type pair struct {
	sched *sim.Scheduler
	net   *netsim.Network
	ab    *netsim.Link
	ba    *netsim.Link
	snd   *Sender
	rcv   *Receiver
	adus  []ADU
	lost  []uint64
}

func newPair(t *testing.T, linkCfg netsim.LinkConfig, cfg Config, seed int64) *pair {
	t.Helper()
	s := sim.NewScheduler()
	n := netsim.New(s, seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, linkCfg)

	p := &pair{sched: s, net: n, ab: ab, ba: ba}
	var err error
	p.snd, err = NewSender(s, ab.Send, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.rcv, err = NewReceiver(s, ba.Send, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.SetHandler(func(pk *netsim.Packet) { p.snd.HandleControl(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { p.rcv.HandlePacket(pk.Payload) })
	p.rcv.OnADU = func(a ADU) { p.adus = append(p.adus, a) }
	p.rcv.OnLost = func(name uint64) { p.lost = append(p.lost, name) }
	return p
}

func payload(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill + byte(i%13)
	}
	return b
}

func (p *pair) aduByName(name uint64) *ADU {
	for i := range p.adus {
		if p.adus[i].Name == name {
			return &p.adus[i]
		}
	}
	return nil
}

func TestSingleADU(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{}, 1)
	data := payload(100, 1)
	name, err := p.snd.Send(42, xcode.SyntaxRaw, data)
	if err != nil {
		t.Fatal(err)
	}
	if name != 0 {
		t.Errorf("first name = %d", name)
	}
	p.sched.Run()
	if len(p.adus) != 1 {
		t.Fatalf("delivered %d ADUs", len(p.adus))
	}
	got := p.adus[0]
	if got.Name != 0 || got.Tag != 42 || got.Syntax != xcode.SyntaxRaw {
		t.Errorf("ADU meta = %+v", got)
	}
	if !bytes.Equal(got.Data, data) {
		t.Error("payload mismatch")
	}
}

func TestEmptyADU(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{}, 1)
	if _, err := p.snd.Send(7, xcode.SyntaxRaw, nil); err != nil {
		t.Fatal(err)
	}
	p.sched.Run()
	if len(p.adus) != 1 || len(p.adus[0].Data) != 0 {
		t.Fatalf("empty ADU not delivered: %+v", p.adus)
	}
}

func TestMultiFragmentADU(t *testing.T) {
	cfg := Config{MTU: 128 + HeaderSize} // 128-byte fragments
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, cfg, 1)
	data := payload(10_000, 3)
	p.snd.Send(0, xcode.SyntaxRaw, data)
	p.sched.Run()
	if len(p.adus) != 1 || !bytes.Equal(p.adus[0].Data, data) {
		t.Fatal("multi-fragment ADU corrupted")
	}
	if p.snd.Stats.Fragments < 70 {
		t.Errorf("fragments = %d, want ~79", p.snd.Stats.Fragments)
	}
}

func TestManyADUsInOrderCleanLink(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{RateBps: 1e8, Delay: time.Millisecond}, Config{}, 1)
	const n = 200
	for i := 0; i < n; i++ {
		p.snd.Send(uint64(i*1000), xcode.SyntaxRaw, payload(500, byte(i)))
	}
	p.sched.Run()
	if len(p.adus) != n {
		t.Fatalf("delivered %d of %d", len(p.adus), n)
	}
	if p.rcv.Stats.OutOfOrder != 0 {
		t.Errorf("out-of-order deliveries on a clean FIFO link: %d", p.rcv.Stats.OutOfOrder)
	}
	if p.rcv.Settled() != n {
		t.Errorf("settled = %d", p.rcv.Settled())
	}
}

func TestOutOfOrderDeliveryUnderLoss(t *testing.T) {
	// The ALF property: a lost ADU does NOT hold up ADUs behind it.
	cfg := Config{NackDelay: 5 * time.Millisecond, NackInterval: 5 * time.Millisecond}
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.1}, cfg, 3)
	const n = 300
	for i := 0; i < n; i++ {
		p.snd.Send(uint64(i), xcode.SyntaxRaw, payload(900, byte(i)))
	}
	p.sched.Run()
	if len(p.adus) != n {
		t.Fatalf("delivered %d of %d (lost: %v)", len(p.adus), n, p.lost)
	}
	if p.rcv.Stats.OutOfOrder == 0 {
		t.Error("no out-of-order deliveries despite loss — ALF head-of-line freedom missing")
	}
	if p.snd.Stats.ResentADUs == 0 {
		t.Error("no resends despite loss")
	}
	// Every ADU delivered exactly once, contents intact.
	seen := map[uint64]bool{}
	for _, a := range p.adus {
		if seen[a.Name] {
			t.Fatalf("ADU %d delivered twice", a.Name)
		}
		seen[a.Name] = true
		if !bytes.Equal(a.Data, payload(900, byte(a.Name))) {
			t.Fatalf("ADU %d corrupted", a.Name)
		}
	}
}

func TestLossOfFragmentLosesWholeADUOnly(t *testing.T) {
	// Drop one specific fragment of ADU 5; ADUs 0-4 and 6-9 must be
	// delivered before recovery completes ADU 5.
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{Delay: time.Millisecond})

	cfg := Config{MTU: 256 + HeaderSize, NackDelay: 10 * time.Millisecond,
		NackInterval: 10 * time.Millisecond}
	dropOne := true
	var snd *Sender
	send := func(pkt []byte) error {
		if dropOne && PacketType(pkt) == 1 {
			h, err := parseHeader(pkt)
			if err == nil && h.Name == 5 && h.FragOff == 256 {
				dropOne = false
				return nil
			}
		}
		return ab.Send(pkt)
	}
	snd, _ = NewSender(s, send, cfg)
	rcv, _ := NewReceiver(s, ba.Send, cfg)
	a.SetHandler(func(pk *netsim.Packet) { snd.HandleControl(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { rcv.HandlePacket(pk.Payload) })

	type ev struct {
		name uint64
		at   sim.Time
	}
	var order []ev
	rcv.OnADU = func(adu ADU) { order = append(order, ev{adu.Name, s.Now()}) }

	for i := 0; i < 10; i++ {
		snd.Send(uint64(i), xcode.SyntaxRaw, payload(1000, byte(i)))
	}
	s.Run()

	if len(order) != 10 {
		t.Fatalf("delivered %d of 10", len(order))
	}
	at := map[uint64]sim.Time{}
	for _, e := range order {
		at[e.name] = e.at
	}
	// ADU 9 must not wait for ADU 5's recovery.
	if at[9] >= at[5] {
		t.Errorf("ADU 9 delivered at %v, after damaged ADU 5 at %v — head-of-line blocking", at[9], at[5])
	}
	if at[5].Sub(at[4]) < 5*time.Millisecond {
		t.Errorf("ADU 5 recovered suspiciously fast: %v after ADU 4", at[5].Sub(at[4]))
	}
}

func TestEncryptedStream(t *testing.T) {
	cfg := Config{Key: 0xDEADBEEF, MTU: 256 + HeaderSize}
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond,
		ReorderProb: 0.3, ReorderDelay: 3 * time.Millisecond}, cfg, 5)
	const n = 50
	for i := 0; i < n; i++ {
		p.snd.Send(uint64(i), xcode.SyntaxRaw, payload(2000, byte(i)))
	}
	p.sched.Run()
	if len(p.adus) != n {
		t.Fatalf("delivered %d of %d", len(p.adus), n)
	}
	for _, a := range p.adus {
		if !bytes.Equal(a.Data, payload(2000, byte(a.Name))) {
			t.Fatalf("encrypted ADU %d decrypted wrong", a.Name)
		}
	}
}

func TestEncryptionActuallyCiphers(t *testing.T) {
	// Sniff the wire: payload bytes must not equal the plaintext.
	s := sim.NewScheduler()
	cfg := Config{Key: 123}
	var wire []byte
	snd, _ := NewSender(s, func(pkt []byte) error {
		if PacketType(pkt) == 1 {
			wire = append([]byte(nil), pkt[HeaderSize:]...)
		}
		return nil
	}, cfg)
	data := payload(64, 9)
	snd.Send(0, xcode.SyntaxRaw, data)
	s.Run()
	if bytes.Equal(wire, data) {
		t.Error("payload traveled in cleartext despite Key")
	}
}

func TestCorruptionRejectedAndRecovered(t *testing.T) {
	cfg := Config{NackDelay: 5 * time.Millisecond, NackInterval: 5 * time.Millisecond}
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond, BitErrorRate: 2e-6}, cfg, 7)
	const n = 100
	for i := 0; i < n; i++ {
		p.snd.Send(uint64(i), xcode.SyntaxRaw, payload(1000, byte(i)))
	}
	p.sched.Run()
	if len(p.adus) != n {
		t.Fatalf("delivered %d of %d", len(p.adus), n)
	}
	if p.rcv.Stats.ChecksumFails == 0 && p.rcv.Stats.HeaderDrops == 0 {
		t.Error("no corruption observed; raise BitErrorRate")
	}
	for _, a := range p.adus {
		if !bytes.Equal(a.Data, payload(1000, byte(a.Name))) {
			t.Fatalf("corrupted ADU %d delivered", a.Name)
		}
	}
}

func TestNoRetransmitReportsLoss(t *testing.T) {
	cfg := Config{
		Policy:       NoRetransmit,
		NackInterval: 5 * time.Millisecond,
		HoldTime:     50 * time.Millisecond,
	}
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.15}, cfg, 9)
	const n = 200
	for i := 0; i < n; i++ {
		p.snd.Send(uint64(i), xcode.SyntaxRaw, payload(800, byte(i)))
	}
	p.sched.Run()
	if len(p.lost) == 0 {
		t.Fatal("no losses reported at 15% loss")
	}
	if p.snd.Stats.ResentADUs != 0 || p.snd.Stats.RecomputeADUs != 0 {
		t.Error("NoRetransmit stream retransmitted")
	}
	if p.rcv.Stats.NacksSent != 0 {
		t.Error("NoRetransmit receiver sent NACKs")
	}
	if len(p.adus)+len(p.lost) != n {
		t.Errorf("delivered %d + lost %d != %d", len(p.adus), len(p.lost), n)
	}
	if p.rcv.Settled() != n {
		t.Errorf("settled = %d, want %d", p.rcv.Settled(), n)
	}
}

func TestAppRecomputePolicy(t *testing.T) {
	cfg := Config{
		Policy:       AppRecompute,
		NackDelay:    5 * time.Millisecond,
		NackInterval: 5 * time.Millisecond,
	}
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.1}, cfg, 11)
	recomputes := 0
	p.snd.OnResend = func(name uint64) (uint64, xcode.SyntaxID, []byte, bool) {
		recomputes++
		return name * 10, xcode.SyntaxRaw, payload(700, byte(name)), true
	}
	const n = 150
	for i := 0; i < n; i++ {
		p.snd.Send(uint64(i*10), xcode.SyntaxRaw, payload(700, byte(i)))
	}
	p.sched.Run()
	if len(p.adus) != n {
		t.Fatalf("delivered %d of %d", len(p.adus), n)
	}
	if recomputes == 0 {
		t.Error("recompute callback never used")
	}
	if p.snd.BufferedBytes() != 0 {
		t.Error("AppRecompute sender retained buffers")
	}
	for _, a := range p.adus {
		if !bytes.Equal(a.Data, payload(700, byte(a.Name))) {
			t.Fatalf("ADU %d wrong after recompute", a.Name)
		}
	}
}

func TestSenderBufferReleasedByCumAck(t *testing.T) {
	cfg := Config{NackInterval: 5 * time.Millisecond}
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, cfg, 1)
	released := []uint64{}
	p.snd.OnRelease = func(name uint64) { released = append(released, name) }
	const n = 20
	for i := 0; i < n; i++ {
		p.snd.Send(uint64(i), xcode.SyntaxRaw, payload(100, byte(i)))
	}
	p.sched.Run()
	if p.snd.BufferedADUs() != 0 || p.snd.BufferedBytes() != 0 {
		t.Errorf("retention not released: %d ADUs, %d bytes",
			p.snd.BufferedADUs(), p.snd.BufferedBytes())
	}
	if len(released) != n {
		t.Errorf("released %d of %d", len(released), n)
	}
	sort.Slice(released, func(i, j int) bool { return released[i] < released[j] })
	for i, name := range released {
		if name != uint64(i) {
			t.Fatalf("release sequence wrong: %v", released)
		}
	}
}

func TestBufferLimitEnforced(t *testing.T) {
	s := sim.NewScheduler()
	cfg := Config{BufferLimit: 1000}
	snd, _ := NewSender(s, func([]byte) error { return nil }, cfg)
	if _, err := snd.Send(0, xcode.SyntaxRaw, payload(600, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := snd.Send(1, xcode.SyntaxRaw, payload(600, 2)); !errors.Is(err, ErrBufferLimit) {
		t.Errorf("err = %v, want ErrBufferLimit", err)
	}
}

func TestADUTooLarge(t *testing.T) {
	s := sim.NewScheduler()
	snd, _ := NewSender(s, func([]byte) error { return nil }, Config{MaxADU: 100})
	if _, err := snd.Send(0, xcode.SyntaxRaw, payload(101, 1)); !errors.Is(err, ErrADUTooLarge) {
		t.Errorf("err = %v, want ErrADUTooLarge", err)
	}
}

func TestMTUTooSmall(t *testing.T) {
	s := sim.NewScheduler()
	if _, err := NewSender(s, nil, Config{MTU: HeaderSize + 4}); !errors.Is(err, ErrMTUTooSmall) {
		t.Errorf("sender err = %v", err)
	}
	if _, err := NewReceiver(s, nil, Config{MTU: HeaderSize + 4}); !errors.Is(err, ErrMTUTooSmall) {
		t.Errorf("receiver err = %v", err)
	}
}

func TestPacingSpacesFragments(t *testing.T) {
	s := sim.NewScheduler()
	var times []sim.Time
	cfg := Config{RateBps: 8e6, MTU: 1000 + HeaderSize} // ~1ms per ~1KB fragment
	snd, _ := NewSender(s, func(pkt []byte) error {
		if PacketType(pkt) == 1 {
			times = append(times, s.Now())
		}
		return nil
	}, cfg)
	snd.Send(0, xcode.SyntaxRaw, payload(5000, 1))
	s.Run()
	if len(times) < 5 {
		t.Fatalf("fragments = %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		if gap < 900*time.Microsecond {
			t.Errorf("fragment %d gap %v, want ~1ms (paced)", i, gap)
		}
	}
	last := times[len(times)-1]
	if last < sim.Time(4*time.Millisecond) {
		t.Errorf("last fragment at %v, want ~4-5ms", last)
	}
}

func TestSetRateTakesEffect(t *testing.T) {
	s := sim.NewScheduler()
	var times []sim.Time
	cfg := Config{MTU: 1000 + HeaderSize}
	snd, _ := NewSender(s, func(pkt []byte) error {
		if PacketType(pkt) == 1 {
			times = append(times, s.Now())
		}
		return nil
	}, cfg)
	snd.Send(0, xcode.SyntaxRaw, payload(2000, 1)) // unpaced: immediate
	if len(times) != 2 || times[1] != 0 {
		t.Fatalf("unpaced send not immediate: %v", times)
	}
	snd.SetRate(8e6)
	times = nil
	snd.Send(1, xcode.SyntaxRaw, payload(2000, 1))
	s.Run()
	if len(times) != 2 || times[1].Sub(times[0]) < 900*time.Microsecond {
		t.Errorf("paced send not spaced: %v", times)
	}
}

func TestDuplicateFragmentsIgnored(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond, DupProb: 0.5}, Config{}, 13)
	const n = 50
	for i := 0; i < n; i++ {
		p.snd.Send(uint64(i), xcode.SyntaxRaw, payload(3000, byte(i)))
	}
	p.sched.Run()
	if len(p.adus) != n {
		t.Fatalf("delivered %d of %d", len(p.adus), n)
	}
	if p.rcv.Stats.DupFragments == 0 && p.rcv.Stats.LateFragments == 0 {
		t.Error("no duplicates seen despite DupProb=0.5")
	}
}

func TestStreamDemux(t *testing.T) {
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{Delay: time.Millisecond})

	mk := func(id byte) (*Sender, *Receiver, *[]ADU) {
		cfg := Config{StreamID: id}
		snd, _ := NewSender(s, ab.Send, cfg)
		rcv, _ := NewReceiver(s, ba.Send, cfg)
		var got []ADU
		rcv.OnADU = func(adu ADU) { got = append(got, adu) }
		return snd, rcv, &got
	}
	s1, r1, g1 := mk(1)
	s2, r2, g2 := mk(2)
	a.SetHandler(func(pk *netsim.Packet) {
		if s1.HandleControl(pk.Payload) == ErrWrongStream {
			s2.HandleControl(pk.Payload)
		}
	})
	b.SetHandler(func(pk *netsim.Packet) {
		if r1.HandlePacket(pk.Payload) == ErrWrongStream {
			r2.HandlePacket(pk.Payload)
		}
	})
	s1.Send(0, xcode.SyntaxRaw, payload(100, 0xA))
	s2.Send(0, xcode.SyntaxRaw, payload(100, 0xB))
	s.Run()
	if len(*g1) != 1 || len(*g2) != 1 {
		t.Fatalf("stream demux failed: %d/%d", len(*g1), len(*g2))
	}
	if (*g1)[0].Data[0] != 0xA || (*g2)[0].Data[0] != 0xB {
		t.Error("streams crossed")
	}
}

func TestTagAndSyntaxCarried(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{}, 1)
	enc, _ := xcode.EncodeMessage(xcode.BER{}, nil, xcode.Message{xcode.Int32Value(7)})
	p.snd.Send(0xCAFEBABE, xcode.SyntaxBER, enc)
	p.sched.Run()
	if len(p.adus) != 1 {
		t.Fatal("not delivered")
	}
	if p.adus[0].Tag != 0xCAFEBABE || p.adus[0].Syntax != xcode.SyntaxBER {
		t.Errorf("meta lost: %+v", p.adus[0])
	}
}

func TestHeaderCorruptionDropped(t *testing.T) {
	s := sim.NewScheduler()
	rcv, _ := NewReceiver(s, nil, Config{})
	// Valid-ish header with flipped bit.
	snd, _ := NewSender(s, func(pkt []byte) error {
		if PacketType(pkt) != 1 {
			return nil
		}
		bad := append([]byte(nil), pkt...)
		bad[3] ^= 0x10
		if err := rcv.HandlePacket(bad); err == nil {
			t.Error("corrupt header accepted")
		}
		return nil
	}, Config{})
	snd.Send(0, xcode.SyntaxRaw, payload(64, 1))
	s.Run()
	if rcv.Stats.HeaderDrops != 1 {
		t.Errorf("HeaderDrops = %d", rcv.Stats.HeaderDrops)
	}
}

func TestRuntimeShortPacket(t *testing.T) {
	s := sim.NewScheduler()
	rcv, _ := NewReceiver(s, nil, Config{})
	if err := rcv.HandlePacket([]byte{1, 2, 3}); !errors.Is(err, ErrBadHeader) {
		t.Errorf("err = %v", err)
	}
	if err := rcv.HandlePacket(nil); !errors.Is(err, ErrBadHeader) {
		t.Errorf("nil err = %v", err)
	}
}

func TestControlRoundtrip(t *testing.T) {
	c := &control{Stream: 3, Cum: 12345, Nacks: []uint64{1, 5, 9}}
	enc := encodeControl(c)
	got, err := parseControl(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream != 3 || got.Cum != 12345 || len(got.Nacks) != 3 || got.Nacks[1] != 5 {
		t.Errorf("parsed %+v", got)
	}
	// Corruption detected.
	enc[5] ^= 1
	if _, err := parseControl(enc); err == nil {
		t.Error("corrupt control accepted")
	}
}

func TestHeaderRoundtrip(t *testing.T) {
	h := header{
		Stream: 9, Name: 1 << 40, Tag: 0xFFFFFFFFFFFFFFFF,
		Syntax: xcode.SyntaxXDR, Flags: flagEnciphered,
		TotalLen: 1 << 20, FragOff: 4096, FragLen: 1024, ADUCheck: 0xBEEF,
	}
	buf := make([]byte, HeaderSize+1024)
	putHeader(buf, &h)
	got, err := parseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip: %+v != %+v", got, h)
	}
}

func TestPacketType(t *testing.T) {
	if PacketType([]byte{1, 0}) != 1 || PacketType([]byte{2}) != 2 ||
		PacketType([]byte{9}) != 0 || PacketType(nil) != 0 {
		t.Error("PacketType misclassifies")
	}
}

func TestPolicyString(t *testing.T) {
	if SenderBuffered.String() != "sender-buffered" ||
		AppRecompute.String() != "app-recompute" ||
		NoRetransmit.String() != "no-retransmit" ||
		Policy(99).String() != "invalid-policy" {
		t.Error("Policy.String wrong")
	}
}

func TestHostileLinkEndToEnd(t *testing.T) {
	cfg := Config{
		Key:          0x1234,
		MTU:          512 + HeaderSize,
		NackDelay:    5 * time.Millisecond,
		NackInterval: 5 * time.Millisecond,
		MaxNacks:     50,
		HoldTime:     5 * time.Second,
	}
	p := newPair(t, netsim.LinkConfig{
		RateBps: 2e7, Delay: 2 * time.Millisecond, QueueLimit: 200,
		LossProb: 0.05, DupProb: 0.03, ReorderProb: 0.1,
		ReorderDelay: 3 * time.Millisecond, BitErrorRate: 1e-7,
	}, cfg, 17)
	const n = 150
	for i := 0; i < n; i++ {
		p.snd.Send(uint64(i), xcode.SyntaxRaw, payload(2500, byte(i)))
	}
	p.sched.Run()
	if len(p.adus)+len(p.lost) != n {
		t.Fatalf("settled %d+%d of %d", len(p.adus), len(p.lost), n)
	}
	if len(p.adus) < n*9/10 {
		t.Errorf("only %d of %d delivered on recoverable stream", len(p.adus), n)
	}
	for _, a := range p.adus {
		if !bytes.Equal(a.Data, payload(2500, byte(a.Name))) {
			t.Fatalf("ADU %d corrupted end-to-end", a.Name)
		}
	}
}

func TestLossesExpressedInADUNames(t *testing.T) {
	// The paper's requirement: losses must be reported in application
	// terms. Force total loss of one ADU and verify OnLost gets its
	// name.
	s := sim.NewScheduler()
	cfg := Config{
		NackDelay: 2 * time.Millisecond, NackInterval: 2 * time.Millisecond,
		MaxNacks: 2, HoldTime: 20 * time.Millisecond,
	}
	var rcv *Receiver
	snd, _ := NewSender(s, func(pkt []byte) error {
		h, err := parseHeader(pkt)
		if err == nil && h.Name == 1 {
			return nil // ADU 1 never arrives, ever
		}
		return rcv.HandlePacket(pkt)
	}, cfg)
	rcv, _ = NewReceiver(s, snd.HandleControl, cfg)
	var lost []uint64
	rcv.OnLost = func(name uint64) { lost = append(lost, name) }
	var got []uint64
	rcv.OnADU = func(a ADU) { got = append(got, a.Name) }

	for i := 0; i < 3; i++ {
		snd.Send(uint64(i), xcode.SyntaxRaw, payload(100, byte(i)))
	}
	s.Run()
	if len(lost) != 1 || lost[0] != 1 {
		t.Fatalf("lost = %v, want [1]", lost)
	}
	if len(got) != 2 {
		t.Errorf("delivered = %v", got)
	}
	if rcv.Settled() != 3 {
		t.Errorf("settled = %d, want 3 (loss settles the name)", rcv.Settled())
	}
}

func TestSettledFrontierInvariants(t *testing.T) {
	// Under arbitrary impairments, for every seed: the settled frontier
	// never regresses, and every name below it is accounted exactly
	// once (delivered xor lost).
	for seed := int64(1); seed <= 8; seed++ {
		cfg := Config{
			MTU:          512 + HeaderSize,
			NackDelay:    5 * time.Millisecond,
			NackInterval: 5 * time.Millisecond,
			MaxNacks:     5,
			HoldTime:     200 * time.Millisecond,
			FECGroup:     2,
		}
		p := newPair(t, netsim.LinkConfig{
			RateBps: 2e7, Delay: 2 * time.Millisecond, QueueLimit: 64,
			LossProb: 0.08, DupProb: 0.05, ReorderProb: 0.1,
			ReorderDelay: 4 * time.Millisecond, BitErrorRate: 5e-7,
		}, cfg, seed)

		delivered := map[uint64]int{}
		lost := map[uint64]int{}
		var frontier uint64
		check := func() {
			if s := p.rcv.Settled(); s < frontier {
				t.Fatalf("seed %d: settled regressed %d -> %d", seed, frontier, s)
			} else {
				frontier = s
			}
		}
		p.rcv.OnADU = func(adu ADU) { delivered[adu.Name]++; check() }
		p.rcv.OnLost = func(name uint64) { lost[name]++; check() }

		const n = 60
		for i := 0; i < n; i++ {
			if _, err := p.snd.Send(uint64(i), xcode.SyntaxRaw, payload(1500, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		p.sched.Run()

		if p.rcv.Settled() != n {
			t.Fatalf("seed %d: settled = %d, want %d", seed, p.rcv.Settled(), n)
		}
		for i := uint64(0); i < n; i++ {
			d, l := delivered[i], lost[i]
			if d+l != 1 {
				t.Errorf("seed %d: name %d accounted %d times (delivered %d, lost %d)",
					seed, i, d+l, d, l)
			}
		}
	}
}
