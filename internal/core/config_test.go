package alf

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// Validate must reject each class of nonsense with ErrConfig and a
// message naming the offending field, and both constructors must
// surface the rejection.
func TestConfigValidateRejections(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string // expected substring in the error
	}{
		{"negative rate", Config{RateBps: -1}, "RateBps"},
		{"negative MTU", Config{MTU: -10}, "MTU"},
		{"MTU equals header", Config{MTU: HeaderSize}, "MTU"},
		{"MTU below header", Config{MTU: HeaderSize - 1}, "MTU"},
		{"negative NackDelay", Config{NackDelay: -time.Millisecond}, "NackDelay"},
		{"negative NackInterval", Config{NackInterval: -1}, "NackInterval"},
		{"negative HoldTime", Config{HoldTime: -time.Second}, "HoldTime"},
		{"negative HeartbeatInterval", Config{HeartbeatInterval: -1}, "HeartbeatInterval"},
		{"negative HeartbeatMaxInterval", Config{HeartbeatMaxInterval: -1}, "HeartbeatMaxInterval"},
		{"negative ADUDeadline", Config{ADUDeadline: -1}, "ADUDeadline"},
		{"negative FeedbackInterval", Config{FeedbackInterval: -1}, "FeedbackInterval"},
		{"negative ShedBacklog", Config{ShedBacklog: -1}, "ShedBacklog"},
		{"negative MaxNacks", Config{MaxNacks: -1}, "MaxNacks"},
		{"negative MaxADU", Config{MaxADU: -1}, "MaxADU"},
		{"negative BufferLimit", Config{BufferLimit: -1}, "BufferLimit"},
		{"negative HeartbeatLimit", Config{HeartbeatLimit: -1}, "HeartbeatLimit"},
		{"negative FECGroup", Config{FECGroup: -1}, "FECGroup"},
		{"ShedLossFrac below 0", Config{ShedLossFrac: -0.1}, "ShedLossFrac"},
		{"ShedLossFrac above 1", Config{ShedLossFrac: 1.5}, "ShedLossFrac"},
		{"RecoveryFrac below 0", Config{RecoveryFrac: -0.5}, "RecoveryFrac"},
		{"RecoveryFrac above 1", Config{RecoveryFrac: 2}, "RecoveryFrac"},
		{"controller without feedback", Config{RateBps: 1e6, Controller: &AIMD{}}, "FeedbackInterval"},
		{"controller without pacing", Config{FeedbackInterval: 50 * time.Millisecond, Controller: &AIMD{}}, "RateBps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if !errors.Is(err, ErrConfig) {
				t.Fatalf("Validate() = %v, want ErrConfig", err)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("error %q does not name field %q", err, tc.field)
			}

			// Both constructors must refuse the same config.
			s := sim.NewScheduler()
			if _, err := NewSender(s, func([]byte) error { return nil }, tc.cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("NewSender accepted invalid config: %v", err)
			}
			if _, err := NewReceiver(s, nil, tc.cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("NewReceiver accepted invalid config: %v", err)
			}
		})
	}
}

// Zero values are defaults, not errors; a fully zero config and a
// sensible closed-loop config must both validate.
func TestConfigValidateAccepts(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero config", Config{}},
		{"fixed rate", Config{RateBps: 5e6}},
		{"feedback without controller", Config{FeedbackInterval: 50 * time.Millisecond}},
		{"closed loop", Config{
			RateBps:          5e6,
			FeedbackInterval: 50 * time.Millisecond,
			Controller:       &AIMD{Floor: 1e5, Ceil: 1e7},
			ShedBacklog:      100 * time.Millisecond,
			ShedLossFrac:     0.25,
			RecoveryFrac:     0.25,
		}},
		{"frac bounds inclusive", Config{ShedLossFrac: 1, RecoveryFrac: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
		})
	}
}

// MaxNacks cannot be validated against zero (zero means the default
// 10, applied by fill); the constructor path documents that contract.
func TestConfigZeroMaxNacksTakesDefault(t *testing.T) {
	s := sim.NewScheduler()
	snd, err := NewSender(s, func([]byte) error { return nil }, Config{Policy: SenderBuffered})
	if err != nil {
		t.Fatal(err)
	}
	if got := snd.Config().MaxNacks; got != 10 {
		t.Errorf("MaxNacks default = %d, want 10", got)
	}
}
