package alf

import (
	"encoding/binary"

	"repro/internal/cipher"
)

// CipherSuite selects the data-manipulation cipher stage for a stream
// (paper §3, §6). All suites share the ALF property that matters: the
// keystream is position-addressable, so fragments decipher in any order
// and every 8-byte-aligned fragment offset is its own synchronization
// point.
type CipherSuite uint8

const (
	// SuiteAuto (the zero value) keeps the legacy behavior: the
	// scramble keystream when Config.Key is non-zero, cleartext
	// otherwise. fill resolves it to one of the concrete suites.
	SuiteAuto CipherSuite = iota
	// SuiteNone sends cleartext; integrity is the Internet checksum.
	SuiteNone
	// SuiteScramble is the xorshift64* simulation keystream (see
	// internal/scramble): a stand-in cipher that exercises the fused
	// datapath shape. Integrity is still the Internet checksum.
	SuiteScramble
	// SuiteAEAD is the real construction: ChaCha20 encryption with a
	// per-fragment Poly1305 tag (RFC 8439 primitives, internal/cipher).
	// The tag replaces the Internet checksum as the integrity pass —
	// the wire fragment is header ‖ ciphertext ‖ 16-byte tag, the
	// header's ADU-checksum field is zero, and a fragment that fails
	// verification is discarded as if lost (recovery re-requests it).
	// Note the scope: this authenticates the datapath against
	// corruption and casual tampering; it is not a vetted secure
	// channel (no handshake, no key rotation, no replay window beyond
	// the ADU name space).
	SuiteAEAD
)

// String returns the suite name.
func (cs CipherSuite) String() string {
	switch cs {
	case SuiteAuto:
		return "auto"
	case SuiteNone:
		return "none"
	case SuiteScramble:
		return "scramble"
	case SuiteAEAD:
		return "aead"
	default:
		return "invalid-suite"
	}
}

// aeadTagSize is the per-fragment Poly1305 tag appended after the
// ciphertext on SuiteAEAD wire fragments.
const aeadTagSize = cipher.TagSize

// ChaCha20 block-counter domains. The payload keystream for an ADU
// starts at counter 1 (aeadOff in internal/ilp), growing upward by one
// per 64 bytes; the one-time Poly1305 tag keys live in two high ranges
// indexed by fragment offset so no counter is ever used for both
// keystream and tag-key material:
//
//	payload keystream   1 + off/64        (off < 2^33 keeps it below 2^30)
//	data fragment tags  2^30 + off/8
//	parity tags         2^31 + off/8
//
// Validate caps MaxADU at 2^33 under SuiteAEAD so the domains cannot
// collide.
const (
	tagCtrData   = 1 << 30
	tagCtrParity = 1 << 31
)

// aeadMaxADU is the largest ADU the counter-domain layout supports.
const aeadMaxADU = 1 << 33

// aeadNonce builds the per-ADU nonce: the stream id and the ADU name.
// Names are sender-assigned and sequential, so (key, nonce) pairs never
// repeat within a stream, and the stream id separates streams sharing a
// key.
func aeadNonce(stream byte, name uint64) [cipher.NonceSize]byte {
	var n [cipher.NonceSize]byte
	n[0] = stream
	binary.BigEndian.PutUint64(n[4:12], name)
	return n
}

// newTagMAC derives the fragment's one-time Poly1305 key from the
// ChaCha20 block at the given counter (RFC 8439 §2.6 shape, one key per
// fragment instead of per message) and returns a ready accumulator.
// Everything stays on the stack: the per-fragment hot path allocates
// nothing.
func newTagMAC(key *cipher.Key, nonce *[cipher.NonceSize]byte, ctr uint32) cipher.MAC {
	var otk [32]byte
	cipher.TagKey(key, nonce, ctr, &otk)
	return cipher.NewMAC(&otk)
}
