package alf

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/xcode"
)

// sample builds a RateSample whose delivery rate is rateBps over a
// 1-second interval.
func sample(rateBps float64) RateSample {
	return RateSample{Interval: time.Second, RecvBytes: int64(rateBps / 8)}
}

// TestWindowedRateModel: the paced rate is the windowed maximum of
// measured delivery rates, not the latest sample — one slow interval
// must not drag the pace down.
func TestWindowedRateModel(t *testing.T) {
	w := &WindowedRate{}
	cur := 1e6
	cur = w.OnFeedback(cur, sample(8e6))
	cur = w.OnFeedback(cur, sample(6e6))
	cur = w.OnFeedback(cur, sample(4e6))
	if cur != 8e6 {
		t.Fatalf("rate = %v, want windowed max 8e6 despite slower recent samples", cur)
	}
	// The window is finite: once the 8 Mb/s sample ages out, the
	// estimate follows the path down.
	for i := 0; i < 8; i++ {
		cur = w.OnFeedback(cur, sample(4e6))
	}
	if cur > 5.1e6 {
		t.Fatalf("rate = %v after the window turned over, want ~4e6", cur)
	}
}

// TestWindowedRateStaleHoldsThroughBlackout is the DTN contrast in
// miniature: a blackout-spanning report (huge interval, near-zero
// delivery) halves an AIMD controller but leaves the windowed model
// untouched, so transmission resumes at the pre-blackout rate.
func TestWindowedRateStaleHoldsThroughBlackout(t *testing.T) {
	w := &WindowedRate{StaleAfter: 30 * time.Second}
	cur := 1e6
	for i := 0; i < 3; i++ {
		cur = w.OnFeedback(cur, sample(8e6))
	}
	if cur != 8e6 {
		t.Fatalf("pre-blackout rate = %v, want 8e6", cur)
	}
	// 40 virtual minutes of silence, then one report describing the
	// outage: almost nothing delivered, everything apparently lost.
	blackout := RateSample{Interval: 40 * time.Minute, RecvBytes: 1000, LossFrac: 0.99}
	got := w.OnFeedback(cur, blackout)
	if got != 8e6 {
		t.Fatalf("stale report moved the model: rate = %v, want held at 8e6", got)
	}

	aimd := &AIMD{}
	if got := aimd.OnFeedback(8e6, blackout); got >= 8e6 {
		t.Fatalf("AIMD did not back off on the same report: %v", got)
	}
}

// TestWindowedRateProbeCadence: every ProbeEvery-th fresh sample pays
// the probe gain, because the model can only learn a faster path by
// offering one.
func TestWindowedRateProbeCadence(t *testing.T) {
	w := &WindowedRate{} // defaults: Gain 1.0, ProbeGain 1.25, ProbeEvery 6
	cur := 1e6
	for i := 1; i <= 5; i++ {
		cur = w.OnFeedback(cur, sample(8e6))
		if cur != 8e6 {
			t.Fatalf("fresh sample %d: rate = %v, want 8e6", i, cur)
		}
	}
	if cur = w.OnFeedback(cur, sample(8e6)); cur != 10e6 {
		t.Fatalf("6th fresh sample: rate = %v, want probe 1.25*8e6", cur)
	}
}

// TestWindowedRateClamps pins Floor/Ceil and the no-model hold.
func TestWindowedRateClamps(t *testing.T) {
	w := &WindowedRate{Ceil: 1e6}
	if got := w.OnFeedback(5e5, sample(8e6)); got != 1e6 {
		t.Fatalf("ceil: rate = %v, want 1e6", got)
	}
	w2 := &WindowedRate{}
	if got := w2.OnFeedback(5e6, sample(80)); got != 128e3 {
		t.Fatalf("floor: rate = %v, want default floor 128e3", got)
	}
	// Only stale reports so far: no model, hold the current rate.
	w3 := &WindowedRate{StaleAfter: time.Second}
	if got := w3.OnFeedback(5e6, RateSample{Interval: time.Minute, RecvBytes: 1 << 20}); got != 5e6 {
		t.Fatalf("no model: rate = %v, want current 5e6", got)
	}
	if got := w3.OnFeedback(5e6, RateSample{}); got != 5e6 {
		t.Fatalf("zero interval: rate = %v, want current 5e6", got)
	}
}

// TestValidateDTNFields covers the DTN/custody configuration checks:
// each nonsense field is rejected with ErrConfig, each sensible
// combination accepted.
func TestValidateDTNFields(t *testing.T) {
	base := func() Config {
		return Config{
			RateBps:          8e6,
			FeedbackInterval: time.Second,
		}
	}
	bad := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative PathRTT", func(c *Config) { c.PathRTT = -time.Second }},
		{"negative WindowedRate.Window", func(c *Config) {
			c.Controller = &WindowedRate{Window: -1}
		}},
		{"negative WindowedRate.StaleAfter", func(c *Config) {
			c.Controller = &WindowedRate{StaleAfter: -time.Second}
		}},
		{"StaleAfter shorter than PathRTT", func(c *Config) {
			c.PathRTT = 24 * time.Minute
			c.Controller = &WindowedRate{StaleAfter: time.Minute}
		}},
		{"custody without retention", func(c *Config) {
			c.Custody = true
			c.Policy = AppRecompute
		}},
	}
	for _, tc := range bad {
		cfg := base()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !errors.Is(err, ErrConfig) {
			t.Fatalf("%s: error %v does not wrap ErrConfig", tc.name, err)
		}
	}
	good := []struct {
		name string
		mut  func(*Config)
	}{
		{"windowed rate at DTN delay", func(c *Config) {
			c.PathRTT = 24 * time.Minute
			c.Controller = &WindowedRate{StaleAfter: time.Hour}
		}},
		{"custody with sender buffering", func(c *Config) {
			c.Custody = true
			c.Policy = SenderBuffered
		}},
	}
	for _, tc := range good {
		cfg := base()
		tc.mut(&cfg)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: rejected: %v", tc.name, err)
		}
	}
}

// TestHeartbeatBackoffNoOverflow is the 24-minute-RTT regression: with
// hour-scale intervals and a max near the int64 horizon, deep backoff
// must saturate, never wrap negative (a negative interval stalls the
// heartbeat timer forever and the stream dies silently).
func TestHeartbeatBackoffNoOverflow(t *testing.T) {
	s := sim.NewScheduler()
	snd, err := NewSender(s, func([]byte) error { return nil }, Config{
		HeartbeatInterval:    24 * time.Minute,
		HeartbeatMaxInterval: sim.Duration(math.MaxInt64),
	})
	if err != nil {
		t.Fatal(err)
	}
	for misses := 0; misses <= 600; misses += 25 {
		snd.hbMisses = misses
		for trial := 0; trial < 4; trial++ { // jitter advances per call
			iv := snd.hbInterval()
			if iv <= 0 {
				t.Fatalf("misses=%d: interval %v wrapped or zeroed", misses, iv)
			}
		}
	}
}

// TestADUDeadlineNeverWrapsToInstantExpiry: sentAt + deadline past the
// int64 horizon must read as never-due, not already-due.
func TestADUDeadlineNeverWrapsToInstantExpiry(t *testing.T) {
	s := sim.NewScheduler()
	snd, err := NewSender(s, func([]byte) error { return nil }, Config{
		ADUDeadline: sim.Duration(math.MaxInt64 - 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.After(time.Second, func() {
		if _, err := snd.Send(1, xcode.SyntaxRaw, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	})
	if err := s.RunUntil(sim.Time(0).Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	snd.onRetire() // sentAt=1s, due wraps negative: must be kept
	if got := snd.BufferedADUs(); got != 1 {
		t.Fatalf("wrapped deadline expired the ADU: %d buffered, want 1", got)
	}
	if snd.Stats.DeadlineDrops != 0 {
		t.Fatalf("DeadlineDrops = %d, want 0", snd.Stats.DeadlineDrops)
	}
}

// TestNackDueOverflow: NACK backoff at huge configured delays must
// saturate to "not yet" rather than wrap and fire on every scan.
func TestNackDueOverflow(t *testing.T) {
	now := sim.Time(0).Add(100 * time.Hour)
	last := sim.Time(0)
	huge := sim.Duration(math.MaxInt64 / 4)
	if nackDue(now, last, last, 5, huge) {
		t.Fatal("overflowed backoff fired")
	}
	// Sane DTN parameters still work: 24 min << 5 = 12.8 h.
	delay := 24 * time.Minute
	if nackDue(now, last, last, 5, delay) != true {
		t.Fatal("13h-old NACK with 12.8h backoff not due")
	}
	if nackDue(sim.Time(0).Add(time.Hour), last, last, 5, delay) {
		t.Fatal("1h-old NACK with 12.8h backoff fired early")
	}
}

// TestCustodyAckWire pins the CA frame: round trip, even length (the
// trailing checksum must stay 16-bit aligned or verification can never
// pass), and rejection of corruption.
func TestCustodyAckWire(t *testing.T) {
	ca := CustodyAck{Stream: 3, Relay: 7, Cum: 42, Names: []uint64{50, 99, 1 << 40}}
	pkt := EncodeCustody(&ca)
	if len(pkt)%2 != 0 {
		t.Fatalf("CA frame length %d is odd; checksum slot unaligned", len(pkt))
	}
	got, err := ParseCustody(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream != ca.Stream || got.Relay != ca.Relay || got.Cum != ca.Cum {
		t.Fatalf("round trip: got %+v, want %+v", got, ca)
	}
	if len(got.Names) != 3 || got.Names[0] != 50 || got.Names[1] != 99 || got.Names[2] != 1<<40 {
		t.Fatalf("names round trip: %v", got.Names)
	}
	// Empty names and zero cum: minimum frame.
	min := EncodeCustody(&CustodyAck{})
	if len(min) != custodyAckMin {
		t.Fatalf("minimum CA frame is %d bytes, want %d", len(min), custodyAckMin)
	}
	if _, err := ParseCustody(min); err != nil {
		t.Fatal(err)
	}
	// Every single-bit corruption must be rejected.
	for bit := 0; bit < len(pkt)*8; bit++ {
		mut := append([]byte(nil), pkt...)
		mut[bit/8] ^= 1 << uint(bit%8)
		if _, err := ParseCustody(mut); err == nil {
			t.Fatalf("bit-%d corruption accepted", bit)
		}
	}
	if _, err := ParseCustody(nil); err == nil {
		t.Fatal("nil packet accepted")
	}
}

// TestSenderCustodyRelease: a custody ack releases the named ADUs and
// everything below the frontier, and later NACKs for released names
// are suppressed instead of racing the relay's own recovery.
func TestSenderCustodyRelease(t *testing.T) {
	s := sim.NewScheduler()
	snd, err := NewSender(s, func([]byte) error { return nil }, Config{Custody: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Frontier 1 (releases name 0) plus name 2 out of order.
	ack := EncodeCustody(&CustodyAck{Stream: 0, Cum: 1, Names: []uint64{2}})
	if err := snd.HandleControl(ack); err != nil {
		t.Fatal(err)
	}
	if got := snd.BufferedADUs(); got != 1 {
		t.Fatalf("%d ADUs buffered after custody ack, want 1 (only name 1)", got)
	}
	if snd.Stats.CustodyAcks != 1 || snd.Stats.CustodyReleased != 2 {
		t.Fatalf("CustodyAcks=%d CustodyReleased=%d, want 1 and 2",
			snd.Stats.CustodyAcks, snd.Stats.CustodyReleased)
	}
	// NACK for the custody-released name: suppressed. For the retained
	// name: answered.
	snd.HandleControl(encodeControl(&control{Stream: 0, Nacks: []uint64{2}}))
	if snd.Stats.CustodyNacks != 1 || snd.Stats.ResentADUs != 0 {
		t.Fatalf("CustodyNacks=%d ResentADUs=%d after NACK for released name, want 1 and 0",
			snd.Stats.CustodyNacks, snd.Stats.ResentADUs)
	}
	snd.HandleControl(encodeControl(&control{Stream: 0, Nacks: []uint64{1}}))
	if snd.Stats.ResentADUs != 1 {
		t.Fatalf("ResentADUs=%d after NACK for retained name, want 1", snd.Stats.ResentADUs)
	}

	// Without the opt-in, the same ack must release nothing.
	snd2, _ := NewSender(s, func([]byte) error { return nil }, Config{})
	snd2.Send(0, xcode.SyntaxRaw, make([]byte, 100))
	snd2.HandleControl(EncodeCustody(&CustodyAck{Stream: 0, Cum: 10}))
	if got := snd2.BufferedADUs(); got != 1 {
		t.Fatalf("custody ack released retention without Config.Custody: %d buffered", got)
	}
	if snd2.Stats.CustodyAcks != 0 {
		t.Fatal("custody ack counted without Config.Custody")
	}
}
