package alf_test

import (
	"fmt"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// Example shows the minimal ALF round trip: two endpoints on a
// simulated link, three ADUs delivered with their application tags.
func Example() {
	sched := sim.NewScheduler()
	net := netsim.New(sched, 1)
	a := net.NewNode("a")
	b := net.NewNode("b")
	fwd, rev := net.NewDuplex(a, b, netsim.LinkConfig{Delay: time.Millisecond})

	snd, _ := alf.NewSender(sched, fwd.Send, alf.Config{})
	rcv, _ := alf.NewReceiver(sched, rev.Send, alf.Config{})
	a.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

	rcv.OnADU = func(adu alf.ADU) {
		fmt.Printf("ADU %d: tag=%d, %d bytes\n", adu.Name, adu.Tag, len(adu.Data))
	}

	for i := 0; i < 3; i++ {
		snd.Send(uint64(100+i), xcode.SyntaxRaw, make([]byte, 64))
	}
	sched.Run()
	// Output:
	// ADU 0: tag=100, 64 bytes
	// ADU 1: tag=101, 64 bytes
	// ADU 2: tag=102, 64 bytes
}

// ExamplePolicy demonstrates the three loss-recovery options of the
// paper's §5, selected per stream.
func ExamplePolicy() {
	for _, p := range []alf.Policy{alf.SenderBuffered, alf.AppRecompute, alf.NoRetransmit} {
		fmt.Println(p)
	}
	// Output:
	// sender-buffered
	// app-recompute
	// no-retransmit
}

// ExampleSharded drives a small flow population through the sharded
// endpoint (§7, docs/SCALING.md): flows hash over per-shard
// schedulers and trunks, workers execute the shards in parallel, and
// the merged delivery log is deterministic — the same for any worker
// count.
func ExampleSharded() {
	ep, _ := alf.NewSharded(alf.ShardedConfig{
		Shards:        2,
		Workers:       2, // execution only: results identical at any value
		Seed:          1,
		LogDeliveries: true,
		Link:          netsim.LinkConfig{RateBps: 8e6, Delay: time.Millisecond},
	})
	for id := alf.FlowID(0); id < 4; id++ {
		f, _ := ep.AddFlow(id)
		f.ScheduleSend(0, uint64(1000+id), xcode.SyntaxRaw, make([]byte, 512))
	}
	if err := ep.Run(); err != nil {
		fmt.Println(err)
	}
	for _, d := range ep.Deliveries() {
		fmt.Printf("flow %d on shard %d: ADU %d, %d bytes at %v\n",
			d.Flow, alf.ShardOf(d.Flow, 2), d.Name, d.Bytes, d.At)
	}
	// Output:
	// flow 0 on shard 0: ADU 0, 512 bytes at 1.554ms
	// flow 1 on shard 1: ADU 0, 512 bytes at 1.554ms
	// flow 2 on shard 0: ADU 0, 512 bytes at 2.108ms
	// flow 3 on shard 1: ADU 0, 512 bytes at 2.108ms
}

// ExampleSender_Send shows how the application's own naming information
// (here, a file offset) travels with each ADU as the tag.
func ExampleSender_Send() {
	sched := sim.NewScheduler()
	snd, _ := alf.NewSender(sched, func(pkt []byte) error { return nil }, alf.Config{})

	file := make([]byte, 10_000)
	const chunk = 4096
	for off := 0; off < len(file); off += chunk {
		end := off + chunk
		if end > len(file) {
			end = len(file)
		}
		name, _ := snd.Send(uint64(off), xcode.SyntaxRaw, file[off:end])
		fmt.Printf("ADU %d carries file[%d:%d]\n", name, off, end)
	}
	// Output:
	// ADU 0 carries file[0:4096]
	// ADU 1 carries file[4096:8192]
	// ADU 2 carries file[8192:10000]
}
