package alf

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// fecRig wires a sender/receiver pair with a programmable drop filter
// on the data direction.
type fecRig struct {
	sched *sim.Scheduler
	snd   *Sender
	rcv   *Receiver
	adus  []ADU
	drop  func(h *header) bool
}

func newFECRig(t *testing.T, cfg Config, linkCfg netsim.LinkConfig, seed int64) *fecRig {
	t.Helper()
	s := sim.NewScheduler()
	n := netsim.New(s, seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, linkCfg)

	r := &fecRig{sched: s}
	send := func(pkt []byte) error {
		if r.drop != nil && PacketType(pkt) == 1 {
			if h, err := parseHeader(pkt); err == nil && r.drop(&h) {
				return nil
			}
		}
		return ab.Send(pkt)
	}
	var err error
	r.snd, err = NewSender(s, send, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.rcv, err = NewReceiver(s, ba.Send, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.SetHandler(func(p *netsim.Packet) { r.snd.HandleControl(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { r.rcv.HandlePacket(p.Payload) })
	r.rcv.OnADU = func(adu ADU) { r.adus = append(r.adus, adu) }
	return r
}

func TestFECParityEmitted(t *testing.T) {
	cfg := Config{FECGroup: 4, MTU: 256 + HeaderSize}
	r := newFECRig(t, cfg, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	// 10 fragments of 256 -> groups of 4: parities at frag 0-3, 4-7, 8-9.
	r.snd.Send(0, xcode.SyntaxRaw, payload(2560, 1))
	r.sched.Run()
	if r.snd.Stats.ParityFrags != 3 {
		t.Errorf("parity fragments = %d, want 3", r.snd.Stats.ParityFrags)
	}
	// The last parity trails the data that completed the ADU, so it
	// arrives "late" for an already-settled name.
	if r.rcv.Stats.ParityFrags != 2 || r.rcv.Stats.LateFragments != 1 {
		t.Errorf("receiver parity fragments = %d (late %d), want 2 accepted + 1 late",
			r.rcv.Stats.ParityFrags, r.rcv.Stats.LateFragments)
	}
	if len(r.adus) != 1 || !bytes.Equal(r.adus[0].Data, payload(2560, 1)) {
		t.Fatal("clean FEC transfer corrupted")
	}
	if r.rcv.Stats.FECRecovered != 0 {
		t.Errorf("FEC recovered %d on a clean link", r.rcv.Stats.FECRecovered)
	}
}

func TestFECRecoversSingleLossWithoutRetransmission(t *testing.T) {
	cfg := Config{
		FECGroup: 4, MTU: 256 + HeaderSize,
		NackDelay: 5 * time.Millisecond, NackInterval: 5 * time.Millisecond,
	}
	r := newFECRig(t, cfg, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	// Drop the second data fragment (offset 256) of ADU 0, once.
	dropped := false
	r.drop = func(h *header) bool {
		if !dropped && h.Flags&flagParity == 0 && h.Name == 0 && h.FragOff == 256 {
			dropped = true
			return true
		}
		return false
	}
	data := payload(2560, 7)
	r.snd.Send(0, xcode.SyntaxRaw, data)
	r.sched.Run()

	if !dropped {
		t.Fatal("drop filter never matched")
	}
	if len(r.adus) != 1 || !bytes.Equal(r.adus[0].Data, data) {
		t.Fatal("ADU not reconstructed correctly")
	}
	if r.rcv.Stats.FECRecovered != 1 {
		t.Errorf("FECRecovered = %d, want 1", r.rcv.Stats.FECRecovered)
	}
	if r.snd.Stats.ResentADUs != 0 {
		t.Errorf("retransmission happened (%d) despite FEC recovery", r.snd.Stats.ResentADUs)
	}
	if r.rcv.Stats.NacksSent != 0 {
		t.Errorf("NACKs sent (%d) despite FEC recovery", r.rcv.Stats.NacksSent)
	}
}

func TestFECRecoversLastShortFragment(t *testing.T) {
	cfg := Config{FECGroup: 4, MTU: 256 + HeaderSize,
		NackDelay: 5 * time.Millisecond, NackInterval: 5 * time.Millisecond}
	r := newFECRig(t, cfg, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	// ADU of 1000 bytes -> fragments 256,256,256,232; drop the short one.
	dropped := false
	r.drop = func(h *header) bool {
		if !dropped && h.Flags&flagParity == 0 && h.FragOff == 768 {
			dropped = true
			return true
		}
		return false
	}
	data := payload(1000, 9)
	r.snd.Send(0, xcode.SyntaxRaw, data)
	r.sched.Run()
	if len(r.adus) != 1 || !bytes.Equal(r.adus[0].Data, data) {
		t.Fatal("short-tail fragment not reconstructed")
	}
	if r.rcv.Stats.FECRecovered != 1 {
		t.Errorf("FECRecovered = %d", r.rcv.Stats.FECRecovered)
	}
}

func TestFECWithEncryption(t *testing.T) {
	cfg := Config{
		FECGroup: 2, MTU: 512 + HeaderSize, Key: 0xABCD,
		NackDelay: 5 * time.Millisecond, NackInterval: 5 * time.Millisecond,
	}
	r := newFECRig(t, cfg, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	dropped := 0
	r.drop = func(h *header) bool {
		// Drop one data fragment per ADU (the first of group 2).
		if h.Flags&flagParity == 0 && h.FragOff == 1024 && dropped < 5 {
			dropped++
			return true
		}
		return false
	}
	for i := 0; i < 5; i++ {
		r.snd.Send(uint64(i), xcode.SyntaxRaw, payload(2048, byte(i)))
	}
	r.sched.Run()
	if len(r.adus) != 5 {
		t.Fatalf("delivered %d of 5", len(r.adus))
	}
	for _, a := range r.adus {
		if !bytes.Equal(a.Data, payload(2048, byte(a.Name))) {
			t.Fatalf("encrypted ADU %d reconstructed wrong", a.Name)
		}
	}
	if r.rcv.Stats.FECRecovered != 5 {
		t.Errorf("FECRecovered = %d, want 5", r.rcv.Stats.FECRecovered)
	}
	if r.snd.Stats.ResentADUs != 0 {
		t.Error("resends despite FEC")
	}
}

func TestFECDoubleGroupLossFallsBackToNack(t *testing.T) {
	cfg := Config{
		FECGroup: 4, MTU: 256 + HeaderSize,
		NackDelay: 5 * time.Millisecond, NackInterval: 5 * time.Millisecond,
	}
	r := newFECRig(t, cfg, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	drops := 0
	r.drop = func(h *header) bool {
		// Lose two data fragments of the same group, first time around.
		if h.Flags&flagParity == 0 && (h.FragOff == 0 || h.FragOff == 256) && drops < 2 {
			drops++
			return true
		}
		return false
	}
	data := payload(2048, 5)
	r.snd.Send(0, xcode.SyntaxRaw, data)
	r.sched.Run()
	if len(r.adus) != 1 || !bytes.Equal(r.adus[0].Data, data) {
		t.Fatal("double-loss ADU not recovered")
	}
	if r.snd.Stats.ResentADUs == 0 {
		t.Error("expected NACK retransmission for a double loss")
	}
}

func TestFECParityLossHarmless(t *testing.T) {
	cfg := Config{FECGroup: 4, MTU: 256 + HeaderSize}
	r := newFECRig(t, cfg, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	r.drop = func(h *header) bool { return h.Flags&flagParity != 0 }
	data := payload(4096, 3)
	r.snd.Send(0, xcode.SyntaxRaw, data)
	r.sched.Run()
	if len(r.adus) != 1 || !bytes.Equal(r.adus[0].Data, data) {
		t.Fatal("transfer failed when parity fragments were lost")
	}
}

func TestFECDuplicateParityIgnored(t *testing.T) {
	s := sim.NewScheduler()
	rcfg := Config{FECGroup: 4, MTU: 256 + HeaderSize}
	rcv, err := NewReceiver(s, nil, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	var pkts [][]byte
	snd, err := NewSender(s, func(p []byte) error {
		pkts = append(pkts, append([]byte(nil), p...))
		return nil
	}, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	snd.Send(0, xcode.SyntaxRaw, payload(1024, 2))
	delivered := 0
	rcv.OnADU = func(ADU) { delivered++ }
	for _, p := range pkts {
		rcv.HandlePacket(p)
		rcv.HandlePacket(p) // replay everything
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if rcv.Stats.DupFragments == 0 {
		t.Error("duplicates not counted")
	}
}

func TestFECUnderRandomLoss(t *testing.T) {
	// End-to-end: FEC should cut retransmissions well below the no-FEC
	// baseline at the same loss rate and seed.
	run := func(fecGroup int) (resends int64, recovered int64) {
		cfg := Config{
			FECGroup: fecGroup, MTU: 512 + HeaderSize,
			NackDelay: 5 * time.Millisecond, NackInterval: 5 * time.Millisecond,
		}
		r := newFECRig(t, cfg, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.03}, 77)
		const n = 100
		for i := 0; i < n; i++ {
			r.snd.Send(uint64(i), xcode.SyntaxRaw, payload(4096, byte(i)))
		}
		r.sched.Run()
		if len(r.adus) != n {
			t.Fatalf("fec=%d: delivered %d of %d", fecGroup, len(r.adus), n)
		}
		for _, a := range r.adus {
			if !bytes.Equal(a.Data, payload(4096, byte(a.Name))) {
				t.Fatalf("fec=%d: ADU %d corrupt", fecGroup, a.Name)
			}
		}
		return r.snd.Stats.ResentADUs, r.rcv.Stats.FECRecovered
	}
	noFECResends, _ := run(0)
	fecResends, recovered := run(4)
	if recovered == 0 {
		t.Fatal("FEC never recovered anything at 3% loss")
	}
	if fecResends >= noFECResends {
		t.Errorf("FEC resends (%d) not below baseline (%d); recovered=%d",
			fecResends, noFECResends, recovered)
	}
}

func TestFECNoRetransmitVideoResidualLoss(t *testing.T) {
	// The NoRetransmit + FEC combination: residual ADU loss must drop
	// versus plain NoRetransmit.
	run := func(fecGroup int) (lost int) {
		cfg := Config{
			Policy: NoRetransmit, FECGroup: fecGroup,
			MTU:      512 + HeaderSize,
			HoldTime: 100 * time.Millisecond, NackInterval: 10 * time.Millisecond,
		}
		r := newFECRig(t, cfg, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.05}, 99)
		r.rcv.OnLost = func(uint64) { lost++ }
		for i := 0; i < 200; i++ {
			r.snd.Send(uint64(i), xcode.SyntaxRaw, payload(2048, byte(i)))
		}
		r.sched.Run()
		return lost
	}
	plain := run(0)
	withFEC := run(2)
	if plain == 0 {
		t.Fatal("no baseline losses at 5%; test is vacuous")
	}
	if withFEC >= plain {
		t.Errorf("FEC residual loss %d not below baseline %d", withFEC, plain)
	}
}

// BenchmarkHandlePacketDataPath measures the full ALF stage-one receive
// cost for one in-order 1 KB fragment: header verify, demux, fused
// place+checksum.
func BenchmarkHandlePacketDataPath(b *testing.B) {
	s := sim.NewScheduler()
	var pkts [][]byte
	const pool = 512
	snd, _ := NewSender(s, func(p []byte) error {
		if PacketType(p) == 1 {
			pkts = append(pkts, append([]byte(nil), p...))
		}
		return nil
	}, Config{MTU: 1024 + HeaderSize})
	for i := 0; i < pool; i++ {
		snd.Send(uint64(i), xcode.SyntaxRaw, make([]byte, 1024))
	}
	newRcv := func() *Receiver {
		r, _ := NewReceiver(s, nil, Config{MTU: 1024 + HeaderSize})
		r.OnADU = func(ADU) {}
		return r
	}
	rcv := newRcv()
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%pool == 0 && i > 0 {
			b.StopTimer()
			rcv = newRcv()
			b.StartTimer()
		}
		rcv.HandlePacket(pkts[i%pool])
	}
}

// BenchmarkHandlePacketEncrypted adds the fused decipher to the same
// path: the marginal cost of the extra manipulation inside one loop.
func BenchmarkHandlePacketEncrypted(b *testing.B) {
	s := sim.NewScheduler()
	var pkts [][]byte
	const pool = 512
	cfg := Config{MTU: 1024 + HeaderSize, Key: 99}
	snd, _ := NewSender(s, func(p []byte) error {
		if PacketType(p) == 1 {
			pkts = append(pkts, append([]byte(nil), p...))
		}
		return nil
	}, cfg)
	for i := 0; i < pool; i++ {
		snd.Send(uint64(i), xcode.SyntaxRaw, make([]byte, 1024))
	}
	newRcv := func() *Receiver {
		r, _ := NewReceiver(s, nil, cfg)
		r.OnADU = func(ADU) {}
		return r
	}
	rcv := newRcv()
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%pool == 0 && i > 0 {
			b.StopTimer()
			rcv = newRcv()
			b.StartTimer()
		}
		rcv.HandlePacket(pkts[i%pool])
	}
}
