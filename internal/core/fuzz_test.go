package alf

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/xcode"
)

// TestHandlePacketNeverPanics throws random bytes at the receiver: a
// hostile or confused peer must never crash the process.
func TestHandlePacketNeverPanics(t *testing.T) {
	s := sim.NewScheduler()
	rcv, err := NewReceiver(s, func([]byte) error { return nil }, Config{FECGroup: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := func(pkt []byte) bool {
		rcv.HandlePacket(pkt) // error returns are fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestHandlePacketMutatedHeaders flips bits in real packets: every
// mutation must be either dropped (checksum) or handled without
// corruption of delivered data.
func TestHandlePacketMutatedHeaders(t *testing.T) {
	s := sim.NewScheduler()
	var pkts [][]byte
	snd, _ := NewSender(s, func(p []byte) error {
		pkts = append(pkts, append([]byte(nil), p...))
		return nil
	}, Config{MTU: 128 + HeaderSize, FECGroup: 2})
	snd.Send(7, xcode.SyntaxRaw, payload(500, 3))

	for _, pkt := range pkts {
		for bit := 0; bit < len(pkt)*8; bit += 7 {
			rcv, _ := NewReceiver(s, nil, Config{MTU: 128 + HeaderSize, FECGroup: 2})
			delivered := false
			rcv.OnADU = func(adu ADU) { delivered = true }
			mut := append([]byte(nil), pkt...)
			mut[bit/8] ^= 1 << uint(bit%8)
			rcv.HandlePacket(mut) // must not panic
			// A single mutated fragment can never complete a multi-
			// fragment ADU.
			if delivered {
				t.Fatalf("single mutated fragment delivered an ADU (bit %d)", bit)
			}
		}
	}
}

// TestHandleControlNeverPanics fuzzes the sender's control input.
func TestHandleControlNeverPanics(t *testing.T) {
	s := sim.NewScheduler()
	snd, err := NewSender(s, func([]byte) error { return nil }, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snd.Send(0, xcode.SyntaxRaw, payload(100, 1))
	f := func(pkt []byte) bool {
		snd.HandleControl(pkt)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestForgedControlCannotInflateState: random valid-checksum control
// messages must not grow sender memory (NACKs for unknown names are
// counted, not serviced).
func TestForgedControlCannotInflateState(t *testing.T) {
	s := sim.NewScheduler()
	snd, _ := NewSender(s, func([]byte) error { return nil }, Config{})
	snd.Send(0, xcode.SyntaxRaw, payload(100, 1))
	before := snd.BufferedBytes()
	// A forged NACK for a name far in the future.
	forged := encodeControl(&control{Stream: 0, Cum: 0, Nacks: []uint64{999999}})
	if err := snd.HandleControl(forged); err != nil {
		t.Fatal(err)
	}
	if snd.Stats.UnfilledNacks != 1 {
		t.Errorf("unfilled nacks = %d", snd.Stats.UnfilledNacks)
	}
	if snd.BufferedBytes() != before {
		t.Error("forged control changed retention")
	}
	// A forged cum beyond everything releases the buffer — that is the
	// protocol's trust model (control channel is trusted); verify it is
	// at least bounded and non-panicking.
	forged2 := encodeControl(&control{Stream: 0, Cum: 1 << 60})
	snd.HandleControl(forged2)
	if snd.BufferedBytes() != 0 {
		t.Error("cum release failed")
	}
}

// TestReceiverMemoryBounded: a sender that claims huge ADUs must be
// refused before allocation.
func TestReceiverMemoryBounded(t *testing.T) {
	s := sim.NewScheduler()
	rcv, _ := NewReceiver(s, nil, Config{MaxADU: 1 << 16})
	h := header{
		Stream: 0, Name: 0, Tag: 0, Syntax: xcode.SyntaxRaw,
		TotalLen: 1 << 30, FragOff: 0, FragLen: 8,
	}
	pkt := make([]byte, HeaderSize+8)
	putHeader(pkt, &h)
	if err := rcv.HandlePacket(pkt); err == nil {
		t.Error("1 GiB ADU claim accepted against a 64 KiB limit")
	}
	if rcv.Stats.TooLarge != 1 {
		t.Errorf("TooLarge = %d", rcv.Stats.TooLarge)
	}
	if rcv.Pending() != 0 {
		t.Error("oversize claim allocated state")
	}
}

// TestInconsistentFragmentsRejected: fragments that disagree about the
// ADU's shape must not corrupt reassembly.
func TestInconsistentFragmentsRejected(t *testing.T) {
	s := sim.NewScheduler()
	rcv, _ := NewReceiver(s, nil, Config{})
	mk := func(total, off, n int, tag uint64) []byte {
		h := header{Stream: 0, Name: 5, Tag: tag, Syntax: xcode.SyntaxRaw,
			TotalLen: total, FragOff: off, FragLen: n}
		pkt := make([]byte, HeaderSize+n)
		putHeader(pkt, &h)
		return pkt
	}
	if err := rcv.HandlePacket(mk(1000, 0, 100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := rcv.HandlePacket(mk(2000, 104, 100, 1)); err == nil {
		t.Error("total-length contradiction accepted")
	}
	if err := rcv.HandlePacket(mk(1000, 104, 100, 2)); err == nil {
		t.Error("tag contradiction accepted")
	}
	if rcv.Stats.Inconsistent != 2 {
		t.Errorf("Inconsistent = %d", rcv.Stats.Inconsistent)
	}
}

func TestNameWindowRejectsImplausibleNames(t *testing.T) {
	// A corrupted header that survives the 16-bit checksum (1 in ~65k)
	// could claim any name; the receiver must refuse names implausibly
	// far ahead rather than record a gigantic gap.
	s := sim.NewScheduler()
	rcv, _ := NewReceiver(s, nil, Config{})
	h := header{
		Stream: 0, Name: 1 << 42, Tag: 0, Syntax: xcode.SyntaxRaw,
		TotalLen: 8, FragOff: 0, FragLen: 8,
	}
	pkt := make([]byte, HeaderSize+8)
	putHeader(pkt, &h)
	if err := rcv.HandlePacket(pkt); err == nil {
		t.Fatal("implausible name accepted")
	}
	if rcv.Stats.HeaderDrops != 1 {
		t.Errorf("HeaderDrops = %d", rcv.Stats.HeaderDrops)
	}
	if rcv.Pending() != 0 {
		t.Error("state created for implausible name")
	}
	// Same for heartbeats.
	if err := rcv.HandlePacket(encodeHeartbeat(0, 1<<42)); err == nil {
		t.Fatal("implausible heartbeat extent accepted")
	}
}

// corpusPackets captures one real wire exchange as fuzz seeds: data
// fragments, a heartbeat, and a control message.
func corpusPackets() [][]byte {
	s := sim.NewScheduler()
	var pkts [][]byte
	snd, _ := NewSender(s, func(p []byte) error {
		pkts = append(pkts, append([]byte(nil), p...))
		return nil
	}, Config{MTU: 128 + HeaderSize, FECGroup: 2})
	snd.Send(3, xcode.SyntaxRaw, payload(300, 9))
	pkts = append(pkts,
		encodeHeartbeat(0, 4),
		encodeControl(&control{Stream: 0, Cum: 2, Nacks: []uint64{2, 3}}))
	return pkts
}

// FuzzHandlePacket is the native-fuzzer version of the quick checks
// above: arbitrary bytes into the receiver's data path must never
// panic, never allocate unbounded state, and never deliver an ADU the
// checksum did not vouch for.
func FuzzHandlePacket(f *testing.F) {
	for _, pkt := range corpusPackets() {
		f.Add(pkt)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, pkt []byte) {
		s := sim.NewScheduler()
		rcv, err := NewReceiver(s, func([]byte) error { return nil },
			Config{MaxADU: 1 << 16, FECGroup: 4})
		if err != nil {
			t.Fatal(err)
		}
		rcv.OnADU = func(adu ADU) {
			if len(adu.Data) > 1<<16 {
				t.Fatalf("delivered %d B past MaxADU", len(adu.Data))
			}
		}
		rcv.HandlePacket(pkt) // errors fine, panics not
		rcv.HandlePacket(pkt) // duplicates must be harmless too
		if rcv.Pending() > 2 {
			t.Fatalf("one packet created %d pending ADUs", rcv.Pending())
		}
	})
}

// FuzzHandleControl: arbitrary bytes into the sender's control path
// must never panic and never grow retention.
func FuzzHandleControl(f *testing.F) {
	for _, pkt := range corpusPackets() {
		f.Add(pkt)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, pkt []byte) {
		s := sim.NewScheduler()
		snd, err := NewSender(s, func([]byte) error { return nil }, Config{})
		if err != nil {
			t.Fatal(err)
		}
		snd.Send(0, xcode.SyntaxRaw, payload(100, 1))
		before := snd.BufferedBytes()
		snd.HandleControl(pkt)
		if snd.BufferedBytes() > before {
			t.Fatalf("control input grew retention %d -> %d", before, snd.BufferedBytes())
		}
	})
}

// FuzzHandleCustody: arbitrary bytes into a custody-enabled sender
// must never panic, and custody acks can only shrink retention — a
// forged or corrupt frame must never grow state or resurrect a
// released ADU.
func FuzzHandleCustody(f *testing.F) {
	f.Add(EncodeCustody(&CustodyAck{Stream: 0, Cum: 1, Names: []uint64{1}}))
	f.Add(EncodeCustody(&CustodyAck{Stream: 0, Relay: 3, Cum: 0, Names: []uint64{0, 2, 1 << 40}}))
	f.Add(EncodeCustody(&CustodyAck{Stream: 9, Cum: 5}))
	f.Add([]byte{5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, pkt []byte) {
		s := sim.NewScheduler()
		snd, err := NewSender(s, func([]byte) error { return nil }, Config{Custody: true})
		if err != nil {
			t.Fatal(err)
		}
		snd.Send(0, xcode.SyntaxRaw, payload(100, 1))
		snd.Send(1, xcode.SyntaxRaw, payload(100, 2))
		before := snd.BufferedBytes()
		snd.HandleControl(pkt)
		after := snd.BufferedBytes()
		if after > before {
			t.Fatalf("custody input grew retention %d -> %d", before, after)
		}
		if released := snd.Stats.CustodyReleased; released > 0 && after == before {
			t.Fatalf("%d releases recorded but retention unchanged", released)
		}
		// Released custody stays released: replay must not panic or
		// double-release.
		snd.HandleControl(pkt)
		if snd.BufferedBytes() > after {
			t.Fatalf("replay grew retention %d -> %d", after, snd.BufferedBytes())
		}
	})
}
