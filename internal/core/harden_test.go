package alf

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// TestADUDeadlineShedsRetentionDuringBlackout: with both directions of
// the path down, a SenderBuffered stream must not retain stale ADUs
// past the configured give-up deadline.
func TestADUDeadlineShedsRetentionDuringBlackout(t *testing.T) {
	cfg := Config{
		ADUDeadline:       100 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
	}
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, cfg, 3)
	p.ab.SetDown(true)
	p.ba.SetDown(true)
	var expired []uint64
	p.snd.OnExpire = func(name uint64) { expired = append(expired, name) }
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := p.snd.Send(uint64(i), xcode.SyntaxRaw, payload(600, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if p.snd.BufferedADUs() != n {
		t.Fatalf("buffered = %d before deadline", p.snd.BufferedADUs())
	}
	p.sched.RunUntil(sim.Time(0).Add(time.Second))
	if p.snd.BufferedADUs() != 0 || p.snd.BufferedBytes() != 0 {
		t.Errorf("retention not shed: %d ADUs, %d bytes",
			p.snd.BufferedADUs(), p.snd.BufferedBytes())
	}
	if p.snd.Stats.DeadlineDrops != n || len(expired) != n {
		t.Errorf("deadline drops = %d, OnExpire calls = %d, want %d",
			p.snd.Stats.DeadlineDrops, len(expired), n)
	}
	if len(p.adus) != 0 {
		t.Error("delivery through a down link")
	}
}

// TestADUDeadlineDoesNotShedConfirmedTraffic: on a healthy path the
// deadline must never fire — cumulative acks release retention first.
func TestADUDeadlineDoesNotShedConfirmedTraffic(t *testing.T) {
	cfg := Config{
		ADUDeadline:  time.Second,
		NackInterval: 5 * time.Millisecond,
	}
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, cfg, 4)
	const n = 20
	for i := 0; i < n; i++ {
		p.snd.Send(uint64(i), xcode.SyntaxRaw, payload(600, byte(i)))
	}
	p.sched.Run()
	if len(p.adus) != n {
		t.Fatalf("delivered %d of %d", len(p.adus), n)
	}
	if p.snd.Stats.DeadlineDrops != 0 {
		t.Errorf("deadline drops = %d on a healthy path", p.snd.Stats.DeadlineDrops)
	}
	if p.snd.BufferedADUs() != 0 {
		t.Errorf("retention = %d after full confirmation", p.snd.BufferedADUs())
	}
}

// TestExpiredADUNacksGoUnfilled: once the deadline sheds an ADU, later
// NACKs for it are counted unfilled and the receiver eventually gives
// the ADU up — exactly once, on each side of the accounting.
func TestExpiredADUNacksGoUnfilled(t *testing.T) {
	cfg := Config{
		ADUDeadline:  50 * time.Millisecond,
		NackDelay:    5 * time.Millisecond,
		NackInterval: 5 * time.Millisecond,
		HoldTime:     200 * time.Millisecond,
		MaxNacks:     3,
	}
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, cfg, 5)
	// Cut only the data direction: control (NACKs) still reaches the
	// sender, but nothing the sender emits arrives.
	p.ab.SetDown(true)
	p.snd.Send(0, xcode.SyntaxRaw, payload(600, 1))
	// The receiver learns of ADU 0 from a heartbeat once the link heals,
	// after the retention deadline has already fired.
	p.sched.RunUntil(sim.Time(0).Add(100 * time.Millisecond))
	if p.snd.BufferedADUs() != 0 {
		t.Fatal("deadline did not shed during the outage")
	}
	p.ab.SetDown(false)
	p.sched.RunUntil(sim.Time(0).Add(2 * time.Second))
	if p.snd.Stats.UnfilledNacks == 0 {
		t.Error("no unfilled NACKs recorded for the shed ADU")
	}
	if len(p.lost) != 1 || p.lost[0] != 0 {
		t.Errorf("lost = %v, want exactly [0]", p.lost)
	}
	if len(p.adus) != 0 {
		t.Error("shed ADU delivered")
	}
}

// TestHeartbeatBackoffCapsProbeRate: during sustained silence the
// heartbeat interval must decay toward HeartbeatMaxInterval instead of
// probing at the data-plane cadence forever.
func TestHeartbeatBackoffCapsProbeRate(t *testing.T) {
	s := sim.NewScheduler()
	var times []sim.Time
	snd, err := NewSender(s, func(p []byte) error {
		if PacketType(p) == 3 {
			times = append(times, s.Now())
		}
		return nil
	}, Config{
		HeartbeatInterval:    10 * time.Millisecond,
		HeartbeatMaxInterval: 160 * time.Millisecond,
		HeartbeatLimit:       1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	snd.Send(0, xcode.SyntaxRaw, payload(100, 1))
	s.RunUntil(sim.Time(0).Add(10 * time.Second))

	// Unbacked-off, 10 s / 10 ms ≈ 1000 heartbeats. With doubling every
	// two misses up to 160 ms (±25% jitter) the steady state is ≥120 ms
	// per probe, so well under 150 total.
	if len(times) < 10 || len(times) > 150 {
		t.Fatalf("heartbeats = %d, want backed-off count in [10,150]", len(times))
	}
	// Late-phase gaps sit in the jittered cap window [0.75x, 1.25x].
	last := times[len(times)-5:]
	for i := 1; i < len(last); i++ {
		gap := last[i].Sub(last[i-1])
		if gap < 120*time.Millisecond || gap > 200*time.Millisecond {
			t.Errorf("late heartbeat gap %v outside jittered cap window", gap)
		}
	}
	// Jitter: the late gaps must not all be identical.
	allEqual := true
	for i := 2; i < len(last); i++ {
		if last[i].Sub(last[i-1]) != last[1].Sub(last[0]) {
			allEqual = false
		}
	}
	if allEqual {
		t.Error("heartbeat gaps show no jitter")
	}
}

// TestHeartbeatLimitStillSilencesDeadPath: the backoff must not defeat
// the hard heartbeat cap.
func TestHeartbeatLimitStillSilencesDeadPath(t *testing.T) {
	s := sim.NewScheduler()
	sent := 0
	snd, err := NewSender(s, func(p []byte) error {
		if PacketType(p) == 3 {
			sent++
		}
		return nil
	}, Config{HeartbeatInterval: 10 * time.Millisecond, HeartbeatLimit: 5})
	if err != nil {
		t.Fatal(err)
	}
	snd.Send(0, xcode.SyntaxRaw, payload(100, 1))
	s.Run()
	if sent != 5 {
		t.Errorf("heartbeats = %d, want exactly HeartbeatLimit=5", sent)
	}
}
