package alf

import (
	"fmt"

	"repro/internal/metrics"
)

// This file wires both stream endpoints into the unified metrics
// registry (internal/metrics). The pre-existing SenderStats and
// ReceiverStats structs remain the storage for event counts — tests
// and examples read them directly — and are exposed through the
// registry as func-backed series, so the struct and the registry can
// never disagree. Signals the structs cannot carry (distributions,
// instantaneous depths) are native registry instruments. With a nil
// registry every instrument below is nil and each observation costs
// one nil-check branch (see internal/metrics).

// senderMetrics holds the sender's native instruments.
type senderMetrics struct {
	// aduBytes is the distribution of ADU payload sizes submitted by
	// the application — the paper's §5 "ADU lengths should be
	// reasonably bounded" made measurable.
	aduBytes *metrics.Histogram
	// ilpBytes counts payload bytes pushed through the fused
	// encrypt/copy/checksum pass — the sender's share of the §4
	// "data manipulation" cost, in bytes touched.
	ilpBytes *metrics.Counter
}

// bindSenderMetrics registers the sender's series, labeled by stream.
func bindSenderMetrics(r *metrics.Registry, s *Sender) senderMetrics {
	lb := fmt.Sprintf("stream=%d", s.cfg.StreamID)
	st := &s.Stats
	for _, c := range []struct {
		name string
		fn   func() int64
	}{
		{"core.send.adus", func() int64 { return st.ADUs }},
		{"core.send.fragments", func() int64 { return st.Fragments }},
		{"core.send.frag_bytes", func() int64 { return st.Bytes }},
		{"core.send.resent_adus", func() int64 { return st.ResentADUs }},
		{"core.send.recompute_adus", func() int64 { return st.RecomputeADUs }},
		{"core.send.resent_frags", func() int64 { return st.ResentFrags }},
		{"core.send.unfilled_nacks", func() int64 { return st.UnfilledNacks }},
		{"core.send.released", func() int64 { return st.Released }},
		{"core.send.deadline_drops", func() int64 { return st.DeadlineDrops }},
		{"core.send.ctrl_received", func() int64 { return st.CtrlReceived }},
		{"core.send.ctrl_dropped", func() int64 { return st.CtrlDropped }},
		{"core.send.heartbeats", func() int64 { return st.Heartbeats }},
		{"core.send.parity_frags", func() int64 { return st.ParityFrags }},
		{"core.send.shed_adus", func() int64 { return st.ShedADUs }},
		{"core.send.feedback_rx", func() int64 { return st.FeedbackRecv }},
		{"core.send.rate_changes", func() int64 { return st.RateChanges }},
		{"core.send.retx_suppressed", func() int64 { return st.RetxSuppressed }},
		{"core.send.wire_bytes", func() int64 { return st.WireBytes }},
		{"core.send.custody_acks", func() int64 { return st.CustodyAcks }},
		{"core.send.custody_released", func() int64 { return st.CustodyReleased }},
		{"core.send.custody_nacks", func() int64 { return st.CustodyNacks }},
	} {
		r.CounterFunc(c.name, c.fn, lb)
	}
	r.GaugeFunc("core.send.buffered_bytes", func() int64 { return int64(s.bufBytes) }, lb)
	r.GaugeFunc("core.send.buffered_adus", func() int64 { return int64(len(s.buffered)) }, lb)
	r.GaugeFunc("core.send.rate_bps", func() int64 { return int64(s.cfg.RateBps) }, lb)
	// The un-jittered backoff level (hbBackoff, not hbInterval): the
	// gauge must not step the jitter PRNG or sampling would change the
	// run. The telemetry plane's backoff-saturation detector watches
	// this climb to HeartbeatMaxInterval during blackouts.
	r.GaugeFunc("core.send.heartbeat_interval_ns", func() int64 { return int64(s.hbBackoff()) }, lb)
	return senderMetrics{
		aduBytes: r.Histogram("core.send.adu_bytes", lb),
		ilpBytes: r.Counter("core.send.ilp_pass_bytes", lb),
	}
}

// recvMetrics holds the receiver's native instruments.
type recvMetrics struct {
	// aduLatency is the virtual-time distribution from an ADU's first
	// fragment arriving to its verified delivery — reassembly plus any
	// recovery rounds, and exactly the latency ALF's out-of-order
	// delivery keeps independent per ADU (§5).
	aduLatency *metrics.Histogram
	// aduBytes is the distribution of delivered ADU sizes.
	aduBytes *metrics.Histogram
	// ilpBytes counts payload bytes through the fused stage-one pass
	// (place + decrypt + checksum) — the receiver's §4 manipulation
	// cost in bytes touched.
	ilpBytes *metrics.Counter
}

// bindReceiverMetrics registers the receiver's series, labeled by
// stream.
func bindReceiverMetrics(r *metrics.Registry, rc *Receiver) recvMetrics {
	lb := fmt.Sprintf("stream=%d", rc.cfg.StreamID)
	st := &rc.Stats
	for _, c := range []struct {
		name string
		fn   func() int64
	}{
		{"core.recv.fragments", func() int64 { return st.Fragments }},
		{"core.recv.frag_bytes", func() int64 { return st.FragmentBytes }},
		{"core.recv.header_drops", func() int64 { return st.HeaderDrops }},
		{"core.recv.dup_fragments", func() int64 { return st.DupFragments }},
		{"core.recv.late_fragments", func() int64 { return st.LateFragments }},
		{"core.recv.inconsistent", func() int64 { return st.Inconsistent }},
		{"core.recv.too_large", func() int64 { return st.TooLarge }},
		{"core.recv.adus_delivered", func() int64 { return st.ADUsDelivered }},
		{"core.recv.adus_lost", func() int64 { return st.ADUsLost }},
		{"core.recv.out_of_order", func() int64 { return st.OutOfOrder }},
		{"core.recv.checksum_fails", func() int64 { return st.ChecksumFails }},
		{"core.recv.nacks_sent", func() int64 { return st.NacksSent }},
		{"core.recv.ctrl_sent", func() int64 { return st.CtrlSent }},
		{"core.recv.heartbeats", func() int64 { return st.Heartbeats }},
		{"core.recv.parity_frags", func() int64 { return st.ParityFrags }},
		{"core.recv.fec_recovered", func() int64 { return st.FECRecovered }},
		{"core.recv.feedback_tx", func() int64 { return st.FeedbackSent }},
		{"core.recv.wire_bytes", func() int64 { return st.WireBytes }},
		{"core.recv.delivered_bytes", func() int64 { return st.DeliveredBytes }},
	} {
		r.CounterFunc(c.name, c.fn, lb)
	}
	r.GaugeFunc("core.recv.pending_adus", func() int64 { return int64(len(rc.partials)) }, lb)
	r.GaugeFunc("core.recv.missing_adus", func() int64 { return int64(len(rc.missings)) }, lb)
	r.GaugeFunc("core.recv.settled", func() int64 { return int64(rc.cum) }, lb)
	return recvMetrics{
		aduLatency: r.Histogram("core.recv.adu_latency_ns", lb),
		aduBytes:   r.Histogram("core.recv.adu_bytes", lb),
		ilpBytes:   r.Counter("core.recv.ilp_pass_bytes", lb),
	}
}
