package alf

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// TestStatsMatchRegistry is the regression contract for the unified
// metrics layer: every bridged series in the registry must read
// exactly the value of the Stats field it views, after a run lossy
// enough to exercise the recovery counters.
func TestStatsMatchRegistry(t *testing.T) {
	reg := metrics.New()
	sched := sim.NewScheduler()
	net := netsim.New(sched, 7)
	net.SetMetrics(reg)
	a, b := net.NewNode("a"), net.NewNode("b")
	ab, ba := net.NewDuplex(a, b, netsim.LinkConfig{
		RateBps: 5e7, Delay: 2 * time.Millisecond, LossProb: 0.05,
	})

	cfg := Config{MTU: 256 + HeaderSize, Metrics: reg}
	snd, err := NewSender(sched, ab.Send, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(sched, ba.Send, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })
	delivered := 0
	rcv.OnADU = func(ADU) { delivered++ }

	for i := 0; i < 50; i++ {
		if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, payload(2000, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()
	if delivered != 50 {
		t.Fatalf("delivered %d/50 ADUs", delivered)
	}
	if snd.Stats.ResentADUs == 0 {
		t.Fatal("scenario did not exercise recovery; raise the loss rate")
	}

	snap := reg.Snapshot()
	sv := func(name string) int64 { return snap.Value(name, "stream=0") }

	sendViews := map[string]int64{
		"core.send.adus":           snd.Stats.ADUs,
		"core.send.fragments":      snd.Stats.Fragments,
		"core.send.frag_bytes":     snd.Stats.Bytes,
		"core.send.resent_adus":    snd.Stats.ResentADUs,
		"core.send.recompute_adus": snd.Stats.RecomputeADUs,
		"core.send.resent_frags":   snd.Stats.ResentFrags,
		"core.send.unfilled_nacks": snd.Stats.UnfilledNacks,
		"core.send.released":       snd.Stats.Released,
		"core.send.ctrl_received":  snd.Stats.CtrlReceived,
		"core.send.ctrl_dropped":   snd.Stats.CtrlDropped,
		"core.send.heartbeats":     snd.Stats.Heartbeats,
		"core.send.parity_frags":   snd.Stats.ParityFrags,
		"core.send.buffered_bytes": int64(snd.BufferedBytes()),
		"core.send.buffered_adus":  int64(snd.BufferedADUs()),
	}
	recvViews := map[string]int64{
		"core.recv.fragments":      rcv.Stats.Fragments,
		"core.recv.frag_bytes":     rcv.Stats.FragmentBytes,
		"core.recv.header_drops":   rcv.Stats.HeaderDrops,
		"core.recv.dup_fragments":  rcv.Stats.DupFragments,
		"core.recv.late_fragments": rcv.Stats.LateFragments,
		"core.recv.inconsistent":   rcv.Stats.Inconsistent,
		"core.recv.too_large":      rcv.Stats.TooLarge,
		"core.recv.adus_delivered": rcv.Stats.ADUsDelivered,
		"core.recv.adus_lost":      rcv.Stats.ADUsLost,
		"core.recv.out_of_order":   rcv.Stats.OutOfOrder,
		"core.recv.checksum_fails": rcv.Stats.ChecksumFails,
		"core.recv.nacks_sent":     rcv.Stats.NacksSent,
		"core.recv.ctrl_sent":      rcv.Stats.CtrlSent,
		"core.recv.heartbeats":     rcv.Stats.Heartbeats,
		"core.recv.parity_frags":   rcv.Stats.ParityFrags,
		"core.recv.fec_recovered":  rcv.Stats.FECRecovered,
		"core.recv.pending_adus":   int64(rcv.Pending()),
		"core.recv.settled":        int64(rcv.Settled()),
	}
	for name, want := range sendViews {
		if got := sv(name); got != want {
			t.Errorf("%s = %d, Stats field = %d", name, got, want)
		}
	}
	for name, want := range recvViews {
		if got := sv(name); got != want {
			t.Errorf("%s = %d, Stats field = %d", name, got, want)
		}
	}

	// Native instruments: one latency and one size observation per
	// delivered ADU; the fused stage-one pass touched exactly the
	// accepted fragment bytes (no FEC in this scenario).
	lat, ok := snap.Get("core.recv.adu_latency_ns", "stream=0")
	if !ok || lat.Hist.Count != rcv.Stats.ADUsDelivered {
		t.Errorf("adu_latency_ns count = %+v, want %d observations", lat.Hist, rcv.Stats.ADUsDelivered)
	}
	if lat.Hist.Min <= 0 {
		t.Errorf("adu latency min = %d, want > 0 (link has delay)", lat.Hist.Min)
	}
	sizes, _ := snap.Get("core.recv.adu_bytes", "stream=0")
	if sizes.Hist.Count != rcv.Stats.ADUsDelivered || sizes.Hist.Min != 2000 || sizes.Hist.Max != 2000 {
		t.Errorf("adu_bytes histogram = %+v", sizes.Hist)
	}
	if got := sv("core.recv.ilp_pass_bytes"); got != rcv.Stats.FragmentBytes {
		t.Errorf("recv ilp_pass_bytes = %d, want FragmentBytes %d", got, rcv.Stats.FragmentBytes)
	}
	if got := sv("core.send.ilp_pass_bytes"); got != 50*2000 {
		t.Errorf("send ilp_pass_bytes = %d, want %d", got, 50*2000)
	}

	// netsim link series view the link stats.
	if got := snap.Value("netsim.link.sent", "link=a->b/0"); got != ab.Stats.Sent {
		t.Errorf("netsim.link.sent = %d, link stats = %d", got, ab.Stats.Sent)
	}
	if got := snap.Value("netsim.link.line_losses", "link=a->b/0"); got != ab.Stats.LineLosses || got == 0 {
		t.Errorf("netsim.link.line_losses = %d, link stats = %d (want non-zero)", got, ab.Stats.LineLosses)
	}
	if got := snap.Value("netsim.link.delivered_bytes", "link=b->a/1"); got != ba.Stats.DeliveredBytes || got == 0 {
		t.Errorf("control-path delivered_bytes = %d, link stats = %d", got, ba.Stats.DeliveredBytes)
	}
}

// TestMetricsDisabled pins the zero-cost contract: endpoints built
// without a registry run identically and register nothing.
func TestMetricsDisabled(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{}, 1)
	p.snd.Send(0, xcode.SyntaxRaw, payload(500, 9))
	p.sched.Run()
	if len(p.adus) != 1 {
		t.Fatalf("delivered %d ADUs without metrics", len(p.adus))
	}
	if p.snd.m.aduBytes != nil || p.rcv.m.aduLatency != nil {
		t.Error("nil registry must produce nil instruments")
	}
}
