package alf

import (
	"errors"
	"testing"
	"time"

	"repro/internal/buf"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// emission is one data-plane wire handoff as seen by the test sink.
type emission struct {
	at   sim.Time
	name uint64
	off  int
}

// pacerRig builds a paced sender whose wire sink records every DATA
// emission with its virtual timestamp, over either the copying Send
// path or the zero-copy SendRef path.
func pacerRig(t *testing.T, cfg Config, zeroCopy bool) (*sim.Scheduler, *Sender, *[]emission) {
	t.Helper()
	s := sim.NewScheduler()
	log := &[]emission{}
	record := func(p []byte) {
		if len(p) == 0 || p[0] != typeData {
			return // heartbeats are control-plane, not paced
		}
		h, err := parseHeader(p)
		if err != nil {
			t.Fatalf("sink got malformed data packet: %v", err)
		}
		*log = append(*log, emission{at: s.Now(), name: h.Name, off: h.FragOff})
	}
	snd, err := NewSender(s, func(p []byte) error { record(p); return nil }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if zeroCopy {
		snd.SendRef = func(ref *buf.Ref) error {
			record(ref.Bytes())
			ref.Release()
			return nil
		}
	}
	return s, snd, log
}

// TestPacerPriorityBypass: a retransmission must reach the wire
// immediately, ahead of first-transmission fragments the pacer has
// already booked into the future — under both wire paths.
func TestPacerPriorityBypass(t *testing.T) {
	for _, tc := range []struct {
		name     string
		zeroCopy bool
	}{{"Send", false}, {"SendRef", true}} {
		t.Run(tc.name, func(t *testing.T) {
			s, snd, log := pacerRig(t, Config{Policy: SenderBuffered, RateBps: 1e6}, tc.zeroCopy)

			if _, err := snd.Send(0, xcode.SyntaxRaw, payload(512, 1)); err != nil {
				t.Fatal(err)
			}
			if _, err := snd.Send(1, xcode.SyntaxRaw, payload(8192, 2)); err != nil {
				t.Fatal(err)
			}
			if snd.Backlog() <= 0 {
				t.Fatal("pacer not backlogged; rig broken")
			}
			snd.resend(0) // priority: must not queue behind ADU 1

			retxAt := sim.Time(-1)
			for _, e := range (*log)[1:] { // entry 0 is ADU 0's first transmission
				if e.name == 0 {
					retxAt = e.at
				}
			}
			if retxAt != s.Now() {
				t.Fatalf("retransmission paced to %v, want immediate (%v)", retxAt, s.Now())
			}

			s.Run()
			paced := 0
			for _, e := range *log {
				if e.name == 1 && e.at > retxAt {
					paced++
				}
			}
			if paced == 0 {
				t.Error("no ADU-1 fragment was emitted after the bypassing retransmission")
			}
			if snd.Stats.ResentFrags == 0 {
				t.Error("no retransmitted fragments counted")
			}
		})
	}
}

// TestPacerMonotonicAcrossSetRate: changing the rate mid-stream (by
// hand or by a controller) must never schedule a fragment earlier than
// one already committed — wire emission times stay non-decreasing, and
// every fragment emitted after a change is paced at the new rate, under
// both wire paths.
func TestPacerMonotonicAcrossSetRate(t *testing.T) {
	for _, tc := range []struct {
		name     string
		zeroCopy bool
	}{{"Send", false}, {"SendRef", true}} {
		t.Run(tc.name, func(t *testing.T) {
			s, snd, log := pacerRig(t, Config{Policy: NoRetransmit, RateBps: 2e5, HeartbeatLimit: 1}, tc.zeroCopy)

			data := payload(1000, 3)
			for i := 0; i < 30; i++ {
				tag := uint64(i)
				s.After(time.Duration(i)*2*time.Millisecond, func() {
					if _, err := snd.Send(tag, xcode.SyntaxRaw, data); err != nil {
						t.Fatal(err)
					}
				})
			}
			// Speed up mid-stream (a shallower backlog must not reorder
			// already-booked fragments), then slam down to a crawl.
			s.After(20*time.Millisecond, func() { snd.SetRate(8e6) })
			s.After(40*time.Millisecond, func() { snd.SetRate(5e4) })
			s.Run()

			if len(*log) != 30 {
				t.Fatalf("emitted %d fragments, want 30", len(*log))
			}
			for i := 1; i < len(*log); i++ {
				if (*log)[i].at < (*log)[i-1].at {
					t.Fatalf("emission %d (ADU %d) at %v precedes emission %d at %v",
						i, (*log)[i].name, (*log)[i].at, i-1, (*log)[i-1].at)
				}
			}
			if last := (*log)[len(*log)-1]; last.name != 29 {
				t.Errorf("final emission is ADU %d, want 29", last.name)
			}
		})
	}
}

// TestFeedbackShedZeroAlloc extends the steady-state allocation guard
// to the new overload hot paths: accepting a feedback report (parse,
// RateSample, controller step, rate change) and shedding a Droppable
// ADU must not allocate.
func TestFeedbackShedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	s := sim.NewScheduler()
	snd, err := NewSender(s, func([]byte) error { return nil }, Config{
		Policy:           NoRetransmit,
		RateBps:          1e5,
		FeedbackInterval: 50 * time.Millisecond,
		Controller:       &AIMD{Floor: 1e4, Ceil: 1e6},
		ShedBacklog:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Book the pacer far into the (frozen) future so every Droppable
	// submission sheds.
	data := payload(4096, 4)
	if _, err := snd.Send(0, xcode.SyntaxRaw, data); err != nil {
		t.Fatal(err)
	}
	if snd.Backlog() <= snd.Config().ShedBacklog {
		t.Fatal("rig not backlogged")
	}

	var fb [feedbackSize]byte
	seq := uint32(0)
	wire := uint64(0)
	iter := func() {
		seq++
		wire += 1000
		if err := snd.HandleControl(encodeFeedback(fb[:], 0, seq, wire, wire)); err != nil {
			t.Fatal(err)
		}
		if _, err := snd.SendClass(7, xcode.SyntaxRaw, data, Droppable); !errors.Is(err, ErrShed) {
			t.Fatal("Droppable not shed")
		}
	}
	for i := 0; i < 8; i++ {
		iter()
	}
	if allocs := testing.AllocsPerRun(100, iter); allocs != 0 {
		t.Fatalf("feedback+shed path allocates %v allocs/op, want 0", allocs)
	}
	if snd.Stats.FeedbackRecv == 0 || snd.Stats.ShedADUs == 0 {
		t.Fatalf("hot path did not run: feedback=%d shed=%d", snd.Stats.FeedbackRecv, snd.Stats.ShedADUs)
	}
}

// TestReceiverFeedbackZeroAlloc: the receiver's periodic report
// (encodeFeedback into the reused scratch buffer) must not allocate.
func TestReceiverFeedbackZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	s := sim.NewScheduler()
	reports := 0
	// NackInterval an hour out: the gap-scan's cumulative-ack refresh
	// goes through encodeControl, a (pre-existing) allocating path that
	// is not under test here.
	rcv, err := NewReceiver(s, func(p []byte) error {
		if len(p) > 0 && p[0] == typeFB {
			reports++
		}
		return nil
	}, Config{Policy: NoRetransmit, FeedbackInterval: 10 * time.Millisecond,
		NackInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rcv.OnADU = func(adu ADU) { adu.Release() }

	// HeartbeatLimit 1: heartbeats provoke control replies through
	// encodeControl, a (pre-existing) allocating path that is not under
	// test here.
	var snd *Sender
	snd, err = NewSender(s, func(p []byte) error { return rcv.HandlePacket(p) },
		Config{Policy: NoRetransmit, HeartbeatLimit: 1})
	if err != nil {
		t.Fatal(err)
	}

	name := uint64(0)
	data := payload(512, 6)
	iter := func() {
		if _, err := snd.Send(name, xcode.SyntaxRaw, data); err != nil {
			t.Fatal(err)
		}
		name++
		// Cross a report boundary so onFeedback actually fires.
		if err := s.RunFor(10 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		iter()
	}
	if allocs := testing.AllocsPerRun(50, iter); allocs != 0 {
		t.Fatalf("receiver feedback path allocates %v allocs/op, want 0", allocs)
	}
	if reports == 0 {
		t.Fatal("no reports emitted; rig broken")
	}
}
