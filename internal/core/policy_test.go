package alf

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// dropRig is a pair whose data path drops chosen ADU names
// deterministically: names in always are black-holed on every
// transmission, names in once lose only their first copy.
type dropRig struct {
	*pair
	dropped map[uint64]int
}

func newDropRig(t *testing.T, cfg Config, always, once map[uint64]bool) *dropRig {
	t.Helper()
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{Delay: time.Millisecond})

	p := &pair{sched: s, net: n, ab: ab, ba: ba}
	d := &dropRig{pair: p, dropped: map[uint64]int{}}
	send := func(pkt []byte) error {
		if PacketType(pkt) == 1 {
			if h, err := parseHeader(pkt); err == nil {
				if always[h.Name] || (once[h.Name] && d.dropped[h.Name] == 0) {
					d.dropped[h.Name]++
					return nil
				}
			}
		}
		return ab.Send(pkt)
	}
	var err error
	p.snd, err = NewSender(s, send, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.rcv, err = NewReceiver(s, ba.Send, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.SetHandler(func(pk *netsim.Packet) { p.snd.HandleControl(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { p.rcv.HandlePacket(pk.Payload) })
	p.rcv.OnADU = func(adu ADU) { p.adus = append(p.adus, adu) }
	p.rcv.OnLost = func(name uint64) { p.lost = append(p.lost, name) }
	return d
}

// TestAppRecomputeUnfilledNack: when the application cannot regenerate
// an ADU (OnResend ok=false), every NACK for it goes unfilled and the
// receiver eventually reports the loss. On a lossless control path the
// accounting is exact: each abandoned name costs precisely MaxNacks
// unfilled resend attempts, so sender and receiver books must agree.
func TestAppRecomputeUnfilledNack(t *testing.T) {
	cfg := Config{
		Policy:       AppRecompute,
		NackDelay:    5 * time.Millisecond,
		NackInterval: 5 * time.Millisecond,
		MaxNacks:     4,
		HoldTime:     40 * time.Millisecond,
	}
	// Names 3 and 7 are black-holed and unrecomputable; name 5 loses
	// its first copy but the app can rebuild it.
	refused := map[uint64]bool{3: true, 7: true}
	d := newDropRig(t, cfg, refused, map[uint64]bool{5: true})

	refusedCalls := 0
	d.snd.OnResend = func(name uint64) (uint64, xcode.SyntaxID, []byte, bool) {
		if refused[name] {
			refusedCalls++
			return 0, 0, nil, false
		}
		return name, xcode.SyntaxRaw, payload(600, byte(name)), true
	}

	const n = 10
	for i := 0; i < n; i++ {
		d.snd.Send(uint64(i), xcode.SyntaxRaw, payload(600, byte(i)))
	}
	d.sched.Run()

	if len(d.adus) != n-len(refused) {
		t.Fatalf("delivered %d, want %d", len(d.adus), n-len(refused))
	}
	sort.Slice(d.lost, func(i, j int) bool { return d.lost[i] < d.lost[j] })
	if len(d.lost) != 2 || d.lost[0] != 3 || d.lost[1] != 7 {
		t.Fatalf("lost = %v, want [3 7]", d.lost)
	}
	// Sender and receiver ledgers must agree exactly: each reported
	// loss burned the full NACK budget, every attempt unfilled.
	want := int64(cfg.MaxNacks) * int64(len(d.lost))
	if d.snd.Stats.UnfilledNacks != want {
		t.Errorf("UnfilledNacks = %d, want MaxNacks(%d) x lost(%d) = %d",
			d.snd.Stats.UnfilledNacks, cfg.MaxNacks, len(d.lost), want)
	}
	if got := int64(refusedCalls); d.snd.Stats.UnfilledNacks != got {
		t.Errorf("UnfilledNacks = %d but OnResend refused %d times",
			d.snd.Stats.UnfilledNacks, got)
	}
	if int64(len(d.lost)) != d.rcv.Stats.ADUsLost {
		t.Errorf("OnLost fired %d times, Stats.ADUsLost = %d",
			len(d.lost), d.rcv.Stats.ADUsLost)
	}
	// Name 5 was recomputed, not abandoned.
	if d.snd.Stats.RecomputeADUs != 1 {
		t.Errorf("RecomputeADUs = %d, want 1", d.snd.Stats.RecomputeADUs)
	}
	adu5 := d.aduByName(5)
	if adu5 == nil {
		t.Fatal("recomputable ADU 5 never delivered")
	}
	if !bytes.Equal(adu5.Data, payload(600, 5)) {
		t.Error("ADU 5 corrupted by recompute path")
	}
	// Everything is settled: abandoned names count toward the frontier.
	if d.rcv.Settled() != n {
		t.Errorf("settled = %d, want %d", d.rcv.Settled(), n)
	}
}

// TestNoRetransmitLossAccounting: a NoRetransmit stream never chases
// losses — the receiver reports them (OnLost and Stats.ADUsLost agree
// on exactly the dropped names), issues no NACKs, and the sender's
// recovery counters all stay zero even if a stray NACK shows up.
func TestNoRetransmitLossAccounting(t *testing.T) {
	cfg := Config{
		Policy:       NoRetransmit,
		NackInterval: 5 * time.Millisecond,
		HoldTime:     30 * time.Millisecond,
	}
	dropped := map[uint64]bool{2: true, 6: true}
	d := newDropRig(t, cfg, dropped, nil)

	const n = 9
	for i := 0; i < n; i++ {
		d.snd.Send(uint64(i), xcode.SyntaxRaw, payload(500, byte(i)))
	}
	// A forged NACK (a confused or malicious peer) must be ignored
	// without touching the resend or unfilled counters.
	d.sched.After(20*time.Millisecond, func() {
		d.snd.HandleControl(encodeControl(&control{Stream: cfg.StreamID, Nacks: []uint64{2}}))
	})
	d.sched.Run()

	sort.Slice(d.lost, func(i, j int) bool { return d.lost[i] < d.lost[j] })
	if len(d.lost) != 2 || d.lost[0] != 2 || d.lost[1] != 6 {
		t.Fatalf("lost = %v, want [2 6]", d.lost)
	}
	if int64(len(d.lost)) != d.rcv.Stats.ADUsLost {
		t.Errorf("OnLost fired %d times, Stats.ADUsLost = %d",
			len(d.lost), d.rcv.Stats.ADUsLost)
	}
	if len(d.adus)+len(d.lost) != n {
		t.Errorf("delivered %d + lost %d != submitted %d", len(d.adus), len(d.lost), n)
	}
	if d.rcv.Stats.NacksSent != 0 {
		t.Errorf("NoRetransmit receiver sent %d NACKs", d.rcv.Stats.NacksSent)
	}
	st := d.snd.Stats
	if st.ResentADUs != 0 || st.RecomputeADUs != 0 || st.UnfilledNacks != 0 {
		t.Errorf("sender recovery counters moved: resent=%d recomputed=%d unfilled=%d",
			st.ResentADUs, st.RecomputeADUs, st.UnfilledNacks)
	}
	if d.rcv.Settled() != n {
		t.Errorf("settled = %d, want %d", d.rcv.Settled(), n)
	}
}
