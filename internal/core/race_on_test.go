//go:build race

package alf

// raceEnabled reports whether the race detector is active. The
// detector's instrumentation allocates, so allocation-regression tests
// skip themselves under -race.
const raceEnabled = true
