package alf

// Closed-loop, rate-based transmission control (§3). The paper argues
// that a new generation of protocols should pace transmission by rate
// rather than by window, and that the control loop which *sets* the
// rate is a separable concern from error recovery. This file is that
// separable concern: the receiver periodically reports what the path
// actually delivered (see the feedback message in wire.go), and a
// pluggable RateController turns each report into the next pacing
// rate. The default is no controller at all — Config.RateBps stays a
// fixed, out-of-band knob exactly as before — so the closed loop is
// strictly opt-in.
//
// The same feedback also powers ADU-priority load shedding (§2, §5:
// the application, not the network, decides what survives overload):
// Send carries a Priority class, and when the pacer backlog or the
// smoothed loss fraction crosses the configured thresholds the sender
// sheds Droppable ADUs *before* transmission instead of letting the
// bottleneck queue tail-drop fragments blindly.

import "repro/internal/sim"

// Priority classifies an ADU for load shedding. Shedding is a
// sender-side decision made before packetization, which is the whole
// point — a shed ADU costs nothing downstream and consumes no ADU
// name. Critical is additionally marked on the wire (flagCritical) so
// custody relays can apply the same survivability ordering to their
// bounded stores.
type Priority uint8

const (
	// Standard ADUs are paced and recovered normally; they are never
	// shed before transmission.
	Standard Priority = iota
	// Critical ADUs are never shed, and their retransmissions bypass
	// the recovery-bandwidth cap: when the network cannot carry
	// everything, these are the ADUs the application says must survive.
	Critical
	// Droppable ADUs are shed before transmission while the sender is
	// overloaded (pacer backlog or reported loss above threshold).
	// SendClass returns ErrShed and the ADU consumes no name.
	Droppable
)

// String returns the priority class name.
func (p Priority) String() string {
	switch p {
	case Standard:
		return "standard"
	case Critical:
		return "critical"
	case Droppable:
		return "droppable"
	default:
		return "invalid-priority"
	}
}

// RateSample is one feedback interval's view of the path, assembled by
// the sender from the receiver's cumulative report (all counters are
// deltas since the previous report it processed).
type RateSample struct {
	// Interval is the virtual time since the previous report.
	Interval sim.Duration
	// SentBytes is the wire volume (fragment headers + payload,
	// retransmissions and parity included) the sender emitted in the
	// interval.
	SentBytes int64
	// RecvBytes is the wire volume the receiver accepted in the
	// interval, duplicates and late fragments included: what the
	// network actually carried.
	RecvBytes int64
	// DeliveredBytes is the verified ADU payload handed to the
	// receiving application in the interval — the stream's goodput.
	DeliveredBytes int64
	// LossFrac is 1 - RecvBytes/SentBytes clamped to [0, 1]: the
	// fraction of offered wire volume the path failed to deliver.
	// In-flight data skews a single sample; controllers should treat
	// small values as noise (see AIMD.LossThreshold).
	LossFrac float64
	// Backlog is the sender's current pacer backlog: how far in the
	// future the next fragment would be scheduled.
	Backlog sim.Duration
}

// RateController turns receiver feedback into pacing rates. Invoked
// once per accepted feedback report, on the simulation goroutine;
// implementations must not block and should not allocate.
type RateController interface {
	// OnFeedback returns the pacing rate (bits/s) to use from now on,
	// given the current rate and the latest interval sample. Returning
	// cur keeps the rate; the sender ignores non-positive returns.
	OnFeedback(cur float64, s RateSample) float64
}

// FixedRate is the open-loop controller: it keeps whatever rate is
// configured (today's behavior, made explicit). A nil Config.Controller
// behaves identically; FixedRate exists so harnesses can name the
// contrast case.
type FixedRate struct{}

// OnFeedback returns cur unchanged.
func (FixedRate) OnFeedback(cur float64, _ RateSample) float64 { return cur }

// AIMD is a loss-driven additive-increase / multiplicative-decrease
// controller: when an interval's loss fraction crosses LossThreshold
// the rate is multiplied by Backoff, otherwise it grows by ProbeBps.
// The result is clamped to [Floor, Ceil]. Zero fields take the listed
// defaults, so AIMD{} is usable as-is.
type AIMD struct {
	// Floor is the minimum rate (default 128 kb/s). The floor keeps
	// the control loop alive: a stream paced to zero would never probe
	// and never recover.
	Floor float64
	// Ceil is the maximum rate (default: unbounded). Typically the
	// application's offered rate — there is no point pacing faster
	// than data is produced.
	Ceil float64
	// Backoff is the multiplicative decrease factor in (0, 1)
	// (default 0.5).
	Backoff float64
	// ProbeBps is the additive probe per loss-free report
	// (default 100 kb/s).
	ProbeBps float64
	// LossThreshold is the loss fraction above which a report counts
	// as congestion (default 0.02). Below it, residual line loss and
	// in-flight skew are treated as noise.
	LossThreshold float64
}

// WindowedRate is a model-based controller for paths where feedback
// ages faster than it travels: it paces from a windowed maximum of
// measured delivery rates instead of reacting to each report's loss
// fraction. AIMD collapses in the delay-tolerant regime — at a
// 16-minute RTT every report describes the path as it was many
// minutes ago, and one blackout-spanning report (huge apparent loss)
// triggers a multiplicative backoff that then needs hours of additive
// probing to undo. WindowedRate instead keeps a short window of
// delivery-rate samples (RecvBytes over the report interval — what
// the path demonstrably carried) and paces at a gain over the window
// maximum, BBR-style. Reports whose interval exceeds StaleAfter are
// treated as describing an outage, not the path: they are excluded
// from the model, so the estimate holds through a blackout and
// transmission resumes at the pre-blackout rate the moment the link
// heals. Zero fields take the listed defaults, so WindowedRate{} is
// usable as-is.
type WindowedRate struct {
	// Floor is the minimum rate (default 128 kb/s), same role as
	// AIMD.Floor: a stream paced to zero never measures anything.
	Floor float64
	// Ceil is the maximum rate (default: unbounded).
	Ceil float64
	// Window is how many fresh delivery samples the model keeps
	// (default 8, max 32). The estimate is the maximum over the
	// window, so one slow interval never drags the pace down.
	Window int
	// Gain scales the windowed estimate into a pacing rate
	// (default 1.0).
	Gain float64
	// ProbeGain replaces Gain on every ProbeEvery-th fresh sample
	// (default 1.25): the model can only learn a higher delivery rate
	// by occasionally offering one.
	ProbeGain float64
	// ProbeEvery is the probe cadence in fresh samples (default 6).
	ProbeEvery int
	// StaleAfter is the report-interval age beyond which a sample is
	// excluded from the model (default 0 = never stale). Set it to a
	// few feedback intervals: anything longer means reports stopped
	// flowing — a blackout, not a slower path.
	StaleAfter sim.Duration

	window [32]float64 // delivery-rate ring, model state
	n      int         // samples stored (<= effective Window)
	head   int         // next ring slot
	fresh  int         // fresh samples seen, drives the probe cadence
}

// OnFeedback folds one report into the delivery model and returns the
// paced rate. It never allocates.
func (w *WindowedRate) OnFeedback(cur float64, s RateSample) float64 {
	if s.Interval <= 0 {
		return cur
	}
	size := w.Window
	if size <= 0 {
		size = 8
	}
	if size > len(w.window) {
		size = len(w.window)
	}
	stale := w.StaleAfter > 0 && s.Interval > w.StaleAfter
	if !stale {
		// Delivery rate the path demonstrated over this interval.
		rate := float64(s.RecvBytes) * 8 / s.Interval.Seconds()
		w.window[w.head] = rate
		w.head = (w.head + 1) % size
		if w.n < size {
			w.n++
		}
		w.fresh++
	}
	est := 0.0
	for i := 0; i < w.n; i++ {
		if w.window[i] > est {
			est = w.window[i]
		}
	}
	if est <= 0 {
		// No model yet (or only stale reports so far): hold the
		// current rate rather than guess.
		return cur
	}
	gain := w.Gain
	if gain <= 0 {
		gain = 1.0
	}
	probeEvery := w.ProbeEvery
	if probeEvery <= 0 {
		probeEvery = 6
	}
	if !stale && w.fresh%probeEvery == 0 {
		probe := w.ProbeGain
		if probe <= 0 {
			probe = 1.25
		}
		gain = probe
	}
	next := gain * est
	floor := w.Floor
	if floor <= 0 {
		floor = 128e3
	}
	if next < floor {
		next = floor
	}
	if w.Ceil > 0 && next > w.Ceil {
		next = w.Ceil
	}
	return next
}

// OnFeedback applies one AIMD step.
func (a *AIMD) OnFeedback(cur float64, s RateSample) float64 {
	floor, ceil := a.Floor, a.Ceil
	if floor <= 0 {
		floor = 128e3
	}
	backoff := a.Backoff
	if backoff <= 0 || backoff >= 1 {
		backoff = 0.5
	}
	probe := a.ProbeBps
	if probe <= 0 {
		probe = 100e3
	}
	thresh := a.LossThreshold
	if thresh <= 0 {
		thresh = 0.02
	}
	next := cur
	if s.LossFrac > thresh {
		next = cur * backoff
	} else {
		next = cur + probe
	}
	if next < floor {
		next = floor
	}
	if ceil > 0 && next > ceil {
		next = ceil
	}
	return next
}
