package alf

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

func TestFeedbackWireRoundtrip(t *testing.T) {
	var buf [feedbackSize]byte
	msg := encodeFeedback(buf[:], 7, 0xDEADBEEF, 1<<40, 12345)
	if len(msg) != feedbackSize {
		t.Fatalf("encoded length %d, want %d", len(msg), feedbackSize)
	}
	if PacketType(msg) != typeFB {
		t.Errorf("PacketType = %d, want %d", PacketType(msg), typeFB)
	}
	stream, seq, wire, good, err := parseFeedback(msg)
	if err != nil {
		t.Fatal(err)
	}
	if stream != 7 || seq != 0xDEADBEEF || wire != 1<<40 || good != 12345 {
		t.Errorf("roundtrip = (%d, %d, %d, %d)", stream, seq, wire, good)
	}

	// Any single-byte corruption must be rejected by the checksum.
	msg[9] ^= 0x40
	if _, _, _, _, err := parseFeedback(msg); !errors.Is(err, ErrBadHeader) {
		t.Errorf("corrupt feedback parsed: %v", err)
	}
}

func TestAIMDSteps(t *testing.T) {
	a := &AIMD{Floor: 1e5, Ceil: 1e6, Backoff: 0.5, ProbeBps: 5e4, LossThreshold: 0.05}
	if got := a.OnFeedback(4e5, RateSample{LossFrac: 0.10}); got != 2e5 {
		t.Errorf("lossy backoff: %v, want 2e5", got)
	}
	if got := a.OnFeedback(4e5, RateSample{LossFrac: 0.01}); got != 4.5e5 {
		t.Errorf("clean probe: %v, want 4.5e5", got)
	}
	if got := a.OnFeedback(1.2e5, RateSample{LossFrac: 1}); got != 1e5 {
		t.Errorf("floor clamp: %v, want 1e5", got)
	}
	if got := a.OnFeedback(9.9e5, RateSample{}); got != 1e6 {
		t.Errorf("ceil clamp: %v, want 1e6", got)
	}

	// The zero value is usable: documented defaults apply lazily.
	d := &AIMD{}
	if got := d.OnFeedback(1e6, RateSample{LossFrac: 0.5}); got != 5e5 {
		t.Errorf("default backoff: %v, want 5e5", got)
	}
	if got := d.OnFeedback(1e6, RateSample{}); got != 1.1e6 {
		t.Errorf("default probe: %v, want 1.1e6", got)
	}

	if got := (FixedRate{}).OnFeedback(7e6, RateSample{LossFrac: 1}); got != 7e6 {
		t.Errorf("FixedRate moved the rate: %v", got)
	}
}

func TestPriorityString(t *testing.T) {
	for p, want := range map[Priority]string{
		Standard: "standard", Critical: "critical", Droppable: "droppable", Priority(9): "invalid-priority",
	} {
		if got := p.String(); got != want {
			t.Errorf("Priority(%d).String() = %q, want %q", p, got, want)
		}
	}
}

// feedbackSender builds a paced closed-loop sender whose wire sink is a
// no-op, for white-box feedback tests.
func feedbackSender(t *testing.T, cfg Config) *Sender {
	t.Helper()
	s := sim.NewScheduler()
	snd, err := NewSender(s, func([]byte) error { return nil }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snd
}

func TestFeedbackStaleSequenceIgnored(t *testing.T) {
	snd := feedbackSender(t, Config{
		Policy: NoRetransmit, RateBps: 1e6,
		FeedbackInterval: 50 * time.Millisecond,
		Controller:       &AIMD{Floor: 1e5, Ceil: 1e7},
	})
	var buf [feedbackSize]byte
	report := func(seq uint32, wire uint64) error {
		return snd.HandleControl(encodeFeedback(buf[:], 0, seq, wire, wire))
	}

	if err := report(5, 1000); err != nil {
		t.Fatal(err)
	}
	if snd.Stats.FeedbackRecv != 1 {
		t.Fatalf("FeedbackRecv = %d after first report", snd.Stats.FeedbackRecv)
	}
	rate := snd.Rate()

	// A reordered (older) report and a duplicate both carry nothing.
	if err := report(3, 400); err != nil {
		t.Fatal(err)
	}
	if err := report(5, 1000); err != nil {
		t.Fatal(err)
	}
	if snd.Stats.FeedbackRecv != 1 {
		t.Errorf("stale reports accepted: FeedbackRecv = %d", snd.Stats.FeedbackRecv)
	}
	if snd.Rate() != rate {
		t.Errorf("stale report moved the rate: %v -> %v", rate, snd.Rate())
	}

	// The next fresh sequence is accepted.
	if err := report(6, 2000); err != nil {
		t.Fatal(err)
	}
	if snd.Stats.FeedbackRecv != 2 {
		t.Errorf("fresh report rejected: FeedbackRecv = %d", snd.Stats.FeedbackRecv)
	}
}

func TestFeedbackWrongStreamAndCorrupt(t *testing.T) {
	snd := feedbackSender(t, Config{StreamID: 3, Policy: NoRetransmit, RateBps: 1e6,
		FeedbackInterval: 50 * time.Millisecond})
	var buf [feedbackSize]byte

	msg := encodeFeedback(buf[:], 9, 1, 100, 100)
	if err := snd.HandleControl(msg); !errors.Is(err, ErrWrongStream) {
		t.Errorf("wrong-stream feedback: %v", err)
	}
	if snd.Stats.FeedbackRecv != 0 {
		t.Errorf("wrong-stream report counted")
	}

	msg = encodeFeedback(buf[:], 3, 1, 100, 100)
	msg[6] ^= 0xFF
	if err := snd.HandleControl(msg); !errors.Is(err, ErrBadHeader) {
		t.Errorf("corrupt feedback: %v", err)
	}
	if snd.Stats.CtrlDropped != 1 {
		t.Errorf("CtrlDropped = %d, want 1", snd.Stats.CtrlDropped)
	}
}

func TestShedOnBacklog(t *testing.T) {
	snd := feedbackSender(t, Config{
		Policy: NoRetransmit, RateBps: 1e5, ShedBacklog: 50 * time.Millisecond,
	})
	data := payload(4096, 1)

	// A Standard send books the pacer ~330 ms ahead at 100 kb/s.
	if _, err := snd.Send(1, xcode.SyntaxRaw, data); err != nil {
		t.Fatal(err)
	}
	if snd.Backlog() <= 50*time.Millisecond {
		t.Fatalf("backlog %v not past threshold; test rig broken", snd.Backlog())
	}

	next := snd.NextName()
	if _, err := snd.SendClass(2, xcode.SyntaxRaw, data, Droppable); !errors.Is(err, ErrShed) {
		t.Fatalf("Droppable not shed under backlog: %v", err)
	}
	if snd.NextName() != next {
		t.Errorf("shed ADU consumed a name")
	}
	if snd.Stats.ShedADUs != 1 {
		t.Errorf("ShedADUs = %d, want 1", snd.Stats.ShedADUs)
	}

	// Critical and Standard always transmit.
	if _, err := snd.SendClass(3, xcode.SyntaxRaw, data, Critical); err != nil {
		t.Errorf("Critical shed: %v", err)
	}
	if _, err := snd.SendClass(4, xcode.SyntaxRaw, data, Standard); err != nil {
		t.Errorf("Standard shed: %v", err)
	}
}

func TestShedOnReportedLoss(t *testing.T) {
	snd := feedbackSender(t, Config{
		Policy: NoRetransmit, RateBps: 1e8,
		FeedbackInterval: 50 * time.Millisecond,
		ShedBacklog:      time.Hour, // isolate the loss trigger
		ShedLossFrac:     0.25,
	})
	data := payload(1024, 2)

	// Emit some wire volume, then report that none of it arrived: a
	// 100%-loss interval pushes the EWMA (0.3 weight) past 0.25.
	if _, err := snd.Send(1, xcode.SyntaxRaw, data); err != nil {
		t.Fatal(err)
	}
	var buf [feedbackSize]byte
	if err := snd.HandleControl(encodeFeedback(buf[:], 0, 1, 0, 0)); err != nil {
		t.Fatal(err)
	}

	if _, err := snd.SendClass(2, xcode.SyntaxRaw, data, Droppable); !errors.Is(err, ErrShed) {
		t.Fatalf("Droppable not shed at lossEWMA %v: %v", snd.lossEWMA, err)
	}
	if _, err := snd.SendClass(3, xcode.SyntaxRaw, data, Critical); err != nil {
		t.Errorf("Critical shed: %v", err)
	}
}

func TestRecoveryBandwidthCap(t *testing.T) {
	s := sim.NewScheduler()
	snd, err := NewSender(s, func([]byte) error { return nil }, Config{
		Policy: SenderBuffered, RateBps: 1e6, RecoveryFrac: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := payload(1000, 5) // one fragment: 1034 wire bytes

	// Budget: 1e6 * 0.01 / 8 = 1250 bytes/s, burst 1250 bytes.
	if _, err := snd.Send(0, xcode.SyntaxRaw, data); err != nil {
		t.Fatal(err)
	}
	if _, err := snd.Send(1, xcode.SyntaxRaw, data); err != nil {
		t.Fatal(err)
	}
	if _, err := snd.SendClass(2, xcode.SyntaxRaw, data, Critical); err != nil {
		t.Fatal(err)
	}

	snd.resend(0) // 1034 <= 1250: allowed
	if snd.Stats.ResentADUs != 1 || snd.Stats.RetxSuppressed != 0 {
		t.Fatalf("first resend: resent=%d suppressed=%d", snd.Stats.ResentADUs, snd.Stats.RetxSuppressed)
	}
	snd.resend(1) // 216 bytes left: suppressed
	snd.resend(1) // still suppressed (virtual time is frozen)
	if snd.Stats.ResentADUs != 1 || snd.Stats.RetxSuppressed != 2 {
		t.Fatalf("capped resends: resent=%d suppressed=%d", snd.Stats.ResentADUs, snd.Stats.RetxSuppressed)
	}

	// Critical bypasses the cap even with the bucket empty — and still
	// debits it, so it keeps suppressing Standard traffic afterwards.
	snd.resend(2)
	if snd.Stats.ResentADUs != 2 {
		t.Fatalf("Critical resend suppressed: resent=%d", snd.Stats.ResentADUs)
	}
	if snd.retxTokens >= 0 {
		t.Errorf("Critical resend did not debit the bucket: tokens=%v", snd.retxTokens)
	}
	snd.resend(1)
	if snd.Stats.RetxSuppressed != 3 {
		t.Errorf("bucket not empty after Critical bypass: suppressed=%d", snd.Stats.RetxSuppressed)
	}

	// The bucket refills with virtual time.
	s.After(2*time.Second, func() { snd.resend(1) })
	_ = s.RunUntil(s.Now().Add(2 * time.Second))
	if snd.Stats.ResentADUs != 3 {
		t.Errorf("refilled bucket still suppressing: resent=%d suppressed=%d",
			snd.Stats.ResentADUs, snd.Stats.RetxSuppressed)
	}
}

// TestClosedLoopConvergesToBottleneck drives 4 Mb/s of offered load
// through a 2 Mb/s bottleneck twice — open loop (fixed 10 Mb/s pacing)
// and closed loop (AIMD) — from the same seed. The AIMD run must pull
// its rate down toward the bottleneck, losing far less and delivering
// more; the fixed run is the §3 cautionary tale.
func TestClosedLoopConvergesToBottleneck(t *testing.T) {
	run := func(ctrl RateController) *pair {
		cfg := Config{
			Policy:           NoRetransmit,
			RateBps:          10e6,
			FeedbackInterval: 50 * time.Millisecond,
			Controller:       ctrl,
			HoldTime:         500 * time.Millisecond,
		}
		link := netsim.LinkConfig{RateBps: 2e6, Delay: 2 * time.Millisecond, QueueLimit: 16}
		p := newPair(t, link, cfg, 42)
		data := payload(2500, 9)
		for i := 0; i < 400; i++ {
			tag := uint64(i)
			p.sched.After(time.Duration(i)*5*time.Millisecond, func() {
				_, _ = p.snd.Send(tag, xcode.SyntaxRaw, data)
			})
		}
		p.sched.Run()
		return p
	}

	fixed := run(nil)
	aimd := run(&AIMD{Floor: 5e5, Ceil: 10e6, ProbeBps: 2e5})

	if aimd.snd.Stats.FeedbackRecv < 10 {
		t.Errorf("feedback loop barely ran: %d reports", aimd.snd.Stats.FeedbackRecv)
	}
	if aimd.snd.Stats.RateChanges < 5 {
		t.Errorf("controller barely acted: %d rate changes", aimd.snd.Stats.RateChanges)
	}
	if r := aimd.snd.Rate(); r >= 5e6 {
		t.Errorf("AIMD rate did not come down: %v b/s", r)
	}
	if fixed.snd.Stats.RateChanges != 0 {
		t.Errorf("open-loop sender changed rate %d times", fixed.snd.Stats.RateChanges)
	}

	fixedDrops := fixed.ab.Stats.QueueDrops
	aimdDrops := aimd.ab.Stats.QueueDrops
	if fixedDrops == 0 {
		t.Fatalf("contrast case lost nothing; bottleneck rig broken")
	}
	if aimdDrops*2 >= fixedDrops {
		t.Errorf("AIMD drops %d not well under fixed drops %d", aimdDrops, fixedDrops)
	}
	if len(aimd.adus) <= len(fixed.adus) {
		t.Errorf("AIMD delivered %d ADUs, fixed %d — closed loop should win", len(aimd.adus), len(fixed.adus))
	}
	t.Logf("fixed: %d delivered, %d queue drops; aimd: %d delivered, %d queue drops, final rate %.0f",
		len(fixed.adus), fixedDrops, len(aimd.adus), aimdDrops, aimd.snd.Rate())
}

// TestFeedbackQuiescence: the receiver's report timer must stop on its
// own once the stream is idle and settled, so soak drains terminate.
func TestFeedbackQuiescence(t *testing.T) {
	cfg := Config{
		Policy:           SenderBuffered,
		RateBps:          1e7,
		FeedbackInterval: 30 * time.Millisecond,
	}
	p := newPair(t, netsim.LinkConfig{RateBps: 1e8, Delay: time.Millisecond}, cfg, 7)
	for i := 0; i < 20; i++ {
		if _, err := p.snd.Send(uint64(i), xcode.SyntaxRaw, payload(800, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Run() only returns when no events remain: a feedback timer that
	// re-arms forever would spin this loop past any bound.
	p.sched.Run()
	if len(p.adus) != 20 {
		t.Fatalf("delivered %d of 20", len(p.adus))
	}
	if p.rcv.Stats.FeedbackSent == 0 {
		t.Error("no feedback reports on an active stream")
	}
	if p.rcv.fb.Active() {
		t.Error("feedback timer still armed after quiescence")
	}
	if p.snd.Stats.FeedbackRecv == 0 {
		t.Error("sender saw no reports")
	}
}
