package alf

import (
	"fmt"
	"sort"

	"repro/internal/buf"
	"repro/internal/cipher"
	"repro/internal/ilp"
	"repro/internal/scramble"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// ReceiverStats counts receiver events.
type ReceiverStats struct {
	Fragments     int64 // valid fragments accepted
	FragmentBytes int64
	HeaderDrops   int64 // fragments with corrupt/malformed headers
	DupFragments  int64
	LateFragments int64 // fragments for already-settled ADUs
	Inconsistent  int64 // fragments contradicting earlier ones
	TooLarge      int64 // ADUs beyond MaxADU
	ADUsDelivered int64
	ADUsLost      int64 // given up and reported to the application
	OutOfOrder    int64 // ADUs delivered while a lower name was unsettled
	ChecksumFails int64 // complete ADUs whose checksum failed
	AuthFails     int64 // SuiteAEAD fragments whose Poly1305 tag failed
	NacksSent     int64 // recovery requests (ADU names, total)
	CtrlSent      int64 // control messages
	Heartbeats    int64 // sender extent declarations processed
	ParityFrags   int64 // FEC parity fragments accepted
	FECRecovered  int64 // data fragments rebuilt from parity

	// Closed-loop accounting (see ratecontrol.go).
	FeedbackSent   int64 // delivery reports emitted
	WireBytes      int64 // data-plane wire bytes accepted (dups included)
	DeliveredBytes int64 // verified ADU payload handed to the application
}

// partial is an ADU under reassembly. The struct (with its maps) and
// the pooled reassembly buffer are both recycled: the struct when the
// ADU settles, the buffer when the delivered ADU is Released (or
// immediately, on checksum failure or give-up).
type partial struct {
	tag       uint64
	syntax    xcode.SyntaxID
	flags     byte
	check     uint16
	total     int
	ref       *buf.Ref // pooled reassembly buffer; buf aliases it
	buf       []byte
	got       map[int]int      // data fragment offset -> length (duplicate detection)
	parities  map[int]*buf.Ref // FEC group start offset -> pooled parity payload
	gotBytes  int
	sum       uint64 // accumulated plaintext partial checksum
	firstSeen sim.Time
	nacks     int
	lastNack  sim.Time
}

// missing tracks a wholly unseen ADU name (detected via the sequential
// name-space).
type missing struct {
	noticed  sim.Time
	nacks    int
	lastNack sim.Time
}

// nackDue applies exponential backoff to recovery requests: the n-th
// NACK for an ADU waits NackDelay<<min(n,5) after the previous one, so
// a congested path is not hammered with duplicate requests.
func nackDue(now sim.Time, first, last sim.Time, nacks int, delay sim.Duration) bool {
	if nacks == 0 {
		return now.Sub(first) >= delay
	}
	shift := nacks
	if shift > 5 {
		shift = 5
	}
	// Saturating shift: at DTN parameters NackDelay is minutes, and
	// minutes<<5 is fine — but nothing stops an application configuring
	// a delay near the int64 horizon, and a wrapped-negative backoff
	// would NACK on every scan forever.
	backoff := delay << uint(shift)
	if backoff>>uint(shift) != delay {
		return false // overflowed: the backed-off delay is effectively never
	}
	return now.Sub(last) >= backoff
}

// Receiver is the receiving half of an ALF stream. Complete ADUs are
// delivered out of order as they finish; unrecoverable ones are
// reported in ADU terms.
type Receiver struct {
	cfg   Config
	sched *sim.Scheduler
	send  func([]byte) error // control channel back to the sender

	// OnADU receives each complete ADU the moment it completes —
	// possibly out of order. Ownership of ADU.Data transfers.
	OnADU func(ADU)
	// OnLost is told when an ADU is abandoned (NoRetransmit policy, or
	// recovery exhausted). The application decides what that means.
	OnLost func(name uint64)

	partials  map[uint64]*partial
	freeParts []*partial // settled partial structs awaiting reuse
	missings  map[uint64]*missing
	resolved  map[uint64]bool // settled names >= cum
	cum       uint64          // every name < cum is settled
	highest   uint64          // highest name observed
	anySeen   bool
	lastCum   uint64 // last cum value reported to the sender

	scan *sim.Timer

	// Feedback: the periodic delivery report for the sender's rate loop
	// (FeedbackInterval > 0). The timer runs only while the stream is
	// active — bytes arriving or recovery pending — so an idle stream
	// goes fully quiescent. fbScratch keeps the report path
	// allocation-free.
	fb         *sim.Timer
	fbSeq      uint32
	lastFBWire int64
	fbScratch  [feedbackSize]byte

	m recvMetrics

	Stats ReceiverStats
}

// NewReceiver creates the receiving end of a stream. send transmits
// control messages back toward the sender (may be nil for one-way
// simulations; recovery then never happens).
func NewReceiver(sched *sim.Scheduler, send func([]byte) error, cfg Config) (*Receiver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	if cfg.fragPayload() < 8 {
		return nil, ErrMTUTooSmall
	}
	r := &Receiver{
		cfg:      cfg,
		sched:    sched,
		send:     send,
		partials: make(map[uint64]*partial),
		missings: make(map[uint64]*missing),
		resolved: make(map[uint64]bool),
	}
	r.scan = sched.NewTimer(r.onScan)
	r.fb = sched.NewTimer(r.onFeedback)
	r.m = bindReceiverMetrics(cfg.Metrics, r)
	return r, nil
}

// Config returns the effective configuration.
func (r *Receiver) Config() Config { return r.cfg }

// Settled returns the name below which every ADU is settled (delivered
// or reported lost).
func (r *Receiver) Settled() uint64 { return r.cum }

// Pending returns the number of ADUs currently under reassembly.
func (r *Receiver) Pending() int { return len(r.partials) }

// Missing returns the number of wholly-unseen ADU names currently
// tracked as gaps. Together with Pending it bounds the receiver's
// recovery state; soak tests assert both return to zero after faults
// heal.
func (r *Receiver) Missing() int { return len(r.missings) }

// HandlePacket processes one arriving wire packet (DATA fragment or
// heartbeat; CTRL is ignored here — control flows to the Sender).
func (r *Receiver) HandlePacket(pkt []byte) error {
	if len(pkt) > 0 && pkt[0] == typeHB {
		return r.handleHeartbeat(pkt)
	}
	h, err := parseHeader(pkt)
	if err != nil {
		r.Stats.HeaderDrops++
		return err
	}
	if h.Stream != r.cfg.StreamID {
		return ErrWrongStream
	}
	if (h.Flags&flagAEAD != 0) != (r.cfg.Suite == SuiteAEAD) {
		// Suites must agree end to end: a cleartext fragment arriving on
		// an AEAD stream is unauthenticated input, and an AEAD fragment
		// on a legacy stream cannot be verified.
		r.Stats.HeaderDrops++
		return fmt.Errorf("%w: cipher-suite flag mismatch", ErrBadHeader)
	}
	// Count the wire volume before the late/duplicate filters: the
	// feedback loop measures what the network delivered, and a duplicate
	// did cross the path. Corrupt packets are excluded — corruption is
	// loss from the loop's point of view. A configured Encap prefix was
	// stripped by the outer demux before this call; add it back so the
	// count matches the sender's WireBytes and the loop's loss fraction
	// is not skewed by phantom missing bytes.
	r.Stats.WireBytes += int64(len(pkt) + len(r.cfg.Encap))
	r.armFeedback()
	if h.Name < r.cum || r.resolved[h.Name] {
		r.Stats.LateFragments++
		return nil
	}
	if h.Name >= r.cum+r.cfg.NameWindow {
		// A name implausibly far ahead of the settled frontier: almost
		// certainly a corrupted header that survived the 16-bit check.
		r.Stats.HeaderDrops++
		return fmt.Errorf("%w: name %d beyond window (settled %d)", ErrBadHeader, h.Name, r.cum)
	}
	if h.TotalLen > r.cfg.MaxADU {
		r.Stats.TooLarge++
		return ErrADUTooLarge
	}

	if h.Name > r.highest || !r.anySeen {
		r.noteGapsUpTo(h.Name)
		r.highest = h.Name
		r.anySeen = true
	}
	delete(r.missings, h.Name)

	p, ok := r.partials[h.Name]
	if !ok {
		p = r.getPartial(&h)
		r.partials[h.Name] = p
		r.armScan()
	} else if p.total != h.TotalLen || p.tag != h.Tag || p.check != h.ADUCheck {
		r.Stats.Inconsistent++
		return ErrInconsistent
	}
	payload := pkt[HeaderSize : HeaderSize+h.FragLen]
	aead := h.Flags&flagAEAD != 0

	if h.Flags&flagParity != 0 {
		if aead && !r.verifyParityTag(h.Name, h.FragOff, payload,
			pkt[HeaderSize+h.FragLen:HeaderSize+h.FragLen+aeadTagSize]) {
			r.Stats.AuthFails++
			return ErrAuthFail
		}
		r.handleParity(&h, p, payload)
		if p.gotBytes >= p.total {
			r.complete(h.Name, p)
		}
		return nil
	}

	if _, dup := p.got[h.FragOff]; dup {
		r.Stats.DupFragments++
		return nil
	}
	if aead {
		if !r.placeAEAD(h.Name, p, h.FragOff, payload,
			pkt[HeaderSize+h.FragLen:HeaderSize+h.FragLen+aeadTagSize]) {
			// A fragment that fails authentication is a lost fragment:
			// its range stays unaccounted (the plaintext bytes written
			// into the reassembly buffer are dead until a verified copy
			// overwrites them) and recovery re-requests the ADU.
			r.Stats.AuthFails++
			return ErrAuthFail
		}
	} else {
		r.placeFragment(h.Name, p, h.FragOff, payload)
	}
	r.Stats.Fragments++
	r.Stats.FragmentBytes += int64(h.FragLen)
	r.cfg.Tracer.FragmentReceived(r.cfg.StreamID, h.Name, h.FragOff, h.FragLen, false)

	// A newly placed fragment may make an FEC group reconstructible
	// (all-but-one present, parity held).
	if len(p.parities) > 0 {
		r.tryReconstruct(h.Name, p, r.groupStart(h.FragOff))
	}
	if p.gotBytes >= p.total {
		r.complete(h.Name, p)
	}
	return nil
}

// getPartial returns reassembly state for a new ADU: a recycled struct
// (maps cleared on recycle) around a pooled buffer sized to the ADU.
func (r *Receiver) getPartial(h *header) *partial {
	var p *partial
	if n := len(r.freeParts); n > 0 {
		p = r.freeParts[n-1]
		r.freeParts[n-1] = nil
		r.freeParts = r.freeParts[:n-1]
	} else {
		p = &partial{got: make(map[int]int)}
	}
	ref := r.cfg.Pool.Get(h.TotalLen)
	*p = partial{
		tag:       h.Tag,
		syntax:    h.Syntax,
		flags:     h.Flags &^ flagParity,
		check:     h.ADUCheck,
		total:     h.TotalLen,
		ref:       ref,
		buf:       ref.Bytes(),
		got:       p.got,
		parities:  p.parities,
		firstSeen: r.sched.Now(),
	}
	return p
}

// putPartial recycles a settled ADU's reassembly struct. The caller
// has already released or handed off p.ref; held parity buffers are
// returned to the pool here.
func (r *Receiver) putPartial(p *partial) {
	clear(p.got)
	for off, parity := range p.parities {
		parity.Release()
		delete(p.parities, off)
	}
	p.ref, p.buf = nil, nil
	r.freeParts = append(r.freeParts, p)
}

// placeFragment runs the stage-one single data pass: place the fragment
// (or a reconstructed one), decipher it, and extend the ADU checksum —
// fused (§6).
func (r *Receiver) placeFragment(name uint64, p *partial, off int, payload []byte) {
	p.got[off] = len(payload)
	if p.flags&flagEnciphered != 0 {
		p.sum += ilp.FusedDecryptCopySum(p.buf[off:off+len(payload)], payload, r.cfg.Key^name, off)
	} else {
		p.sum += ilp.FusedCopySum(p.buf[off:off+len(payload)], payload)
	}
	p.gotBytes += len(payload)
	r.m.ilpBytes.Add(int64(len(payload)))
}

// placeAEAD runs the SuiteAEAD stage-one pass for a data fragment:
// decrypt-and-place fused with the Poly1305 accumulation over the
// ciphertext, then verify the fragment's tag. The plaintext lands in
// the reassembly buffer before the verdict, which is safe because the
// range is only accounted as received on success — a forged fragment
// leaves no trace in got/gotBytes and the range stays recoverable.
func (r *Receiver) placeAEAD(name uint64, p *partial, off int, payload, tag []byte) bool {
	nonce := aeadNonce(r.cfg.StreamID, name)
	mac := newTagMAC(&r.cfg.aeadKey, &nonce, tagCtrData+uint32(off/8))
	ilp.FusedDecryptCopyVerify(p.buf[off:off+len(payload)], payload, &r.cfg.aeadKey, &nonce, off, &mac)
	if !mac.Verify(tag) {
		return false
	}
	p.got[off] = len(payload)
	p.gotBytes += len(payload)
	r.m.ilpBytes.Add(int64(len(payload)))
	return true
}

// placeAEADRecovered places an FEC-reconstructed ciphertext fragment.
// No tag runs here: the bytes are authenticated transitively — the
// parity blob's own tag verified, every surviving member's tag
// verified, and XOR is the only arithmetic between them.
func (r *Receiver) placeAEADRecovered(name uint64, p *partial, off int, payload []byte) {
	nonce := aeadNonce(r.cfg.StreamID, name)
	ilp.FusedDecryptCopyVerify(p.buf[off:off+len(payload)], payload, &r.cfg.aeadKey, &nonce, off, nil)
	p.got[off] = len(payload)
	p.gotBytes += len(payload)
	r.m.ilpBytes.Add(int64(len(payload)))
}

// verifyParityTag checks an FEC parity fragment's Poly1305 tag, which
// covers the parity blob (the XOR of the group's ciphertexts) itself.
func (r *Receiver) verifyParityTag(name uint64, off int, blob, tag []byte) bool {
	nonce := aeadNonce(r.cfg.StreamID, name)
	mac := newTagMAC(&r.cfg.aeadKey, &nonce, tagCtrParity+uint32(off/8))
	mac.Update(blob)
	return mac.Verify(tag)
}

// groupStart returns the FEC group start offset for a fragment offset.
func (r *Receiver) groupStart(off int) int {
	group := r.cfg.FECGroup * r.cfg.fragPayload()
	if group <= 0 {
		return 0
	}
	return off / group * group
}

// handleParity stores an FEC parity fragment (in a pooled buffer) and
// attempts recovery.
func (r *Receiver) handleParity(h *header, p *partial, payload []byte) {
	if p.parities == nil {
		p.parities = make(map[int]*buf.Ref)
	}
	if _, dup := p.parities[h.FragOff]; dup {
		r.Stats.DupFragments++
		return
	}
	pr := r.cfg.Pool.Get(len(payload))
	copy(pr.Bytes(), payload)
	p.parities[h.FragOff] = pr
	r.Stats.ParityFrags++
	r.cfg.Tracer.FragmentReceived(r.cfg.StreamID, h.Name, h.FragOff, h.FragLen, true)
	r.tryReconstruct(h.Name, p, h.FragOff)
}

// tryReconstruct rebuilds the single missing data fragment of the FEC
// group starting at gs, if its parity is held and exactly one fragment
// is absent. Reconstruction recovers the wire (enciphered) bytes, so
// the rebuilt fragment flows through the same fused stage-one pass.
func (r *Receiver) tryReconstruct(name uint64, p *partial, gs int) {
	parity, ok := p.parities[gs]
	if !ok || r.cfg.FECGroup <= 0 {
		return
	}
	fp := r.cfg.fragPayload()
	missingOff := -1
	for off := gs; off < p.total && off < gs+r.cfg.FECGroup*fp; off += fp {
		if _, have := p.got[off]; !have {
			if missingOff >= 0 {
				return // two or more missing: XOR parity cannot help
			}
			missingOff = off
		}
	}
	if missingOff < 0 {
		return // group complete; parity unneeded
	}
	missingLen := p.total - missingOff
	if missingLen > fp {
		missingLen = fp
	}
	if missingLen > parity.Len() {
		// A malformed parity shorter than the fragment it must rebuild.
		r.Stats.Inconsistent++
		return
	}
	// recon = parity XOR (wire bytes of every present fragment in the
	// group), accumulated word-wise. p.buf holds plaintext, so when the
	// stream is keyed, fold the keystream for each present fragment's
	// positions back in after its XOR — the same bytes as re-enciphering
	// the fragment first, without a scratch copy. Recovery-path cost
	// only; the pooled accumulator goes straight back after placement.
	recon := r.cfg.Pool.Get(parity.Len())
	rb := recon.Bytes()
	nonce := aeadNonce(r.cfg.StreamID, name)
	ilp.WordCopy(rb, parity.Bytes())
	for off := gs; off < p.total && off < gs+r.cfg.FECGroup*fp; off += fp {
		n, have := p.got[off]
		if !have {
			continue
		}
		ilp.XORWords(rb, p.buf[off:off+n])
		switch {
		case p.flags&flagEnciphered != 0:
			scramble.XORAt(r.cfg.Key^name, off, rb[:n])
		case p.flags&flagAEAD != 0:
			// p.buf holds plaintext; folding the ChaCha20 keystream back
			// in turns the XORed plaintext into the member's ciphertext
			// without a scratch copy, same as the scramble path.
			cipher.XORKeyStream(&r.cfg.aeadKey, &nonce, off, rb[:n], rb[:n])
		}
	}
	r.Stats.FECRecovered++
	if p.flags&flagAEAD != 0 {
		r.placeAEADRecovered(name, p, missingOff, rb[:missingLen])
	} else {
		r.placeFragment(name, p, missingOff, rb[:missingLen])
	}
	recon.Release()
}

// handleHeartbeat learns the declared stream extent: names below next
// that we have no state for are missing (this is how wholesale tail
// loss becomes visible), and the sender is answered with the current
// settle frontier so it can release retention even when earlier control
// messages were lost.
func (r *Receiver) handleHeartbeat(pkt []byte) error {
	stream, next, err := parseHeartbeat(pkt)
	if err != nil {
		r.Stats.HeaderDrops++
		return err
	}
	if stream != r.cfg.StreamID {
		return ErrWrongStream
	}
	r.Stats.Heartbeats++
	r.armFeedback()
	if next > r.cum+r.cfg.NameWindow {
		// Same corruption defence as for data fragments: never let a
		// declared extent open an implausible gap.
		r.Stats.HeaderDrops++
		return fmt.Errorf("%w: heartbeat extent %d beyond window (settled %d)", ErrBadHeader, next, r.cum)
	}
	if next > 0 {
		r.noteGapsUpTo(next)
		if !r.anySeen || next-1 > r.highest {
			r.highest = next - 1
			r.anySeen = true
		}
	}
	if r.send != nil {
		r.Stats.CtrlSent++
		r.lastCum = r.cum
		_ = r.send(encodeControl(&control{Stream: r.cfg.StreamID, Cum: r.cum}))
	}
	return nil
}

// noteGapsUpTo records wholly-missing names implied by a new highest
// name (sequential name-space: everything between the old and new
// highest that we have no state for must be in flight or lost).
func (r *Receiver) noteGapsUpTo(name uint64) {
	start := r.cum
	if r.anySeen && r.highest+1 > start {
		start = r.highest + 1
	}
	now := r.sched.Now()
	for n := start; n < name; n++ {
		if !r.resolved[n] && r.partials[n] == nil {
			r.missings[n] = &missing{noticed: now}
		}
	}
	if name > start || len(r.missings) > 0 {
		r.armScan()
	}
}

// complete finishes stage two for one ADU: verify and deliver. The
// reassembly buffer's reference passes to the delivered ADU (released
// at once when no one is listening); the partial struct is recycled
// either way.
func (r *Receiver) complete(name uint64, p *partial) {
	delete(r.partials, name)
	// Under SuiteAEAD integrity was already settled per fragment by the
	// Poly1305 tags; there is no ADU checksum to fold.
	if p.flags&flagAEAD == 0 && ilp.FinishSum(p.sum) != p.check {
		// A damaged ADU is a lost ADU (§5): discard it whole and let
		// recovery request it again.
		r.Stats.ChecksumFails++
		r.cfg.Tracer.ADUChecksumFailed(r.cfg.StreamID, name)
		r.missings[name] = &missing{noticed: r.sched.Now(), nacks: p.nacks}
		r.armScan()
		p.ref.Release()
		r.putPartial(p)
		return
	}
	if name > r.cum {
		r.Stats.OutOfOrder++
	}
	r.settle(name)
	r.Stats.ADUsDelivered++
	r.Stats.DeliveredBytes += int64(p.total)
	r.m.aduLatency.ObserveDuration(r.sched.Now().Sub(p.firstSeen))
	r.m.aduBytes.Observe(int64(p.total))
	r.cfg.Tracer.ADUDelivered(r.cfg.StreamID, name, p.total)
	adu := ADU{Name: name, Tag: p.tag, Syntax: p.syntax, Data: p.buf, ref: p.ref}
	r.putPartial(p)
	if r.OnADU != nil {
		r.OnADU(adu)
	} else {
		adu.Release()
	}
}

// settle marks a name resolved and advances the cumulative frontier.
func (r *Receiver) settle(name uint64) {
	r.resolved[name] = true
	for r.resolved[r.cum] {
		delete(r.resolved, r.cum)
		r.cum++
	}
}

// armFeedback ensures the periodic delivery report is running (when
// the stream has one configured and a control channel to carry it).
func (r *Receiver) armFeedback() {
	if r.cfg.FeedbackInterval > 0 && r.send != nil && !r.fb.Active() {
		r.fb.Reset(r.cfg.FeedbackInterval)
	}
}

// onFeedback emits one delivery report (wire.go: cumulative counters,
// robust to report loss) and re-arms while the stream stays active.
// A report also goes out when nothing arrived but recovery state is
// pending — the sender then sees a zero-delivery interval, which is
// exactly what a congestion-collapsed path looks like and what a
// controller must react to. When arrivals stop and nothing is pending
// the timer stops, so an idle stream schedules no work; the next
// arrival re-arms it.
func (r *Receiver) onFeedback() {
	changed := r.Stats.WireBytes != r.lastFBWire
	active := len(r.partials) > 0 || len(r.missings) > 0
	if !changed && !active {
		return
	}
	r.lastFBWire = r.Stats.WireBytes
	r.fbSeq++
	r.Stats.FeedbackSent++
	r.cfg.Tracer.FeedbackSent(r.cfg.StreamID, r.fbSeq, r.Stats.WireBytes)
	_ = r.send(encodeFeedback(r.fbScratch[:], r.cfg.StreamID, r.fbSeq,
		uint64(r.Stats.WireBytes), uint64(r.Stats.DeliveredBytes)))
	r.fb.Reset(r.cfg.FeedbackInterval)
}

// armScan ensures the periodic gap scan is running.
func (r *Receiver) armScan() {
	if !r.scan.Active() {
		r.scan.Reset(r.cfg.NackInterval)
	}
}

// onScan is the receiver's periodic recovery pass: NACK overdue gaps,
// abandon hopeless ADUs, and refresh the sender's release frontier.
func (r *Receiver) onScan() {
	now := r.sched.Now()
	var nacks []uint64

	giveUp := func(name uint64) {
		r.Stats.ADUsLost++
		r.settle(name)
		r.cfg.Tracer.ADULost(r.cfg.StreamID, name)
		if r.OnLost != nil {
			r.OnLost(name)
		}
	}

	// Scan in ascending name order, not map order: which names fit under
	// maxNacksPerMsg and the order recovery requests reach the sender
	// both feed back into the simulation (and the shared network RNG
	// draw sequence), so map iteration would make runs with identical
	// seeds diverge. Oldest names first is also the useful priority —
	// they gate the settle frontier.
	names := make([]uint64, 0, len(r.missings)+len(r.partials))
	for name := range r.missings {
		names = append(names, name)
	}
	for name := range r.partials {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	for _, name := range names {
		// A name is in exactly one of the two maps (the first fragment
		// deletes it from missings).
		if m, ok := r.missings[name]; ok {
			age := now.Sub(m.noticed)
			switch {
			case r.cfg.Policy == NoRetransmit || m.nacks >= r.cfg.MaxNacks:
				if age >= r.cfg.HoldTime {
					delete(r.missings, name)
					giveUp(name)
				}
			case nackDue(now, m.noticed, m.lastNack, m.nacks, r.cfg.NackDelay):
				if len(nacks) < maxNacksPerMsg {
					nacks = append(nacks, name)
					m.nacks++
					m.lastNack = now
				}
			}
			continue
		}
		p := r.partials[name]
		age := now.Sub(p.firstSeen)
		switch {
		case r.cfg.Policy == NoRetransmit || p.nacks >= r.cfg.MaxNacks:
			if age >= r.cfg.HoldTime {
				delete(r.partials, name)
				p.ref.Release()
				r.putPartial(p)
				giveUp(name)
			}
		case nackDue(now, p.firstSeen, p.lastNack, p.nacks, r.cfg.NackDelay):
			if len(nacks) < maxNacksPerMsg {
				nacks = append(nacks, name)
				p.nacks++
				p.lastNack = now
			}
		}
	}

	if r.cfg.Policy == NoRetransmit {
		nacks = nil
	}
	if r.send != nil && (len(nacks) > 0 || r.cum != r.lastCum) {
		r.Stats.CtrlSent++
		r.Stats.NacksSent += int64(len(nacks))
		r.lastCum = r.cum
		r.cfg.Tracer.NacksSent(r.cfg.StreamID, nacks)
		_ = r.send(encodeControl(&control{Stream: r.cfg.StreamID, Cum: r.cum, Nacks: nacks}))
	}

	if len(r.partials) > 0 || len(r.missings) > 0 || r.cum != r.lastCum {
		r.scan.Reset(r.cfg.NackInterval)
	}
}
