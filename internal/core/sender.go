package alf

import (
	"fmt"
	"math"

	"repro/internal/buf"
	"repro/internal/cipher"
	"repro/internal/ilp"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// SenderStats counts sender events.
type SenderStats struct {
	ADUs          int64 // ADUs submitted
	Fragments     int64 // first-transmission fragments
	Bytes         int64 // first-transmission payload bytes
	ResentADUs    int64 // whole-ADU retransmissions (SenderBuffered)
	RecomputeADUs int64 // whole-ADU regenerations (AppRecompute)
	ResentFrags   int64
	UnfilledNacks int64 // NACKs we could not satisfy
	Released      int64 // buffered ADUs freed by cumulative acks
	DeadlineDrops int64 // buffered ADUs shed by ADUDeadline, unconfirmed
	CtrlReceived  int64
	CtrlDropped   int64 // corrupt control messages
	Heartbeats    int64
	ParityFrags   int64 // FEC parity fragments emitted

	// Overload-robustness accounting (see ratecontrol.go).
	ShedADUs       int64 // Droppable ADUs shed before transmission
	FeedbackRecv   int64 // feedback reports accepted (fresh sequence)
	RateChanges    int64 // controller-driven rate updates applied
	RetxSuppressed int64 // resends withheld by the recovery-bandwidth cap
	WireBytes      int64 // data-plane wire bytes emitted (headers included)

	// Custody-transfer accounting (Config.Custody; see internal/relay).
	CustodyAcks     int64 // custody-ack frames accepted
	CustodyReleased int64 // buffered ADUs freed by custody transfer
	CustodyNacks    int64 // NACKs suppressed: the ADU is in downstream custody
}

// wireFrag is one stamped wire packet (header + fragment payload) in a
// pooled buffer, plus the fragment coordinates the tracer and stats
// need at emission time.
type wireFrag struct {
	ref    *buf.Ref // header+payload view; holder owns one count
	off, n int      // fragment offset and payload length within the ADU
	parity bool
}

// savedADU is the retention state under SenderBuffered: the stamped
// wire packets themselves, retained by reference. A resend re-emits
// the same buffers (every header field is identical on resend), so
// retransmission copies nothing.
type savedADU struct {
	tag     uint64
	syntax  xcode.SyntaxID
	frags   []wireFrag
	wireLen int // ADU payload bytes (BufferedBytes accounting)
	check   uint16
	sentAt  sim.Time // submission time, for the ADUDeadline sweep
	class   Priority // Critical resends bypass the recovery cap
}

// release drops the retention references.
func (a *savedADU) release() {
	for _, f := range a.frags {
		f.ref.Release()
	}
	a.frags = nil
}

// Sender is the sending half of an ALF stream.
type Sender struct {
	cfg   Config
	sched *sim.Scheduler
	send  func([]byte) error

	// SendRef, if set, transmits wire packets as pooled refcounted
	// buffers (the callee owns the passed count — netsim.Link.SendRef
	// has exactly this contract), making emission zero-copy end to end.
	// When nil, packets go through the send function and the buffer is
	// recycled as soon as it returns.
	SendRef func(*buf.Ref) error

	// scratch is the packetization worklist, reused across Sends so the
	// steady-state path does not allocate.
	scratch []wireFrag

	// OnResend supplies ADU payloads under the AppRecompute policy: the
	// application regenerates the data (and its tag and syntax) for a
	// named ADU, or reports that it cannot. The returned payload must
	// equal the original or the receiver's checksum will reject it.
	OnResend func(name uint64) (tag uint64, syntax xcode.SyntaxID, data []byte, ok bool)
	// OnRelease, if set, is told when retention of a buffered ADU ends
	// (delivery confirmed or given up by the receiver).
	OnRelease func(name uint64)
	// OnExpire, if set, is told when ADUDeadline sheds a still-
	// unconfirmed ADU: the transport can no longer recover it, and the
	// application decides what that means (recompute later, log, skip).
	// OnRelease follows for the same name.
	OnExpire func(name uint64)

	nextName  uint64
	buffered  map[uint64]*savedADU
	bufBytes  int
	pacerFree sim.Time

	// Heartbeat: declares the stream extent to the receiver while
	// deliveries are unconfirmed, so tail loss is detectable.
	// emittedNext tracks the extent actually handed to the network (the
	// pacer may still hold later ADUs; declaring those would make the
	// receiver chase data that was never sent).
	hb          *sim.Timer
	lastCum     uint64
	hbMisses    int
	emittedNext uint64
	jitter      uint64 // deterministic LCG state for heartbeat jitter

	// retire sweeps ADUDeadline-expired retention; armed only while
	// ADUs are buffered and a deadline is configured.
	retire *sim.Timer

	// Custody-transfer state (Config.Custody): every name below
	// custodyCum is held by a downstream relay, and custodyDone records
	// out-of-order custody above the frontier. A NACK for a custody-
	// released name is the receiver asking for data the relay now owns;
	// resending it from here would race the relay's own recovery, so it
	// is suppressed (Stats.CustodyNacks).
	custodyCum  uint64
	custodyDone map[uint64]struct{}

	// Closed-loop state (see ratecontrol.go): the last feedback report
	// processed, kept cumulative so per-interval deltas survive lost
	// reports, and the loss EWMA that drives shedding.
	fbSeq    uint32   // highest report sequence accepted
	fbAt     sim.Time // arrival time of that report
	fbWire   int64    // receiver's cumulative wire bytes at that report
	fbGood   int64    // receiver's cumulative delivered payload bytes
	fbSent   int64    // our own WireBytes at that report
	lossEWMA float64  // smoothed reported loss fraction

	// Recovery-bandwidth token bucket (RecoveryFrac): bytes of resend
	// budget, replenished at RecoveryFrac x RateBps.
	retxTokens float64
	retxLast   sim.Time
	retxInit   bool

	m senderMetrics

	Stats SenderStats
}

// NewSender creates the sending end of a stream. send transmits one
// wire packet toward the receiver.
func NewSender(sched *sim.Scheduler, send func([]byte) error, cfg Config) (*Sender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	if cfg.fragPayload() < 8 {
		return nil, fmt.Errorf("%w: MTU %d", ErrMTUTooSmall, cfg.MTU)
	}
	s := &Sender{
		cfg:      cfg,
		sched:    sched,
		send:     send,
		buffered: make(map[uint64]*savedADU),
	}
	s.hb = sched.NewTimer(s.onHeartbeat)
	s.retire = sched.NewTimer(s.onRetire)
	// Seed the jitter stream from the config so runs stay deterministic
	// and streams sharing a node desynchronize.
	s.jitter = uint64(cfg.StreamID)*0x9E3779B97F4A7C15 ^ cfg.Key ^ 0xD1B54A32D192ED03
	s.m = bindSenderMetrics(cfg.Metrics, s)
	return s, nil
}

// onHeartbeat periodically declares the stream extent until the
// receiver confirms it (or the limit gives up on a dead path).
func (s *Sender) onHeartbeat() {
	if s.lastCum >= s.nextName || s.hbMisses >= s.cfg.HeartbeatLimit {
		return
	}
	s.hbMisses++
	if s.emittedNext > 0 {
		s.Stats.Heartbeats++
		s.cfg.Tracer.HeartbeatSent(s.cfg.StreamID, s.emittedNext)
		_ = s.send(encodeHeartbeat(s.cfg.StreamID, s.emittedNext))
	}
	s.hb.Reset(s.hbInterval())
}

// hbSilentMisses is how many consecutive unanswered heartbeats count
// as "silence": below it the heartbeat keeps its plain configured
// cadence (transient stalls on a healthy path are left alone); from it
// onward the interval doubles every two further misses up to
// HeartbeatMaxInterval, with ±25% jitter.
const hbSilentMisses = 4

// hbBackoff returns the current un-jittered heartbeat backoff level.
// It is a pure read of the miss count — no PRNG step — so the
// telemetry plane can expose it as a gauge without perturbing the
// jitter stream (and with it, the run's determinism).
func (s *Sender) hbBackoff() sim.Duration {
	iv := s.cfg.HeartbeatInterval
	if s.hbMisses < hbSilentMisses {
		return iv
	}
	max := s.cfg.HeartbeatMaxInterval
	for i := (s.hbMisses - hbSilentMisses) / 2; i > 0 && iv < max; i-- {
		// Saturate instead of doubling past the int64 edge: with the
		// hour-scale intervals a DTN path configures, the backoff
		// reaches the representable limit in a few dozen misses, and a
		// wrapped-negative interval would stall the timer forever.
		if iv > max/2 {
			iv = max
			break
		}
		iv *= 2
	}
	if iv > max {
		iv = max
	}
	return iv
}

// hbInterval returns the next heartbeat delay. During a blackout this
// decays the probe rate instead of hammering a dead path at the data-
// plane NACK cadence; the jitter keeps recovering streams from
// re-probing in phase.
func (s *Sender) hbInterval() sim.Duration {
	iv := s.hbBackoff()
	if s.hbMisses < hbSilentMisses {
		return iv
	}
	// xorshift step; low bits of the advanced state give the jitter.
	s.jitter ^= s.jitter << 13
	s.jitter ^= s.jitter >> 7
	s.jitter ^= s.jitter << 17
	span := int64(iv) / 2
	if span <= 0 {
		return iv
	}
	// iv - iv/4 is iv*3/4 without the iv*3 overflow, and the final sum
	// saturates: HeartbeatMaxInterval may legitimately sit near the
	// int64 horizon.
	base := iv - iv/4
	j := sim.Duration(int64(s.jitter>>1) % span)
	if base > sim.Duration(math.MaxInt64)-j {
		return sim.Duration(math.MaxInt64)
	}
	return base + j
}

// onRetire sheds retention past the ADUDeadline and re-arms for the
// next earliest expiry.
func (s *Sender) onRetire() {
	if s.cfg.ADUDeadline <= 0 {
		return
	}
	now := s.sched.Now()
	var next sim.Time = -1
	for name, saved := range s.buffered {
		due := saved.sentAt.Add(s.cfg.ADUDeadline)
		if due < saved.sentAt {
			// sentAt + deadline wrapped past the int64 horizon: at
			// hour-scale deadlines deep into a long run the sum can
			// overflow, and a wrapped due would expire the ADU
			// instantly. Treat it as never-due instead.
			continue
		}
		if due <= now {
			s.bufBytes -= saved.wireLen
			saved.release()
			delete(s.buffered, name)
			s.Stats.DeadlineDrops++
			s.cfg.Tracer.ADUExpired(s.cfg.StreamID, name)
			if s.OnExpire != nil {
				s.OnExpire(name)
			}
			if s.OnRelease != nil {
				s.OnRelease(name)
			}
			continue
		}
		if next < 0 || due < next {
			next = due
		}
	}
	if next >= 0 {
		s.retire.Reset(next.Sub(now))
	}
}

// Config returns the effective configuration.
func (s *Sender) Config() Config { return s.cfg }

// NextName returns the name the next Send will assign.
func (s *Sender) NextName() uint64 { return s.nextName }

// BufferedBytes returns the payload bytes currently retained for
// retransmission.
func (s *Sender) BufferedBytes() int { return s.bufBytes }

// BufferedADUs returns the number of ADUs currently retained.
func (s *Sender) BufferedADUs() int { return len(s.buffered) }

// SetRate changes the pacing rate (out-of-band rate control, §3). Zero
// disables pacing. With a Controller configured this is the knob the
// control loop itself turns; calling it by hand still works but the
// next feedback report may override it.
func (s *Sender) SetRate(bps float64) { s.cfg.RateBps = bps }

// Rate returns the current pacing rate in bits/s (zero: unpaced).
func (s *Sender) Rate() float64 { return s.cfg.RateBps }

// backlog reports how far into the future the pacer is booked: the
// delay a fragment submitted now would wait before reaching the wire.
func (s *Sender) backlog(now sim.Time) sim.Duration {
	if s.pacerFree > now {
		return s.pacerFree.Sub(now)
	}
	return 0
}

// Backlog returns the current pacer backlog.
func (s *Sender) Backlog() sim.Duration { return s.backlog(s.sched.Now()) }

// shouldShed reports whether the sender is overloaded enough to shed
// Droppable ADUs: the pacer is booked past ShedBacklog, or the
// receiver-reported loss EWMA exceeds ShedLossFrac.
func (s *Sender) shouldShed() bool {
	if s.cfg.ShedBacklog > 0 && s.backlog(s.sched.Now()) > s.cfg.ShedBacklog {
		return true
	}
	if s.cfg.ShedLossFrac > 0 && s.lossEWMA > s.cfg.ShedLossFrac {
		return true
	}
	return false
}

// Send frames data as the next ADU and transmits its fragments. tag is
// the application's naming information for the ADU (file offset, frame
// and slice, call id); syntax identifies how data is encoded. It
// returns the assigned ADU name.
//
// The data is copied (and under a non-zero Key, enciphered) before
// return; the caller may reuse the buffer. The copy is the gather
// pass: each fragment's wire payload is produced directly in a pooled
// buffer with header headroom, checksummed in the same fused pass, so
// packetization touches the data exactly once and allocates nothing in
// steady state.
func (s *Sender) Send(tag uint64, syntax xcode.SyntaxID, data []byte) (uint64, error) {
	return s.SendClass(tag, syntax, data, Standard)
}

// SendClass is Send with an explicit priority class (ratecontrol.go):
// the application's statement of what must survive overload. Critical
// and Standard ADUs always transmit; a Droppable ADU submitted while
// the sender is overloaded (pacer backlog past ShedBacklog, or the
// reported-loss EWMA past ShedLossFrac) is shed before packetization —
// SendClass returns ErrShed, the ADU consumes no name, and nothing
// reaches the network. Shedding here, at the sender, is the ALF
// position on overload: the application picks what is lost, instead of
// a bottleneck queue tail-dropping fragments blindly.
func (s *Sender) SendClass(tag uint64, syntax xcode.SyntaxID, data []byte, class Priority) (uint64, error) {
	if class == Droppable && s.shouldShed() {
		s.Stats.ShedADUs++
		s.cfg.Tracer.ADUShed(s.cfg.StreamID, s.nextName, tag, len(data))
		return 0, ErrShed
	}
	if len(data) > s.cfg.MaxADU {
		return 0, fmt.Errorf("%w: %d bytes", ErrADUTooLarge, len(data))
	}
	if s.cfg.Policy == SenderBuffered && s.bufBytes+len(data) > s.cfg.BufferLimit {
		return 0, fmt.Errorf("%w: %d retained", ErrBufferLimit, s.bufBytes)
	}
	name := s.nextName

	frags, ck := s.packetize(name, data, s.scratch[:0])
	s.stamp(name, tag, syntax, len(data), ck, class, frags)

	retain := s.cfg.Policy == SenderBuffered
	if retain {
		saved := &savedADU{tag: tag, syntax: syntax, wireLen: len(data), check: ck, sentAt: s.sched.Now(), class: class}
		saved.frags = append(saved.frags, frags...)
		s.buffered[name] = saved
		s.bufBytes += len(data)
		if s.cfg.ADUDeadline > 0 && !s.retire.Active() {
			s.retire.Reset(s.cfg.ADUDeadline)
		}
	}

	s.nextName++
	s.Stats.ADUs++
	s.m.aduBytes.Observe(int64(len(data)))
	s.m.ilpBytes.Add(int64(len(data)))
	s.cfg.Tracer.ADUSubmitted(s.cfg.StreamID, name, tag, len(data))
	s.emitFrags(name, frags, false, retain)
	s.scratch = frags[:0]
	if !s.hb.Active() {
		s.hb.Reset(s.cfg.HeartbeatInterval)
	}
	return name, nil
}

// packetize runs the single fused pass over data: each fragment's wire
// payload (enciphered under (Key, name) when keyed) is written straight
// into a pooled buffer with HeaderSize headroom while the plaintext
// checksum accumulates, and FEC parity accumulates word-wise into its
// own pooled buffer. Fragment offsets are 8-aligned, so the per-
// fragment partial sums add into the whole-ADU checksum. It appends to
// frags (data fragments interleaved with each group's parity, in
// emission order) and returns the list and the ADU checksum.
func (s *Sender) packetize(name uint64, data []byte, frags []wireFrag) ([]wireFrag, uint16) {
	if s.cfg.Suite == SuiteAEAD {
		return s.packetizeAEAD(name, data, frags), 0
	}
	frag := s.cfg.fragPayload()
	keyed := s.cfg.Suite == SuiteScramble
	var (
		sum       uint64
		parity    *buf.Ref // XOR accumulator for the current group
		parityOff int      // group start offset
		inGroup   int      // data fragments accumulated
	)
	headroom := HeaderSize + len(s.cfg.Encap)
	off := 0
	for {
		n := len(data) - off
		if n > frag {
			n = frag
		}
		ref := s.cfg.Pool.GetHeadroom(n, headroom)
		w := ref.Bytes()
		if keyed {
			sum += ilp.FusedEncryptCopySum(w, data[off:off+n], s.cfg.Key^name, off)
		} else {
			sum += ilp.FusedCopySum(w, data[off:off+n])
		}
		frags = append(frags, wireFrag{ref: ref, off: off, n: n})
		if s.cfg.FECGroup > 0 {
			if inGroup == 0 {
				parityOff = off
				parity = s.cfg.Pool.GetHeadroom(n, headroom) // first (longest) fragment of the group
				ilp.WordCopy(parity.Bytes(), w)
			} else {
				ilp.XORWords(parity.Bytes(), w)
			}
			inGroup++
			if inGroup == s.cfg.FECGroup {
				frags = append(frags, wireFrag{ref: parity, off: parityOff, n: parity.Len(), parity: true})
				parity, inGroup = nil, 0
			}
		}
		off += n
		if off >= len(data) {
			break
		}
	}
	if inGroup > 0 && parity != nil {
		frags = append(frags, wireFrag{ref: parity, off: parityOff, n: parity.Len(), parity: true})
	}
	return frags, ilp.FinishSum(sum)
}

// packetizeAEAD is the SuiteAEAD gather pass: each fragment's
// ciphertext is produced straight into its pooled wire buffer while the
// Poly1305 accumulator runs in the same fused loop (one load and one
// store per word, §6), and the 16-byte tag lands right after the
// ciphertext. FEC parity accumulates the XOR of the group's
// ciphertexts — not the tags — and carries its own tag over the blob,
// so a reconstructed fragment is authenticated transitively. There is
// no ADU checksum: the tags are the integrity pass.
func (s *Sender) packetizeAEAD(name uint64, data []byte, frags []wireFrag) []wireFrag {
	frag := s.cfg.fragPayload()
	nonce := aeadNonce(s.cfg.StreamID, name)
	var (
		parity    *buf.Ref // XOR-of-ciphertexts accumulator for the current group
		parityOff int      // group start offset
		parityLen int      // blob length (first, longest fragment of the group)
		inGroup   int
	)
	headroom := HeaderSize + len(s.cfg.Encap)
	off := 0
	for {
		n := len(data) - off
		if n > frag {
			n = frag
		}
		ref := s.cfg.Pool.GetHeadroom(n+aeadTagSize, headroom)
		w := ref.Bytes()
		mac := newTagMAC(&s.cfg.aeadKey, &nonce, tagCtrData+uint32(off/8))
		ilp.FusedEncryptCopyMAC(w[:n], data[off:off+n], &s.cfg.aeadKey, &nonce, off, &mac)
		mac.Sum(w[n : n+aeadTagSize])
		frags = append(frags, wireFrag{ref: ref, off: off, n: n})
		if s.cfg.FECGroup > 0 {
			if inGroup == 0 {
				parityOff, parityLen = off, n
				parity = s.cfg.Pool.GetHeadroom(n+aeadTagSize, headroom)
				ilp.WordCopy(parity.Bytes()[:n], w[:n])
			} else {
				ilp.XORWords(parity.Bytes()[:parityLen], w[:n])
			}
			inGroup++
			if inGroup == s.cfg.FECGroup {
				frags = append(frags, s.sealParity(&nonce, parity, parityOff, parityLen))
				parity, inGroup = nil, 0
			}
		}
		off += n
		if off >= len(data) {
			break
		}
	}
	if inGroup > 0 && parity != nil {
		frags = append(frags, s.sealParity(&nonce, parity, parityOff, parityLen))
	}
	return frags
}

// sealParity tags a completed FEC parity blob (the tag covers the blob
// bytes themselves) and returns its wire fragment.
func (s *Sender) sealParity(nonce *[cipher.NonceSize]byte, parity *buf.Ref, off, n int) wireFrag {
	mac := newTagMAC(&s.cfg.aeadKey, nonce, tagCtrParity+uint32(off/8))
	pb := parity.Bytes()
	mac.Update(pb[:n])
	mac.Sum(pb[n : n+aeadTagSize])
	return wireFrag{ref: parity, off: off, n: n, parity: true}
}

// stamp prepends and fills each fragment's header in place: the
// payload, already in its final position, never moves. Critical ADUs
// carry flagCritical so intermediate custody relays can apply the
// application's survival priority without decoding payloads.
func (s *Sender) stamp(name, tag uint64, syntax xcode.SyntaxID, totalLen int, ck uint16, class Priority, frags []wireFrag) {
	var flags byte
	switch s.cfg.Suite {
	case SuiteScramble:
		flags |= flagEnciphered
	case SuiteAEAD:
		flags |= flagAEAD
	}
	if class == Critical {
		flags |= flagCritical
	}
	h := header{
		Stream:   s.cfg.StreamID,
		Name:     name,
		Tag:      tag,
		Syntax:   syntax,
		TotalLen: totalLen,
		ADUCheck: ck,
	}
	for _, f := range frags {
		h.Flags = flags
		if f.parity {
			h.Flags |= flagParity
		}
		h.FragOff = f.off
		h.FragLen = f.n
		putHeader(f.ref.Prepend(HeaderSize), &h)
		if len(s.cfg.Encap) > 0 {
			// The outer demux prefix, stamped once into the reserved
			// headroom; resends of retained fragments reuse it as-is.
			copy(f.ref.Prepend(len(s.cfg.Encap)), s.cfg.Encap)
		}
	}
}

// emitFrags (re)sends an ADU's stamped wire packets in order. With
// retain the caller keeps its counts (retention, ready for resend) and
// the network gets its own; otherwise ownership transfers outright.
func (s *Sender) emitFrags(name uint64, frags []wireFrag, isResend, retain bool) {
	lastData := -1
	if !isResend {
		for i := len(frags) - 1; i >= 0; i-- {
			if !frags[i].parity {
				lastData = i
				break
			}
		}
	}
	for i, f := range frags {
		markNext := uint64(0)
		if i == lastData {
			markNext = name + 1 // final fragment: the ADU is fully emitted
		}
		ref := f.ref
		if retain {
			ref = ref.Retain()
		}
		s.emit(ref, isResend, markNext, fragRef{name: name, off: f.off, n: f.n, parity: f.parity})
		switch {
		case f.parity:
			s.Stats.ParityFrags++
		case isResend:
			s.Stats.ResentFrags++
		default:
			s.Stats.Fragments++
			s.Stats.Bytes += int64(f.n)
		}
	}
}

// fragRef identifies the fragment inside an emitted packet for the
// tracer (the trace event fires when the packet actually reaches the
// wire, so a paced fragment records its pacer wait).
type fragRef struct {
	name   uint64
	off, n int
	parity bool
}

// sendOut hands one wire packet to the network, preferring the
// zero-copy refcounted path. Ownership of the count transfers either
// way: the fallback recycles the buffer as soon as the send function
// returns (which must not retain the slice).
func (s *Sender) sendOut(pkt *buf.Ref) {
	s.Stats.WireBytes += int64(pkt.Len())
	if s.SendRef != nil {
		_ = s.SendRef(pkt)
		return
	}
	_ = s.send(pkt.Bytes())
	pkt.Release()
}

// mark advances the emitted-extent watermark the heartbeat declares.
func (s *Sender) mark(markNext uint64) {
	if markNext > s.emittedNext {
		s.emittedNext = markNext
	}
}

// emit sends one packet now or at the paced time, consuming the
// caller's reference. Recovery traffic (priority) bypasses the pacer:
// a retransmission that queues behind the rest of a long paced stream
// re-creates exactly the head-of-line latency ALF exists to remove,
// and its volume is bounded by the receiver's NACK backoff.
func (s *Sender) emit(pkt *buf.Ref, priority bool, markNext uint64, ref fragRef) {
	if s.cfg.RateBps <= 0 || priority {
		s.cfg.Tracer.FragmentSent(s.cfg.StreamID, ref.name, ref.off, ref.n, priority, ref.parity, 0)
		s.sendOut(pkt)
		s.mark(markNext)
		return
	}
	tx := sim.Duration(float64(pkt.Len()*8) / s.cfg.RateBps * 1e9)
	at := s.sched.Now()
	if s.pacerFree > at {
		at = s.pacerFree
	}
	s.pacerFree = at.Add(tx)
	if at == s.sched.Now() {
		s.cfg.Tracer.FragmentSent(s.cfg.StreamID, ref.name, ref.off, ref.n, false, ref.parity, 0)
		s.sendOut(pkt)
		s.mark(markNext)
		return
	}
	wait := at.Sub(s.sched.Now())
	s.sched.At(at, func() {
		s.cfg.Tracer.FragmentSent(s.cfg.StreamID, ref.name, ref.off, ref.n, false, ref.parity, wait)
		s.sendOut(pkt)
		s.mark(markNext)
	})
}

// HandleControl processes a message from the receiver on the control
// channel: cumulative releases and per-ADU recovery requests (CTRL),
// or a delivery report (FB) for the rate-control loop.
func (s *Sender) HandleControl(pkt []byte) error {
	if len(pkt) > 0 && pkt[0] == typeFB {
		return s.handleFeedback(pkt)
	}
	if len(pkt) > 0 && pkt[0] == typeCA {
		return s.handleCustody(pkt)
	}
	c, err := parseControl(pkt)
	if err != nil {
		s.Stats.CtrlDropped++
		return err
	}
	if c.Stream != s.cfg.StreamID {
		return ErrWrongStream
	}
	s.Stats.CtrlReceived++
	if c.Cum > s.lastCum {
		s.lastCum = c.Cum
		s.hbMisses = 0
	}
	if s.lastCum >= s.nextName {
		s.hb.Stop()
	}

	// Release everything settled at the receiver.
	for name, saved := range s.buffered {
		if name < c.Cum {
			s.bufBytes -= saved.wireLen
			saved.release()
			delete(s.buffered, name)
			s.Stats.Released++
			if s.OnRelease != nil {
				s.OnRelease(name)
			}
		}
	}

	for _, name := range c.Nacks {
		s.resend(name)
	}
	return nil
}

// handleFeedback folds one receiver delivery report into the closed
// loop: dedupe by sequence, delta the cumulative counters into a
// RateSample, update the loss EWMA that drives shedding, and let the
// controller (if any) set the next pacing rate.
func (s *Sender) handleFeedback(pkt []byte) error {
	stream, seq, wire, good, err := parseFeedback(pkt)
	if err != nil {
		s.Stats.CtrlDropped++
		return err
	}
	if stream != s.cfg.StreamID {
		return ErrWrongStream
	}
	if seq <= s.fbSeq {
		// Reordered or duplicated report: a newer cumulative view was
		// already processed, so this one carries nothing.
		return nil
	}
	now := s.sched.Now()
	sent := s.Stats.WireBytes
	sample := RateSample{
		Interval:       now.Sub(s.fbAt),
		SentBytes:      sent - s.fbSent,
		RecvBytes:      int64(wire) - s.fbWire,
		DeliveredBytes: int64(good) - s.fbGood,
		Backlog:        s.backlog(now),
	}
	if sample.SentBytes > 0 {
		lf := 1 - float64(sample.RecvBytes)/float64(sample.SentBytes)
		if lf < 0 {
			lf = 0
		} else if lf > 1 {
			lf = 1
		}
		sample.LossFrac = lf
	}
	s.fbSeq, s.fbAt, s.fbWire, s.fbGood, s.fbSent = seq, now, int64(wire), int64(good), sent
	s.lossEWMA = 0.7*s.lossEWMA + 0.3*sample.LossFrac
	s.Stats.FeedbackRecv++
	if s.cfg.Controller != nil {
		next := s.cfg.Controller.OnFeedback(s.cfg.RateBps, sample)
		if next > 0 && next != s.cfg.RateBps {
			s.Stats.RateChanges++
			s.cfg.Tracer.RateChanged(s.cfg.StreamID, s.cfg.RateBps, next)
			s.cfg.RateBps = next
		}
	}
	return nil
}

// handleCustody processes a custody-ack frame from a downstream relay
// (Config.Custody): the relay holds complete copies of the named ADUs
// and has taken over recovery responsibility for them, so retention
// here ends. The heartbeat frontier is untouched — custody is not
// delivery, and the receiver's own cumulative acks still govern when
// the stream extent stops being declared.
func (s *Sender) handleCustody(pkt []byte) error {
	ca, err := ParseCustody(pkt)
	if err != nil {
		s.Stats.CtrlDropped++
		return err
	}
	if ca.Stream != s.cfg.StreamID {
		return ErrWrongStream
	}
	if !s.cfg.Custody {
		// The application did not opt in; a custody ack must not
		// release anything.
		return nil
	}
	s.Stats.CustodyAcks++
	if ca.Cum > s.custodyCum {
		s.custodyCum = ca.Cum
		// The frontier subsumes every individually-tracked name
		// below it.
		for name := range s.custodyDone {
			if name < s.custodyCum {
				delete(s.custodyDone, name)
			}
		}
	}
	release := func(name uint64) {
		saved, ok := s.buffered[name]
		if !ok {
			return
		}
		s.bufBytes -= saved.wireLen
		saved.release()
		delete(s.buffered, name)
		s.Stats.CustodyReleased++
		s.cfg.Tracer.CustodyReleased(s.cfg.StreamID, ca.Relay, name)
		if s.OnRelease != nil {
			s.OnRelease(name)
		}
	}
	for name := range s.buffered {
		if name < s.custodyCum {
			release(name)
		}
	}
	for _, name := range ca.Names {
		if name < s.custodyCum {
			continue
		}
		release(name)
		if s.custodyDone == nil {
			s.custodyDone = make(map[uint64]struct{})
		}
		s.custodyDone[name] = struct{}{}
	}
	return nil
}

// inCustody reports whether a name's recovery responsibility has moved
// to a downstream custodian.
func (s *Sender) inCustody(name uint64) bool {
	if !s.cfg.Custody {
		return false
	}
	if name < s.custodyCum {
		return true
	}
	_, ok := s.custodyDone[name]
	return ok
}

// allowRecovery charges n wire bytes of retransmission against the
// recovery-bandwidth token bucket (RecoveryFrac x RateBps, one second
// of burst). During a loss episode this is what keeps recovery traffic
// from compounding the congestion that caused the loss. Critical ADUs
// always pass — they still debit the bucket, so their resends consume
// the budget Standard resends would have used — and a false return
// means the resend is withheld; the receiver's NACK backoff retries.
func (s *Sender) allowRecovery(n int, class Priority) bool {
	if s.cfg.RecoveryFrac <= 0 || s.cfg.RateBps <= 0 {
		return true
	}
	now := s.sched.Now()
	rate := s.cfg.RecoveryFrac * s.cfg.RateBps / 8 // bytes/s of budget
	burst := rate                                  // one second of headroom
	if !s.retxInit {
		s.retxTokens, s.retxInit = burst, true
	} else {
		s.retxTokens += now.Sub(s.retxLast).Seconds() * rate
		if s.retxTokens > burst {
			s.retxTokens = burst
		}
	}
	s.retxLast = now
	if class != Critical && s.retxTokens < float64(n) {
		s.Stats.RetxSuppressed++
		return false
	}
	s.retxTokens -= float64(n)
	return true
}

// resend recovers one ADU according to the stream policy.
func (s *Sender) resend(name uint64) {
	if s.inCustody(name) {
		// A downstream relay holds the ADU and answers NACKs itself;
		// resending from here would duplicate its recovery traffic
		// across the slowest hops of the path.
		s.Stats.CustodyNacks++
		return
	}
	switch s.cfg.Policy {
	case SenderBuffered:
		saved, ok := s.buffered[name]
		if !ok {
			s.Stats.UnfilledNacks++
			return
		}
		wireLen := saved.wireLen + len(saved.frags)*HeaderSize
		if s.cfg.Suite == SuiteAEAD {
			wireLen += len(saved.frags) * aeadTagSize
		}
		if !s.allowRecovery(wireLen, saved.class) {
			return
		}
		s.Stats.ResentADUs++
		// Zero-copy retransmit: the retained wire packets go out again
		// as-is (headers are identical on resend).
		s.emitFrags(name, saved.frags, true, true)
	case AppRecompute:
		if s.OnResend == nil {
			s.Stats.UnfilledNacks++
			return
		}
		tag, syntax, data, ok := s.OnResend(name)
		if !ok {
			s.Stats.UnfilledNacks++
			return
		}
		if !s.allowRecovery(len(data)+HeaderSize, Standard) {
			return
		}
		s.Stats.RecomputeADUs++
		s.m.ilpBytes.Add(int64(len(data)))
		frags, ck := s.packetize(name, data, s.scratch[:0])
		s.stamp(name, tag, syntax, len(data), ck, Standard, frags)
		s.emitFrags(name, frags, true, false)
		s.scratch = frags[:0]
	case NoRetransmit:
		// Receivers on NoRetransmit streams do not NACK; ignore any
		// that arrive.
	}
}
