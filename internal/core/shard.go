package alf

// The sharded endpoint: the paper's §7 argument made executable. "If
// the data is organized into ADUs, each ADU will contain enough
// information to control its own delivery" — so a receiver (or a whole
// transport node) can be split into parallel shards with no
// serializing hot spot. This file provides that split for up to
// millions of concurrent ALF flows:
//
//   - A flow table hashes every flow (ShardOf) onto one of N shards.
//   - Each shard owns a private event scheduler (one shard of a
//     sim.Group), a private buf.Pool arena, a private netsim.Network
//     with its own trunk links and seeded RNG, and a scoped metrics
//     view. Nothing on a shard's datapath is shared, so shards run on
//     parallel goroutines with no locks and no false sharing.
//   - Cross-shard traffic is limited to the control plane: directives
//     (Control, SetRateAll) and completion detection cross shards only
//     at epoch barriers, where every shard is idle and clocks agree.
//
// The execution model separates two knobs deliberately. Shards is
// topology: it fixes the flow hash, the per-shard RNG seeds, and the
// trunk capacity layout, so it is part of the experiment's identity.
// Workers is execution: how many OS goroutines drain those shards
// concurrently. Changing Workers must never change any virtual-time
// result — the determinism tests hold exactly that.

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/buf"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// FlowID names one flow of a sharded endpoint. The id is carried on
// the wire as an 8-byte encapsulation prefix (Config.Encap) in front
// of every ALF packet, so the destination shard can route a packet to
// its flow without parsing ALF headers — the ADU's own naming
// information is the dispatch key (§7).
type FlowID uint64

// flowIDSize is the wire size of the FlowID encapsulation prefix.
const flowIDSize = 8

// ShardOf maps a flow to its owning shard: a Fibonacci hash of the id
// folded onto [0, shards). Flows with adjacent ids land on different
// shards, so a contiguous id range load-balances evenly.
func ShardOf(id FlowID, shards int) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int((h >> 32) * uint64(shards) >> 32)
}

// Delivery is one delivered ADU in a shard's delivery log.
type Delivery struct {
	At    sim.Time // virtual delivery time
	Flow  FlowID
	Name  uint64
	Bytes int
}

// ShardedConfig parameterizes a sharded endpoint.
type ShardedConfig struct {
	// Shards is the number of logical shards (default 1). Shards is
	// part of the topology: it determines the flow hash, per-shard RNG
	// seeds, and how many trunk links carry the load. Two runs with
	// different Shards are different experiments.
	Shards int
	// Workers bounds the goroutines draining shards in parallel
	// (default Shards). Purely an execution knob: results are
	// identical for any value.
	Workers int
	// Seed derives every shard's netsim RNG (seed ^ shard-specific
	// mix), so one value pins the whole run.
	Seed int64
	// Flow is the per-flow Config template. StreamID, Pool, Encap, and
	// Metrics are overwritten per flow/shard; everything else (Policy,
	// MTU, rates, FEC, ...) applies to each flow as written. Tracer
	// must be nil when Workers > 1 (the span recorder is not
	// shard-safe).
	Flow Config
	// Link configures each shard's duplex trunk (client<->server).
	// RateBps is per-shard capacity: N shards carry N times this
	// aggregate, which is exactly the scaling claim BENCH_0006
	// measures.
	Link netsim.LinkConfig
	// CtrlEpoch is the barrier period of the control plane (default
	// 20 ms of virtual time): how often cross-shard directives apply
	// and completion is checked. It is the parallel-simulation
	// lookahead — shards never interact inside an epoch.
	CtrlEpoch sim.Duration
	// LogDeliveries records every delivered ADU in a per-shard log
	// (see Deliveries). Off for the million-flow benchmarks, on for
	// the determinism tests.
	LogDeliveries bool
	// Metrics, if non-nil, binds per-shard series — trunk link
	// counters and pool-arena counters, labeled shard=<i> via
	// Registry.Scope. Per-flow endpoint series are deliberately not
	// bound (a million flows must not mean a million series); flow
	// stats are aggregated by Stats instead. Sample snapshots only
	// while the group is idle (between Run calls or at a barrier).
	Metrics *metrics.Registry
	// OnBarrier, if non-nil, runs single-threaded at every barrier
	// epoch, after the workers have joined and directives applied, with
	// the barrier's virtual time. It is the sanctioned sampling point
	// for the telemetry plane's flight recorder (Recorder.SampleAt):
	// barriers land at deterministic epoch times regardless of Workers,
	// so recorded series stay bit-identical across worker counts.
	OnBarrier func(now sim.Time)
}

func (c *ShardedConfig) fill() {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Workers == 0 {
		c.Workers = c.Shards
	}
	if c.CtrlEpoch == 0 {
		c.CtrlEpoch = 20 * time.Millisecond
	}
}

// Flow is one ALF stream of a sharded endpoint: a Sender on the
// shard's client node and a Receiver on its server node, wired through
// the shard's trunk. Both halves run on the owning shard's scheduler;
// touch them only from that shard's callbacks or while the group is
// idle.
type Flow struct {
	ID       FlowID
	Sender   *Sender
	Receiver *Receiver

	shard *Shard
	encap [flowIDSize]byte
}

// Shard returns the flow's owning shard (for scheduling follow-on
// work on the right scheduler).
func (f *Flow) Shard() *Shard { return f.shard }

// ScheduleSend schedules one ADU submission on the flow's shard at
// virtual time at. data is captured by reference and read (copied into
// pooled wire buffers) when the event fires, so callers may share one
// payload across many flows but must not mutate it mid-run.
func (f *Flow) ScheduleSend(at sim.Time, tag uint64, syntax xcode.SyntaxID, data []byte) {
	f.shard.sched.At(at, func() { _, _ = f.Sender.Send(tag, syntax, data) })
}

// sendUp frames a control-plane []byte (heartbeats) with the flow id
// and sends it client->server on the shard trunk, via a pooled copy so
// the path stays allocation-free in steady state.
func (f *Flow) sendUp(p []byte) error { return f.frame(f.shard.up, p) }

// sendDown frames a control-plane []byte (CTRL releases/NACKs, FB
// reports) with the flow id and sends it server->client.
func (f *Flow) sendDown(p []byte) error { return f.frame(f.shard.down, p) }

func (f *Flow) frame(l *netsim.Link, p []byte) error {
	ref := f.shard.pool.GetHeadroom(len(p), flowIDSize)
	copy(ref.Bytes(), p)
	copy(ref.Prepend(flowIDSize), f.encap[:])
	return l.SendRef(ref)
}

// sendRef is the zero-copy data path: the fragment already carries the
// flow id (stamped into its Encap headroom), so it goes straight onto
// the trunk, ownership transferring to the link.
func (f *Flow) sendRef(ref *buf.Ref) error { return f.shard.up.SendRef(ref) }

// onADU is the default delivery handler: log (when configured) and
// recycle. Replace f.Receiver.OnADU before Run for custom handling;
// the replacement runs on the shard's worker goroutine.
func (f *Flow) onADU(adu ADU) {
	sh := f.shard
	sh.last = sh.sched.Now()
	if sh.logOn {
		sh.log = append(sh.log, Delivery{At: sh.last, Flow: f.ID, Name: adu.Name, Bytes: len(adu.Data)})
	}
	adu.Release()
}

// Shard is one parallel slice of a sharded endpoint. Everything it
// reaches — scheduler, pool arena, network, flows — is private to it
// between barriers.
type Shard struct {
	index int
	sched *sim.Scheduler
	pool  *buf.Pool
	net   *netsim.Network
	// client hosts the senders, server the receivers; up/down are the
	// two directions of the shard's trunk.
	client, server *netsim.Node
	up, down       *netsim.Link

	flows map[FlowID]*Flow
	order []FlowID // insertion-ordered; sorted before deterministic sweeps
	dirty bool     // order needs re-sorting

	logOn bool
	log   []Delivery
	last  sim.Time // most recent delivery (default OnADU handler)
}

// Index returns the shard's position in the group.
func (sh *Shard) Index() int { return sh.index }

// Scheduler returns the shard's private event scheduler.
func (sh *Shard) Scheduler() *sim.Scheduler { return sh.sched }

// Pool returns the shard's private buffer arena.
func (sh *Shard) Pool() *buf.Pool { return sh.pool }

// Trunk returns the shard's client->server link (the data direction).
func (sh *Shard) Trunk() *netsim.Link { return sh.up }

// Flows returns the number of flows on this shard.
func (sh *Shard) Flows() int { return len(sh.flows) }

// sorted returns the shard's flow ids in ascending order. Every sweep
// that touches all flows iterates this slice, never the map: map order
// would leak goroutine-invisible nondeterminism into directive
// application order exactly the way the PR-2 receiver-scan bug did.
func (sh *Shard) sorted() []FlowID {
	if sh.dirty {
		ids := sh.order
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		sh.dirty = false
	}
	return sh.order
}

// demuxData routes an arriving trunk packet (DATA, HB) to its flow's
// receiver by the 8-byte flow-id prefix.
func (sh *Shard) demuxData(p *netsim.Packet) {
	if len(p.Payload) < flowIDSize {
		return
	}
	id := FlowID(binary.BigEndian.Uint64(p.Payload[:flowIDSize]))
	if f := sh.flows[id]; f != nil {
		_ = f.Receiver.HandlePacket(p.Payload[flowIDSize:])
	}
}

// demuxCtrl routes a returning trunk packet (CTRL, FB) to its flow's
// sender.
func (sh *Shard) demuxCtrl(p *netsim.Packet) {
	if len(p.Payload) < flowIDSize {
		return
	}
	id := FlowID(binary.BigEndian.Uint64(p.Payload[:flowIDSize]))
	if f := sh.flows[id]; f != nil {
		_ = f.Sender.HandleControl(p.Payload[flowIDSize:])
	}
}

// Sharded is a transport endpoint sharded over N parallel workers: the
// flow table, the shard array, and the barrier-synchronized control
// plane. Construct with NewSharded, add flows, schedule traffic, Run.
type Sharded struct {
	cfg    ShardedConfig
	group  *sim.Group
	shards []*Shard
	flows  int

	// directives queued by Control/SetRateAll, applied at the next
	// epoch barrier in (shard, ascending flow id) order.
	directives []func(*Flow)
}

// NewSharded builds the shard array: per shard one scheduler, one pool
// arena, one seeded network with a duplex trunk, and the demux
// handlers. The flow table starts empty.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	if cfg.Shards < 0 || cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: negative Shards/Workers", ErrConfig)
	}
	if err := cfg.Flow.Validate(); err != nil {
		return nil, err
	}
	if cfg.Flow.Tracer != nil && (cfg.Workers > 1 || cfg.Workers == 0 && cfg.Shards > 1) {
		return nil, fmt.Errorf("%w: Flow.Tracer is not shard-safe with Workers > 1", ErrConfig)
	}
	cfg.fill()
	t := &Sharded{cfg: cfg, group: sim.NewGroup(cfg.Shards)}
	for i := 0; i < cfg.Shards; i++ {
		sh := &Shard{
			index: i,
			sched: t.group.Shard(i),
			pool:  buf.NewPool(),
			flows: make(map[FlowID]*Flow),
			logOn: cfg.LogDeliveries,
		}
		// Mix the shard index into the seed so shards draw independent
		// impairment sequences from one experiment seed.
		sh.net = netsim.New(sh.sched, cfg.Seed^int64(uint64(i+1)*0x9E3779B97F4A7C15))
		sh.net.SetPool(sh.pool)
		scope := cfg.Metrics.Scope(fmt.Sprintf("shard=%d", i))
		sh.net.SetMetrics(scope)
		sh.pool.BindMetrics(scope)
		sh.client = sh.net.NewNode("client")
		sh.server = sh.net.NewNode("server")
		sh.up, sh.down = sh.net.NewDuplex(sh.client, sh.server, cfg.Link)
		sh.client.SetHandler(sh.demuxCtrl)
		sh.server.SetHandler(sh.demuxData)
		t.shards = append(t.shards, sh)
	}
	return t, nil
}

// Shards returns the number of shards.
func (t *Sharded) Shards() int { return len(t.shards) }

// Workers returns the configured parallelism.
func (t *Sharded) Workers() int { return t.cfg.Workers }

// Flows returns the total number of flows.
func (t *Sharded) Flows() int { return t.flows }

// Shard returns shard i.
func (t *Sharded) Shard(i int) *Shard { return t.shards[i] }

// Now returns the endpoint's virtual time (the barrier time after Run).
func (t *Sharded) Now() sim.Time { return t.group.Now() }

// LastDelivery returns the virtual time of the latest ADU delivery
// across all shards — the workload makespan, free of the post-drain
// epochs Run spends sweeping parked timers. Only maintained by the
// default per-flow OnADU handler.
func (t *Sharded) LastDelivery() sim.Time {
	var max sim.Time
	for _, sh := range t.shards {
		if sh.last > max {
			max = sh.last
		}
	}
	return max
}

// Fired returns the total events executed across all shard schedulers.
func (t *Sharded) Fired() uint64 { return t.group.Fired() }

// AddFlow creates flow id on its hash-assigned shard and returns it.
// Call only while the group is idle (before Run or between runs).
func (t *Sharded) AddFlow(id FlowID) (*Flow, error) {
	sh := t.shards[ShardOf(id, len(t.shards))]
	if _, dup := sh.flows[id]; dup {
		return nil, fmt.Errorf("%w: duplicate flow id %d", ErrConfig, id)
	}
	f := &Flow{ID: id, shard: sh}
	binary.BigEndian.PutUint64(f.encap[:], uint64(id))

	cfg := t.cfg.Flow
	cfg.StreamID = byte(id) // secondary check; the encap prefix routes
	cfg.Pool = sh.pool
	cfg.Metrics = nil // per-flow series would not scale; see ShardedConfig.Metrics
	cfg.Encap = f.encap[:]

	snd, err := NewSender(sh.sched, f.sendUp, cfg)
	if err != nil {
		return nil, err
	}
	snd.SendRef = f.sendRef
	rcv, err := NewReceiver(sh.sched, f.sendDown, cfg)
	if err != nil {
		return nil, err
	}
	rcv.OnADU = f.onADU
	f.Sender, f.Receiver = snd, rcv

	sh.flows[id] = f
	sh.order = append(sh.order, id)
	sh.dirty = true
	t.flows++
	return f, nil
}

// Flow returns the flow with the given id, or nil.
func (t *Sharded) Flow(id FlowID) *Flow {
	return t.shards[ShardOf(id, len(t.shards))].flows[id]
}

// Control queues a directive for every flow, applied single-threaded
// at the next epoch barrier in (shard, ascending flow id) order — the
// only cross-shard channel. Safe to call between runs or from a
// previous directive; never call it from shard callbacks.
func (t *Sharded) Control(fn func(*Flow)) {
	t.directives = append(t.directives, fn)
}

// SetRateAll re-paces every flow's sender at the next barrier (§3
// out-of-band rate control, fleet-wide).
func (t *Sharded) SetRateAll(bps float64) {
	t.Control(func(f *Flow) { f.Sender.SetRate(bps) })
}

// exchange is the barrier callback: apply queued directives while all
// shards are idle and aligned, then give the observability hook its
// single-threaded safe point. Returns whether new work may exist.
func (t *Sharded) exchange(now sim.Time) bool {
	more := len(t.directives) > 0
	if more {
		ds := t.directives
		t.directives = nil
		for _, sh := range t.shards {
			for _, id := range sh.sorted() {
				f := sh.flows[id]
				for _, d := range ds {
					d(f)
				}
			}
		}
	}
	if t.cfg.OnBarrier != nil {
		t.cfg.OnBarrier(now)
	}
	return more
}

// Run drains the endpoint to quiescence: epochs of CtrlEpoch virtual
// time executed by up to Workers goroutines, directives applied at
// each barrier, ending when every shard's queue is empty and no
// directives remain. Senders' heartbeat/retire timers park themselves
// once their streams settle, so a healthy run terminates on its own.
func (t *Sharded) Run() error {
	return t.group.RunEpochs(t.cfg.CtrlEpoch, t.cfg.Workers, t.exchange)
}

// RunUntil advances every shard to exactly deadline (no barriers, no
// directive application) — the building block for tests that step
// virtual time by hand.
func (t *Sharded) RunUntil(deadline sim.Time) error {
	return t.group.RunUntil(deadline, t.cfg.Workers)
}

// Deliveries merges the per-shard delivery logs (LogDeliveries) into
// one sequence ordered by (time, shard, intra-shard order). The merge
// is deterministic: two runs that agree per shard agree globally.
func (t *Sharded) Deliveries() []Delivery {
	total := 0
	for _, sh := range t.shards {
		total += len(sh.log)
	}
	out := make([]Delivery, 0, total)
	idx := make([]int, len(t.shards))
	for len(out) < total {
		best := -1
		for i, sh := range t.shards {
			if idx[i] >= len(sh.log) {
				continue
			}
			if best < 0 || sh.log[idx[i]].At < t.shards[best].log[idx[best]].At {
				best = i
			}
		}
		out = append(out, t.shards[best].log[idx[best]])
		idx[best]++
	}
	return out
}

// ShardedStats aggregates every flow's endpoint counters and every
// trunk's link counters. Field-by-field sums of the per-flow structs;
// computed on demand, so call it while the group is idle.
type ShardedStats struct {
	Flows int
	Send  SenderStats
	Recv  ReceiverStats
	Trunk netsim.LinkStats // both directions of every shard trunk
}

// Stats sweeps shards and flows in deterministic order and returns the
// aggregate.
func (t *Sharded) Stats() ShardedStats {
	var out ShardedStats
	out.Flows = t.flows
	for _, sh := range t.shards {
		for _, id := range sh.sorted() {
			f := sh.flows[id]
			addSenderStats(&out.Send, &f.Sender.Stats)
			addReceiverStats(&out.Recv, &f.Receiver.Stats)
		}
		addLinkStats(&out.Trunk, &sh.up.Stats)
		addLinkStats(&out.Trunk, &sh.down.Stats)
	}
	return out
}

func addSenderStats(dst, src *SenderStats) {
	dst.ADUs += src.ADUs
	dst.Fragments += src.Fragments
	dst.Bytes += src.Bytes
	dst.ResentADUs += src.ResentADUs
	dst.RecomputeADUs += src.RecomputeADUs
	dst.ResentFrags += src.ResentFrags
	dst.UnfilledNacks += src.UnfilledNacks
	dst.Released += src.Released
	dst.DeadlineDrops += src.DeadlineDrops
	dst.CtrlReceived += src.CtrlReceived
	dst.CtrlDropped += src.CtrlDropped
	dst.Heartbeats += src.Heartbeats
	dst.ParityFrags += src.ParityFrags
	dst.ShedADUs += src.ShedADUs
	dst.FeedbackRecv += src.FeedbackRecv
	dst.RateChanges += src.RateChanges
	dst.RetxSuppressed += src.RetxSuppressed
	dst.WireBytes += src.WireBytes
}

func addReceiverStats(dst, src *ReceiverStats) {
	dst.Fragments += src.Fragments
	dst.FragmentBytes += src.FragmentBytes
	dst.HeaderDrops += src.HeaderDrops
	dst.DupFragments += src.DupFragments
	dst.LateFragments += src.LateFragments
	dst.Inconsistent += src.Inconsistent
	dst.TooLarge += src.TooLarge
	dst.ADUsDelivered += src.ADUsDelivered
	dst.ADUsLost += src.ADUsLost
	dst.OutOfOrder += src.OutOfOrder
	dst.ChecksumFails += src.ChecksumFails
	dst.NacksSent += src.NacksSent
	dst.CtrlSent += src.CtrlSent
	dst.Heartbeats += src.Heartbeats
	dst.ParityFrags += src.ParityFrags
	dst.FECRecovered += src.FECRecovered
	dst.FeedbackSent += src.FeedbackSent
	dst.WireBytes += src.WireBytes
	dst.DeliveredBytes += src.DeliveredBytes
}

func addLinkStats(dst, src *netsim.LinkStats) {
	dst.Sent += src.Sent
	dst.SentBytes += src.SentBytes
	dst.Delivered += src.Delivered
	dst.DeliveredBytes += src.DeliveredBytes
	dst.QueueDrops += src.QueueDrops
	dst.ShrinkDrops += src.ShrinkDrops
	dst.LineLosses += src.LineLosses
	dst.DownDrops += src.DownDrops
	dst.HeldPackets += src.HeldPackets
	dst.Dups += src.Dups
	dst.Reordered += src.Reordered
	dst.Corrupted += src.Corrupted
	dst.Rejected += src.Rejected
	if src.MaxQueue > dst.MaxQueue {
		dst.MaxQueue = src.MaxQueue // high-water mark aggregates by max, not sum
	}
}
