package alf

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// TestShardOfBalance: the Fibonacci hash spreads a contiguous id range
// evenly and deterministically.
func TestShardOfBalance(t *testing.T) {
	const shards, flows = 8, 10000
	var counts [shards]int
	for id := 0; id < flows; id++ {
		s := ShardOf(FlowID(id), shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf(%d, %d) = %d out of range", id, shards, s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < flows/shards/2 || c > flows/shards*2 {
			t.Fatalf("shard %d holds %d of %d flows (poor balance: %v)", s, c, flows, counts)
		}
	}
	if ShardOf(12345, 8) != ShardOf(12345, 8) {
		t.Fatal("ShardOf not deterministic")
	}
}

// shardedTraffic builds a sharded endpoint, schedules a fixed traffic
// matrix, runs it to quiescence, and returns the merged delivery log
// and aggregate stats. Everything about the run is pinned except the
// worker count — the knob the determinism test turns.
func shardedTraffic(t *testing.T, workers int) ([]Delivery, ShardedStats) {
	t.Helper()
	ep, err := NewSharded(ShardedConfig{
		Shards:        4,
		Workers:       workers,
		Seed:          42,
		LogDeliveries: true,
		Flow: Config{
			Policy:    SenderBuffered,
			NackDelay: 5 * time.Millisecond,
			HoldTime:  500 * time.Millisecond,
		},
		Link: netsim.LinkConfig{
			RateBps:  8e6,
			Delay:    2 * time.Millisecond,
			LossProb: 0.05,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const flows, adus = 48, 4
	payload := make([]byte, 1500)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	for id := 0; id < flows; id++ {
		f, err := ep.AddFlow(FlowID(id))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < adus; k++ {
			// Stagger submissions so shard queues interleave in time.
			at := sim.Time(id*100_000 + k*3_000_000)
			f.ScheduleSend(at, uint64(k), xcode.SyntaxRaw, payload)
		}
	}
	if err := ep.Run(); err != nil {
		t.Fatal(err)
	}
	st := ep.Stats()
	if st.Recv.ADUsDelivered+st.Recv.ADUsLost != flows*adus {
		t.Fatalf("workers=%d: %d delivered + %d lost != %d submitted",
			workers, st.Recv.ADUsDelivered, st.Recv.ADUsLost, flows*adus)
	}
	if st.Recv.ADUsDelivered == 0 {
		t.Fatalf("workers=%d: nothing delivered", workers)
	}
	return ep.Deliveries(), st
}

// TestShardedDeterministicAcrossWorkers is the PR's §7 safety claim:
// the worker count is pure execution parallelism. Same seed, same
// shards -> byte-identical delivery order and identical aggregate
// stats for 1, 2, and 8 workers, on a lossy reordering network with
// live NACK recovery. Run under -race this also proves the shard
// isolation: no two goroutines ever touch one shard's state.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	baseLog, baseStats := shardedTraffic(t, 1)
	for _, workers := range []int{2, 8} {
		log, stats := shardedTraffic(t, workers)
		if !reflect.DeepEqual(stats, baseStats) {
			t.Fatalf("workers=%d: stats diverge from workers=1:\n got %+v\nwant %+v", workers, stats, baseStats)
		}
		if len(log) != len(baseLog) {
			t.Fatalf("workers=%d: %d deliveries, want %d", workers, len(log), len(baseLog))
		}
		for i := range log {
			if log[i] != baseLog[i] {
				t.Fatalf("workers=%d: delivery %d = %+v, want %+v", workers, i, log[i], baseLog[i])
			}
		}
	}
}

// TestShardedControlDirectives: directives apply at epoch barriers to
// every flow, in deterministic order, and only at barriers.
func TestShardedControlDirectives(t *testing.T) {
	ep, err := NewSharded(ShardedConfig{
		Shards: 2,
		Seed:   7,
		Flow:   Config{Policy: NoRetransmit, RateBps: 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 8; id++ {
		if _, err := ep.AddFlow(FlowID(id)); err != nil {
			t.Fatal(err)
		}
	}
	var order []FlowID
	ep.Control(func(f *Flow) { order = append(order, f.ID) })
	ep.SetRateAll(5e5)
	if err := ep.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("directive visited %d flows, want 8", len(order))
	}
	// Within each shard ids ascend; shards visit in index order.
	seen := map[FlowID]bool{}
	last := -1
	shard := -1
	for _, id := range order {
		s := ShardOf(id, 2)
		if s != shard {
			if s < shard {
				t.Fatalf("shards out of order in %v", order)
			}
			shard, last = s, -1
		}
		if int(id) < last {
			t.Fatalf("ids out of order in %v", order)
		}
		last = int(id)
		seen[id] = true
	}
	if len(seen) != 8 {
		t.Fatalf("directive missed flows: %v", order)
	}
	for id := 0; id < 8; id++ {
		if got := ep.Flow(FlowID(id)).Sender.Rate(); got != 5e5 {
			t.Fatalf("flow %d rate %v after SetRateAll(5e5)", id, got)
		}
	}
}

// TestShardedEncapRoundtrip: the 8-byte flow-id encapsulation routes
// data, heartbeats, control, and feedback between the right endpoint
// pairs even when many flows share a trunk, and the feedback loop's
// byte accounting balances (no phantom loss from the stripped prefix).
func TestShardedEncapRoundtrip(t *testing.T) {
	ep, err := NewSharded(ShardedConfig{
		Shards: 1,
		Seed:   3,
		Flow: Config{
			Policy:           SenderBuffered,
			RateBps:          64e6,
			FeedbackInterval: 10 * time.Millisecond,
		},
		Link: netsim.LinkConfig{RateBps: 64e6, Delay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	const flows = 3
	payload := make([]byte, 4096)
	for id := 0; id < flows; id++ {
		f, err := ep.AddFlow(FlowID(id))
		if err != nil {
			t.Fatal(err)
		}
		f.ScheduleSend(0, 9, xcode.SyntaxRaw, payload)
	}
	if err := ep.Run(); err != nil {
		t.Fatal(err)
	}
	st := ep.Stats()
	if st.Recv.ADUsDelivered != flows {
		t.Fatalf("delivered %d of %d", st.Recv.ADUsDelivered, flows)
	}
	// Lossless path: the receivers' encap-adjusted wire count must match
	// the senders' exactly, or the §3 loop would see phantom loss.
	if st.Recv.WireBytes != st.Send.WireBytes {
		t.Fatalf("wire accounting skewed: recv %d != sent %d (encap %d bytes/pkt)",
			st.Recv.WireBytes, st.Send.WireBytes, flowIDSize)
	}
	if st.Send.FeedbackRecv == 0 {
		t.Fatal("no feedback crossed the encapsulated control path")
	}
	if st.Send.Released != flows {
		t.Fatalf("released %d of %d buffered ADUs", st.Send.Released, flows)
	}
}

// TestShardedSendZeroAlloc extends the alloc-guard to the sharded hot
// path: Send -> packetize (encap headroom) -> flow-id stamp -> trunk
// SendRef -> demux -> HandlePacket -> deliver -> Release, across two
// shards' private arenas. Steady state must not allocate.
func TestShardedSendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	ep, err := NewSharded(ShardedConfig{
		Shards: 2,
		Seed:   1,
		Flow:   Config{Policy: NoRetransmit},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One flow per shard, found by probing the hash.
	var fa, fb *Flow
	for id := FlowID(0); fa == nil || fb == nil; id++ {
		f, err := ep.AddFlow(id)
		if err != nil {
			t.Fatal(err)
		}
		if ShardOf(id, 2) == 0 && fa == nil {
			fa = f
		} else if ShardOf(id, 2) == 1 && fb == nil {
			fb = f
		}
	}
	data := make([]byte, benchADUBytes)
	for i := range data {
		data[i] = byte(i)
	}
	send := func() {
		for _, f := range []*Flow{fa, fb} {
			if _, err := f.Sender.Send(0, xcode.SyntaxRaw, data); err != nil {
				t.Fatal(err)
			}
			s := f.shard.sched
			_ = s.RunUntil(s.Now()) // zero-delay trunk: drain without advancing time
		}
	}
	for i := 0; i < 8; i++ {
		send() // warm both shards' pools, packet freelists, event freelists
	}
	if allocs := testing.AllocsPerRun(100, send); allocs != 0 {
		t.Fatalf("sharded steady-state datapath allocates %v allocs/op, want 0", allocs)
	}
	st := ep.Stats()
	if st.Recv.ADUsDelivered == 0 || st.Recv.ADUsDelivered != st.Send.ADUs {
		t.Fatalf("delivered %d of %d", st.Recv.ADUsDelivered, st.Send.ADUs)
	}
}
