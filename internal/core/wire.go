package alf

import (
	"encoding/binary"
	"fmt"

	"repro/internal/checksum"
	"repro/internal/xcode"
)

// HeaderSize is the DATA fragment header length.
//
// Layout (big-endian):
//
//	0      type (1=DATA, 2=CTRL)
//	1      stream id
//	2:10   ADU name
//	10:18  application tag
//	18     transfer syntax id
//	19     flags (bit0: payload enciphered)
//	20:24  ADU total length
//	24:28  fragment offset within the ADU
//	28:30  fragment payload length
//	30:32  ADU checksum (Internet checksum of the whole plaintext ADU)
//	32:34  header checksum
//
// Note what is absent: no byte-stream sequence number. Every field
// describes the ADU — the delivery information travels with the data,
// "not just visible at the application protocol layer but to all the
// protocol functions" (§7).
const HeaderSize = 34

// Packet types.
const (
	typeData = 1
	typeCtrl = 2
	typeHB   = 3
	typeFB   = 4
	typeCA   = 5
)

// Header flags.
const (
	flagEnciphered = 1 << 0
	// flagParity marks a forward-error-correction fragment: its payload
	// is the XOR of the data fragments whose offsets lie in
	// [FragOff, FragOff + FECGroup*fragPayload), each zero-padded to
	// the parity's FragLen. TotalLen and the ADU checksum describe the
	// ADU as usual so a parity fragment can also create the reassembly
	// state.
	flagParity = 1 << 1
	// flagCritical marks a fragment of a Critical-priority ADU. The
	// class normally never travels on the wire (shedding is a
	// sender-side decision), but custody relays need it: a bounded
	// custody store sheds and evicts non-Critical ADUs first, and the
	// only place a relay can learn the class is the fragment header.
	flagCritical = 1 << 2
	// flagAEAD marks a SuiteAEAD fragment: the payload is ChaCha20
	// ciphertext and a 16-byte Poly1305 tag follows it on the wire
	// (total payload bytes = FragLen + aeadTagSize). The ADU-checksum
	// header field is zero — the tag is the integrity pass. On a
	// parity fragment the tag covers the parity blob itself (the XOR
	// of the group's ciphertexts), so a reconstructed fragment is
	// authenticated transitively by the parity tag and the surviving
	// fragments' tags.
	flagAEAD = 1 << 3
)

// header is the decoded DATA fragment header.
type header struct {
	Stream   byte
	Name     uint64
	Tag      uint64
	Syntax   xcode.SyntaxID
	Flags    byte
	TotalLen int
	FragOff  int
	FragLen  int
	ADUCheck uint16
}

// putHeader encodes h into buf[:HeaderSize] and stamps the header
// checksum.
func putHeader(buf []byte, h *header) {
	buf[0] = typeData
	buf[1] = h.Stream
	binary.BigEndian.PutUint64(buf[2:10], h.Name)
	binary.BigEndian.PutUint64(buf[10:18], h.Tag)
	buf[18] = byte(h.Syntax)
	buf[19] = h.Flags
	binary.BigEndian.PutUint32(buf[20:24], uint32(h.TotalLen))
	binary.BigEndian.PutUint32(buf[24:28], uint32(h.FragOff))
	binary.BigEndian.PutUint16(buf[28:30], uint16(h.FragLen))
	binary.BigEndian.PutUint16(buf[30:32], h.ADUCheck)
	buf[32], buf[33] = 0, 0
	ck := checksum.Sum16(buf[:HeaderSize])
	binary.BigEndian.PutUint16(buf[32:34], ck)
}

// parseHeader decodes and verifies a DATA fragment header. It returns
// the header by value so the per-packet hot path does not allocate.
func parseHeader(pkt []byte) (header, error) {
	if len(pkt) < HeaderSize {
		return header{}, fmt.Errorf("%w: %d bytes", ErrBadHeader, len(pkt))
	}
	if !checksum.Verify16(pkt[:HeaderSize]) {
		return header{}, fmt.Errorf("%w: header checksum", ErrBadHeader)
	}
	if pkt[0] != typeData {
		return header{}, fmt.Errorf("%w: type %d", ErrBadHeader, pkt[0])
	}
	h := header{
		Stream:   pkt[1],
		Name:     binary.BigEndian.Uint64(pkt[2:10]),
		Tag:      binary.BigEndian.Uint64(pkt[10:18]),
		Syntax:   xcode.SyntaxID(pkt[18]),
		Flags:    pkt[19],
		TotalLen: int(binary.BigEndian.Uint32(pkt[20:24])),
		FragOff:  int(binary.BigEndian.Uint32(pkt[24:28])),
		FragLen:  int(binary.BigEndian.Uint16(pkt[28:30])),
		ADUCheck: binary.BigEndian.Uint16(pkt[30:32]),
	}
	need := HeaderSize + h.FragLen
	if h.Flags&flagAEAD != 0 {
		need += aeadTagSize
	}
	if len(pkt) < need {
		return header{}, fmt.Errorf("%w: fragment truncated", ErrBadHeader)
	}
	if h.TotalLen < 0 || h.FragOff < 0 || h.FragOff+h.FragLen > h.TotalLen {
		if !(h.TotalLen == 0 && h.FragLen == 0 && h.FragOff == 0) {
			return header{}, fmt.Errorf("%w: bounds (%d+%d of %d)", ErrBadHeader, h.FragOff, h.FragLen, h.TotalLen)
		}
	}
	if h.FragOff%8 != 0 {
		return header{}, fmt.Errorf("%w: unaligned fragment offset %d", ErrBadHeader, h.FragOff)
	}
	return h, nil
}

// Control message layout (big-endian):
//
//	0      type (2=CTRL)
//	1      stream id
//	2:10   cumulative resolved name: every ADU named < this is settled
//	10:12  NACK count k (whole-ADU recovery requests)
//	12:..  k * 8-byte ADU names
//	..+2   header checksum over the whole message
type control struct {
	Stream byte
	Cum    uint64
	Nacks  []uint64
}

// maxNacksPerMsg bounds one control message to stay under typical MTUs.
const maxNacksPerMsg = 64

func encodeControl(c *control) []byte {
	n := len(c.Nacks)
	msg := make([]byte, 12+8*n+2)
	msg[0] = typeCtrl
	msg[1] = c.Stream
	binary.BigEndian.PutUint64(msg[2:10], c.Cum)
	binary.BigEndian.PutUint16(msg[10:12], uint16(n))
	for i, name := range c.Nacks {
		binary.BigEndian.PutUint64(msg[12+8*i:], name)
	}
	ck := checksum.Sum16(msg)
	binary.BigEndian.PutUint16(msg[len(msg)-2:], ck)
	return msg
}

func parseControl(pkt []byte) (*control, error) {
	if len(pkt) < 14 || pkt[0] != typeCtrl {
		return nil, fmt.Errorf("%w: control", ErrBadHeader)
	}
	if !checksum.Verify16(pkt) {
		return nil, fmt.Errorf("%w: control checksum", ErrBadHeader)
	}
	n := int(binary.BigEndian.Uint16(pkt[10:12]))
	if len(pkt) != 12+8*n+2 {
		return nil, fmt.Errorf("%w: control length %d for %d nacks", ErrBadHeader, len(pkt), n)
	}
	c := &control{Stream: pkt[1], Cum: binary.BigEndian.Uint64(pkt[2:10])}
	for i := 0; i < n; i++ {
		c.Nacks = append(c.Nacks, binary.BigEndian.Uint64(pkt[12+8*i:]))
	}
	return c, nil
}

// Heartbeat layout (big-endian): the sender's periodic declaration of
// how far the stream extends, so a receiver can detect gaps even when
// the tail of the stream is lost entirely (a pure NACK scheme is blind
// to losses after the last arrival).
//
//	0     type (3=HB)
//	1     stream id
//	2:10  next unassigned ADU name (everything below exists)
//	10:12 checksum
const heartbeatSize = 12

func encodeHeartbeat(stream byte, next uint64) []byte {
	msg := make([]byte, heartbeatSize)
	msg[0] = typeHB
	msg[1] = stream
	binary.BigEndian.PutUint64(msg[2:10], next)
	binary.BigEndian.PutUint16(msg[10:12], checksum.Sum16(msg))
	return msg
}

func parseHeartbeat(pkt []byte) (stream byte, next uint64, err error) {
	if len(pkt) != heartbeatSize || pkt[0] != typeHB || !checksum.Verify16(pkt) {
		return 0, 0, fmt.Errorf("%w: heartbeat", ErrBadHeader)
	}
	return pkt[1], binary.BigEndian.Uint64(pkt[2:10]), nil
}

// Feedback layout (big-endian): the receiver's periodic delivery
// report, the other half of the §3 rate-based control loop. The
// counters are cumulative since stream start, so a lost or reordered
// report only delays the sender's view — it never corrupts it (the
// sender keeps the last sequence number it processed and drops stale
// reports). The sender turns consecutive reports into per-interval
// deltas (RateSample) for its RateController.
//
//	0     type (4=FB)
//	1     stream id
//	2:6   report sequence number
//	6:14  wire bytes accepted, cumulative (headers + payload, dups and
//	      late fragments included: what the network delivered)
//	14:22 verified ADU payload bytes delivered, cumulative (goodput)
//	22:24 checksum over the whole message
const feedbackSize = 24

// encodeFeedback writes the report into buf[:feedbackSize] and returns
// that slice. The receiver passes a reused scratch buffer so the
// periodic report allocates nothing.
func encodeFeedback(buf []byte, stream byte, seq uint32, wire, good uint64) []byte {
	msg := buf[:feedbackSize]
	msg[0] = typeFB
	msg[1] = stream
	binary.BigEndian.PutUint32(msg[2:6], seq)
	binary.BigEndian.PutUint64(msg[6:14], wire)
	binary.BigEndian.PutUint64(msg[14:22], good)
	msg[22], msg[23] = 0, 0
	binary.BigEndian.PutUint16(msg[22:24], checksum.Sum16(msg))
	return msg
}

// parseFeedback decodes and verifies a feedback report. Values return
// by value so the per-report path does not allocate.
func parseFeedback(pkt []byte) (stream byte, seq uint32, wire, good uint64, err error) {
	if len(pkt) != feedbackSize || pkt[0] != typeFB || !checksum.Verify16(pkt) {
		return 0, 0, 0, 0, fmt.Errorf("%w: feedback", ErrBadHeader)
	}
	return pkt[1], binary.BigEndian.Uint32(pkt[2:6]),
		binary.BigEndian.Uint64(pkt[6:14]), binary.BigEndian.Uint64(pkt[14:22]), nil
}

// Custody-ack layout (big-endian): a store-and-forward relay's
// declaration that it now holds complete copies of the named ADUs and
// accepts responsibility for delivering them downstream (DTN-style
// custody transfer). On receipt the upstream custodian — the original
// sender, or another relay — may release its own retained copy and
// stop answering NACKs for those names: recovery responsibility has
// moved one hop closer to the receiver.
//
//	0      type (5=CA)
//	1      stream id
//	2      relay id (which custodian is speaking; 0 = unspecified)
//	3      pad (keeps the frame even and the checksum slot aligned)
//	4:12   custody frontier: every ADU named < this is in custody
//	12:14  count k of individually-named ADUs >= the frontier
//	14:..  k * 8-byte ADU names
//	..+2   checksum over the whole message
const custodyAckMin = 16

// CustodyAck is a decoded custody-transfer acknowledgment. It is
// exported (with EncodeCustody/ParseCustody) because custody frames
// are produced by relay nodes outside this package, not by the
// endpoints.
type CustodyAck struct {
	Stream byte
	Relay  byte
	// Cum is the custody frontier: every ADU named < Cum is held
	// downstream.
	Cum uint64
	// Names lists ADUs >= Cum taken into custody out of order. At most
	// MaxCustodyNames fit one frame.
	Names []uint64
}

// MaxCustodyNames bounds one custody-ack frame to stay under typical
// MTUs, mirroring the NACK bound on control messages.
const MaxCustodyNames = maxNacksPerMsg

// EncodeCustody encodes a custody acknowledgment for the wire.
func EncodeCustody(ca *CustodyAck) []byte {
	n := len(ca.Names)
	msg := make([]byte, 14+8*n+2)
	msg[0] = typeCA
	msg[1] = ca.Stream
	msg[2] = ca.Relay
	binary.BigEndian.PutUint64(msg[4:12], ca.Cum)
	binary.BigEndian.PutUint16(msg[12:14], uint16(n))
	for i, name := range ca.Names {
		binary.BigEndian.PutUint64(msg[14+8*i:], name)
	}
	ck := checksum.Sum16(msg)
	binary.BigEndian.PutUint16(msg[len(msg)-2:], ck)
	return msg
}

// ParseCustody decodes and verifies a custody acknowledgment.
func ParseCustody(pkt []byte) (CustodyAck, error) {
	if len(pkt) < custodyAckMin || pkt[0] != typeCA {
		return CustodyAck{}, fmt.Errorf("%w: custody", ErrBadHeader)
	}
	if !checksum.Verify16(pkt) {
		return CustodyAck{}, fmt.Errorf("%w: custody checksum", ErrBadHeader)
	}
	n := int(binary.BigEndian.Uint16(pkt[12:14]))
	if len(pkt) != 14+8*n+2 {
		return CustodyAck{}, fmt.Errorf("%w: custody length %d for %d names", ErrBadHeader, len(pkt), n)
	}
	ca := CustodyAck{Stream: pkt[1], Relay: pkt[2], Cum: binary.BigEndian.Uint64(pkt[4:12])}
	for i := 0; i < n; i++ {
		ca.Names = append(ca.Names, binary.BigEndian.Uint64(pkt[14+8*i:]))
	}
	return ca, nil
}

// FragmentInfo is the relay-facing view of a DATA fragment header:
// exactly the delivery information §7 says should be "visible to all
// the protocol functions", here read by an intermediate custody node
// that never decodes payloads.
type FragmentInfo struct {
	Stream   byte
	Name     uint64
	TotalLen int
	FragOff  int
	FragLen  int
	// Critical reports the flagCritical bit: this fragment belongs to
	// an ADU the application declared must survive.
	Critical bool
	// Parity reports a FEC parity fragment; parity does not count
	// toward TotalLen when judging reassembly completeness.
	Parity bool
}

// SniffFragment decodes a DATA fragment header for an intermediary.
// It returns ok=false for anything that is not a well-formed DATA
// fragment (wrong type, bad checksum, truncated).
func SniffFragment(pkt []byte) (FragmentInfo, bool) {
	h, err := parseHeader(pkt)
	if err != nil {
		return FragmentInfo{}, false
	}
	return FragmentInfo{
		Stream:   h.Stream,
		Name:     h.Name,
		TotalLen: h.TotalLen,
		FragOff:  h.FragOff,
		FragLen:  h.FragLen,
		Critical: h.Flags&flagCritical != 0,
		Parity:   h.Flags&flagParity != 0,
	}, true
}

// ControlInfo is the relay-facing view of a control message. A custody
// relay intercepts receiver NACKs, answers the ones it can serve from
// its own store, and re-encodes the remainder for the upstream hop.
type ControlInfo struct {
	Stream byte
	Cum    uint64
	Nacks  []uint64
}

// ParseControlInfo decodes and verifies a control message for an
// intermediary.
func ParseControlInfo(pkt []byte) (ControlInfo, error) {
	c, err := parseControl(pkt)
	if err != nil {
		return ControlInfo{}, err
	}
	return ControlInfo{Stream: c.Stream, Cum: c.Cum, Nacks: c.Nacks}, nil
}

// EncodeControlInfo re-encodes a (possibly filtered) control message.
func EncodeControlInfo(ci ControlInfo) []byte {
	return encodeControl(&control{Stream: ci.Stream, Cum: ci.Cum, Nacks: ci.Nacks})
}

// PacketType inspects a wire packet and reports whether it is an ALF
// DATA fragment (1), control message (2), heartbeat (3), feedback
// report (4), custody ack (5), or unknown (0). Useful for
// demultiplexers that share a node between protocols. DATA and HB
// packets flow sender->receiver; CTRL, FB, and CA flow back.
func PacketType(pkt []byte) int {
	if len(pkt) == 0 {
		return 0
	}
	switch pkt[0] {
	case typeData, typeCtrl, typeHB, typeFB, typeCA:
		return int(pkt[0])
	default:
		return 0
	}
}
