package alf

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// benchADUBytes is the steady-state ADU size: 8 fragments at the
// default 1024-byte fragment payload.
const benchADUBytes = 8 << 10

// BenchmarkSendSteadyState measures the full transport datapath: one
// ADU submitted at the source, fragmented, carried over a two-hop
// netsim route (source -> router -> destination), reassembled, and
// delivered. NoRetransmit keeps retention out of the picture; zero
// delay and zero loss keep every packet on the steady-state path.
func BenchmarkSendSteadyState(b *testing.B) {
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	src := n.NewNode("src")
	rtr := n.NewRouter("rtr")
	dst := n.NewNode("dst")
	sl, _ := n.NewDuplex(src, rtr.Node, netsim.LinkConfig{})
	rd, _ := n.NewDuplex(rtr.Node, dst, netsim.LinkConfig{})
	rtr.AddRoute(dst, rd)

	snd, err := NewSender(s, func(p []byte) error { return netsim.SendVia(sl, dst, p) },
		Config{Policy: NoRetransmit})
	if err != nil {
		b.Fatal(err)
	}
	snd.SendRef = func(ref *buf.Ref) error { return netsim.SendRefVia(sl, dst, ref) }
	rcv, err := NewReceiver(s, nil, Config{Policy: NoRetransmit})
	if err != nil {
		b.Fatal(err)
	}
	delivered := 0
	rcv.OnADU = func(adu ADU) { delivered++; adu.Release() }
	dst.SetHandler(func(p *netsim.Packet) { _ = rcv.HandlePacket(p.Payload) })

	data := make([]byte, benchADUBytes)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(benchADUBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, data); err != nil {
			b.Fatal(err)
		}
		// Zero-delay topology: drain everything scheduled for "now"
		// without advancing the clock (periodic timers stay pending).
		_ = s.RunUntil(s.Now())
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkReceivePath measures packetization plus reassembly with the
// network removed: the sender's emit path hands each wire fragment
// straight to the receiver.
func BenchmarkReceivePath(b *testing.B) {
	s := sim.NewScheduler()
	var rcv *Receiver
	snd, err := NewSender(s, func(p []byte) error { return rcv.HandlePacket(p) },
		Config{Policy: NoRetransmit})
	if err != nil {
		b.Fatal(err)
	}
	snd.SendRef = func(ref *buf.Ref) error {
		err := rcv.HandlePacket(ref.Bytes())
		ref.Release()
		return err
	}
	rcv, err = NewReceiver(s, nil, Config{Policy: NoRetransmit})
	if err != nil {
		b.Fatal(err)
	}
	delivered := 0
	rcv.OnADU = func(adu ADU) { delivered++; adu.Release() }

	data := make([]byte, benchADUBytes)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(benchADUBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, data); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkFECSender measures the sender datapath with FEC parity
// accumulation enabled (one parity fragment per 4 data fragments).
func BenchmarkFECSender(b *testing.B) {
	s := sim.NewScheduler()
	snd, err := NewSender(s, func(p []byte) error { return nil },
		Config{Policy: NoRetransmit, FECGroup: 4})
	if err != nil {
		b.Fatal(err)
	}
	snd.SendRef = func(ref *buf.Ref) error { ref.Release(); return nil }
	data := make([]byte, benchADUBytes)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(benchADUBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFECRepair measures receiver-side parity repair: each ADU
// arrives with one data fragment per FEC group missing, so every group
// is rebuilt from its parity.
func BenchmarkFECRepair(b *testing.B) {
	s := sim.NewScheduler()
	var pkts [][]byte
	snd, err := NewSender(s, func(p []byte) error {
		pkts = append(pkts, append([]byte(nil), p...))
		return nil
	}, Config{Policy: NoRetransmit, FECGroup: 4})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, benchADUBytes)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := snd.Send(7, xcode.SyntaxRaw, data); err != nil {
		b.Fatal(err)
	}
	rcv, err := NewReceiver(s, nil, Config{Policy: NoRetransmit, FECGroup: 4})
	if err != nil {
		b.Fatal(err)
	}
	delivered := 0
	rcv.OnADU = func(adu ADU) { delivered++; adu.Release() }

	// Drop the first data fragment of each 4-fragment group; keep
	// parity fragments. The receiver must reconstruct 2 fragments of 8.
	feed := make([][]byte, 0, len(pkts))
	dataIdx := 0
	for _, p := range pkts {
		h, err := parseHeader(p)
		if err != nil {
			b.Fatal(err)
		}
		if h.Flags&flagParity == 0 {
			if dataIdx%4 == 0 {
				dataIdx++
				continue
			}
			dataIdx++
		}
		feed = append(feed, p)
	}
	b.SetBytes(benchADUBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rewrite the name per iteration so each op reassembles a fresh ADU.
		for _, p := range feed {
			h, _ := parseHeader(p)
			h.Name = uint64(i)
			putHeader(p, &h)
			_ = rcv.HandlePacket(p)
		}
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}
