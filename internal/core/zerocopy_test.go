package alf

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// TestSendSteadyStateZeroAlloc is the allocation-regression guard for
// the full datapath: Send -> packetize -> netsim (two hops, router
// forward) -> HandlePacket -> reassemble -> deliver -> Release. After
// warmup every buffer comes from the pool and every scheduler event
// from the freelist, so the steady state must not allocate at all.
func TestSendSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	src := n.NewNode("src")
	rtr := n.NewRouter("rtr")
	dst := n.NewNode("dst")
	sl, _ := n.NewDuplex(src, rtr.Node, netsim.LinkConfig{})
	rd, _ := n.NewDuplex(rtr.Node, dst, netsim.LinkConfig{})
	rtr.AddRoute(dst, rd)

	snd, err := NewSender(s, func(p []byte) error { return netsim.SendVia(sl, dst, p) },
		Config{Policy: NoRetransmit})
	if err != nil {
		t.Fatal(err)
	}
	snd.SendRef = func(ref *buf.Ref) error { return netsim.SendRefVia(sl, dst, ref) }
	rcv, err := NewReceiver(s, nil, Config{Policy: NoRetransmit})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	rcv.OnADU = func(adu ADU) { delivered++; adu.Release() }
	dst.SetHandler(func(p *netsim.Packet) { _ = rcv.HandlePacket(p.Payload) })

	data := make([]byte, benchADUBytes)
	for i := range data {
		data[i] = byte(i)
	}
	name := uint64(0)
	send := func() {
		if _, err := snd.Send(name, xcode.SyntaxRaw, data); err != nil {
			t.Fatal(err)
		}
		name++
		_ = s.RunUntil(s.Now())
	}
	// Warm the pools: first ADU provisions buffers, packets, events,
	// and the receiver's partial struct.
	for i := 0; i < 8; i++ {
		send()
	}
	if allocs := testing.AllocsPerRun(100, send); allocs != 0 {
		t.Fatalf("steady-state send->forward->deliver allocates %v allocs/op, want 0", allocs)
	}
	if delivered != int(name) {
		t.Fatalf("delivered %d of %d", delivered, name)
	}
}

// TestReceivePathZeroAlloc guards the network-free loopback: the
// sender's emit path hands each wire fragment straight to the
// receiver, with FEC parity enabled so the parity accumulators and
// reconstruction path are covered too.
func TestReceivePathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	s := sim.NewScheduler()
	var rcv *Receiver
	snd, err := NewSender(s, func(p []byte) error { return rcv.HandlePacket(p) },
		Config{Policy: NoRetransmit, FECGroup: 4})
	if err != nil {
		t.Fatal(err)
	}
	snd.SendRef = func(ref *buf.Ref) error {
		err := rcv.HandlePacket(ref.Bytes())
		ref.Release()
		return err
	}
	rcv, err = NewReceiver(s, nil, Config{Policy: NoRetransmit, FECGroup: 4})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	rcv.OnADU = func(adu ADU) { delivered++; adu.Release() }

	data := make([]byte, benchADUBytes)
	for i := range data {
		data[i] = byte(i)
	}
	name := uint64(0)
	send := func() {
		if _, err := snd.Send(name, xcode.SyntaxRaw, data); err != nil {
			t.Fatal(err)
		}
		name++
	}
	for i := 0; i < 8; i++ {
		send()
	}
	if allocs := testing.AllocsPerRun(100, send); allocs != 0 {
		t.Fatalf("loopback send->deliver allocates %v allocs/op, want 0", allocs)
	}
	if delivered != int(name) {
		t.Fatalf("delivered %d of %d", delivered, name)
	}
}
