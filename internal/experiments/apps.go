package experiments

import (
	"fmt"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/otp"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/video"
	"repro/internal/xcode"
)

// F6Point is one worker-count sample of the §7 parallel-receiver
// experiment: ADUs self-dispatching to workers versus every byte
// squeezing through a serial reassembly hot spot first.
type F6Point struct {
	Workers        int
	ALFMakespan    sim.Duration
	SerialMakespan sim.Duration
	ALFMbps        float64
	SerialMbps     float64
	// Speedup is SerialMakespan / ALFMakespan.
	Speedup float64
}

// F6Config parameterizes the parallel experiment.
type F6Config struct {
	Bytes     int     // total workload (default 8 MB)
	ADUBytes  int     // default 16 KB
	WorkerBps float64 // per-worker processing rate, bytes/s (default 10e6)
	LinkBps   float64 // network rate (default fast: 1e9)
	Seed      int64
}

func (c *F6Config) fill() {
	if c.Bytes == 0 {
		c.Bytes = 8 << 20
	}
	if c.ADUBytes == 0 {
		c.ADUBytes = 16 << 10
	}
	if c.WorkerBps == 0 {
		c.WorkerBps = 10e6
	}
	if c.LinkBps == 0 {
		c.LinkBps = 1e9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunF6 measures one worker count. Both variants receive the identical
// ADU stream over a clean fast link; they differ only in whether a
// serializing front end (running at WorkerBps, the speed of one
// processor node — the "hot spot which must run at the aggregate speed
// of the total processor" that parallel machines lack) sits before the
// workers.
func RunF6(cfg F6Config, workers int) (F6Point, error) {
	cfg.fill()
	p := F6Point{Workers: workers}

	run := func(serial bool) (sim.Duration, error) {
		s := sim.NewScheduler()
		n := netsim.New(s, cfg.Seed)
		a := n.NewNode("a")
		b := n.NewNode("b")
		ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{RateBps: cfg.LinkBps, Delay: time.Millisecond})
		acfg := alf.Config{MTU: 8192 + alf.HeaderSize, RateBps: cfg.LinkBps}
		snd, err := alf.NewSender(s, ab.Send, acfg)
		if err != nil {
			return 0, err
		}
		rcv, err := alf.NewReceiver(s, ba.Send, acfg)
		if err != nil {
			return 0, err
		}
		a.SetHandler(func(pk *netsim.Packet) { snd.HandleControl(pk.Payload) })
		b.SetHandler(func(pk *netsim.Packet) { rcv.HandlePacket(pk.Payload) })

		serialBps := 0.0
		if serial {
			serialBps = cfg.WorkerBps
		}
		pool := parallel.NewPool(s, workers, cfg.WorkerBps, serialBps)
		rcv.OnADU = pool.HandleADU

		total := 0
		for off, i := 0, 0; off < cfg.Bytes; off, i = off+cfg.ADUBytes, i+1 {
			nb := cfg.ADUBytes
			if off+nb > cfg.Bytes {
				nb = cfg.Bytes - off
			}
			if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, make([]byte, nb)); err != nil {
				return 0, err
			}
			total++
		}
		if err := s.Run(); err != nil {
			return 0, err
		}
		if pool.Dispatched != int64(total) {
			return 0, fmt.Errorf("f6: dispatched %d of %d", pool.Dispatched, total)
		}
		return sim.Duration(pool.LastFinish), nil
	}

	var err error
	if p.ALFMakespan, err = run(false); err != nil {
		return p, err
	}
	if p.SerialMakespan, err = run(true); err != nil {
		return p, err
	}
	p.ALFMbps = stats.Mbps(int64(cfg.Bytes), p.ALFMakespan)
	p.SerialMbps = stats.Mbps(int64(cfg.Bytes), p.SerialMakespan)
	if p.ALFMakespan > 0 {
		p.Speedup = p.SerialMakespan.Seconds() / p.ALFMakespan.Seconds()
	}
	return p, nil
}

// RunF6Sweep runs the worker sweep of the F6 figure.
func RunF6Sweep(cfg F6Config, workerCounts []int) ([]F6Point, error) {
	pts := make([]F6Point, 0, len(workerCounts))
	for _, w := range workerCounts {
		pt, err := RunF6(cfg, w)
		if err != nil {
			return pts, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// F7Point is one loss-rate sample of the real-time video experiment:
// the fraction of frames complete at their playout deadline for an ALF
// NoRetransmit stream versus a reliable ordered (OTP) stream carrying
// the same frames.
type F7Point struct {
	LossPct        float64
	ALFOnTimeFrac  float64
	ALFPartialFrac float64
	OTPOnTimeFrac  float64
	FramesSent     int64
	ALFResends     int64 // must be zero
	OTPRetransmits int64
}

// F7Config parameterizes the video experiment.
type F7Config struct {
	Frames       int // default 120
	FPS          float64
	Slices       int
	SliceBytes   int
	LinkBps      float64
	DelayMs      float64
	PlayoutDelay sim.Duration // default 40 ms
	Seed         int64
}

func (c *F7Config) fill() {
	if c.Frames == 0 {
		c.Frames = 120
	}
	if c.FPS == 0 {
		c.FPS = 30
	}
	if c.Slices == 0 {
		c.Slices = 5
	}
	if c.SliceBytes == 0 {
		c.SliceBytes = 1000
	}
	if c.LinkBps == 0 {
		c.LinkBps = 20e6
	}
	if c.DelayMs == 0 {
		c.DelayMs = 10
	}
	if c.PlayoutDelay == 0 {
		// Tight playout budget: one-way transit fits, a retransmission
		// round trip does not — the regime where "proceed without
		// retransmission" wins (§5).
		c.PlayoutDelay = 25 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunF7 measures one loss point.
func RunF7(cfg F7Config, lossPct float64) (F7Point, error) {
	cfg.fill()
	p := F7Point{LossPct: lossPct, FramesSent: int64(cfg.Frames)}
	loss := lossPct / 100
	linkCfg := netsim.LinkConfig{
		RateBps:  cfg.LinkBps,
		Delay:    sim.Duration(cfg.DelayMs * float64(time.Millisecond)),
		LossProb: loss,
	}
	vcfg := video.SourceConfig{FPS: cfg.FPS, SlicesPerFrame: cfg.Slices, SliceBytes: cfg.SliceBytes}

	// --- ALF NoRetransmit. ---
	{
		s := sim.NewScheduler()
		n := netsim.New(s, cfg.Seed)
		a := n.NewNode("a")
		b := n.NewNode("b")
		ab, ba := n.NewDuplex(a, b, linkCfg)
		acfg := alf.Config{
			Policy:       alf.NoRetransmit,
			HoldTime:     cfg.PlayoutDelay + 100*time.Millisecond,
			NackInterval: 20 * time.Millisecond,
		}
		snd, err := alf.NewSender(s, ab.Send, acfg)
		if err != nil {
			return p, err
		}
		rcv, err := alf.NewReceiver(s, ba.Send, acfg)
		if err != nil {
			return p, err
		}
		a.SetHandler(func(pk *netsim.Packet) { snd.HandleControl(pk.Payload) })
		b.SetHandler(func(pk *netsim.Packet) { rcv.HandlePacket(pk.Payload) })

		src := video.NewSource(s, snd, vcfg)
		sink := video.NewSink(s, 0, cfg.PlayoutDelay, vcfg)
		rcv.OnADU = sink.HandleADU
		rcv.OnLost = sink.HandleLoss
		src.Start(cfg.Frames)
		if err := s.Run(); err != nil {
			return p, err
		}
		sink.FlushAll(uint32(cfg.Frames))
		p.ALFOnTimeFrac = float64(sink.Stats.FramesComplete) / float64(cfg.Frames)
		p.ALFPartialFrac = float64(sink.Stats.FramesPartial) / float64(cfg.Frames)
		p.ALFResends = snd.Stats.ResentADUs
	}

	// --- Reliable ordered transport carrying the same frames. ---
	{
		s := sim.NewScheduler()
		n := netsim.New(s, cfg.Seed+1000)
		a := n.NewNode("a")
		b := n.NewNode("b")
		ab, ba := n.NewDuplex(a, b, linkCfg)
		oc := otp.Config{MSS: 1400, FastRetransmit: true, SendBuffer: 1 << 24}
		snd := otp.New(s, ab.Send, oc)
		rcv := otp.New(s, ba.Send, oc)
		a.SetHandler(func(pk *netsim.Packet) { snd.HandleSegment(pk.Payload) })
		b.SetHandler(func(pk *netsim.Packet) { rcv.HandleSegment(pk.Payload) })

		sink := video.NewSink(s, 0, cfg.PlayoutDelay, vcfg)
		// Slices arrive as length-prefixed records over the stream; a
		// tiny record layer carves them and hands them to the sink as
		// (frame, slice) ADUs.
		var rbuf []byte
		rcv.OnData = func(d []byte) {
			rbuf = append(rbuf, d...)
			for len(rbuf) >= 12 {
				n := int(uint32(rbuf[0])<<24 | uint32(rbuf[1])<<16 | uint32(rbuf[2])<<8 | uint32(rbuf[3]))
				if len(rbuf) < 12+n {
					return
				}
				tag := uint64(rbuf[4])<<56 | uint64(rbuf[5])<<48 | uint64(rbuf[6])<<40 | uint64(rbuf[7])<<32 |
					uint64(rbuf[8])<<24 | uint64(rbuf[9])<<16 | uint64(rbuf[10])<<8 | uint64(rbuf[11])
				sink.HandleADU(alf.ADU{Tag: tag, Data: rbuf[12 : 12+n]})
				rbuf = rbuf[12+n:]
			}
		}

		// Emit frames on the same schedule as the ALF source.
		period := vcfg.Period()
		var emit func(f int)
		emit = func(f int) {
			if f >= cfg.Frames {
				return
			}
			slice := make([]byte, cfg.SliceBytes)
			for sl := 0; sl < cfg.Slices; sl++ {
				rec := make([]byte, 12+len(slice))
				rec[0] = byte(len(slice) >> 24)
				rec[1] = byte(len(slice) >> 16)
				rec[2] = byte(len(slice) >> 8)
				rec[3] = byte(len(slice))
				tag := video.Tag(uint32(f), uint16(sl))
				for i := 0; i < 8; i++ {
					rec[4+i] = byte(tag >> uint(56-8*i))
				}
				copy(rec[12:], slice)
				snd.Send(rec)
			}
			s.After(period, func() { emit(f + 1) })
		}
		emit(0)
		if err := s.Run(); err != nil {
			return p, err
		}
		sink.FlushAll(uint32(cfg.Frames))
		total := sink.Stats.FramesComplete + sink.Stats.FramesPartial + sink.Stats.FramesEmpty
		if total != int64(cfg.Frames) {
			return p, fmt.Errorf("f7: otp sink accounted %d of %d frames", total, cfg.Frames)
		}
		p.OTPOnTimeFrac = float64(sink.Stats.FramesComplete) / float64(cfg.Frames)
		p.OTPRetransmits = snd.Stats.Retransmits
	}
	return p, nil
}

// RunF7Sweep runs the loss sweep of the F7 figure.
func RunF7Sweep(cfg F7Config, lossPcts []float64) ([]F7Point, error) {
	pts := make([]F7Point, 0, len(lossPcts))
	for _, l := range lossPcts {
		pt, err := RunF7(cfg, l)
		if err != nil {
			return pts, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// F8Point compares the three §5 recovery policies on the same lossy
// bulk workload.
type F8Point struct {
	Policy        alf.Policy
	DeliveredFrac float64
	GoodputMbps   float64
	MaxBufferedKB float64 // sender retention high-water mark
	Recomputes    int64
	Resends       int64
	ReportedLost  int64
}

// F8Config parameterizes the policy comparison.
type F8Config struct {
	Bytes    int     // default 2 MB
	ADUBytes int     // default 8 KB
	LossPct  float64 // default 3
	LinkBps  float64 // default 50e6
	Seed     int64
}

func (c *F8Config) fill() {
	if c.Bytes == 0 {
		c.Bytes = 2 << 20
	}
	if c.ADUBytes == 0 {
		c.ADUBytes = 8 << 10
	}
	if c.LossPct == 0 {
		c.LossPct = 3
	}
	if c.LinkBps == 0 {
		c.LinkBps = 50e6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunF8 measures one policy.
func RunF8(cfg F8Config, policy alf.Policy) (F8Point, error) {
	cfg.fill()
	p := F8Point{Policy: policy}

	s := sim.NewScheduler()
	n := netsim.New(s, cfg.Seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{
		RateBps: cfg.LinkBps, Delay: 5 * time.Millisecond, LossProb: cfg.LossPct / 100,
	})
	acfg := alf.Config{
		Policy:       policy,
		NackDelay:    10 * time.Millisecond,
		NackInterval: 10 * time.Millisecond,
		MaxNacks:     100,
		HoldTime:     2 * time.Second,
		RateBps:      cfg.LinkBps,
	}
	snd, err := alf.NewSender(s, ab.Send, acfg)
	if err != nil {
		return p, err
	}
	rcv, err := alf.NewReceiver(s, ba.Send, acfg)
	if err != nil {
		return p, err
	}
	a.SetHandler(func(pk *netsim.Packet) { snd.HandleControl(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { rcv.HandlePacket(pk.Payload) })

	// The recompute application: regenerates any chunk from its name.
	mkChunk := func(name uint64, nb int) []byte {
		chunk := make([]byte, nb)
		for i := range chunk {
			chunk[i] = byte(uint64(i) * (name + 1))
		}
		return chunk
	}
	chunkLen := func(name uint64) int {
		off := int(name) * cfg.ADUBytes
		nb := cfg.ADUBytes
		if off+nb > cfg.Bytes {
			nb = cfg.Bytes - off
		}
		return nb
	}
	snd.OnResend = func(name uint64) (uint64, xcode.SyntaxID, []byte, bool) {
		return name, xcode.SyntaxRaw, mkChunk(name, chunkLen(name)), true
	}

	var delivered int64
	var done sim.Time
	total := (cfg.Bytes + cfg.ADUBytes - 1) / cfg.ADUBytes
	rcv.OnADU = func(adu alf.ADU) {
		delivered += int64(len(adu.Data))
		done = s.Now()
	}
	rcv.OnLost = func(name uint64) { p.ReportedLost++ }

	maxBuf := 0
	for i := 0; i*cfg.ADUBytes < cfg.Bytes; i++ {
		name := uint64(i)
		if _, err := snd.Send(name, xcode.SyntaxRaw, mkChunk(name, chunkLen(name))); err != nil {
			return p, err
		}
		if b := snd.BufferedBytes(); b > maxBuf {
			maxBuf = b
		}
	}
	// Track the retention high-water mark while recovery runs.
	var probe *sim.Timer
	probe = s.NewTimer(func() {
		if b := snd.BufferedBytes(); b > maxBuf {
			maxBuf = b
		}
		if rcv.Settled() < uint64(total) {
			probe.Reset(5 * time.Millisecond)
		}
	})
	probe.Reset(5 * time.Millisecond)
	if err := s.Run(); err != nil {
		return p, err
	}

	p.DeliveredFrac = float64(delivered) / float64(cfg.Bytes)
	if done > 0 {
		p.GoodputMbps = stats.Mbps(delivered, time.Duration(done))
	}
	p.MaxBufferedKB = float64(maxBuf) / 1024
	p.Resends = snd.Stats.ResentADUs
	p.Recomputes = snd.Stats.RecomputeADUs
	return p, nil
}

// RunF8All measures all three policies.
func RunF8All(cfg F8Config) ([]F8Point, error) {
	var pts []F8Point
	for _, pol := range []alf.Policy{alf.SenderBuffered, alf.AppRecompute, alf.NoRetransmit} {
		pt, err := RunF8(cfg, pol)
		if err != nil {
			return pts, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// A2Point compares in-band (immediate) versus out-of-band (delayed,
// batched) acknowledgement control in the ordered transport.
type A2Point struct {
	AckDelay     sim.Duration
	AcksSent     int64
	AcksPerSeg   float64
	TransferTime sim.Duration
	GoodputMbps  float64
}

// RunA2 measures one ack-delay setting for a bytes-sized transfer.
func RunA2(bytes int, ackDelay sim.Duration, seed int64) (A2Point, error) {
	p := A2Point{AckDelay: ackDelay}
	s := sim.NewScheduler()
	n := netsim.New(s, seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{RateBps: 100e6, Delay: 2 * time.Millisecond})
	oc := otp.Config{AckDelay: ackDelay, SendBuffer: bytes + (1 << 20), SendWindow: 1 << 20, RecvWindow: 1 << 20}
	snd := otp.New(s, ab.Send, oc)
	rcv := otp.New(s, ba.Send, oc)
	a.SetHandler(func(pk *netsim.Packet) { snd.HandleSegment(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { rcv.HandleSegment(pk.Payload) })

	var done sim.Time
	rcv.OnData = func(d []byte) {
		if rcv.Delivered() == int64(bytes) {
			done = s.Now()
		}
	}
	if err := snd.Send(make([]byte, bytes)); err != nil {
		return p, err
	}
	if err := s.Run(); err != nil {
		return p, err
	}
	if rcv.Delivered() != int64(bytes) {
		return p, fmt.Errorf("a2: delivered %d of %d", rcv.Delivered(), bytes)
	}
	p.AcksSent = rcv.Stats.AcksSent
	if rcv.Stats.SegmentsReceived > 0 {
		p.AcksPerSeg = float64(p.AcksSent) / float64(rcv.Stats.SegmentsReceived)
	}
	p.TransferTime = sim.Duration(done)
	p.GoodputMbps = stats.Mbps(int64(bytes), p.TransferTime)
	return p, nil
}
