package experiments

import (
	"math/rand"
	"time"

	"repro/internal/cipher"
	"repro/internal/ilp"
	"repro/internal/scramble"
)

// CryptoPoint is one payload size of the C1 measurement: the AEAD
// datapath staged (keystream pass, then MAC pass) against the fused
// kernel (one loop producing ciphertext and absorbing it into the tag
// as it goes), plus the fused decrypt+verify direction.
type CryptoPoint struct {
	Bytes       int
	StagedMbps  float64 // XORKeyStream pass + Poly1305 pass + Sum
	FusedMbps   float64 // FusedEncryptCopyMAC + Sum
	DecryptMbps float64 // FusedDecryptCopyVerify + Verify
	Speedup     float64 // fused / staged
}

// CryptoReport holds the C1 sweep and the legacy keystream for
// contrast.
type CryptoReport struct {
	Points []CryptoPoint
	// ScrambleMbps is the legacy xorshift64* keystream XOR on 4 KiB —
	// the confidentiality-only plane the AEAD suite replaces.
	ScrambleMbps float64
}

// RunCrypto measures the ChaCha20-Poly1305 kernels at each payload
// size, spending about minTime per kernel. This is the §6 ILP argument
// applied to the crypto plane: encryption and integrity are two data
// manipulations, and fusing them into one memory pass should beat
// running them as two.
func RunCrypto(sizes []int, minTime time.Duration) CryptoReport {
	var rep CryptoReport
	key := cipher.ExpandKey(0xBADC0FFEE)
	var nonce [cipher.NonceSize]byte
	nonce[0] = 1
	var tagKey [cipher.KeySize]byte
	cipher.TagKey(&key, &nonce, 1<<30, &tagKey)
	tag := make([]byte, cipher.TagSize)

	for _, n := range sizes {
		src := make([]byte, n)
		rand.New(rand.NewSource(5)).Read(src)
		dst := make([]byte, n)

		staged := measure(n, minTime, func() {
			mac := cipher.NewMAC(&tagKey)
			cipher.XORKeyStream(&key, &nonce, 0, dst, src)
			mac.Update(dst)
			mac.Sum(tag)
		})
		fused := measure(n, minTime, func() {
			mac := cipher.NewMAC(&tagKey)
			ilp.FusedEncryptCopyMAC(dst, src, &key, &nonce, 0, &mac)
			mac.Sum(tag)
		})

		ct := make([]byte, n)
		seal := cipher.NewMAC(&tagKey)
		ilp.FusedEncryptCopyMAC(ct, src, &key, &nonce, 0, &seal)
		seal.Sum(tag)
		pt := make([]byte, n)
		dec := measure(n, minTime, func() {
			mac := cipher.NewMAC(&tagKey)
			ilp.FusedDecryptCopyVerify(pt, ct, &key, &nonce, 0, &mac)
			if !mac.Verify(tag) {
				panic("experiments: crypto kernel tag mismatch")
			}
		})

		rep.Points = append(rep.Points, CryptoPoint{
			Bytes:       n,
			StagedMbps:  staged,
			FusedMbps:   fused,
			DecryptMbps: dec,
			Speedup:     fused / staged,
		})
	}

	buf := make([]byte, 4096)
	ks := scramble.NewKeystream(7)
	rep.ScrambleMbps = measure(len(buf), minTime, func() { ks.XOR(buf, buf) })
	return rep
}
