package experiments

import (
	"fmt"

	"repro/internal/faults/soak"
)

// DTNPoint is one sender stance measured over the interplanetary path
// of the DTN soak rig (three 160 s hops, two 40-minute conjunction
// blackouts of the middle hop): the paper's end-to-end recovery
// assumption stress-tested at delays where a round trip is a quarter
// hour. The aimd stance is the terrestrial baseline — plain forwarding
// nodes and the loss-driven AIMD controller; the custody stance staffs
// the intermediate nodes with custody-transfer relays and paces the
// sender with the model-based WindowedRate controller.
type DTNPoint struct {
	Mode string // "aimd" or "custody"
	// DeliveredFrac is distinct complete ADUs delivered over ADUs
	// submitted.
	DeliveredFrac float64
	// GoodputKbps is complete-ADU payload delivered over the submit
	// window.
	GoodputKbps float64
	// CriticalLost counts lost Critical ADUs — the must-arrive tier the
	// custody plane exists to protect.
	CriticalLost int
	// DeadlineDrops counts sender retention that expired unconfirmed —
	// what end-to-end recovery dies of when the confirmation loop is
	// longer than the retention budget.
	DeadlineDrops int64
	// RelayPeakBytes is the larger custody store's high-water mark
	// (zero in aimd mode); the soak bounds it at 2 MiB.
	RelayPeakBytes int64
	// CustodyReleased counts sender ADUs freed by custody transfer
	// rather than end-to-end acknowledgment.
	CustodyReleased int64
	// NacksAnswered counts recovery requests served by a relay one hop
	// away instead of crossing the whole path.
	NacksAnswered int64
	// Passed reports whether the run upheld every delay-tolerant
	// invariant (Critical exactly-once, bounded storage, clean drain).
	Passed bool
}

// DTNConfig parameterizes the contrast run.
type DTNConfig struct {
	Seed int64
}

// RunDTNContrast runs the same conjunction scenario twice — end-to-end
// and custody — and returns both points, aimd first. The contrast is
// the experiment: identical path, identical blackouts, and only the
// custody stance delivers every Critical ADU.
func RunDTNContrast(cfg DTNConfig) ([]DTNPoint, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	pts := make([]DTNPoint, 0, 2)
	for _, mode := range []string{"aimd", "custody"} {
		res, err := soak.RunDTN(soak.DTNConfig{Seed: cfg.Seed, Mode: mode})
		if err != nil {
			return nil, fmt.Errorf("dtn %s: %w", mode, err)
		}
		p := DTNPoint{
			Mode:            mode,
			GoodputKbps:     res.GoodputBps / 1e3,
			CriticalLost:    res.CriticalLost,
			DeadlineDrops:   res.DeadlineDrops,
			RelayPeakBytes:  res.RelayPeakBytes,
			CustodyReleased: res.CustodyReleased,
			NacksAnswered:   res.NacksAnswered,
			Passed:          res.Passed(),
		}
		if res.Submitted > 0 {
			p.DeliveredFrac = float64(res.Delivered) / float64(res.Submitted)
		}
		pts = append(pts, p)
	}
	return pts, nil
}
