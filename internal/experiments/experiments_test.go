package experiments

import (
	"fmt"
	"testing"
	"time"

	alf "repro/internal/core"
	"repro/internal/xcode"
)

// Short timing budgets keep the wall-clock experiments quick in tests;
// the harness uses longer ones for stable numbers.
const testMinTime = 5 * time.Millisecond

// eventually retries a wall-clock-sensitive assertion with fresh
// measurements: when the whole test suite runs packages in parallel,
// individual micro-timings get preempted, so a single noisy sample must
// not fail the shape check. The shape must hold in SOME quiet window.
func eventually(t *testing.T, attempts int, f func() error) {
	t.Helper()
	var err error
	for i := 0; i < attempts; i++ {
		if err = f(); err == nil {
			return
		}
	}
	t.Error(err)
}

func TestKernelsShape(t *testing.T) {
	r := RunKernels(4096, testMinTime)
	if r.Copy <= 0 || r.Checksum <= 0 {
		t.Fatalf("degenerate kernel rates: %+v", r)
	}
	// E3 shape: BER conversion much slower than copy (paper: 4-5x).
	// The gap is an order of magnitude, so one sample suffices.
	if r.BEREncode >= r.Copy/2 {
		t.Errorf("BER encode (%v) not substantially slower than copy (%v)",
			r.BEREncode, r.Copy)
	}
	// LWTS is the tuned alternative: far faster than BER.
	if r.LWTSEncode <= r.BEREncode {
		t.Errorf("LWTS (%v) not faster than BER (%v)", r.LWTSEncode, r.BEREncode)
	}
	// E5 shape: fusing the checksum into conversion costs little
	// (paper: 28 -> 24 Mb/s, a ~15% hit; allow up to 50%).
	if r.BEREncodeChecksum < r.BEREncode/2 {
		t.Errorf("convert+checksum (%v) lost too much vs convert (%v)",
			r.BEREncodeChecksum, r.BEREncode)
	}
	// E2 shape: the fused loop must beat the two separate passes. The
	// margin is ~20%, within scheduler noise, so retry on interference.
	eventually(t, 5, func() error {
		k := RunKernels(4096, testMinTime)
		if k.FusedCopyChecksum <= k.SeparateCopyChecksum {
			return fmt.Errorf("fused (%v) not faster than separate (%v)",
				k.FusedCopyChecksum, k.SeparateCopyChecksum)
		}
		if k.FusedCopyChecksum >= k.Copy+k.Checksum {
			return fmt.Errorf("fused rate (%v) implausibly high", k.FusedCopyChecksum)
		}
		return nil
	})
}

func TestPipelineShape(t *testing.T) {
	r := RunPipeline(256<<10, testMinTime)
	for k := 1; k <= 5; k++ {
		if r.LayeredMbps[k] <= 0 || r.FusedMbps[k] <= 0 {
			t.Fatalf("k=%d: degenerate rates", k)
		}
	}
	// Layered throughput must fall as stages stack up (a 5x effect;
	// single sample is fine).
	if r.LayeredMbps[5] >= r.LayeredMbps[1] {
		t.Errorf("layered did not slow with depth: k1=%v k5=%v",
			r.LayeredMbps[1], r.LayeredMbps[5])
	}
	// The finer-margin comparisons retry on scheduler interference.
	eventually(t, 5, func() error {
		p := RunPipeline(256<<10, testMinTime)
		if p.FusedMbps[2] <= p.LayeredMbps[2] {
			return fmt.Errorf("fused k=2 (%v) not faster than layered (%v)",
				p.FusedMbps[2], p.LayeredMbps[2])
		}
		adv2 := p.FusedMbps[2] / p.LayeredMbps[2]
		adv5 := p.FusedMbps[5] / p.LayeredMbps[5]
		if adv5 < adv2*0.8 {
			return fmt.Errorf("ILP advantage shrank with depth: k2=%.2fx k5=%.2fx", adv2, adv5)
		}
		if p.HandFused2 <= p.FusedMbps[2]*0.9 {
			return fmt.Errorf("hand-fused (%v) should be >= generic fused (%v)",
				p.HandFused2, p.FusedMbps[2])
		}
		return nil
	})
}

func TestControlVsManipulationShape(t *testing.T) {
	r := RunControl(4096, testMinTime)
	if r.ControlNs <= 0 || r.ManipulationNs <= 0 {
		t.Fatalf("degenerate: %+v", r)
	}
	// §4: manipulation dwarfs control for a 4 KB packet.
	if r.ManipulationNs < 5*r.ControlNs {
		t.Errorf("manipulation (%v ns) not >> control (%v ns)",
			r.ManipulationNs, r.ControlNs)
	}
}

func TestStackShape(t *testing.T) {
	rep, err := RunStack(xcode.BER{}, 64<<10, 4, testMinTime)
	if err != nil {
		t.Fatal(err)
	}
	// E4: conversion-intensive case much slower; presentation
	// dominates.
	if rep.Slowdown < 1.5 {
		t.Errorf("int-array stack only %.2fx slower than octet stack", rep.Slowdown)
	}
	if rep.PresentationShare < 0.3 {
		t.Errorf("presentation share = %.2f, want the dominant cost", rep.PresentationShare)
	}
	if rep.OctetMbps <= 0 || rep.IntMbps <= 0 {
		t.Fatalf("degenerate stack rates: %+v", rep)
	}
}

func TestF2Shape(t *testing.T) {
	cfg := F2Config{Bytes: 1 << 20}
	clean, err := RunF2(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := RunF2(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	// At zero loss both paths complete in comparable time.
	ratio0 := clean.OTPDone.Seconds() / clean.ALFDone.Seconds()
	if ratio0 < 0.5 || ratio0 > 2 {
		t.Errorf("clean-link completion ratio OTP/ALF = %.2f, want ~1", ratio0)
	}
	// Under loss the ALF pipeline stays busier and finishes sooner.
	if lossy.ALFDone >= lossy.OTPDone {
		t.Errorf("ALF (%v) not faster than OTP (%v) at 5%% loss",
			lossy.ALFDone, lossy.OTPDone)
	}
	if lossy.ALFLost != 0 {
		t.Errorf("ALF lost %d ADUs with recovery enabled", lossy.ALFLost)
	}
	// OTP's app idles more under loss than ALF's.
	if lossy.OTPIdleFrac <= lossy.ALFIdleFrac {
		t.Errorf("OTP idle %.3f <= ALF idle %.3f under loss",
			lossy.OTPIdleFrac, lossy.ALFIdleFrac)
	}
}

func TestF3Shape(t *testing.T) {
	// With a 34-byte header and BER b, the goodput optimum sits near
	// sqrt(2*34/(8b)) ~ 1.5 KB for b = 4e-6; 64 B drowns in headers and
	// 128 KB drowns in whole-ADU retransmissions.
	cfg := F3Config{Bytes: 256 << 10, BER: 4e-6, Seed: 3}
	small, err := RunF3(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := RunF3(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunF3(cfg, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone survival probability in size.
	if !(small.PIntactPredicted > mid.PIntactPredicted &&
		mid.PIntactPredicted > big.PIntactPredicted) {
		t.Errorf("predicted survival not monotone: %v %v %v",
			small.PIntactPredicted, mid.PIntactPredicted, big.PIntactPredicted)
	}
	// Interior optimum: the mid size beats both extremes on goodput.
	if mid.GoodputMbps <= small.GoodputMbps {
		t.Errorf("mid (%v) vs small (%v): header overhead should hurt tiny ADUs",
			mid.GoodputMbps, small.GoodputMbps)
	}
	if mid.GoodputMbps <= big.GoodputMbps {
		t.Errorf("mid (%v) vs big (%v): whole-ADU retransmission should hurt big ADUs",
			mid.GoodputMbps, big.GoodputMbps)
	}
	// Big ADUs must show heavy resends.
	if big.Resends == 0 {
		t.Error("big ADUs saw no resends at this BER")
	}
}

func TestF4Shape(t *testing.T) {
	cfg := F4Config{Bytes: 128 << 10, Seed: 5}
	clean, err := RunF4(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := RunF4(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if clean.PADUMeasured < 0.999 {
		t.Errorf("clean cells lost ADUs: %v", clean.PADUMeasured)
	}
	if clean.CellsPerADU < 90 {
		t.Errorf("cells per ADU = %d, expected ~94 for 4 KB over 44-byte payloads",
			clean.CellsPerADU)
	}
	// Measured ADU survival must track the (1-p)^cells prediction.
	diff := lossy.PADUMeasured - lossy.PADUPredicted
	if diff < -0.15 || diff > 0.15 {
		t.Errorf("measured %v vs predicted %v survival", lossy.PADUMeasured, lossy.PADUPredicted)
	}
	if lossy.Resends == 0 {
		t.Error("no recovery at 1% cell loss")
	}
	if lossy.GoodputMbps >= clean.GoodputMbps {
		t.Error("cell loss did not cost goodput")
	}
}

func TestF6Shape(t *testing.T) {
	cfg := F6Config{Bytes: 2 << 20, Seed: 7}
	one, err := RunF6(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunF6(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	// With one worker the two layouts are equivalent-ish.
	if one.Speedup > 1.3 {
		t.Errorf("1-worker speedup = %.2f, want ~1", one.Speedup)
	}
	// With eight workers ALF dispatch must scale; serial must not.
	if eight.ALFMbps < one.ALFMbps*4 {
		t.Errorf("ALF did not scale: 1w=%v 8w=%v Mb/s", one.ALFMbps, eight.ALFMbps)
	}
	if eight.SerialMbps > one.SerialMbps*1.5 {
		t.Errorf("serial hot spot scaled unexpectedly: 1w=%v 8w=%v Mb/s",
			one.SerialMbps, eight.SerialMbps)
	}
	if eight.Speedup < 3 {
		t.Errorf("8-worker speedup = %.2f, want >= ~4", eight.Speedup)
	}
}

func TestF7Shape(t *testing.T) {
	cfg := F7Config{Frames: 60, Seed: 9}
	clean, err := RunF7(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := RunF7(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if clean.ALFOnTimeFrac < 0.95 || clean.OTPOnTimeFrac < 0.95 {
		t.Errorf("clean link should render ~all frames: alf=%v otp=%v",
			clean.ALFOnTimeFrac, clean.OTPOnTimeFrac)
	}
	// Under loss, ALF renders most frames (complete or partial) on
	// time; the reliable ordered stream stalls past deadlines.
	alfUsable := lossy.ALFOnTimeFrac + lossy.ALFPartialFrac
	if alfUsable < 0.9 {
		t.Errorf("ALF usable frames = %v at 3%% loss", alfUsable)
	}
	if lossy.OTPOnTimeFrac >= lossy.ALFOnTimeFrac+lossy.ALFPartialFrac {
		t.Errorf("ordered transport (%v) outperformed ALF (%v) under loss",
			lossy.OTPOnTimeFrac, alfUsable)
	}
	if lossy.ALFResends != 0 {
		t.Error("NoRetransmit stream resent")
	}
	if lossy.OTPRetransmits == 0 {
		t.Error("reliable stream never retransmitted at 3% loss")
	}
}

func TestF8Shape(t *testing.T) {
	pts, err := RunF8All(F8Config{Bytes: 1 << 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	byPolicy := map[alf.Policy]F8Point{}
	for _, pt := range pts {
		byPolicy[pt.Policy] = pt
	}
	sb := byPolicy[alf.SenderBuffered]
	ar := byPolicy[alf.AppRecompute]
	nr := byPolicy[alf.NoRetransmit]

	if sb.DeliveredFrac < 0.999 || ar.DeliveredFrac < 0.999 {
		t.Errorf("recovering policies dropped data: sb=%v ar=%v",
			sb.DeliveredFrac, ar.DeliveredFrac)
	}
	if nr.DeliveredFrac > 0.995 {
		t.Errorf("no-retransmit delivered everything (%v) at 3%% loss?", nr.DeliveredFrac)
	}
	if nr.ReportedLost == 0 {
		t.Error("no-retransmit reported no losses")
	}
	// The memory trade: sender-buffered retains, recompute does not.
	if sb.MaxBufferedKB <= 0 {
		t.Error("sender-buffered held no memory")
	}
	if ar.MaxBufferedKB != 0 {
		t.Errorf("app-recompute retained %v KB", ar.MaxBufferedKB)
	}
	if sb.Resends == 0 || ar.Recomputes == 0 {
		t.Errorf("recovery paths unused: resends=%d recomputes=%d", sb.Resends, ar.Recomputes)
	}
}

func TestA2Shape(t *testing.T) {
	inband, err := RunA2(1<<20, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	oob, err := RunA2(1<<20, 5*time.Millisecond, 13)
	if err != nil {
		t.Fatal(err)
	}
	if oob.AcksSent >= inband.AcksSent {
		t.Errorf("delayed acks (%d) not fewer than immediate (%d)",
			oob.AcksSent, inband.AcksSent)
	}
	// Throughput must not collapse from batching acks.
	if oob.GoodputMbps < inband.GoodputMbps/2 {
		t.Errorf("delayed acks halved goodput: %v vs %v",
			oob.GoodputMbps, inband.GoodputMbps)
	}
}

func TestF9Shape(t *testing.T) {
	cfg := F9Config{Bytes: 1 << 20, Seed: 15}
	pts, err := RunF9Sweep(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]F9Point{}
	for _, pt := range pts {
		byMode[pt.Mode] = pt
	}
	none, nack, fec, both := byMode["none"], byMode["nack"], byMode["fec"], byMode["fec+nack"]

	// Raw NoRetransmit loses ADUs; each recovery mechanism claws back.
	if none.DeliveredFrac > 0.95 {
		t.Errorf("baseline delivered %v at 3%% loss; too clean to discriminate", none.DeliveredFrac)
	}
	if nack.DeliveredFrac < 0.999 || both.DeliveredFrac < 0.999 {
		t.Errorf("nack-capable modes incomplete: nack=%v both=%v",
			nack.DeliveredFrac, both.DeliveredFrac)
	}
	if fec.DeliveredFrac <= none.DeliveredFrac {
		t.Errorf("FEC (%v) did not beat no-recovery (%v)", fec.DeliveredFrac, none.DeliveredFrac)
	}
	if fec.FECRecovered == 0 || both.FECRecovered == 0 {
		t.Error("FEC modes recovered nothing")
	}
	// FEC pays a fixed proactive overhead (~1 + 1/group); NACK pays a
	// reactive one proportional to loss. At low loss NACK is cheaper on
	// the wire; FEC's constant cost wins on latency.
	lowPts, err := RunF9Sweep(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lowBy := map[string]F9Point{}
	for _, pt := range lowPts {
		lowBy[pt.Mode] = pt
	}
	if lowBy["nack"].WireOverhead >= lowBy["fec"].WireOverhead {
		t.Errorf("at 0.5%% loss NACK overhead (%v) should undercut FEC's fixed %v",
			lowBy["nack"].WireOverhead, lowBy["fec"].WireOverhead)
	}
	if fec.WireOverhead < 1.2 || fec.WireOverhead > 1.5 {
		t.Errorf("FEC overhead %v, want ~1.25-1.4 (group 4 + headers)", fec.WireOverhead)
	}
	if both.P95Latency >= nack.P95Latency {
		t.Errorf("fec+nack p95 latency (%v) not below nack-only (%v)",
			both.P95Latency, nack.P95Latency)
	}
	if both.Resends >= nack.Resends {
		t.Errorf("fec+nack resends (%d) not below nack-only (%d)", both.Resends, nack.Resends)
	}
}

func TestILPStackShape(t *testing.T) {
	// Wall-clock comparison; retried because concurrent test packages
	// preempt the measured loops.
	eventually(t, 5, func() error {
		layered, err := RunStack(xcode.BER{}, 64<<10, 4, testMinTime)
		if err != nil {
			return err
		}
		ilpRep, err := RunStackILP(64<<10, 4, testMinTime)
		if err != nil {
			return err
		}
		if ilpRep.OctetMbps <= 0 || ilpRep.IntMbps <= 0 {
			return fmt.Errorf("degenerate: %+v", ilpRep)
		}
		// E6: the ALF/ILP stack must beat the layered stack on the
		// conversion-heavy workload (fewer memory passes, fused decode).
		if ilpRep.IntMbps <= layered.IntMbps {
			return fmt.Errorf("ILP int stack (%v) not faster than layered (%v)",
				ilpRep.IntMbps, layered.IntMbps)
		}
		// The raw path must also win: two fused passes beat five layered
		// ones.
		if ilpRep.OctetMbps <= layered.OctetMbps {
			return fmt.Errorf("ILP octet stack (%v) not faster than layered (%v)",
				ilpRep.OctetMbps, layered.OctetMbps)
		}
		// Amdahl corollary of §5: once the non-presentation passes are
		// fused away, conversion dominates the ILP stack even more than
		// it dominated the layered one.
		ilpSlowdown := ilpRep.OctetMbps / ilpRep.IntMbps
		if ilpSlowdown < layered.Slowdown/2 {
			return fmt.Errorf("ILP conversion share unexpectedly small: %.2fx vs layered %.2fx",
				ilpSlowdown, layered.Slowdown)
		}
		return nil
	})
}

func TestA3BurstVsIndependentFEC(t *testing.T) {
	cfg := F9Config{Bytes: 2 << 20}
	// Average over a few seeds: burst processes are high-variance.
	var indep, burst, indepLoss, burstLoss float64
	const seeds = 3
	for i := int64(0); i < seeds; i++ {
		ip, err := RunA3(cfg, false, 100+i)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := RunA3(cfg, true, 200+i)
		if err != nil {
			t.Fatal(err)
		}
		indep += ip.DeliveredFrac / seeds
		burst += bp.DeliveredFrac / seeds
		indepLoss += ip.AvgLossPct / seeds
		burstLoss += bp.AvgLossPct / seeds
	}
	// The loss processes must be comparable in average rate.
	if burstLoss < indepLoss/3 || burstLoss > indepLoss*3 {
		t.Fatalf("loss rates incomparable: indep %.2f%% vs burst %.2f%%", indepLoss, burstLoss)
	}
	// FEC must recover materially less under bursts.
	if burst >= indep {
		t.Errorf("FEC under bursts (%.4f) not worse than independent (%.4f)", burst, indep)
	}
	if indep < 0.97 {
		t.Errorf("FEC under independent 3%% loss delivered only %.4f", indep)
	}
}

func TestOverloadContrastShape(t *testing.T) {
	pts, err := RunOverloadContrast(OverloadConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Mode != "fixed" || pts[1].Mode != "closed" {
		t.Fatalf("points = %+v", pts)
	}
	fixed, closed := pts[0], pts[1]
	if closed.GoodputMbps <= fixed.GoodputMbps {
		t.Errorf("closed goodput %.2f not above fixed %.2f",
			closed.GoodputMbps, fixed.GoodputMbps)
	}
	if !closed.Passed {
		t.Error("closed-loop stance violated a no-collapse invariant")
	}
	if fixed.Passed {
		t.Error("fixed stance passed; the contrast demonstrates nothing")
	}
	if closed.CriticalLost != 0 {
		t.Errorf("closed stance lost %d Critical ADUs", closed.CriticalLost)
	}
	if fixed.CriticalLost == 0 {
		t.Error("fixed stance lost no Critical ADUs")
	}
	if closed.TrunkDrops >= fixed.TrunkDrops {
		t.Errorf("closed trunk drops %d not below fixed %d",
			closed.TrunkDrops, fixed.TrunkDrops)
	}
	if closed.CapacityFrac < 0.7 || closed.CapacityFrac > 1.05 {
		t.Errorf("closed capacity fraction %.2f outside (0.7, 1.05)", closed.CapacityFrac)
	}
}
