package experiments

import (
	"fmt"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xcode"
)

// F9Point compares recovery mechanisms at one loss rate: NACK-based
// whole-ADU retransmission against ADU-level forward error correction
// (paper footnote 10), alone and combined.
type F9Point struct {
	LossPct float64
	Mode    string // "nack", "fec", "fec+nack", "none"

	DeliveredFrac float64
	GoodputMbps   float64
	// MeanLatency is the average virtual time from first fragment seen
	// to ADU delivery (recovery latency shows up here).
	MeanLatency sim.Duration
	// P95Latency is the tail that retransmission round trips create.
	P95Latency   sim.Duration
	Resends      int64
	FECRecovered int64
	WireOverhead float64 // wire bytes / app bytes
}

// F9Config parameterizes the FEC experiment.
type F9Config struct {
	Bytes    int     // default 2 MB
	ADUBytes int     // default 8 KB
	FECGroup int     // default 4 (25% redundancy)
	LinkBps  float64 // default 50e6
	DelayMs  float64 // default 10 (so NACK RTT is visible)
	Seed     int64
}

func (c *F9Config) fill() {
	if c.Bytes == 0 {
		c.Bytes = 2 << 20
	}
	if c.ADUBytes == 0 {
		c.ADUBytes = 8 << 10
	}
	if c.FECGroup == 0 {
		c.FECGroup = 4
	}
	if c.LinkBps == 0 {
		c.LinkBps = 50e6
	}
	if c.DelayMs == 0 {
		c.DelayMs = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunF9 measures one (loss, mode) cell. Modes: "nack" (SenderBuffered,
// no FEC), "fec" (NoRetransmit with FEC), "fec+nack" (both), "none"
// (NoRetransmit, no FEC).
func RunF9(cfg F9Config, lossPct float64, mode string) (F9Point, error) {
	cfg.fill()
	p := F9Point{LossPct: lossPct, Mode: mode}

	acfg := alf.Config{
		MTU:          1024 + alf.HeaderSize,
		NackDelay:    10 * time.Millisecond,
		NackInterval: 10 * time.Millisecond,
		MaxNacks:     100,
		HoldTime:     500 * time.Millisecond,
		RateBps:      cfg.LinkBps,
	}
	switch mode {
	case "nack":
		acfg.Policy = alf.SenderBuffered
	case "fec":
		acfg.Policy = alf.NoRetransmit
		acfg.FECGroup = cfg.FECGroup
	case "fec+nack":
		acfg.Policy = alf.SenderBuffered
		acfg.FECGroup = cfg.FECGroup
	case "none":
		acfg.Policy = alf.NoRetransmit
	default:
		return p, fmt.Errorf("f9: unknown mode %q", mode)
	}

	s := sim.NewScheduler()
	n := netsim.New(s, cfg.Seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{
		RateBps:  cfg.LinkBps,
		Delay:    sim.Duration(cfg.DelayMs * float64(time.Millisecond)),
		LossProb: lossPct / 100,
	})
	snd, err := alf.NewSender(s, ab.Send, acfg)
	if err != nil {
		return p, err
	}
	rcv, err := alf.NewReceiver(s, ba.Send, acfg)
	if err != nil {
		return p, err
	}
	a.SetHandler(func(pk *netsim.Packet) { snd.HandleControl(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { rcv.HandlePacket(pk.Payload) })

	// Latency is measured from ADU submission to delivery, so the
	// application submits ADUs paced at the link rate (submitting the
	// whole transfer at t=0 would fold pacer queueing into every
	// sample and wash out the recovery-latency difference).
	var delivered int64
	var done sim.Time
	var lat stats.Sample
	var sendErr error
	sendTime := map[uint64]sim.Time{}
	rcv.OnADU = func(adu alf.ADU) {
		delivered += int64(len(adu.Data))
		done = s.Now()
		if t0, ok := sendTime[adu.Name]; ok {
			lat.AddDuration(time.Duration(s.Now().Sub(t0)))
		}
	}

	chunk := make([]byte, cfg.ADUBytes)
	// Inter-ADU interval at the link rate, FEC overhead included.
	wirePerADU := float64(cfg.ADUBytes) * 1.1
	if acfg.FECGroup > 0 {
		wirePerADU *= 1 + 1/float64(acfg.FECGroup)
	}
	interval := sim.Duration(wirePerADU * 8 / cfg.LinkBps * 1e9)
	for off, i := 0, 0; off < cfg.Bytes; off, i = off+cfg.ADUBytes, i+1 {
		nb := cfg.ADUBytes
		if off+nb > cfg.Bytes {
			nb = cfg.Bytes - off
		}
		i := i
		buf := chunk[:nb]
		s.After(sim.Duration(i)*interval, func() {
			name, err := snd.Send(uint64(i), xcode.SyntaxRaw, buf)
			if err != nil && sendErr == nil {
				sendErr = err
				return
			}
			sendTime[name] = s.Now()
		})
	}
	if err := s.Run(); err != nil {
		return p, err
	}
	if sendErr != nil {
		return p, sendErr
	}

	p.DeliveredFrac = float64(delivered) / float64(cfg.Bytes)
	if done > 0 {
		p.GoodputMbps = stats.Mbps(delivered, time.Duration(done))
	}
	p.MeanLatency = sim.Duration(lat.Mean() * 1e9)
	p.P95Latency = sim.Duration(lat.Percentile(95) * 1e9)
	p.Resends = snd.Stats.ResentADUs
	p.FECRecovered = rcv.Stats.FECRecovered
	p.WireOverhead = float64(ab.Stats.SentBytes) / float64(cfg.Bytes)
	return p, nil
}

// RunF9Sweep runs the standard mode set at one loss rate.
func RunF9Sweep(cfg F9Config, lossPct float64) ([]F9Point, error) {
	var pts []F9Point
	for _, mode := range []string{"none", "nack", "fec", "fec+nack"} {
		pt, err := RunF9(cfg, lossPct, mode)
		if err != nil {
			return pts, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// A3Point compares FEC effectiveness under independent loss versus
// bursty (Gilbert–Elliott) loss at roughly the same average rate. XOR
// parity recovers only single losses per group, so loss correlation is
// its known weakness — the ablation that bounds where footnote 10's
// suggestion applies.
type A3Point struct {
	Burst         bool
	AvgLossPct    float64 // measured on the wire
	DeliveredFrac float64 // FEC-only (NoRetransmit) residual delivery
	FECRecovered  int64
	ADUsLost      int64
}

// RunA3 measures FEC-only recovery under one loss process.
func RunA3(cfg F9Config, burst bool, seed int64) (A3Point, error) {
	cfg.fill()
	p := A3Point{Burst: burst}

	linkCfg := netsim.LinkConfig{
		RateBps: cfg.LinkBps,
		Delay:   sim.Duration(cfg.DelayMs * float64(time.Millisecond)),
	}
	if burst {
		// ~3% average loss concentrated in bursts: enter a bad state
		// rarely, lose most packets while in it.
		linkCfg.Burst = &netsim.Gilbert{
			PGoodToBad: 0.004, PBadToGood: 0.12, LossGood: 0, LossBad: 0.9,
		}
	} else {
		linkCfg.LossProb = 0.03
	}

	acfg := alf.Config{
		MTU:          1024 + alf.HeaderSize,
		Policy:       alf.NoRetransmit,
		FECGroup:     cfg.FECGroup,
		NackInterval: 10 * time.Millisecond,
		HoldTime:     300 * time.Millisecond,
		RateBps:      cfg.LinkBps,
	}
	s := sim.NewScheduler()
	n := netsim.New(s, seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, linkCfg)
	snd, err := alf.NewSender(s, ab.Send, acfg)
	if err != nil {
		return p, err
	}
	rcv, err := alf.NewReceiver(s, ba.Send, acfg)
	if err != nil {
		return p, err
	}
	a.SetHandler(func(pk *netsim.Packet) { snd.HandleControl(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { rcv.HandlePacket(pk.Payload) })

	var delivered int64
	rcv.OnADU = func(adu alf.ADU) { delivered += int64(len(adu.Data)) }
	rcv.OnLost = func(uint64) { p.ADUsLost++ }

	chunk := make([]byte, cfg.ADUBytes)
	for off, i := 0, 0; off < cfg.Bytes; off, i = off+cfg.ADUBytes, i+1 {
		nb := cfg.ADUBytes
		if off+nb > cfg.Bytes {
			nb = cfg.Bytes - off
		}
		if _, err := snd.Send(uint64(i), xcode.SyntaxRaw, chunk[:nb]); err != nil {
			return p, err
		}
	}
	if err := s.Run(); err != nil {
		return p, err
	}
	p.DeliveredFrac = float64(delivered) / float64(cfg.Bytes)
	p.FECRecovered = rcv.Stats.FECRecovered
	if ab.Stats.Sent > 0 {
		p.AvgLossPct = 100 * float64(ab.Stats.LineLosses) / float64(ab.Stats.Sent)
	}
	return p, nil
}
