package experiments

// The flow-scale experiment: §7's parallel-receiver claim at
// population scale. A sharded endpoint carries F concurrent ALF flows
// hashed over N shards, each shard owning a scheduler, a buffer arena,
// and a trunk of capacity R. Because ADUs route themselves (the
// 8-byte flow-id encapsulation), no serializing hot spot exists, and
// the endpoint should sustain ~N x R aggregate virtual throughput —
// the near-linear scaling curve archived as BENCH_0006.json.
//
// Two clocks are reported and must not be conflated. Virtual-time
// throughput (AggMbps, ADUsPerVSec) is the architectural result: it
// is host-independent, deterministic for a seed, and scales with the
// shard count because each shard brings its own trunk. Wall-clock
// (WallSec, EventsPerSec) is the simulator's own cost; it improves
// with Workers only on hosts with that many cores.

import (
	"fmt"
	"time"

	alf "repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/xcode"
)

// FlowScaleConfig parameterizes one flow-scale run.
type FlowScaleConfig struct {
	Flows    int     // concurrent flows (default 65536)
	Shards   int     // shards; the scaling-curve x axis (default 1)
	Workers  int     // goroutines draining shards (default Shards)
	FlowADUs int     // ADUs per flow (default 4)
	ADUBytes int     // payload bytes per ADU (default 512)
	TrunkBps float64 // per-shard trunk rate (default 1e9)
	Load     float64 // offered load as a fraction of trunk rate (default 1.1)
	Seed     int64

	// Metrics, if non-nil, binds the per-shard series (trunk link and
	// pool arena, labeled shard=<i>). Created automatically when
	// Recorder is set.
	Metrics *metrics.Registry
	// Recorder, if non-nil, samples Metrics at every control-plane
	// barrier — the single-threaded safe point where all workers have
	// joined. Barrier epochs land at the same virtual times for any
	// Workers value, so the sampled series and incident log are
	// bit-identical for a seed regardless of parallelism.
	Recorder *telemetry.Recorder
}

func (c *FlowScaleConfig) fill() {
	if c.Flows == 0 {
		c.Flows = 65536
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Workers == 0 {
		c.Workers = c.Shards
	}
	if c.FlowADUs == 0 {
		c.FlowADUs = 4
	}
	if c.ADUBytes == 0 {
		c.ADUBytes = 512
	}
	if c.TrunkBps == 0 {
		c.TrunkBps = 1e9
	}
	if c.Load == 0 {
		c.Load = 1.1
	}
	if c.Recorder != nil && c.Metrics == nil {
		c.Metrics = metrics.New()
	}
}

// FlowScalePoint is one point of the scaling curve.
type FlowScalePoint struct {
	Flows, Shards, Workers int

	DeliveredADUs int64
	PayloadBytes  int64   // payload delivered
	VirtualSec    float64 // makespan: virtual time of the last delivery
	AggMbps       float64 // payload bits per virtual second, all shards
	ADUsPerVSec   float64 // delivery rate in virtual time
	MaxTrunkQueue int64   // deepest per-shard trunk backlog (packets)

	WallSec      float64 // host time for the whole run
	EventsFired  uint64  // scheduler callbacks executed
	EventsPerSec float64 // EventsFired / WallSec: simulator cost
}

// flowDriver submits one flow's ADUs as a self-rescheduling event
// chain, so F flows hold F pending events rather than F x ADUs.
type flowDriver struct {
	flow *alf.Flow
	data []byte
	gap  sim.Duration
	k    int
	adus int
}

func (d *flowDriver) fire() {
	if _, err := d.flow.Sender.Send(uint64(d.k), xcode.SyntaxRaw, d.data); err != nil {
		panic(fmt.Sprintf("flowscale: send: %v", err))
	}
	d.k++
	if d.k < d.adus {
		d.flow.Shard().Scheduler().After(d.gap, d.fire)
	}
}

// RunFlowScale drives cfg.Flows concurrent flows through a sharded
// endpoint to quiescence and reports the point. Flow starts are
// staggered so each shard's trunk sees cfg.Load x its rate: the trunk
// stays saturated (the measurement is capacity, not idleness) while
// its queue stays bounded (MaxTrunkQueue, reported, guards that).
func RunFlowScale(cfg FlowScaleConfig) (FlowScalePoint, error) {
	cfg.fill()
	p := FlowScalePoint{Flows: cfg.Flows, Shards: cfg.Shards, Workers: cfg.Workers}

	var onBarrier func(now sim.Time)
	if cfg.Recorder != nil {
		cfg.Recorder.Bind(nil, cfg.Metrics, 0) // manual mode: sampled at barriers
		onBarrier = cfg.Recorder.SampleAt
	}
	ep, err := alf.NewSharded(alf.ShardedConfig{
		Shards:    cfg.Shards,
		Workers:   cfg.Workers,
		Seed:      cfg.Seed,
		Metrics:   cfg.Metrics,
		OnBarrier: onBarrier,
		Flow: alf.Config{
			// NoRetransmit on a clean trunk: no retention state, so a
			// million senders stay small. The confirm loop (heartbeat
			// -> cum release) still runs and quiesces each stream.
			Policy: alf.NoRetransmit,
			// Slow heartbeats: a flow is live for most of the run, and
			// F flows probing at the default 20 ms would swamp the
			// event count without informing the measurement.
			HeartbeatInterval:    time.Second,
			HeartbeatMaxInterval: time.Second,
		},
		Link: netsim.LinkConfig{RateBps: cfg.TrunkBps, Delay: 200 * time.Microsecond},
	})
	if err != nil {
		return p, err
	}

	data := make([]byte, cfg.ADUBytes)
	for i := range data {
		data[i] = byte(i * 31)
	}

	// Offered-load spacing: each flow emits one ADU per gap, so a shard
	// holding S flows offers S*wireBits/gap = Load * TrunkBps.
	perShard := cfg.Flows / cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	wireBits := float64(cfg.ADUBytes+alf.HeaderSize+8) * 8 // + flow-id encap
	gap := sim.Duration(float64(perShard) * wireBits / (cfg.Load * cfg.TrunkBps) * 1e9)
	if gap < time.Microsecond {
		gap = time.Microsecond
	}

	perShardIdx := make([]int, cfg.Shards)
	for id := 0; id < cfg.Flows; id++ {
		f, err := ep.AddFlow(alf.FlowID(id))
		if err != nil {
			return p, err
		}
		d := &flowDriver{flow: f, data: data, gap: gap, adus: cfg.FlowADUs}
		// Spread this shard's flows uniformly across one gap period.
		sh := f.Shard().Index()
		start := gap * sim.Duration(perShardIdx[sh]) / sim.Duration(perShard)
		perShardIdx[sh]++
		f.Shard().Scheduler().At(sim.Time(start), d.fire)
	}

	wall := time.Now()
	if err := ep.Run(); err != nil {
		return p, err
	}
	p.WallSec = time.Since(wall).Seconds()

	st := ep.Stats()
	want := int64(cfg.Flows) * int64(cfg.FlowADUs)
	if st.Recv.ADUsDelivered != want {
		return p, fmt.Errorf("flowscale: delivered %d of %d ADUs (lost %d)",
			st.Recv.ADUsDelivered, want, st.Recv.ADUsLost)
	}
	p.DeliveredADUs = st.Recv.ADUsDelivered
	p.PayloadBytes = st.Recv.DeliveredBytes
	p.VirtualSec = ep.LastDelivery().Seconds()
	if p.VirtualSec > 0 {
		p.AggMbps = float64(p.PayloadBytes) * 8 / 1e6 / p.VirtualSec
		p.ADUsPerVSec = float64(p.DeliveredADUs) / p.VirtualSec
	}
	p.MaxTrunkQueue = st.Trunk.MaxQueue
	p.EventsFired = ep.Fired()
	if p.WallSec > 0 {
		p.EventsPerSec = float64(p.EventsFired) / p.WallSec
	}
	return p, nil
}

// RunFlowScaleSweep runs the worker/shard sweep of the scaling curve.
func RunFlowScaleSweep(cfg FlowScaleConfig, shardCounts []int) ([]FlowScalePoint, error) {
	pts := make([]FlowScalePoint, 0, len(shardCounts))
	for _, n := range shardCounts {
		c := cfg
		c.Shards = n
		c.Workers = n
		pt, err := RunFlowScale(c)
		if err != nil {
			return pts, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}
