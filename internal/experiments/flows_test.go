package experiments

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
)

// TestFlowScaleNearLinear asserts the PR's scaling claim in miniature:
// aggregate virtual-time throughput grows near-linearly with the shard
// count, because each shard owns its trunk and no serializing hot spot
// exists between them. The measurement is virtual time, so the
// assertion is deterministic and holds under -race on any host —
// BENCH_0006.json is the same curve at benchmark scale.
func TestFlowScaleNearLinear(t *testing.T) {
	pts, err := RunFlowScaleSweep(FlowScaleConfig{
		Flows:    4096,
		FlowADUs: 2,
		ADUBytes: 512,
		TrunkBps: 1e8,
		Seed:     6,
	}, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	base := pts[0].AggMbps
	if base <= 0 {
		t.Fatalf("1-shard baseline throughput %v", base)
	}
	for _, p := range pts {
		t.Logf("shards=%d workers=%d flows=%d agg=%.1f vMb/s makespan=%.3fvs maxq=%d events=%d",
			p.Shards, p.Workers, p.Flows, p.AggMbps, p.VirtualSec, p.MaxTrunkQueue, p.EventsFired)
		speedup := p.AggMbps / base
		// Near-linear: each doubling of shards must keep >=75% parallel
		// efficiency against the 1-shard baseline.
		if min := 0.75 * float64(p.Shards); speedup < min {
			t.Fatalf("shards=%d: speedup %.2fx < %.2fx (agg %.1f vs base %.1f vMb/s)",
				p.Shards, speedup, min, p.AggMbps, base)
		}
	}
	// The acceptance criterion itself: >=3x aggregate at 8 shards vs 1.
	if s8 := pts[3].AggMbps / base; s8 < 3 {
		t.Fatalf("8-shard aggregate only %.2fx the 1-shard baseline, want >=3x", s8)
	}
}

// TestFlowScaleDeterministic: the flow-scale experiment itself is
// reproducible — same config, same point, bit for bit.
func TestFlowScaleDeterministic(t *testing.T) {
	cfg := FlowScaleConfig{Flows: 512, Shards: 4, FlowADUs: 2, TrunkBps: 1e8, Seed: 11}
	a, err := RunFlowScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFlowScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.WallSec, a.EventsPerSec = 0, 0
	b.WallSec, b.EventsPerSec = 0, 0
	if a != b {
		t.Fatalf("flow-scale point not reproducible:\n got %+v\nwant %+v", b, a)
	}
}

// TestFlowScaleRecorderDeterminism is the telemetry half of the
// sharding determinism claim: the flight recorder samples at the
// control-plane barrier — the single-threaded safe point whose epochs
// land at the same virtual times for any Workers value — so the whole
// record (tick times, every per-shard series, the incident log) is
// bit-identical across worker counts. Run under -race by the race
// target, this also proves barrier sampling is shard-safe.
func TestFlowScaleRecorderDeterminism(t *testing.T) {
	workerCounts := []int{1, 2, 8}
	dumps := make([][]byte, len(workerCounts))
	for i, w := range workerCounts {
		rec := telemetry.New(telemetry.Config{
			Detectors: []telemetry.Detector{
				&telemetry.ShardImbalance{Series: "netsim.link.delivered_bytes"},
			},
		})
		if _, err := RunFlowScale(FlowScaleConfig{
			Flows: 512, Shards: 8, Workers: w,
			FlowADUs: 2, TrunkBps: 1e8, Seed: 11,
			Recorder: rec,
		}); err != nil {
			t.Fatal(err)
		}
		if rec.Ticks() == 0 {
			t.Fatalf("workers=%d: recorder saw no barrier ticks", w)
		}
		var buf bytes.Buffer
		if err := rec.WriteDump(&buf); err != nil {
			t.Fatal(err)
		}
		dumps[i] = buf.Bytes()
	}
	for i := 1; i < len(dumps); i++ {
		if !bytes.Equal(dumps[0], dumps[i]) {
			t.Errorf("workers=%d and workers=%d produced different flight records",
				workerCounts[0], workerCounts[i])
		}
	}
}
