// Package experiments implements every reproduction experiment from
// DESIGN.md: the paper's Table 1 and §4 measurements (wall-clock kernel
// timings) and the §5-§7 architectural claims (virtual-time protocol
// simulations). Both the root benchmark suite and cmd/alfbench call
// into this package, so a table printed by the harness and a benchmark
// row regenerate the same numbers.
package experiments

import (
	"math/rand"
	"time"

	"repro/internal/checksum"
	"repro/internal/ilp"
	"repro/internal/scramble"
	"repro/internal/stats"
	"repro/internal/xcode"
)

// measure runs fn repeatedly and returns the achieved rate in Mb/s for
// bytesPerOp payload bytes per call. It takes the best of several
// trials of minTime/3 each: for a deterministic CPU-bound kernel the
// maximum is the least contaminated by scheduler preemption and
// frequency excursions, which otherwise swing single-shot numbers
// wildly on shared machines.
func measure(bytesPerOp int, minTime time.Duration, fn func()) float64 {
	fn() // warm up
	trial := minTime / 3
	if trial <= 0 {
		trial = time.Millisecond
	}
	best := 0.0
	for t := 0; t < 3; t++ {
		iters := 1
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			elapsed := time.Since(start)
			if elapsed >= trial {
				if rate := stats.Mbps(int64(bytesPerOp)*int64(iters), elapsed); rate > best {
					best = rate
				}
				break
			}
			if elapsed <= 0 {
				iters *= 1000
				continue
			}
			// Scale iteration count toward the target time.
			iters = int(float64(iters)*float64(trial)/float64(elapsed)) + 1
		}
	}
	return best
}

// KernelReport holds the wall-clock kernel measurements that reproduce
// Table 1 and the §4 in-text results, in Mb/s.
type KernelReport struct {
	BufBytes int

	// T1: the two fundamental manipulations.
	Copy     float64 // word-aligned copy (Table 1 "Copy")
	Checksum float64 // Internet checksum (Table 1 "Checksum")

	// E2: separate passes vs one fused loop.
	SeparateCopyChecksum float64 // copy pass then checksum pass
	FusedCopyChecksum    float64 // single integrated loop
	// PredictedSeparate is the harmonic composition 1/(1/c+1/k) the
	// paper uses for "if they were done separately" (130 & 115 -> ~60).
	PredictedSeparate float64

	// E3: presentation conversion vs copy.
	BEREncode  float64 // []int32 -> ASN.1 SEQUENCE OF INTEGER
	BERDecode  float64 // and back into application variables
	XDREncode  float64
	LWTSEncode float64

	// E5: conversion with the checksum fused into the same loop.
	BEREncodeChecksum float64

	// Extra fusion depth: copy+checksum+decrypt in one loop.
	FusedCopyChecksumDecrypt float64
}

// RunKernels measures all §4 kernels on bufBytes buffers, spending
// about minTime per kernel.
func RunKernels(bufBytes int, minTime time.Duration) KernelReport {
	r := KernelReport{BufBytes: bufBytes}
	src := make([]byte, bufBytes)
	rand.New(rand.NewSource(1)).Read(src)
	dst := make([]byte, bufBytes)

	// The integer-array workload sized to the same byte volume.
	ints := make([]int32, bufBytes/4)
	rnd := rand.New(rand.NewSource(2))
	for i := range ints {
		ints[i] = int32(rnd.Uint32())
	}
	encBuf := make([]byte, 0, bufBytes*2)
	enc := ilp.EncodeBERInt32s(nil, ints)
	out := make([]int32, len(ints))

	r.Copy = measure(bufBytes, minTime, func() { ilp.WordCopy(dst, src) })
	r.Checksum = measure(bufBytes, minTime, func() { checksum.Sum16(src) })
	r.SeparateCopyChecksum = measure(bufBytes, minTime, func() { ilp.SeparateCopyThenChecksum(dst, src) })
	r.FusedCopyChecksum = measure(bufBytes, minTime, func() { ilp.FusedCopyChecksum(dst, src) })
	r.PredictedSeparate = 1 / (1/r.Copy + 1/r.Checksum)

	r.BEREncode = measure(bufBytes, minTime, func() { encBuf = ilp.EncodeBERInt32s(encBuf[:0], ints) })
	r.BERDecode = measure(bufBytes, minTime, func() { ilp.DecodeBERInt32sInto(enc, out) })
	xdrBuf := make([]byte, 0, bufBytes+16)
	v := xcode.Int32sValue(ints)
	r.XDREncode = measure(bufBytes, minTime, func() { xdrBuf, _ = (xcode.XDR{}).EncodeValue(xdrBuf[:0], v) })
	lwtsBuf := make([]byte, 0, bufBytes+16)
	r.LWTSEncode = measure(bufBytes, minTime, func() { lwtsBuf, _ = (xcode.LWTS{}).EncodeValue(lwtsBuf[:0], v) })

	r.BEREncodeChecksum = measure(bufBytes, minTime, func() {
		encBuf, _ = ilp.EncodeBERInt32sChecksum(encBuf[:0], ints)
	})

	ks := scramble.NewKeystream(7)
	r.FusedCopyChecksumDecrypt = measure(bufBytes, minTime, func() {
		ilp.FusedCopyChecksumDecrypt(dst, src, ks)
	})
	return r
}

// PipelineReport holds the F5/A1 measurements: layered passes vs a
// generic fused loop vs the hand-fused kernel, by stage depth.
type PipelineReport struct {
	BufBytes int
	// LayeredMbps[k] and FusedMbps[k] are indexed by stage count 1..5
	// (index 0 unused).
	LayeredMbps [6]float64
	FusedMbps   [6]float64
	// HandFused2 is the dedicated two-stage kernel (copy+checksum) for
	// the A1 ablation against LayeredMbps[2]/FusedMbps[2].
	HandFused2 float64
	// HandFused3 is the dedicated three-stage kernel
	// (copy+checksum+decrypt).
	HandFused3 float64
}

// RunPipeline measures the stage pipelines on bufBytes buffers.
func RunPipeline(bufBytes int, minTime time.Duration) PipelineReport {
	r := PipelineReport{BufBytes: bufBytes}
	src := make([]byte, bufBytes)
	rand.New(rand.NewSource(3)).Read(src)
	dst := make([]byte, bufBytes)
	scratch := make([]byte, bufBytes)

	for k := 1; k <= 5; k++ {
		lst, _ := ilp.StandardStages(k, 99)
		r.LayeredMbps[k] = measure(bufBytes, minTime, func() { ilp.LayeredPath(dst, scratch, src, lst) })
		fst, _ := ilp.StandardStages(k, 99)
		r.FusedMbps[k] = measure(bufBytes, minTime, func() { ilp.FusedPath(dst, src, fst) })
	}
	r.HandFused2 = measure(bufBytes, minTime, func() { ilp.FusedCopyChecksum(dst, src) })
	ks := scramble.NewKeystream(99)
	r.HandFused3 = measure(bufBytes, minTime, func() { ilp.FusedCopyChecksumDecrypt(dst, src, ks) })
	return r
}

// ControlReport holds the F1 measurement: per-packet control cost next
// to per-packet manipulation cost.
type ControlReport struct {
	PacketBytes int
	// ControlNs is the time to run the receive-side transfer-control
	// decisions for one packet (parse header, verify its checksum,
	// demultiplex, sequence check) — no payload touched.
	ControlNs float64
	// ManipulationNs is the time for the payload data pass
	// (fused copy+checksum) of the same packet.
	ManipulationNs float64
}

// RunControl measures F1 for one packet size.
func RunControl(packetBytes int, minTime time.Duration) ControlReport {
	r := ControlReport{PacketBytes: packetBytes}

	// A minimal 16-byte transport header mirroring otp's layout.
	hdr := make([]byte, 16)
	hdr[0] = 1
	ck := checksum.Sum16(hdr)
	hdr[12], hdr[13] = byte(ck>>8), byte(ck)

	sink := 0
	control := func() {
		// Demux + integrity + order decision, the §4 control path.
		if !checksum.Verify16(hdr) {
			sink++
		}
		seq := int(hdr[2])<<24 | int(hdr[3])<<16 | int(hdr[4])<<8 | int(hdr[5])
		if seq == sink {
			sink++
		}
	}
	start := time.Now()
	iters := 0
	for time.Since(start) < minTime {
		for i := 0; i < 1000; i++ {
			control()
		}
		iters += 1000
	}
	r.ControlNs = float64(time.Since(start).Nanoseconds()) / float64(iters)

	src := make([]byte, packetBytes)
	dst := make([]byte, packetBytes)
	rand.New(rand.NewSource(4)).Read(src)
	mbps := measure(packetBytes, minTime, func() { ilp.FusedCopyChecksum(dst, src) })
	// packetBytes*8 bits at mbps*1e6 bit/s, in nanoseconds.
	r.ManipulationNs = float64(packetBytes) * 8000 / mbps
	return r
}
