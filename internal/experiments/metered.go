package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// This file publishes the wall-clock kernel measurements into the
// unified metrics registry, so cmd/alfstat can print the paper's §4
// cost model — control cost per packet vs manipulation cost per byte,
// and bytes touched per pass under layered vs integrated processing —
// in the same table as the simulation counters.

// RunControlInto measures the §4 per-packet split for one packet size
// and records it: transfer control is (nearly) size-independent, the
// data manipulation pass is cycles per byte.
func RunControlInto(r *metrics.Registry, packetBytes int, minTime time.Duration) ControlReport {
	c := RunControl(packetBytes, minTime)
	lb := fmt.Sprintf("pkt_bytes=%d", packetBytes)
	r.Gauge("experiments.control_ns", lb).Set(int64(c.ControlNs))
	r.Gauge("experiments.manipulation_ns", lb).Set(int64(c.ManipulationNs))
	return c
}

// RunPipelineInto measures the F5/A1 stage pipelines and records, for
// each stage depth, the bytes a receive of bufBytes touches under the
// two engineering styles: the layered design pays one full memory pass
// per stage, the integrated loop touches each byte once regardless of
// depth (§6).
func RunPipelineInto(r *metrics.Registry, bufBytes int, minTime time.Duration) PipelineReport {
	p := RunPipeline(bufBytes, minTime)
	for k := 1; k <= 5; k++ {
		lb := fmt.Sprintf("stages=%d", k)
		r.Gauge("experiments.pipeline.pass_bytes", lb, "path=layered").Set(int64(k * bufBytes))
		r.Gauge("experiments.pipeline.pass_bytes", lb, "path=fused").Set(int64(bufBytes))
		r.Gauge("experiments.pipeline.rate_kbps", lb, "path=layered").Set(int64(p.LayeredMbps[k] * 1e3))
		r.Gauge("experiments.pipeline.rate_kbps", lb, "path=fused").Set(int64(p.FusedMbps[k] * 1e3))
	}
	return p
}
