package experiments

import (
	"fmt"

	"repro/internal/faults/soak"
)

// OverloadPoint is one sender stance measured through the shared
// 8 Mb/s bottleneck of the overload soak rig (three streams offering
// 18 Mb/s aggregate): the §3 argument that transmission control
// should be rate-based and closed-loop, quantified. The fixed stance
// is today's open-loop `Config.RateBps`; the closed stance adds
// receiver feedback, the AIMD controller, priority shedding, and the
// recovery-bandwidth cap.
type OverloadPoint struct {
	Mode string // "fixed" or "closed"
	// GoodputMbps is complete-ADU payload delivered over the submit
	// window.
	GoodputMbps float64
	// CapacityFrac is goodput as a fraction of bottleneck capacity.
	CapacityFrac float64
	// DeliveredFrac is complete ADUs delivered over ADUs accepted onto
	// the wire path (shed Droppables excluded — they never consumed
	// network capacity, which is the point).
	DeliveredFrac float64
	// CriticalLost counts lost Critical ADUs across all streams — the
	// application's must-arrive tier.
	CriticalLost int
	// ShedADUs counts Droppable ADUs refused before transmission.
	ShedADUs int64
	// TrunkDrops counts bottleneck tail-drops — work the network did
	// only to throw away.
	TrunkDrops int64
	// Passed reports whether the run upheld every no-collapse
	// invariant (goodput floor, Critical protection, clean drain).
	Passed bool
}

// OverloadConfig parameterizes the contrast run.
type OverloadConfig struct {
	Seed  int64
	Shape string // arrival pattern (default "steady")
}

// RunOverloadContrast runs the same overload twice — open-loop and
// closed-loop — and returns both points, fixed first. The contrast is
// the experiment: identical offered load, identical bottleneck, and
// only the closed stance keeps goodput near capacity while losing no
// Critical ADU.
func RunOverloadContrast(cfg OverloadConfig) ([]OverloadPoint, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	pts := make([]OverloadPoint, 0, 2)
	for _, mode := range []string{"fixed", "closed"} {
		res, err := soak.RunOverload(soak.OverloadConfig{
			Seed: cfg.Seed, Shape: cfg.Shape, Mode: mode,
		})
		if err != nil {
			return nil, fmt.Errorf("overload %s: %w", mode, err)
		}
		p := OverloadPoint{
			Mode:         mode,
			GoodputMbps:  res.GoodputBps / 1e6,
			CapacityFrac: res.GoodputBps / res.CapacityBps,
			ShedADUs:     res.ShedADUs,
			TrunkDrops:   res.TrunkDrops,
			Passed:       res.Passed(),
		}
		var accepted, delivered int
		for _, st := range res.Streams {
			accepted += st.Accepted
			delivered += st.Delivered
			p.CriticalLost += st.CriticalLost
		}
		if accepted > 0 {
			p.DeliveredFrac = float64(delivered) / float64(accepted)
		}
		pts = append(pts, p)
	}
	return pts, nil
}
