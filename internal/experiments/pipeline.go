package experiments

import (
	"fmt"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/otp"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xcode"
)

// appModel is the presentation-limited receiving application of §5: it
// converts data at a fixed rate of virtual time and can only work on
// data that its transport has delivered. Its idle time is the paper's
// stalled pipeline.
type appModel struct {
	rateBps  float64  // conversion rate, bytes of virtual work per second
	busyTill sim.Time // when the app finishes everything handed to it
	busy     sim.Duration
	consumed int64
}

// feed hands the app bytes at virtual time now and returns when the app
// will finish converting them.
func (a *appModel) feed(now sim.Time, bytes int) sim.Time {
	start := a.busyTill
	if now > start {
		start = now
	}
	work := sim.Duration(float64(bytes) / a.rateBps * 1e9)
	a.busyTill = start.Add(work)
	a.busy += work
	a.consumed += int64(bytes)
	return a.busyTill
}

// F2Point is one loss-rate sample of the pipeline experiment: the same
// presentation-limited application fed by OTP (in-order delivery) and
// by ALF (out-of-order ADUs).
type F2Point struct {
	LossPct float64

	OTPGoodputMbps float64 // app-level conversion goodput
	ALFGoodputMbps float64
	OTPIdleFrac    float64 // app idle fraction before completion
	ALFIdleFrac    float64
	OTPDone        sim.Duration // completion time (virtual)
	ALFDone        sim.Duration
	ALFLost        int64 // should be zero (recovery enabled)
}

// F2Config parameterizes the pipeline experiment.
type F2Config struct {
	Bytes   int     // total transfer (default 2 MB)
	ADUSize int     // ALF ADU size (default 8 KB)
	LinkBps float64 // network rate (default 80e6)
	AppBps  float64 // app conversion rate in BYTES/s (default 8e6, i.e. 64 Mb/s)
	DelayMs float64 // one-way delay (default 5)
	Seed    int64
}

func (c *F2Config) fill() {
	if c.Bytes == 0 {
		c.Bytes = 2 << 20
	}
	if c.ADUSize == 0 {
		c.ADUSize = 8 << 10
	}
	if c.LinkBps == 0 {
		c.LinkBps = 80e6
	}
	if c.AppBps == 0 {
		c.AppBps = 8e6
	}
	if c.DelayMs == 0 {
		c.DelayMs = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

func (c F2Config) delay() sim.Duration {
	return sim.Duration(c.DelayMs * float64(time.Millisecond))
}

// RunF2 measures one loss-rate point.
func RunF2(cfg F2Config, lossPct float64) (F2Point, error) {
	cfg.fill()
	p := F2Point{LossPct: lossPct}
	loss := lossPct / 100

	// --- OTP side: ordered byte stream, app fed in order. ---
	{
		s := sim.NewScheduler()
		n := netsim.New(s, cfg.Seed)
		a := n.NewNode("a")
		b := n.NewNode("b")
		ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{
			RateBps: cfg.LinkBps, Delay: cfg.delay(), LossProb: loss,
		})
		oc := otp.Config{MSS: 1024, SendWindow: 1 << 20, RecvWindow: 1 << 20,
			SendBuffer: cfg.Bytes + (1 << 20), FastRetransmit: true}
		snd := otp.New(s, ab.Send, oc)
		rcv := otp.New(s, ba.Send, oc)
		a.SetHandler(func(pk *netsim.Packet) { snd.HandleSegment(pk.Payload) })
		b.SetHandler(func(pk *netsim.Packet) { rcv.HandleSegment(pk.Payload) })

		app := &appModel{rateBps: cfg.AppBps}
		var done sim.Time
		rcv.OnData = func(d []byte) {
			finish := app.feed(s.Now(), len(d))
			if app.consumed == int64(cfg.Bytes) {
				done = finish
			}
		}
		if err := snd.Send(make([]byte, cfg.Bytes)); err != nil {
			return p, fmt.Errorf("otp send: %w", err)
		}
		if err := s.Run(); err != nil {
			return p, err
		}
		if app.consumed != int64(cfg.Bytes) {
			return p, fmt.Errorf("otp delivered %d of %d bytes at loss %.1f%%",
				app.consumed, cfg.Bytes, lossPct)
		}
		p.OTPDone = sim.Duration(done)
		p.OTPGoodputMbps = stats.Mbps(int64(cfg.Bytes), p.OTPDone)
		p.OTPIdleFrac = 1 - app.busy.Seconds()/p.OTPDone.Seconds()
	}

	// --- ALF side: out-of-order complete ADUs. ---
	{
		s := sim.NewScheduler()
		n := netsim.New(s, cfg.Seed+1000)
		a := n.NewNode("a")
		b := n.NewNode("b")
		ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{
			RateBps: cfg.LinkBps, Delay: cfg.delay(), LossProb: loss,
		})
		acfg := alf.Config{
			MTU:          1024 + alf.HeaderSize,
			NackDelay:    5 * time.Millisecond,
			NackInterval: 5 * time.Millisecond,
			MaxNacks:     100,
			HoldTime:     30 * time.Second,
			RateBps:      cfg.LinkBps, // pace at the link rate
		}
		snd, err := alf.NewSender(s, ab.Send, acfg)
		if err != nil {
			return p, err
		}
		rcv, err := alf.NewReceiver(s, ba.Send, acfg)
		if err != nil {
			return p, err
		}
		a.SetHandler(func(pk *netsim.Packet) { snd.HandleControl(pk.Payload) })
		b.SetHandler(func(pk *netsim.Packet) { rcv.HandlePacket(pk.Payload) })

		app := &appModel{rateBps: cfg.AppBps}
		var done sim.Time
		rcv.OnADU = func(adu alf.ADU) {
			finish := app.feed(s.Now(), len(adu.Data))
			if app.consumed == int64(cfg.Bytes) {
				done = finish
			}
		}
		rcv.OnLost = func(name uint64) { p.ALFLost++ }

		chunk := make([]byte, cfg.ADUSize)
		for off := 0; off < cfg.Bytes; off += cfg.ADUSize {
			n := cfg.ADUSize
			if off+n > cfg.Bytes {
				n = cfg.Bytes - off
			}
			if _, err := snd.Send(uint64(off), xcode.SyntaxRaw, chunk[:n]); err != nil {
				return p, fmt.Errorf("alf send: %w", err)
			}
		}
		if err := s.Run(); err != nil {
			return p, err
		}
		if app.consumed != int64(cfg.Bytes) {
			return p, fmt.Errorf("alf converted %d of %d bytes at loss %.1f%% (lost %d ADUs)",
				app.consumed, cfg.Bytes, lossPct, p.ALFLost)
		}
		p.ALFDone = sim.Duration(done)
		p.ALFGoodputMbps = stats.Mbps(int64(cfg.Bytes), p.ALFDone)
		p.ALFIdleFrac = 1 - app.busy.Seconds()/p.ALFDone.Seconds()
	}
	return p, nil
}

// RunF2Sweep runs the loss sweep the F2 figure plots.
func RunF2Sweep(cfg F2Config, lossPcts []float64) ([]F2Point, error) {
	pts := make([]F2Point, 0, len(lossPcts))
	for _, l := range lossPcts {
		pt, err := RunF2(cfg, l)
		if err != nil {
			return pts, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}
