package experiments

import (
	"fmt"
	"math/rand"
	"time"

	alf "repro/internal/core"
	"repro/internal/ilp"
	"repro/internal/layered"
	"repro/internal/netsim"
	"repro/internal/otp"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xcode"
)

// StackReport reproduces the paper's §4 TCP+ISODE experiment (E4): the
// complete layered stack moving a long OCTET STRING (baseline, no real
// conversion) versus an equal-length array of 32-bit integers
// (conversion-intensive), measured in host CPU time.
type StackReport struct {
	Codec      string
	ValueBytes int
	Values     int

	OctetMbps float64 // baseline: OCTET STRING payload
	IntMbps   float64 // conversion-intensive: []int32 payload
	Slowdown  float64 // OctetMbps / IntMbps (the paper's ~30x)

	// PresentationShare estimates the fraction of the
	// conversion-intensive stack's processing attributable to the
	// presentation layer (the paper's ~97%), from the wall-clock
	// difference against the baseline stack.
	PresentationShare float64
}

// stackRig is a layered stack over an impairment-free loopback used for
// CPU-cost measurement (virtual network time is free; every measured
// nanosecond is protocol processing).
type stackRig struct {
	sched *sim.Scheduler
	snd   *layered.Stack
	rcv   *layered.Stack
	got   int
}

func newStackRig(codec xcode.Codec, seed int64) *stackRig {
	s := sim.NewScheduler()
	n := netsim.New(s, seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{})
	ca := otp.New(s, ab.Send, otp.Config{MSS: 4096, SendWindow: 1 << 22, RecvWindow: 1 << 22, SendBuffer: 1 << 26})
	cb := otp.New(s, ba.Send, otp.Config{MSS: 4096, SendWindow: 1 << 22, RecvWindow: 1 << 22, SendBuffer: 1 << 26})
	a.SetHandler(func(p *netsim.Packet) { ca.HandleSegment(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { cb.HandleSegment(p.Payload) })
	r := &stackRig{sched: s}
	r.snd = layered.New(ca, codec, 0)
	r.rcv = layered.New(cb, codec, 0)
	r.rcv.OnValue = func(v xcode.Value) { r.got++ }
	return r
}

// transfer pushes values through the stack and runs the event loop to
// completion, returning an error if any value was lost.
func (r *stackRig) transfer(vals []xcode.Value) error {
	start := r.got
	for i := range vals {
		if err := r.snd.SendValue(vals[i]); err != nil {
			return err
		}
	}
	r.sched.Run()
	if r.got-start != len(vals) {
		return fmt.Errorf("stack delivered %d of %d values", r.got-start, len(vals))
	}
	return nil
}

// ILPStackReport is E6: the same workloads as E4 carried by the ALF
// transport with ILP-fused processing at both ends — the paper's
// proposed architecture measured against the layered status quo.
//
// Receive-side data passes for the integer workload:
//
//	layered: transport checksum, record copy, record carve,
//	         presentation decode, result allocation  (4-5 passes)
//	ALF/ILP: fragment placement fused with checksum (stage one),
//	         BER decode fused with the scatter into the caller's
//	         array (stage two)                        (2 passes)
type ILPStackReport struct {
	ValueBytes int
	Values     int

	OctetMbps float64 // raw-syntax ADUs (no conversion)
	IntMbps   float64 // BER int arrays, fused encode/decode
}

// RunStackILP measures E6 on the same loopback arrangement as RunStack.
func RunStackILP(valueBytes, values int, minTime time.Duration) (ILPStackReport, error) {
	rep := ILPStackReport{ValueBytes: valueBytes, Values: values}

	octets := make([]byte, valueBytes)
	rand.New(rand.NewSource(7)).Read(octets)
	ints := make([]int32, valueBytes/4)
	rnd := rand.New(rand.NewSource(8))
	for i := range ints {
		ints[i] = int32(rnd.Uint32())
	}
	volume := int64(valueBytes) * int64(values)

	// Preallocated buffers: the steady-state data path allocates only
	// inside the transport (fragment packets), as a real system would
	// pool.
	encBuf := make([]byte, 0, valueBytes*2)
	out := make([]int32, len(ints))

	run := func(useInts bool) (float64, error) {
		s := sim.NewScheduler()
		n := netsim.New(s, 13)
		a := n.NewNode("a")
		b := n.NewNode("b")
		ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{})
		acfg := alf.Config{MTU: valueBytes*2 + alf.HeaderSize + 8}
		snd, err := alf.NewSender(s, ab.Send, acfg)
		if err != nil {
			return 0, err
		}
		rcv, err := alf.NewReceiver(s, ba.Send, acfg)
		if err != nil {
			return 0, err
		}
		a.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
		b.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

		got := 0
		var stageTwoErr error
		rcv.OnADU = func(adu alf.ADU) {
			// Stage two: the application's fused presentation pass.
			if adu.Syntax == xcode.SyntaxBER {
				if _, _, err := ilp.DecodeBERInt32sInto(adu.Data, out); err != nil {
					stageTwoErr = err
					return
				}
			}
			got++
		}

		transfer := func() error {
			start := got
			for i := 0; i < values; i++ {
				var err error
				if useInts {
					// Sender-side fused conversion + checksum; ALF's own
					// fused copy+checksum carries it to the wire.
					encBuf, _ = ilp.EncodeBERInt32sChecksum(encBuf[:0], ints)
					_, err = snd.Send(uint64(i), xcode.SyntaxBER, encBuf)
				} else {
					_, err = snd.Send(uint64(i), xcode.SyntaxRaw, octets)
				}
				if err != nil {
					return err
				}
			}
			if err := s.Run(); err != nil {
				return err
			}
			if stageTwoErr != nil {
				return stageTwoErr
			}
			if got-start != values {
				return fmt.Errorf("ilp stack delivered %d of %d", got-start, values)
			}
			return nil
		}
		if err := transfer(); err != nil { // warm up
			return 0, err
		}
		var elapsed time.Duration
		var moved int64
		for elapsed < minTime {
			t0 := time.Now()
			if err := transfer(); err != nil {
				return 0, err
			}
			elapsed += time.Since(t0)
			moved += volume
		}
		return stats.Mbps(moved, elapsed), nil
	}

	var err error
	if rep.OctetMbps, err = run(false); err != nil {
		return rep, err
	}
	if rep.IntMbps, err = run(true); err != nil {
		return rep, err
	}
	return rep, nil
}

// RunStack measures E4 with the given codec: values of valueBytes
// bytes, count values per timing pass, repeated until minTime.
func RunStack(codec xcode.Codec, valueBytes, values int, minTime time.Duration) (StackReport, error) {
	rep := StackReport{Codec: codec.Name(), ValueBytes: valueBytes, Values: values}

	octets := make([]byte, valueBytes)
	rand.New(rand.NewSource(5)).Read(octets)
	ints := make([]int32, valueBytes/4)
	rnd := rand.New(rand.NewSource(6))
	for i := range ints {
		ints[i] = int32(rnd.Uint32())
	}

	octetVals := make([]xcode.Value, values)
	intVals := make([]xcode.Value, values)
	for i := range octetVals {
		octetVals[i] = xcode.BytesValue(octets)
		intVals[i] = xcode.Int32sValue(ints)
	}
	volume := int64(valueBytes) * int64(values)

	var err error
	timeCase := func(rig *stackRig, vals []xcode.Value) float64 {
		// Warm-up pass.
		if e := rig.transfer(vals); e != nil && err == nil {
			err = e
		}
		var elapsed time.Duration
		var moved int64
		for elapsed < minTime {
			start := time.Now()
			if e := rig.transfer(vals); e != nil && err == nil {
				err = e
			}
			elapsed += time.Since(start)
			moved += volume
		}
		return stats.Mbps(moved, elapsed)
	}

	rep.OctetMbps = timeCase(newStackRig(codec, 11), octetVals)
	rep.IntMbps = timeCase(newStackRig(codec, 12), intVals)
	if rep.IntMbps > 0 {
		rep.Slowdown = rep.OctetMbps / rep.IntMbps
	}
	// Per-byte processing time difference attributes the extra cost to
	// presentation conversion: share = (tInt - tOctet) / tInt.
	if rep.OctetMbps > 0 && rep.IntMbps > 0 {
		tOctet := 1 / rep.OctetMbps
		tInt := 1 / rep.IntMbps
		rep.PresentationShare = (tInt - tOctet) / tInt
	}
	return rep, err
}
