package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/atm"
	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xcode"
)

// F3Point is one ADU-size sample of the §5 size-bounding experiment:
// with a fixed bit-error rate and whole-ADU loss semantics, the ADU
// size has an interior optimum — too small wastes headers, too large
// makes every ADU fail.
type F3Point struct {
	ADUBytes int
	// PIntactPredicted is (1-BER)^(8*wire bytes per ADU), the paper's
	// "probability of any ADU having at least one uncorrected error
	// would approach one".
	PIntactPredicted float64
	// PIntactMeasured is the fraction of first transmissions that
	// arrived undamaged.
	PIntactMeasured float64
	// GoodputMbps is application bytes over completion time, recovery
	// included.
	GoodputMbps float64
	// Overhead is wire bytes sent divided by application bytes.
	Overhead float64
	Resends  int64
}

// F3Config parameterizes the sweep.
type F3Config struct {
	Bytes   int     // total transfer (default 1 MB)
	BER     float64 // bit error rate (default 2e-6)
	LinkBps float64 // default 100e6
	Seed    int64
}

func (c *F3Config) fill() {
	if c.Bytes == 0 {
		c.Bytes = 1 << 20
	}
	if c.BER == 0 {
		c.BER = 2e-6
	}
	if c.LinkBps == 0 {
		c.LinkBps = 100e6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunF3 measures one ADU size.
func RunF3(cfg F3Config, aduBytes int) (F3Point, error) {
	cfg.fill()
	p := F3Point{ADUBytes: aduBytes}

	s := sim.NewScheduler()
	n := netsim.New(s, cfg.Seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{
		RateBps: cfg.LinkBps, Delay: time.Millisecond, BitErrorRate: cfg.BER,
	})
	acfg := alf.Config{
		NackDelay:    5 * time.Millisecond,
		NackInterval: 5 * time.Millisecond,
		MaxNacks:     1000,
		HoldTime:     300 * time.Second,
		RateBps:      cfg.LinkBps,
	}
	snd, err := alf.NewSender(s, ab.Send, acfg)
	if err != nil {
		return p, err
	}
	rcv, err := alf.NewReceiver(s, ba.Send, acfg)
	if err != nil {
		return p, err
	}
	a.SetHandler(func(pk *netsim.Packet) { snd.HandleControl(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { rcv.HandlePacket(pk.Payload) })

	var done sim.Time
	received := 0
	total := (cfg.Bytes + aduBytes - 1) / aduBytes
	rcv.OnADU = func(adu alf.ADU) {
		received++
		if received == total {
			done = s.Now()
		}
	}
	chunk := make([]byte, aduBytes)
	sent := 0
	for off := 0; off < cfg.Bytes; off += aduBytes {
		nb := aduBytes
		if off+nb > cfg.Bytes {
			nb = cfg.Bytes - off
		}
		if _, err := snd.Send(uint64(off), xcode.SyntaxRaw, chunk[:nb]); err != nil {
			return p, err
		}
		sent++
	}
	if err := s.Run(); err != nil {
		return p, err
	}
	if received != total {
		return p, fmt.Errorf("f3: delivered %d of %d ADUs (adu=%d)", received, total, aduBytes)
	}

	// Wire bytes per ADU: payload + one header per fragment.
	frag := acfg.MTU
	if frag == 0 {
		frag = 1024 + alf.HeaderSize
	}
	fragPayload := (frag - alf.HeaderSize) &^ 7
	frags := (aduBytes + fragPayload - 1) / fragPayload
	wirePerADU := float64(aduBytes + frags*alf.HeaderSize)
	p.PIntactPredicted = math.Pow(1-cfg.BER, 8*wirePerADU)

	firstTx := int64(snd.Stats.ADUs)
	damaged := rcv.Stats.ChecksumFails + rcv.Stats.HeaderDrops
	// Damaged counts include retransmissions; approximate the intact
	// probability over all transmissions.
	allTx := firstTx + snd.Stats.ResentADUs
	if allTx > 0 {
		p.PIntactMeasured = 1 - float64(damaged)/float64(allTx)
	}
	p.Resends = snd.Stats.ResentADUs
	p.GoodputMbps = stats.Mbps(int64(cfg.Bytes), time.Duration(done))
	wireSent := ab.Stats.SentBytes
	p.Overhead = float64(wireSent) / float64(cfg.Bytes)
	return p, nil
}

// RunF3Sweep runs the ADU-size sweep of the F3 figure.
func RunF3Sweep(cfg F3Config, sizes []int) ([]F3Point, error) {
	pts := make([]F3Point, 0, len(sizes))
	for _, sz := range sizes {
		pt, err := RunF3(cfg, sz)
		if err != nil {
			return pts, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// F4Point is one cell-loss sample of the ATM experiment: ADUs ride an
// AAL3/4-style adaptation layer over 53-byte cells; cell loss surfaces
// as whole-ADU loss detected by the adaptation layer's sequence
// numbers, and ALF recovery repairs it.
type F4Point struct {
	CellLossPct float64
	// PADUPredicted is (1-p)^cells: the chance all of an ADU's cells
	// survive.
	PADUPredicted float64
	// PADUMeasured is the fraction of ADU transmissions that
	// reassembled.
	PADUMeasured float64
	// GoodputMbps is app bytes over completion (recovery included).
	GoodputMbps float64
	// CellsPerADU is the segmentation factor.
	CellsPerADU int
	Resends     int64
}

// F4Config parameterizes the ATM experiment.
type F4Config struct {
	Bytes    int // total transfer (default 512 KB)
	ADUBytes int // default 4096
	LinkBps  float64
	Seed     int64
}

func (c *F4Config) fill() {
	if c.Bytes == 0 {
		c.Bytes = 512 << 10
	}
	if c.ADUBytes == 0 {
		c.ADUBytes = 4096
	}
	if c.LinkBps == 0 {
		c.LinkBps = 150e6 // STM-1-ish
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunF4 measures one cell-loss point. The ALF fragment stream is
// segmented into cells below the ALF layer and reassembled above the
// link, so the ALF fragment is the AAL "message".
func RunF4(cfg F4Config, cellLossPct float64) (F4Point, error) {
	cfg.fill()
	p := F4Point{CellLossPct: cellLossPct}

	s := sim.NewScheduler()
	n := netsim.New(s, cfg.Seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	// Forward path carries cells; reverse path carries ALF control.
	ab := n.NewLink(a, b, netsim.LinkConfig{
		RateBps: cfg.LinkBps, Delay: time.Millisecond,
		MTU: atm.CellSize, LossProb: cellLossPct / 100,
	})
	ba := n.NewLink(b, a, netsim.LinkConfig{Delay: time.Millisecond})

	acfg := alf.Config{
		// One ALF fragment per ADU here: the adaptation layer does the
		// segmentation (MTU covers the ADU whole).
		MTU:          cfg.ADUBytes + alf.HeaderSize + 8,
		NackDelay:    5 * time.Millisecond,
		NackInterval: 5 * time.Millisecond,
		MaxNacks:     1000,
		HoldTime:     300 * time.Second,
		RateBps:      cfg.LinkBps,
	}
	seg := atm.NewSegmenter(1)
	snd, err := alf.NewSender(s, func(pkt []byte) error {
		seg.Segment(pkt, func(cell []byte) { ab.Send(cell) })
		return nil
	}, acfg)
	if err != nil {
		return p, err
	}
	rcv, err := alf.NewReceiver(s, ba.Send, acfg)
	if err != nil {
		return p, err
	}
	var aduArrivals int64 // AAL messages that were ALF DATA fragments
	reasm := atm.NewReassembler(1, func(mid uint16, msg []byte) {
		if alf.PacketType(msg) == 1 {
			aduArrivals++
		}
		rcv.HandlePacket(msg)
	})
	a.SetHandler(func(pk *netsim.Packet) { snd.HandleControl(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { reasm.Cell(pk.Payload) })

	total := (cfg.Bytes + cfg.ADUBytes - 1) / cfg.ADUBytes
	received := 0
	var done sim.Time
	rcv.OnADU = func(adu alf.ADU) {
		received++
		if received == total {
			done = s.Now()
		}
	}
	chunk := make([]byte, cfg.ADUBytes)
	for off := 0; off < cfg.Bytes; off += cfg.ADUBytes {
		nb := cfg.ADUBytes
		if off+nb > cfg.Bytes {
			nb = cfg.Bytes - off
		}
		if _, err := snd.Send(uint64(off), xcode.SyntaxRaw, chunk[:nb]); err != nil {
			return p, err
		}
	}
	if err := s.Run(); err != nil {
		return p, err
	}
	if received != total {
		return p, fmt.Errorf("f4: delivered %d of %d ADUs at %.1f%% cell loss",
			received, total, cellLossPct)
	}

	p.CellsPerADU = atm.CellsFor(cfg.ADUBytes + alf.HeaderSize)
	p.PADUPredicted = math.Pow(1-cellLossPct/100, float64(p.CellsPerADU))
	allTx := snd.Stats.ADUs + snd.Stats.ResentADUs
	if allTx > 0 {
		p.PADUMeasured = float64(aduArrivals) / float64(allTx)
	}
	p.Resends = snd.Stats.ResentADUs
	p.GoodputMbps = stats.Mbps(int64(cfg.Bytes), time.Duration(done))
	return p, nil
}

// RunF4Sweep runs the cell-loss sweep of the F4 figure.
func RunF4Sweep(cfg F4Config, lossPcts []float64) ([]F4Point, error) {
	pts := make([]F4Point, 0, len(lossPcts))
	for _, l := range lossPcts {
		pt, err := RunF4(cfg, l)
		if err != nil {
			return pts, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}
