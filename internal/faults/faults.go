// Package faults is the fault-injection scheduler: it mutates netsim
// state at scheduled points in virtual time, driven by the same
// sim.Scheduler as the traffic it disturbs, so every failure scenario
// is deterministic from (code, seed).
//
// The paper argues a new generation of protocols must be engineered for
// the failures networks actually exhibit — §3's "detecting network
// transmission problems" lists lost, duplicated, reordered and damaged
// data, and its fate-sharing discussion assumes paths that vanish
// outright. netsim produces the per-packet impairments; this package
// produces the *temporal* ones: links that flap, go dark, degrade, or
// partition the topology, and later heal. Recovery machinery above
// (alf, otp) is exercised by the transitions, not just the steady
// state.
//
// Four primitives compose every scenario:
//
//	Blackout   links down for a contiguous window
//	Flap       repeated short down/up cycles
//	Degrade    config swap (raised loss, stretched delay), later restored
//	Partition  the cut set between two node groups severed, then healed
//
// Overlapping faults on one link are refcounted: the link is down until
// the *last* overlapping window ends, and a degraded link's original
// config is restored only when the last degrade lifts. Scenario presets
// (Preset) bundle the primitives into named shapes shared by the soak
// harness and cmd/alfchaos.
package faults

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tracing"
)

// Stats counts injected fault events.
type Stats struct {
	Blackouts  int64 // blackout windows begun
	FlapCycles int64 // completed down/up flap cycles
	Degrades   int64 // degrade windows begun
	Partitions int64 // partition windows begun
	DownEvents int64 // links actually transitioned down
	Heals      int64 // links actually transitioned back up
	Restores   int64 // link configs restored after degrade
}

// Injector schedules fault events on a scheduler and applies them to
// links. One injector may drive any number of concurrent scenarios;
// per-link refcounts keep overlapping windows coherent.
type Injector struct {
	sched *sim.Scheduler
	rng   *sim.Rand

	// downCount refcounts administrative-down requests per link; the
	// link is up only while its count is zero.
	downCount map[*netsim.Link]int
	// degraded remembers the pre-degrade config and a refcount; the
	// original is restored when the last overlapping degrade ends.
	degraded map[*netsim.Link]*degradeState

	tracer *tracing.Tracer

	Stats Stats
}

// SetTracer binds the injector to the span recorder: every fault
// window (blackout, flap cycle, degrade, partition) becomes a span on
// the "faults" track, and drops on the affected links while the
// window is open link back to it causally. Nil disables (the default).
func (in *Injector) SetTracer(t *tracing.Tracer) { in.tracer = t }

// linkLabels collects the tracer track names of links so a fault
// window can be tied to the drops it causes.
func linkLabels(links []*netsim.Link) []string {
	names := make([]string, len(links))
	for i, l := range links {
		names[i] = l.Label()
	}
	return names
}

type degradeState struct {
	orig  netsim.LinkConfig
	count int
}

// New creates an injector on sched with its own deterministic RNG.
// The RNG is private to the injector, so randomized fault schedules do
// not perturb the draw sequence of the network under test.
func New(sched *sim.Scheduler, seed int64) *Injector {
	return &Injector{
		sched:     sched,
		rng:       sim.NewRand(seed),
		downCount: make(map[*netsim.Link]int),
		degraded:  make(map[*netsim.Link]*degradeState),
	}
}

// BindMetrics registers the injector's event counters and an
// active-fault gauge with the unified registry.
func (in *Injector) BindMetrics(r *metrics.Registry, labels ...string) {
	st := &in.Stats
	for _, e := range []struct {
		name string
		fn   func() int64
	}{
		{"faults.blackouts", func() int64 { return st.Blackouts }},
		{"faults.flap_cycles", func() int64 { return st.FlapCycles }},
		{"faults.degrades", func() int64 { return st.Degrades }},
		{"faults.partitions", func() int64 { return st.Partitions }},
		{"faults.down_events", func() int64 { return st.DownEvents }},
		{"faults.heals", func() int64 { return st.Heals }},
		{"faults.restores", func() int64 { return st.Restores }},
	} {
		r.CounterFunc(e.name, e.fn, labels...)
	}
	r.GaugeFunc("faults.links_down", func() int64 {
		var n int64
		for _, c := range in.downCount {
			if c > 0 {
				n++
			}
		}
		return n
	}, labels...)
}

// Active reports whether any injected fault is still in effect (a link
// held down or a config still degraded). Scenarios are built so this is
// false by the end of their horizon; invariant checks assert it.
func (in *Injector) Active() bool {
	for _, c := range in.downCount {
		if c > 0 {
			return true
		}
	}
	return len(in.degraded) > 0
}

// down acquires one down-reference on l, taking the link down on the
// first.
func (in *Injector) down(l *netsim.Link) {
	in.downCount[l]++
	if in.downCount[l] == 1 {
		l.SetDown(true)
		in.Stats.DownEvents++
	}
}

// up releases one down-reference on l, bringing the link up on the
// last.
func (in *Injector) up(l *netsim.Link) {
	if in.downCount[l] == 0 {
		return // unmatched release: a scenario bug, but never flap a live link
	}
	in.downCount[l]--
	if in.downCount[l] == 0 {
		l.SetDown(false)
		in.Stats.Heals++
	}
}

// Blackout takes links down at start (relative to now) and back up at
// start+duration. Queued-packet fate follows each link's DownPolicy.
func (in *Injector) Blackout(links []*netsim.Link, start, duration sim.Duration) {
	links = append([]*netsim.Link(nil), links...)
	var flow uint64
	in.sched.After(start, func() {
		in.Stats.Blackouts++
		flow = in.tracer.FaultBegan("blackout", linkLabels(links))
		for _, l := range links {
			in.down(l)
		}
	})
	in.sched.After(start+duration, func() {
		for _, l := range links {
			in.up(l)
		}
		in.tracer.FaultEnded(flow)
	})
}

// Conjunction schedules count repeated blackout windows: dark for
// dark, then passable for bright, starting at start. It models a solar
// conjunction — or any predictable occultation (orbiters dipping
// behind a planet, a rotating ground station) — where a deep-space
// link goes unusable on a schedule rather than once. Each dark window
// is an ordinary Blackout, so overlapping faults still compose via the
// per-link refcounts and the links are up after the final window.
func (in *Injector) Conjunction(links []*netsim.Link, start, dark, bright sim.Duration, count int) {
	period := dark + bright
	for i := 0; i < count; i++ {
		in.Blackout(links, start+sim.Duration(i)*period, dark)
	}
}

// Flap runs cycles of (down for downFor, up for upFor) on links,
// beginning at start. The links are guaranteed up after the last cycle.
func (in *Injector) Flap(links []*netsim.Link, start, downFor, upFor sim.Duration, cycles int) {
	links = append([]*netsim.Link(nil), links...)
	period := downFor + upFor
	for i := 0; i < cycles; i++ {
		at := start + sim.Duration(i)*period
		var flow uint64
		in.sched.After(at, func() {
			flow = in.tracer.FaultBegan("flap", linkLabels(links))
			for _, l := range links {
				in.down(l)
			}
		})
		in.sched.After(at+downFor, func() {
			in.Stats.FlapCycles++
			for _, l := range links {
				in.up(l)
			}
			in.tracer.FaultEnded(flow)
		})
	}
}

// Degrade swaps each link's config through mutate at start and restores
// the original at start+duration. Overlapping degrades of one link
// stack: the config seen by traffic is the most recent mutation, and
// the pre-fault original returns when the last window ends.
func (in *Injector) Degrade(links []*netsim.Link, mutate func(netsim.LinkConfig) netsim.LinkConfig,
	start, duration sim.Duration) {
	links = append([]*netsim.Link(nil), links...)
	var flow uint64
	in.sched.After(start, func() {
		in.Stats.Degrades++
		flow = in.tracer.FaultBegan("degrade", linkLabels(links))
		for _, l := range links {
			st := in.degraded[l]
			if st == nil {
				st = &degradeState{orig: l.Config()}
				in.degraded[l] = st
			}
			st.count++
			l.UpdateConfig(mutate(l.Config()))
		}
	})
	in.sched.After(start+duration, func() {
		for _, l := range links {
			st := in.degraded[l]
			if st == nil {
				continue
			}
			st.count--
			if st.count == 0 {
				l.UpdateConfig(st.orig)
				delete(in.degraded, l)
				in.Stats.Restores++
			}
		}
		in.tracer.FaultEnded(flow)
	})
}

// Partition severs every link between node groups a and b (the cut set
// per Network.LinksBetween) at start and heals it at start+duration.
func (in *Injector) Partition(net *netsim.Network, a, b []*netsim.Node, start, duration sim.Duration) {
	cut := net.LinksBetween(a, b)
	var flow uint64
	in.sched.After(start, func() {
		in.Stats.Partitions++
		flow = in.tracer.FaultBegan("partition", linkLabels(cut))
		for _, l := range cut {
			in.down(l)
		}
	})
	in.sched.After(start+duration, func() {
		for _, l := range cut {
			in.up(l)
		}
		in.tracer.FaultEnded(flow)
	})
}

// Targets names the topology pieces scenario presets manipulate. Trunk
// is the shared bottleneck (both directions); Forward is its
// data-bearing direction only, so a forward-only fault leaves the
// reverse control path (ACKs, NACKs) alive. GroupA/GroupB are the node
// groups a partition severs.
type Targets struct {
	Net            *netsim.Network
	Trunk          []*netsim.Link
	Forward        []*netsim.Link
	GroupA, GroupB []*netsim.Node
}

// ScenarioNames lists the Preset names in a stable order.
var ScenarioNames = []string{"flap", "blackout", "degrade", "partition", "random"}

// Preset schedules one named fault scenario over horizon. Every preset
// concentrates its faults in the early and middle of the horizon and
// guarantees full heal with a quiet tail, so a run of the scheduler to
// the horizon can assert post-heal recovery.
//
//	flap       the forward trunk direction flaps 4 times (control path
//	           stays up — asymmetric outage)
//	blackout   the whole trunk goes dark for a third of the horizon
//	degrade    trunk loss raised to 20% and delay x4 for half the horizon
//	partition  the cut set between GroupA and GroupB severed for a third
//	random     a seeded composition of the above at random times/widths
func (in *Injector) Preset(name string, t Targets, horizon sim.Duration) error {
	switch name {
	case "flap":
		cycle := horizon / 16
		in.Flap(t.Forward, horizon/8, cycle/2, cycle, 4)
	case "blackout":
		in.Blackout(t.Trunk, horizon/8, horizon/3)
	case "degrade":
		in.Degrade(t.Trunk, func(cfg netsim.LinkConfig) netsim.LinkConfig {
			cfg.LossProb = 0.2
			cfg.Delay *= 4
			return cfg
		}, horizon/8, horizon/2)
	case "partition":
		in.Partition(t.Net, t.GroupA, t.GroupB, horizon/8, horizon/3)
	case "random":
		in.randomSchedule(t, horizon)
	default:
		return fmt.Errorf("faults: unknown scenario %q (have %v)", name, ScenarioNames)
	}
	return nil
}

// randomSchedule composes 3-6 randomized faults inside the first two
// thirds of the horizon, each short enough to end before the quiet
// tail. Same seed, same schedule.
func (in *Injector) randomSchedule(t Targets, horizon sim.Duration) {
	n := 3 + in.rng.Intn(4)
	window := horizon * 2 / 3
	for i := 0; i < n; i++ {
		start := sim.Duration(in.rng.Int63() % int64(window))
		most := window - start
		if lim := horizon / 4; most > lim {
			most = lim
		}
		// Durations in [most/8, most]: long enough to matter, bounded so
		// every fault heals inside the window.
		dur := most/8 + sim.Duration(in.rng.Int63()%int64(most-most/8+1))
		switch in.rng.Intn(4) {
		case 0:
			cycles := 2 + in.rng.Intn(3)
			period := dur / sim.Duration(cycles)
			in.Flap(t.Forward, start, period/3, period-period/3, cycles)
		case 1:
			in.Blackout(t.Trunk, start, dur)
		case 2:
			loss := 0.05 + 0.25*in.rng.Float64()
			in.Degrade(t.Trunk, func(cfg netsim.LinkConfig) netsim.LinkConfig {
				cfg.LossProb = loss
				cfg.Delay *= 2
				return cfg
			}, start, dur)
		case 3:
			in.Partition(t.Net, t.GroupA, t.GroupB, start, dur)
		}
	}
}
