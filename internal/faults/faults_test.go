package faults

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// rig is a minimal two-node topology with a duplex link.
type rig struct {
	sched    *sim.Scheduler
	net      *netsim.Network
	a, b     *netsim.Node
	ab, ba   *netsim.Link
	arrived  int
	inj      *Injector
	arriveAt []sim.Time
}

func newRig(t *testing.T, cfg netsim.LinkConfig) *rig {
	t.Helper()
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, cfg)
	r := &rig{sched: s, net: n, a: a, b: b, ab: ab, ba: ba, inj: New(s, 42)}
	b.SetHandler(func(*netsim.Packet) {
		r.arrived++
		r.arriveAt = append(r.arriveAt, s.Now())
	})
	return r
}

func (r *rig) sendAt(d sim.Duration) {
	r.sched.After(d, func() { r.ab.Send([]byte("x")) })
}

func TestBlackoutWindow(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond})
	r.inj.Blackout([]*netsim.Link{r.ab}, 100*time.Millisecond, 200*time.Millisecond)
	r.sendAt(50 * time.Millisecond)  // before: delivered
	r.sendAt(200 * time.Millisecond) // during: dropped
	r.sendAt(400 * time.Millisecond) // after heal: delivered
	r.sched.Run()
	if r.arrived != 2 {
		t.Errorf("arrived = %d, want 2", r.arrived)
	}
	if r.ab.Stats.DownDrops != 1 {
		t.Errorf("DownDrops = %d, want 1", r.ab.Stats.DownDrops)
	}
	st := r.inj.Stats
	if st.Blackouts != 1 || st.DownEvents != 1 || st.Heals != 1 {
		t.Errorf("stats = %+v", st)
	}
	if r.inj.Active() {
		t.Error("injector still active after heal")
	}
}

func TestFlapCycles(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond})
	const cycles = 5
	r.inj.Flap([]*netsim.Link{r.ab}, 10*time.Millisecond,
		5*time.Millisecond, 15*time.Millisecond, cycles)
	// One send per millisecond across the flapping span.
	for i := 0; i < 150; i++ {
		r.sendAt(sim.Duration(i) * time.Millisecond)
	}
	r.sched.Run()
	st := r.inj.Stats
	if st.FlapCycles != cycles || st.DownEvents != cycles || st.Heals != cycles {
		t.Errorf("stats = %+v, want %d cycles", st, cycles)
	}
	// 5 cycles x 5ms down at 1 send/ms: about 25 sends die.
	if r.ab.Stats.DownDrops < 20 || r.ab.Stats.DownDrops > 30 {
		t.Errorf("DownDrops = %d, want ~25", r.ab.Stats.DownDrops)
	}
	if r.arrived != 150-int(r.ab.Stats.DownDrops) {
		t.Errorf("arrived = %d, drops = %d", r.arrived, r.ab.Stats.DownDrops)
	}
	if r.ab.Down() {
		t.Error("link left down after final cycle")
	}
}

func TestDegradeSwapsAndRestoresConfig(t *testing.T) {
	base := netsim.LinkConfig{Delay: time.Millisecond}
	r := newRig(t, base)
	r.inj.Degrade([]*netsim.Link{r.ab}, func(cfg netsim.LinkConfig) netsim.LinkConfig {
		cfg.LossProb = 1 // certain loss: observable without statistics
		return cfg
	}, 100*time.Millisecond, 100*time.Millisecond)
	r.sendAt(50 * time.Millisecond)  // before: delivered
	r.sendAt(150 * time.Millisecond) // during: lost
	r.sendAt(300 * time.Millisecond) // after restore: delivered
	r.sched.Run()
	if r.arrived != 2 {
		t.Errorf("arrived = %d, want 2", r.arrived)
	}
	if r.ab.Stats.LineLosses != 1 {
		t.Errorf("LineLosses = %d, want 1", r.ab.Stats.LineLosses)
	}
	if got := r.ab.Config(); got != base {
		t.Errorf("config not restored: %+v", got)
	}
	if r.inj.Stats.Degrades != 1 || r.inj.Stats.Restores != 1 {
		t.Errorf("stats = %+v", r.inj.Stats)
	}
	if r.inj.Active() {
		t.Error("injector active after restore")
	}
}

func TestPartitionSeversCutSet(t *testing.T) {
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	a := n.NewNode("a")
	rt := n.NewRouter("r")
	b := n.NewNode("b")
	aR, rA := n.NewDuplex(a, rt.Node, netsim.LinkConfig{Delay: time.Millisecond})
	rB, bR := n.NewDuplex(rt.Node, b, netsim.LinkConfig{Delay: time.Millisecond})
	rt.AddRoute(b, rB)
	rt.AddRoute(a, rA)
	_ = bR

	got := 0
	b.SetHandler(func(*netsim.Packet) { got++ })

	inj := New(s, 7)
	inj.Partition(n, []*netsim.Node{a, rt.Node}, []*netsim.Node{b},
		100*time.Millisecond, 100*time.Millisecond)

	send := func(at sim.Duration) {
		s.After(at, func() { netsim.SendVia(aR, b, []byte("x")) })
	}
	send(50 * time.Millisecond)  // through
	send(150 * time.Millisecond) // severed at the r->b hop
	send(300 * time.Millisecond) // healed
	s.Run()

	if got != 2 {
		t.Errorf("delivered = %d, want 2", got)
	}
	// Only the r<->b pair is the cut set; the a<->r pair must stay up.
	if rB.Stats.DownDrops != 1 {
		t.Errorf("cut-set DownDrops = %d, want 1", rB.Stats.DownDrops)
	}
	if aR.Stats.DownDrops != 0 {
		t.Errorf("a->r dropped %d; it is not in the cut set", aR.Stats.DownDrops)
	}
	if inj.Stats.Partitions != 1 || inj.Stats.DownEvents != 2 || inj.Stats.Heals != 2 {
		t.Errorf("stats = %+v", inj.Stats)
	}
}

func TestOverlappingBlackoutsRefcount(t *testing.T) {
	// Two windows: [100,300) and [200,400). The link must stay down
	// until 400ms — the first heal releases a reference, not the link.
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond})
	r.inj.Blackout([]*netsim.Link{r.ab}, 100*time.Millisecond, 200*time.Millisecond)
	r.inj.Blackout([]*netsim.Link{r.ab}, 200*time.Millisecond, 200*time.Millisecond)
	r.sendAt(350 * time.Millisecond) // inside the union: dropped
	r.sendAt(450 * time.Millisecond) // after the union: delivered
	r.sched.Run()
	if r.arrived != 1 || r.ab.Stats.DownDrops != 1 {
		t.Errorf("arrived = %d, DownDrops = %d", r.arrived, r.ab.Stats.DownDrops)
	}
	// One physical down/up pair despite two logical windows.
	if r.inj.Stats.DownEvents != 1 || r.inj.Stats.Heals != 1 {
		t.Errorf("stats = %+v", r.inj.Stats)
	}
}

func TestOverlappingDegradesRestoreOriginal(t *testing.T) {
	base := netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.01}
	r := newRig(t, base)
	raise := func(p float64) func(netsim.LinkConfig) netsim.LinkConfig {
		return func(cfg netsim.LinkConfig) netsim.LinkConfig {
			cfg.LossProb = p
			return cfg
		}
	}
	r.inj.Degrade([]*netsim.Link{r.ab}, raise(0.5), 100*time.Millisecond, 200*time.Millisecond)
	r.inj.Degrade([]*netsim.Link{r.ab}, raise(0.9), 150*time.Millisecond, 100*time.Millisecond)
	r.sched.After(200*time.Millisecond, func() {
		if got := r.ab.Config().LossProb; got != 0.9 {
			t.Errorf("inner degrade not applied: LossProb = %v", got)
		}
	})
	r.sched.After(275*time.Millisecond, func() {
		// The inner window ended but the outer still holds: original must
		// not be back yet.
		if got := r.ab.Config().LossProb; got == base.LossProb {
			t.Error("original config restored while a degrade window still open")
		}
	})
	r.sched.Run()
	if got := r.ab.Config(); got != base {
		t.Errorf("config after all windows = %+v, want original", got)
	}
	if r.inj.Stats.Restores != 1 {
		t.Errorf("Restores = %d, want 1 (only the last window restores)", r.inj.Stats.Restores)
	}
}

func TestPresetUnknownScenario(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	if err := r.inj.Preset("meteor", Targets{}, time.Second); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestPresetsHealWithinHorizon(t *testing.T) {
	for _, name := range ScenarioNames {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond})
			tg := Targets{
				Net:     r.net,
				Trunk:   []*netsim.Link{r.ab, r.ba},
				Forward: []*netsim.Link{r.ab},
				GroupA:  []*netsim.Node{r.a},
				GroupB:  []*netsim.Node{r.b},
			}
			const horizon = 10 * time.Second
			if err := r.inj.Preset(name, tg, horizon); err != nil {
				t.Fatal(err)
			}
			r.sched.RunUntil(sim.Time(0).Add(horizon))
			if r.inj.Active() {
				t.Errorf("scenario %q left faults active at the horizon", name)
			}
			if r.ab.Down() || r.ba.Down() {
				t.Errorf("scenario %q left a link down", name)
			}
			if got := r.ab.Config(); got != (netsim.LinkConfig{Delay: time.Millisecond}) {
				t.Errorf("scenario %q left config %+v", name, got)
			}
		})
	}
}

func TestRandomScheduleDeterminism(t *testing.T) {
	run := func(seed int64) Stats {
		r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond})
		r.inj = New(r.sched, seed)
		tg := Targets{
			Net:     r.net,
			Trunk:   []*netsim.Link{r.ab, r.ba},
			Forward: []*netsim.Link{r.ab},
			GroupA:  []*netsim.Node{r.a},
			GroupB:  []*netsim.Node{r.b},
		}
		r.inj.Preset("random", tg, 10*time.Second)
		r.sched.RunUntil(sim.Time(0).Add(10 * time.Second))
		return r.inj.Stats
	}
	if run(3) != run(3) {
		t.Error("same seed produced different fault schedules")
	}
	a, b := run(3), run(4)
	if a == b {
		t.Logf("seeds 3 and 4 coincide (%+v); suspicious but not fatal", a)
	}
}
