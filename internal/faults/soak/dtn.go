package soak

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	alf "repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/relay"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/xcode"
)

// This file is the DTN scenario family: a three-hop interplanetary
// path with an eight-minute one-way delay whose middle hop goes dark
// for tens of minutes at a time (solar conjunction). The run checks
// the delay-tolerant invariants:
//
//   - Every Critical ADU is delivered exactly once, blackouts and all.
//   - Custody-relay storage never exceeds its configured bound.
//   - After submission stops the whole rig drains to quiescence:
//     custody stores, sender retention, reassembly state, and link
//     queues all empty without livelock.
//   - No ADU is delivered twice or corrupted (both modes).
//
// Mode selects the stance: "custody" staffs both intermediate nodes
// with custody-transfer relays (internal/relay) and paces the sender
// with the model-based WindowedRate controller; "aimd" is the
// end-to-end baseline — the same nodes merely forward, and the sender
// runs the loss-driven AIMD controller that serves terrestrial paths
// well. The same invariants are evaluated either way: the point of
// the family is that custody+model passes where the end-to-end
// stance demonstrably does not — sender retention expires during
// blackout+RTT recovery loops (Critical ADUs lost), and one
// stale loss report collapses the AIMD rate for hours of virtual
// time.

// DTNConfig parameterizes one DTN run. Zero fields take defaults.
type DTNConfig struct {
	// Seed determines the run (loss draws, heartbeat jitter).
	Seed int64
	// Mode is "custody" (relays + WindowedRate) or "aimd" (plain
	// forwarding + AIMD). Default "custody".
	Mode string
	// Duration is the virtual horizon; submission occupies the first
	// half and the tail is quiet for recovery and drain (default 4 h).
	Duration sim.Duration
	// HopDelay is the one-way delay of each of the three hops
	// (default 160 s, so the path is 8 min one way / 16 min RTT).
	HopDelay sim.Duration
	// ADUBytes sizes each ADU (default 32 KiB).
	ADUBytes int
	// Count is the number of ADUs submitted (default 240: one every
	// 30 s of the 2 h window).
	Count int
	// StorageLimit bounds each relay's custody store (default 2 MiB —
	// far below a blackout's worth of traffic, so eviction must engage,
	// but comfortably above the Critical tier's total footprint).
	StorageLimit int
	// Metrics and Tracer, if non-nil, instrument the whole rig.
	Metrics *metrics.Registry
	Tracer  *tracing.Tracer
	// Recorder, if non-nil, flight-records the run (see Config.Recorder).
	// An interval of minutes suits the multi-hour horizon: the default
	// 512-sample ring then spans both conjunction windows.
	Recorder *telemetry.Recorder
}

func (c *DTNConfig) fill() {
	if c.Recorder != nil && c.Metrics == nil {
		c.Metrics = metrics.New()
	}
	if c.Mode == "" {
		c.Mode = "custody"
	}
	if c.Duration == 0 {
		c.Duration = 4 * time.Hour
	}
	if c.HopDelay == 0 {
		c.HopDelay = 160 * time.Second
	}
	if c.ADUBytes == 0 {
		c.ADUBytes = 32 << 10
	}
	if c.Count == 0 {
		c.Count = 240
	}
	if c.StorageLimit == 0 {
		c.StorageLimit = 2 << 20
	}
}

// DTNModes lists the stances the family contrasts.
var DTNModes = []string{"custody", "aimd"}

// DTNResult reports one DTN run. Violations empty means every
// delay-tolerant invariant held.
type DTNResult struct {
	Mode    string
	Seed    int64
	Horizon sim.Duration

	Submitted    int
	Delivered    int // distinct ADUs at the receiver
	CriticalLost int // the invariant: must be zero
	LostADUs     int // receiver gave up (any class)
	GoodputBps   float64
	FinalRateBps float64

	// Custody-plane accounting (zero in aimd mode).
	RelayPeakBytes  int64 // max over both relays; must stay <= bound
	RelayEvicted    int64
	RelayShed       int64
	RelayRetxADUs   int64
	NacksAnswered   int64 // recovery served one hop away
	CustodyReleased int64 // sender retention freed by custody transfer

	// End-to-end stress markers (what the baseline dies of).
	DeadlineDrops int64 // sender retention expired unconfirmed
	UnfilledNacks int64 // recovery requests nobody could answer

	DrainEvents uint64
	EndVirtual  sim.Time
	Violations  []string
}

// Passed reports whether every invariant held.
func (r *DTNResult) Passed() bool { return len(r.Violations) == 0 }

func (r *DTNResult) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// RunDTN executes one DTN scenario to quiescence and returns the
// invariant report. It errors only on harness misconfiguration; the
// baseline's losses are Violations, not errors.
func RunDTN(cfg DTNConfig) (*DTNResult, error) {
	cfg.fill()
	res := &DTNResult{Mode: cfg.Mode, Seed: cfg.Seed, Horizon: cfg.Duration}

	// ---- Topology: a three-hop chain. All custody action is on the
	// intermediate nodes; the middle hop is the one conjunction takes.
	//
	//	src ══h1══ r1 ══h2══ r2 ══h3══ dst
	//	          (relay)  (relay)
	//	              └─ 2x 40-min blackout
	s := sim.NewScheduler()
	cfg.Tracer.Bind(s)
	cfg.Recorder.Bind(s, cfg.Metrics, sim.Time(0).Add(cfg.Duration))
	net := netsim.New(s, cfg.Seed)
	src := net.NewNode("src")
	r1 := net.NewNode("r1")
	r2 := net.NewNode("r2")
	dst := net.NewNode("dst")

	// Deep pipes: at these delays the constraint is the pipe, not a
	// queue (see netsim profile docs), so queues are unbounded and the
	// only impairments are the middle hop's residual loss and the
	// conjunction blackouts.
	hop := func(loss float64) netsim.LinkConfig {
		return netsim.LinkConfig{RateBps: 2e6, Delay: cfg.HopDelay, LossProb: loss}
	}
	h1, h1r := net.NewDuplex(src, r1, hop(0))
	h2, h2r := net.NewDuplex(r1, r2, hop(0.005))
	h3, h3r := net.NewDuplex(r2, dst, hop(0))

	if cfg.Metrics != nil {
		net.SetMetrics(cfg.Metrics)
	}
	net.SetTracer(cfg.Tracer)

	// ---- Endpoints. The DTN parameter scale: NACK cadences in
	// minutes, retention deadlines under an hour, heartbeat backoff up
	// to an hour — the overflow-guard regime.
	aCfg := alf.Config{
		Policy:  alf.SenderBuffered,
		RateBps: 1e6,
		// NACK pacing vs giving up: with exponential backoff the n-th
		// NACK waits NackDelay<<n, so MaxNacks 4 at a 4-minute base
		// means recovery is attempted for about an hour and the
		// receiver abandons an ADU roughly HoldTime after noticing it
		// — the abandonment horizon must fit the drain bound below.
		NackDelay:            4 * time.Minute,
		NackInterval:         4 * time.Minute,
		HoldTime:             2 * time.Hour,
		MaxNacks:             4,
		HeartbeatInterval:    5 * time.Minute,
		HeartbeatMaxInterval: time.Hour,
		HeartbeatLimit:       1 << 30,
		ADUDeadline:          45 * time.Minute,
		FeedbackInterval:     2 * time.Minute,
		PathRTT:              2 * 3 * cfg.HopDelay,
		// Shedding is the overload family's mechanism; here it would
		// only blur the custody/rate contrast, so it is parked.
		ShedBacklog:  time.Hour,
		ShedLossFrac: 1,
		Metrics:      cfg.Metrics,
		Tracer:       cfg.Tracer,
	}
	switch cfg.Mode {
	case "custody":
		aCfg.Custody = true
		aCfg.Controller = &alf.WindowedRate{
			Floor: 128e3, Ceil: 2e6,
			// A couple of idle feedback intervals is a slow path; a
			// report aged past the RTT plus slack means the path was
			// gone, not slow.
			StaleAfter: 20 * time.Minute,
		}
	case "aimd":
		aCfg.Controller = &alf.AIMD{Floor: 128e3, Ceil: 2e6}
	default:
		return nil, fmt.Errorf("dtn: unknown mode %q", cfg.Mode)
	}

	snd, err := alf.NewSender(s, h1.Send, aCfg)
	if err != nil {
		return nil, err
	}
	snd.SendRef = h1.SendRef
	rcv, err := alf.NewReceiver(s, h3r.Send, aCfg)
	if err != nil {
		return nil, err
	}
	src.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	dst.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

	// ---- The intermediate nodes: custody relays, or plain forwarders
	// for the baseline.
	var relays []*relay.Relay
	if cfg.Mode == "custody" {
		rCfg := relay.Config{
			StorageLimit: cfg.StorageLimit,
			CustodyTimer: 2 * time.Minute,
			// The slow backstop for a lost heal burst: well above the
			// downstream round trip.
			RetryInterval: 30 * time.Minute,
			HealPoll:      30 * time.Second,
			Metrics:       cfg.Metrics,
			Tracer:        cfg.Tracer,
		}
		c1, c2 := rCfg, rCfg
		c1.Name, c1.RelayID = "r1", 1
		c2.Name, c2.RelayID = "r2", 2
		rl1, err := relay.New(s, r1, h1r, h2, c1)
		if err != nil {
			return nil, err
		}
		rl2, err := relay.New(s, r2, h2r, h3, c2)
		if err != nil {
			return nil, err
		}
		relays = []*relay.Relay{rl1, rl2}
	} else {
		// Baseline forwarding: data-plane frames toward the receiver,
		// control-plane frames toward the sender, zero-copy either way.
		fwd := func(up, down *netsim.Link) netsim.Handler {
			return func(p *netsim.Packet) {
				switch alf.PacketType(p.Payload) {
				case 2, 4, 5:
					_ = up.SendRef(p.Retain())
				default:
					_ = down.SendRef(p.Retain())
				}
			}
		}
		r1.SetHandler(fwd(h1r, h2))
		r2.SetHandler(fwd(h2r, h3))
	}

	// ---- Conjunction: two 40-minute blackouts of the middle hop,
	// 30 minutes of daylight between, starting half an hour in. Both
	// directions die — data, NACKs, feedback, and custody acks for the
	// downstream leg all stop.
	in := faults.New(s, cfg.Seed)
	in.Conjunction([]*netsim.Link{h2, h2r}, 30*time.Minute, 40*time.Minute, 30*time.Minute, 2)

	// ---- Workload: Count ADUs paced evenly over the first half of
	// the horizon, deterministic payloads, the standard priority mix
	// (one Critical per ten).
	delivered := make(map[uint64]int)
	submitted := make(map[uint64]int)
	res.Submitted = cfg.Count

	rcv.OnADU = func(adu alf.ADU) {
		delivered[adu.Name]++
		if delivered[adu.Name] > 1 {
			res.violatef("ADU %d delivered %d times", adu.Name, delivered[adu.Name])
			return
		}
		k, known := submitted[adu.Name]
		if !known {
			res.violatef("ADU %d delivered but never submitted", adu.Name)
			return
		}
		if adu.Tag != aduTag(uint64(k)) {
			res.violatef("ADU %d delivered with tag %d, want %d", adu.Name, adu.Tag, aduTag(uint64(k)))
		}
		if !bytes.Equal(adu.Data, aduPayload(uint64(k), cfg.ADUBytes)) {
			res.violatef("ADU %d delivered corrupted", adu.Name)
		}
		res.Delivered++
	}
	rcv.OnLost = func(name uint64) {
		res.LostADUs++
		if k, known := submitted[name]; known && aduClass(uint64(k)) == alf.Critical {
			res.CriticalLost++
			res.violatef("Critical ADU %d lost across the blackout", name)
		}
	}

	window := cfg.Duration / 2
	for k := 0; k < cfg.Count; k++ {
		k := k
		s.After(window*sim.Duration(k)/sim.Duration(cfg.Count), func() {
			name, err := snd.SendClass(aduTag(uint64(k)), xcode.SyntaxRaw,
				aduPayload(uint64(k), cfg.ADUBytes), aduClass(uint64(k)))
			if err != nil {
				res.violatef("Send(%d) failed: %v", k, err)
				return
			}
			submitted[name] = k
		})
	}

	// ---- Run to the horizon, then drain. The drain allowance is
	// hours of virtual time: HoldTime-scale give-up timers are part of
	// normal DTN operation, not livelock.
	s.RunUntil(sim.Time(0).Add(cfg.Duration))
	maxVirtual := sim.Time(0).Add(cfg.Duration + 3*time.Hour)
	firedAtHorizon := s.Fired()
	const maxDrainEvents = 5_000_000
	for s.Step() {
		if s.Now() > maxVirtual {
			res.violatef("livelock: events still firing at %v past the horizon", s.Now())
			break
		}
		if s.Fired()-firedAtHorizon > maxDrainEvents {
			res.violatef("livelock: %d drain events without quiescence", s.Fired()-firedAtHorizon)
			break
		}
	}
	res.DrainEvents = s.Fired() - firedAtHorizon
	res.EndVirtual = s.Now()
	cfg.Recorder.Sample() // final post-drain reading for the black box

	// ---- Invariants.
	// Exactly-once for the Critical tier: delivered, once, no matter
	// what the conjunction did. (OnLost catches the explicit give-up;
	// this catches ADUs that silently never arrived.)
	names := make([]uint64, 0, len(submitted))
	for name := range submitted {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	for _, name := range names {
		if aduClass(uint64(submitted[name])) == alf.Critical && delivered[name] != 1 {
			res.violatef("Critical ADU %d delivered %d times, want exactly once", name, delivered[name])
		}
	}

	// Clean drain: nothing retained, stored, pending, or queued.
	if n := snd.BufferedADUs(); n != 0 {
		res.violatef("sender still retains %d ADUs after drain", n)
	}
	if b := snd.Backlog(); b != 0 {
		res.violatef("pacer still %v backlogged after drain", b)
	}
	if n := rcv.Pending(); n != 0 {
		res.violatef("receiver still holds %d partial ADUs after drain", n)
	}
	if n := rcv.Missing(); n != 0 {
		res.violatef("receiver still tracks %d missing ADUs after drain", n)
	}
	for _, l := range net.Links() {
		if q := l.QueueLen(); q != 0 {
			res.violatef("link %s->%s still queues %d packets after drain",
				l.From().Name(), l.To().Name(), q)
		}
	}

	// Custody plane: bounded storage, drained stores.
	for _, rl := range relays {
		if rl.Stats.MaxStoredBytes > int64(cfg.StorageLimit) {
			res.violatef("relay custody store peaked at %d bytes, bound is %d",
				rl.Stats.MaxStoredBytes, cfg.StorageLimit)
		}
		if n := rl.StoredADUs(); n != 0 {
			res.violatef("relay still holds %d ADUs in custody after drain", n)
		}
		if rl.Stats.MaxStoredBytes > res.RelayPeakBytes {
			res.RelayPeakBytes = rl.Stats.MaxStoredBytes
		}
		res.RelayEvicted += rl.Stats.Evicted
		res.RelayShed += rl.Stats.ShedFrags
		res.RelayRetxADUs += rl.Stats.RetxADUs
		res.NacksAnswered += rl.Stats.NacksAnswered
	}

	res.CustodyReleased = snd.Stats.CustodyReleased
	res.DeadlineDrops = snd.Stats.DeadlineDrops
	res.UnfilledNacks = snd.Stats.UnfilledNacks
	res.FinalRateBps = snd.Rate()
	res.GoodputBps = float64(res.Delivered) * float64(cfg.ADUBytes) * 8 / window.Seconds()
	noteViolations(cfg.Recorder, res.Violations)
	return res, nil
}
