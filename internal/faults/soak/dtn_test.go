package soak

import (
	"reflect"
	"testing"
	"time"
)

// TestDTNCustodySurvivesConjunction is the core DTN soak: a three-hop
// path with an eight-minute one-way delay loses its middle hop to two
// 40-minute blackouts, and the custody stance (relays + WindowedRate)
// must uphold every delay-tolerant invariant — Critical exactly-once,
// bounded relay storage, clean drain.
func TestDTNCustodySurvivesConjunction(t *testing.T) {
	rec := RecorderFor(4*time.Hour, DTNDetectors(DTNConfig{})...)
	dumpOnFailure(t, rec, "dtn-custody")
	res, err := RunDTN(DTNConfig{Seed: 1, Mode: "custody", Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	// The run must have actually exercised the custody machinery, not
	// idled through a gentle scenario.
	if res.CustodyReleased == 0 {
		t.Error("custody transfer never released sender retention")
	}
	if res.RelayEvicted == 0 {
		t.Error("relay store never hit its bound; eviction untested")
	}
	if res.NacksAnswered == 0 {
		t.Error("relays never answered a NACK locally")
	}
	if res.RelayRetxADUs == 0 {
		t.Error("relays never re-originated custody after the heal")
	}
	t.Logf("delivered=%d/%d critLost=%d peakStore=%dB (bound %d) evicted=%d retx=%d drain=%d end=%v",
		res.Delivered, res.Submitted, res.CriticalLost, res.RelayPeakBytes,
		2<<20, res.RelayEvicted, res.RelayRetxADUs, res.DrainEvents, res.EndVirtual)
}

// TestDTNEndToEndCollapses: the same conjunction with plain forwarders
// and the terrestrial AIMD controller must demonstrably fail —
// sender retention expires during blackout-spanning recovery loops and
// Critical ADUs die. This is the contrast that justifies the custody
// plane.
func TestDTNEndToEndCollapses(t *testing.T) {
	res, err := RunDTN(DTNConfig{Seed: 1, Mode: "aimd"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("end-to-end recovery across a 40-minute blackout violated no invariant; the contrast is gone")
	}
	if res.CriticalLost == 0 {
		t.Error("end-to-end run lost no Critical ADUs; custody shows no contrast")
	}
	if res.DeadlineDrops == 0 {
		t.Error("no retention deadline expired; the blackout never stressed the sender")
	}
	t.Logf("delivered=%d/%d critLost=%d deadlineDrops=%d unfilledNacks=%d violations=%d",
		res.Delivered, res.Submitted, res.CriticalLost, res.DeadlineDrops,
		res.UnfilledNacks, len(res.Violations))
}

// TestDTNCustodyBeatsEndToEnd pins the contrast on one seed: same
// path, same conjunction, and custody must deliver strictly more while
// losing zero Critical traffic.
func TestDTNCustodyBeatsEndToEnd(t *testing.T) {
	custody, err := RunDTN(DTNConfig{Seed: 7, Mode: "custody"})
	if err != nil {
		t.Fatal(err)
	}
	aimd, err := RunDTN(DTNConfig{Seed: 7, Mode: "aimd"})
	if err != nil {
		t.Fatal(err)
	}
	if custody.Delivered <= aimd.Delivered {
		t.Errorf("custody delivered %d, not above end-to-end %d",
			custody.Delivered, aimd.Delivered)
	}
	if custody.CriticalLost != 0 {
		t.Errorf("custody lost %d Critical ADUs", custody.CriticalLost)
	}
	if aimd.CriticalLost == 0 {
		t.Error("end-to-end lost no Critical ADUs; no contrast")
	}
}

// TestDTNDeterminism: a DTN run is a pure function of its config — the
// fixed-seed reproducibility `make soak-dtn` relies on.
func TestDTNDeterminism(t *testing.T) {
	for _, mode := range DTNModes {
		cfg := DTNConfig{Seed: 42, Mode: mode}
		a, err := RunDTN(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunDTN(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: identical configs diverged:\n%+v\n%+v", mode, a, b)
		}
	}
}

// TestDTNSeedSweep: custody's no-loss guarantee is not a property of
// one lucky seed.
func TestDTNSeedSweep(t *testing.T) {
	seeds := 5
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		res, err := RunDTN(DTNConfig{Seed: seed, Mode: "custody"})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// TestDTNConfigDefaults locks the documented zero-value behavior the
// tools (alfchaos -dtn) depend on.
func TestDTNConfigDefaults(t *testing.T) {
	var c DTNConfig
	c.fill()
	if c.Mode != "custody" || c.Duration != 4*time.Hour || c.Count != 240 {
		t.Errorf("defaults = %+v", c)
	}
	if c.HopDelay != 160*time.Second {
		t.Errorf("HopDelay default = %v, want the 8-minute one-way path", c.HopDelay)
	}
	if c.StorageLimit != 2<<20 {
		t.Errorf("StorageLimit default = %d", c.StorageLimit)
	}
}

// TestDTNBadMode: an unknown stance is a harness error, not a silent
// default.
func TestDTNBadMode(t *testing.T) {
	if _, err := RunDTN(DTNConfig{Mode: "tcp"}); err == nil {
		t.Error("unknown mode accepted")
	}
}
