package soak

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// This file sizes flight recorders for the soak families and handles
// the CI black-box contract: when SOAK_FLIGHTREC_DIR is set, a failing
// must-pass soak test leaves its JSON dump there, and the workflow
// uploads the directory as an artifact on failure — so a chaos
// regression is diagnosable from the run page without reproducing it
// locally.

// recorderTicks is the target tick count across a run's horizon: under
// the recorder's default 512-sample capacity, so the whole run stays
// in the window, with slack for the final post-drain sample.
const recorderTicks = 480

// RecorderFor returns a flight recorder whose sampling interval spreads
// recorderTicks ticks across the horizon, with the given detectors.
func RecorderFor(horizon sim.Duration, detectors ...telemetry.Detector) *telemetry.Recorder {
	iv := horizon / recorderTicks
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	return telemetry.New(telemetry.Config{Interval: iv, Detectors: detectors})
}

// ChaosDetectors is the catalog for the chaos scenario family, tuned
// to the Run topology (8 Mb/s trunk, queue 64).
func ChaosDetectors() []telemetry.Detector {
	return telemetry.DefaultDetectors(
		1000,                 // delivery under 1 kB/s counts as collapsed once seen healthy
		0,                    // no custody stores in this family
		64,                   // trunk QueueLimit (also self-reported per link)
		250*time.Millisecond, // HeartbeatMaxInterval in Run's config
	)
}

// DTNDetectors is the catalog for the DTN family: a 30 s ADU cadence
// means healthy delivery is ~1 kB/s, and any sustained silence beyond
// a few sampling ticks is a collapse (expected during conjunction —
// the incident timeline is how the blackout shows up in the record).
func DTNDetectors(cfg DTNConfig) []telemetry.Detector {
	cfg.fill()
	return telemetry.DefaultDetectors(
		100, // B/s: an order under the steady delivery rate
		int64(cfg.StorageLimit),
		0,
		time.Hour, // HeartbeatMaxInterval in RunDTN's config
	)
}

// OverloadDetectors is the catalog for the overload family.
func OverloadDetectors() []telemetry.Detector {
	return telemetry.DefaultDetectors(
		70_000, // 10% of the 700 kB/s goodput floor
		0,
		64, // trunk QueueLimit
		0,  // overload senders never back off their heartbeats far
	)
}

// DumpIfRequested writes rec's black-box dump to
// $SOAK_FLIGHTREC_DIR/<name>.json and returns the path, or "" when the
// env var is unset, the recorder is nil, or the write fails (CI treats
// the dump as best-effort: it must never turn a clean failure into a
// confusing one).
func DumpIfRequested(rec *telemetry.Recorder, name string) string {
	dir := os.Getenv("SOAK_FLIGHTREC_DIR")
	if dir == "" || rec == nil {
		return ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	path := filepath.Join(dir, fmt.Sprintf("%s.json", name))
	if err := rec.WriteDumpFile(path); err != nil {
		return ""
	}
	return path
}
