package soak

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// dumpOnFailure registers a cleanup that leaves rec's black-box JSON
// in $SOAK_FLIGHTREC_DIR when the test fails — the CI artifact hook
// for `make soak` / `make soak-dtn`.
func dumpOnFailure(t *testing.T, rec *telemetry.Recorder, name string) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		if path := DumpIfRequested(rec, name); path != "" {
			t.Logf("flight record dumped to %s", path)
		}
	})
}

// seriesByPrefix returns the dumped series whose IDs start with name
// (exact, or name followed by a label set / derived suffix).
func seriesByPrefix(d *telemetry.Dump, name string) []telemetry.DumpSeries {
	var out []telemetry.DumpSeries
	for _, s := range d.Series {
		if s.ID == name || strings.HasPrefix(s.ID, name+"{") || strings.HasPrefix(s.ID, name+"|") {
			out = append(out, s)
		}
	}
	return out
}

// TestDTNFlightRecorderPostMortem is the black-box acceptance run: the
// end-to-end (aimd) policy is pushed through the double conjunction it
// is known to die of, and the dump the failure leaves behind must be
// enough to diagnose it — a delivery-rate series spanning both
// blackout windows, detector incidents marking the collapse, and the
// soak harness's own invariant violations on the incident timeline.
// The custody run's dump supplies the store-occupancy view of the same
// windows (the aimd rig has no custody stores to record).
func TestDTNFlightRecorderPostMortem(t *testing.T) {
	// Both conjunction windows: 30–70 min and 100–140 min of a 4 h run.
	const (
		firstStart = 30 * time.Minute
		secondEnd  = 140 * time.Minute
	)

	// ---- Failing half: aimd mode, with the DTN detector catalog.
	rec := RecorderFor(4*time.Hour, DTNDetectors(DTNConfig{})...)
	res, err := RunDTN(DTNConfig{Seed: 1, Mode: "aimd", Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("aimd mode violated no invariant; there is no failure to post-mortem")
	}

	var buf bytes.Buffer
	if err := rec.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	var dump telemetry.Dump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}

	// The retained window must span both conjunctions.
	if len(dump.TimesNS) == 0 {
		t.Fatal("dump has no tick times")
	}
	first, last := dump.TimesNS[0], dump.TimesNS[len(dump.TimesNS)-1]
	if first > int64(firstStart) {
		t.Errorf("record starts at %v, after the first conjunction began (%v)",
			time.Duration(first), firstStart)
	}
	if last < int64(secondEnd) {
		t.Errorf("record ends at %v, before the second conjunction ended (%v)",
			time.Duration(last), secondEnd)
	}

	// The delivery-rate series must be in the dump, full-length (born
	// at baseline, so tail-aligned over the whole window), and must
	// actually have seen traffic.
	delivered := seriesByPrefix(&dump, "core.recv.delivered_bytes")
	if len(delivered) == 0 {
		t.Fatal("dump has no core.recv.delivered_bytes series")
	}
	var total int64
	for _, s := range delivered {
		if len(s.Samples) != len(dump.TimesNS) {
			t.Errorf("%s: %d samples for %d ticks; does not span the window",
				s.ID, len(s.Samples), len(dump.TimesNS))
		}
		for _, v := range s.Samples {
			total += v
		}
	}
	if total == 0 {
		t.Error("delivery-rate series recorded zero bytes over the whole run")
	}

	// The blackout must have tripped at least one health detector, and
	// the harness's invariant violations must be on the timeline too.
	var detectorIncidents, soakNotes int
	for _, inc := range dump.Incidents {
		switch inc.Detector {
		case "soak":
			soakNotes++
		default:
			detectorIncidents++
		}
	}
	if detectorIncidents == 0 {
		t.Error("no detector incident fired across two 40-minute blackouts")
	}
	if soakNotes != len(res.Violations) {
		t.Errorf("dump carries %d soak violations, run reported %d",
			soakNotes, len(res.Violations))
	}

	// ---- Custody half: same conjunctions, and the store-occupancy
	// series must show the relays buffering through them.
	rec2 := RecorderFor(4*time.Hour, DTNDetectors(DTNConfig{})...)
	res2, err := RunDTN(DTNConfig{Seed: 1, Mode: "custody", Recorder: rec2})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Passed() {
		t.Fatalf("custody mode violated invariants: %v", res2.Violations)
	}
	d2 := rec2.Dump()
	stored := seriesByPrefix(d2, "relay.stored_bytes")
	if len(stored) == 0 {
		t.Fatal("custody dump has no relay.stored_bytes series")
	}
	var peak int64
	for _, s := range stored {
		if len(s.Samples) != len(d2.TimesNS) {
			t.Errorf("%s: %d samples for %d ticks; does not span the window",
				s.ID, len(s.Samples), len(d2.TimesNS))
		}
		for _, v := range s.Samples {
			if v > peak {
				peak = v
			}
		}
	}
	if peak == 0 {
		t.Error("relay store occupancy flat at zero through two conjunctions")
	}
	if peak > res2.RelayPeakBytes {
		t.Errorf("sampled store peak %d exceeds the run's own accounting %d",
			peak, res2.RelayPeakBytes)
	}
	t.Logf("aimd: %d ticks, %d detector incidents, %d soak notes; custody: sampled store peak %dB (true peak %dB)",
		dump.Ticks, detectorIncidents, soakNotes, peak, res2.RelayPeakBytes)
}

// TestDTNRecorderDeterminism: attaching the flight recorder must not
// perturb a run (same results with and without), and two recorded runs
// of one seed must leave byte-identical dumps — series and incident
// log both. This is what makes a black box from CI reproducible
// locally.
func TestDTNRecorderDeterminism(t *testing.T) {
	bare, err := RunDTN(DTNConfig{Seed: 42, Mode: "custody"})
	if err != nil {
		t.Fatal(err)
	}
	var dumps [2][]byte
	for i := range dumps {
		rec := RecorderFor(4*time.Hour, DTNDetectors(DTNConfig{})...)
		res, err := RunDTN(DTNConfig{Seed: 42, Mode: "custody", Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != bare.Delivered || res.EndVirtual != bare.EndVirtual ||
			res.RelayPeakBytes != bare.RelayPeakBytes {
			t.Errorf("recorder perturbed the run: delivered %d/%d end %v/%v peak %d/%d",
				res.Delivered, bare.Delivered, res.EndVirtual, bare.EndVirtual,
				res.RelayPeakBytes, bare.RelayPeakBytes)
		}
		var buf bytes.Buffer
		if err := rec.WriteDump(&buf); err != nil {
			t.Fatal(err)
		}
		dumps[i] = buf.Bytes()
	}
	if !bytes.Equal(dumps[0], dumps[1]) {
		t.Error("identical seeds produced different flight records")
	}
}

// TestChaosRecorderDeterminism pins the same property on the chaos
// family, which exercises the fault injector and OTP alongside ALF.
func TestChaosRecorderDeterminism(t *testing.T) {
	var dumps [2][]byte
	for i := range dumps {
		rec := RecorderFor(3*time.Second, ChaosDetectors()...)
		if _, err := Run(Config{Seed: 7, Scenario: "random", Recorder: rec}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteDump(&buf); err != nil {
			t.Fatal(err)
		}
		dumps[i] = buf.Bytes()
	}
	if !bytes.Equal(dumps[0], dumps[1]) {
		t.Error("identical seeds produced different flight records")
	}
}

// TestDumpIfRequested covers the CI artifact hook: no env var means no
// write, a set env var means a valid JSON dump at the returned path.
func TestDumpIfRequested(t *testing.T) {
	rec := RecorderFor(3*time.Second, ChaosDetectors()...)
	if _, err := Run(Config{Seed: 3, Recorder: rec}); err != nil {
		t.Fatal(err)
	}

	t.Setenv("SOAK_FLIGHTREC_DIR", "")
	if path := DumpIfRequested(rec, "unwanted"); path != "" {
		t.Fatalf("dump written with no SOAK_FLIGHTREC_DIR: %s", path)
	}

	dir := t.TempDir()
	t.Setenv("SOAK_FLIGHTREC_DIR", dir)
	path := DumpIfRequested(rec, "chaos-random")
	if want := filepath.Join(dir, "chaos-random.json"); path != want {
		t.Fatalf("dump path = %q, want %q", path, want)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump telemetry.Dump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if dump.Ticks == 0 || len(dump.Series) == 0 {
		t.Errorf("artifact is empty: %d ticks, %d series", dump.Ticks, len(dump.Series))
	}
	if path := DumpIfRequested(nil, "nil-recorder"); path != "" {
		t.Fatalf("nil recorder wrote a dump: %s", path)
	}
}
