package soak

import (
	"bytes"
	"fmt"
	"time"

	alf "repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/xcode"
)

// This file is the overload scenario family: no link ever fails, the
// network is simply asked for more than it has. Several ALF streams
// share one bottleneck trunk at an aggregate offered load well above
// its capacity, and the run checks the no-collapse invariants:
//
//   - Aggregate goodput stays at or above 70% of the bottleneck
//     capacity (or of the accepted load, whichever is smaller) — the
//     network keeps doing useful work instead of collapsing into
//     retransmission storms and tail drops.
//   - No Critical ADU is ever lost: load shedding and the recovery
//     cap sacrifice Droppable and throttle Standard traffic first.
//   - No ADU is delivered twice or corrupted.
//   - After submission stops the whole rig drains to quiescence:
//     pacer backlogs, link queues, reassembly buffers, and retention
//     all empty without livelock.
//
// Mode selects the sender stance: "closed" runs the full overload
// toolkit (feedback reports, AIMD rate control, priority shedding,
// recovery cap); "fixed" is the naive baseline that blasts at the
// offered rate with no feedback at all. The same invariants are
// evaluated either way — the point of the family is that closed-loop
// passes where fixed-rate demonstrably does not.

// OverloadConfig parameterizes one overload run. Zero fields take
// defaults.
type OverloadConfig struct {
	// Seed determines the run (queue tie-breaks, heartbeat jitter).
	Seed int64
	// Shape names the arrival pattern: "steady" (constant rate),
	// "burst" (on/off duty cycles, phase-shifted per stream), or
	// "flash" (a flash crowd: a third of the load arrives almost at
	// once, then steady). Default "steady".
	Shape string
	// Mode is "closed" (feedback + AIMD + shedding + recovery cap) or
	// "fixed" (open-loop at the offered rate). Default "closed".
	Mode string
	// Duration is the virtual horizon; submission occupies the first
	// 2/3 and the tail is quiet for drain (default 6 s).
	Duration sim.Duration
	// Streams is the number of competing senders (default 3).
	Streams int
	// OfferedBps is the per-stream offered load (default 6 Mb/s, so
	// three streams offer 18 Mb/s into an 8 Mb/s trunk).
	OfferedBps float64
	// ADUBytes sizes each ADU (default 3000 B — three fragments).
	ADUBytes int
	// Metrics and Tracer, if non-nil, instrument the whole rig.
	Metrics *metrics.Registry
	Tracer  *tracing.Tracer
	// Recorder, if non-nil, flight-records the run (see Config.Recorder):
	// this is how the F10 contrast is replayed as rate-vs-time — the
	// AIMD backoff/probe sawtooth is invisible in totals.
	Recorder *telemetry.Recorder
}

func (c *OverloadConfig) fill() {
	if c.Recorder != nil && c.Metrics == nil {
		c.Metrics = metrics.New()
	}
	if c.Shape == "" {
		c.Shape = "steady"
	}
	if c.Mode == "" {
		c.Mode = "closed"
	}
	if c.Duration == 0 {
		c.Duration = 6 * time.Second
	}
	if c.Streams == 0 {
		c.Streams = 3
	}
	if c.OfferedBps == 0 {
		c.OfferedBps = 6e6
	}
	if c.ADUBytes == 0 {
		c.ADUBytes = 3000
	}
}

// trunkRateBps is the bottleneck capacity shared by every stream.
const trunkRateBps = 8e6

// OverloadShapes lists the arrival patterns the family covers.
var OverloadShapes = []string{"steady", "burst", "flash"}

// aduClass is the deterministic priority mix: per ten ADUs, one
// Critical, three Standard, six Droppable — a control/keyframe/filler
// split. Both submission and loss accounting derive class from the
// name alone.
func aduClass(name uint64) alf.Priority {
	switch name % 10 {
	case 0:
		return alf.Critical
	case 1, 2, 3:
		return alf.Standard
	default:
		return alf.Droppable
	}
}

// submitAt places ADU i of `total` on one stream within the window.
func submitAt(shape string, stream, i, total int, window sim.Duration) sim.Duration {
	t := window * sim.Duration(i) / sim.Duration(total)
	switch shape {
	case "burst":
		// Eight duty cycles, each 2/3 on, 1/3 silent — the on-rate is
		// 1.5x the average. Streams are phase-shifted a third of a
		// period apart so bursts collide but not in lockstep.
		period := window / 8
		j := t / period
		t = j*period + (t-j*period)*2/3 + sim.Duration(stream)*period/3
	case "flash":
		// Flash crowd: 30% of the load lands in the first 8% of the
		// window, the rest is steady.
		f := total * 3 / 10
		if i < f {
			t = window * 8 / 100 * sim.Duration(i) / sim.Duration(f)
		} else {
			t = window/10 + window*9/10*sim.Duration(i-f)/sim.Duration(total-f)
		}
	}
	return t
}

// OverloadStream is one sender's accounting in an overload run.
type OverloadStream struct {
	StreamID       byte
	Submitted      int   // ADUs offered by the application
	Accepted       int   // ADUs the sender took onto the wire path
	Shed           int   // Droppable ADUs refused pre-transmission
	Delivered      int   // complete ADUs at the receiver
	Lost           int   // ADUs the receiver gave up on
	CriticalLost   int   // the invariant: must be zero
	AcceptedBytes  int64 // payload bytes behind Accepted
	DeliveredBytes int64 // payload bytes behind Delivered
	FinalRateBps   float64
	RateChanges    int64
	RetxSuppressed int64
}

// OverloadResult reports one overload run. Violations empty means
// every no-collapse invariant held.
type OverloadResult struct {
	Mode    string
	Shape   string
	Seed    int64
	Horizon sim.Duration

	CapacityBps    float64
	OfferedBps     float64 // aggregate across streams
	GoodputBps     float64 // delivered payload over the submit window
	GoodputTarget  float64 // the 70% floor this run was held to
	AcceptedBytes  int64
	DeliveredBytes int64
	ShedADUs       int64
	TrunkDrops     int64 // bottleneck tail drops, both directions

	Streams     []OverloadStream
	DrainEvents uint64
	EndVirtual  sim.Time
	Violations  []string
}

// Passed reports whether every invariant held.
func (r *OverloadResult) Passed() bool { return len(r.Violations) == 0 }

func (r *OverloadResult) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// RunOverload executes one overload scenario to quiescence and returns
// the invariant report. It errors only on harness misconfiguration;
// congestion consequences are Violations, not errors.
func RunOverload(cfg OverloadConfig) (*OverloadResult, error) {
	cfg.fill()
	res := &OverloadResult{Mode: cfg.Mode, Shape: cfg.Shape, Seed: cfg.Seed,
		Horizon: cfg.Duration, CapacityBps: trunkRateBps,
		OfferedBps: cfg.OfferedBps * float64(cfg.Streams)}

	// ---- Topology: N sources and N sinks joined by one bottleneck.
	//
	//	src1 ─┐                        ┌─ dst1
	//	src2 ─┼─ rL ═══ bottleneck ═══ rR ─┼─ dst2
	//	src3 ─┘      (8 Mb/s, q=64)    └─ dst3
	//
	// Access links are clean and an order of magnitude faster than the
	// trunk; all contention lives in the shared queue.
	s := sim.NewScheduler()
	cfg.Tracer.Bind(s)
	cfg.Recorder.Bind(s, cfg.Metrics, sim.Time(0).Add(cfg.Duration))
	net := netsim.New(s, cfg.Seed)
	rL := net.NewRouter("rL")
	rR := net.NewRouter("rR")
	trunkCfg := netsim.LinkConfig{
		RateBps: trunkRateBps, Delay: 10 * time.Millisecond, QueueLimit: 64,
	}
	lr, rl := net.NewDuplex(rL.Node, rR.Node, trunkCfg)
	access := netsim.LinkConfig{RateBps: 100e6, Delay: 200 * time.Microsecond}

	if cfg.Metrics != nil {
		net.SetMetrics(cfg.Metrics)
	}
	net.SetTracer(cfg.Tracer)

	submitWindow := cfg.Duration * 2 / 3
	perStream := int(cfg.OfferedBps / 8 * submitWindow.Seconds() / float64(cfg.ADUBytes))
	if perStream < 1 {
		perStream = 1
	}

	res.Streams = make([]OverloadStream, cfg.Streams)

	type streamState struct {
		snd       *alf.Sender
		rcv       *alf.Receiver
		delivered map[uint64]int
		// submitted maps assigned wire names back to submission indices
		// (shed Droppables consume no name, so wire names and submission
		// order diverge under load — exactly when verification matters).
		submitted map[uint64]int
		acct      *OverloadStream
	}
	streams := make([]*streamState, cfg.Streams)

	for i := 0; i < cfg.Streams; i++ {
		id := byte(i + 1)
		src := net.NewNode(fmt.Sprintf("src%d", id))
		dst := net.NewNode(fmt.Sprintf("dst%d", id))
		up, down := net.NewDuplex(src, rL.Node, access)
		dUp, dDown := net.NewDuplex(dst, rR.Node, access)
		rL.AddRoute(dst, lr)
		rL.AddRoute(src, down)
		rR.AddRoute(src, rl)
		rR.AddRoute(dst, dDown)

		aCfg := alf.Config{
			StreamID:          id,
			Policy:            alf.SenderBuffered,
			RateBps:           cfg.OfferedBps,
			NackDelay:         10 * time.Millisecond,
			NackInterval:      20 * time.Millisecond,
			HoldTime:          2 * time.Second,
			MaxNacks:          8,
			HeartbeatInterval: 25 * time.Millisecond,
			HeartbeatLimit:    1 << 30,
			Metrics:           cfg.Metrics,
			Tracer:            cfg.Tracer,
		}
		if cfg.Mode == "closed" {
			aCfg.FeedbackInterval = 50 * time.Millisecond
			aCfg.Controller = &alf.AIMD{
				Floor: 256e3, Ceil: cfg.OfferedBps, ProbeBps: 2e5,
			}
			aCfg.ShedBacklog = 150 * time.Millisecond
			aCfg.ShedLossFrac = 0.25
			aCfg.RecoveryFrac = 0.25
		}

		snd, err := alf.NewSender(s, func(p []byte) error {
			return netsim.SendVia(up, dst, p)
		}, aCfg)
		if err != nil {
			return nil, err
		}
		rcv, err := alf.NewReceiver(s, func(p []byte) error {
			return netsim.SendVia(dUp, src, p)
		}, aCfg)
		if err != nil {
			return nil, err
		}
		src.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
		dst.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

		res.Streams[i].StreamID = id
		st := &streamState{snd: snd, rcv: rcv,
			delivered: make(map[uint64]int),
			submitted: make(map[uint64]int),
			acct:      &res.Streams[i]}
		streams[i] = st

		rcv.OnADU = func(adu alf.ADU) {
			st.delivered[adu.Name]++
			if st.delivered[adu.Name] > 1 {
				res.violatef("stream %d: ADU %d delivered %d times",
					id, adu.Name, st.delivered[adu.Name])
				return
			}
			k, known := st.submitted[adu.Name]
			if !known {
				res.violatef("stream %d: ADU %d delivered but never accepted", id, adu.Name)
				return
			}
			if adu.Tag != aduTag(uint64(k)) {
				res.violatef("stream %d: ADU %d delivered with tag %d, want %d",
					id, adu.Name, adu.Tag, aduTag(uint64(k)))
			}
			if !bytes.Equal(adu.Data, aduPayload(uint64(k), cfg.ADUBytes)) {
				res.violatef("stream %d: ADU %d delivered corrupted", id, adu.Name)
			}
			st.acct.Delivered++
			st.acct.DeliveredBytes += int64(len(adu.Data))
		}
		rcv.OnLost = func(name uint64) {
			st.acct.Lost++
			if k, known := st.submitted[name]; known && aduClass(uint64(k)) == alf.Critical {
				st.acct.CriticalLost++
				res.violatef("stream %d: Critical ADU %d lost under overload", id, name)
			}
		}

		// ---- Workload: perStream ADUs shaped over the submit window.
		for k := 0; k < perStream; k++ {
			k := k
			s.After(submitAt(cfg.Shape, i, k, perStream, submitWindow), func() {
				st.acct.Submitted++
				class := aduClass(uint64(k))
				name, err := snd.SendClass(aduTag(uint64(k)), xcode.SyntaxRaw,
					aduPayload(uint64(k), cfg.ADUBytes), class)
				switch {
				case err == nil:
					st.submitted[name] = k
					st.acct.Accepted++
					st.acct.AcceptedBytes += int64(cfg.ADUBytes)
				case err == alf.ErrShed && class == alf.Droppable:
					st.acct.Shed++
				default:
					res.violatef("stream %d: Send(%d) failed: %v", id, k, err)
				}
			})
		}
	}

	// ---- Run to the horizon, then drain to quiescence with the same
	// livelock bounds as the fault soak.
	s.RunUntil(sim.Time(0).Add(cfg.Duration))
	maxVirtual := sim.Time(0).Add(cfg.Duration + 15*time.Second)
	firedAtHorizon := s.Fired()
	const maxDrainEvents = 5_000_000
	for s.Step() {
		if s.Now() > maxVirtual {
			res.violatef("livelock: events still firing at %v past the horizon", s.Now())
			break
		}
		if s.Fired()-firedAtHorizon > maxDrainEvents {
			res.violatef("livelock: %d drain events without quiescence",
				s.Fired()-firedAtHorizon)
			break
		}
	}
	res.DrainEvents = s.Fired() - firedAtHorizon
	res.EndVirtual = s.Now()
	cfg.Recorder.Sample() // final post-drain reading for the black box

	// ---- Aggregate accounting and invariants.
	for _, st := range streams {
		a := st.acct
		a.ShedADUsConsistency(res)
		a.FinalRateBps = st.snd.Rate()
		a.RateChanges = st.snd.Stats.RateChanges
		a.RetxSuppressed = st.snd.Stats.RetxSuppressed
		res.AcceptedBytes += a.AcceptedBytes
		res.DeliveredBytes += a.DeliveredBytes
		res.ShedADUs += st.snd.Stats.ShedADUs

		if n := st.snd.BufferedADUs(); n != 0 {
			res.violatef("stream %d: %d ADUs still retained after drain", a.StreamID, n)
		}
		if b := st.snd.Backlog(); b != 0 {
			res.violatef("stream %d: pacer still %v backlogged after drain", a.StreamID, b)
		}
		if n := st.rcv.Pending(); n != 0 {
			res.violatef("stream %d: %d partial ADUs still held after drain", a.StreamID, n)
		}
		if n := st.rcv.Missing(); n != 0 {
			res.violatef("stream %d: %d ADUs still tracked missing after drain", a.StreamID, n)
		}
	}
	for _, l := range net.Links() {
		if q := l.QueueLen(); q != 0 {
			res.violatef("netsim: link %s->%s still queues %d packets after drain",
				l.From().Name(), l.To().Name(), q)
		}
	}
	res.TrunkDrops = lr.Stats.QueueDrops + rl.Stats.QueueDrops

	// Goodput floor: delivered payload over the submit window must
	// reach 70% of the lesser of bottleneck capacity and the load the
	// senders actually accepted — shedding the Droppable tier is
	// legitimate, delivering under 70% of capacity is collapse.
	winSec := submitWindow.Seconds()
	res.GoodputBps = float64(res.DeliveredBytes) * 8 / winSec
	capBps := res.CapacityBps
	if accepted := float64(res.AcceptedBytes) * 8 / winSec; accepted < capBps {
		capBps = accepted
	}
	res.GoodputTarget = 0.7 * capBps
	if res.GoodputBps < res.GoodputTarget {
		res.violatef("goodput %.2f Mb/s under the %.2f Mb/s no-collapse floor (capacity %.0f Mb/s)",
			res.GoodputBps/1e6, res.GoodputTarget/1e6, res.CapacityBps/1e6)
	}
	noteViolations(cfg.Recorder, res.Violations)
	return res, nil
}

// ShedADUsConsistency cross-checks the application-side shed count
// against submission accounting: every submitted ADU was accepted or
// shed, and only Droppables were shed.
func (a *OverloadStream) ShedADUsConsistency(res *OverloadResult) {
	if a.Accepted+a.Shed != a.Submitted {
		res.violatef("stream %d: accepted %d + shed %d != submitted %d",
			a.StreamID, a.Accepted, a.Shed, a.Submitted)
	}
}
