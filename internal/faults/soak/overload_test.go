package soak

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestOverloadClosedLoopNoCollapse is the core overload soak: three
// streams offer 18 Mb/s into an 8 Mb/s trunk under every arrival
// shape, and the closed loop (feedback, AIMD, shedding, recovery cap)
// must uphold all the no-collapse invariants.
func TestOverloadClosedLoopNoCollapse(t *testing.T) {
	for _, shape := range OverloadShapes {
		t.Run(shape, func(t *testing.T) {
			rec := RecorderFor(6*time.Second, OverloadDetectors()...)
			dumpOnFailure(t, rec, "overload-closed-"+shape)
			res, err := RunOverload(OverloadConfig{Seed: 42, Mode: "closed", Shape: shape, Recorder: rec})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			// The run must have actually been an overload the mechanisms
			// worked against, not a gentle one they slept through.
			if res.ShedADUs == 0 {
				t.Error("3:1 overload shed nothing; shedding never engaged")
			}
			for _, st := range res.Streams {
				if st.RateChanges == 0 {
					t.Errorf("stream %d: controller never moved the rate", st.StreamID)
				}
				if st.FinalRateBps >= 6e6 {
					t.Errorf("stream %d: final rate %.1f Mb/s never backed off the 6 Mb/s offer",
						st.StreamID, st.FinalRateBps/1e6)
				}
			}
			t.Logf("goodput=%.2f Mb/s (floor %.2f) shed=%d trunkDrops=%d drain=%d",
				res.GoodputBps/1e6, res.GoodputTarget/1e6, res.ShedADUs,
				res.TrunkDrops, res.DrainEvents)
		})
	}
}

// TestOverloadFixedRateCollapses: the same overload with open-loop
// senders must demonstrably collapse — the goodput floor and the
// Critical-loss invariant both break, under every shape. This is the
// contrast that justifies the closed loop.
func TestOverloadFixedRateCollapses(t *testing.T) {
	for _, shape := range OverloadShapes {
		t.Run(shape, func(t *testing.T) {
			res, err := RunOverload(OverloadConfig{Seed: 42, Mode: "fixed", Shape: shape})
			if err != nil {
				t.Fatal(err)
			}
			if res.Passed() {
				t.Fatal("open-loop senders at 3:1 overload violated no invariant; the contrast is gone")
			}
			if res.GoodputBps >= res.GoodputTarget {
				t.Errorf("fixed-rate goodput %.2f Mb/s above the %.2f floor; congestion collapse not demonstrated",
					res.GoodputBps/1e6, res.GoodputTarget/1e6)
			}
			critLost := 0
			for _, st := range res.Streams {
				critLost += st.CriticalLost
			}
			if critLost == 0 {
				t.Error("fixed-rate run lost no Critical ADUs; priority protection shows no contrast")
			}
			t.Logf("goodput=%.2f Mb/s (floor %.2f) critLost=%d trunkDrops=%d violations=%d",
				res.GoodputBps/1e6, res.GoodputTarget/1e6, critLost,
				res.TrunkDrops, len(res.Violations))
		})
	}
}

// TestOverloadClosedBeatsFixed pins the contrast on one seed: same
// offered load, same shape, and the closed loop must deliver more
// useful bytes while dropping far less in the bottleneck queue.
func TestOverloadClosedBeatsFixed(t *testing.T) {
	closed, err := RunOverload(OverloadConfig{Seed: 7, Mode: "closed"})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := RunOverload(OverloadConfig{Seed: 7, Mode: "fixed"})
	if err != nil {
		t.Fatal(err)
	}
	if closed.GoodputBps <= fixed.GoodputBps {
		t.Errorf("closed goodput %.2f Mb/s not above fixed %.2f Mb/s",
			closed.GoodputBps/1e6, fixed.GoodputBps/1e6)
	}
	if closed.TrunkDrops >= fixed.TrunkDrops {
		t.Errorf("closed trunk drops %d not below fixed %d",
			closed.TrunkDrops, fixed.TrunkDrops)
	}
}

// TestOverloadShedsOnlyDroppable: the shed counter must be backed
// entirely by Droppable refusals — Critical and Standard submissions
// always enter the wire path (the consistency cross-check inside
// RunOverload enforces accepted+shed == submitted per stream).
func TestOverloadShedsOnlyDroppable(t *testing.T) {
	res, err := RunOverload(OverloadConfig{Seed: 11, Mode: "closed"})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	for _, st := range res.Streams {
		// 60% of the offer is Droppable; a 3:1 overload has to refuse
		// some of it, and nothing else.
		if st.Shed == 0 {
			t.Errorf("stream %d: shed nothing under 3:1 overload", st.StreamID)
		}
		if st.Shed > st.Submitted*6/10 {
			t.Errorf("stream %d: shed %d of %d exceeds the Droppable share",
				st.StreamID, st.Shed, st.Submitted)
		}
		if st.RetxSuppressed == 0 {
			t.Errorf("stream %d: recovery cap never suppressed a retransmission", st.StreamID)
		}
	}
}

// TestOverloadDeterminism: an overload run is a pure function of its
// config — the fixed-seed reproducibility `make soak` relies on.
func TestOverloadDeterminism(t *testing.T) {
	for _, mode := range []string{"closed", "fixed"} {
		cfg := OverloadConfig{Seed: 42, Mode: mode, Shape: "flash"}
		a, err := RunOverload(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunOverload(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: identical configs diverged:\n%+v\n%+v", mode, a, b)
		}
	}
}

// TestOverloadSeedSweep: the closed loop's no-collapse guarantee is
// not a property of one lucky seed.
func TestOverloadSeedSweep(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		shape := OverloadShapes[seed%int64(len(OverloadShapes))]
		res, err := RunOverload(OverloadConfig{Seed: seed, Mode: "closed", Shape: shape})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d (%s): %s", seed, shape, v)
		}
	}
}

// TestOverloadConfigDefaults locks the documented zero-value behavior
// the tools (alfchaos -overload) depend on.
func TestOverloadConfigDefaults(t *testing.T) {
	var c OverloadConfig
	c.fill()
	if c.Shape != "steady" || c.Mode != "closed" || c.Streams != 3 {
		t.Errorf("defaults = %+v", c)
	}
	if c.OfferedBps*float64(c.Streams) <= trunkRateBps {
		t.Error("default offered load does not overload the trunk")
	}
}

// TestOverloadBadShape: an unknown shape must still run (steady
// placement) rather than panic — but the tools validate names, so the
// canonical list must contain what they advertise.
func TestOverloadBadShape(t *testing.T) {
	if strings.Join(OverloadShapes, ",") != "steady,burst,flash" {
		t.Errorf("OverloadShapes = %v", OverloadShapes)
	}
}
