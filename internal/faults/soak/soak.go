// Package soak is the chaos soak harness: it runs randomized fault
// scenarios (internal/faults) against the ALF stack and the OTP
// baseline sharing one faulty topology, and checks the delivery
// invariants that must survive any fault schedule:
//
//   - Every ADU the application submits is delivered exactly once OR
//     reported lost exactly once — never both, never neither — under
//     all three recovery policies.
//   - No corrupted payload is ever delivered (checksums hold under
//     damage injected mid-fault).
//   - Sender retention and receiver reassembly state stay bounded
//     during a sustained blackout (ADUDeadline and hold-time give-ups
//     do their jobs).
//   - After the last fault heals, the event loop drains: no timer wheel
//     left spinning, no recovery livelock (OTP's FailThreshold and
//     ALF's heartbeat cap guarantee quiescence).
//   - The OTP byte stream is delivered as an exact prefix of what was
//     submitted; a connection that did not die delivers everything.
//
// A run is fully determined by (code, Config): the traffic, the fault
// schedule, and every impairment derive from explicit seeds. The same
// harness backs `go test` (soak_test.go) and cmd/alfchaos.
package soak

import (
	"bytes"
	"fmt"
	"time"

	alf "repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/otp"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/xcode"
)

// Config parameterizes one soak run. Zero fields take defaults.
type Config struct {
	// Seed determines the run (impairments, fault schedule).
	Seed int64
	// Scenario names a faults.Preset (default "random").
	Scenario string
	// Duration is the virtual horizon; faults heal by ~2/3 of it and
	// the tail is quiet for recovery (default 3 s).
	Duration sim.Duration
	// Policy is the ALF recovery policy under test (default
	// SenderBuffered).
	Policy alf.Policy
	// ADUs and ADUBytes shape the ALF workload (defaults 60 x 3000 B),
	// submitted at a steady rate over the first 2/3 of the horizon.
	ADUs     int
	ADUBytes int
	// OTPBytes is the OTP stream volume (default 120 kB), submitted in
	// 2 kB writes over the first 2/3 of the horizon.
	OTPBytes int
	// HoldOnDown selects netsim.HoldOnDown for the trunk (default:
	// DropOnDown) — the same invariants must hold either way.
	HoldOnDown bool
	// Metrics, if non-nil, wires every layer of the rig into the
	// registry so a caller (cmd/alfchaos) can print the full tree.
	Metrics *metrics.Registry
	// Tracer, if non-nil, records the whole run as per-ADU lifecycle
	// spans (ALF endpoints, OTP endpoints, every link, every fault
	// window), so a violating run can be dumped as a timeline.
	Tracer *tracing.Tracer
	// Recorder, if non-nil, flight-records the run: it is bound to the
	// run's clock and registry (a registry is created when Metrics is
	// nil), sampled every Recorder interval to the horizon plus once
	// after the drain, and stamped with a "soak" incident per invariant
	// violation — the black-box a failing run leaves behind.
	Recorder *telemetry.Recorder
}

func (c *Config) fill() {
	if c.Recorder != nil && c.Metrics == nil {
		c.Metrics = metrics.New() // the recorder needs series to sample
	}
	if c.Scenario == "" {
		c.Scenario = "random"
	}
	if c.Duration == 0 {
		c.Duration = 3 * time.Second
	}
	if c.Policy == 0 {
		c.Policy = alf.SenderBuffered
	}
	if c.ADUs == 0 {
		c.ADUs = 60
	}
	if c.ADUBytes == 0 {
		c.ADUBytes = 3000
	}
	if c.OTPBytes == 0 {
		c.OTPBytes = 120_000
	}
}

// Result reports one soak run. Violations empty means every invariant
// held.
type Result struct {
	Scenario string
	Seed     int64
	Policy   alf.Policy
	Horizon  sim.Duration

	// ALF accounting.
	Submitted     int
	Delivered     int
	Lost          int
	Expired       int64 // sender-side ADUDeadline sheds
	ResentADUs    int64
	RecomputeADUs int64
	UnfilledNacks int64

	// OTP accounting.
	OTPSent        int64
	OTPDelivered   int64
	OTPDead        bool
	OTPTimeouts    int64
	OTPRetransmits int64

	// Invariant evidence.
	PeakRetention  int // bytes retained by the ALF sender, max over run
	PeakReassembly int // partial ADUs at the ALF receiver, max over run
	DrainEvents    uint64
	EndVirtual     sim.Time
	Faults         faults.Stats
	TrunkDownDrops int64
	TrunkHeld      int64

	Violations []string
	// ViolatedADUs names the ALF ADUs whose delivery accounting broke
	// (duplicated, both-delivered-and-lost, or unaccounted for), so a
	// caller holding the run's tracer can dump their timelines.
	ViolatedADUs []uint64
}

// Passed reports whether every invariant held.
func (r *Result) Passed() bool { return len(r.Violations) == 0 }

func (r *Result) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// aduPayload is the deterministic per-name payload pattern; delivery
// verifies against it byte for byte, so any corruption or cross-ADU
// mixup is caught without storing submitted copies.
func aduPayload(name uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(uint64(i)*167 + name*59 + 13)
	}
	return b
}

// aduTag is the deterministic tag for an ADU name.
func aduTag(name uint64) uint64 { return name*2654435761 + 7 }

// otpByte is the deterministic OTP stream pattern at offset off.
func otpByte(off int64) byte { return byte(off*37>>3) ^ byte(off) }

// Run executes one soak scenario to quiescence and returns the
// invariant report. It errors only on harness misconfiguration; fault
// consequences are Violations, not errors.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	res := &Result{Scenario: cfg.Scenario, Seed: cfg.Seed,
		Policy: cfg.Policy, Horizon: cfg.Duration}

	// ---- Topology: two sources and two sinks joined by a lossy trunk.
	//
	//	alf-src ─┐                       ┌─ alf-dst
	//	         ├─ rL ═════ trunk ═════ rR ─┤
	//	otp-src ─┘     (faults here)     └─ otp-dst
	//
	// Access links are clean and fast; every fault and impairment lives
	// on the shared trunk, the cut set between the left and right
	// groups.
	s := sim.NewScheduler()
	cfg.Tracer.Bind(s) // the run's clock did not exist when the caller made it
	cfg.Recorder.Bind(s, cfg.Metrics, sim.Time(0).Add(cfg.Duration))
	net := netsim.New(s, cfg.Seed)
	alfSrc := net.NewNode("alf-src")
	otpSrc := net.NewNode("otp-src")
	alfDst := net.NewNode("alf-dst")
	otpDst := net.NewNode("otp-dst")
	rL := net.NewRouter("rL")
	rR := net.NewRouter("rR")

	access := netsim.LinkConfig{RateBps: 100e6, Delay: 200 * time.Microsecond}
	asL, lAs := net.NewDuplex(alfSrc, rL.Node, access)
	osL, lOs := net.NewDuplex(otpSrc, rL.Node, access)
	adR, rAd := net.NewDuplex(alfDst, rR.Node, access)
	odR, rOd := net.NewDuplex(otpDst, rR.Node, access)

	trunkCfg := netsim.LinkConfig{
		RateBps: 8e6, Delay: 10 * time.Millisecond,
		QueueLimit: 64, LossProb: 0.005,
	}
	if cfg.HoldOnDown {
		trunkCfg.OnDown = netsim.HoldOnDown
	}
	lr, rl := net.NewDuplex(rL.Node, rR.Node, trunkCfg)

	rL.AddRoute(alfDst, lr)
	rL.AddRoute(otpDst, lr)
	rL.AddRoute(alfSrc, lAs)
	rL.AddRoute(otpSrc, lOs)
	rR.AddRoute(alfSrc, rl)
	rR.AddRoute(otpSrc, rl)
	rR.AddRoute(alfDst, rAd)
	rR.AddRoute(otpDst, rOd)

	if cfg.Metrics != nil {
		net.SetMetrics(cfg.Metrics)
	}
	net.SetTracer(cfg.Tracer)

	// ---- ALF stream over the left/right path.
	aCfg := alf.Config{
		Policy:               cfg.Policy,
		Key:                  0xA1F0_0000_0000_0001,
		NackDelay:            10 * time.Millisecond,
		NackInterval:         20 * time.Millisecond,
		HoldTime:             600 * time.Millisecond,
		MaxNacks:             6,
		HeartbeatInterval:    25 * time.Millisecond,
		HeartbeatMaxInterval: 250 * time.Millisecond,
		// The sender must keep declaring extent well past any outage in
		// the horizon; backoff caps the probe rate, the limit is only
		// the truly-dead-path fuse.
		HeartbeatLimit: 1 << 30,
		ADUDeadline:    400 * time.Millisecond,
		Metrics:        cfg.Metrics,
		Tracer:         cfg.Tracer,
	}
	snd, err := alf.NewSender(s, func(p []byte) error {
		return netsim.SendVia(asL, alfDst, p)
	}, aCfg)
	if err != nil {
		return nil, err
	}
	rcv, err := alf.NewReceiver(s, func(p []byte) error {
		return netsim.SendVia(adR, alfSrc, p)
	}, aCfg)
	if err != nil {
		return nil, err
	}
	alfSrc.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	alfDst.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

	delivered := make(map[uint64]int)
	lost := make(map[uint64]int)
	expired := make(map[uint64]int)
	rcv.OnADU = func(adu alf.ADU) {
		delivered[adu.Name]++
		if adu.Tag != aduTag(adu.Name) {
			res.violatef("alf: ADU %d delivered with tag %d, want %d",
				adu.Name, adu.Tag, aduTag(adu.Name))
		}
		if !bytes.Equal(adu.Data, aduPayload(adu.Name, cfg.ADUBytes)) {
			res.violatef("alf: ADU %d delivered corrupted", adu.Name)
		}
	}
	rcv.OnLost = func(name uint64) { lost[name]++ }
	snd.OnExpire = func(name uint64) { expired[name]++ }
	snd.OnResend = func(name uint64) (uint64, xcode.SyntaxID, []byte, bool) {
		// AppRecompute: regenerate from the pattern — always possible.
		return aduTag(name), xcode.SyntaxRaw, aduPayload(name, cfg.ADUBytes), true
	}

	// ---- OTP connection over the same path.
	oCfg := otp.Config{
		MSS: 1000, FastRetransmit: true,
		InitialRTO: 100 * time.Millisecond,
		MinRTO:     50 * time.Millisecond,
		MaxRTO:     time.Second,
		// The connection-dead fuse: without it a blackout near the end
		// of the horizon would leave the sender retrying at MaxRTO
		// forever and the drain invariant could never hold.
		FailThreshold: 8,
		Metrics:       cfg.Metrics,
		MetricsLabels: []string{"role=snd"},
		Tracer:        cfg.Tracer,
	}
	oSnd := otp.New(s, func(p []byte) error {
		return netsim.SendVia(osL, otpDst, p)
	}, oCfg)
	oRcvCfg := oCfg
	oRcvCfg.MetricsLabels = []string{"role=rcv"}
	oRcv := otp.New(s, func(p []byte) error {
		return netsim.SendVia(odR, otpSrc, p)
	}, oRcvCfg)
	otpSrc.SetHandler(func(p *netsim.Packet) { oSnd.HandleSegment(p.Payload) })
	otpDst.SetHandler(func(p *netsim.Packet) { oRcv.HandleSegment(p.Payload) })

	var otpRecv int64
	oRcv.OnData = func(d []byte) {
		for i, b := range d {
			if b != otpByte(otpRecv+int64(i)) {
				res.violatef("otp: byte at offset %d corrupted", otpRecv+int64(i))
				break
			}
		}
		otpRecv += int64(len(d))
	}

	// ---- Workload: steady submission over the first 2/3 of the
	// horizon, leaving a quiet tail for recovery.
	submitWindow := cfg.Duration * 2 / 3
	aduEvery := submitWindow / sim.Duration(cfg.ADUs)
	if aduEvery <= 0 {
		aduEvery = time.Microsecond // degenerate horizon: submit back to back
	}
	for i := 0; i < cfg.ADUs; i++ {
		name := uint64(i)
		s.After(sim.Duration(i)*aduEvery, func() {
			if _, err := snd.Send(aduTag(name), xcode.SyntaxRaw,
				aduPayload(name, cfg.ADUBytes)); err != nil {
				res.violatef("alf: Send(%d) failed: %v", name, err)
			}
		})
	}
	res.Submitted = cfg.ADUs

	const otpChunk = 2000
	otpWrites := (cfg.OTPBytes + otpChunk - 1) / otpChunk
	otpEvery := submitWindow / sim.Duration(otpWrites)
	if otpEvery <= 0 {
		otpEvery = time.Microsecond
	}
	var otpSent int64
	for i := 0; i < otpWrites; i++ {
		off := int64(i) * otpChunk
		n := cfg.OTPBytes - i*otpChunk
		if n > otpChunk {
			n = otpChunk
		}
		chunk := make([]byte, n)
		for j := range chunk {
			chunk[j] = otpByte(off + int64(j))
		}
		s.After(sim.Duration(i)*otpEvery, func() {
			if oSnd.Dead() {
				return // submission stops at the app once the conn fails
			}
			if err := oSnd.Send(chunk); err != nil {
				res.violatef("otp: Send at offset %d failed: %v", off, err)
				return
			}
			otpSent += int64(n)
		})
	}

	// ---- Fault schedule.
	inj := faults.New(s, cfg.Seed^0x5eed)
	if cfg.Metrics != nil {
		inj.BindMetrics(cfg.Metrics)
	}
	inj.SetTracer(cfg.Tracer)
	targets := faults.Targets{
		Net:     net,
		Trunk:   []*netsim.Link{lr, rl},
		Forward: []*netsim.Link{lr},
		GroupA:  []*netsim.Node{alfSrc, otpSrc, rL.Node},
		GroupB:  []*netsim.Node{alfDst, otpDst, rR.Node},
	}
	if err := inj.Preset(cfg.Scenario, targets, cfg.Duration); err != nil {
		return nil, err
	}

	// ---- Boundedness sampler: peak sender retention and receiver
	// reassembly, observed every 20 ms across the whole horizon.
	var sample func()
	sample = func() {
		if b := snd.BufferedBytes(); b > res.PeakRetention {
			res.PeakRetention = b
		}
		if p := rcv.Pending(); p > res.PeakReassembly {
			res.PeakReassembly = p
		}
		if s.Now() < sim.Time(0).Add(cfg.Duration) {
			s.After(20*time.Millisecond, sample)
		}
	}
	sample()

	// ---- Run to the horizon, then drain: after the last fault heals,
	// the event loop must go quiet on its own. A bounded number of
	// virtual seconds and events past the horizon covers legitimate
	// tail work (hold-time give-ups, OTP's dead fuse at ~FailThreshold
	// x MaxRTO); anything beyond that is a recovery livelock.
	s.RunUntil(sim.Time(0).Add(cfg.Duration))
	maxVirtual := sim.Time(0).Add(cfg.Duration + 15*time.Second)
	firedAtHorizon := s.Fired()
	const maxDrainEvents = 5_000_000
	for s.Step() {
		if s.Now() > maxVirtual {
			res.violatef("livelock: events still firing at %v, %d past the horizon",
				s.Now(), s.Fired()-firedAtHorizon)
			break
		}
		if s.Fired()-firedAtHorizon > maxDrainEvents {
			res.violatef("livelock: %d drain events without quiescence",
				s.Fired()-firedAtHorizon)
			break
		}
	}
	res.DrainEvents = s.Fired() - firedAtHorizon
	res.EndVirtual = s.Now()
	cfg.Recorder.Sample() // final post-drain reading for the black box

	// ---- Invariants.
	for i := 0; i < cfg.ADUs; i++ {
		name := uint64(i)
		d, l := delivered[name], lost[name]
		broken := true
		switch {
		case d > 1:
			res.violatef("alf: ADU %d delivered %d times", name, d)
		case l > 1:
			res.violatef("alf: ADU %d reported lost %d times", name, l)
		case d == 1 && l == 1:
			res.violatef("alf: ADU %d both delivered and reported lost", name)
		case d == 0 && l == 0:
			res.violatef("alf: ADU %d unaccounted for (neither delivered nor lost)", name)
		default:
			broken = false
		}
		if broken {
			res.ViolatedADUs = append(res.ViolatedADUs, name)
		}
		if expired[name] > 1 {
			res.violatef("alf: ADU %d expired %d times at the sender", name, expired[name])
		}
	}
	res.Delivered = len(delivered)
	res.Lost = len(lost)
	res.Expired = snd.Stats.DeadlineDrops
	res.ResentADUs = snd.Stats.ResentADUs
	res.RecomputeADUs = snd.Stats.RecomputeADUs
	res.UnfilledNacks = snd.Stats.UnfilledNacks

	// Retention bound: with ADUDeadline D and submission period P, at
	// most ceil(D/P)+slack ADUs can be retained at once; a blackout
	// longer than D must not let retention track the whole backlog.
	if cfg.Policy == alf.SenderBuffered {
		bound := (int(aCfg.ADUDeadline/aduEvery) + 4) * cfg.ADUBytes
		if res.PeakRetention > bound {
			res.violatef("alf: peak retention %d B exceeds deadline bound %d B",
				res.PeakRetention, bound)
		}
	}
	// Reassembly bound: an ADU is held at most HoldTime before give-up.
	if bound := int(aCfg.HoldTime/aduEvery) + 4; res.PeakReassembly > bound {
		res.violatef("alf: peak reassembly %d ADUs exceeds hold-time bound %d",
			res.PeakReassembly, bound)
	}

	// Quiescent end state: nothing retained, nothing pending, every
	// fault healed.
	if n := snd.BufferedADUs(); n != 0 {
		res.violatef("alf: %d ADUs still retained after drain", n)
	}
	if n := rcv.Pending(); n != 0 {
		res.violatef("alf: %d partial ADUs still held after drain", n)
	}
	if n := rcv.Missing(); n != 0 {
		res.violatef("alf: %d ADUs still tracked missing after drain", n)
	}
	if inj.Active() {
		res.violatef("faults: injector still active after the horizon")
	}
	for _, l := range net.Links() {
		if l.Down() {
			res.violatef("faults: link %s->%s left down", l.From().Name(), l.To().Name())
		}
		if h := l.HeldLen(); h != 0 {
			res.violatef("netsim: link %s->%s still holds %d packets",
				l.From().Name(), l.To().Name(), h)
		}
	}

	// OTP stream integrity: delivery is a verified prefix (checked in
	// OnData); a live connection delivers everything it accepted.
	res.OTPSent = otpSent
	res.OTPDelivered = oRcv.Delivered()
	res.OTPDead = oSnd.Dead()
	res.OTPTimeouts = oSnd.Stats.Timeouts
	res.OTPRetransmits = oSnd.Stats.Retransmits
	if res.OTPDelivered > otpSent {
		res.violatef("otp: delivered %d bytes of %d submitted", res.OTPDelivered, otpSent)
	}
	if !res.OTPDead && res.OTPDelivered != otpSent {
		res.violatef("otp: live connection delivered %d of %d bytes",
			res.OTPDelivered, otpSent)
	}
	if res.OTPDead && oSnd.Stats.Died != 1 {
		res.violatef("otp: Dead() true but Died stat = %d", oSnd.Stats.Died)
	}

	res.Faults = inj.Stats
	res.TrunkDownDrops = lr.Stats.DownDrops + rl.Stats.DownDrops
	res.TrunkHeld = lr.Stats.HeldPackets + rl.Stats.HeldPackets
	noteViolations(cfg.Recorder, res.Violations)
	return res, nil
}

// noteViolations stamps every invariant violation into the flight
// record so the black-box dump carries the verdict alongside the
// series that explain it. Nil-safe both ways.
func noteViolations(rec *telemetry.Recorder, violations []string) {
	for _, v := range violations {
		rec.Note("soak", "", "%s", v)
	}
}
