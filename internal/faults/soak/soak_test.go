package soak

import (
	"reflect"
	"testing"
	"time"

	alf "repro/internal/core"
	"repro/internal/tracing"
)

// policies cycles the three recovery schemes through the scenario
// matrix.
var policies = []alf.Policy{alf.SenderBuffered, alf.AppRecompute, alf.NoRetransmit}

// TestScenarioMatrix is the core soak: every named scenario against
// every ALF recovery policy (with OTP riding the same faulty trunk),
// each run checked against the full invariant set.
func TestScenarioMatrix(t *testing.T) {
	for _, scenario := range []string{"flap", "blackout", "degrade", "partition", "random"} {
		for _, policy := range policies {
			t.Run(scenario+"/"+policy.String(), func(t *testing.T) {
				rec := RecorderFor(3*time.Second, ChaosDetectors()...)
				dumpOnFailure(t, rec, "chaos-"+scenario+"-"+policy.String())
				res, err := Run(Config{
					Seed:     1000 + int64(policy),
					Scenario: scenario,
					Policy:   policy,
					Recorder: rec,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range res.Violations {
					t.Errorf("invariant violated: %s", v)
				}
				if res.Delivered == 0 {
					t.Error("no ADUs delivered at all; scenario drowned the run")
				}
				// The scenario must actually have disturbed the network.
				switch scenario {
				case "degrade":
					if res.Faults.Degrades == 0 {
						t.Error("degrade scenario injected nothing")
					}
				default:
					if res.Faults.DownEvents == 0 {
						t.Error("scenario took no link down")
					}
				}
				t.Logf("delivered=%d lost=%d expired=%d resent=%d recomputed=%d "+
					"otp=%d/%dB dead=%v drainEvents=%d",
					res.Delivered, res.Lost, res.Expired, res.ResentADUs,
					res.RecomputeADUs, res.OTPDelivered, res.OTPSent,
					res.OTPDead, res.DrainEvents)
			})
		}
	}
}

// TestBlackoutShedsAndReports: a blackout longer than the ADU deadline
// must actually exercise the give-up paths — retention shed at the
// sender, losses reported at the receiver — not merely survive.
func TestBlackoutShedsAndReports(t *testing.T) {
	res, err := Run(Config{Seed: 7, Scenario: "blackout", Policy: alf.SenderBuffered})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if res.Expired == 0 {
		t.Error("1s blackout with 400ms deadline shed nothing")
	}
	if res.Lost == 0 {
		t.Error("no ADU reported lost despite sender-side sheds")
	}
	if res.UnfilledNacks == 0 {
		t.Error("no unfilled NACKs; receiver never chased a shed ADU")
	}
	if res.TrunkDownDrops == 0 {
		t.Error("blackout dropped nothing on the trunk")
	}
	if res.Delivered+res.Lost != res.Submitted {
		t.Errorf("delivered %d + lost %d != submitted %d",
			res.Delivered, res.Lost, res.Submitted)
	}
}

// TestHoldOnDownTrunk: the same invariants must hold when a down trunk
// parks packets instead of dropping them (flap heals replay the held
// queue in order).
func TestHoldOnDownTrunk(t *testing.T) {
	res, err := Run(Config{Seed: 11, Scenario: "flap", Policy: alf.SenderBuffered,
		HoldOnDown: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if res.TrunkHeld == 0 {
		t.Error("HoldOnDown trunk parked nothing across 4 flaps")
	}
}

// TestDeterminism: a soak run is a pure function of its Config.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Scenario: "random", Policy: alf.AppRecompute}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

// TestSeedSweep: randomized schedules across seeds; every one must
// uphold the invariants. Short mode keeps the sweep narrow.
func TestSeedSweep(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		policy := policies[seed%int64(len(policies))]
		res, err := Run(Config{Seed: seed, Scenario: "random", Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d (%v): %s", seed, policy, v)
		}
	}
}

// TestLongBlackoutKillsOTP: a blackout dominating the horizon must trip
// OTP's FailThreshold — the connection dies explicitly and the
// scheduler still drains.
func TestLongBlackoutKillsOTP(t *testing.T) {
	res, err := Run(Config{
		Seed:     5,
		Scenario: "blackout",
		Policy:   alf.NoRetransmit,
		// The dead fuse is 8 consecutive RTOs from MinRTO doubling into
		// the 1s ceiling: 50+100+200+400+800+1000x3 ~= 4.6s. The blackout
		// preset darkens the trunk for a third of the horizon, so 18s
		// gives a 6s outage that must trip it.
		Duration: 18 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if !res.OTPDead {
		t.Errorf("OTP survived a 6s blackout with an ~4.6s dead fuse (timeouts=%d)",
			res.OTPTimeouts)
	}
	if res.OTPDelivered >= res.OTPSent {
		t.Error("dead connection claims full delivery")
	}
}

// TestTracedRun: a tracer handed in through Config.Tracer (built
// before the run's scheduler existed, so exercising the Bind path)
// must record the whole run, and the analyzer must see every
// submitted ADU plus the injected fault windows.
func TestTracedRun(t *testing.T) {
	tracer := tracing.New(nil)
	res, err := Run(Config{
		Seed:     42,
		Scenario: "blackout",
		Tracer:   tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tracer.Len() == 0 {
		t.Fatal("tracer bound via Config.Tracer recorded nothing")
	}
	rep := tracer.Analyze()
	if got := len(rep.ADUs); got != 60 {
		t.Errorf("analyzer saw %d ALF ADUs, want the full 60", got)
	}
	if len(rep.Faults) == 0 {
		t.Error("blackout scenario left no fault spans in the trace")
	}
	delivered := 0
	for _, a := range rep.ADUs {
		if a.Outcome == "delivered" {
			delivered++
		}
	}
	if delivered != res.Delivered {
		t.Errorf("trace says %d delivered, soak result says %d",
			delivered, res.Delivered)
	}
}
