// Package filetx is the paper's file-transfer application (§5): the
// sender labels every ADU with the location it will occupy in the
// receiver's file, so the receiver can place ADUs as they arrive —
// out of order, with gaps — instead of buffering behind a loss.
//
// The placement label is the ADU tag. For image-mode transfer the
// receiver offset equals the sender offset; when a presentation
// conversion changes element sizes, the sender computes the receiver's
// offsets with xcode's exact size mapping (PlanConverted) — "the sender
// must perform at least enough of the conversion to be able to compute,
// in terms meaningful to the receiver, where the ADU is to be
// delivered."
package filetx

import (
	"errors"
	"fmt"
	"sort"

	alf "repro/internal/core"
	"repro/internal/xcode"
)

// Errors.
var (
	ErrOverlap  = errors.New("filetx: ADU overlaps data already written")
	ErrBounds   = errors.New("filetx: ADU outside file bounds")
	ErrComplete = errors.New("filetx: transfer already complete")
)

// Chunk is one planned ADU of a transfer: a source range and the
// receiver-file offset it will occupy.
type Chunk struct {
	SrcOff  int // offset in the sender's file
	SrcLen  int
	DstOff  int // offset in the receiver's file (the ADU tag)
	DstLen  int // length after conversion (== SrcLen for image mode)
	Payload []byte
}

// Plan splits an image-mode (raw) transfer into ADU-sized chunks whose
// receiver offsets equal their sender offsets.
func Plan(data []byte, aduSize int) []Chunk {
	if aduSize <= 0 {
		aduSize = 8192
	}
	var chunks []Chunk
	for off := 0; off < len(data) || (off == 0 && len(data) == 0); off += aduSize {
		end := off + aduSize
		if end > len(data) {
			end = len(data)
		}
		chunks = append(chunks, Chunk{
			SrcOff: off, SrcLen: end - off,
			DstOff: off, DstLen: end - off,
			Payload: data[off:end],
		})
		if len(data) == 0 {
			break
		}
	}
	return chunks
}

// PlanConverted plans a transfer of integer records where the receiver
// stores each chunk in codec syntax: the sender performs the size
// computation of the conversion up front so each ADU knows its exact
// destination offset, even though the converted sizes vary per element.
// The payload of each chunk is the converted (transfer-syntax) bytes.
func PlanConverted(records [][]int32, codec xcode.Codec) ([]Chunk, error) {
	var chunks []Chunk
	dst := 0
	src := 0
	for i, rec := range records {
		v := xcode.Int32sValue(rec)
		n, err := codec.SizeValue(v)
		if err != nil {
			return nil, fmt.Errorf("filetx: plan record %d: %w", i, err)
		}
		enc, err := codec.EncodeValue(nil, v)
		if err != nil {
			return nil, fmt.Errorf("filetx: encode record %d: %w", i, err)
		}
		if len(enc) != n {
			return nil, fmt.Errorf("filetx: record %d size mapping %d != %d", i, n, len(enc))
		}
		chunks = append(chunks, Chunk{
			SrcOff: src, SrcLen: 4 * len(rec),
			DstOff: dst, DstLen: n,
			Payload: enc,
		})
		src += 4 * len(rec)
		dst += n
	}
	return chunks, nil
}

// TotalDst returns the size of the receiver's file implied by a plan.
func TotalDst(chunks []Chunk) int {
	total := 0
	for _, c := range chunks {
		if end := c.DstOff + c.DstLen; end > total {
			total = end
		}
	}
	return total
}

// Send transmits every chunk of a plan as one ADU each, tag = receiver
// offset. It returns the names assigned.
func Send(snd *alf.Sender, chunks []Chunk, syntax xcode.SyntaxID) ([]uint64, error) {
	names := make([]uint64, 0, len(chunks))
	for i := range chunks {
		name, err := snd.Send(uint64(chunks[i].DstOff), syntax, chunks[i].Payload)
		if err != nil {
			return names, fmt.Errorf("filetx: chunk %d: %w", i, err)
		}
		names = append(names, name)
	}
	return names, nil
}

// Writer reconstructs the receiver's file from ADUs in any order.
type Writer struct {
	buf     []byte
	ranges  map[int]int // written offset -> length
	written int
	// OnComplete fires once when the file fills.
	OnComplete func()
	done       bool
}

// NewWriter creates a writer for a file of the given final size.
func NewWriter(size int) *Writer {
	return &Writer{buf: make([]byte, size), ranges: make(map[int]int)}
}

// Apply places one ADU at its labeled offset. Exact duplicate ADUs are
// ignored; overlapping different ranges are an error.
func (w *Writer) Apply(adu alf.ADU) error {
	off := int(adu.Tag)
	n := len(adu.Data)
	if off < 0 || off+n > len(w.buf) {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrBounds, off, off+n, len(w.buf))
	}
	if have, dup := w.ranges[off]; dup {
		if have == n {
			return nil
		}
		return fmt.Errorf("%w: offset %d", ErrOverlap, off)
	}
	for o, l := range w.ranges {
		if off < o+l && o < off+n {
			return fmt.Errorf("%w: [%d,%d) vs [%d,%d)", ErrOverlap, off, off+n, o, o+l)
		}
	}
	copy(w.buf[off:], adu.Data)
	w.ranges[off] = n
	w.written += n
	if w.written == len(w.buf) && !w.done {
		w.done = true
		if w.OnComplete != nil {
			w.OnComplete()
		}
	}
	return nil
}

// Complete reports whether every byte has been written.
func (w *Writer) Complete() bool { return w.written == len(w.buf) }

// Written returns the bytes received so far.
func (w *Writer) Written() int { return w.written }

// Bytes returns the file contents (meaningful once Complete).
func (w *Writer) Bytes() []byte { return w.buf }

// MissingRanges returns the unwritten [off,end) ranges, sorted.
func (w *Writer) MissingRanges() [][2]int {
	offs := make([]int, 0, len(w.ranges))
	for o := range w.ranges {
		offs = append(offs, o)
	}
	sort.Ints(offs)
	var gaps [][2]int
	cur := 0
	for _, o := range offs {
		if o > cur {
			gaps = append(gaps, [2]int{cur, o})
		}
		cur = o + w.ranges[o]
	}
	if cur < len(w.buf) {
		gaps = append(gaps, [2]int{cur, len(w.buf)})
	}
	return gaps
}
