package filetx

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

func filedata(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>9)
	}
	return b
}

func TestPlanCoversFile(t *testing.T) {
	data := filedata(100_000)
	chunks := Plan(data, 8192)
	var total int
	for i, c := range chunks {
		if c.SrcOff != c.DstOff || c.SrcLen != c.DstLen {
			t.Fatalf("chunk %d: image-mode offsets differ", i)
		}
		if !bytes.Equal(c.Payload, data[c.SrcOff:c.SrcOff+c.SrcLen]) {
			t.Fatalf("chunk %d payload wrong", i)
		}
		total += c.SrcLen
	}
	if total != len(data) {
		t.Errorf("plan covers %d of %d bytes", total, len(data))
	}
	if TotalDst(chunks) != len(data) {
		t.Errorf("TotalDst = %d", TotalDst(chunks))
	}
}

func TestPlanEmptyFile(t *testing.T) {
	chunks := Plan(nil, 100)
	if len(chunks) != 1 || chunks[0].SrcLen != 0 {
		t.Errorf("empty plan = %+v", chunks)
	}
}

func TestPlanConvertedOffsets(t *testing.T) {
	// Variable-size BER encodings: destination offsets must be exact
	// prefix sums of converted sizes.
	records := [][]int32{
		{1, 2, 3},
		{1000, -1000},
		{0},
		{1 << 30},
	}
	chunks, err := PlanConverted(records, xcode.BER{})
	if err != nil {
		t.Fatal(err)
	}
	dst := 0
	for i, c := range chunks {
		if c.DstOff != dst {
			t.Errorf("chunk %d DstOff = %d, want %d", i, c.DstOff, dst)
		}
		if c.DstLen != len(c.Payload) {
			t.Errorf("chunk %d DstLen %d != payload %d", i, c.DstLen, len(c.Payload))
		}
		dst += c.DstLen
	}
	// Concatenated payloads decode back to the records.
	var file []byte
	for _, c := range chunks {
		file = append(file, c.Payload...)
	}
	off := 0
	for i, rec := range records {
		v, n, err := (xcode.BER{}).DecodeValue(file[off:])
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equal(xcode.Int32sValue(rec)) {
			t.Errorf("record %d mismatch", i)
		}
		off += n
	}
}

func TestWriterOutOfOrder(t *testing.T) {
	data := filedata(10_000)
	chunks := Plan(data, 1000)
	w := NewWriter(len(data))
	completed := false
	w.OnComplete = func() { completed = true }

	order := []int{9, 0, 5, 3, 7, 1, 8, 2, 6, 4}
	for _, i := range order {
		c := chunks[i]
		err := w.Apply(alf.ADU{Tag: uint64(c.DstOff), Data: c.Payload})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !w.Complete() || !completed {
		t.Fatal("file incomplete after all chunks")
	}
	if !bytes.Equal(w.Bytes(), data) {
		t.Error("out-of-order reconstruction wrong")
	}
}

func TestWriterMissingRanges(t *testing.T) {
	w := NewWriter(1000)
	w.Apply(alf.ADU{Tag: 0, Data: make([]byte, 100)})
	w.Apply(alf.ADU{Tag: 500, Data: make([]byte, 100)})
	gaps := w.MissingRanges()
	want := [][2]int{{100, 500}, {600, 1000}}
	if len(gaps) != 2 || gaps[0] != want[0] || gaps[1] != want[1] {
		t.Errorf("gaps = %v, want %v", gaps, want)
	}
	if w.Written() != 200 {
		t.Errorf("written = %d", w.Written())
	}
}

func TestWriterRejectsBadADUs(t *testing.T) {
	w := NewWriter(100)
	if err := w.Apply(alf.ADU{Tag: 90, Data: make([]byte, 20)}); !errors.Is(err, ErrBounds) {
		t.Errorf("bounds err = %v", err)
	}
	w.Apply(alf.ADU{Tag: 10, Data: make([]byte, 20)})
	// Exact duplicate ok.
	if err := w.Apply(alf.ADU{Tag: 10, Data: make([]byte, 20)}); err != nil {
		t.Errorf("duplicate err = %v", err)
	}
	// Overlap not ok.
	if err := w.Apply(alf.ADU{Tag: 20, Data: make([]byte, 20)}); !errors.Is(err, ErrOverlap) {
		t.Errorf("overlap err = %v", err)
	}
	if err := w.Apply(alf.ADU{Tag: 10, Data: make([]byte, 5)}); !errors.Is(err, ErrOverlap) {
		t.Errorf("same-offset different-length err = %v", err)
	}
}

func TestEndToEndOverLossyALF(t *testing.T) {
	s := sim.NewScheduler()
	n := netsim.New(s, 31)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{
		Delay: 2 * time.Millisecond, LossProb: 0.05,
	})
	cfg := alf.Config{NackDelay: 5 * time.Millisecond, NackInterval: 5 * time.Millisecond}
	snd, err := alf.NewSender(s, ab.Send, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := alf.NewReceiver(s, ba.Send, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.SetHandler(func(p *netsim.Packet) { snd.HandleControl(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { rcv.HandlePacket(p.Payload) })

	data := filedata(200_000)
	chunks := Plan(data, 4096)
	w := NewWriter(TotalDst(chunks))
	outOfOrderWrites := 0
	maxSeen := -1
	rcv.OnADU = func(adu alf.ADU) {
		if int(adu.Tag) < maxSeen {
			outOfOrderWrites++
		} else {
			maxSeen = int(adu.Tag)
		}
		if err := w.Apply(adu); err != nil {
			t.Errorf("apply: %v", err)
		}
	}
	if _, err := Send(snd, chunks, xcode.SyntaxRaw); err != nil {
		t.Fatal(err)
	}
	s.Run()

	if !w.Complete() {
		t.Fatalf("file incomplete: missing %v", w.MissingRanges())
	}
	if !bytes.Equal(w.Bytes(), data) {
		t.Fatal("file corrupted")
	}
	if outOfOrderWrites == 0 {
		t.Error("no out-of-order writes despite loss — ALF benefit not exercised")
	}
}

func TestPlanProperty(t *testing.T) {
	f := func(data []byte, size uint8) bool {
		chunks := Plan(data, int(size))
		w := NewWriter(TotalDst(chunks))
		for i := len(chunks) - 1; i >= 0; i-- { // reverse order
			c := chunks[i]
			if err := w.Apply(alf.ADU{Tag: uint64(c.DstOff), Data: c.Payload}); err != nil {
				return false
			}
		}
		return w.Complete() && bytes.Equal(w.Bytes(), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
