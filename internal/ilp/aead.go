package ilp

import (
	"encoding/binary"

	"repro/internal/cipher"
)

// This file holds the AEAD tier of the integrated-layer-processing
// kernels: real ChaCha20 keystream generation, the layer-boundary copy,
// and Poly1305 accumulation fused into one loop over the payload. The
// ChaCha20 block counter is derived from the byte offset, so — like the
// scramble.WordAt kernels above — any 8-byte-aligned fragment offset is
// its own synchronization point and fragments can be processed out of
// order. The Poly1305 tag replaces the Internet checksum as the
// integrity pass when the AEAD suite is on: integrity is still checked
// in the same single pass that moves the bytes, which is the paper's §6
// argument with a modern cipher doing the work.
//
// The Staged* variants are the layered contrast (A1 ablation): the same
// primitives, but one full memory pass per layer — copy across the
// layer boundary, then encrypt, then MAC. Each pass alone is
// latency-bound (ChaCha20 on the ALU ports, Poly1305 on the multiplier)
// and they serialize; the fused loop lets the out-of-order core overlap
// the Poly1305 multiply chain of one block with the ChaCha20 rounds of
// the next, hiding most of the MAC cost entirely.

// aeadOff converts a byte offset into a (block counter, intra-block
// skip) pair for the payload keystream, which starts at block counter 1
// (counter 0 and the high-counter ranges are reserved for one-time MAC
// keys — see internal/core).
func aeadOff(off int) (uint32, int) {
	if off%8 != 0 {
		panic("ilp: AEAD kernel offset must be 8-byte aligned")
	}
	return uint32(1 + off/cipher.BlockSize), off % cipher.BlockSize
}

// FusedEncryptCopyMAC reads plaintext from src, writes ciphertext into
// dst, and accumulates the ciphertext into mac, in one pass: each
// 64-byte keystream block is generated into a stack buffer, XORed
// word-wise against the source, and the resulting ciphertext words are
// fed to the Poly1305 accumulator while still warm. off is the byte
// offset of src within the ADU keystream (multiple of 8). mac may be
// nil, in which case the kernel is encrypt+copy only. len(dst) must be
// >= len(src); it returns len(src).
func FusedEncryptCopyMAC(dst, src []byte, key *cipher.Key, nonce *[cipher.NonceSize]byte, off int, mac *cipher.MAC) int {
	ctr, skip := aeadOff(off)
	var ks [cipher.BlockSize]byte
	n := len(src)
	i := 0
	for i < n {
		if skip == 0 && mac != nil && mac.Aligned() && n-i >= cipher.BlockSize {
			// Bulk fast path: registers end-to-end, two interleaved
			// ChaCha20 states, Poly1305 folded into the same loop.
			p := cipher.FusedXORMAC(key, nonce, ctr, dst[i:n], src[i:n], mac, true)
			ctr += uint32(p / cipher.BlockSize)
			i += p
			continue
		}
		cipher.Block(key, nonce, ctr, &ks)
		ctr++
		m := cipher.BlockSize - skip
		if m > n-i {
			m = n - i
		}
		j := 0
		for ; m-j >= 8; j += 8 {
			w := binary.LittleEndian.Uint64(src[i+j:]) ^ binary.LittleEndian.Uint64(ks[skip+j:])
			binary.LittleEndian.PutUint64(dst[i+j:], w)
		}
		for ; j < m; j++ {
			dst[i+j] = src[i+j] ^ ks[skip+j]
		}
		if mac != nil {
			mac.Update(dst[i : i+m])
		}
		i += m
		skip = 0
	}
	return n
}

// FusedDecryptCopyVerify is the receive-side mirror: it reads
// ciphertext from src, accumulates the ciphertext into mac, and writes
// plaintext into dst, in one pass. The caller finalizes mac against the
// fragment's tag (MAC.Verify) and must discard the fragment range if it
// fails — the plaintext has already been placed, which is safe as long
// as the range is only accounted as received on success. mac may be nil
// for pre-authenticated data (FEC-reconstructed fragments, whose bytes
// are authenticated transitively by the parity tag and the surviving
// fragments' tags). len(dst) must be >= len(src); returns len(src).
func FusedDecryptCopyVerify(dst, src []byte, key *cipher.Key, nonce *[cipher.NonceSize]byte, off int, mac *cipher.MAC) int {
	ctr, skip := aeadOff(off)
	var ks [cipher.BlockSize]byte
	n := len(src)
	i := 0
	for i < n {
		if skip == 0 && mac != nil && mac.Aligned() && n-i >= cipher.BlockSize {
			p := cipher.FusedXORMAC(key, nonce, ctr, dst[i:n], src[i:n], mac, false)
			ctr += uint32(p / cipher.BlockSize)
			i += p
			continue
		}
		cipher.Block(key, nonce, ctr, &ks)
		ctr++
		m := cipher.BlockSize - skip
		if m > n-i {
			m = n - i
		}
		j := 0
		for ; m-j >= 8; j += 8 {
			w := binary.LittleEndian.Uint64(src[i+j:]) ^ binary.LittleEndian.Uint64(ks[skip+j:])
			binary.LittleEndian.PutUint64(dst[i+j:], w)
		}
		for ; j < m; j++ {
			dst[i+j] = src[i+j] ^ ks[skip+j]
		}
		if mac != nil {
			mac.Update(src[i : i+m])
		}
		i += m
		skip = 0
	}
	return n
}

// StagedEncryptCopyMAC performs the same transformation as
// FusedEncryptCopyMAC the way a layered stack does: one full pass to
// copy the plaintext across the layer boundary, one full pass to
// encrypt it in place, one full pass to MAC the ciphertext. This is the
// A1 contrast the fused kernel is measured against.
func StagedEncryptCopyMAC(dst, src []byte, key *cipher.Key, nonce *[cipher.NonceSize]byte, off int, mac *cipher.MAC) int {
	n := WordCopy(dst, src)
	cipher.XORKeyStream(key, nonce, off, dst[:n], dst[:n])
	if mac != nil {
		mac.Update(dst[:n])
	}
	return n
}

// StagedDecryptCopyVerify is the layered receive mirror: copy the
// ciphertext into place, MAC it, then decrypt in place — three full
// memory passes.
func StagedDecryptCopyVerify(dst, src []byte, key *cipher.Key, nonce *[cipher.NonceSize]byte, off int, mac *cipher.MAC) int {
	n := WordCopy(dst, src)
	if mac != nil {
		mac.Update(dst[:n])
	}
	cipher.XORKeyStream(key, nonce, off, dst[:n], dst[:n])
	return n
}
