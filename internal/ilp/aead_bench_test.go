package ilp

import (
	"fmt"
	"testing"

	"repro/internal/cipher"
)

// The fused-vs-staged AEAD comparison across payload sizes — the §6
// measurement with a real cipher. BENCH_0008.json archives these.

var aeadBenchSizes = []int{256, 1024, 4096, 16384}

func benchFusedAEAD(b *testing.B, n int, fused bool) {
	key, nonce := benchAEADKey()
	src := make([]byte, n)
	dst := make([]byte, n)
	for i := range src {
		src[i] = byte(i)
	}
	var tag [cipher.TagSize]byte
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mac := newTagMAC(&key, &nonce, 0x40000000)
		if fused {
			FusedEncryptCopyMAC(dst, src, &key, &nonce, 0, &mac)
		} else {
			StagedEncryptCopyMAC(dst, src, &key, &nonce, 0, &mac)
		}
		mac.Sum(tag[:])
	}
}

func benchAEADKey() (cipher.Key, [cipher.NonceSize]byte) {
	return cipher.ExpandKey(0xBEEF), [cipher.NonceSize]byte{1, 2, 3}
}

func BenchmarkFusedAEAD(b *testing.B) {
	for _, n := range aeadBenchSizes {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) { benchFusedAEAD(b, n, true) })
	}
}

func BenchmarkStagedAEAD(b *testing.B) {
	for _, n := range aeadBenchSizes {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) { benchFusedAEAD(b, n, false) })
	}
}

func BenchmarkFusedAEADDecrypt(b *testing.B) {
	key, nonce := benchAEADKey()
	const n = 1024
	src := make([]byte, n)
	dst := make([]byte, n)
	var tag [cipher.TagSize]byte
	b.SetBytes(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mac := newTagMAC(&key, &nonce, 0x40000000)
		FusedDecryptCopyVerify(dst, src, &key, &nonce, 0, &mac)
		mac.Sum(tag[:])
	}
}
