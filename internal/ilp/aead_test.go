package ilp

import (
	"bytes"
	"testing"

	"repro/internal/cipher"
)

func testAEADKey() (cipher.Key, [cipher.NonceSize]byte) {
	return cipher.ExpandKey(0xDEADBEEF), [cipher.NonceSize]byte{9, 8, 7, 6, 5, 4, 3, 2, 1}
}

func newTagMAC(key *cipher.Key, nonce *[cipher.NonceSize]byte, ctr uint32) cipher.MAC {
	var otk [cipher.KeySize]byte
	cipher.TagKey(key, nonce, ctr, &otk)
	return cipher.NewMAC(&otk)
}

// Fused and staged paths must produce identical ciphertext and tags at
// every offset/length combination, including tails and intra-block
// starts.
func TestFusedEncryptMatchesStaged(t *testing.T) {
	key, nonce := testAEADKey()
	src := make([]byte, 700)
	for i := range src {
		src[i] = byte(i * 131)
	}
	for _, off := range []int{0, 8, 56, 64, 72, 128, 1024} {
		for _, n := range []int{0, 1, 7, 8, 15, 63, 64, 65, 128, 255, 700} {
			fdst := make([]byte, n)
			sdst := make([]byte, n)
			fmac := newTagMAC(&key, &nonce, 0x40000000)
			smac := newTagMAC(&key, &nonce, 0x40000000)
			FusedEncryptCopyMAC(fdst, src[:n], &key, &nonce, off, &fmac)
			StagedEncryptCopyMAC(sdst, src[:n], &key, &nonce, off, &smac)
			if !bytes.Equal(fdst, sdst) {
				t.Fatalf("off=%d n=%d: ciphertext mismatch", off, n)
			}
			var ftag, stag [cipher.TagSize]byte
			fmac.Sum(ftag[:])
			smac.Sum(stag[:])
			if ftag != stag {
				t.Fatalf("off=%d n=%d: tag mismatch", off, n)
			}
		}
	}
}

// Encrypt→decrypt round trip with tag verification, at fragment-like
// offsets; corrupting any byte of the ciphertext must fail the verify.
func TestFusedDecryptVerifyRoundTrip(t *testing.T) {
	key, nonce := testAEADKey()
	pt := make([]byte, 333)
	for i := range pt {
		pt[i] = byte(i ^ 0x5A)
	}
	for _, off := range []int{0, 8, 64, 120} {
		ct := make([]byte, len(pt))
		emac := newTagMAC(&key, &nonce, 0x40000000+uint32(off/8))
		FusedEncryptCopyMAC(ct, pt, &key, &nonce, off, &emac)
		var tag [cipher.TagSize]byte
		emac.Sum(tag[:])

		got := make([]byte, len(pt))
		dmac := newTagMAC(&key, &nonce, 0x40000000+uint32(off/8))
		FusedDecryptCopyVerify(got, ct, &key, &nonce, off, &dmac)
		if !dmac.Verify(tag[:]) {
			t.Fatalf("off=%d: tag rejected on clean ciphertext", off)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("off=%d: plaintext mismatch", off)
		}

		// One flipped ciphertext byte must fail verification.
		ct[len(ct)/2] ^= 0x10
		bmac := newTagMAC(&key, &nonce, 0x40000000+uint32(off/8))
		FusedDecryptCopyVerify(got, ct, &key, &nonce, off, &bmac)
		if bmac.Verify(tag[:]) {
			t.Fatalf("off=%d: tag accepted corrupted ciphertext", off)
		}
	}
}

// A nil MAC degrades the kernels to pure seekable encrypt/decrypt —
// the pre-authenticated FEC reconstruction path.
func TestFusedNilMAC(t *testing.T) {
	key, nonce := testAEADKey()
	pt := []byte("fragment reconstructed from parity, already authenticated")
	ct := make([]byte, len(pt))
	FusedEncryptCopyMAC(ct, pt, &key, &nonce, 8, nil)
	want := make([]byte, len(pt))
	cipher.XORKeyStream(&key, &nonce, 8, want, pt)
	if !bytes.Equal(ct, want) {
		t.Fatal("nil-MAC encrypt differs from XORKeyStream")
	}
	back := make([]byte, len(pt))
	FusedDecryptCopyVerify(back, ct, &key, &nonce, 8, nil)
	if !bytes.Equal(back, pt) {
		t.Fatal("nil-MAC decrypt did not round-trip")
	}
}

func TestAEADKernelAlignmentPanics(t *testing.T) {
	key, nonce := testAEADKey()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unaligned offset")
		}
	}()
	FusedEncryptCopyMAC(make([]byte, 8), make([]byte, 8), &key, &nonce, 3, nil)
}

// FuzzFusedDecryptCopyVerify cross-checks the fused one-pass kernel
// against the staged layered path on random payloads, offsets, and
// corruption: both must agree on plaintext, tag, and accept/reject.
func FuzzFusedDecryptCopyVerify(f *testing.F) {
	f.Add([]byte("seed payload"), uint16(0), uint64(1), false)
	f.Add(make([]byte, 200), uint16(64), uint64(0xABCDEF), true)
	f.Add([]byte{1}, uint16(8), uint64(42), false)
	f.Fuzz(func(t *testing.T, data []byte, off16 uint16, seed uint64, corrupt bool) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		off := int(off16) &^ 7 // 8-byte aligned, 0..65528
		key := cipher.ExpandKey(seed)
		var nonce [cipher.NonceSize]byte
		nonce[0] = byte(seed >> 56)
		nonce[11] = byte(seed)

		// Encrypt with the fused kernel, tag it.
		ct := make([]byte, len(data))
		emac := newTagMAC(&key, &nonce, 0x40000000+uint32(off/8))
		FusedEncryptCopyMAC(ct, data, &key, &nonce, off, &emac)
		var tag [cipher.TagSize]byte
		emac.Sum(tag[:])

		// Staged encrypt must agree byte-for-byte.
		sct := make([]byte, len(data))
		smac := newTagMAC(&key, &nonce, 0x40000000+uint32(off/8))
		StagedEncryptCopyMAC(sct, data, &key, &nonce, off, &smac)
		if !bytes.Equal(ct, sct) {
			t.Fatal("fused and staged ciphertext differ")
		}
		if !smac.Verify(tag[:]) {
			t.Fatal("fused and staged tags differ")
		}

		if corrupt && len(ct) > 0 {
			ct[int(seed)%len(ct)] ^= byte(seed>>8) | 1
		}

		// Decrypt both ways; they must agree with each other and with
		// the ground truth on both plaintext and verification verdict.
		fpt := make([]byte, len(ct))
		fmac := newTagMAC(&key, &nonce, 0x40000000+uint32(off/8))
		FusedDecryptCopyVerify(fpt, ct, &key, &nonce, off, &fmac)
		fok := fmac.Verify(tag[:])

		spt := make([]byte, len(ct))
		dmac := newTagMAC(&key, &nonce, 0x40000000+uint32(off/8))
		StagedDecryptCopyVerify(spt, ct, &key, &nonce, off, &dmac)
		sok := dmac.Verify(tag[:])

		if fok != sok {
			t.Fatalf("verify verdicts differ: fused=%v staged=%v", fok, sok)
		}
		if !bytes.Equal(fpt, spt) {
			t.Fatal("fused and staged plaintext differ")
		}
		wantOK := !corrupt || len(ct) == 0
		if fok != wantOK {
			t.Fatalf("verify=%v, want %v (corrupt=%v)", fok, wantOK, corrupt)
		}
		if wantOK && !bytes.Equal(fpt, data) {
			t.Fatal("plaintext does not round-trip")
		}
	})
}
