// Package ilp implements Integrated Layer Processing (paper §6): the
// data-manipulation steps of different protocol layers — copying,
// checksumming, decryption, presentation conversion, and the move into
// application address space — arranged so an implementor can run them in
// one integrated processing loop instead of one full memory pass per
// layer.
//
// The package provides three tiers, which together form the A1 ablation:
//
//   - Hand-fused kernels (FusedCopyChecksum, FusedCopyChecksumDecrypt,
//     EncodeBERInt32sChecksum, ...): the "hand coded unrolled loop" of
//     the paper's §4 measurements.
//   - A generic stage pipeline (FusedPath) that applies any stage list
//     word by word in a single pass, paying an indirect call per stage
//     per word.
//   - A layered equivalent (LayeredPath) that makes one full pass over
//     the data per stage, modeling the naive layered engineering the
//     paper argues against.
//
// All kernels are allocation-free on the steady-state path.
package ilp

import (
	"encoding/binary"

	"repro/internal/checksum"
	"repro/internal/scramble"
	"repro/internal/xcode"
)

// WordCopy copies src into dst with an explicit 8-byte word loop,
// unrolled four words at a time — the baseline "copy" manipulation of
// Table 1. It copies min(len(dst), len(src)) bytes and returns the
// count. (The Go built-in copy is an optimized memmove; WordCopy exists
// so that copy, checksum, and their fusion all use the same loop
// discipline and the comparison isolates memory passes, not SIMD.)
func WordCopy(dst, src []byte) int {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	for ; n-i >= 32; i += 32 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i+8:], binary.LittleEndian.Uint64(src[i+8:]))
		binary.LittleEndian.PutUint64(dst[i+16:], binary.LittleEndian.Uint64(src[i+16:]))
		binary.LittleEndian.PutUint64(dst[i+24:], binary.LittleEndian.Uint64(src[i+24:]))
	}
	for ; n-i >= 8; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] = src[i]
	}
	return n
}

// XORWords XOR-accumulates src into dst (dst[i] ^= src[i]) with the
// same 8-byte-word, four-way-unrolled loop discipline as WordCopy. It
// is the FEC parity manipulation: the sender accumulates each data
// fragment into the group's parity buffer, and the receiver repairs a
// lost fragment by accumulating the survivors into the parity. It
// processes min(len(dst), len(src)) bytes and returns the count.
func XORWords(dst, src []byte) int {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	for ; n-i >= 32; i += 32 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i+8:], binary.LittleEndian.Uint64(dst[i+8:])^binary.LittleEndian.Uint64(src[i+8:]))
		binary.LittleEndian.PutUint64(dst[i+16:], binary.LittleEndian.Uint64(dst[i+16:])^binary.LittleEndian.Uint64(src[i+16:]))
		binary.LittleEndian.PutUint64(dst[i+24:], binary.LittleEndian.Uint64(dst[i+24:])^binary.LittleEndian.Uint64(src[i+24:]))
	}
	for ; n-i >= 8; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
	return n
}

// sumWord adds the four 16-bit lanes of a little-endian word to a
// byte-swapped one's-complement partial sum. By RFC 1071's byte-order
// independence property, summing every 16-bit word with its bytes
// swapped yields the byte-swap of the true sum — so the hot loop does
// no byte reversal at all, and foldLE swaps once at the end.
func sumWord(sum uint64, w uint64) uint64 {
	return sum + (w >> 48) + (w >> 32 & 0xffff) + (w >> 16 & 0xffff) + (w & 0xffff)
}

// foldLE converts a little-endian-lane partial sum into a true
// (network-order) partial sum: fold to 16 bits, then swap the bytes.
func foldLE(sum uint64) uint64 {
	f := checksum.Fold(sum)
	return uint64(f>>8 | f<<8)
}

// SeparateCopyThenChecksum performs the two manipulations as distinct
// full passes — copy all of src to dst, then checksum dst — the way a
// layered implementation does when the functions live in different
// layers (§4: "if they were done separately"). It returns the Internet
// checksum of the data. len(dst) must be >= len(src).
func SeparateCopyThenChecksum(dst, src []byte) uint16 {
	WordCopy(dst, src)
	return ^checksum.Fold(checksum.Accumulate(0, dst[:len(src)]))
}

// FusedCopyChecksum copies src to dst and computes the Internet checksum
// in a single pass: each word is loaded once, stored, and added to the
// running sum while still in a register (§4's fused copy+checksum
// experiment). len(dst) must be >= len(src).
func FusedCopyChecksum(dst, src []byte) uint16 {
	var sum uint64
	n := len(src)
	i := 0
	for ; n-i >= 32; i += 32 {
		w0 := binary.LittleEndian.Uint64(src[i:])
		w1 := binary.LittleEndian.Uint64(src[i+8:])
		w2 := binary.LittleEndian.Uint64(src[i+16:])
		w3 := binary.LittleEndian.Uint64(src[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], w0)
		binary.LittleEndian.PutUint64(dst[i+8:], w1)
		binary.LittleEndian.PutUint64(dst[i+16:], w2)
		binary.LittleEndian.PutUint64(dst[i+24:], w3)
		sum = sumWord(sum, w0)
		sum = sumWord(sum, w1)
		sum = sumWord(sum, w2)
		sum = sumWord(sum, w3)
	}
	for ; n-i >= 8; i += 8 {
		w := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], w)
		sum = sumWord(sum, w)
	}
	sum = foldLE(sum)
	if i < n {
		// Tail: copy and checksum the remaining 1..7 bytes.
		copy(dst[i:], src[i:n])
		sum = checksum.Accumulate(sum, src[i:n])
	}
	return ^checksum.Fold(sum)
}

// FusedCopyChecksumDecrypt is the three-stage integrated loop: decrypt
// src with ks, store the plaintext to dst, and checksum the plaintext,
// touching each word exactly once. It returns the Internet checksum of
// the plaintext. The keystream must be positioned to match src's first
// byte. len(dst) must be >= len(src).
func FusedCopyChecksumDecrypt(dst, src []byte, ks *scramble.Keystream) uint16 {
	var sum uint64
	n := len(src)
	i := 0
	for ; n-i >= 32; i += 32 {
		w0 := binary.LittleEndian.Uint64(src[i:]) ^ ks.Word64()
		w1 := binary.LittleEndian.Uint64(src[i+8:]) ^ ks.Word64()
		w2 := binary.LittleEndian.Uint64(src[i+16:]) ^ ks.Word64()
		w3 := binary.LittleEndian.Uint64(src[i+24:]) ^ ks.Word64()
		binary.LittleEndian.PutUint64(dst[i:], w0)
		binary.LittleEndian.PutUint64(dst[i+8:], w1)
		binary.LittleEndian.PutUint64(dst[i+16:], w2)
		binary.LittleEndian.PutUint64(dst[i+24:], w3)
		sum = sumWord(sum, w0)
		sum = sumWord(sum, w1)
		sum = sumWord(sum, w2)
		sum = sumWord(sum, w3)
	}
	for ; n-i >= 8; i += 8 {
		w := binary.LittleEndian.Uint64(src[i:]) ^ ks.Word64()
		binary.LittleEndian.PutUint64(dst[i:], w)
		sum = sumWord(sum, w)
	}
	sum = foldLE(sum)
	if i < n {
		ks.XOR(dst[i:n], src[i:n])
		sum = checksum.Accumulate(sum, dst[i:n])
	}
	return ^checksum.Fold(sum)
}

// FusedCopySum copies src into dst and returns the (unfolded,
// uncomplemented) one's-complement partial sum of src in network order.
// Partial sums of fragments that start at even offsets may simply be
// added together and folded once — which is how the ALF receiver
// checksums an ADU incrementally as its fragments arrive out of order,
// fused with the copy into the reassembly buffer (stage one of the
// paper's two-stage receive processing). len(dst) must be >= len(src).
func FusedCopySum(dst, src []byte) uint64 {
	var sum uint64
	n := len(src)
	i := 0
	for ; n-i >= 8; i += 8 {
		w := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], w)
		sum = sumWord(sum, w)
	}
	sum = foldLE(sum)
	if i < n {
		copy(dst[i:], src[i:n])
		sum = checksum.Accumulate(sum, src[i:n])
	}
	return sum
}

// FusedDecryptCopySum decrypts src with the position-addressable
// keystream (key, byte offset off — multiple of 8), stores the
// plaintext into dst, and returns the partial one's-complement sum of
// the plaintext, all in one pass. This is the fully integrated ALF
// stage-one kernel: extraction, decryption, and error-detection
// accumulation fused per fragment, at any fragment offset.
func FusedDecryptCopySum(dst, src []byte, key uint64, off int) uint64 {
	if off%8 != 0 {
		panic("ilp: FusedDecryptCopySum offset must be 8-byte aligned")
	}
	idx := uint64(off / 8)
	var sum uint64
	n := len(src)
	i := 0
	for ; n-i >= 8; i += 8 {
		w := binary.LittleEndian.Uint64(src[i:]) ^ scramble.WordAt(key, idx)
		idx++
		binary.LittleEndian.PutUint64(dst[i:], w)
		sum = sumWord(sum, w)
	}
	sum = foldLE(sum)
	if i < n {
		kw := scramble.WordAt(key, idx)
		for j := i; j < n; j++ {
			dst[j] = src[j] ^ byte(kw)
			kw >>= 8
		}
		sum = checksum.Accumulate(sum, dst[i:n])
	}
	return sum
}

// FusedEncryptCopySum is the sender-side mirror of FusedDecryptCopySum:
// it reads plaintext from src, accumulates the plaintext's partial
// one's-complement sum, and stores the encrypted bytes into dst, in one
// pass. off is the byte offset within the keystream (multiple of 8).
func FusedEncryptCopySum(dst, src []byte, key uint64, off int) uint64 {
	if off%8 != 0 {
		panic("ilp: FusedEncryptCopySum offset must be 8-byte aligned")
	}
	idx := uint64(off / 8)
	var sum uint64
	n := len(src)
	i := 0
	for ; n-i >= 8; i += 8 {
		w := binary.LittleEndian.Uint64(src[i:])
		sum = sumWord(sum, w)
		binary.LittleEndian.PutUint64(dst[i:], w^scramble.WordAt(key, idx))
		idx++
	}
	sum = foldLE(sum)
	if i < n {
		sum = checksum.Accumulate(sum, src[i:n])
		kw := scramble.WordAt(key, idx)
		for j := i; j < n; j++ {
			dst[j] = src[j] ^ byte(kw)
			kw >>= 8
		}
	}
	return sum
}

// FinishSum folds combined partial sums into the final Internet
// checksum value.
func FinishSum(sum uint64) uint16 { return ^checksum.Fold(sum) }

// EncodeBERInt32s encodes vs as a BER SEQUENCE OF INTEGER, appending to
// dst — the plain (unfused) presentation conversion of §4's E3/E5
// experiments. It is equivalent to xcode.BER's KindInt32s encoding.
func EncodeBERInt32s(dst []byte, vs []int32) []byte {
	content := 0
	for _, v := range vs {
		content += xcode.BERIntSize(int64(v))
	}
	dst = xcode.AppendBERHeader(dst, xcode.TagSequence, content)
	for _, v := range vs {
		dst = xcode.AppendBERInt(dst, int64(v))
	}
	return dst
}

// EncodeBERInt32sChecksum encodes vs as BER and computes the Internet
// checksum of the encoded bytes in the same loop, while each element's
// encoding is still in cache — the paper's "converted and checksummed in
// one step" (28 Mb/s -> 24 Mb/s result). It returns the extended buffer
// and the checksum over the appended region.
func EncodeBERInt32sChecksum(dst []byte, vs []int32) ([]byte, uint16) {
	start := len(dst)
	content := 0
	for _, v := range vs {
		content += xcode.BERIntSize(int64(v))
	}
	dst = xcode.AppendBERHeader(dst, xcode.TagSequence, content)
	var sum uint64
	odd := false
	// Checksum the sequence header first.
	sum, odd = accumulateOdd(sum, odd, dst[start:])
	for _, v := range vs {
		before := len(dst)
		dst = xcode.AppendBERInt(dst, int64(v))
		sum, odd = accumulateOdd(sum, odd, dst[before:])
	}
	return dst, ^checksum.Fold(sum)
}

// accumulateOdd extends a one's-complement sum over a byte stream that
// may be split at odd offsets: odd records whether the previous chunk
// ended mid-word.
func accumulateOdd(sum uint64, odd bool, chunk []byte) (uint64, bool) {
	if len(chunk) == 0 {
		return sum, odd
	}
	newOdd := odd != (len(chunk)%2 == 1)
	if odd {
		// The pending high byte was already added as byte<<8; this byte
		// is the low half of that word.
		sum += uint64(chunk[0])
		chunk = chunk[1:]
	}
	sum = checksum.Accumulate(sum, chunk)
	return sum, newOdd
}

// DecodeBERInt32sInto decodes a BER SEQUENCE OF INTEGER into the
// caller's array — presentation conversion fused with the move into
// application address space. It returns the number of integers decoded
// and the bytes consumed.
func DecodeBERInt32sInto(src []byte, out []int32) (int, int, error) {
	tag, length, hdr, err := xcode.ParseBERHeader(src)
	if err != nil {
		return 0, 0, err
	}
	if tag != xcode.TagSequence {
		return 0, 0, xcode.ErrBadTag
	}
	if len(src) < hdr+length {
		return 0, 0, xcode.ErrTruncated
	}
	content := src[hdr : hdr+length]
	n := 0
	for off := 0; off < len(content); {
		v, used, err := xcode.ParseBERInt(content[off:])
		if err != nil {
			return n, 0, err
		}
		if n >= len(out) {
			return n, 0, xcode.ErrOverflow
		}
		out[n] = int32(v)
		n++
		off += used
	}
	return n, hdr + length, nil
}

// VerifyDecodeBERInt32s is the fully integrated receive-side kernel:
// one pass over src that simultaneously (a) accumulates the Internet
// checksum, (b) parses the BER structure, and (c) scatters decoded
// integers into the application's array. It returns the element count,
// bytes consumed, and the checksum over those bytes.
func VerifyDecodeBERInt32s(src []byte, out []int32) (n, used int, ck uint16, err error) {
	tag, length, hdr, err := xcode.ParseBERHeader(src)
	if err != nil {
		return 0, 0, 0, err
	}
	if tag != xcode.TagSequence {
		return 0, 0, 0, xcode.ErrBadTag
	}
	if len(src) < hdr+length {
		return 0, 0, 0, xcode.ErrTruncated
	}
	total := hdr + length
	var sum uint64
	odd := false
	sum, odd = accumulateOdd(sum, odd, src[:hdr])
	content := src[hdr:total]
	for off := 0; off < len(content); {
		v, usedInt, err := xcode.ParseBERInt(content[off:])
		if err != nil {
			return n, 0, 0, err
		}
		if n >= len(out) {
			return n, 0, 0, xcode.ErrOverflow
		}
		out[n] = int32(v)
		n++
		sum, odd = accumulateOdd(sum, odd, content[off:off+usedInt])
		off += usedInt
	}
	return n, total, ^checksum.Fold(sum), nil
}
