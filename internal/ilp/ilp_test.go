package ilp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/checksum"
	"repro/internal/scramble"
	"repro/internal/xcode"
)

func randBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestWordCopy(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 31, 32, 33, 4096, 4097} {
		src := randBytes(n, int64(n))
		dst := make([]byte, n)
		if got := WordCopy(dst, src); got != n {
			t.Errorf("n=%d: copied %d", n, got)
		}
		if !bytes.Equal(dst, src) {
			t.Errorf("n=%d: copy mismatch", n)
		}
	}
}

func TestWordCopyShortDst(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5}
	dst := make([]byte, 3)
	if got := WordCopy(dst, src); got != 3 {
		t.Errorf("copied %d, want 3", got)
	}
	if !bytes.Equal(dst, src[:3]) {
		t.Error("short copy mismatch")
	}
}

func TestFusedCopyChecksumMatchesSeparate(t *testing.T) {
	for _, n := range []int{0, 1, 5, 8, 15, 16, 100, 4096, 4001} {
		src := randBytes(n, int64(n)+7)
		d1 := make([]byte, n)
		d2 := make([]byte, n)
		sep := SeparateCopyThenChecksum(d1, src)
		fus := FusedCopyChecksum(d2, src)
		if sep != fus {
			t.Errorf("n=%d: separate %#04x != fused %#04x", n, sep, fus)
		}
		if !bytes.Equal(d1, d2) || !bytes.Equal(d1, src) {
			t.Errorf("n=%d: copies differ", n)
		}
		if want := checksum.Sum16(src); fus != want {
			t.Errorf("n=%d: fused %#04x != Sum16 %#04x", n, fus, want)
		}
	}
}

func TestFusedCopyChecksumProperty(t *testing.T) {
	f := func(src []byte) bool {
		dst := make([]byte, len(src))
		return FusedCopyChecksum(dst, src) == checksum.Sum16(src) && bytes.Equal(dst, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFusedCopyChecksumDecrypt(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000, 4096} {
		plain := randBytes(n, int64(n)+13)
		cipher := append([]byte(nil), plain...)
		scramble.Apply(42, cipher)

		dst := make([]byte, n)
		ck := FusedCopyChecksumDecrypt(dst, cipher, scramble.NewKeystream(42))
		if !bytes.Equal(dst, plain) {
			t.Errorf("n=%d: decrypt mismatch", n)
		}
		if want := checksum.Sum16(plain); ck != want {
			t.Errorf("n=%d: checksum %#04x, want %#04x (over plaintext)", n, ck, want)
		}
	}
}

func TestEncodeBERInt32sMatchesXcode(t *testing.T) {
	f := func(vs []int32) bool {
		want, err := (xcode.BER{}).EncodeValue(nil, xcode.Int32sValue(vs))
		if err != nil {
			return false
		}
		got := EncodeBERInt32s(nil, vs)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeBERInt32sChecksum(t *testing.T) {
	f := func(vs []int32) bool {
		enc, ck := EncodeBERInt32sChecksum(nil, vs)
		plain := EncodeBERInt32s(nil, vs)
		return bytes.Equal(enc, plain) && ck == checksum.Sum16(enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeBERInt32sChecksumAppends(t *testing.T) {
	prefix := []byte{0xEE}
	enc, ck := EncodeBERInt32sChecksum(append([]byte(nil), prefix...), []int32{1, 2, 3})
	if enc[0] != 0xEE {
		t.Error("prefix clobbered")
	}
	if ck != checksum.Sum16(enc[1:]) {
		t.Error("checksum covers wrong region")
	}
}

func TestDecodeBERInt32sInto(t *testing.T) {
	vs := []int32{0, 1, -1, 1 << 20, -(1 << 20), 127, -128}
	enc := EncodeBERInt32s(nil, vs)
	out := make([]int32, len(vs))
	n, used, err := DecodeBERInt32sInto(enc, out)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(vs) || used != len(enc) {
		t.Fatalf("n=%d used=%d", n, used)
	}
	for i := range vs {
		if out[i] != vs[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], vs[i])
		}
	}
}

func TestDecodeBERInt32sIntoErrors(t *testing.T) {
	enc := EncodeBERInt32s(nil, []int32{1, 2, 3})
	// Output too small.
	if _, _, err := DecodeBERInt32sInto(enc, make([]int32, 2)); err == nil {
		t.Error("short output accepted")
	}
	// Wrong tag.
	bad := append([]byte(nil), enc...)
	bad[0] = 0x04
	if _, _, err := DecodeBERInt32sInto(bad, make([]int32, 3)); err == nil {
		t.Error("wrong tag accepted")
	}
	// Truncated.
	if _, _, err := DecodeBERInt32sInto(enc[:len(enc)-1], make([]int32, 3)); err == nil {
		t.Error("truncated accepted")
	}
}

func TestVerifyDecodeBERInt32s(t *testing.T) {
	f := func(vs []int32) bool {
		enc := EncodeBERInt32s(nil, vs)
		out := make([]int32, len(vs))
		n, used, ck, err := VerifyDecodeBERInt32s(enc, out)
		if err != nil || n != len(vs) || used != len(enc) {
			return false
		}
		if ck != checksum.Sum16(enc) {
			return false
		}
		for i := range vs {
			if out[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFusedPathEqualsLayeredPath(t *testing.T) {
	for k := 1; k <= 5; k++ {
		for _, n := range []int{0, 1, 8, 63, 64, 1000, 4096} {
			src := randBytes(n, int64(k*1000+n))
			fd := make([]byte, n)
			ld := make([]byte, n)
			scratch := make([]byte, n)

			fStages, fck := StandardStages(k, 77)
			FusedPath(fd, src, fStages)

			lStages, lck := StandardStages(k, 77)
			LayeredPath(ld, scratch, src, lStages)

			if !bytes.Equal(fd, ld) {
				t.Fatalf("k=%d n=%d: fused and layered outputs differ", k, n)
			}
			if fck != nil && fck.Sum() != lck.Sum() {
				t.Fatalf("k=%d n=%d: checksum stage disagrees: %#04x vs %#04x",
					k, n, fck.Sum(), lck.Sum())
			}
		}
	}
}

func TestChecksumStageMatchesKernel(t *testing.T) {
	src := randBytes(4096, 5)
	dst := make([]byte, 4096)
	stages := []WordStage{&ChecksumStage{}}
	FusedPath(dst, src, stages)
	if got, want := stages[0].(*ChecksumStage).Sum(), checksum.Sum16(src); got != want {
		t.Errorf("stage sum %#04x, want %#04x", got, want)
	}
}

func TestDecryptStageInverts(t *testing.T) {
	plain := randBytes(512, 6)
	cipher := append([]byte(nil), plain...)
	scramble.Apply(9, cipher)
	dst := make([]byte, len(cipher))
	FusedPath(dst, cipher, []WordStage{NewDecryptStage(9)})
	if !bytes.Equal(dst, plain) {
		t.Error("decrypt stage did not invert scramble.Apply")
	}
}

func TestSwapStageIsInvolution(t *testing.T) {
	src := randBytes(256, 8)
	once := make([]byte, len(src))
	twice := make([]byte, len(src))
	FusedPath(once, src, []WordStage{SwapStage{}})
	FusedPath(twice, once, []WordStage{SwapStage{}})
	if !bytes.Equal(twice, src) {
		t.Error("double byte swap is not identity")
	}
	if bytes.Equal(once, src) {
		t.Error("swap did nothing")
	}
}

func TestLayeredPathZeroStages(t *testing.T) {
	src := randBytes(100, 9)
	dst := make([]byte, 100)
	LayeredPath(dst, make([]byte, 100), src, nil)
	if !bytes.Equal(dst, src) {
		t.Error("zero-stage layered path should copy")
	}
}

func TestStandardStagesDepths(t *testing.T) {
	for k := 1; k <= 5; k++ {
		stages, ck := StandardStages(k, 1)
		if len(stages) != k {
			t.Errorf("k=%d: %d stages", k, len(stages))
		}
		if (k >= 2) != (ck != nil) {
			t.Errorf("k=%d: checksum stage presence wrong", k)
		}
	}
}

func TestAccumulateOddSplits(t *testing.T) {
	// Splitting a buffer at arbitrary (odd) boundaries must give the
	// same checksum as one shot.
	data := randBytes(333, 10)
	want := checksum.Sum16(data)
	for _, cuts := range [][]int{{1}, {3, 7}, {1, 2, 3, 4, 5}, {100, 200, 300}, {333}} {
		var sum uint64
		odd := false
		prev := 0
		for _, c := range cuts {
			sum, odd = accumulateOdd(sum, odd, data[prev:c])
			prev = c
		}
		sum, odd = accumulateOdd(sum, odd, data[prev:])
		_ = odd
		if got := ^checksum.Fold(sum); got != want {
			t.Errorf("cuts %v: %#04x, want %#04x", cuts, got, want)
		}
	}
}

// --- Benchmarks (kernel-level; the paper-table benches live at repo root) ---

func benchBuf(n int) ([]byte, []byte) {
	return randBytes(n, 1), make([]byte, n)
}

func BenchmarkWordCopy4KB(b *testing.B) {
	src, dst := benchBuf(4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WordCopy(dst, src)
	}
}

func BenchmarkSeparateCopyChecksum4KB(b *testing.B) {
	src, dst := benchBuf(4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SeparateCopyThenChecksum(dst, src)
	}
}

func BenchmarkFusedCopyChecksum4KB(b *testing.B) {
	src, dst := benchBuf(4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FusedCopyChecksum(dst, src)
	}
}

func BenchmarkFusedCopyChecksumDecrypt4KB(b *testing.B) {
	src, dst := benchBuf(4096)
	ks := scramble.NewKeystream(1)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FusedCopyChecksumDecrypt(dst, src, ks)
	}
}

func TestFusedCopySumFragments(t *testing.T) {
	// Accumulating per-fragment partial sums at even offsets and folding
	// once must equal the whole-buffer checksum.
	data := randBytes(4001, 21)
	want := checksum.Sum16(data)
	dst := make([]byte, len(data))
	bounds := []int{0, 8, 1000, 2048, 4001} // all even starts
	var sum uint64
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		sum += FusedCopySum(dst[lo:hi], data[lo:hi])
	}
	if got := FinishSum(sum); got != want {
		t.Errorf("fragmented sum %#04x, want %#04x", got, want)
	}
	if !bytes.Equal(dst, data) {
		t.Error("fragmented copy mismatch")
	}
}

func TestFusedDecryptCopySum(t *testing.T) {
	const key = 1234
	plain := randBytes(3333, 22)
	cipher := append([]byte(nil), plain...)
	scramble.XORAt(key, 0, cipher)

	dst := make([]byte, len(plain))
	// Fragments arrive out of order at 8-aligned offsets.
	bounds := []int{0, 800, 1600, 2400, 3333}
	var sum uint64
	for _, i := range []int{2, 0, 3, 1} {
		lo, hi := bounds[i], bounds[i+1]
		sum += FusedDecryptCopySum(dst[lo:hi], cipher[lo:hi], key, lo)
	}
	if !bytes.Equal(dst, plain) {
		t.Error("out-of-order fused decrypt mismatch")
	}
	if got, want := FinishSum(sum), checksum.Sum16(plain); got != want {
		t.Errorf("plaintext sum %#04x, want %#04x", got, want)
	}
}

func TestFusedDecryptCopySumUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on unaligned offset")
		}
	}()
	FusedDecryptCopySum(make([]byte, 8), make([]byte, 8), 1, 4)
}
