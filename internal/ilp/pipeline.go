package ilp

import (
	"encoding/binary"

	"repro/internal/checksum"
	"repro/internal/scramble"
)

// A WordStage is one data-manipulation step expressed at word
// granularity: it receives each 64-bit word of the data (little-endian
// memory order) and returns the transformed word. Stages may keep state
// (checksums accumulate, keystreams advance). Reset prepares the stage
// for a fresh buffer.
//
// Expressing manipulations this way is what the paper means by an
// ILP-compatible architecture: because each stage is defined per data
// word with no inter-word ordering constraints, an implementor is free
// to run all stages inside one loop (FusedPath) or one stage per pass
// (LayeredPath) — the results are identical.
type WordStage interface {
	// Word transforms one 64-bit word.
	Word(w uint64) uint64
	// Tail transforms the final 0..7 bytes in place.
	Tail(b []byte)
	// Reset clears per-buffer state.
	Reset()
}

// IdentityStage models a pure copy step (a layer that moves data without
// transforming it, e.g. the kernel/user boundary crossing).
type IdentityStage struct{}

// Word implements WordStage.
func (IdentityStage) Word(w uint64) uint64 { return w }

// Tail implements WordStage.
func (IdentityStage) Tail([]byte) {}

// Reset implements WordStage.
func (IdentityStage) Reset() {}

// ChecksumStage accumulates the Internet checksum of the words passing
// through it without modifying them (the transport error-detection
// pass). The word loop accumulates in byte-swapped lane order (see
// sumWord); the conversion to network order happens once, at Tail or
// Sum.
type ChecksumStage struct {
	sum    uint64
	tailed bool
}

// Word implements WordStage.
func (s *ChecksumStage) Word(w uint64) uint64 {
	s.sum = sumWord(s.sum, w)
	return w
}

// Tail implements WordStage.
func (s *ChecksumStage) Tail(b []byte) {
	s.sum = checksum.Accumulate(foldLE(s.sum), b)
	s.tailed = true
}

// Reset implements WordStage.
func (s *ChecksumStage) Reset() { s.sum = 0; s.tailed = false }

// Sum returns the Internet checksum of everything seen since Reset.
func (s *ChecksumStage) Sum() uint16 {
	if s.tailed {
		return ^checksum.Fold(s.sum)
	}
	return ^checksum.Fold(foldLE(s.sum))
}

// DecryptStage XORs the session keystream through the data (the
// encryption layer's pass).
type DecryptStage struct {
	Key uint64
	ks  *scramble.Keystream
}

// NewDecryptStage returns a decrypt stage for key.
func NewDecryptStage(key uint64) *DecryptStage {
	return &DecryptStage{Key: key, ks: scramble.NewKeystream(key)}
}

// Word implements WordStage.
func (s *DecryptStage) Word(w uint64) uint64 { return w ^ s.ks.Word64() }

// Tail implements WordStage.
func (s *DecryptStage) Tail(b []byte) { s.ks.XOR(b, b) }

// Reset implements WordStage.
func (s *DecryptStage) Reset() { s.ks.Reset(s.Key) }

// SwapStage byte-swaps each 32-bit half of the word — the shape of a
// presentation step that converts between byte orders (the cheap core
// of XDR-style conversion).
type SwapStage struct{}

// Word implements WordStage.
func (SwapStage) Word(w uint64) uint64 {
	const mA = 0x00ff00ff00ff00ff
	// bswap32 on both halves: rotate bytes via masks.
	w = (w&mA)<<8 | (w>>8)&mA
	w = (w&0x0000ffff0000ffff)<<16 | (w>>16)&0x0000ffff0000ffff
	return w
}

// Tail implements WordStage: partial words are left unswapped (a real
// converter would pad; for pipeline measurement the tail is <8 bytes).
func (SwapStage) Tail([]byte) {}

// Reset implements WordStage.
func (SwapStage) Reset() {}

// FusedPath runs every stage over each word inside a single pass from
// src to dst: one load and one store per word regardless of stage
// count. len(dst) must be >= len(src).
func FusedPath(dst, src []byte, stages []WordStage) {
	for _, s := range stages {
		s.Reset()
	}
	n := len(src)
	i := 0
	for ; n-i >= 8; i += 8 {
		w := binary.LittleEndian.Uint64(src[i:])
		for _, s := range stages {
			w = s.Word(w)
		}
		binary.LittleEndian.PutUint64(dst[i:], w)
	}
	if i < n {
		copy(dst[i:n], src[i:n])
		for _, s := range stages {
			s.Tail(dst[i:n])
		}
	}
}

// LayeredPath runs one full memory pass per stage, bouncing between dst
// and a scratch buffer, the way a strictly layered implementation
// processes a packet (each layer reads the data from memory and writes
// it back). The final result always lands in dst. scratch must be at
// least len(src) bytes; len(dst) likewise.
func LayeredPath(dst, scratch, src []byte, stages []WordStage) {
	for _, s := range stages {
		s.Reset()
	}
	n := len(src)
	// Arrange buffers so the last pass writes dst.
	cur := src
	bufs := [2][]byte{dst[:n], scratch[:n]}
	// If the stage count is even, the first write must go to scratch.
	sel := 0
	if len(stages)%2 == 0 {
		sel = 1
	}
	if len(stages) == 0 {
		WordCopy(dst, src)
		return
	}
	for _, s := range stages {
		out := bufs[sel]
		sel ^= 1
		i := 0
		for ; n-i >= 8; i += 8 {
			w := binary.LittleEndian.Uint64(cur[i:])
			binary.LittleEndian.PutUint64(out[i:], s.Word(w))
		}
		if i < n {
			copy(out[i:], cur[i:n])
			s.Tail(out[i:n])
		}
		cur = out
	}
}

// StandardStages builds the canonical receive-path stage list of depth
// k, in the order the layers appear on receive:
//
//	k=1: copy (net buffer -> host memory)
//	k=2: + transport checksum
//	k=3: + session decryption
//	k=4: + presentation byte-order conversion
//	k=5: + application-space move (second copy)
//
// The returned checksum stage (nil when k < 2) lets callers read the
// verification result.
func StandardStages(k int, key uint64) ([]WordStage, *ChecksumStage) {
	var stages []WordStage
	var ck *ChecksumStage
	if k >= 1 {
		stages = append(stages, IdentityStage{})
	}
	if k >= 2 {
		ck = &ChecksumStage{}
		stages = append(stages, ck)
	}
	if k >= 3 {
		stages = append(stages, NewDecryptStage(key))
	}
	if k >= 4 {
		stages = append(stages, SwapStage{})
	}
	if k >= 5 {
		stages = append(stages, IdentityStage{})
	}
	return stages, ck
}
