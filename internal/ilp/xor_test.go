package ilp

import (
	"bytes"
	"math/rand"
	"testing"
)

// xorNaive is the byte-at-a-time reference loop that XORWords replaces
// (formerly inline in the sender's FEC accumulation and the receiver's
// repair path).
func xorNaive(dst, src []byte) int {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
	return n
}

func TestXORWordsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Cover the unrolled body, the single-word loop, and every tail
	// length, plus mismatched dst/src lengths.
	sizes := []int{0, 1, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 100, 1024, 1031}
	for _, n := range sizes {
		src := make([]byte, n)
		rng.Read(src)
		base := make([]byte, n)
		rng.Read(base)

		want := append([]byte(nil), base...)
		got := append([]byte(nil), base...)
		if w, g := xorNaive(want, src), XORWords(got, src); w != g {
			t.Fatalf("n=%d: count %d, want %d", n, g, w)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("n=%d: XORWords diverges from naive loop", n)
		}

		// Short dst: only len(dst) bytes may be touched.
		if n >= 2 {
			shortWant := append([]byte(nil), base[:n-1]...)
			shortGot := append([]byte(nil), base[:n-1]...)
			xorNaive(shortWant, src)
			if c := XORWords(shortGot, src); c != n-1 {
				t.Fatalf("n=%d short dst: count %d, want %d", n, c, n-1)
			}
			if !bytes.Equal(shortGot, shortWant) {
				t.Errorf("n=%d: short-dst XORWords diverges", n)
			}
		}
	}
}

func TestXORWordsSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := make([]byte, 777)
	rng.Read(a)
	orig := append([]byte(nil), a...)
	mask := make([]byte, 777)
	rng.Read(mask)
	XORWords(a, mask)
	XORWords(a, mask)
	if !bytes.Equal(a, orig) {
		t.Error("XOR twice with the same mask did not restore the input")
	}
}

func BenchmarkXORWords(b *testing.B) {
	dst := make([]byte, 1024)
	src := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XORWords(dst, src)
	}
}

// BenchmarkXORNaive keeps the byte-loop baseline in the bench suite so
// the word-wise speedup stays visible in the trajectory.
func BenchmarkXORNaive(b *testing.B) {
	dst := make([]byte, 1024)
	src := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		xorNaive(dst, src)
	}
}
