// Package layered assembles a complete end-system protocol stack in the
// naive layered engineering style the paper critiques (§6): every layer
// is a separate module that makes its own full pass over the data.
//
// The stack mirrors the TCP + ISODE configuration of the paper's §4
// macro-experiment:
//
//	application   value in local syntax
//	presentation  xcode codec: encode/decode (full pass, resizes data)
//	session       record framing + optional record encryption (full pass)
//	transport     otp: ordered byte stream, checksum, retransmission
//	network       netsim link underneath
//
// On receive the passes run in reverse. Nothing is fused; each layer
// reads its input from memory and writes its output back — exactly the
// ordering constraints ILP removes. Compare with the ALF path
// (internal/core + internal/ilp), which crosses the same logical layers
// in one or two integrated loops.
package layered

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/otp"
	"repro/internal/scramble"
	"repro/internal/xcode"
)

// recordHeader is the session-layer record mark: a 4-byte length.
const recordHeader = 4

// ErrRecordTooLarge guards the record reassembly buffer.
var ErrRecordTooLarge = errors.New("layered: record exceeds MaxRecord")

// DefaultMaxRecord bounds one session record.
const DefaultMaxRecord = 16 << 20

// Stack is one end of the layered stack bound to an OTP connection.
// Create both ends with New, then exchange values with SendValue and
// the OnValue callback.
type Stack struct {
	conn  *otp.Conn
	codec xcode.Codec
	key   uint64
	// MaxRecord bounds incoming records (default DefaultMaxRecord).
	MaxRecord int

	// OnValue receives each decoded application value, in order.
	OnValue func(xcode.Value)
	// OnError receives decode failures (the stream position cannot be
	// resynchronized after one; subsequent records still parse because
	// framing is independent of content).
	OnError func(error)

	// Session receive state.
	rbuf    []byte
	sendSeq uint64 // record numbers, for per-record encryption
	recvSeq uint64

	Stats Stats
}

// Stats counts stack-level events.
type Stats struct {
	ValuesSent     int64
	BytesEncoded   int64 // presentation output bytes (send side)
	ValuesReceived int64
	DecodeErrors   int64
	RecordsTooBig  int64
}

// New binds a stack to conn using the given presentation codec.
// key != 0 enables session-layer record encryption. The stack installs
// itself as conn.OnData.
func New(conn *otp.Conn, codec xcode.Codec, key uint64) *Stack {
	s := &Stack{conn: conn, codec: codec, key: key, MaxRecord: DefaultMaxRecord}
	conn.OnData = s.onData
	return s
}

// Conn returns the underlying transport connection.
func (s *Stack) Conn() *otp.Conn { return s.conn }

// Codec returns the presentation codec in use.
func (s *Stack) Codec() xcode.Codec { return s.codec }

// SendValue pushes one application value down the stack:
// presentation encode (pass 1), session encrypt (pass 2), record
// framing copy (pass 3), then the transport's own buffering and
// checksum passes inside otp.
func (s *Stack) SendValue(v xcode.Value) error {
	// Presentation layer: full encoding pass, output resized.
	enc, err := s.codec.EncodeValue(nil, v)
	if err != nil {
		return fmt.Errorf("layered: presentation: %w", err)
	}
	s.Stats.BytesEncoded += int64(len(enc))

	// Session layer: separate encryption pass over the record.
	if s.key != 0 {
		scramble.XORAt(s.key^s.sendSeq, 0, enc)
	}
	s.sendSeq++

	// Record framing: another buffer, another copy.
	rec := make([]byte, recordHeader+len(enc))
	binary.BigEndian.PutUint32(rec, uint32(len(enc)))
	copy(rec[recordHeader:], enc)

	// Transport: otp copies into its send buffer and checksums each
	// segment as it goes out.
	if err := s.conn.Send(rec); err != nil {
		return fmt.Errorf("layered: transport: %w", err)
	}
	s.Stats.ValuesSent++
	return nil
}

// onData is the session layer's receive side: accumulate the byte
// stream (copy), carve records, decrypt each (pass), and hand the
// result up to presentation decode (pass).
func (s *Stack) onData(data []byte) {
	// The byte stream has no alignment with records: buffer first.
	s.rbuf = append(s.rbuf, data...)
	for {
		if len(s.rbuf) < recordHeader {
			return
		}
		n := int(binary.BigEndian.Uint32(s.rbuf))
		max := s.MaxRecord
		if max == 0 {
			max = DefaultMaxRecord
		}
		if n > max {
			// Unrecoverable framing state; drop the buffer.
			s.Stats.RecordsTooBig++
			s.rbuf = nil
			if s.OnError != nil {
				s.OnError(fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, n))
			}
			return
		}
		if len(s.rbuf) < recordHeader+n {
			return
		}
		rec := make([]byte, n)
		copy(rec, s.rbuf[recordHeader:recordHeader+n])
		s.rbuf = s.rbuf[recordHeader+n:]

		// Session decryption: full pass.
		if s.key != 0 {
			scramble.XORAt(s.key^s.recvSeq, 0, rec)
		}
		s.recvSeq++

		// Presentation decode: full pass, allocates the application
		// representation (the "move into application address space").
		v, used, err := s.codec.DecodeValue(rec)
		if err != nil || used != n {
			if err == nil {
				err = fmt.Errorf("layered: record had %d trailing bytes", n-used)
			}
			s.Stats.DecodeErrors++
			if s.OnError != nil {
				s.OnError(err)
			}
			continue
		}
		s.Stats.ValuesReceived++
		if s.OnValue != nil {
			s.OnValue(v)
		}
	}
}
