package layered

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/otp"
	"repro/internal/sim"
	"repro/internal/xcode"
)

type rig struct {
	sched *sim.Scheduler
	snd   *Stack
	rcv   *Stack
	got   []xcode.Value
	errs  []error
}

func newRig(t *testing.T, linkCfg netsim.LinkConfig, codec xcode.Codec, key uint64, seed int64) *rig {
	t.Helper()
	s := sim.NewScheduler()
	n := netsim.New(s, seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, linkCfg)

	ca := otp.New(s, ab.Send, otp.Config{})
	cb := otp.New(s, ba.Send, otp.Config{})
	a.SetHandler(func(p *netsim.Packet) { ca.HandleSegment(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { cb.HandleSegment(p.Payload) })

	r := &rig{sched: s}
	r.snd = New(ca, codec, key)
	r.rcv = New(cb, codec, key)
	r.rcv.OnValue = func(v xcode.Value) { r.got = append(r.got, v) }
	r.rcv.OnError = func(err error) { r.errs = append(r.errs, err) }
	return r
}

func ints(n int) []int32 {
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(i*2654435761 + 12345)
	}
	return vs
}

func TestValueRoundtripAllCodecs(t *testing.T) {
	for _, c := range xcode.Codecs() {
		r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, c, 0, 1)
		want := []xcode.Value{
			xcode.BytesValue(bytes.Repeat([]byte{7}, 5000)),
			xcode.Int32sValue(ints(1000)),
			xcode.StringValue("layered stack"),
			xcode.Int32Value(-42),
		}
		for _, v := range want {
			if err := r.snd.SendValue(v); err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
		}
		r.sched.Run()
		if len(r.errs) != 0 {
			t.Fatalf("%s: errors %v", c.Name(), r.errs)
		}
		if len(r.got) != len(want) {
			t.Fatalf("%s: received %d of %d", c.Name(), len(r.got), len(want))
		}
		for i := range want {
			if !r.got[i].Equal(want[i]) {
				t.Errorf("%s value %d mismatch", c.Name(), i)
			}
		}
	}
}

func TestEncryptedSession(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, xcode.BER{}, 0xFEED, 1)
	want := xcode.Int32sValue(ints(500))
	r.snd.SendValue(want)
	r.snd.SendValue(xcode.StringValue("second record"))
	r.sched.Run()
	if len(r.got) != 2 || !r.got[0].Equal(want) {
		t.Fatalf("encrypted session failed: %d values", len(r.got))
	}
	if r.got[1].Str != "second record" {
		t.Error("second record wrong (per-record keystream misaligned?)")
	}
}

func TestOrderPreservedUnderLoss(t *testing.T) {
	// The layered stack inherits otp's strict ordering: values arrive
	// in send order even on a lossy link.
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.05},
		xcode.XDR{}, 0, 3)
	const n = 100
	for i := 0; i < n; i++ {
		r.snd.SendValue(xcode.Int32Value(int32(i)))
	}
	r.sched.Run()
	if len(r.got) != n {
		t.Fatalf("received %d of %d", len(r.got), n)
	}
	for i, v := range r.got {
		if v.I64 != int64(i) {
			t.Fatalf("order violated at %d: %d", i, v.I64)
		}
	}
}

func TestRecordsSpanSegments(t *testing.T) {
	// A 50 KB record crosses many MSS-sized segments and must
	// reassemble exactly.
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, xcode.Raw{}, 0, 1)
	data := bytes.Repeat([]byte{0xA5}, 50_000)
	r.snd.SendValue(xcode.BytesValue(data))
	r.sched.Run()
	if len(r.got) != 1 || !bytes.Equal(r.got[0].Bytes, data) {
		t.Fatal("large record corrupted")
	}
}

func TestManySmallRecordsCoalesced(t *testing.T) {
	// Many small records pack into single segments; the record layer
	// must carve them back apart.
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, xcode.BER{}, 0, 1)
	const n = 500
	for i := 0; i < n; i++ {
		r.snd.SendValue(xcode.Int32Value(int32(i)))
	}
	r.sched.Run()
	if len(r.got) != n {
		t.Fatalf("received %d of %d", len(r.got), n)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, xcode.Raw{}, 0, 1)
	r.rcv.MaxRecord = 100
	r.snd.SendValue(xcode.BytesValue(make([]byte, 200)))
	r.sched.Run()
	if r.rcv.Stats.RecordsTooBig != 1 {
		t.Errorf("RecordsTooBig = %d", r.rcv.Stats.RecordsTooBig)
	}
	if len(r.errs) == 0 {
		t.Error("no error surfaced")
	}
}

func TestStatsAndAccessors(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, xcode.BER{}, 0, 1)
	r.snd.SendValue(xcode.Int32sValue(ints(100)))
	r.sched.Run()
	if r.snd.Stats.ValuesSent != 1 || r.snd.Stats.BytesEncoded == 0 {
		t.Errorf("send stats: %+v", r.snd.Stats)
	}
	if r.rcv.Stats.ValuesReceived != 1 {
		t.Errorf("recv stats: %+v", r.rcv.Stats)
	}
	if r.snd.Codec().Name() != "ber" || r.snd.Conn() == nil {
		t.Error("accessors wrong")
	}
}

func TestDecodeErrorDoesNotKillStream(t *testing.T) {
	// Corrupt one record at the presentation level (valid framing,
	// invalid BER): the next record must still decode.
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{Delay: time.Millisecond})
	ca := otp.New(s, ab.Send, otp.Config{})
	cb := otp.New(s, ba.Send, otp.Config{})
	a.SetHandler(func(p *netsim.Packet) { ca.HandleSegment(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { cb.HandleSegment(p.Payload) })

	rcv := New(cb, xcode.BER{}, 0)
	var got []xcode.Value
	var errs []error
	rcv.OnValue = func(v xcode.Value) { got = append(got, v) }
	rcv.OnError = func(err error) { errs = append(errs, err) }

	// Hand-built records: one garbage, one valid.
	bad := []byte{0, 0, 0, 3, 0xFF, 0xFF, 0xFF}
	good, _ := (xcode.BER{}).EncodeValue(nil, xcode.Int32Value(7))
	rec := make([]byte, 4+len(good))
	rec[3] = byte(len(good))
	copy(rec[4:], good)
	ca.Send(bad)
	ca.Send(rec)
	s.Run()

	if len(errs) != 1 {
		t.Fatalf("errors = %v", errs)
	}
	if len(got) != 1 || got[0].I64 != 7 {
		t.Fatalf("good record lost after decode error: %v", got)
	}
}
