package metrics

import (
	"testing"
	"time"
)

// BenchmarkCounterIncDisabled measures the cost a component pays per
// counter event when it was built against a nil (disabled) registry:
// one nil-check branch. The acceptance bar is <10 ns; this is
// sub-nanosecond on any modern host.
func BenchmarkCounterIncDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("core.send.fragments")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterInc measures a live atomic counter increment.
func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("core.send.fragments")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserveDisabled is the disabled-path histogram
// cost (nil receiver).
func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("core.recv.adu_latency_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(time.Duration(i))
	}
}

// BenchmarkHistogramObserve measures a live histogram observation:
// count, sum, bucket, min and max updates.
func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("core.recv.adu_latency_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkSnapshot measures capturing a registry of realistic size
// (64 series): this is off the hot path, but alfstat calls it.
func BenchmarkSnapshot(b *testing.B) {
	r := New()
	for i := 0; i < 32; i++ {
		r.Counter("bench.counter", "i="+string(rune('a'+i))).Add(int64(i))
	}
	for i := 0; i < 16; i++ {
		r.Gauge("bench.gauge", "i="+string(rune('a'+i))).Set(int64(i))
	}
	for i := 0; i < 16; i++ {
		r.Histogram("bench.hist_ns", "i="+string(rune('a'+i))).Observe(int64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if snap := r.Snapshot(); len(snap.Metrics) != 64 {
			b.Fatalf("snapshot has %d series", len(snap.Metrics))
		}
	}
}
