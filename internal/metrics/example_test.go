package metrics_test

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Example shows the full register → observe → snapshot cycle: native
// instruments for new measurements, a func-backed series bridging an
// existing stats struct, and a point-in-time snapshot read.
func Example() {
	reg := metrics.New()

	// Native instruments: atomic, safe for concurrent observers.
	frags := reg.Counter("core.send.fragments", "stream=1")
	depth := reg.Gauge("netsim.link.queue_depth", "link=a->b/0")
	lat := reg.Histogram("core.recv.adu_latency_ns", "stream=1")

	frags.Add(3)
	depth.Set(2)
	lat.ObserveDuration(4 * time.Millisecond)
	lat.ObserveDuration(6 * time.Millisecond)

	// A func-backed series bridges existing state (a Stats field, a
	// queue length) into the registry; it is sampled at snapshot time.
	legacy := struct{ Resends int64 }{Resends: 7}
	reg.CounterFunc("core.send.resent_adus", func() int64 { return legacy.Resends }, "stream=1")

	snap := reg.Snapshot()
	fmt.Println("fragments =", snap.Value("core.send.fragments", "stream=1"))
	fmt.Println("resends   =", snap.Value("core.send.resent_adus", "stream=1"))
	m, _ := snap.Get("core.recv.adu_latency_ns", "stream=1")
	fmt.Printf("latency   = n=%d mean=%s\n", m.Hist.Count, time.Duration(int64(m.Hist.Mean())))
	// Output:
	// fragments = 3
	// resends   = 7
	// latency   = n=2 mean=5ms
}

// ExampleHistogram_Observe shows log-bucketed size accounting: buckets
// double in width, so four ADU sizes land in three buckets.
func ExampleHistogram_Observe() {
	reg := metrics.New()
	sizes := reg.Histogram("core.send.adu_bytes")
	for _, n := range []int64{100, 120, 300, 5000} {
		sizes.Observe(n)
	}
	m, _ := reg.Snapshot().Get("core.send.adu_bytes")
	for _, b := range m.Hist.Buckets {
		fmt.Printf("[%d,%d] %d\n", b.Lo, b.Hi, b.Count)
	}
	// Output:
	// [64,127] 2
	// [256,511] 1
	// [4096,8191] 1
}
