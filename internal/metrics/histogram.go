package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers the full non-negative int64 range in powers of
// two: bucket 0 holds values <= 0, bucket i (1..63) holds values in
// [2^(i-1), 2^i - 1], with the top bucket capped at MaxInt64.
const numBuckets = 64

// NumBuckets is the fixed bucket count of every Histogram, exported
// for callers (the telemetry recorder) that diff raw bucket counts
// between sampling ticks without allocating.
const NumBuckets = numBuckets

// BucketUpper returns the inclusive upper bound of bucket i, the value
// a quantile estimate reports for observations landing in that bucket.
// Out-of-range i returns 0.
func BucketUpper(i int) int64 {
	if i < 0 || i >= numBuckets {
		return 0
	}
	_, hi := bucketBounds(i)
	return hi
}

// Histogram is a fixed-size log2-bucketed histogram of int64
// observations — latencies in nanoseconds, ADU and segment sizes in
// bytes. Log bucketing gives ~2x relative resolution over 18 decimal
// orders of magnitude in 65 atomic slots, with no configuration and no
// allocation per observation. All methods are no-ops on a nil
// receiver; observation is safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketBounds returns the inclusive [lo, hi] value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return math.MinInt64, 0
	}
	lo = int64(1) << (i - 1)
	if i == 63 {
		return lo, math.MaxInt64
	}
	return lo, int64(1)<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds. Callers in the
// simulation derive d from the virtual clock, keeping snapshots
// deterministic.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ReadCounts copies the raw per-bucket counts into dst and returns the
// total observation count, without allocating. It is the sampling-tick
// read path for the telemetry recorder, which diffs successive reads
// to get interval (not cumulative) distributions. A nil receiver
// zeroes dst and returns 0. As with snapshot, concurrent observers may
// land between loads; reads are exact once writers quiesce.
func (h *Histogram) ReadCounts(dst *[NumBuckets]int64) (count int64) {
	if h == nil {
		*dst = [NumBuckets]int64{}
		return 0
	}
	for i := range h.buckets {
		dst[i] = h.buckets[i].Load()
	}
	return h.count.Load()
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snapshot captures the histogram's current state. Concurrent
// observers may land between field loads; the capture is internally
// plausible (count matches bucket totals read) once writers quiesce,
// which is the snapshot contract the simulation needs.
func (h *Histogram) snapshot() *HistogramValue {
	hv := &HistogramValue{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if hv.Count > 0 {
		hv.Min = h.min.Load()
		hv.Max = h.max.Load()
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			lo, hi := bucketBounds(i)
			hv.Buckets = append(hv.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return hv
}

// Bucket is one populated histogram bucket; the value range [Lo, Hi]
// is inclusive.
type Bucket struct {
	Lo, Hi int64
	Count  int64
}

// HistogramValue is the immutable state of a histogram inside a
// Snapshot.
type HistogramValue struct {
	Count, Sum int64
	Min, Max   int64
	Buckets    []Bucket // populated buckets only, ascending
}

// Mean returns the arithmetic mean of the observations, or 0 when
// empty.
func (hv *HistogramValue) Mean() float64 {
	if hv.Count == 0 {
		return 0
	}
	return float64(hv.Sum) / float64(hv.Count)
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1): the
// upper bound of the bucket containing the q-th ranked observation,
// clamped to the observed min/max. Within-bucket error is bounded by
// the 2x bucket width.
//
// The exact contract, which the flight recorder's interval-quantile
// series depends on:
//
//   - An empty histogram returns 0 for every q.
//   - The rank is ceil(q*Count) clamped to at least 1, so q=0 (and any
//     q small enough to round to rank 0) reports the bucket of the
//     smallest observation — its upper bound, clamped to Max, NOT Min:
//     the estimate is an upper bound even at q=0.
//   - q=1 ranks the largest observation, and because the estimate is
//     clamped to Max from above, Quantile(1) == Max exactly.
//   - When all observations share one bucket, every q returns the same
//     value: the bucket's upper bound clamped into [Min, Max] (equal to
//     Max whenever the bucket bound exceeds it).
//   - There is no within-bucket interpolation: the estimate never
//     understates the true quantile, and never overstates it by more
//     than the bucket width (a factor of 2 at the ranked value).
func (hv *HistogramValue) Quantile(q float64) int64 {
	if hv.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(hv.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range hv.Buckets {
		cum += b.Count
		if cum >= rank {
			hi := b.Hi
			if hi > hv.Max {
				hi = hv.Max
			}
			if hi < hv.Min {
				hi = hv.Min
			}
			return hi
		}
	}
	return hv.Max
}
