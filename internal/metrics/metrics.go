// Package metrics is the unified observability substrate for the whole
// repository: a registry of named, labeled series — atomic counters,
// gauges, and log-bucketed histograms — with point-in-time snapshots
// and a plain-text table exposition.
//
// The paper's central quantitative claim (§4) is that per-packet
// *control* costs tens of instructions while *data manipulation* costs
// cycles per byte. Seeing that split in a live run requires counting
// both kinds of work in one place, across layers: fragments and NACKs
// in core, segments and retransmits in otp, drops and queue depths in
// netsim, bytes touched per fused pass in ilp/experiments. Every layer
// registers its series here, and cmd/alfstat renders the whole tree.
//
// # Determinism
//
// The registry never reads the wall clock. Latency-shaped histograms
// are fed durations computed by the caller from the sim.Scheduler's
// virtual clock, so a seeded run produces byte-identical snapshots.
//
// # Cost when disabled
//
// Every method is safe on a nil receiver and every Registry
// constructor is safe on a nil *Registry (returning nil instruments).
// A component wired to a nil registry therefore pays one predictable
// nil-check branch per event — under a nanosecond, versus the <10 ns
// budget — and allocates nothing. Components keep their series
// pointers; there is no map lookup on any hot path.
//
// # Two kinds of series
//
// Native instruments (Counter, Gauge, Histogram) are atomic and safe
// for concurrent use. Func-backed series (CounterFunc, GaugeFunc)
// adapt existing state — the per-component Stats structs — into the
// registry without double bookkeeping: the struct field remains the
// single source of truth and is read only at Snapshot time. Func
// series are sampled without synchronization, so they are intended for
// the single-goroutine simulation world; native instruments are the
// right choice wherever goroutines share a series.
package metrics

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the series types in a Snapshot.
type Kind uint8

// Series kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the kind name as it appears in the text exposition.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n should be non-negative; counters are monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value that may go up or down. The
// zero value is ready to use; all methods are no-ops on a nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// series is one registered (name, labels) entry.
type series struct {
	id     string // registry key: name plus sorted labels
	name   string
	labels []string // sorted "key=value" pairs
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64 // func-backed counter/gauge; nil for native
}

// Registry holds a set of named, labeled series. A nil *Registry is a
// valid no-op registry: constructors return nil instruments and
// Snapshot returns an empty snapshot. Methods are safe for concurrent
// use.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series

	// ordered caches the series sorted by ID for Visit. It is rebuilt
	// lazily and invalidated by registration, so the steady state —
	// register everything up front, then sample every tick — sorts
	// once, not once per tick.
	ordered []*series

	// Scoped views (Scope): root points at the registry that owns mu
	// and series; scope is appended to every registration's labels.
	root  *Registry
	scope []string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// base returns the registry that owns the series map: r itself, or the
// root when r is a scoped view.
func (r *Registry) base() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

// Scope returns a view of the registry that appends the given
// "key=value" labels to every series registered through it. The view
// shares the root's series map — Snapshot on any view sees the whole
// tree — so N components wired with Scope("shard=0"), Scope("shard=1"),
// ... register N distinct series per name instead of colliding on one.
// Scoping a scoped view accumulates labels. Returns nil on a nil
// registry, preserving the nil-is-disabled contract downstream.
func (r *Registry) Scope(labels ...string) *Registry {
	if r == nil || len(labels) == 0 {
		return r
	}
	scope := make([]string, 0, len(r.scope)+len(labels))
	scope = append(scope, r.scope...)
	scope = append(scope, labels...)
	return &Registry{root: r.base(), scope: scope}
}

// scoped returns labels extended with the view's scope labels (labels
// itself when unscoped; never aliases the caller's backing array
// otherwise).
func (r *Registry) scoped(labels []string) []string {
	if len(r.scope) == 0 {
		return labels
	}
	out := make([]string, 0, len(labels)+len(r.scope))
	out = append(out, labels...)
	out = append(out, r.scope...)
	return out
}

// key builds the identity of a series: name plus sorted labels. It
// returns the canonical sorted label slice alongside.
func key(name string, labels []string) (string, []string) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]string(nil), labels...)
	sort.Strings(ls)
	return name + "{" + strings.Join(ls, ",") + "}", ls
}

// register finds or creates the series for (name, labels). make is
// called (under the lock) only when the series does not exist.
func (r *Registry) register(name string, labels []string, make func(ls []string) *series) *series {
	k, ls := key(name, r.scoped(labels))
	b := r.base()
	b.mu.Lock()
	defer b.mu.Unlock()
	if s, ok := b.series[k]; ok {
		return s
	}
	s := make(ls)
	s.id = k
	b.series[k] = s
	b.ordered = nil
	return s
}

// Counter returns the counter registered under name and labels,
// creating it on first use. Labels are "key=value" strings; their
// order is irrelevant to the series identity. Returns nil (a valid
// no-op counter) on a nil registry, or when the name is already
// registered as a different kind.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.register(name, labels, func(ls []string) *series {
		return &series{name: name, labels: ls, kind: KindCounter, counter: &Counter{}}
	})
	return s.counter
}

// Gauge returns the gauge registered under name and labels, creating
// it on first use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.register(name, labels, func(ls []string) *series {
		return &series{name: name, labels: ls, kind: KindGauge, gauge: &Gauge{}}
	})
	return s.gauge
}

// Histogram returns the log-bucketed histogram registered under name
// and labels, creating it on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.register(name, labels, func(ls []string) *series {
		return &series{name: name, labels: ls, kind: KindHistogram, hist: newHistogram()}
	})
	return s.hist
}

// CounterFunc registers a counter whose value is produced by fn at
// snapshot time. This is the bridge for pre-existing Stats structs:
// the struct field stays the single source of truth and the registry
// samples it, so the "view" can never drift from the counter. fn is
// called without synchronization — the caller must ensure the
// underlying value is not being written concurrently with Snapshot
// (true by construction in the single-goroutine simulation).
// Re-registering the same (name, labels) replaces the function.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...string) {
	r.registerFunc(name, KindCounter, fn, labels)
}

// GaugeFunc registers a gauge whose value is produced by fn at
// snapshot time. Semantics match CounterFunc.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...string) {
	r.registerFunc(name, KindGauge, fn, labels)
}

func (r *Registry) registerFunc(name string, kind Kind, fn func() int64, labels []string) {
	if r == nil || fn == nil {
		return
	}
	k, ls := key(name, r.scoped(labels))
	b := r.base()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.series[k] = &series{id: k, name: name, labels: ls, kind: kind, fn: fn}
	b.ordered = nil
}

// Visit calls fn once per registered series, in ascending series-ID
// order, with the series' current value. For counters and gauges
// (native or func-backed) value carries the sample and h is nil; for
// histograms h is the live *Histogram (read it with ReadCounts or
// Count) and value is unused. The ID ordering is total — IDs are
// unique map keys — so two visits over the same registry enumerate
// identically, which is what the telemetry recorder's deterministic
// ring layout relies on.
//
// fn runs outside the registry lock (func-backed series may read
// arbitrary component state), mirroring the Snapshot contract: safe
// against concurrent registration, unsynchronized against concurrent
// writes to func-backed values. A nil registry visits nothing.
func (r *Registry) Visit(fn func(id string, kind Kind, value int64, h *Histogram)) {
	if r == nil {
		return
	}
	b := r.base()
	b.mu.Lock()
	if b.ordered == nil {
		b.ordered = make([]*series, 0, len(b.series))
		for _, s := range b.series {
			b.ordered = append(b.ordered, s)
		}
		sort.Slice(b.ordered, func(i, j int) bool { return b.ordered[i].id < b.ordered[j].id })
	}
	entries := b.ordered
	b.mu.Unlock()

	for _, s := range entries {
		switch {
		case s.hist != nil:
			fn(s.id, s.kind, 0, s.hist)
		case s.fn != nil:
			fn(s.id, s.kind, s.fn(), nil)
		case s.counter != nil:
			fn(s.id, s.kind, s.counter.Value(), nil)
		case s.gauge != nil:
			fn(s.id, s.kind, s.gauge.Value(), nil)
		}
	}
}
