package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("pkts")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same identity returns the same instrument.
	if r.Counter("pkts") != c {
		t.Error("re-registering a counter returned a new instrument")
	}

	g := r.Gauge("depth", "link=a->b")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	// Label order must not matter for identity.
	c2 := r.Counter("multi", "b=2", "a=1")
	c2.Inc()
	if got := r.Counter("multi", "a=1", "b=2").Value(); got != 1 {
		t.Errorf("label-order-insensitive lookup = %d, want 1", got)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All no-ops, no panics.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(9)
	h.ObserveDuration(time.Second)
	r.CounterFunc("f", func() int64 { return 1 })
	r.GaugeFunc("f2", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Metrics) != 0 {
		t.Errorf("nil registry snapshot has %d series", len(snap.Metrics))
	}
}

func TestConcurrentCounterIncrements(t *testing.T) {
	r := New()
	c := r.Counter("concurrent")
	h := r.Histogram("lat_ns")
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	hv, _ := r.Snapshot().Get("lat_ns")
	if hv.Hist.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", hv.Hist.Count, workers*per)
	}
	if hv.Hist.Min != 0 || hv.Hist.Max != workers*per-1 {
		t.Errorf("histogram min/max = %d/%d, want 0/%d", hv.Hist.Min, hv.Hist.Max, workers*per-1)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("sizes")
	cases := []struct {
		v      int64
		bucket int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0}, // everything <= 0
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1 << 62, 63},
		{math.MaxInt64, 63}, // 2^63-1 has bit length 63: top bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		h.Observe(c.v)
	}
	// Every bucket's inclusive bounds must contain the values mapped
	// into it, including the MaxInt64 cap of the top bucket.
	for _, c := range cases {
		lo, hi := bucketBounds(c.bucket)
		if c.v < lo || c.v > hi {
			t.Errorf("value %d outside bucket %d bounds [%d,%d]", c.v, c.bucket, lo, hi)
		}
	}

	hv, _ := r.Snapshot().Get("sizes")
	if hv.Hist.Min != math.MinInt64 || hv.Hist.Max != math.MaxInt64 {
		t.Errorf("min/max = %d/%d", hv.Hist.Min, hv.Hist.Max)
	}
	if hv.Hist.Count != int64(len(cases)) {
		t.Errorf("count = %d, want %d", hv.Hist.Count, len(cases))
	}
	var n int64
	for _, b := range hv.Hist.Buckets {
		if b.Lo > b.Hi {
			t.Errorf("bucket with Lo %d > Hi %d", b.Lo, b.Hi)
		}
		n += b.Count
	}
	if n != hv.Hist.Count {
		t.Errorf("bucket counts sum to %d, want %d", n, hv.Hist.Count)
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	r := New()
	h := r.Histogram("q")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	hv, _ := r.Snapshot().Get("q")
	if got := hv.Hist.Mean(); got != 500.5 {
		t.Errorf("mean = %v, want 500.5", got)
	}
	// Log buckets bound the quantile estimate by one bucket width:
	// the true p50 is 500, whose bucket is [256,511].
	if q := hv.Hist.Quantile(0.5); q < 500 || q > 1023 {
		t.Errorf("p50 = %d, want within [500,1023]", q)
	}
	if q := hv.Hist.Quantile(1); q != 1000 {
		t.Errorf("p100 = %d, want 1000 (clamped to max)", q)
	}
	if q := hv.Hist.Quantile(0); q < 1 {
		t.Errorf("p0 = %d, want >= observed min", q)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h")
	var live int64 = 1
	r.GaugeFunc("fn", func() int64 { return live })
	c.Add(10)
	h.Observe(100)

	snap := r.Snapshot()
	c.Add(5)
	h.Observe(200)
	live = 99

	if got := snap.Value("c"); got != 10 {
		t.Errorf("snapshot counter mutated: %d, want 10", got)
	}
	if got := snap.Value("fn"); got != 1 {
		t.Errorf("snapshot func series mutated: %d, want 1", got)
	}
	m, _ := snap.Get("h")
	if m.Hist.Count != 1 || m.Hist.Max != 100 {
		t.Errorf("snapshot histogram mutated: count=%d max=%d", m.Hist.Count, m.Hist.Max)
	}
	// And the new snapshot sees the updates.
	snap2 := r.Snapshot()
	if snap2.Value("c") != 15 || snap2.Value("fn") != 99 {
		t.Errorf("second snapshot stale: c=%d fn=%d", snap2.Value("c"), snap2.Value("fn"))
	}
}

func TestFuncSeriesRebind(t *testing.T) {
	r := New()
	r.CounterFunc("events", func() int64 { return 1 })
	r.CounterFunc("events", func() int64 { return 2 })
	if got := r.Snapshot().Value("events"); got != 2 {
		t.Errorf("rebinding a func series kept the old fn: %d", got)
	}
}

func TestWriteText(t *testing.T) {
	r := New()
	r.Counter("core.send.fragments", "stream=1").Add(42)
	r.Gauge("netsim.link.queue_depth", "link=a->b/0").Set(3)
	h := r.Histogram("core.recv.adu_latency_ns", "stream=1")
	h.ObserveDuration(3 * time.Millisecond)
	h.ObserveDuration(9 * time.Millisecond)
	out := r.Snapshot().String()
	for _, want := range []string{
		"core.send.fragments{stream=1}",
		"counter",
		"42",
		"netsim.link.queue_depth{link=a->b/0}",
		"histogram",
		"n=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// The _ns suffix renders as durations.
	if !strings.Contains(out, "ms") {
		t.Errorf("latency histogram not rendered as durations:\n%s", out)
	}
}

func TestMixedKindRegistration(t *testing.T) {
	r := New()
	r.Counter("name")
	// Asking for the same identity as another kind must not panic and
	// must hand back a nil (no-op) instrument rather than corrupt state.
	g := r.Gauge("name")
	if g != nil {
		t.Error("kind-mismatched registration should return nil")
	}
	g.Set(3) // still safe
}

func TestTextExpositionDeterministicOrder(t *testing.T) {
	// Series identity ordering must not depend on registration order or
	// map iteration: the flight recorder's CSV and sparkline renderers
	// golden-diff against this output.
	build := func(names []string) string {
		r := New()
		for _, n := range names {
			switch {
			case strings.HasPrefix(n, "g."):
				r.Gauge(n, "shard=1").Set(7)
			case strings.HasPrefix(n, "h."):
				r.Histogram(n).Observe(100)
			default:
				r.Counter(n, "stream=0").Add(3)
			}
		}
		var b strings.Builder
		if err := r.Snapshot().WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	names := []string{"c.bytes", "g.depth", "h.latency_ns", "c.adus", "g.rate"}
	fwd := build(names)
	rev := build([]string{"g.rate", "c.adus", "h.latency_ns", "g.depth", "c.bytes"})
	if fwd != rev {
		t.Fatalf("exposition depends on registration order:\n--- forward ---\n%s--- reverse ---\n%s", fwd, rev)
	}
	// And the rows really are sorted by ID.
	var ids []string
	for _, m := range New().Snapshot().Metrics {
		ids = append(ids, m.ID())
	}
	r := New()
	for _, n := range names {
		r.Counter(n)
	}
	ids = ids[:0]
	for _, m := range r.Snapshot().Metrics {
		ids = append(ids, m.ID())
	}
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("snapshot IDs not sorted: %v", ids)
	}
}

func TestVisitOrderAndValues(t *testing.T) {
	r := New()
	r.Counter("b.count").Add(5)
	r.Gauge("a.level").Set(-3)
	h := r.Histogram("c.lat_ns")
	h.Observe(10)
	h.Observe(1000)
	r.GaugeFunc("a.fn", func() int64 { return 42 })

	var ids []string
	vals := map[string]int64{}
	r.Visit(func(id string, kind Kind, v int64, hh *Histogram) {
		ids = append(ids, id)
		if hh != nil {
			var counts [NumBuckets]int64
			v = hh.ReadCounts(&counts)
			if counts[bucketOf(10)] != 1 || counts[bucketOf(1000)] != 1 {
				t.Errorf("ReadCounts missed observations: %v", counts)
			}
		}
		vals[id] = v
	})
	want := []string{"a.fn", "a.level", "b.count", "c.lat_ns"}
	if len(ids) != len(want) {
		t.Fatalf("visited %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("visited %v, want %v", ids, want)
		}
	}
	if vals["b.count"] != 5 || vals["a.level"] != -3 || vals["a.fn"] != 42 || vals["c.lat_ns"] != 2 {
		t.Errorf("visit values = %v", vals)
	}
	// Nil registry visits nothing.
	(*Registry)(nil).Visit(func(string, Kind, int64, *Histogram) { t.Error("nil registry visited a series") })
}

func TestVisitOrderedCacheInvalidation(t *testing.T) {
	r := New()
	r.Counter("z")
	r.Visit(func(string, Kind, int64, *Histogram) {}) // build cache
	r.Counter("a")                                    // must invalidate
	var ids []string
	r.Visit(func(id string, _ Kind, _ int64, _ *Histogram) { ids = append(ids, id) })
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "z" {
		t.Fatalf("visit after registration = %v, want [a z]", ids)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile is 0.
	empty := newHistogram().snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}

	// Single observation: every quantile is that value (min/max clamp).
	one := newHistogram()
	one.Observe(100)
	hv := one.snapshot()
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := hv.Quantile(q); got != 100 {
			t.Errorf("single-value Quantile(%v) = %d, want 100", q, got)
		}
	}

	// All observations in one bucket [64,127]: every quantile lands in
	// it, clamped into [Min, Max] = [100, 120].
	h := newHistogram()
	h.Observe(100)
	h.Observe(110)
	h.Observe(120)
	hv = h.snapshot()
	if got := hv.Quantile(0); got != 120 {
		t.Errorf("single-bucket Quantile(0) = %d, want bucket-upper clamped to Max=120", got)
	}
	if got := hv.Quantile(1); got != 120 {
		t.Errorf("single-bucket Quantile(1) = %d, want Max=120", got)
	}
	if got := hv.Quantile(0.5); got != 120 {
		t.Errorf("single-bucket Quantile(0.5) = %d, want bucket-upper clamped to 120", got)
	}

	// Two buckets: q=0 reports the smallest observation's bucket upper
	// bound (the estimate is one-sided — never below the true value),
	// q=1 reports Max exactly, and the midpoint reports the first
	// bucket's upper bound.
	h2 := newHistogram()
	h2.Observe(10) // bucket [8,15]
	h2.Observe(40) // bucket [32,63]
	hv = h2.snapshot()
	if got := hv.Quantile(0); got != 15 {
		t.Errorf("Quantile(0) = %d, want smallest bucket upper 15", got)
	}
	if got := hv.Quantile(1); got != 40 {
		t.Errorf("Quantile(1) = %d, want Max=40", got)
	}
	if got := hv.Quantile(0.5); got != 15 {
		t.Errorf("Quantile(0.5) = %d, want first bucket upper 15", got)
	}
}

func TestBucketUpperAndReadCountsNil(t *testing.T) {
	if got := BucketUpper(bucketOf(100)); got != 127 {
		t.Errorf("BucketUpper(bucketOf(100)) = %d, want 127", got)
	}
	if got := BucketUpper(-1); got != 0 {
		t.Errorf("BucketUpper(-1) = %d, want 0", got)
	}
	if got := BucketUpper(NumBuckets); got != 0 {
		t.Errorf("BucketUpper(NumBuckets) = %d, want 0", got)
	}
	var counts [NumBuckets]int64
	counts[3] = 9 // must be zeroed by the nil read
	if got := (*Histogram)(nil).ReadCounts(&counts); got != 0 || counts[3] != 0 {
		t.Errorf("nil ReadCounts = %d, counts[3]=%d; want 0, 0", got, counts[3])
	}
}
