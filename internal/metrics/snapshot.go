package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Metric is one series captured in a Snapshot.
type Metric struct {
	Name   string
	Labels []string // sorted "key=value" pairs
	Kind   Kind
	Value  int64           // counter/gauge value
	Hist   *HistogramValue // non-nil for KindHistogram
}

// ID returns the full series identity: name plus labels.
func (m *Metric) ID() string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	return m.Name + "{" + strings.Join(m.Labels, ",") + "}"
}

// Snapshot is a point-in-time capture of every series in a registry,
// sorted by series identity. Once taken it is immutable: later
// instrument updates do not affect it.
type Snapshot struct {
	Metrics []Metric
}

// Snapshot captures the current value of every series. Func-backed
// series are sampled now. On a nil registry it returns an empty
// snapshot.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	b := r.base()
	b.mu.Lock()
	entries := make([]*series, 0, len(b.series))
	for _, s := range b.series {
		entries = append(entries, s)
	}
	b.mu.Unlock()

	for _, s := range entries {
		m := Metric{Name: s.name, Labels: s.labels, Kind: s.kind}
		switch {
		case s.fn != nil:
			m.Value = s.fn()
		case s.counter != nil:
			m.Value = s.counter.Value()
		case s.gauge != nil:
			m.Value = s.gauge.Value()
		case s.hist != nil:
			m.Hist = s.hist.snapshot()
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	sort.Slice(snap.Metrics, func(i, j int) bool {
		return snap.Metrics[i].ID() < snap.Metrics[j].ID()
	})
	return snap
}

// Get returns the captured metric for (name, labels), if present.
func (s *Snapshot) Get(name string, labels ...string) (Metric, bool) {
	k, _ := key(name, labels)
	for i := range s.Metrics {
		if s.Metrics[i].ID() == k {
			return s.Metrics[i], true
		}
	}
	return Metric{}, false
}

// Value returns the captured counter/gauge value for (name, labels),
// or 0 when absent.
func (s *Snapshot) Value(name string, labels ...string) int64 {
	m, ok := s.Get(name, labels...)
	if !ok {
		return 0
	}
	return m.Value
}

// formatValue renders a value using the unit convention carried in the
// series name suffix: "_ns" values render as durations, everything
// else as a plain integer.
func formatValue(name string, v int64) string {
	if strings.HasSuffix(name, "_ns") {
		return time.Duration(v).String()
	}
	return fmt.Sprintf("%d", v)
}

// histLine renders a histogram summary on one line.
func histLine(name string, hv *HistogramValue) string {
	if hv.Count == 0 {
		return "n=0"
	}
	f := func(v int64) string { return formatValue(name, v) }
	return fmt.Sprintf("n=%d min=%s mean=%s p50=%s p95=%s p99=%s max=%s",
		hv.Count, f(hv.Min), f(int64(hv.Mean())), f(hv.Quantile(0.50)),
		f(hv.Quantile(0.95)), f(hv.Quantile(0.99)), f(hv.Max))
}

// WriteText renders the snapshot as an aligned plain-text table, one
// row per series, with populated histogram buckets indented beneath
// their summary row (bars scale to the largest bucket).
func (s *Snapshot) WriteText(w io.Writer) error {
	nameW, kindW := len("metric"), len("type")
	for i := range s.Metrics {
		if n := len(s.Metrics[i].ID()); n > nameW {
			nameW = n
		}
		if n := len(s.Metrics[i].Kind.String()); n > kindW {
			kindW = n
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %-*s  %s\n", nameW, "metric", kindW, "type", "value"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %s  %s\n",
		strings.Repeat("-", nameW), strings.Repeat("-", kindW), strings.Repeat("-", len("value"))); err != nil {
		return err
	}
	for i := range s.Metrics {
		m := &s.Metrics[i]
		var val string
		if m.Kind == KindHistogram {
			val = histLine(m.Name, m.Hist)
		} else {
			val = formatValue(m.Name, m.Value)
		}
		if _, err := fmt.Fprintf(w, "%-*s  %-*s  %s\n", nameW, m.ID(), kindW, m.Kind.String(), val); err != nil {
			return err
		}
		if m.Kind == KindHistogram && m.Hist.Count > 0 {
			if err := writeBuckets(w, m.Name, m.Hist); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeBuckets renders the populated buckets of one histogram.
func writeBuckets(w io.Writer, name string, hv *HistogramValue) error {
	var maxN int64
	for _, b := range hv.Buckets {
		if b.Count > maxN {
			maxN = b.Count
		}
	}
	for _, b := range hv.Buckets {
		lo := b.Lo
		if lo < 0 {
			lo = 0 // the <=0 bucket; render its floor as 0
		}
		bar := strings.Repeat("#", int(1+b.Count*24/maxN))
		if _, err := fmt.Fprintf(w, "    [%12s, %12s]  %8d  %s\n",
			formatValue(name, lo), formatValue(name, b.Hi), b.Count, bar); err != nil {
			return err
		}
	}
	return nil
}

// String renders the snapshot as WriteText does.
func (s *Snapshot) String() string {
	var b strings.Builder
	_ = s.WriteText(&b)
	return b.String()
}
