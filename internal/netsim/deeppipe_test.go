package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestDeepPipeHeapBounded is the huge-RTT scaling guarantee: a link
// whose bandwidth-delay product holds tens of thousands of packets in
// flight must not put one scheduler heap entry per packet — the
// transit FIFO services the whole pipe with a single timer, so the
// heap stays O(links) regardless of depth.
func TestDeepPipeHeapBounded(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched, 1)
	a, b := net.NewNode("a"), net.NewNode("b")
	// 1 Gb/s at 2 s one-way: the pipe holds ~250 MB. 50k packets of
	// 1 KiB fill a quarter of it.
	l := net.NewLink(a, b, LinkConfig{RateBps: 1e9, Delay: 2 * time.Second})
	var got int
	b.SetHandler(func(p *Packet) { got++ })

	const n = 50_000
	payload := make([]byte, 1024)
	for i := 0; i < n; i++ {
		if err := l.Send(payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Serialize everything into flight: 50k packets at 1 Gb/s is
	// ~0.4 s of wire time, all airborne before the 2 s delay elapses.
	if err := sched.RunUntil(sim.Time(0).Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	inFlight := n - got
	if inFlight < n/2 {
		t.Fatalf("expected a deep pipe, only %d in flight", inFlight)
	}
	if p := sched.Pending(); p > 64 {
		t.Fatalf("scheduler heap holds %d events with %d packets in flight; want O(links), not O(pipe)", p, inFlight)
	}
	if err := sched.RunUntil(sim.Time(0).Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("delivered %d of %d", got, n)
	}
	if d := l.Stats.Delivered; d != n {
		t.Fatalf("link stats delivered %d of %d", d, n)
	}
}

// TestDeepPipeOrderWithReorder checks the transit FIFO's fallback: a
// reorder-delayed packet (non-monotone due time) still arrives, and
// in-order traffic around it is unaffected.
func TestDeepPipeOrderWithReorder(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched, 7)
	a, b := net.NewNode("a"), net.NewNode("b")
	l := net.NewLink(a, b, LinkConfig{
		RateBps: 10e6, Delay: 50 * time.Millisecond,
		ReorderProb: 0.2, ReorderDelay: 30 * time.Millisecond,
	})
	var got int
	b.SetHandler(func(p *Packet) { got++ })
	payload := make([]byte, 512)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := l.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.RunUntil(sim.Time(0).Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("delivered %d of %d", got, n)
	}
	if l.Stats.Reordered == 0 {
		t.Fatal("expected some reordered packets at ReorderProb 0.2")
	}
}

// TestProfiles pins the named huge-RTT presets.
func TestProfiles(t *testing.T) {
	cfg, ok := Profile("mars-far")
	if !ok {
		t.Fatal("mars-far profile missing")
	}
	if cfg.Delay != 12*time.Minute {
		t.Fatalf("mars-far one-way delay = %v, want 12m", cfg.Delay)
	}
	// The headline number: a gigabyte-class BDP.
	bdp := cfg.RateBps / 8 * cfg.Delay.Seconds()
	if bdp < 1e9 {
		t.Fatalf("mars-far BDP = %.0f bytes, want >= 1 GB", bdp)
	}
	if _, ok := Profile("subspace"); ok {
		t.Fatal("unknown profile resolved")
	}
	names := ProfileNames()
	if len(names) < 5 {
		t.Fatalf("too few profiles: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("profile names unsorted: %v", names)
		}
	}
	// Every profile must be usable as-is on a link.
	sched := sim.NewScheduler()
	net := New(sched, 1)
	a, b := net.NewNode("a"), net.NewNode("b")
	for _, name := range names {
		cfg, _ := Profile(name)
		net.NewLink(a, b, cfg)
	}
}
