package netsim

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkNetsimForward measures the per-packet network cost of a
// two-hop route (entry link -> router -> exit link) with zero delay and
// no impairments: the pure packet-handling overhead of the substrate.
func BenchmarkNetsimForward(b *testing.B) {
	s := sim.NewScheduler()
	n := New(s, 1)
	src := n.NewNode("src")
	rtr := n.NewRouter("rtr")
	dst := n.NewNode("dst")
	first := n.NewLink(src, rtr.Node, LinkConfig{})
	exit := n.NewLink(rtr.Node, dst, LinkConfig{})
	rtr.AddRoute(dst, exit)

	got := 0
	dst.SetHandler(func(p *Packet) { got += len(p.Payload) })

	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SendVia(first, dst, payload); err != nil {
			b.Fatal(err)
		}
		_ = s.RunUntil(s.Now())
	}
	b.StopTimer()
	if got != b.N*len(payload) {
		b.Fatalf("delivered %d bytes, want %d", got, b.N*len(payload))
	}
}
