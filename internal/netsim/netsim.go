// Package netsim is the packet-level network substrate: a discrete-event
// simulation of nodes joined by point-to-point links with configurable
// rate, propagation delay, queueing, and impairments (random and bursty
// loss, reordering, duplication, bit errors).
//
// The paper's experiments assume networks that lose, reorder and
// duplicate data (§3, "Detecting network transmission problems"); this
// package provides those failure modes deterministically from a seed.
//
// netsim is deliberately dumb about contents: payloads are opaque bytes,
// and all framing, demultiplexing and recovery live in the layers above
// (otp, alf). A Node delivers every arriving packet to its single
// handler. Routers are ordinary nodes whose handler forwards on another
// link.
package netsim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/buf"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tracing"
)

// NodeID identifies a node within one Network.
type NodeID uint16

// Packet is a datagram in flight. Payload views a pooled refcounted
// buffer (internal/buf) that the network recycles after delivery: it is
// valid only for the duration of the handler call, and handlers must
// not mutate it or retain the slice (or the *Packet) past their return
// — copy what must outlive the call. Sends via Send copy the caller's
// slice once into the pool; SendRef hands a buffer over with no copy at
// all, and routers forward by reference, so a multi-hop path touches
// the payload bytes zero times.
type Packet struct {
	From, To NodeID
	Payload  []byte
	// Corrupted marks packets damaged in transit when the link is
	// configured to deliver (rather than drop) bit errors. Checksums in
	// upper layers are expected to catch these; the flag exists so tests
	// can distinguish "checksum caught it" from "checksum missed it".
	Corrupted bool

	ref   *buf.Ref // counted payload buffer; nil only transiently
	link  *Link    // owning link while queued/in flight
	delay sim.Duration
	due   sim.Time // delivery time while in the link's transit FIFO
	// shed marks a queued packet dropped by a QueueLimit shrink while
	// its (uncancellable, pooled) departure event was already scheduled;
	// departCB discards it instead of delivering.
	shed bool
}

// Retain returns an additional counted reference to the packet's
// pooled payload buffer. The loan rules still apply to the *Packet and
// its Payload slice, but the returned ref (and its Bytes) outlives the
// handler call — this is how a store-and-forward node (internal/relay)
// takes custody of a packet without copying it.
func (p *Packet) Retain() *buf.Ref { return p.ref.Retain() }

// Handler consumes packets arriving at a node. Handlers run inside
// scheduler callbacks: they must not block. The packet and its payload
// are loaned for the duration of the call only (see Packet).
type Handler func(*Packet)

// ErrTooBig is returned by Send for payloads over the link MTU.
var ErrTooBig = errors.New("netsim: payload exceeds link MTU")

// ErrNoHandler is returned when delivering to a node with no handler.
var ErrNoHandler = errors.New("netsim: node has no handler")

// Network owns the nodes and links of one simulated topology, all driven
// by a single scheduler and RNG.
type Network struct {
	Sched   *sim.Scheduler
	Rand    *sim.Rand
	nodes   []*Node
	links   []*Link
	metrics *metrics.Registry
	tracer  *tracing.Tracer
	pool    *buf.Pool
	freePkt []*Packet // delivered Packet structs awaiting reuse
}

// SetPool replaces the buffer pool backing Send's single copy. The
// default is buf.Default, shared with the transport layers so a slab
// released on delivery is the next one a sender gets. Tests use a
// private pool to assert recycling.
func (n *Network) SetPool(p *buf.Pool) { n.pool = p }

// getPacket returns a zeroed Packet, reusing a delivered one.
func (n *Network) getPacket() *Packet {
	if ln := len(n.freePkt); ln > 0 {
		p := n.freePkt[ln-1]
		n.freePkt[ln-1] = nil
		n.freePkt = n.freePkt[:ln-1]
		return p
	}
	return &Packet{}
}

// putPacket releases the packet's payload reference and recycles the
// struct.
func (n *Network) putPacket(p *Packet) {
	if p.ref != nil {
		p.ref.Release()
	}
	*p = Packet{}
	n.freePkt = append(n.freePkt, p)
}

// SetTracer binds the topology to the span recorder: every link
// records queueing, delivery, and drop events (with drop causes) for
// each packet, identified by sniffing the opaque payload. Nil
// disables recording (the default; a nil tracer costs one branch per
// packet event).
func (n *Network) SetTracer(t *tracing.Tracer) { n.tracer = t }

// Tracer returns the bound span recorder (nil when tracing is off).
func (n *Network) Tracer() *tracing.Tracer { return n.tracer }

// SetMetrics binds the whole topology to the unified registry: every
// existing and future link registers its counters (views over
// Link.Stats: traffic, drops by cause, delivered bytes) and a
// queue-depth gauge, and every node its undelivered-packet counters.
// Call with nil to stop registering new elements (already-registered
// series remain).
func (n *Network) SetMetrics(r *metrics.Registry) {
	n.metrics = r
	if r == nil {
		return
	}
	for _, nd := range n.nodes {
		nd.bindMetrics(r)
	}
	for i, l := range n.links {
		l.bindMetrics(r, i)
	}
}

// New creates an empty network on sched with a RNG seeded by seed.
func New(sched *sim.Scheduler, seed int64) *Network {
	return &Network{Sched: sched, Rand: sim.NewRand(seed), pool: buf.Default}
}

// Links returns every link in creation order. The slice is shared;
// callers must not modify it.
func (n *Network) Links() []*Link { return n.links }

// LinksBetween returns the links whose endpoints straddle the two node
// groups, in either direction — the cut set a partition must sever to
// separate groups a and b.
func (n *Network) LinksBetween(a, b []*Node) []*Link {
	in := func(set []*Node, nd *Node) bool {
		for _, s := range set {
			if s == nd {
				return true
			}
		}
		return false
	}
	var cut []*Link
	for _, l := range n.links {
		if (in(a, l.from) && in(b, l.to)) || (in(b, l.from) && in(a, l.to)) {
			cut = append(cut, l)
		}
	}
	return cut
}

// NewNode adds a node. The name is for diagnostics only.
func (n *Network) NewNode(name string) *Node {
	node := &Node{net: n, id: NodeID(len(n.nodes)), name: name}
	n.nodes = append(n.nodes, node)
	if n.metrics != nil {
		node.bindMetrics(n.metrics)
	}
	return node
}

// Node is an endpoint or router attachment point.
type Node struct {
	net     *Network
	id      NodeID
	name    string
	handler Handler
	// Undelivered counts packets that arrived with no handler set;
	// UndeliveredBytes is their payload volume.
	Undelivered      int64
	UndeliveredBytes int64
}

// bindMetrics registers the node's series with the unified registry.
func (nd *Node) bindMetrics(r *metrics.Registry) {
	lb := fmt.Sprintf("node=%d:%s", nd.id, nd.name)
	r.CounterFunc("netsim.node.undelivered", func() int64 { return nd.Undelivered }, lb)
	r.CounterFunc("netsim.node.undelivered_bytes", func() int64 { return nd.UndeliveredBytes }, lb)
}

// ID returns the node's network-unique identifier.
func (nd *Node) ID() NodeID { return nd.id }

// Name returns the diagnostic name.
func (nd *Node) Name() string { return nd.name }

// SetHandler installs the function that receives arriving packets.
func (nd *Node) SetHandler(h Handler) { nd.handler = h }

func (nd *Node) deliver(p *Packet) {
	if nd.handler == nil {
		nd.Undelivered++
		nd.UndeliveredBytes += int64(len(p.Payload))
		return
	}
	nd.handler(p)
}

// DownPolicy selects what happens to packets a link is holding (queued
// for serialization) or receiving while the link is administratively
// down (Link.SetDown). Fault-injection scenarios (internal/faults) flip
// links down and up at scheduled virtual times.
type DownPolicy uint8

const (
	// DropOnDown discards packets that reach a down link: new sends are
	// dropped on entry and already-queued packets are dropped when their
	// serialization completes. All are counted as LinkStats.DownDrops.
	// This models an interface whose driver flushes its ring on carrier
	// loss — the default, and the conservative assumption for recovery
	// logic above.
	DropOnDown DownPolicy = iota
	// HoldOnDown parks packets while the link is down — queued packets
	// migrate to a hold buffer, new sends join it (still bounded by
	// QueueLimit) — and re-serializes them in order when the link comes
	// back up. This models a driver that keeps its queue across a short
	// carrier flap.
	HoldOnDown
)

// Gilbert configures a two-state Gilbert–Elliott burst-loss process.
// The link starts in the good state; transition probabilities are
// evaluated per packet.
type Gilbert struct {
	PGoodToBad float64 // P(enter bad state), per packet while good
	PBadToGood float64 // P(leave bad state), per packet while bad
	LossGood   float64 // loss probability in the good state
	LossBad    float64 // loss probability in the bad state
}

// LinkConfig describes one unidirectional link.
type LinkConfig struct {
	// RateBps is the serialization rate in bits per second.
	// Zero means infinitely fast (no serialization delay).
	RateBps float64
	// Delay is the propagation delay.
	Delay sim.Duration
	// QueueLimit bounds the number of packets queued awaiting
	// serialization (drop-tail). Zero means unlimited.
	QueueLimit int
	// MTU bounds payload size in bytes. Zero means unlimited.
	MTU int

	// LossProb drops each packet independently with this probability.
	LossProb float64
	// Burst, if non-nil, adds Gilbert–Elliott bursty loss on top of
	// LossProb.
	Burst *Gilbert
	// DupProb delivers an extra copy of the packet with this probability.
	DupProb float64
	// ReorderProb holds a packet back by an extra random delay in
	// (0, ReorderDelay], causing it to arrive after its successors.
	ReorderProb  float64
	ReorderDelay sim.Duration
	// BitErrorRate is the independent per-bit corruption probability.
	// Corrupted packets are delivered with flipped bits and
	// Packet.Corrupted set; upper-layer checksums must catch them.
	BitErrorRate float64
	// OnDown selects the fate of queued packets while the link is
	// administratively down (default DropOnDown).
	OnDown DownPolicy
}

// LinkStats counts link events for assertions and experiment reports.
type LinkStats struct {
	Sent           int64 // packets accepted by Send
	SentBytes      int64
	Delivered      int64 // packets handed to the destination node
	DeliveredBytes int64
	QueueDrops     int64 // drop-tail losses (QueueLimit full at send time)
	ShrinkDrops    int64 // queued packets dropped by a QueueLimit shrink
	LineLosses     int64 // impairment losses (random + burst)
	DownDrops      int64 // packets dropped because the link was down
	HeldPackets    int64 // packets parked by HoldOnDown (cumulative)
	Dups           int64
	Reordered      int64
	Corrupted      int64
	Rejected       int64 // oversize sends
	MaxQueue       int64 // high-water queue depth (packets awaiting serialization)
}

// Link is a unidirectional point-to-point pipe.
type Link struct {
	net   *Network
	from  *Node
	to    *Node
	cfg   LinkConfig
	label string // tracer track name: net/<from>-><to>/<idx>

	busyUntil sim.Time
	queued    int
	q         []*Packet // committed to serialization, FIFO (mirrors queued minus shed)
	inBad     bool      // Gilbert–Elliott state
	down      bool
	held      []*Packet // parked by HoldOnDown, FIFO

	// In-flight pipe: packets past serialization, awaiting delivery.
	// Constant-delay deliveries fire in depart order, so the pipe is a
	// FIFO serviced by one timer per link and the scheduler heap stays
	// O(links) no matter how deep the pipe is — a gigabyte-BDP
	// interplanetary link holds hundreds of thousands of packets in
	// flight, and a per-packet heap entry for each would dominate the
	// simulation. Non-monotone deliveries (reorder extra delay, a
	// config change that shortened Delay mid-flight) fall back to
	// per-packet events; transitHead indexes the FIFO's first live
	// entry, compacted as it advances.
	transit     []*Packet
	transitHead int
	lastDue     sim.Time
	delTimer    *sim.Timer

	Stats LinkStats
}

// NewLink creates a unidirectional link from a to b.
func (n *Network) NewLink(from, to *Node, cfg LinkConfig) *Link {
	if from.net != n || to.net != n {
		panic("netsim: nodes belong to a different network")
	}
	l := &Link{net: n, from: from, to: to, cfg: cfg,
		label: fmt.Sprintf("net/%s->%s/%d", from.name, to.name, len(n.links))}
	l.delTimer = n.Sched.NewTimer(l.onDeliver)
	n.links = append(n.links, l)
	if n.metrics != nil {
		l.bindMetrics(n.metrics, len(n.links)-1)
	}
	return l
}

// bindMetrics registers the link's series. The label carries the
// endpoint names plus the link's creation index, which keeps parallel
// links between the same pair distinct.
func (l *Link) bindMetrics(r *metrics.Registry, idx int) {
	lb := fmt.Sprintf("link=%s->%s/%d", l.from.name, l.to.name, idx)
	st := &l.Stats
	for _, e := range []struct {
		name string
		fn   func() int64
	}{
		{"netsim.link.sent", func() int64 { return st.Sent }},
		{"netsim.link.sent_bytes", func() int64 { return st.SentBytes }},
		{"netsim.link.delivered", func() int64 { return st.Delivered }},
		{"netsim.link.delivered_bytes", func() int64 { return st.DeliveredBytes }},
		{"netsim.link.queue_drops", func() int64 { return st.QueueDrops }},
		{"netsim.link.shrink_drops", func() int64 { return st.ShrinkDrops }},
		{"netsim.link.line_losses", func() int64 { return st.LineLosses }},
		{"netsim.link.down_drops", func() int64 { return st.DownDrops }},
		{"netsim.link.held_packets", func() int64 { return st.HeldPackets }},
		{"netsim.link.dups", func() int64 { return st.Dups }},
		{"netsim.link.reordered", func() int64 { return st.Reordered }},
		{"netsim.link.corrupted", func() int64 { return st.Corrupted }},
		{"netsim.link.rejected", func() int64 { return st.Rejected }},
	} {
		r.CounterFunc(e.name, e.fn, lb)
	}
	r.GaugeFunc("netsim.link.queue_depth", func() int64 { return int64(l.queued) }, lb)
	// The configured bound next to the live depth: the telemetry
	// plane's queue-saturation detector reads the pair label-for-label.
	r.GaugeFunc("netsim.link.queue_limit", func() int64 { return int64(l.cfg.QueueLimit) }, lb)
	r.GaugeFunc("netsim.link.queue_max", func() int64 { return l.Stats.MaxQueue }, lb)
	r.GaugeFunc("netsim.link.held_depth", func() int64 { return int64(len(l.held)) }, lb)
	r.GaugeFunc("netsim.link.down", func() int64 {
		if l.down {
			return 1
		}
		return 0
	}, lb)
}

// NewDuplex creates a pair of links with the same configuration,
// returning (a→b, b→a).
func (n *Network) NewDuplex(a, b *Node, cfg LinkConfig) (ab, ba *Link) {
	return n.NewLink(a, b, cfg), n.NewLink(b, a, cfg)
}

// From returns the sending node.
func (l *Link) From() *Node { return l.from }

// To returns the receiving node.
func (l *Link) To() *Node { return l.to }

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Label returns the link's stable diagnostic name
// ("net/<from>-><to>/<idx>"), the track name under which the tracer
// records this link's events.
func (l *Link) Label() string { return l.label }

// UpdateConfig replaces the link configuration at runtime. Packets
// already serializing keep their committed departure times; new sends
// see the new rate, delay, and impairments immediately. The
// Gilbert–Elliott state machine carries over. Fault scenarios use this
// to degrade a live link (raise loss, stretch delay) and later restore
// the saved config.
//
// Shrinking QueueLimit below the current backlog drops the excess —
// newest first, held packets before committed ones — counted as
// LinkStats.ShrinkDrops with drop cause "shrink"; it never panics and
// never delivers a packet the new limit disowns.
func (l *Link) UpdateConfig(cfg LinkConfig) {
	l.cfg = cfg
	l.shrinkToLimit()
}

// shrinkToLimit enforces a lowered QueueLimit over the live backlog.
// Held packets (not yet committed to serialization) are freed outright.
// Committed packets already have pooled departure events scheduled that
// cannot be cancelled safely, so they are marked shed and discarded by
// departCB when the event fires; their accounting (queued, stats,
// trace) settles here, immediately. Serialization time the shed
// packets had claimed is not reclaimed — the link behaves as if the
// drop happened at the transmitter's output, after the bytes crossed
// the wire-side queue.
func (l *Link) shrinkToLimit() {
	limit := l.cfg.QueueLimit
	if limit <= 0 {
		return
	}
	for l.queued+len(l.held) > limit && len(l.held) > 0 {
		n := len(l.held) - 1
		pkt := l.held[n]
		l.held[n] = nil
		l.held = l.held[:n]
		l.Stats.ShrinkDrops++
		l.net.tracer.PacketDropped(l.label, "shrink", pkt.Payload)
		l.net.putPacket(pkt)
	}
	for i := len(l.q) - 1; i >= 0 && l.queued+len(l.held) > limit; i-- {
		pkt := l.q[i]
		if pkt.shed {
			continue
		}
		pkt.shed = true
		l.queued--
		l.Stats.ShrinkDrops++
		l.net.tracer.PacketDropped(l.label, "shrink", pkt.Payload)
	}
}

// Down reports whether the link is administratively down.
func (l *Link) Down() bool { return l.down }

// HeldLen returns the number of packets parked by HoldOnDown.
func (l *Link) HeldLen() int { return len(l.held) }

// SetDown changes the link's administrative state. Taking a link down
// applies the configured DownPolicy to traffic: with DropOnDown (the
// default) new sends and already-queued packets are discarded and
// counted as DownDrops; with HoldOnDown they are parked and
// re-serialized, in order, when the link comes back up. Bringing an
// already-up link up (or down link down) is a no-op.
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	if down {
		return
	}
	// Back up: whatever HoldOnDown parked re-enters serialization now,
	// in arrival order.
	held := l.held
	l.held = nil
	for _, pkt := range held {
		l.enqueue(pkt)
	}
}

// serialization returns the transmission time of n payload bytes.
func (l *Link) serialization(n int) sim.Duration {
	if l.cfg.RateBps <= 0 {
		return 0
	}
	return sim.Duration(float64(n*8) / l.cfg.RateBps * 1e9)
}

// QueueLen returns the number of packets waiting for serialization.
func (l *Link) QueueLen() int { return l.queued }

// Send enqueues payload for transmission. The payload is copied once
// into a pooled buffer, so the caller may immediately reuse its slice.
// It returns ErrTooBig for oversize payloads; queue overflow is not an
// error (the packet is silently dropped and counted), matching real
// datagram semantics.
func (l *Link) Send(payload []byte) error {
	return l.send(payload, l.to.id)
}

// SendRef enqueues a pooled buffer with no copy. The caller's
// reference count transfers to the link — including on drop and error
// returns — so a caller that needs the buffer afterwards must Retain
// before sending. The bytes must not be mutated once sent (the buffer
// may be shared; see Packet).
func (l *Link) SendRef(ref *buf.Ref) error {
	return l.sendRef(ref, l.to.id)
}

// send is the copying transmission path: one copy, caller's slice to
// pooled buffer. finalTo is the ultimate destination recorded in the
// packet, which routers use to select the next hop (it may differ from
// l.to when the packet is mid-route).
func (l *Link) send(payload []byte, finalTo NodeID) error {
	if l.cfg.MTU > 0 && len(payload) > l.cfg.MTU {
		l.Stats.Rejected++
		return fmt.Errorf("%w: %d > %d", ErrTooBig, len(payload), l.cfg.MTU)
	}
	ref := l.net.pool.Get(len(payload))
	copy(ref.Bytes(), payload)
	return l.sendRef(ref, finalTo)
}

// sendRef is the common transmission path; it owns ref's count.
func (l *Link) sendRef(ref *buf.Ref, finalTo NodeID) error {
	payload := ref.Bytes()
	if l.cfg.MTU > 0 && len(payload) > l.cfg.MTU {
		l.Stats.Rejected++
		ref.Release()
		return fmt.Errorf("%w: %d > %d", ErrTooBig, len(payload), l.cfg.MTU)
	}
	if l.down && l.cfg.OnDown == DropOnDown {
		l.Stats.DownDrops++
		l.net.tracer.PacketDropped(l.label, "down", payload)
		ref.Release()
		return nil
	}
	if l.cfg.QueueLimit > 0 && l.queued+len(l.held) >= l.cfg.QueueLimit {
		l.Stats.QueueDrops++
		l.net.tracer.PacketDropped(l.label, "queue", payload)
		ref.Release()
		return nil
	}
	l.Stats.Sent++
	l.Stats.SentBytes += int64(len(payload))
	pkt := l.net.getPacket()
	pkt.From, pkt.To, pkt.Payload, pkt.ref, pkt.link = l.from.id, finalTo, payload, ref, l
	if l.down {
		l.hold(pkt)
		return nil
	}
	l.enqueue(pkt)
	return nil
}

// departCB pops a serialized packet off its link's queue. Static so
// enqueue schedules it on a pooled event without a closure allocation.
func departCB(arg any) {
	pkt := arg.(*Packet)
	l := pkt.link
	l.dequeue(pkt)
	if pkt.shed {
		// Dropped by a QueueLimit shrink while waiting; the queue
		// accounting and the drop event were settled at shrink time.
		l.net.putPacket(pkt)
		return
	}
	l.queued--
	l.depart(pkt)
}

// dequeue removes pkt from the committed-FIFO mirror. Departures fire
// in enqueue order, so the match is at (or near, after sheds) the head.
func (l *Link) dequeue(pkt *Packet) {
	for i, p := range l.q {
		if p == pkt {
			copy(l.q[i:], l.q[i+1:])
			l.q[len(l.q)-1] = nil
			l.q = l.q[:len(l.q)-1]
			return
		}
	}
}

// enqueue commits pkt to serialization: it departs when the link has
// transmitted every byte ahead of it.
func (l *Link) enqueue(pkt *Packet) {
	l.queued++
	if int64(l.queued) > l.Stats.MaxQueue {
		// High-water mark: the scaling experiments report it per shard
		// trunk to show backlog stays bounded as flow counts grow.
		l.Stats.MaxQueue = int64(l.queued)
	}
	now := l.net.Sched.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	txEnd := start.Add(l.serialization(len(pkt.Payload)))
	l.net.tracer.PacketQueued(l.label, pkt.Payload, start.Sub(now), txEnd.Sub(start))
	l.busyUntil = txEnd
	pkt.link = l
	l.q = append(l.q, pkt)
	l.net.Sched.AtCall(txEnd, departCB, pkt)
}

// hold parks pkt until the link comes back up (HoldOnDown).
func (l *Link) hold(pkt *Packet) {
	l.Stats.HeldPackets++
	l.held = append(l.held, pkt)
}

// depart applies impairments at the moment the packet finishes
// serialization and schedules delivery.
func (l *Link) depart(pkt *Packet) {
	if l.down {
		// The link went down while this packet was serializing.
		if l.cfg.OnDown == HoldOnDown {
			l.hold(pkt)
		} else {
			l.Stats.DownDrops++
			l.net.tracer.PacketDropped(l.label, "down", pkt.Payload)
			l.net.putPacket(pkt)
		}
		return
	}
	rnd := l.net.Rand

	if l.lost(rnd) {
		l.Stats.LineLosses++
		l.net.tracer.PacketDropped(l.label, "line", pkt.Payload)
		l.net.putPacket(pkt)
		return
	}

	if l.cfg.BitErrorRate > 0 {
		bits := float64(len(pkt.Payload) * 8)
		pCorrupt := 1 - math.Pow(1-l.cfg.BitErrorRate, bits)
		if rnd.Bernoulli(pCorrupt) {
			l.corrupt(pkt, rnd)
		}
	}

	delay := l.cfg.Delay
	if l.cfg.ReorderProb > 0 && rnd.Bernoulli(l.cfg.ReorderProb) {
		extra := sim.Duration(rnd.Int63() % int64(maxDur(l.cfg.ReorderDelay, 1)))
		delay += extra
		l.Stats.Reordered++
	}

	l.schedDeliver(pkt, delay)

	if l.cfg.DupProb > 0 && rnd.Bernoulli(l.cfg.DupProb) {
		// The duplicate shares the original's buffer by reference; both
		// deliveries read it immutably. (pkt's own delivery has not fired
		// yet — the scheduler is single-threaded — so the retain is safe.)
		dup := l.net.getPacket()
		dup.From, dup.To, dup.Corrupted = pkt.From, pkt.To, pkt.Corrupted
		dup.ref = pkt.ref.Retain()
		dup.Payload, dup.link = pkt.Payload, l
		l.Stats.Dups++
		l.schedDeliver(dup, l.cfg.Delay)
	}
}

func maxDur(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}

// deliverCB hands a packet to its destination node, then recycles it.
// Static so schedDeliver uses a pooled event (see departCB).
func deliverCB(arg any) {
	pkt := arg.(*Packet)
	l := pkt.link
	l.Stats.Delivered++
	l.Stats.DeliveredBytes += int64(len(pkt.Payload))
	l.net.tracer.PacketDelivered(l.label, pkt.Payload, pkt.delay)
	l.to.deliver(pkt)
	l.net.putPacket(pkt)
}

func (l *Link) schedDeliver(pkt *Packet, delay sim.Duration) {
	pkt.link, pkt.delay = l, delay
	due := l.net.Sched.Now().Add(delay)
	if l.transitHead < len(l.transit) && due < l.lastDue {
		// Out of order with the pipe (reorder extra delay, or the
		// configured Delay shrank under in-flight traffic): a
		// per-packet event preserves its earlier arrival.
		l.net.Sched.AfterCall(delay, deliverCB, pkt)
		return
	}
	pkt.due = due
	l.lastDue = due
	l.transit = append(l.transit, pkt)
	if !l.delTimer.Active() {
		l.delTimer.Reset(delay)
	}
}

// onDeliver drains the head of the in-flight FIFO: every packet whose
// delivery time has arrived, in depart order, then re-arms for the
// next. Handlers may send on this same link during the loop; the
// bounds are re-read every iteration so their packets just extend the
// pipe.
func (l *Link) onDeliver() {
	now := l.net.Sched.Now()
	for l.transitHead < len(l.transit) {
		pkt := l.transit[l.transitHead]
		if pkt.due > now {
			break
		}
		l.transit[l.transitHead] = nil
		l.transitHead++
		deliverCB(pkt)
	}
	// Compact once the dead prefix dominates, amortizing the copy to
	// O(1) per delivered packet.
	if l.transitHead > 0 && l.transitHead*2 >= len(l.transit) {
		n := copy(l.transit, l.transit[l.transitHead:])
		clear(l.transit[n:])
		l.transit = l.transit[:n]
		l.transitHead = 0
	}
	if l.transitHead < len(l.transit) {
		l.delTimer.Reset(l.transit[l.transitHead].due.Sub(now))
	}
}

// lost applies the random and burst loss processes.
func (l *Link) lost(rnd *sim.Rand) bool {
	if rnd.Bernoulli(l.cfg.LossProb) {
		return true
	}
	if g := l.cfg.Burst; g != nil {
		if l.inBad {
			if rnd.Bernoulli(g.PBadToGood) {
				l.inBad = false
			}
		} else {
			if rnd.Bernoulli(g.PGoodToBad) {
				l.inBad = true
			}
		}
		p := g.LossGood
		if l.inBad {
			p = g.LossBad
		}
		return rnd.Bernoulli(p)
	}
	return false
}

// corrupt flips one to three bits of the payload. A shared buffer
// (sender retention for retransmit, a duplicate in flight, a router
// hand-off) is cloned first — copy-on-write — so the damage stays
// confined to this packet.
func (l *Link) corrupt(pkt *Packet, rnd *sim.Rand) {
	if len(pkt.Payload) == 0 {
		return
	}
	l.Stats.Corrupted++
	pkt.Corrupted = true
	if pkt.ref.Shared() {
		clone := pkt.ref.Clone()
		pkt.ref.Release()
		pkt.ref, pkt.Payload = clone, clone.Bytes()
	}
	nflips := 1 + rnd.Intn(3)
	for i := 0; i < nflips; i++ {
		pos := rnd.Intn(len(pkt.Payload))
		pkt.Payload[pos] ^= 1 << uint(rnd.Intn(8))
	}
}

// Router builds a node that forwards packets toward destinations over
// per-destination output links, modeling a shared bottleneck. Routes are
// matched on the packet's To field after re-addressing: the router
// forwards the payload unchanged onto the configured output link.
type Router struct {
	Node   *Node
	routes map[NodeID]*Link
	// Unrouted counts packets with no matching route.
	Unrouted int64
}

// NewRouter creates a router node.
func (n *Network) NewRouter(name string) *Router {
	r := &Router{routes: make(map[NodeID]*Link)}
	r.Node = n.NewNode(name)
	r.Node.SetHandler(r.forward)
	return r
}

// AddRoute forwards packets destined (after this hop) for dst onto out.
// The out link's To node need not be dst: multi-hop routes chain
// routers.
func (r *Router) AddRoute(dst *Node, out *Link) { r.routes[dst.id] = out }

func (r *Router) forward(p *Packet) {
	// The packet's To field carries the final destination (set by
	// SendVia or a previous router hop), so multi-hop routes chain
	// naturally. The payload is forwarded by reference — the next hop
	// retains the same buffer, so a multi-hop path copies zero times.
	out, ok := r.routes[p.To]
	if !ok {
		r.Unrouted++
		return
	}
	_ = out.sendRef(p.ref.Retain(), p.To)
}

// SendVia sends payload to final destination dst through a first-hop
// link toward a router: the packet's To field carries the final
// destination so each router on the path can look up its route. The
// payload is copied once into a pooled buffer.
func SendVia(first *Link, dst *Node, payload []byte) error {
	return first.send(payload, dst.id)
}

// SendRefVia is SendVia for a pooled buffer: no copy, the caller's
// reference transfers to the network (see Link.SendRef).
func SendRefVia(first *Link, dst *Node, ref *buf.Ref) error {
	return first.sendRef(ref, dst.id)
}
