package netsim

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/tracing"
)

func pair(t *testing.T, cfg LinkConfig, seed int64) (*sim.Scheduler, *Network, *Node, *Node, *Link) {
	t.Helper()
	s := sim.NewScheduler()
	n := New(s, seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	return s, n, a, b, n.NewLink(a, b, cfg)
}

func TestBasicDelivery(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{Delay: 5 * time.Millisecond}, 1)
	var got []byte
	var at sim.Time
	b.SetHandler(func(p *Packet) { got = append([]byte(nil), p.Payload...); at = s.Now() })
	if err := l.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("got %q", got)
	}
	if at != sim.Time(5*time.Millisecond) {
		t.Errorf("arrival at %v, want 5ms", at)
	}
	if l.Stats.Sent != 1 || l.Stats.Delivered != 1 {
		t.Errorf("stats = %+v", l.Stats)
	}
}

func TestSenderBufferReusable(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{}, 1)
	var got []byte
	b.SetHandler(func(p *Packet) { got = p.Payload })
	buf := []byte("aaaa")
	l.Send(buf)
	copy(buf, "bbbb") // mutate after send: receiver must still see "aaaa"
	s.Run()
	if string(got) != "aaaa" {
		t.Errorf("got %q, payload aliased sender buffer", got)
	}
}

func TestSerializationDelay(t *testing.T) {
	// 8000 bits at 1 Mbps = 8 ms serialization + 1 ms propagation.
	s, _, _, b, l := pair(t, LinkConfig{RateBps: 1e6, Delay: time.Millisecond}, 1)
	var at sim.Time
	b.SetHandler(func(p *Packet) { at = s.Now() })
	l.Send(make([]byte, 1000))
	s.Run()
	if want := sim.Time(9 * time.Millisecond); at != want {
		t.Errorf("arrival at %v, want %v", at, want)
	}
}

func TestBackToBackPacketsQueue(t *testing.T) {
	// Two 1000-byte packets sent together on a 1 Mbps link: second
	// finishes serializing at 16 ms.
	s, _, _, b, l := pair(t, LinkConfig{RateBps: 1e6}, 1)
	var arrivals []sim.Time
	b.SetHandler(func(p *Packet) { arrivals = append(arrivals, s.Now()) })
	l.Send(make([]byte, 1000))
	l.Send(make([]byte, 1000))
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != sim.Time(8*time.Millisecond) || arrivals[1] != sim.Time(16*time.Millisecond) {
		t.Errorf("arrivals = %v, want [8ms 16ms]", arrivals)
	}
}

func TestQueueLimitDropTail(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{RateBps: 1e6, QueueLimit: 2}, 1)
	delivered := 0
	b.SetHandler(func(p *Packet) { delivered++ })
	for i := 0; i < 5; i++ {
		l.Send(make([]byte, 100))
	}
	s.Run()
	if delivered != 2 {
		t.Errorf("delivered = %d, want 2", delivered)
	}
	if l.Stats.QueueDrops != 3 {
		t.Errorf("queue drops = %d, want 3", l.Stats.QueueDrops)
	}
}

func TestQueueDrainsOverTime(t *testing.T) {
	// With sends spaced beyond the serialization time, the queue never
	// fills.
	s, _, _, b, l := pair(t, LinkConfig{RateBps: 1e6, QueueLimit: 1}, 1)
	delivered := 0
	b.SetHandler(func(p *Packet) { delivered++ })
	for i := 0; i < 5; i++ {
		i := i
		s.At(sim.Time(i)*sim.Time(10*time.Millisecond), func() { l.Send(make([]byte, 100)) })
	}
	s.Run()
	if delivered != 5 {
		t.Errorf("delivered = %d, want 5 (drops: %d)", delivered, l.Stats.QueueDrops)
	}
}

func TestMTU(t *testing.T) {
	_, _, _, _, l := pair(t, LinkConfig{MTU: 100}, 1)
	if err := l.Send(make([]byte, 101)); !errors.Is(err, ErrTooBig) {
		t.Errorf("err = %v, want ErrTooBig", err)
	}
	if err := l.Send(make([]byte, 100)); err != nil {
		t.Errorf("100-byte send on MTU-100 link failed: %v", err)
	}
	if l.Stats.Rejected != 1 {
		t.Errorf("rejected = %d", l.Stats.Rejected)
	}
}

func TestRandomLossRate(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{LossProb: 0.25}, 7)
	delivered := 0
	b.SetHandler(func(p *Packet) { delivered++ })
	const n = 10000
	for i := 0; i < n; i++ {
		l.Send([]byte{1})
	}
	s.Run()
	rate := 1 - float64(delivered)/n
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("loss rate = %v, want ~0.25", rate)
	}
	if l.Stats.LineLosses != int64(n-delivered) {
		t.Errorf("LineLosses = %d, want %d", l.Stats.LineLosses, n-delivered)
	}
}

func TestBurstLossIsBursty(t *testing.T) {
	// Gilbert–Elliott with sticky states must produce longer loss runs
	// than independent loss at the same average rate.
	runLens := func(cfg LinkConfig, seed int64) (avgRun float64, lossRate float64) {
		s, _, _, b, l := pair(t, cfg, seed)
		const n = 20000
		received := make([]bool, n)
		next := 0
		b.SetHandler(func(p *Packet) { received[int(p.Payload[0])<<8|int(p.Payload[1])] = true })
		for i := 0; i < n; i++ {
			l.Send([]byte{byte(i >> 8), byte(i)})
		}
		s.Run()
		_ = next
		runs, losses, run := 0, 0, 0
		for _, ok := range received {
			if !ok {
				losses++
				run++
			} else if run > 0 {
				runs++
				run = 0
			}
		}
		if run > 0 {
			runs++
		}
		if runs == 0 {
			return 0, 0
		}
		return float64(losses) / float64(runs), float64(losses) / n
	}
	burstAvg, burstRate := runLens(LinkConfig{Burst: &Gilbert{
		PGoodToBad: 0.005, PBadToGood: 0.2, LossGood: 0, LossBad: 0.9,
	}}, 11)
	// Independent loss at roughly the same rate.
	indepAvg, _ := runLens(LinkConfig{LossProb: burstRate}, 13)
	if burstAvg <= indepAvg {
		t.Errorf("burst avg run %v <= independent %v (burst rate %v)", burstAvg, indepAvg, burstRate)
	}
}

func TestDuplication(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{DupProb: 0.5}, 3)
	delivered := 0
	b.SetHandler(func(p *Packet) { delivered++ })
	const n = 2000
	for i := 0; i < n; i++ {
		l.Send([]byte{1})
	}
	s.Run()
	extra := delivered - n
	if extra < n*4/10 || extra > n*6/10 {
		t.Errorf("duplicates = %d, want ~%d", extra, n/2)
	}
	if l.Stats.Dups != int64(extra) {
		t.Errorf("Stats.Dups = %d, want %d", l.Stats.Dups, extra)
	}
}

func TestReordering(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{
		RateBps: 1e8, Delay: time.Millisecond,
		ReorderProb: 0.3, ReorderDelay: 10 * time.Millisecond,
	}, 5)
	var order []int
	b.SetHandler(func(p *Packet) { order = append(order, int(p.Payload[0])<<8|int(p.Payload[1])) })
	const n = 1000
	for i := 0; i < n; i++ {
		l.Send([]byte{byte(i >> 8), byte(i)})
	}
	s.Run()
	if len(order) != n {
		t.Fatalf("delivered %d, want %d", len(order), n)
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("no reordering observed")
	}
	if l.Stats.Reordered == 0 {
		t.Error("Stats.Reordered = 0")
	}
}

func TestNoImpairmentsPreservesOrder(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{RateBps: 1e6, Delay: time.Millisecond}, 5)
	var order []int
	b.SetHandler(func(p *Packet) { order = append(order, int(p.Payload[0])) })
	for i := 0; i < 100; i++ {
		l.Send([]byte{byte(i)})
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order violated at %d: %v", i, order[:i+1])
		}
	}
}

func TestBitErrors(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{BitErrorRate: 1e-4}, 9)
	corrupted, clean := 0, 0
	payload := bytes.Repeat([]byte{0x55}, 1000) // 8000 bits; P(corrupt) ~ 0.55
	b.SetHandler(func(p *Packet) {
		if p.Corrupted {
			corrupted++
			if bytes.Equal(p.Payload, payload) {
				t.Error("packet marked corrupted but unchanged")
			}
		} else {
			clean++
			if !bytes.Equal(p.Payload, payload) {
				t.Error("packet changed but not marked corrupted")
			}
		}
	})
	const n = 2000
	for i := 0; i < n; i++ {
		l.Send(payload)
	}
	s.Run()
	frac := float64(corrupted) / n
	if frac < 0.45 || frac > 0.65 {
		t.Errorf("corruption rate = %v, want ~0.55", frac)
	}
}

func TestUndeliveredCounted(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{}, 1)
	l.Send([]byte{1})
	s.Run()
	if b.Undelivered != 1 {
		t.Errorf("Undelivered = %d, want 1", b.Undelivered)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s, _, _, b, l := pair(t, LinkConfig{LossProb: 0.1, DupProb: 0.1,
			ReorderProb: 0.1, ReorderDelay: time.Millisecond, BitErrorRate: 1e-5}, 42)
		delivered := int64(0)
		b.SetHandler(func(p *Packet) { delivered++ })
		for i := 0; i < 1000; i++ {
			l.Send(make([]byte, 100))
		}
		s.Run()
		return []int64{delivered, l.Stats.LineLosses, l.Stats.Dups, l.Stats.Reordered, l.Stats.Corrupted}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestRouterForwarding(t *testing.T) {
	s := sim.NewScheduler()
	n := New(s, 1)
	src := n.NewNode("src")
	dst := n.NewNode("dst")
	r := n.NewRouter("r")
	up := n.NewLink(src, r.Node, LinkConfig{Delay: time.Millisecond})
	down := n.NewLink(r.Node, dst, LinkConfig{Delay: time.Millisecond})
	r.AddRoute(dst, down)

	var got []byte
	dst.SetHandler(func(p *Packet) { got = p.Payload })
	if err := SendVia(up, dst, []byte("routed")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if string(got) != "routed" {
		t.Fatalf("got %q", got)
	}
}

func TestRouterMultiHop(t *testing.T) {
	s := sim.NewScheduler()
	n := New(s, 1)
	src := n.NewNode("src")
	dst := n.NewNode("dst")
	r1 := n.NewRouter("r1")
	r2 := n.NewRouter("r2")
	up := n.NewLink(src, r1.Node, LinkConfig{})
	mid := n.NewLink(r1.Node, r2.Node, LinkConfig{})
	down := n.NewLink(r2.Node, dst, LinkConfig{})
	r1.AddRoute(dst, mid)
	r2.AddRoute(dst, down)

	got := false
	dst.SetHandler(func(p *Packet) { got = true })
	SendVia(up, dst, []byte("x"))
	s.Run()
	if !got {
		t.Error("packet did not traverse two routers")
	}
}

func TestRouterUnrouted(t *testing.T) {
	s := sim.NewScheduler()
	n := New(s, 1)
	src := n.NewNode("src")
	dst := n.NewNode("dst")
	r := n.NewRouter("r")
	up := n.NewLink(src, r.Node, LinkConfig{})
	SendVia(up, dst, []byte("x"))
	s.Run()
	if r.Unrouted != 1 {
		t.Errorf("Unrouted = %d, want 1", r.Unrouted)
	}
}

func TestRouterSharedBottleneckCongestion(t *testing.T) {
	// Two senders share one slow output link with a short queue:
	// drop-tail congestion losses must appear (the paper's "data may be
	// lost due to congestion overflow").
	s := sim.NewScheduler()
	n := New(s, 1)
	s1 := n.NewNode("s1")
	s2 := n.NewNode("s2")
	dst := n.NewNode("dst")
	r := n.NewRouter("r")
	up1 := n.NewLink(s1, r.Node, LinkConfig{RateBps: 1e8})
	up2 := n.NewLink(s2, r.Node, LinkConfig{RateBps: 1e8})
	down := n.NewLink(r.Node, dst, LinkConfig{RateBps: 1e6, QueueLimit: 10})
	r.AddRoute(dst, down)

	delivered := 0
	dst.SetHandler(func(p *Packet) { delivered++ })
	for i := 0; i < 100; i++ {
		SendVia(up1, dst, make([]byte, 1000))
		SendVia(up2, dst, make([]byte, 1000))
	}
	s.Run()
	if down.Stats.QueueDrops == 0 {
		t.Error("no congestion drops at the bottleneck")
	}
	if delivered == 0 || delivered == 200 {
		t.Errorf("delivered = %d, want partial delivery", delivered)
	}
}

func TestDuplexLinks(t *testing.T) {
	s := sim.NewScheduler()
	n := New(s, 1)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, LinkConfig{})
	gotA, gotB := false, false
	a.SetHandler(func(p *Packet) { gotA = true })
	b.SetHandler(func(p *Packet) { gotB = true })
	ab.Send([]byte{1})
	ba.Send([]byte{2})
	s.Run()
	if !gotA || !gotB {
		t.Errorf("duplex delivery: a=%v b=%v", gotA, gotB)
	}
	if ab.From() != a || ab.To() != b || ba.From() != b || ba.To() != a {
		t.Error("duplex endpoints wrong")
	}
}

func TestNodeAccessors(t *testing.T) {
	s := sim.NewScheduler()
	n := New(s, 1)
	a := n.NewNode("alpha")
	if a.Name() != "alpha" {
		t.Errorf("Name = %q", a.Name())
	}
	b := n.NewNode("beta")
	if a.ID() == b.ID() {
		t.Error("node IDs not unique")
	}
}

func TestCrossNetworkLinkPanics(t *testing.T) {
	s := sim.NewScheduler()
	n1 := New(s, 1)
	n2 := New(s, 2)
	a := n1.NewNode("a")
	b := n2.NewNode("b")
	defer func() {
		if recover() == nil {
			t.Error("cross-network link did not panic")
		}
	}()
	n1.NewLink(a, b, LinkConfig{})
}

func TestLinkDownDropsNewSends(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{Delay: time.Millisecond}, 1)
	delivered := 0
	b.SetHandler(func(p *Packet) { delivered++ })
	l.SetDown(true)
	if !l.Down() {
		t.Fatal("link not down after SetDown(true)")
	}
	for i := 0; i < 3; i++ {
		if err := l.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if delivered != 0 {
		t.Errorf("delivered = %d on a down link", delivered)
	}
	if l.Stats.DownDrops != 3 {
		t.Errorf("down drops = %d, want 3", l.Stats.DownDrops)
	}
	// Down drops are distinct from queue and line losses.
	if l.Stats.QueueDrops != 0 || l.Stats.LineLosses != 0 {
		t.Errorf("misclassified drops: %+v", l.Stats)
	}
	l.SetDown(false)
	l.Send([]byte("y"))
	s.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d after link back up, want 1", delivered)
	}
}

func TestLinkDownDropsQueuedPackets(t *testing.T) {
	// Packets mid-serialization when the link goes down are dropped at
	// their departure instant under DropOnDown.
	s, _, _, b, l := pair(t, LinkConfig{RateBps: 1e6}, 1)
	delivered := 0
	b.SetHandler(func(p *Packet) { delivered++ })
	for i := 0; i < 4; i++ {
		l.Send(make([]byte, 1000)) // 8 ms serialization each
	}
	s.RunUntil(sim.Time(9 * time.Millisecond)) // first has departed
	l.SetDown(true)
	s.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
	if l.Stats.DownDrops != 3 {
		t.Errorf("down drops = %d, want 3", l.Stats.DownDrops)
	}
}

func TestLinkHoldOnDownParksAndReplays(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{RateBps: 1e6, OnDown: HoldOnDown}, 1)
	var arrivals []sim.Time
	var got []byte
	b.SetHandler(func(p *Packet) {
		arrivals = append(arrivals, s.Now())
		got = append(got, p.Payload[0])
	})
	l.SetDown(true)
	l.Send([]byte{1})
	l.Send([]byte{2})
	l.Send([]byte{3})
	if l.HeldLen() != 3 {
		t.Fatalf("held = %d, want 3", l.HeldLen())
	}
	s.RunUntil(sim.Time(50 * time.Millisecond))
	if len(arrivals) != 0 {
		t.Fatal("held packets delivered while down")
	}
	l.SetDown(false)
	s.Run()
	if string(got) != "\x01\x02\x03" {
		t.Errorf("order = %v, want FIFO 1,2,3", got)
	}
	// Serialization restarts at the up-transition: 1-byte packets at
	// 1 Mbps take 8 us each, back to back from t=50ms.
	if len(arrivals) != 3 || arrivals[0] != sim.Time(50*time.Millisecond+8*time.Microsecond) {
		t.Errorf("arrivals = %v", arrivals)
	}
	if l.Stats.HeldPackets != 3 || l.Stats.DownDrops != 0 {
		t.Errorf("stats = %+v", l.Stats)
	}
}

func TestLinkHoldOnDownMidFlight(t *testing.T) {
	// A packet serializing at down-transition is parked, not dropped,
	// and replays after the flap.
	s, _, _, b, l := pair(t, LinkConfig{RateBps: 1e6, OnDown: HoldOnDown}, 1)
	delivered := 0
	b.SetHandler(func(p *Packet) { delivered++ })
	l.Send(make([]byte, 1000)) // departs at 8 ms
	s.RunUntil(sim.Time(1 * time.Millisecond))
	l.SetDown(true)
	s.RunUntil(sim.Time(20 * time.Millisecond))
	if delivered != 0 || l.HeldLen() != 1 {
		t.Fatalf("delivered=%d held=%d mid-flap", delivered, l.HeldLen())
	}
	l.SetDown(false)
	s.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d after flap, want 1", delivered)
	}
}

func TestLinkHoldOnDownRespectsQueueLimit(t *testing.T) {
	_, _, _, _, l := pair(t, LinkConfig{RateBps: 1e6, QueueLimit: 2, OnDown: HoldOnDown}, 1)
	l.SetDown(true)
	for i := 0; i < 5; i++ {
		l.Send([]byte{byte(i)})
	}
	if l.HeldLen() != 2 {
		t.Errorf("held = %d, want 2 (QueueLimit)", l.HeldLen())
	}
	if l.Stats.QueueDrops != 3 {
		t.Errorf("queue drops = %d, want 3", l.Stats.QueueDrops)
	}
}

func TestUpdateConfigTakesEffect(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{Delay: time.Millisecond}, 1)
	delivered := 0
	b.SetHandler(func(p *Packet) { delivered++ })
	l.Send([]byte("a"))
	s.Run()
	cfg := l.Config()
	cfg.LossProb = 1 // degrade: total loss
	l.UpdateConfig(cfg)
	l.Send([]byte("b"))
	s.Run()
	cfg.LossProb = 0 // restore
	l.UpdateConfig(cfg)
	l.Send([]byte("c"))
	s.Run()
	if delivered != 2 {
		t.Errorf("delivered = %d, want 2", delivered)
	}
	if l.Stats.LineLosses != 1 {
		t.Errorf("line losses = %d, want 1", l.Stats.LineLosses)
	}
}

func TestLinksBetween(t *testing.T) {
	s := sim.NewScheduler()
	n := New(s, 1)
	a1, a2 := n.NewNode("a1"), n.NewNode("a2")
	b1 := n.NewNode("b1")
	ab, ba := n.NewDuplex(a1, b1, LinkConfig{})
	aa, _ := n.NewDuplex(a1, a2, LinkConfig{})
	cut := n.LinksBetween([]*Node{a1, a2}, []*Node{b1})
	if len(cut) != 2 {
		t.Fatalf("cut = %d links, want 2", len(cut))
	}
	for _, l := range cut {
		if l == aa {
			t.Error("intra-group link in cut set")
		}
	}
	if (cut[0] != ab && cut[1] != ab) || (cut[0] != ba && cut[1] != ba) {
		t.Error("cut set missing a crossing link")
	}
	if len(n.Links()) != 4 {
		t.Errorf("Links() = %d, want 4", len(n.Links()))
	}
}

// TestUpdateConfigShrinkBelowBacklog: shrinking QueueLimit under the
// live backlog must drop the excess (newest first) with the distinct
// "shrink" cause, never panic, and never deliver a disowned packet.
func TestUpdateConfigShrinkBelowBacklog(t *testing.T) {
	s, n, _, b, l := pair(t, LinkConfig{RateBps: 1e6, QueueLimit: 10}, 1)
	tr := tracing.New(s)
	n.SetTracer(tr)
	var got []byte
	b.SetHandler(func(p *Packet) { got = append(got, p.Payload[0]) })
	for i := 0; i < 8; i++ {
		if err := l.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if l.QueueLen() != 8 {
		t.Fatalf("queued = %d before shrink, want 8", l.QueueLen())
	}

	cfg := l.Config()
	cfg.QueueLimit = 3
	l.UpdateConfig(cfg) // all 8 already committed to serialization

	if l.QueueLen() != 3 {
		t.Errorf("queued = %d after shrink, want 3", l.QueueLen())
	}
	if l.Stats.ShrinkDrops != 5 {
		t.Errorf("shrink drops = %d, want 5", l.Stats.ShrinkDrops)
	}
	if l.Stats.QueueDrops != 0 {
		t.Errorf("queue drops = %d, want 0 (shrink is a distinct cause)", l.Stats.QueueDrops)
	}

	s.Run()
	// Oldest survive: the newest five were shed.
	if string(got) != "\x00\x01\x02" {
		t.Errorf("delivered = %v, want oldest three [0 1 2]", got)
	}
	if l.Stats.Delivered != 3 {
		t.Errorf("delivered stat = %d, want 3", l.Stats.Delivered)
	}

	shrinks := 0
	for _, e := range tr.Events() {
		if e.Kind == tracing.NetDrop && e.Cause == "shrink" {
			shrinks++
		}
	}
	if shrinks != 5 {
		t.Errorf("traced %d shrink drops, want 5", shrinks)
	}
}

// TestUpdateConfigShrinkHeldPackets: packets parked by HoldOnDown are
// freed outright by a shrink — before committed ones — and the
// survivors still replay in order on link-up.
func TestUpdateConfigShrinkHeldPackets(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{RateBps: 1e6, QueueLimit: 10, OnDown: HoldOnDown}, 1)
	var got []byte
	b.SetHandler(func(p *Packet) { got = append(got, p.Payload[0]) })
	l.SetDown(true)
	for i := 0; i < 5; i++ {
		l.Send([]byte{byte(i)})
	}
	if l.HeldLen() != 5 {
		t.Fatalf("held = %d, want 5", l.HeldLen())
	}

	cfg := l.Config()
	cfg.QueueLimit = 2
	l.UpdateConfig(cfg)

	if l.HeldLen() != 2 {
		t.Errorf("held = %d after shrink, want 2", l.HeldLen())
	}
	if l.Stats.ShrinkDrops != 3 {
		t.Errorf("shrink drops = %d, want 3", l.Stats.ShrinkDrops)
	}

	l.SetDown(false)
	s.Run()
	if string(got) != "\x00\x01" {
		t.Errorf("delivered = %v, want oldest two [0 1]", got)
	}
}

// TestUpdateConfigShrinkIdempotent: re-applying the same (or a looser)
// limit over an already-shed backlog drops nothing more, and growing
// the limit never resurrects shed packets.
func TestUpdateConfigShrinkIdempotent(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{RateBps: 1e6, QueueLimit: 10}, 1)
	delivered := 0
	b.SetHandler(func(p *Packet) { delivered++ })
	for i := 0; i < 6; i++ {
		l.Send(make([]byte, 100))
	}
	cfg := l.Config()
	cfg.QueueLimit = 2
	l.UpdateConfig(cfg)
	if l.Stats.ShrinkDrops != 4 {
		t.Fatalf("shrink drops = %d, want 4", l.Stats.ShrinkDrops)
	}
	l.UpdateConfig(cfg) // same limit again: nothing left to shed
	if l.Stats.ShrinkDrops != 4 {
		t.Errorf("re-shrink dropped more: %d, want 4", l.Stats.ShrinkDrops)
	}
	cfg.QueueLimit = 10
	l.UpdateConfig(cfg) // growing back must not resurrect anything
	s.Run()
	if delivered != 2 {
		t.Errorf("delivered = %d, want 2", delivered)
	}
	if l.QueueLen() != 0 {
		t.Errorf("queue gauge = %d after drain, want 0", l.QueueLen())
	}
}

// TestUpdateConfigShrinkUnlimited: dropping the limit to 0 (unlimited)
// sheds nothing regardless of backlog.
func TestUpdateConfigShrinkUnlimited(t *testing.T) {
	s, _, _, b, l := pair(t, LinkConfig{RateBps: 1e6, QueueLimit: 4}, 1)
	delivered := 0
	b.SetHandler(func(p *Packet) { delivered++ })
	for i := 0; i < 4; i++ {
		l.Send(make([]byte, 100))
	}
	cfg := l.Config()
	cfg.QueueLimit = 0
	l.UpdateConfig(cfg)
	if l.Stats.ShrinkDrops != 0 {
		t.Errorf("shrink drops = %d, want 0", l.Stats.ShrinkDrops)
	}
	s.Run()
	if delivered != 4 {
		t.Errorf("delivered = %d, want 4", delivered)
	}
}
