package netsim

import (
	"sort"
	"time"
)

// Named link profiles for the delay regimes the stack is expected to
// survive, from terrestrial round trips to the interplanetary
// parameters of the DTN literature: one-way delays of minutes,
// bandwidth-delay products of gigabytes, and links that vanish for
// tens of minutes behind the Sun (see internal/faults.Conjunction for
// the blackout schedule that pairs with these).
//
// The profiles deliberately leave impairments at zero — loss and
// blackout schedules are scenario decisions — and set QueueLimit
// generously: at these BDPs the constraint worth modeling is the pipe,
// not a router queue. A 50 Mb/s link at 4 minutes one-way holds
// ~1.5 GB in flight; netsim's per-link transit FIFO keeps that depth
// off the scheduler heap, so simulating it costs O(links), not
// O(packets in flight).

// Profiles maps profile names to link configurations:
//
//	"lan"       120 µs one-way, 1 Gb/s       — same-building reference
//	"wan"       40 ms one-way, 100 Mb/s      — continental fiber path
//	"leo"       20 ms one-way, 200 Mb/s      — low-Earth-orbit relay
//	"geo"       250 ms one-way, 50 Mb/s      — geostationary hop
//	"lunar"     1.3 s one-way, 100 Mb/s      — Earth–Moon (~2.6 s RTT)
//	"mars-near" 4 min one-way, 50 Mb/s       — Mars at conjunction-near
//	                                           approach (~8 min RTT,
//	                                           ~1.5 GB in flight)
//	"mars-far"  12 min one-way, 50 Mb/s      — Mars near solar
//	                                           conjunction (~24 min
//	                                           RTT, ~4.5 GB in flight)
var profiles = map[string]LinkConfig{
	"lan":       {RateBps: 1e9, Delay: 120 * time.Microsecond, QueueLimit: 256},
	"wan":       {RateBps: 100e6, Delay: 40 * time.Millisecond, QueueLimit: 512},
	"leo":       {RateBps: 200e6, Delay: 20 * time.Millisecond, QueueLimit: 512},
	"geo":       {RateBps: 50e6, Delay: 250 * time.Millisecond, QueueLimit: 1024},
	"lunar":     {RateBps: 100e6, Delay: 1300 * time.Millisecond, QueueLimit: 2048},
	"mars-near": {RateBps: 50e6, Delay: 4 * time.Minute, QueueLimit: 4096},
	"mars-far":  {RateBps: 50e6, Delay: 12 * time.Minute, QueueLimit: 4096},
}

// Profile returns the named link configuration and whether the name is
// known. The returned config is a copy; callers layer impairments
// (loss, blackout policies) on top freely.
func Profile(name string) (LinkConfig, bool) {
	cfg, ok := profiles[name]
	return cfg, ok
}

// ProfileNames returns the known profile names, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
