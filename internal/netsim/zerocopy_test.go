package netsim

import (
	"bytes"
	"testing"

	"repro/internal/buf"
	"repro/internal/sim"
)

// TestSendIsolatesCallerBuffer asserts that mutating the caller's slice
// after Send cannot corrupt the packet in flight: Send's single copy
// into the pool is the isolation boundary.
func TestSendIsolatesCallerBuffer(t *testing.T) {
	s := sim.NewScheduler()
	n := New(s, 1)
	a := n.NewNode("a")
	b := n.NewNode("b")
	l := n.NewLink(a, b, LinkConfig{Delay: sim.Duration(1e6)})

	var got []byte
	b.SetHandler(func(p *Packet) { got = append([]byte(nil), p.Payload...) })

	payload := []byte("payload-before-mutation")
	want := append([]byte(nil), payload...)
	if err := l.Send(payload); err != nil {
		t.Fatal(err)
	}
	// Scribble over the caller's buffer while the packet is in flight.
	for i := range payload {
		payload[i] = 0xFF
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("in-flight packet corrupted by post-send mutation: got %q, want %q", got, want)
	}
}

// TestForwardIsZeroCopy asserts the refcounted hand-off: the payload
// bytes delivered after a two-router path are the very bytes the sender
// put into the pool — zero per-hop copies.
func TestForwardIsZeroCopy(t *testing.T) {
	s := sim.NewScheduler()
	n := New(s, 1)
	src := n.NewNode("src")
	r1 := n.NewRouter("r1")
	r2 := n.NewRouter("r2")
	dst := n.NewNode("dst")
	first := n.NewLink(src, r1.Node, LinkConfig{})
	mid := n.NewLink(r1.Node, r2.Node, LinkConfig{})
	last := n.NewLink(r2.Node, dst, LinkConfig{})
	r1.AddRoute(dst, mid)
	r2.AddRoute(dst, last)

	pool := buf.NewPool()
	n.SetPool(pool)
	ref := pool.Get(64)
	for i := range ref.Bytes() {
		ref.Bytes()[i] = byte(i)
	}
	sent := &ref.Bytes()[0]

	var deliveredAddr *byte
	hops := 0
	dst.SetHandler(func(p *Packet) {
		deliveredAddr = &p.Payload[0]
		hops++
	})
	if err := SendRefVia(first, dst, ref); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if hops != 1 {
		t.Fatalf("delivered %d times, want 1", hops)
	}
	if deliveredAddr != sent {
		t.Error("payload was copied somewhere along the route")
	}
	// The last release happened at delivery: the slab is back in the pool.
	if st := pool.Stats(); st.Gets != 1 || st.Puts != 1 {
		t.Errorf("pool stats = %+v, want 1 get / 1 put", st)
	}
}

// TestDeliveryRecyclesBuffers asserts the steady-state loop closes:
// after a warm-up packet, send→deliver recycles the same pooled slab
// and allocates no new ones.
func TestDeliveryRecyclesBuffers(t *testing.T) {
	s := sim.NewScheduler()
	n := New(s, 1)
	a := n.NewNode("a")
	b := n.NewNode("b")
	l := n.NewLink(a, b, LinkConfig{})
	pool := buf.NewPool()
	n.SetPool(pool)
	b.SetHandler(func(p *Packet) {})

	payload := make([]byte, 512)
	for i := 0; i < 100; i++ {
		if err := l.Send(payload); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.Stats()
	if st.Gets != 100 || st.Puts != 100 {
		t.Errorf("gets/puts = %d/%d, want 100/100", st.Gets, st.Puts)
	}
	if st.News != 1 {
		t.Errorf("News = %d, want 1 (one warm slab reused throughout)", st.News)
	}
}

// TestCorruptionClonesSharedBuffer asserts copy-on-write: bit errors on
// one link must not damage another holder's view of the same buffer.
func TestCorruptionClonesSharedBuffer(t *testing.T) {
	s := sim.NewScheduler()
	n := New(s, 3)
	a := n.NewNode("a")
	b := n.NewNode("b")
	// BitErrorRate high enough that a 512-byte packet is always corrupted.
	l := n.NewLink(a, b, LinkConfig{BitErrorRate: 0.01})
	pool := buf.NewPool()
	n.SetPool(pool)

	corrupted := 0
	b.SetHandler(func(p *Packet) {
		if p.Corrupted {
			corrupted++
		}
	})

	ref := pool.Get(512)
	for i := range ref.Bytes() {
		ref.Bytes()[i] = byte(i)
	}
	want := append([]byte(nil), ref.Bytes()...)
	ref.Retain() // sender-side retention, as for retransmit
	if err := l.SendRef(ref); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("packet was not corrupted; raise BitErrorRate")
	}
	if !bytes.Equal(ref.Bytes(), want) {
		t.Error("corruption leaked into the retained copy (no copy-on-write)")
	}
	ref.Release()
}
