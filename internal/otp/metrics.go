package otp

import (
	"fmt"

	"repro/internal/metrics"
)

// connMetrics holds the connection's native instruments; the event
// counters in Stats are bridged as func-backed series so the struct
// stays the single source of truth (see internal/metrics).
type connMetrics struct {
	// segBytes is the distribution of DATA segment payload sizes.
	segBytes *metrics.Histogram
	// holStall is the distribution of head-of-line stall times: the
	// virtual time from buffering the first segment ahead of a gap to
	// the gap closing and the queue draining to the application. This
	// is the §5 cost ALF exists to remove — "a lost packet stops the
	// application, and since it is the bottleneck, it will never catch
	// up" — measured per stall.
	holStall *metrics.Histogram
}

// bindConnMetrics registers the connection's series, labeled by
// connection id plus any Config.MetricsLabels.
func bindConnMetrics(r *metrics.Registry, c *Conn) connMetrics {
	lb := append([]string{fmt.Sprintf("conn=%d", c.cfg.ConnID)}, c.cfg.MetricsLabels...)
	st := &c.Stats
	for _, e := range []struct {
		name string
		fn   func() int64
	}{
		{"otp.segments_sent", func() int64 { return st.SegmentsSent }},
		{"otp.bytes_sent", func() int64 { return st.BytesSent }},
		{"otp.retransmits", func() int64 { return st.Retransmits }},
		{"otp.timeouts", func() int64 { return st.Timeouts }},
		{"otp.fast_retransmits", func() int64 { return st.FastRetransmit }},
		{"otp.acks_sent", func() int64 { return st.AcksSent }},
		{"otp.segments_received", func() int64 { return st.SegmentsReceived }},
		{"otp.bytes_delivered", func() int64 { return st.BytesDelivered }},
		{"otp.checksum_drops", func() int64 { return st.ChecksumDrops }},
		{"otp.duplicates", func() int64 { return st.Duplicates }},
		{"otp.out_of_order", func() int64 { return st.OutOfOrder }},
		{"otp.window_drops", func() int64 { return st.WindowDrops }},
		{"otp.dup_acks", func() int64 { return st.DupAcks }},
		{"otp.bad_acks", func() int64 { return st.BadAcks }},
	} {
		r.CounterFunc(e.name, e.fn, lb...)
	}
	r.GaugeFunc("otp.dead", func() int64 { return st.Died }, lb...)
	r.GaugeFunc("otp.unacked_bytes", func() int64 { return int64(c.sndNxt - c.sndUna) }, lb...)
	r.GaugeFunc("otp.ooo_buffered_bytes", func() int64 { return int64(c.oooBytes) }, lb...)
	r.GaugeFunc("otp.srtt_ns", func() int64 { return int64(c.srtt) }, lb...)
	return connMetrics{
		segBytes: r.Histogram("otp.segment_bytes", lb...),
		holStall: r.Histogram("otp.hol_stall_ns", lb...),
	}
}
