package otp

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestConnMetrics checks the bridged Stats views and the native
// head-of-line stall histogram on a lossy transfer: losses must open
// stalls, recovery must close them, and every bridged series must
// equal its Stats field.
func TestConnMetrics(t *testing.T) {
	reg := metrics.New()
	sched := sim.NewScheduler()
	net := netsim.New(sched, 11)
	net.SetMetrics(reg)
	a, b := net.NewNode("a"), net.NewNode("b")
	ab, ba := net.NewDuplex(a, b, netsim.LinkConfig{
		RateBps: 1e7, Delay: 2 * time.Millisecond, LossProb: 0.03,
	})

	cfg := Config{MSS: 500, FastRetransmit: true, Metrics: reg}
	snd := New(sched, ab.Send, cfg)
	rcv := New(sched, ba.Send, Config{MSS: 500, FastRetransmit: true})
	a.SetHandler(func(p *netsim.Packet) { snd.HandleSegment(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { rcv.HandleSegment(p.Payload) })

	var got int64
	rcv.OnData = func(p []byte) { got += int64(len(p)) }
	const total = 200_000
	if err := snd.Send(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.Time(0).Add(60 * time.Second))
	if got != total {
		t.Fatalf("delivered %d/%d bytes", got, total)
	}
	if snd.Stats.Retransmits == 0 {
		t.Fatal("scenario did not exercise loss recovery")
	}

	snap := reg.Snapshot()
	views := map[string]int64{
		"otp.segments_sent":     snd.Stats.SegmentsSent,
		"otp.bytes_sent":        snd.Stats.BytesSent,
		"otp.retransmits":       snd.Stats.Retransmits,
		"otp.timeouts":          snd.Stats.Timeouts,
		"otp.fast_retransmits":  snd.Stats.FastRetransmit,
		"otp.acks_sent":         snd.Stats.AcksSent,
		"otp.segments_received": snd.Stats.SegmentsReceived,
		"otp.bytes_delivered":   snd.Stats.BytesDelivered,
		"otp.checksum_drops":    snd.Stats.ChecksumDrops,
		"otp.duplicates":        snd.Stats.Duplicates,
		"otp.out_of_order":      snd.Stats.OutOfOrder,
		"otp.window_drops":      snd.Stats.WindowDrops,
		"otp.dup_acks":          snd.Stats.DupAcks,
		"otp.bad_acks":          snd.Stats.BadAcks,
		"otp.srtt_ns":           int64(snd.SRTT()),
	}
	for name, want := range views {
		if got := snap.Value(name, "conn=0"); got != want {
			t.Errorf("%s = %d, Stats field = %d", name, got, want)
		}
	}
	segs, ok := snap.Get("otp.segment_bytes", "conn=0")
	if !ok || segs.Hist.Count != snd.Stats.SegmentsSent {
		t.Errorf("segment_bytes count = %+v, want %d", segs.Hist, snd.Stats.SegmentsSent)
	}
	if segs.Hist.Max != 500 {
		t.Errorf("segment_bytes max = %d, want MSS", segs.Hist.Max)
	}
}

// TestHeadOfLineStallHistogram forces a single deterministic loss and
// checks that exactly one stall is recorded with a plausible duration:
// the receiver sat on out-of-order data from the gap's appearance
// until the retransmission filled it.
func TestHeadOfLineStallHistogram(t *testing.T) {
	reg := metrics.New()
	sched := sim.NewScheduler()

	cfg := Config{MSS: 100, ConnID: 1}
	var rcv *Conn
	drop := 2 // drop the third data segment once
	sent := 0
	var snd *Conn
	toRcv := func(seg []byte) error {
		isData := len(seg) > 0 && seg[0]&flagData != 0
		if isData {
			if sent == drop {
				sent++
				return nil // the loss
			}
			sent++
		}
		cp := append([]byte(nil), seg...)
		sched.After(time.Millisecond, func() { rcv.HandleSegment(cp) })
		return nil
	}
	toSnd := func(seg []byte) error {
		cp := append([]byte(nil), seg...)
		sched.After(time.Millisecond, func() { snd.HandleSegment(cp) })
		return nil
	}
	snd = New(sched, toRcv, cfg)
	rcv = New(sched, toSnd, Config{MSS: 100, ConnID: 1, Metrics: reg})

	if err := snd.Send(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.Time(0).Add(10 * time.Second))
	if rcv.Delivered() != 1000 {
		t.Fatalf("delivered %d/1000", rcv.Delivered())
	}

	m, ok := reg.Snapshot().Get("otp.hol_stall_ns", "conn=1")
	if !ok || m.Hist.Count != 1 {
		t.Fatalf("hol_stall_ns = %+v, want exactly 1 stall", m.Hist)
	}
	// The stall spans at least the RTO wait (InitialRTO 200 ms default
	// minus the time already elapsed); it certainly exceeds one RTT.
	if min := m.Hist.Min; min < int64(2*time.Millisecond) {
		t.Errorf("stall duration = %v, implausibly short", time.Duration(min))
	}
}
