// Package otp implements the Ordered Transport Protocol — the paper's
// TCP model and the baseline every ALF experiment compares against.
//
// OTP numbers the bytes in the stream, delivers strictly in order,
// acknowledges cumulatively, retransmits from a sender-side copy on
// timeout (and optionally on triple duplicate ACKs), and paces with a
// sliding window. These are exactly the behaviours the paper interrogates:
// the sequence numbers "have no meaning to the application" (§5), and a
// single lost segment holds up all data behind it until recovery —
// head-of-line blocking for the presentation pipeline.
//
// The implementation is an event-driven state machine on a sim.Scheduler;
// it sends through any func([]byte) error (typically netsim.Link.Send)
// and receives via HandleSegment.
package otp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/buf"
	"repro/internal/checksum"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tracing"
)

// HeaderSize is the fixed OTP segment header length in bytes.
//
// Layout (big-endian):
//
//	0     flags (1=DATA, 2=ACK)
//	1     connection id
//	2:6   sequence number (stream offset of first payload byte)
//	6:10  cumulative acknowledgement (next expected stream offset)
//	10:12 advertised receive window (bytes, in 16-byte units)
//	12:14 Internet checksum over header+payload
//	14:16 payload length
const HeaderSize = 16

// Segment flags.
const (
	flagData = 1 << 0
	flagAck  = 1 << 1
)

// windowUnit scales the 16-bit advertised-window field.
const windowUnit = 16

// Errors.
var (
	ErrSegmentSize = errors.New("otp: segment too short")
	ErrBufferFull  = errors.New("otp: send buffer full")
	ErrWrongConn   = errors.New("otp: segment for another connection")
	ErrConnDead    = errors.New("otp: connection declared dead")
)

// Config parameterizes a connection. Zero fields take defaults.
type Config struct {
	// ConnID demultiplexes connections sharing a node.
	ConnID byte
	// MSS is the maximum payload bytes per segment (default 1000).
	MSS int
	// SendWindow bounds unacknowledged bytes in flight (default 64 KiB).
	SendWindow int
	// RecvWindow bounds receiver buffering (default 64 KiB). It is
	// advertised to the sender and caps out-of-order storage.
	RecvWindow int
	// SendBuffer bounds data the application may queue ahead of the
	// window (default 1 MiB).
	SendBuffer int
	// InitialRTO is the retransmission timeout before any RTT sample
	// (default 200 ms). MinRTO/MaxRTO clamp the adaptive value
	// (defaults 50 ms / 10 s).
	InitialRTO, MinRTO, MaxRTO sim.Duration
	// AckDelay batches acknowledgements: an ACK is sent at most this
	// long after the segment that provoked it (0 = immediate). The
	// delayed-ACK path is the out-of-band control of experiment A2.
	AckDelay sim.Duration
	// FailThreshold, when non-zero, declares the connection dead after
	// that many consecutive retransmission timeouts with no forward
	// progress — a partitioned peer then fails explicitly (Dead,
	// OnDead, Send returning ErrConnDead) instead of retrying at MaxRTO
	// forever. With the RTO ceiling the worst-case time to declare is
	// roughly FailThreshold x MaxRTO. Zero never gives up (the
	// original, pre-hardening behaviour).
	FailThreshold int
	// FastRetransmit enables retransmission on three duplicate ACKs.
	FastRetransmit bool
	// Metrics, if non-nil, registers this connection's event counters
	// (views over Conn.Stats), window gauges, the segment-size
	// histogram, and the head-of-line stall-time histogram with the
	// unified registry, labeled conn=<ConnID>.
	Metrics *metrics.Registry
	// MetricsLabels are extra "k=v" labels for this connection's
	// series. Both endpoints of a connection share a ConnID, so when
	// both register into one registry, each needs a distinguishing
	// label (e.g. "role=snd" / "role=rcv") or the later registration
	// replaces the earlier one's views.
	MetricsLabels []string
	// Tracer, if non-nil, records this endpoint's per-message lifecycle
	// events (message submit, segment tx/rx, head-of-line stalls) with
	// the span recorder. Both ends of a connection may share one tracer;
	// events merge by ConnID. A nil tracer costs one branch per event.
	Tracer *tracing.Tracer
	// Pool supplies the pooled buffers outgoing segments and the
	// receiver's out-of-order store are built from. Default buf.Default,
	// shared with netsim so the recycling loop closes end to end.
	Pool *buf.Pool
}

func (c *Config) fill() {
	if c.MSS == 0 {
		c.MSS = 1000
	}
	if c.SendWindow == 0 {
		c.SendWindow = 64 << 10
	}
	if c.RecvWindow == 0 {
		c.RecvWindow = 64 << 10
	}
	if c.SendBuffer == 0 {
		c.SendBuffer = 1 << 20
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = 200 * time.Millisecond
	}
	if c.MinRTO == 0 {
		c.MinRTO = 50 * time.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 10 * time.Second
	}
	if c.Pool == nil {
		c.Pool = buf.Default
	}
}

// Stats counts connection events.
type Stats struct {
	SegmentsSent   int64
	BytesSent      int64 // payload bytes, first transmissions only
	Retransmits    int64
	Timeouts       int64
	FastRetransmit int64
	AcksSent       int64

	SegmentsReceived int64
	BytesDelivered   int64
	ChecksumDrops    int64
	Duplicates       int64
	OutOfOrder       int64 // segments buffered ahead of a gap
	WindowDrops      int64 // segments beyond the receive window info
	DupAcks          int64
	BadAcks          int64 // acknowledgements for data never sent

	Died int64 // 1 once FailThreshold declared the connection dead
}

// Conn is one end of an OTP connection. Both directions carry data; the
// two directions are independent (ACKs are separate segments).
type Conn struct {
	cfg   Config
	sched *sim.Scheduler
	send  func([]byte) error

	// SendRef, when set, is preferred over the send function for
	// outgoing segments and transfers ownership of the pooled buffer's
	// reference to the callee — the zero-copy handoff into
	// netsim.SendRefVia. The callee must release (or forward) the
	// reference even on error.
	SendRef func(*buf.Ref) error

	// OnData receives in-order payload as it becomes deliverable. The
	// slice is valid only until the callback returns — it aliases either
	// the arriving segment or a pooled out-of-order buffer that is
	// recycled afterwards. Copy to retain.
	OnData func([]byte)
	// OnAcked, if set, fires whenever the acknowledged offset advances,
	// with the total acknowledged byte count.
	OnAcked func(total int64)
	// OnDead, if set, fires once when FailThreshold consecutive timeouts
	// without forward progress declare the connection dead.
	OnDead func()

	// Sender state (absolute stream offsets).
	sndUna   int64  // oldest unacknowledged
	sndNxt   int64  // next offset to transmit
	sndEnd   int64  // end of data written by the application
	sndBuf   []byte // bytes [sndUna, sndEnd)
	msgIndex uint64 // Send calls so far (the tracer's message identity)
	peerWnd  int    // last advertised window from peer
	dupAcks  int
	// Loss recovery (NewReno shape): while in recovery, each partial
	// ACK retransmits the next hole immediately instead of waiting out
	// another RTO.
	inRecovery bool
	recoverPt  int64 // sndNxt when recovery began

	// RTT estimation (Jacobson/Karn).
	srtt, rttvar sim.Duration
	rto          sim.Duration
	timedSeq     int64    // segment whose RTT is being measured
	timedAt      sim.Time // when it was sent
	timingActive bool
	rtoTimer     *sim.Timer

	// Receiver state.
	rcvNxt   int64
	ooo      map[int64]*buf.Ref // out-of-order segments by offset (pooled)
	oooBytes int
	ackTimer *sim.Timer
	ackOwed  bool

	// Head-of-line stall accounting: a stall opens when the first
	// segment is buffered ahead of a gap and closes when the gap fills
	// and the buffer drains (§5's in-order delivery cost).
	stalled    bool
	stallStart sim.Time

	// Failure detection: consecutive RTO expiries since the last ACK
	// that advanced sndUna. Crossing cfg.FailThreshold kills the
	// connection permanently.
	timeoutStreak int
	dead          bool

	m connMetrics

	Stats Stats
}

// New creates a connection endpoint. send transmits a wire segment
// toward the peer (e.g. a closure over netsim.Link.Send).
func New(sched *sim.Scheduler, send func([]byte) error, cfg Config) *Conn {
	cfg.fill()
	c := &Conn{
		cfg:   cfg,
		sched: sched,
		send:  send,
		// Until the peer advertises, assume one segment of window — the
		// conservative start keeps a fast sender from overrunning a
		// small receiver before the first ACK returns.
		peerWnd: cfg.MSS,
		rto:     cfg.InitialRTO,
		ooo:     make(map[int64]*buf.Ref),
	}
	c.rtoTimer = sched.NewTimer(c.onTimeout)
	c.ackTimer = sched.NewTimer(c.flushAck)
	c.m = bindConnMetrics(cfg.Metrics, c)
	return c
}

// Config returns the effective configuration.
func (c *Conn) Config() Config { return c.cfg }

// Buffered returns the bytes written but not yet acknowledged.
func (c *Conn) Buffered() int { return int(c.sndEnd - c.sndUna) }

// Acked returns the total bytes acknowledged by the peer.
func (c *Conn) Acked() int64 { return c.sndUna }

// Delivered returns the total bytes handed to OnData in order.
func (c *Conn) Delivered() int64 { return c.rcvNxt }

// Idle reports whether the sender has nothing outstanding or queued.
func (c *Conn) Idle() bool { return c.sndUna == c.sndEnd }

// Dead reports whether FailThreshold declared the connection dead. A
// dead connection stops all timers, rejects writes, and ignores
// arriving segments; the state is terminal.
func (c *Conn) Dead() bool { return c.dead }

// Send queues data for transmission. It returns ErrBufferFull when the
// send buffer cannot take the whole write (nothing is queued in that
// case).
func (c *Conn) Send(data []byte) error {
	if c.dead {
		return ErrConnDead
	}
	if c.Buffered()+len(data) > c.cfg.SendBuffer {
		return fmt.Errorf("%w: %d queued", ErrBufferFull, c.Buffered())
	}
	c.cfg.Tracer.MessageSubmitted(c.cfg.ConnID, c.msgIndex, c.sndEnd, len(data))
	c.msgIndex++
	c.sndBuf = append(c.sndBuf, data...)
	c.sndEnd += int64(len(data))
	c.pump()
	return nil
}

// sendWindow returns how many bytes past sndUna the sender may have in
// flight: the lesser of our configured window and the peer's advert.
func (c *Conn) sendWindow() int {
	w := c.cfg.SendWindow
	if c.peerWnd < w {
		w = c.peerWnd
	}
	return w
}

// pump transmits new segments while window and data allow.
func (c *Conn) pump() {
	for c.sndNxt < c.sndEnd {
		inFlight := int(c.sndNxt - c.sndUna)
		room := c.sendWindow() - inFlight
		if room <= 0 {
			if inFlight > 0 {
				return
			}
			// Zero-window persist: keep one byte moving so a window
			// update can never be missed forever. In-order data is
			// always accepted by the receiver, so this cannot livelock.
			room = 1
		}
		n := int(c.sndEnd - c.sndNxt)
		if n > c.cfg.MSS {
			n = c.cfg.MSS
		}
		if n > room {
			n = room
		}
		off := int(c.sndNxt - c.sndUna)
		c.transmit(c.sndNxt, c.sndBuf[off:off+n], false)
		c.sndNxt += int64(n)
	}
}

// transmit emits one DATA segment (with a piggybacked cumulative ACK).
func (c *Conn) transmit(seq int64, payload []byte, isRetx bool) {
	seg := c.makeSegment(flagData|flagAck, seq, payload)
	c.Stats.SegmentsSent++
	c.m.segBytes.Observe(int64(len(payload)))
	c.cfg.Tracer.SegmentSent(c.cfg.ConnID, seq, len(payload), isRetx)
	if isRetx {
		c.Stats.Retransmits++
	} else {
		c.Stats.BytesSent += int64(len(payload))
		// Karn: only time segments never retransmitted; one at a time.
		if !c.timingActive {
			c.timingActive = true
			c.timedSeq = seq + int64(len(payload))
			c.timedAt = c.sched.Now()
		}
	}
	c.sendOut(seg)
	if !c.rtoTimer.Active() {
		c.rtoTimer.Reset(c.rto)
	}
}

// sendOut hands one wire segment to the network, consuming the
// reference: zero-copy via SendRef when wired, else the classic
// byte-slice send (the network copies before the release).
func (c *Conn) sendOut(seg *buf.Ref) {
	if c.SendRef != nil {
		_ = c.SendRef(seg)
		return
	}
	_ = c.send(seg.Bytes())
	seg.Release()
}

// makeSegment builds a wire segment with checksum in a pooled buffer.
// The caller owns the returned reference.
func (c *Conn) makeSegment(flags byte, seq int64, payload []byte) *buf.Ref {
	ref := c.cfg.Pool.Get(HeaderSize + len(payload))
	seg := ref.Bytes()
	seg[0] = flags
	seg[1] = c.cfg.ConnID
	binary.BigEndian.PutUint32(seg[2:6], uint32(seq))
	binary.BigEndian.PutUint32(seg[6:10], uint32(c.rcvNxt))
	wnd := c.recvWindowAvail() / windowUnit
	if wnd > 0xFFFF {
		wnd = 0xFFFF
	}
	binary.BigEndian.PutUint16(seg[10:12], uint16(wnd))
	binary.BigEndian.PutUint16(seg[14:16], uint16(len(payload)))
	copy(seg[HeaderSize:], payload)
	seg[12], seg[13] = 0, 0
	ck := checksum.Sum16(seg)
	binary.BigEndian.PutUint16(seg[12:14], ck)
	return ref
}

// recvWindowAvail is the receive window we can advertise: configured
// capacity minus out-of-order bytes held.
func (c *Conn) recvWindowAvail() int {
	a := c.cfg.RecvWindow - c.oooBytes
	if a < 0 {
		a = 0
	}
	return a
}

// onTimeout handles RTO expiry: retransmit the oldest outstanding
// segment and back off.
func (c *Conn) onTimeout() {
	if c.dead || c.sndUna == c.sndNxt {
		return // dead, or nothing outstanding
	}
	c.Stats.Timeouts++
	c.timeoutStreak++
	if c.cfg.FailThreshold > 0 && c.timeoutStreak >= c.cfg.FailThreshold {
		c.markDead()
		return
	}
	c.timingActive = false // Karn: discard the sample
	c.enterRecovery()
	n := int(c.sndNxt - c.sndUna)
	if n > c.cfg.MSS {
		n = c.cfg.MSS
	}
	c.transmit(c.sndUna, c.sndBuf[:n], true)
	c.rto *= 2
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
	c.rtoTimer.Reset(c.rto)
}

// markDead terminates the connection: all timers stop, writes return
// ErrConnDead, and arriving segments are dropped. Explicit failure —
// the alternative is retrying at MaxRTO forever across a partition.
func (c *Conn) markDead() {
	c.dead = true
	c.Stats.Died = 1
	c.rtoTimer.Stop()
	c.ackTimer.Stop()
	c.ackOwed = false
	// Data buffered ahead of a gap can never be delivered now; recycle it.
	for off, held := range c.ooo {
		delete(c.ooo, off)
		held.Release()
	}
	c.oooBytes = 0
	if c.OnDead != nil {
		c.OnDead()
	}
}

// HandleSegment processes one arriving wire segment (the node handler
// should pass packet payloads here). Segments for other connection IDs
// are reported with ErrWrongConn so a demultiplexer can try elsewhere.
func (c *Conn) HandleSegment(seg []byte) error {
	if c.dead {
		return nil
	}
	if len(seg) < HeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrSegmentSize, len(seg))
	}
	if seg[1] != c.cfg.ConnID {
		return ErrWrongConn
	}
	if !checksum.Verify16(seg) {
		c.Stats.ChecksumDrops++
		return nil
	}
	flags := seg[0]
	plen := int(binary.BigEndian.Uint16(seg[14:16]))
	if len(seg) < HeaderSize+plen {
		c.Stats.ChecksumDrops++
		return nil
	}
	ack := extend(binary.BigEndian.Uint32(seg[6:10]), c.sndUna)
	wnd := int(binary.BigEndian.Uint16(seg[10:12])) * windowUnit
	c.peerWnd = wnd

	if flags&flagAck != 0 {
		c.handleAck(ack)
	}
	if flags&flagData != 0 {
		c.Stats.SegmentsReceived++
		seq := extend(binary.BigEndian.Uint32(seg[2:6]), c.rcvNxt)
		c.handleData(seq, seg[HeaderSize:HeaderSize+plen])
	}
	return nil
}

// extend widens a 32-bit wire sequence number to 64 bits near a
// reference offset (handles wrap for streams past 4 GiB).
func extend(w uint32, near int64) int64 {
	base := near &^ 0xFFFFFFFF
	v := base | int64(w)
	if v < near-1<<31 {
		v += 1 << 32
	} else if v > near+1<<31 {
		v -= 1 << 32
	}
	return v
}

func (c *Conn) handleAck(ack int64) {
	switch {
	case ack > c.sndNxt:
		// Acknowledgement for data never sent: a broken or forged peer.
		// RFC-style behaviour is to ignore it.
		c.Stats.BadAcks++
	case ack > c.sndUna:
		adv := int(ack - c.sndUna)
		c.sndBuf = c.sndBuf[adv:]
		c.sndUna = ack
		if c.sndNxt < c.sndUna {
			c.sndNxt = c.sndUna
		}
		c.dupAcks = 0
		c.timeoutStreak = 0 // forward progress: the peer is alive
		// RTT sample (Karn-filtered).
		if c.timingActive && ack >= c.timedSeq {
			c.sample(c.sched.Now().Sub(c.timedAt))
			c.timingActive = false
		} else if c.srtt > 0 {
			// Forward progress collapses any exponential backoff back
			// to the estimator-derived timeout.
			c.deriveRTO()
		}
		if c.inRecovery {
			if ack >= c.recoverPt {
				c.inRecovery = false
			} else {
				// Partial ACK: the next hole starts at the new sndUna;
				// retransmit it now rather than after another timeout.
				n := int(c.sndNxt - c.sndUna)
				if n > c.cfg.MSS {
					n = c.cfg.MSS
				}
				c.transmit(c.sndUna, c.sndBuf[:n], true)
			}
		}
		if c.sndUna == c.sndNxt {
			c.rtoTimer.Stop()
		} else {
			c.rtoTimer.Reset(c.rto)
		}
		if c.OnAcked != nil {
			c.OnAcked(c.sndUna)
		}
		c.pump()
	case ack == c.sndUna && c.sndNxt > c.sndUna:
		c.Stats.DupAcks++
		c.dupAcks++
		if c.cfg.FastRetransmit && c.dupAcks == 3 {
			c.Stats.FastRetransmit++
			c.enterRecovery()
			n := int(c.sndNxt - c.sndUna)
			if n > c.cfg.MSS {
				n = c.cfg.MSS
			}
			c.transmit(c.sndUna, c.sndBuf[:n], true)
		}
	}
}

// enterRecovery records the stream point that ends loss recovery.
func (c *Conn) enterRecovery() {
	c.inRecovery = true
	if c.sndNxt > c.recoverPt {
		c.recoverPt = c.sndNxt
	}
}

// sample folds one RTT measurement into SRTT/RTTVAR and derives the RTO
// (Jacobson's algorithm).
func (c *Conn) sample(rtt sim.Duration) {
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		d := c.srtt - rtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.deriveRTO()
}

// deriveRTO recomputes the timeout from the smoothed estimators,
// clamped to the configured bounds.
func (c *Conn) deriveRTO() {
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.cfg.MinRTO {
		c.rto = c.cfg.MinRTO
	}
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
}

// RTO returns the current retransmission timeout (for tests).
func (c *Conn) RTO() sim.Duration { return c.rto }

// SRTT returns the smoothed round-trip estimate (for tests).
func (c *Conn) SRTT() sim.Duration { return c.srtt }

func (c *Conn) handleData(seq int64, payload []byte) {
	end := seq + int64(len(payload))
	switch {
	case end <= c.rcvNxt:
		// Entirely old: a duplicate. Re-ack so the sender advances.
		c.Stats.Duplicates++
		c.scheduleAck()
		return
	case seq > c.rcvNxt:
		// Ahead of a gap: buffer within window.
		if _, dup := c.ooo[seq]; dup {
			c.Stats.Duplicates++
			c.scheduleAck()
			return
		}
		if int(seq-c.rcvNxt)+len(payload) > c.cfg.RecvWindow {
			c.Stats.WindowDrops++
			return
		}
		c.Stats.OutOfOrder++
		if !c.stalled {
			// First data held back by a gap: head-of-line stall opens.
			c.stalled = true
			c.stallStart = c.sched.Now()
			c.cfg.Tracer.StallOpened(c.cfg.ConnID, c.rcvNxt)
		}
		c.cfg.Tracer.SegmentBuffered(c.cfg.ConnID, seq, len(payload))
		held := c.cfg.Pool.Get(len(payload))
		copy(held.Bytes(), payload)
		c.ooo[seq] = held
		c.oooBytes += len(payload)
		c.scheduleAck()
		return
	}
	// Overlaps rcvNxt: deliver the new part.
	fresh := payload[c.rcvNxt-seq:]
	c.deliver(fresh)
	// Drain out-of-order segments that are now contiguous. A
	// retransmission may span different boundaries than the original
	// segments, so entries can overlap rcvNxt partially or be wholly
	// stale; handle all three cases.
	for progressed := true; progressed; {
		progressed = false
		for off, held := range c.ooo {
			if off > c.rcvNxt {
				continue
			}
			delete(c.ooo, off)
			p := held.Bytes()
			c.oooBytes -= len(p)
			if end := off + int64(len(p)); end > c.rcvNxt {
				c.deliver(p[c.rcvNxt-off:])
			}
			held.Release()
			progressed = true
		}
	}
	if c.stalled && len(c.ooo) == 0 {
		// The gap closed and everything behind it flushed: the
		// head-of-line stall ends.
		c.stalled = false
		c.m.holStall.ObserveDuration(c.sched.Now().Sub(c.stallStart))
		c.cfg.Tracer.StallClosed(c.cfg.ConnID, c.sched.Now().Sub(c.stallStart))
	}
	c.scheduleAck()
}

func (c *Conn) deliver(p []byte) {
	c.cfg.Tracer.SegmentDelivered(c.cfg.ConnID, c.rcvNxt, len(p))
	c.rcvNxt += int64(len(p))
	c.Stats.BytesDelivered += int64(len(p))
	if c.OnData != nil {
		c.OnData(p)
	}
}

// scheduleAck sends an ACK now or arms the delayed-ACK timer.
func (c *Conn) scheduleAck() {
	if c.cfg.AckDelay == 0 {
		c.flushAck()
		return
	}
	c.ackOwed = true
	if !c.ackTimer.Active() {
		c.ackTimer.Reset(c.cfg.AckDelay)
	}
}

func (c *Conn) flushAck() {
	c.ackOwed = false
	c.ackTimer.Stop()
	c.Stats.AcksSent++
	c.sendOut(c.makeSegment(flagAck, 0, nil))
}

// OOOSegments returns the offsets currently buffered ahead of a gap
// (sorted), for tests.
func (c *Conn) OOOSegments() []int64 {
	var offs []int64
	for o := range c.ooo {
		offs = append(offs, o)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	return offs
}
