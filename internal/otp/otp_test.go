package otp

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// testPair wires two connection endpoints across a duplex netsim link.
type testPair struct {
	sched    *sim.Scheduler
	net      *netsim.Network
	ab, ba   *netsim.Link
	sender   *Conn
	receiver *Conn
	got      *bytes.Buffer
}

func newPair(t *testing.T, linkCfg netsim.LinkConfig, connCfg Config, seed int64) *testPair {
	t.Helper()
	s := sim.NewScheduler()
	n := netsim.New(s, seed)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, linkCfg)

	p := &testPair{sched: s, net: n, ab: ab, ba: ba, got: &bytes.Buffer{}}
	p.sender = New(s, ab.Send, connCfg)
	p.receiver = New(s, ba.Send, connCfg)
	a.SetHandler(func(pk *netsim.Packet) { p.sender.HandleSegment(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { p.receiver.HandleSegment(pk.Payload) })
	p.receiver.OnData = func(d []byte) { p.got.Write(d) }
	return p
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + i>>8)
	}
	return b
}

func TestInOrderTransfer(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{RateBps: 1e7, Delay: time.Millisecond}, Config{}, 1)
	data := pattern(50_000)
	if err := p.sender.Send(data); err != nil {
		t.Fatal(err)
	}
	p.sched.Run()
	if !bytes.Equal(p.got.Bytes(), data) {
		t.Fatalf("received %d bytes, mismatch", p.got.Len())
	}
	if !p.sender.Idle() {
		t.Error("sender not idle after full ack")
	}
	if p.sender.Stats.Retransmits != 0 {
		t.Errorf("retransmits on a clean link: %d", p.sender.Stats.Retransmits)
	}
}

func TestMultipleWrites(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{}, 1)
	var want []byte
	for i := 0; i < 20; i++ {
		chunk := pattern(777)
		want = append(want, chunk...)
		if err := p.sender.Send(chunk); err != nil {
			t.Fatal(err)
		}
	}
	p.sched.Run()
	if !bytes.Equal(p.got.Bytes(), want) {
		t.Fatal("mismatch across multiple writes")
	}
}

func TestSegmentationRespectsMSS(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{MTU: 256 + HeaderSize, Delay: time.Millisecond},
		Config{MSS: 256}, 1)
	data := pattern(10_000)
	p.sender.Send(data)
	p.sched.Run()
	if !bytes.Equal(p.got.Bytes(), data) {
		t.Fatal("mismatch (likely MTU rejection => MSS not respected)")
	}
	if p.ab.Stats.Rejected != 0 {
		t.Errorf("oversize segments: %d", p.ab.Stats.Rejected)
	}
}

func TestLossRecoveryByTimeout(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.05},
		Config{AckDelay: 0}, 3)
	data := pattern(100_000)
	p.sender.Send(data)
	p.sched.Run()
	if !bytes.Equal(p.got.Bytes(), data) {
		t.Fatalf("received %d of %d bytes", p.got.Len(), len(data))
	}
	if p.sender.Stats.Retransmits == 0 {
		t.Error("expected retransmissions on a lossy link")
	}
}

func TestLossRecoveryFastRetransmit(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.03},
		Config{FastRetransmit: true}, 5)
	data := pattern(200_000)
	p.sender.Send(data)
	p.sched.Run()
	if !bytes.Equal(p.got.Bytes(), data) {
		t.Fatalf("received %d of %d bytes", p.got.Len(), len(data))
	}
	if p.sender.Stats.FastRetransmit == 0 {
		t.Error("fast retransmit never fired")
	}
}

func TestReorderingTolerated(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: 2 * time.Millisecond,
		ReorderProb: 0.2, ReorderDelay: 5 * time.Millisecond}, Config{}, 7)
	data := pattern(100_000)
	p.sender.Send(data)
	p.sched.Run()
	if !bytes.Equal(p.got.Bytes(), data) {
		t.Fatal("reordered stream corrupted")
	}
	if p.receiver.Stats.OutOfOrder == 0 {
		t.Error("no out-of-order segments buffered despite link reordering")
	}
}

func TestDuplicationTolerated(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond, DupProb: 0.3}, Config{}, 9)
	data := pattern(50_000)
	p.sender.Send(data)
	p.sched.Run()
	if !bytes.Equal(p.got.Bytes(), data) {
		t.Fatal("duplicated stream corrupted")
	}
	if p.receiver.Stats.Duplicates == 0 {
		t.Error("no duplicates recorded despite link duplication")
	}
}

func TestCorruptionDetected(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond, BitErrorRate: 1e-6}, Config{}, 11)
	data := pattern(200_000)
	p.sender.Send(data)
	p.sched.Run()
	if !bytes.Equal(p.got.Bytes(), data) {
		t.Fatal("corruption reached the application through the checksum")
	}
	if p.receiver.Stats.ChecksumDrops == 0 {
		t.Error("no checksum drops despite bit errors")
	}
}

func TestEverythingAtOnce(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{
		RateBps: 5e6, Delay: 3 * time.Millisecond, QueueLimit: 50,
		LossProb: 0.02, DupProb: 0.02, ReorderProb: 0.05,
		ReorderDelay: 4 * time.Millisecond, BitErrorRate: 1e-7,
	}, Config{FastRetransmit: true, AckDelay: time.Millisecond}, 13)
	data := pattern(300_000)
	p.sender.Send(data)
	p.sched.Run()
	if !bytes.Equal(p.got.Bytes(), data) {
		t.Fatalf("hostile link corrupted stream: got %d of %d bytes", p.got.Len(), len(data))
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	// The paper's stall: drop exactly one segment; everything behind it
	// must wait about an RTO before any delivery past the gap.
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{Delay: time.Millisecond})

	cfg := Config{MSS: 1000, InitialRTO: 100 * time.Millisecond}
	sender := New(s, func(seg []byte) error { return ab.Send(seg) }, cfg)
	receiver := New(s, ba.Send, cfg)

	dropNext := false
	dropped := 0
	a.SetHandler(func(pk *netsim.Packet) { sender.HandleSegment(pk.Payload) })
	origSend := sender.send
	sender.send = func(seg []byte) error {
		if dropNext && seg[0]&flagData != 0 && dropped == 0 {
			dropped++
			return nil // swallow one data segment
		}
		return origSend(seg)
	}

	var deliveries []sim.Time
	b.SetHandler(func(pk *netsim.Packet) { receiver.HandleSegment(pk.Payload) })
	receiver.OnData = func(d []byte) { deliveries = append(deliveries, s.Now()) }

	sender.Send(pattern(5000)) // segments 1..5
	dropNext = true
	// Segment 1 goes out during Send... drop the *second* transmission:
	// easier: drop the first data segment after enabling, which is seg 2+
	// queued by window; but all 5 were pumped synchronously. Instead drop
	// on retransmission path: simpler variant below.
	s.Run()
	if dropped == 0 {
		t.Skip("drop hook missed the window; covered by TestHOLStallDuration")
	}
	_ = deliveries
}

func TestHOLStallDuration(t *testing.T) {
	// Deterministic head-of-line blocking: intercept the sender's send
	// function and drop the 3rd data segment's first transmission. The
	// receiver must get segments 1-2 promptly, then nothing until the
	// RTO retransmission, then 3-10 in a burst.
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	a := n.NewNode("a")
	b := n.NewNode("b")
	var ab, ba *netsim.Link
	ab, ba = n.NewDuplex(a, b, netsim.LinkConfig{Delay: time.Millisecond})

	cfg := Config{MSS: 1000, InitialRTO: 100 * time.Millisecond, MinRTO: 100 * time.Millisecond}
	dataSegs := 0
	var sender *Conn
	send := func(seg []byte) error {
		if seg[0]&flagData != 0 {
			dataSegs++
			if dataSegs == 3 {
				return nil // lose segment 3 once
			}
		}
		return ab.Send(seg)
	}
	sender = New(s, send, cfg)
	receiver := New(s, ba.Send, cfg)
	a.SetHandler(func(pk *netsim.Packet) { sender.HandleSegment(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { receiver.HandleSegment(pk.Payload) })

	type delivery struct {
		at    sim.Time
		bytes int
	}
	var log []delivery
	receiver.OnData = func(d []byte) { log = append(log, delivery{s.Now(), len(d)}) }

	sender.Send(pattern(10_000))
	s.Run()

	total := 0
	for _, d := range log {
		total += d.bytes
	}
	if total != 10_000 {
		t.Fatalf("delivered %d bytes", total)
	}
	// Deliveries 1-2 arrive ~1ms; delivery of segment 3 must wait for
	// the retransmission at ~InitialRTO.
	if len(log) < 3 {
		t.Fatalf("log too short: %v", log)
	}
	if log[1].at > sim.Time(10*time.Millisecond) {
		t.Errorf("segment 2 late: %v", log[1].at)
	}
	stallEnd := log[2].at
	if stallEnd < sim.Time(90*time.Millisecond) {
		t.Errorf("segment 3 delivered at %v, expected >= ~RTO (head-of-line stall)", stallEnd)
	}
	// Everything behind the gap arrives in the same burst.
	last := log[len(log)-1].at
	if last.Sub(stallEnd) > 10*time.Millisecond {
		t.Errorf("post-gap burst spread %v, want tight", last.Sub(stallEnd))
	}
	if receiver.Stats.OutOfOrder == 0 {
		t.Error("segments 4-10 should have been buffered out of order")
	}
}

func TestFlowControlWindowLimitsInFlight(t *testing.T) {
	// A tiny receive window must throttle the sender: with a 4 KiB
	// window and 100 KiB to move over a 2ms-RTT link, the transfer takes
	// at least (100/4) RTTs.
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond},
		Config{SendWindow: 1 << 20, RecvWindow: 4096, MSS: 1024}, 1)
	data := pattern(100 << 10)
	p.sender.Send(data)
	p.sched.Run()
	if !bytes.Equal(p.got.Bytes(), data) {
		t.Fatal("window-limited transfer corrupted")
	}
	elapsed := p.sched.Now()
	if elapsed < sim.Time(40*time.Millisecond) {
		t.Errorf("transfer finished in %v; window not limiting", elapsed)
	}
}

func TestSendBufferBound(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond},
		Config{SendBuffer: 10_000}, 1)
	if err := p.sender.Send(pattern(10_001)); err == nil {
		t.Error("oversized write accepted")
	}
	if err := p.sender.Send(pattern(10_000)); err != nil {
		t.Errorf("exact-fit write rejected: %v", err)
	}
}

func TestDelayedAcksReduceAckTraffic(t *testing.T) {
	run := func(delay sim.Duration) int64 {
		p := newPair(t, netsim.LinkConfig{RateBps: 1e7, Delay: time.Millisecond},
			Config{AckDelay: delay}, 1)
		p.sender.Send(pattern(100_000))
		p.sched.Run()
		if p.got.Len() != 100_000 {
			t.Fatalf("transfer failed with AckDelay=%v", delay)
		}
		return p.receiver.Stats.AcksSent
	}
	immediate := run(0)
	delayed := run(5 * time.Millisecond)
	if delayed >= immediate {
		t.Errorf("delayed acks (%d) not fewer than immediate (%d)", delayed, immediate)
	}
}

func TestConnIDDemux(t *testing.T) {
	// Two connections share the pair of nodes; segments must reach the
	// right one.
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{Delay: time.Millisecond})

	mkConns := func(id byte) (*Conn, *Conn, *bytes.Buffer) {
		cfg := Config{ConnID: id}
		snd := New(s, ab.Send, cfg)
		rcv := New(s, ba.Send, cfg)
		buf := &bytes.Buffer{}
		rcv.OnData = func(d []byte) { buf.Write(d) }
		return snd, rcv, buf
	}
	s1, r1, b1 := mkConns(1)
	s2, r2, b2 := mkConns(2)

	a.SetHandler(func(pk *netsim.Packet) {
		if s1.HandleSegment(pk.Payload) == ErrWrongConn {
			s2.HandleSegment(pk.Payload)
		}
	})
	b.SetHandler(func(pk *netsim.Packet) {
		if r1.HandleSegment(pk.Payload) == ErrWrongConn {
			r2.HandleSegment(pk.Payload)
		}
	})

	d1 := bytes.Repeat([]byte{1}, 30_000)
	d2 := bytes.Repeat([]byte{2}, 30_000)
	s1.Send(d1)
	s2.Send(d2)
	s.Run()
	if !bytes.Equal(b1.Bytes(), d1) || !bytes.Equal(b2.Bytes(), d2) {
		t.Error("connection demultiplexing mixed streams")
	}
}

func TestRTTEstimation(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: 10 * time.Millisecond}, Config{}, 1)
	p.sender.Send(pattern(50_000))
	p.sched.Run()
	srtt := p.sender.SRTT()
	if srtt < 15*time.Millisecond || srtt > 40*time.Millisecond {
		t.Errorf("SRTT = %v, want ~20ms", srtt)
	}
	if p.sender.RTO() < p.sender.Config().MinRTO {
		t.Errorf("RTO %v below MinRTO", p.sender.RTO())
	}
}

func TestRTOBacksOffUnderBlackout(t *testing.T) {
	// Destination drops everything: RTO must grow exponentially and
	// stop at MaxRTO.
	s := sim.NewScheduler()
	cfg := Config{InitialRTO: 10 * time.Millisecond, MaxRTO: 100 * time.Millisecond}
	c := New(s, func([]byte) error { return nil }, cfg) // black hole
	c.Send(pattern(100))
	s.RunUntil(sim.Time(2 * time.Second))
	if c.Stats.Timeouts < 5 {
		t.Errorf("timeouts = %d, want several", c.Stats.Timeouts)
	}
	if c.RTO() != 100*time.Millisecond {
		t.Errorf("RTO = %v, want clamped at 100ms", c.RTO())
	}
	if c.Acked() != 0 {
		t.Error("black hole acked data?")
	}
	// Stop the scheduler cleanly: cancel by acking everything.
}

func TestOnAckedCallback(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{}, 1)
	var acks []int64
	p.sender.OnAcked = func(total int64) { acks = append(acks, total) }
	p.sender.Send(pattern(10_000))
	p.sched.Run()
	if len(acks) == 0 || acks[len(acks)-1] != 10_000 {
		t.Errorf("acks = %v", acks)
	}
	for i := 1; i < len(acks); i++ {
		if acks[i] <= acks[i-1] {
			t.Error("OnAcked not monotone")
		}
	}
}

func TestShortSegmentRejected(t *testing.T) {
	s := sim.NewScheduler()
	c := New(s, func([]byte) error { return nil }, Config{})
	if err := c.HandleSegment(make([]byte, HeaderSize-1)); err == nil {
		t.Error("short segment accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, Config{}, 1)
	data := pattern(25_000)
	p.sender.Send(data)
	p.sched.Run()
	st := p.sender.Stats
	if st.BytesSent != 25_000 {
		t.Errorf("BytesSent = %d", st.BytesSent)
	}
	if p.receiver.Stats.BytesDelivered != 25_000 {
		t.Errorf("BytesDelivered = %d", p.receiver.Stats.BytesDelivered)
	}
	if p.receiver.Delivered() != 25_000 {
		t.Errorf("Delivered() = %d", p.receiver.Delivered())
	}
	if got := p.sender.Acked(); got != 25_000 {
		t.Errorf("Acked() = %d", got)
	}
}

func TestExtendSequence(t *testing.T) {
	cases := []struct {
		w    uint32
		near int64
		want int64
	}{
		{0, 0, 0},
		{100, 50, 100},
		{0xFFFFFFFF, 0xFFFFFF00, 0xFFFFFFFF},
		{5, 0xFFFFFFF0, 0x100000005},          // wrapped forward
		{0xFFFFFFF0, 0x100000005, 0xFFFFFFF0}, // just behind the wrap
	}
	for _, c := range cases {
		if got := extend(c.w, c.near); got != c.want {
			t.Errorf("extend(%#x, %#x) = %#x, want %#x", c.w, c.near, got, c.want)
		}
	}
}

func TestChunkedWritesEquivalentProperty(t *testing.T) {
	// Any split of the same byte stream into writes yields identical
	// delivery (with deterministic impairments fixed by the seed).
	f := func(splits []uint8) bool {
		data := pattern(20_000)
		p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.02}, Config{}, 99)
		off := 0
		for _, sp := range splits {
			n := int(sp) + 1
			if off+n > len(data) {
				break
			}
			if err := p.sender.Send(data[off : off+n]); err != nil {
				return false
			}
			off += n
		}
		if off < len(data) {
			if err := p.sender.Send(data[off:]); err != nil {
				return false
			}
		}
		p.sched.Run()
		return bytes.Equal(p.got.Bytes(), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHandleSegmentNeverPanics(t *testing.T) {
	s := sim.NewScheduler()
	c := New(s, func([]byte) error { return nil }, Config{})
	c.OnData = func([]byte) {}
	f := func(seg []byte) bool {
		c.HandleSegment(seg)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestMutatedSegmentsNeverCorruptStream(t *testing.T) {
	// Flip one bit anywhere in a valid segment: the receiver must either
	// drop it (checksum) or, if the flip misses the covered region
	// (impossible here: everything is covered), handle it cleanly. The
	// delivered stream must never contain wrong bytes.
	s := sim.NewScheduler()
	var segs [][]byte
	snd := New(s, func(p []byte) error {
		segs = append(segs, append([]byte(nil), p...))
		return nil
	}, Config{MSS: 100})
	snd.Send(pattern(300))

	for _, seg := range segs {
		for bit := 0; bit < len(seg)*8; bit += 5 {
			rcv := New(s, func([]byte) error { return nil }, Config{MSS: 100})
			var got []byte
			rcv.OnData = func(d []byte) { got = append(got, d...) }
			mut := append([]byte(nil), seg...)
			mut[bit/8] ^= 1 << uint(bit%8)
			rcv.HandleSegment(mut)
			if len(got) > 0 && !bytes.Equal(got, pattern(300)[:len(got)]) {
				t.Fatalf("corrupted delivery after bit flip %d", bit)
			}
		}
	}
}

func TestBidirectionalSimultaneousTransfer(t *testing.T) {
	// Both directions carry data at once; piggybacked ACKs must not
	// confuse either direction.
	s := sim.NewScheduler()
	n := netsim.New(s, 23)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{
		RateBps: 2e7, Delay: 2 * time.Millisecond, LossProb: 0.02,
	})
	cfg := Config{FastRetransmit: true}
	ca := New(s, ab.Send, cfg)
	cb := New(s, ba.Send, cfg)
	a.SetHandler(func(p *netsim.Packet) { ca.HandleSegment(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { cb.HandleSegment(p.Payload) })

	var gotAtB, gotAtA bytes.Buffer
	cb.OnData = func(d []byte) { gotAtB.Write(d) }
	ca.OnData = func(d []byte) { gotAtA.Write(d) }

	d1 := pattern(150_000)
	d2 := make([]byte, 120_000)
	for i := range d2 {
		d2[i] = byte(i*7 + 3)
	}
	ca.Send(d1)
	cb.Send(d2)
	s.Run()

	if !bytes.Equal(gotAtB.Bytes(), d1) {
		t.Errorf("a->b corrupted: %d of %d bytes", gotAtB.Len(), len(d1))
	}
	if !bytes.Equal(gotAtA.Bytes(), d2) {
		t.Errorf("b->a corrupted: %d of %d bytes", gotAtA.Len(), len(d2))
	}
}

func BenchmarkHandleSegmentDataPath(b *testing.B) {
	// CPU cost of receiving one in-order 1 KB data segment end to end
	// (checksum verify + demux + order check + delivery).
	s := sim.NewScheduler()
	var segs [][]byte
	const pool = 1024
	snd := New(s, func(p []byte) error {
		segs = append(segs, append([]byte(nil), p...))
		return nil
	}, Config{MSS: 1024, SendWindow: pool * 1024, SendBuffer: pool * 1024, RecvWindow: 1 << 16})
	snd.peerWnd = pool * 1024 // skip the conservative-start ramp for generation
	if err := snd.Send(make([]byte, pool*1024)); err != nil {
		b.Fatal(err)
	}
	if len(segs) != pool {
		b.Fatalf("generated %d segments", len(segs))
	}
	sink := 0
	newRcv := func() *Conn {
		r := New(s, func([]byte) error { return nil }, Config{MSS: 1024, RecvWindow: 1 << 16})
		r.OnData = func(d []byte) { sink += len(d) }
		return r
	}
	rcv := newRcv()
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%pool == 0 && i > 0 {
			// Fresh receiver per pool replay so every segment travels
			// the in-order delivery path (amortized over 1024 calls).
			b.StopTimer()
			rcv = newRcv()
			b.StartTimer()
		}
		rcv.HandleSegment(segs[i%pool])
	}
}

func BenchmarkHandleSegmentAckPath(b *testing.B) {
	// CPU cost of pure-ACK processing: the transfer-control path (F1).
	s := sim.NewScheduler()
	var ack []byte
	rcv := New(s, func(p []byte) error {
		if p[0]&flagAck != 0 && p[0]&flagData == 0 && ack == nil {
			ack = append([]byte(nil), p...)
		}
		return nil
	}, Config{})
	// Provoke one ACK.
	snd := New(s, rcv.HandleSegment, Config{})
	snd.Send(make([]byte, 100))
	if ack == nil {
		b.Fatal("no ack captured")
	}
	conn := New(s, func([]byte) error { return nil }, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn.HandleSegment(ack)
	}
}

func TestFailThresholdDeclaresDead(t *testing.T) {
	// Into a black hole, FailThreshold consecutive timeouts must kill
	// the connection explicitly: Dead(), OnDead, ErrConnDead on Send,
	// and no further retransmission attempts ever.
	s := sim.NewScheduler()
	cfg := Config{
		InitialRTO:    10 * time.Millisecond,
		MaxRTO:        50 * time.Millisecond,
		FailThreshold: 6,
	}
	c := New(s, func([]byte) error { return nil }, cfg)
	deadAt := sim.Time(-1)
	c.OnDead = func() { deadAt = s.Now() }
	c.Send(pattern(100))
	s.Run() // must terminate: a dead connection arms no timers
	if !c.Dead() {
		t.Fatal("connection not dead after sustained blackout")
	}
	if deadAt < 0 {
		t.Error("OnDead never fired")
	}
	if c.Stats.Timeouts != 6 || c.Stats.Died != 1 {
		t.Errorf("Timeouts = %d, Died = %d, want 6 and 1",
			c.Stats.Timeouts, c.Stats.Died)
	}
	// The dying timeout does not retransmit: 1 original + 5 retries.
	if c.Stats.SegmentsSent != 6 {
		t.Errorf("SegmentsSent = %d, want 6", c.Stats.SegmentsSent)
	}
	if err := c.Send(pattern(10)); err != ErrConnDead {
		t.Errorf("Send on dead conn = %v, want ErrConnDead", err)
	}
	// Dead is terminal: a late segment must not resurrect it. The peer
	// gets a FailThreshold too, or it would retry into the corpse
	// forever and Run() would never terminate.
	peer := New(s, c.HandleSegment, Config{FailThreshold: 3})
	peer.Send(pattern(50))
	s.Run()
	if !c.Dead() || c.Delivered() != 0 {
		t.Error("dead connection processed a late segment")
	}
}

func TestFailThresholdStreakResetsOnProgress(t *testing.T) {
	// A lossy-but-alive path must never trip the threshold: every ACK
	// that advances sndUna resets the streak.
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.1},
		Config{FailThreshold: 3, InitialRTO: 20 * time.Millisecond,
			MinRTO: 20 * time.Millisecond}, 17)
	data := pattern(100_000)
	p.sender.Send(data)
	p.sched.Run()
	if p.sender.Dead() {
		t.Fatal("live lossy path declared dead")
	}
	if !bytes.Equal(p.got.Bytes(), data) {
		t.Fatalf("received %d of %d bytes", p.got.Len(), len(data))
	}
	if p.sender.Stats.Timeouts == 0 {
		t.Error("expected some timeouts on a 10% lossy path")
	}
}

func TestZeroFailThresholdNeverGivesUp(t *testing.T) {
	// Back-compat: the default keeps retrying at MaxRTO forever.
	s := sim.NewScheduler()
	c := New(s, func([]byte) error { return nil },
		Config{InitialRTO: 10 * time.Millisecond, MaxRTO: 50 * time.Millisecond})
	c.Send(pattern(100))
	s.RunUntil(sim.Time(5 * time.Second))
	if c.Dead() {
		t.Error("FailThreshold=0 declared dead")
	}
	if c.Stats.Timeouts < 50 {
		t.Errorf("timeouts = %d, want steady retrying", c.Stats.Timeouts)
	}
}

func TestForgedAckIgnored(t *testing.T) {
	// An acknowledgement for data never sent must be dropped, not
	// crash or corrupt sender state.
	s := sim.NewScheduler()
	var ack []byte
	rcvSide := New(s, func(p []byte) error {
		if p[0]&flagAck != 0 && p[0]&flagData == 0 && ack == nil {
			ack = append([]byte(nil), p...)
		}
		return nil
	}, Config{})
	sndSide := New(s, rcvSide.HandleSegment, Config{})
	sndSide.Send(make([]byte, 100)) // provokes an ACK of 100 bytes
	if ack == nil {
		t.Fatal("no ack captured")
	}
	fresh := New(s, func([]byte) error { return nil }, Config{})
	if err := fresh.HandleSegment(ack); err != nil {
		t.Fatalf("forged ack returned error: %v", err)
	}
	if fresh.Stats.BadAcks != 1 {
		t.Errorf("BadAcks = %d, want 1", fresh.Stats.BadAcks)
	}
	if fresh.Acked() != 0 {
		t.Error("forged ack advanced sender state")
	}
}
