package otp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/buf"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestSendRefZeroCopy runs a lossy transfer over the zero-copy handoff
// (Conn.SendRef -> netsim.SendRefVia) with a private pool on every
// stage, and checks that the stream still arrives intact and that every
// pooled buffer the endpoints and the network took was returned: the
// recycling loop closes even across retransmissions, out-of-order
// buffering, and line drops.
func TestSendRefZeroCopy(t *testing.T) {
	pool := buf.NewPool()
	s := sim.NewScheduler()
	n := netsim.New(s, 7)
	n.SetPool(pool)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{
		RateBps: 1e7, Delay: 2 * time.Millisecond, LossProb: 0.05,
	})

	cfg := Config{Pool: pool, FastRetransmit: true}
	snd := New(s, ab.Send, cfg)
	rcv := New(s, ba.Send, cfg)
	snd.SendRef = ab.SendRef
	rcv.SendRef = ba.SendRef
	a.SetHandler(func(pk *netsim.Packet) { snd.HandleSegment(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { rcv.HandleSegment(pk.Payload) })

	var got bytes.Buffer
	rcv.OnData = func(d []byte) { got.Write(d) }

	data := pattern(200_000)
	if err := snd.Send(data); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("received %d bytes, mismatch", got.Len())
	}
	if rcv.Stats.OutOfOrder == 0 || snd.Stats.Retransmits == 0 {
		t.Fatalf("loss did not exercise recovery: ooo=%d retx=%d",
			rcv.Stats.OutOfOrder, snd.Stats.Retransmits)
	}
	st := pool.Stats()
	if st.Gets != st.Puts {
		t.Fatalf("pool leak: %d gets, %d puts", st.Gets, st.Puts)
	}
}

// TestSegmentReuseAfterSend documents the ownership rule: once a
// segment is handed to SendRef the connection holds no reference, and
// the network's copy is isolated from later pool reuse.
func TestSegmentReuseAfterSend(t *testing.T) {
	pool := buf.NewPool()
	s := sim.NewScheduler()
	n := netsim.New(s, 1)
	n.SetPool(pool)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{Delay: time.Millisecond})

	cfg := Config{Pool: pool}
	snd := New(s, ab.Send, cfg)
	rcv := New(s, ba.Send, cfg)
	snd.SendRef = ab.SendRef
	rcv.SendRef = ba.SendRef
	a.SetHandler(func(pk *netsim.Packet) { snd.HandleSegment(pk.Payload) })
	b.SetHandler(func(pk *netsim.Packet) { rcv.HandleSegment(pk.Payload) })

	var got bytes.Buffer
	rcv.OnData = func(d []byte) { got.Write(d) }

	// Two writes: the second reuses the pooled segment buffer the first
	// released. If ownership were violated the first payload would be
	// scribbled before the wire copy completes.
	d1, d2 := pattern(900), pattern(900)
	for i := range d2 {
		d2[i] ^= 0xFF
	}
	if err := snd.Send(d1); err != nil {
		t.Fatal(err)
	}
	if err := snd.Send(d2); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), d1...), d2...)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("stream corrupted: got %d bytes", got.Len())
	}
}
