// Package parallel models the paper's §7 argument about connecting
// networks to parallel processors: a parallel machine has no single hot
// spot that can run at the aggregate rate, so incoming data must be
// dispatched to the right part of the machine. "If the data is
// organized into ADUs, each ADU will contain enough information to
// control its own delivery"; a traditional byte-stream transport
// instead forces all data through one serializing reassembly point.
//
// Processing is modeled in virtual time: each stage is a server with a
// byte rate; an ADU occupies its worker for size/rate. The ALF path
// dispatches each ADU straight to a worker chosen from the ADU's own
// naming information; the serial path pushes every byte through a
// front-end stage first.
package parallel

import (
	alf "repro/internal/core"
	"repro/internal/sim"
)

// Stage is one service center (a processor node) in virtual time.
type Stage struct {
	// RateBps is the stage's processing rate in bytes per second.
	RateBps float64

	busyUntil sim.Time
	// BusyTime accumulates the stage's total service time.
	BusyTime sim.Duration
	// Jobs counts work items processed.
	Jobs int64
	// Bytes counts payload processed.
	Bytes int64
}

// Process enqueues a job arriving at time at and returns its finish
// time.
func (st *Stage) Process(at sim.Time, bytes int) sim.Time {
	start := st.busyUntil
	if at > start {
		start = at
	}
	service := sim.Duration(float64(bytes) / st.RateBps * 1e9)
	st.busyUntil = start.Add(service)
	st.BusyTime += service
	st.Jobs++
	st.Bytes += int64(bytes)
	return st.busyUntil
}

// BusyUntil returns the time the stage drains.
func (st *Stage) BusyUntil() sim.Time { return st.busyUntil }

// Pool is a bank of worker stages fed ADUs directly (the ALF receiver)
// or through a serializing front end (the traditional receiver).
type Pool struct {
	sched *sim.Scheduler
	// Serial, when non-nil, is the front-end hot spot every byte must
	// traverse before reaching a worker.
	Serial *Stage
	// Workers are the parallel processing elements.
	Workers []*Stage
	// Assign maps an ADU to a worker index. The default uses the ADU's
	// application tag modulo the worker count — the ADU's own delivery
	// information. Only used by HandleADU.
	Assign func(adu alf.ADU) int

	// LastFinish is the completion time of the latest job (the
	// makespan once the workload is done).
	LastFinish sim.Time
	// Dispatched counts ADUs fed to workers.
	Dispatched int64
}

// NewPool creates a pool of n workers, each processing workerBps bytes
// per second. serialBps > 0 inserts a front-end stage at that rate
// (the serializing reassembly point); serialBps == 0 means direct
// dispatch.
func NewPool(sched *sim.Scheduler, n int, workerBps, serialBps float64) *Pool {
	p := &Pool{sched: sched}
	if serialBps > 0 {
		p.Serial = &Stage{RateBps: serialBps}
	}
	for i := 0; i < n; i++ {
		p.Workers = append(p.Workers, &Stage{RateBps: workerBps})
	}
	p.Assign = func(adu alf.ADU) int { return int(adu.Tag % uint64(len(p.Workers))) }
	return p
}

// HandleADU dispatches one ADU (wire to alf.Receiver.OnADU).
func (p *Pool) HandleADU(adu alf.ADU) {
	p.DispatchAt(p.sched.Now(), p.Assign(adu), len(adu.Data))
}

// DispatchAt routes bytes arriving at time at to worker w, via the
// serial front end when configured, and tracks the makespan.
func (p *Pool) DispatchAt(at sim.Time, w int, bytes int) sim.Time {
	if p.Serial != nil {
		at = p.Serial.Process(at, bytes)
	}
	finish := p.Workers[w].Process(at, bytes)
	if finish > p.LastFinish {
		p.LastFinish = finish
	}
	p.Dispatched++
	return finish
}

// AggregateBytes returns the total bytes processed by workers.
func (p *Pool) AggregateBytes() int64 {
	var total int64
	for _, w := range p.Workers {
		total += w.Bytes
	}
	return total
}

// Utilization returns each worker's busy fraction of the makespan.
func (p *Pool) Utilization() []float64 {
	out := make([]float64, len(p.Workers))
	if p.LastFinish == 0 {
		return out
	}
	for i, w := range p.Workers {
		out[i] = w.BusyTime.Seconds() / p.LastFinish.Seconds()
	}
	return out
}
