package parallel

import (
	"testing"
	"time"

	alf "repro/internal/core"
	"repro/internal/sim"
)

func TestStageServiceTime(t *testing.T) {
	st := &Stage{RateBps: 1e6} // 1 MB/s
	finish := st.Process(0, 1_000_000)
	if finish != sim.Time(time.Second) {
		t.Errorf("finish = %v, want 1s", finish)
	}
	// Second job queues behind the first.
	finish = st.Process(0, 500_000)
	if finish != sim.Time(1500*time.Millisecond) {
		t.Errorf("queued finish = %v, want 1.5s", finish)
	}
	// A job arriving after the queue drains starts immediately.
	finish = st.Process(sim.Time(2*time.Second), 500_000)
	if finish != sim.Time(2500*time.Millisecond) {
		t.Errorf("idle-start finish = %v, want 2.5s", finish)
	}
	if st.Jobs != 3 || st.Bytes != 2_000_000 {
		t.Errorf("stage stats: %+v", st)
	}
}

func TestDirectDispatchScalesWithWorkers(t *testing.T) {
	// A fixed 4 MB workload split round-robin: makespan should fall
	// roughly linearly with the worker count.
	makespan := func(n int) sim.Time {
		s := sim.NewScheduler()
		p := NewPool(s, n, 1e6, 0)
		for i := 0; i < 40; i++ {
			p.DispatchAt(0, i%n, 100_000)
		}
		return p.LastFinish
	}
	m1 := makespan(1)
	m4 := makespan(4)
	if m4 >= m1/3 {
		t.Errorf("4 workers (%v) not ~4x faster than 1 (%v)", m4, m1)
	}
}

func TestSerialFrontEndBottlenecks(t *testing.T) {
	// With a serial front end at worker rate, adding workers cannot
	// help: the hot spot caps throughput (the paper's point).
	makespan := func(n int) sim.Time {
		s := sim.NewScheduler()
		p := NewPool(s, n, 1e6, 1e6)
		for i := 0; i < 40; i++ {
			p.DispatchAt(0, i%n, 100_000)
		}
		return p.LastFinish
	}
	m1 := makespan(1)
	m8 := makespan(8)
	// The serial stage takes 4s for 4 MB regardless; allow the last
	// job's worker service on top.
	if m8 < m1*3/4 {
		t.Errorf("serial-fronted pool sped up with workers: %v vs %v", m8, m1)
	}
}

func TestHandleADUUsesTagForDelivery(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 4, 1e6, 0)
	for i := 0; i < 8; i++ {
		p.HandleADU(alf.ADU{Name: uint64(i), Tag: uint64(i % 4), Data: make([]byte, 1000)})
	}
	for i, w := range p.Workers {
		if w.Jobs != 2 {
			t.Errorf("worker %d jobs = %d, want 2", i, w.Jobs)
		}
	}
	if p.Dispatched != 8 || p.AggregateBytes() != 8000 {
		t.Errorf("pool stats: dispatched=%d bytes=%d", p.Dispatched, p.AggregateBytes())
	}
}

func TestUtilization(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 2, 1e6, 0)
	p.DispatchAt(0, 0, 1_000_000) // worker 0 busy 1s
	p.DispatchAt(0, 1, 500_000)   // worker 1 busy 0.5s
	u := p.Utilization()
	if u[0] < 0.99 || u[0] > 1.01 {
		t.Errorf("u[0] = %v", u[0])
	}
	if u[1] < 0.49 || u[1] > 0.51 {
		t.Errorf("u[1] = %v", u[1])
	}
	// Empty pool: zero utilization, no divide-by-zero.
	p2 := NewPool(s, 2, 1e6, 0)
	for _, v := range p2.Utilization() {
		if v != 0 {
			t.Error("empty pool utilization nonzero")
		}
	}
}
