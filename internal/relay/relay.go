// Package relay implements a custody-transfer store-and-forward node:
// the DTN answer to paths whose round trip is minutes and whose links
// go dark for tens of minutes at a time (solar conjunction). End-to-end
// recovery across such a path multiplies every loss by the full RTT;
// a custody relay cuts each recovery loop down to one hop.
//
// The relay sits between two duplex link pairs and forwards the ALF
// wire protocol transparently — DATA and heartbeats downstream, control
// and feedback upstream — while taking *custody* of the ADU fragments
// that pass through it:
//
//   - Every valid DATA fragment is retained (by reference, no copy —
//     the same pooled buffer the network carries) in a bounded store.
//     When an ADU is complete in the store, the relay emits a
//     custody-ack wire frame upstream: the upstream custodian (the
//     original sender, or another relay) releases its own copy and
//     stops answering NACKs for that name. Responsibility has moved
//     one hop downstream (Sender.Stats.CustodyReleased on the far
//     end).
//
//   - Receiver NACKs are intercepted: names complete in the store are
//     answered locally — the stored fragments are re-emitted downstream
//     and the NACK never crosses the slow upstream hops. The remaining
//     names are re-encoded and forwarded upstream, so recovery of data
//     the relay never saw still works end to end.
//
//   - When the downstream link comes back from an outage (observed by
//     polling, the way a bundle agent watches its convergence layer),
//     the relay re-originates everything still in custody: the data
//     crossed the dark window parked one hop away instead of minutes
//     upstream. A slow periodic retry backstops lost re-originations.
//
//   - Storage is bounded (Config.StorageLimit). When an arriving
//     fragment would exceed the bound, the oldest non-Critical ADU is
//     evicted first (the application said what must survive — §2's
//     survivability argument applied to relay storage); if everything
//     stored is Critical, the arriving fragment is shed instead of
//     displacing custody the relay already acknowledged. Critical ADUs
//     are never evicted.
//
// The receiver's cumulative frontier (seen in forwarded control
// messages) clears custody: names below it are settled end to end and
// their storage is released. A custody ack arriving from a further
// downstream relay clears custody the same way — custody chains
// hop by hop.
package relay

import (
	"fmt"

	"repro/internal/buf"
	alf "repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tracing"
)

// Errors. Test with errors.Is (alf.ErrConfig wraps every rejection).
var errConfig = alf.ErrConfig

// Config parameterizes one relay. Zero fields take defaults except
// CustodyTimer, which is required: a custody relay that never
// acknowledges strands its upstream custodian's retention forever.
type Config struct {
	// Name labels the relay in traces and metrics (default "relay").
	Name string
	// RelayID is stamped into custody-ack frames so upstream tracing
	// can attribute releases (0 is fine for a single relay).
	RelayID byte
	// StorageLimit bounds the custody store in stored wire bytes
	// (headers included; default 8 MiB). Past it, oldest non-Critical
	// ADUs are evicted; arriving fragments are shed when nothing is
	// evictable.
	StorageLimit int
	// CustodyTimer batches custody acknowledgments: completions are
	// acked at most this long after they happen, so a burst of small
	// ADUs shares ack frames. Required > 0.
	CustodyTimer sim.Duration
	// RetryInterval, when non-zero, re-originates everything still in
	// custody this often (skipped while the downstream link is down).
	// It is the slow backstop for lost re-originations; set it well
	// above the downstream round trip or the duplicates are pure
	// overhead.
	RetryInterval sim.Duration
	// HealPoll is how often the relay samples the downstream link's
	// administrative state while it holds custody (default 1 s). A
	// down-to-up transition triggers immediate re-origination of the
	// whole store.
	HealPoll sim.Duration
	// Metrics, if non-nil, registers the relay's counters and storage
	// gauges, labeled relay=<Name>.
	Metrics *metrics.Registry
	// Tracer, if non-nil, records custody spans (store, ack, evict,
	// shed, re-originate) on the relay/<Name> track.
	Tracer *tracing.Tracer
}

// Validate rejects configurations that cannot mean anything sensible,
// with a descriptive error naming the field (same contract as
// alf.Config.Validate; errors wrap alf.ErrConfig).
func (c *Config) Validate() error {
	if c.StorageLimit < 0 {
		return fmt.Errorf("%w: relay StorageLimit %d is negative", errConfig, c.StorageLimit)
	}
	if c.CustodyTimer <= 0 {
		return fmt.Errorf("%w: relay CustodyTimer %v is not positive; a custody relay that never acknowledges strands its upstream custodian", errConfig, c.CustodyTimer)
	}
	if c.RetryInterval < 0 {
		return fmt.Errorf("%w: relay RetryInterval %v is negative", errConfig, c.RetryInterval)
	}
	if c.HealPoll < 0 {
		return fmt.Errorf("%w: relay HealPoll %v is negative", errConfig, c.HealPoll)
	}
	return nil
}

func (c *Config) fill() {
	if c.Name == "" {
		c.Name = "relay"
	}
	if c.StorageLimit == 0 {
		c.StorageLimit = 8 << 20
	}
	if c.HealPoll == 0 {
		c.HealPoll = sim.Duration(1e9)
	}
}

// Stats counts relay events.
type Stats struct {
	Fragments      int64 // DATA fragments arrived
	FwdFragments   int64 // DATA fragments forwarded downstream
	StoredFrags    int64 // fragments taken into the custody store
	DupFrags       int64 // fragments already in custody (not re-stored)
	ADUsComplete   int64 // ADUs fully assembled in custody
	CustodyAckTX   int64 // custody-ack frames emitted upstream
	ADUsAcked      int64 // ADUs acknowledged upstream
	NacksSeen      int64 // NACK names in intercepted control messages
	NacksAnswered  int64 // NACKs served from the custody store
	NacksForwarded int64 // NACKs re-encoded for the upstream hop
	RetxADUs       int64 // ADU re-originations (NACK, heal, or retry)
	RetxFrags      int64 // fragments re-emitted downstream
	Evicted        int64 // ADUs evicted to fit new custody
	EvictedBytes   int64
	ShedFrags      int64 // arriving fragments refused (store unevictable)
	Cleared        int64 // ADUs cleared by the downstream frontier
	CtrlForwarded  int64 // control messages forwarded upstream
	FBForwarded    int64 // feedback reports forwarded upstream
	HBForwarded    int64 // heartbeats forwarded downstream
	CAConsumed     int64 // custody acks consumed from a downstream relay
	Heals          int64 // downstream down->up transitions observed
	BadFrames      int64 // unparseable frames passed through opaquely
	MaxStoredBytes int64 // custody-store high-water mark
}

// key identifies one ADU across the streams sharing the relay.
type key struct {
	stream byte
	name   uint64
}

// entry is one ADU's custody state: the stamped wire packets
// themselves, retained by reference (re-origination re-emits the same
// buffers, so custody costs no copies).
type entry struct {
	frags    []*buf.Ref
	offs     []int
	gotBytes int
	totalLen int
	wire     int // stored wire bytes (storage accounting)
	critical bool
	complete bool
	acked    bool
}

func (e *entry) release() {
	for _, f := range e.frags {
		f.Release()
	}
	e.frags = nil
}

// Relay is one custody node. It installs itself as its netsim node's
// handler; everything else is timers.
type Relay struct {
	cfg   Config
	sched *sim.Scheduler
	up    *netsim.Link // toward the upstream custodian (control direction)
	down  *netsim.Link // toward the receiver (data direction)

	store   map[key]*entry
	order   []key            // insertion order: deterministic iteration, oldest first
	stored  int              // bytes in store
	evicted map[key]struct{} // names shed/evicted/claimed downstream: do not re-store
	cums    map[byte]uint64  // highest receiver frontier seen per stream
	pending []key            // completions awaiting the batched custody ack

	ack      *sim.Timer // batches custody acks (CustodyTimer)
	poll     *sim.Timer // heal detection + retry backstop (HealPoll)
	wasDown  bool
	lastRetx sim.Time

	Stats Stats
}

// New creates a relay on node, forwarding data toward down and control
// toward up. The node's handler is replaced.
func New(sched *sim.Scheduler, node *netsim.Node, up, down *netsim.Link, cfg Config) (*Relay, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	r := &Relay{
		cfg:     cfg,
		sched:   sched,
		up:      up,
		down:    down,
		store:   make(map[key]*entry),
		evicted: make(map[key]struct{}),
		cums:    make(map[byte]uint64),
	}
	r.ack = sched.NewTimer(r.onAck)
	r.poll = sched.NewTimer(r.onPoll)
	node.SetHandler(r.handle)
	r.bindMetrics()
	return r, nil
}

// StoredBytes returns the custody store's current size in wire bytes.
func (r *Relay) StoredBytes() int { return r.stored }

// StoredADUs returns the number of ADUs (complete or partial) in
// custody.
func (r *Relay) StoredADUs() int { return len(r.store) }

func (r *Relay) bindMetrics() {
	reg := r.cfg.Metrics
	if reg == nil {
		return
	}
	lb := "relay=" + r.cfg.Name
	st := &r.Stats
	for _, c := range []struct {
		name string
		fn   func() int64
	}{
		{"relay.fragments", func() int64 { return st.Fragments }},
		{"relay.fwd_fragments", func() int64 { return st.FwdFragments }},
		{"relay.stored_frags", func() int64 { return st.StoredFrags }},
		{"relay.dup_frags", func() int64 { return st.DupFrags }},
		{"relay.adus_complete", func() int64 { return st.ADUsComplete }},
		{"relay.custody_acks", func() int64 { return st.CustodyAckTX }},
		{"relay.adus_acked", func() int64 { return st.ADUsAcked }},
		{"relay.nacks_seen", func() int64 { return st.NacksSeen }},
		{"relay.nacks_answered", func() int64 { return st.NacksAnswered }},
		{"relay.nacks_forwarded", func() int64 { return st.NacksForwarded }},
		{"relay.retx_adus", func() int64 { return st.RetxADUs }},
		{"relay.retx_frags", func() int64 { return st.RetxFrags }},
		{"relay.evicted", func() int64 { return st.Evicted }},
		{"relay.evicted_bytes", func() int64 { return st.EvictedBytes }},
		{"relay.shed_frags", func() int64 { return st.ShedFrags }},
		{"relay.cleared", func() int64 { return st.Cleared }},
		{"relay.ca_consumed", func() int64 { return st.CAConsumed }},
		{"relay.heals", func() int64 { return st.Heals }},
		{"relay.bad_frames", func() int64 { return st.BadFrames }},
	} {
		reg.CounterFunc(c.name, c.fn, lb)
	}
	reg.GaugeFunc("relay.stored_bytes", func() int64 { return int64(r.stored) }, lb)
	reg.GaugeFunc("relay.stored_adus", func() int64 { return int64(len(r.store)) }, lb)
	reg.GaugeFunc("relay.stored_peak_bytes", func() int64 { return st.MaxStoredBytes }, lb)
	// The configured bound next to the live occupancy: the telemetry
	// plane's near-capacity detector reads the pair label-for-label.
	reg.GaugeFunc("relay.storage_limit_bytes", func() int64 { return int64(r.cfg.StorageLimit) }, lb)
}

// handle is the node handler: classify by wire type, forward, and run
// the custody machinery. Direction is implied by type — DATA and
// heartbeats only ever flow sender-to-receiver, control/feedback/
// custody-acks only receiver-to-sender.
func (r *Relay) handle(p *netsim.Packet) {
	switch alf.PacketType(p.Payload) {
	case 1: // DATA: store custody, forward downstream
		r.handleData(p)
	case 3: // heartbeat: forward downstream
		r.Stats.HBForwarded++
		_ = r.down.SendRef(p.Retain())
	case 2: // control from downstream: intercept NACKs, forward rest
		r.handleControl(p)
	case 4: // feedback report: forward upstream
		r.Stats.FBForwarded++
		_ = r.up.SendRef(p.Retain())
	case 5: // custody ack from a further downstream custodian
		r.handleCustodyAck(p)
	default:
		// Unknown or corrupt beyond recognition: pass it downstream
		// opaquely; endpoint checksums are the arbiter.
		r.Stats.BadFrames++
		_ = r.down.SendRef(p.Retain())
	}
}

// handleData forwards a fragment downstream and takes it into custody.
func (r *Relay) handleData(p *netsim.Packet) {
	r.Stats.Fragments++
	r.Stats.FwdFragments++
	_ = r.down.SendRef(p.Retain())

	fi, ok := alf.SniffFragment(p.Payload)
	if !ok {
		// Damaged in transit: forwarded above, but custody of bytes the
		// receiver will reject is custody of nothing.
		r.Stats.BadFrames++
		return
	}
	if fi.Parity {
		// FEC parity recreates lost *fragments*; custody recovers whole
		// ADUs from storage. Storing parity would double-count bytes
		// toward completeness.
		return
	}
	k := key{fi.Stream, fi.Name}
	if fi.Name < r.cums[fi.Stream] {
		return // settled end to end; late duplicate
	}
	if _, gone := r.evicted[k]; gone {
		return // previously evicted or claimed downstream; do not flap
	}
	e := r.store[k]
	if e == nil {
		if !r.admit(k, len(p.Payload)) {
			return
		}
		e = &entry{totalLen: fi.TotalLen, critical: fi.Critical}
		r.store[k] = e
		r.order = append(r.order, k)
	} else {
		for _, off := range e.offs {
			if off == fi.FragOff {
				r.Stats.DupFrags++
				return
			}
		}
		if !r.admit(k, len(p.Payload)) {
			return
		}
	}
	e.frags = append(e.frags, p.Retain())
	e.offs = append(e.offs, fi.FragOff)
	e.gotBytes += fi.FragLen
	e.wire += len(p.Payload)
	r.stored += len(p.Payload)
	if int64(r.stored) > r.Stats.MaxStoredBytes {
		r.Stats.MaxStoredBytes = int64(r.stored)
	}
	r.Stats.StoredFrags++
	if !r.poll.Active() {
		r.wasDown = r.down.Down()
		r.poll.Reset(r.cfg.HealPoll)
	}
	if !e.complete && e.gotBytes >= e.totalLen {
		e.complete = true
		r.Stats.ADUsComplete++
		r.cfg.Tracer.CustodyStored(r.cfg.Name, fi.Stream, fi.Name, e.totalLen)
		r.pending = append(r.pending, k)
		if !r.ack.Active() {
			r.ack.Reset(r.cfg.CustodyTimer)
		}
	}
}

// admit makes room for n more bytes of custody for k (which may not be
// in the store yet): oldest non-Critical ADUs are evicted until the
// fragment fits; if nothing evictable remains, the fragment is shed
// and false returned. Critical custody is never evicted — the
// application said these must survive, and the relay already promised
// upstream.
func (r *Relay) admit(k key, n int) bool {
	if r.stored+n <= r.cfg.StorageLimit {
		return true
	}
	for _, ok := range r.order {
		if r.stored+n <= r.cfg.StorageLimit {
			break
		}
		if ok == k {
			continue
		}
		oe := r.store[ok]
		if oe == nil || oe.critical {
			continue
		}
		r.evict(ok, oe)
	}
	if r.stored+n > r.cfg.StorageLimit {
		r.Stats.ShedFrags++
		r.cfg.Tracer.CustodyShedded(r.cfg.Name, k.stream, k.name, n)
		// The ADU can never complete here; forget its partial state so
		// it does not hold storage, and remember not to retry.
		if cur := r.store[k]; cur != nil {
			r.evict(k, cur)
		} else {
			r.evicted[k] = struct{}{}
		}
		return false
	}
	return true
}

// evict removes one ADU from custody.
func (r *Relay) evict(k key, e *entry) {
	r.stored -= e.wire
	r.Stats.Evicted++
	r.Stats.EvictedBytes += int64(e.wire)
	r.cfg.Tracer.CustodyEvicted(r.cfg.Name, k.stream, k.name, e.wire)
	e.release()
	delete(r.store, k)
	r.evicted[k] = struct{}{}
}

// drop removes one ADU from custody because it is settled (cleared by
// the downstream frontier or claimed by a downstream custodian).
func (r *Relay) drop(k key, e *entry) {
	r.stored -= e.wire
	r.Stats.Cleared++
	e.release()
	delete(r.store, k)
}

// compactOrder prunes dead keys from the insertion-order slice once
// they dominate it.
func (r *Relay) compactOrder() {
	if len(r.order) < 2*len(r.store)+16 {
		return
	}
	live := r.order[:0]
	for _, k := range r.order {
		if _, ok := r.store[k]; ok {
			live = append(live, k)
		}
	}
	r.order = live
}

// onAck emits the batched custody acknowledgments upstream: one or
// more CA frames covering every completion since the last batch, plus
// the settled frontier.
func (r *Relay) onAck() {
	if len(r.pending) == 0 {
		return
	}
	// Group by stream (almost always one), preserving completion order.
	for len(r.pending) > 0 {
		stream := r.pending[0].stream
		var names []uint64
		rest := r.pending[:0]
		for _, k := range r.pending {
			if k.stream != stream || len(names) >= alf.MaxCustodyNames {
				rest = append(rest, k)
				continue
			}
			e := r.store[k]
			if e == nil || !e.complete || e.acked {
				continue // evicted or cleared while pending
			}
			e.acked = true
			names = append(names, k.name)
		}
		r.pending = append([]key(nil), rest...)
		if len(names) == 0 {
			continue
		}
		ca := alf.CustodyAck{Stream: stream, Relay: r.cfg.RelayID, Cum: r.cums[stream], Names: names}
		r.Stats.CustodyAckTX++
		r.Stats.ADUsAcked += int64(len(names))
		r.cfg.Tracer.CustodyAckSent(r.cfg.Name, stream, ca.Cum, len(names))
		_ = r.up.Send(alf.EncodeCustody(&ca))
	}
}

// handleControl intercepts a receiver control message: NACKs for ADUs
// complete in custody are answered from the store; the rest travel
// upstream with the (always-forwarded) cumulative frontier.
func (r *Relay) handleControl(p *netsim.Packet) {
	ci, err := alf.ParseControlInfo(p.Payload)
	if err != nil {
		// Corrupt control: forward opaquely, the endpoint drops it.
		r.Stats.BadFrames++
		_ = r.up.SendRef(p.Retain())
		return
	}
	r.clearBelow(ci.Stream, ci.Cum)
	r.Stats.NacksSeen += int64(len(ci.Nacks))
	var fwd []uint64
	for _, name := range ci.Nacks {
		k := key{ci.Stream, name}
		if e := r.store[k]; e != nil && e.complete {
			r.Stats.NacksAnswered++
			r.resendEntry(k, e)
			continue
		}
		fwd = append(fwd, name)
	}
	r.Stats.NacksForwarded += int64(len(fwd))
	r.Stats.CtrlForwarded++
	if len(fwd) == len(ci.Nacks) {
		// Nothing answered: the original frame forwards unchanged,
		// zero-copy.
		_ = r.up.SendRef(p.Retain())
		return
	}
	ci.Nacks = fwd
	_ = r.up.Send(alf.EncodeControlInfo(ci))
}

// clearBelow settles custody below the receiver's cumulative frontier.
func (r *Relay) clearBelow(stream byte, cum uint64) {
	if cum <= r.cums[stream] {
		return
	}
	r.cums[stream] = cum
	for _, k := range r.order {
		if k.stream != stream || k.name >= cum {
			continue
		}
		if e := r.store[k]; e != nil {
			r.drop(k, e)
		}
	}
	for k := range r.evicted {
		if k.stream == stream && k.name < cum {
			delete(r.evicted, k)
		}
	}
	r.compactOrder()
}

// handleCustodyAck consumes a custody ack from a relay further
// downstream: those ADUs are its responsibility now. The frame is not
// forwarded — custody chains hop by hop, and this relay's own acks
// (already sent when the ADUs completed here) cover the upstream leg.
func (r *Relay) handleCustodyAck(p *netsim.Packet) {
	ca, err := alf.ParseCustody(p.Payload)
	if err != nil {
		r.Stats.BadFrames++
		_ = r.up.SendRef(p.Retain())
		return
	}
	r.Stats.CAConsumed++
	r.clearBelow(ca.Stream, ca.Cum)
	for _, name := range ca.Names {
		k := key{ca.Stream, name}
		if e := r.store[k]; e != nil {
			r.drop(k, e)
			// A later duplicate from upstream must not re-open custody
			// the downstream relay now holds.
			r.evicted[k] = struct{}{}
		}
	}
	r.compactOrder()
}

// resendEntry re-emits one ADU's stored fragments downstream.
func (r *Relay) resendEntry(k key, e *entry) {
	r.Stats.RetxADUs++
	r.Stats.RetxFrags += int64(len(e.frags))
	r.cfg.Tracer.CustodyResent(r.cfg.Name, k.stream, k.name, len(e.frags))
	for _, f := range e.frags {
		_ = r.down.SendRef(f.Retain())
	}
}

// onPoll watches the downstream link while custody is held: a
// down-to-up transition re-originates the whole store immediately (the
// heal is the moment the dark window's parked data can move), and the
// RetryInterval backstop re-originates it periodically in case the
// heal burst itself was lost. The timer self-stops when custody
// drains, keeping an idle relay quiescent.
func (r *Relay) onPoll() {
	down := r.down.Down()
	now := r.sched.Now()
	if r.lastRetx == 0 {
		r.lastRetx = now // first poll since custody began: start the retry clock
	}
	if r.wasDown && !down {
		r.Stats.Heals++
		r.resendAll(now)
	} else if !down && r.cfg.RetryInterval > 0 &&
		now.Sub(r.lastRetx) >= r.cfg.RetryInterval {
		r.resendAll(now)
	}
	r.wasDown = down
	if len(r.store) > 0 || len(r.pending) > 0 {
		r.poll.Reset(r.cfg.HealPoll)
	}
}

// resendAll re-originates every ADU still in custody, complete or
// partial (a partial's missing fragments are the upstream hop's
// problem; what is here should not wait on it), oldest first.
func (r *Relay) resendAll(now sim.Time) {
	r.lastRetx = now
	for _, k := range r.order {
		if e := r.store[k]; e != nil {
			r.resendEntry(k, e)
		}
	}
}
