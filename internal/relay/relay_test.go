package relay_test

import (
	"errors"
	"testing"
	"time"

	alf "repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/relay"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// chain is the canonical custody topology: sender — relay — receiver,
// with the relay owning the node in the middle.
//
//	src ──su──▶ rly ──rd──▶ dst
//	src ◀──us── rly ◀──dr── dst
type chain struct {
	sched *sim.Scheduler
	net   *netsim.Network
	snd   *alf.Sender
	rcv   *alf.Receiver
	rly   *relay.Relay

	su, us, rd, dr *netsim.Link

	delivered map[uint64]int
	lost      map[uint64]int
}

func newChain(t *testing.T, upCfg, downCfg netsim.LinkConfig, aCfg alf.Config, rCfg relay.Config) *chain {
	t.Helper()
	c := &chain{
		sched:     sim.NewScheduler(),
		delivered: make(map[uint64]int),
		lost:      make(map[uint64]int),
	}
	c.net = netsim.New(c.sched, 42)
	src := c.net.NewNode("src")
	rly := c.net.NewNode("rly")
	dst := c.net.NewNode("dst")
	c.su = c.net.NewLink(src, rly, upCfg)
	c.us = c.net.NewLink(rly, src, upCfg)
	c.rd = c.net.NewLink(rly, dst, downCfg)
	c.dr = c.net.NewLink(dst, rly, downCfg)

	var err error
	c.snd, err = alf.NewSender(c.sched, c.su.Send, aCfg)
	if err != nil {
		t.Fatal(err)
	}
	c.snd.SendRef = c.su.SendRef
	c.rcv, err = alf.NewReceiver(c.sched, c.dr.Send, aCfg)
	if err != nil {
		t.Fatal(err)
	}
	src.SetHandler(func(p *netsim.Packet) { c.snd.HandleControl(p.Payload) })
	dst.SetHandler(func(p *netsim.Packet) { c.rcv.HandlePacket(p.Payload) })
	c.rcv.OnADU = func(adu alf.ADU) {
		c.delivered[adu.Name]++
		adu.Release()
	}
	c.rcv.OnLost = func(name uint64) { c.lost[name]++ }

	c.rly, err = relay.New(c.sched, rly, c.us, c.rd, rCfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func (c *chain) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := c.sched.RunUntil(sim.Time(0).Add(until)); err != nil {
		t.Fatal(err)
	}
}

func payload(name uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(name)*31 + byte(i)
	}
	return b
}

// TestCustodyTransfer is the headline behavior: the relay's custody
// ack releases the sender's retention long before the receiver's own
// cumulative ack could cross the slow downstream hop, and everything
// still arrives exactly once and drains cleanly.
func TestCustodyTransfer(t *testing.T) {
	up := netsim.LinkConfig{RateBps: 50e6, Delay: 10 * time.Millisecond}
	down := netsim.LinkConfig{RateBps: 50e6, Delay: 300 * time.Millisecond}
	c := newChain(t, up, down,
		alf.Config{Custody: true, HeartbeatLimit: 1 << 20},
		relay.Config{CustodyTimer: 5 * time.Millisecond})

	const n = 20
	for i := 0; i < n; i++ {
		if _, err := c.snd.Send(uint64(i), xcode.SyntaxRaw, payload(uint64(i), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	// t=10ms: fragments reach the relay. t=15ms: custody ack batch.
	// t=25ms: sender released. The receiver is 300 ms away and has not
	// even seen the data yet.
	c.run(t, 50*time.Millisecond)
	if got := c.snd.BufferedADUs(); got != 0 {
		t.Fatalf("custody ack should have released all retention; %d ADUs still buffered", got)
	}
	if c.snd.Stats.CustodyAcks == 0 {
		t.Fatal("no custody-ack frames accepted")
	}
	if got := c.snd.Stats.CustodyReleased; got != n {
		t.Fatalf("CustodyReleased = %d, want %d", got, n)
	}
	if len(c.delivered) != 0 {
		t.Fatalf("nothing should be delivered yet at 50 ms over a 300 ms hop")
	}

	c.run(t, 5*time.Second)
	for i := uint64(0); i < n; i++ {
		if c.delivered[i] != 1 {
			t.Fatalf("ADU %d delivered %d times, want exactly once", i, c.delivered[i])
		}
	}
	if got := c.rly.Stats.ADUsAcked; got != n {
		t.Fatalf("relay acked %d ADUs, want %d", got, n)
	}
	// The receiver's frontier, seen in forwarded control, clears the
	// custody store: nothing left, timers quiescent.
	if c.rly.StoredADUs() != 0 || c.rly.StoredBytes() != 0 {
		t.Fatalf("custody store did not drain: %d ADUs, %d bytes",
			c.rly.StoredADUs(), c.rly.StoredBytes())
	}
}

// TestRelayAnswersNacks puts loss on the downstream hop only: every
// receiver NACK names an ADU the relay holds, so recovery is served
// from the custody store and no NACK travels upstream.
func TestRelayAnswersNacks(t *testing.T) {
	up := netsim.LinkConfig{RateBps: 50e6, Delay: 5 * time.Millisecond}
	down := netsim.LinkConfig{RateBps: 20e6, Delay: 50 * time.Millisecond, LossProb: 0.25}
	c := newChain(t, up, down,
		alf.Config{Custody: true, HeartbeatLimit: 1 << 20},
		relay.Config{CustodyTimer: 5 * time.Millisecond})

	const n = 30
	for i := 0; i < n; i++ {
		if _, err := c.snd.Send(uint64(i), xcode.SyntaxRaw, payload(uint64(i), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	c.run(t, 20*time.Second)
	for i := uint64(0); i < n; i++ {
		if c.delivered[i] != 1 {
			t.Fatalf("ADU %d delivered %d times, want exactly once", i, c.delivered[i])
		}
	}
	if c.rly.Stats.NacksAnswered == 0 {
		t.Fatal("25%% downstream loss produced no relay-answered NACKs")
	}
	if got := c.rly.Stats.NacksForwarded; got != 0 {
		t.Fatalf("%d NACKs crossed upstream; the relay held every named ADU", got)
	}
	if got := c.snd.Stats.ResentADUs; got != 0 {
		t.Fatalf("sender resent %d ADUs; recovery should be relay-local", got)
	}
}

// TestBlackoutHealRetransmit sends into a dark downstream link: the
// relay takes custody (releasing the sender), watches the link, and
// re-originates the whole store the moment it heals.
func TestBlackoutHealRetransmit(t *testing.T) {
	up := netsim.LinkConfig{RateBps: 50e6, Delay: 5 * time.Millisecond}
	down := netsim.LinkConfig{RateBps: 20e6, Delay: 20 * time.Millisecond}
	c := newChain(t, up, down,
		alf.Config{Custody: true, HeartbeatLimit: 1 << 20},
		relay.Config{CustodyTimer: 5 * time.Millisecond, HealPoll: 100 * time.Millisecond})

	in := faults.New(c.sched, 1)
	in.Blackout([]*netsim.Link{c.rd}, 100*time.Millisecond, time.Second)

	const n = 10
	c.sched.After(200*time.Millisecond, func() {
		for i := 0; i < n; i++ {
			if _, err := c.snd.Send(uint64(i), xcode.SyntaxRaw, payload(uint64(i), 4096)); err != nil {
				t.Fatal(err)
			}
		}
	})
	// Mid-blackout: custody taken (and acked upstream), nothing
	// deliverable.
	c.run(t, 500*time.Millisecond)
	if got := c.rly.StoredADUs(); got != n {
		t.Fatalf("relay holds %d ADUs mid-blackout, want %d", got, n)
	}
	if got := c.snd.BufferedADUs(); got != 0 {
		t.Fatalf("sender still retains %d ADUs; custody ack crosses the healthy upstream hop", got)
	}

	c.run(t, 10*time.Second)
	if c.rly.Stats.Heals == 0 {
		t.Fatal("relay never observed the downstream heal")
	}
	if got := c.rly.Stats.RetxADUs; got < n {
		t.Fatalf("relay re-originated %d ADUs, want >= %d", got, n)
	}
	for i := uint64(0); i < n; i++ {
		if c.delivered[i] != 1 {
			t.Fatalf("ADU %d delivered %d times, want exactly once", i, c.delivered[i])
		}
	}
	if c.rly.StoredADUs() != 0 {
		t.Fatalf("custody store did not drain: %d ADUs", c.rly.StoredADUs())
	}
}

// TestBoundedStorageEviction overfills a tiny custody store while the
// downstream link is dark: storage never exceeds the bound, oldest
// Standard ADUs are evicted to make room, and every Critical ADU
// survives to delivery.
func TestBoundedStorageEviction(t *testing.T) {
	up := netsim.LinkConfig{RateBps: 50e6, Delay: 5 * time.Millisecond}
	down := netsim.LinkConfig{RateBps: 20e6, Delay: 20 * time.Millisecond}
	const limit = 8 << 10
	c := newChain(t, up, down,
		alf.Config{
			Custody:        true,
			HeartbeatLimit: 1 << 20,
			HoldTime:       time.Second,
			MaxNacks:       3,
		},
		relay.Config{
			StorageLimit: limit,
			CustodyTimer: 5 * time.Millisecond,
			HealPoll:     50 * time.Millisecond,
		})

	in := faults.New(c.sched, 1)
	in.Blackout([]*netsim.Link{c.rd}, 10*time.Millisecond, 2*time.Second)

	// 10 ADUs × ~1.6 KiB wire = 2× the bound. Every third is Critical:
	// the four Critical ADUs (~6.4 KiB) fit, the Standards contend.
	const n = 10
	critical := map[uint64]bool{}
	c.sched.After(50*time.Millisecond, func() {
		for i := 0; i < n; i++ {
			class := alf.Standard
			if i%3 == 0 {
				class = alf.Critical
				critical[uint64(i)] = true
			}
			if _, err := c.snd.SendClass(uint64(i), xcode.SyntaxRaw, payload(uint64(i), 1536), class); err != nil {
				t.Fatal(err)
			}
		}
	})
	c.run(t, 20*time.Second)

	if got := c.rly.Stats.MaxStoredBytes; got > limit {
		t.Fatalf("custody store peaked at %d bytes, bound is %d", got, limit)
	}
	if c.rly.Stats.Evicted == 0 {
		t.Fatal("2x-overcommitted store evicted nothing")
	}
	for name := range critical {
		if c.delivered[name] != 1 {
			t.Fatalf("Critical ADU %d delivered %d times, want exactly once; relay must never evict Critical custody",
				name, c.delivered[name])
		}
	}
	for name, times := range c.delivered {
		if times != 1 {
			t.Fatalf("ADU %d delivered %d times", name, times)
		}
	}
}

// TestConfigValidate pins the per-field rejection contract.
func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  relay.Config
	}{
		{"negative storage", relay.Config{StorageLimit: -1, CustodyTimer: time.Second}},
		{"zero custody timer", relay.Config{}},
		{"negative custody timer", relay.Config{CustodyTimer: -time.Second}},
		{"negative retry", relay.Config{CustodyTimer: time.Second, RetryInterval: -1}},
		{"negative heal poll", relay.Config{CustodyTimer: time.Second, HealPoll: -1}},
	} {
		err := tc.cfg.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !errors.Is(err, alf.ErrConfig) {
			t.Fatalf("%s: error %v does not wrap alf.ErrConfig", tc.name, err)
		}
	}
	if err := (&relay.Config{CustodyTimer: time.Second}).Validate(); err != nil {
		t.Fatalf("minimal valid config rejected: %v", err)
	}
}
