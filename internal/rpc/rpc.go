// Package rpc implements remote procedure call over ALF streams — the
// paper's general paradigm for data that must land in distinct
// application variables (§5, §6): "the incoming data is made to appear
// as parameters of a subroutine call".
//
// Each call is one ADU (tag = call id) whose payload is an
// xcode.Message: the method name followed by the arguments in the
// chosen transfer syntax. Each reply is one ADU on the reverse stream
// (same tag) carrying a status and the results. Because ADUs complete
// independently, concurrent calls never head-of-line block each other:
// a lost call packet delays only that call.
package rpc

import (
	"errors"
	"fmt"

	alf "repro/internal/core"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// Errors.
var (
	ErrTimeout  = errors.New("rpc: call timed out")
	ErrNoMethod = errors.New("rpc: no such method")
	ErrBadCall  = errors.New("rpc: malformed call message")
	ErrBadReply = errors.New("rpc: malformed reply message")
	ErrShutdown = errors.New("rpc: client closed")
)

// Reply status codes (first value of a reply message).
const (
	statusOK    = 0
	statusError = 1
)

// Handler implements one remote method.
type Handler func(args xcode.Message) (xcode.Message, error)

// Server dispatches incoming call ADUs to registered handlers and
// returns reply ADUs on its sender.
type Server struct {
	reply *alf.Sender
	codec xcode.Codec
	reg   map[string]Handler

	Stats ServerStats
}

// ServerStats counts server events.
type ServerStats struct {
	Calls     int64
	Errors    int64 // handler or lookup failures reported to callers
	BadCalls  int64 // undecodable call messages (dropped, no reply)
	ReplyFail int64 // replies the transport refused
}

// NewServer creates a server replying through reply using codec for
// reply bodies. Wire the call stream with rcv.OnADU = srv.HandleCall.
func NewServer(reply *alf.Sender, codec xcode.Codec) *Server {
	return &Server{reply: reply, codec: codec, reg: make(map[string]Handler)}
}

// Register installs a handler for method. Registering twice replaces.
func (s *Server) Register(method string, h Handler) { s.reg[method] = h }

// HandleCall processes one call ADU.
func (s *Server) HandleCall(adu alf.ADU) {
	msg, _, _, err := xcode.DecodeMessage(adu.Data)
	if err != nil || len(msg) == 0 || msg[0].Kind != xcode.KindString {
		s.Stats.BadCalls++
		return
	}
	s.Stats.Calls++
	method := msg[0].Str
	args := msg[1:]

	var result xcode.Message
	h, ok := s.reg[method]
	if !ok {
		err = fmt.Errorf("%w: %q", ErrNoMethod, method)
	} else {
		result, err = h(args)
	}

	var body xcode.Message
	if err != nil {
		s.Stats.Errors++
		body = xcode.Message{xcode.Int32Value(statusError), xcode.StringValue(err.Error())}
	} else {
		body = append(xcode.Message{xcode.Int32Value(statusOK)}, result...)
	}
	enc, encErr := xcode.EncodeMessage(s.codec, nil, body)
	if encErr != nil {
		s.Stats.ReplyFail++
		return
	}
	if _, err := s.reply.Send(adu.Tag, s.codec.ID(), enc); err != nil {
		s.Stats.ReplyFail++
	}
}

// Client issues calls over an ALF sender and matches replies arriving
// on the reverse stream.
type Client struct {
	call  *alf.Sender
	sched *sim.Scheduler
	codec xcode.Codec
	// Timeout bounds each call (default 5 s of virtual time).
	Timeout sim.Duration

	nextID  uint64
	pending map[uint64]*pendingCall
	closed  bool

	Stats ClientStats
}

// ClientStats counts client events.
type ClientStats struct {
	Calls      int64
	Replies    int64
	Timeouts   int64
	BadReplies int64
	Orphans    int64 // replies with no pending call (late after timeout)
}

type pendingCall struct {
	done  func(xcode.Message, error)
	timer *sim.Timer
}

// NewClient creates a client calling through call with codec-encoded
// bodies. Wire the reply stream with rcv.OnADU = cli.HandleReply.
func NewClient(sched *sim.Scheduler, call *alf.Sender, codec xcode.Codec) *Client {
	return &Client{
		call:    call,
		sched:   sched,
		codec:   codec,
		Timeout: 5e9,
		pending: make(map[uint64]*pendingCall),
	}
}

// Pending returns the number of in-flight calls.
func (c *Client) Pending() int { return len(c.pending) }

// Close fails all pending calls with ErrShutdown and refuses new ones.
func (c *Client) Close() {
	c.closed = true
	for id, p := range c.pending {
		delete(c.pending, id)
		p.timer.Stop()
		p.done(nil, ErrShutdown)
	}
}

// Go issues method(args...) asynchronously; done is invoked exactly
// once with the results or an error. The returned id is the call's ADU
// tag.
func (c *Client) Go(method string, args xcode.Message, done func(xcode.Message, error)) (uint64, error) {
	if c.closed {
		return 0, ErrShutdown
	}
	id := c.nextID
	c.nextID++
	body := append(xcode.Message{xcode.StringValue(method)}, args...)
	enc, err := xcode.EncodeMessage(c.codec, nil, body)
	if err != nil {
		return 0, err
	}
	p := &pendingCall{done: done}
	p.timer = c.sched.NewTimer(func() {
		if _, ok := c.pending[id]; !ok {
			return
		}
		delete(c.pending, id)
		c.Stats.Timeouts++
		done(nil, fmt.Errorf("%w: %s (call %d)", ErrTimeout, method, id))
	})
	c.pending[id] = p
	c.Stats.Calls++
	if _, err := c.call.Send(id, c.codec.ID(), enc); err != nil {
		delete(c.pending, id)
		return 0, err
	}
	p.timer.Reset(c.Timeout)
	return id, nil
}

// HandleReply processes one reply ADU.
func (c *Client) HandleReply(adu alf.ADU) {
	p, ok := c.pending[adu.Tag]
	if !ok {
		c.Stats.Orphans++
		return
	}
	delete(c.pending, adu.Tag)
	p.timer.Stop()

	msg, _, _, err := xcode.DecodeMessage(adu.Data)
	if err != nil || len(msg) == 0 || (msg[0].Kind != xcode.KindInt32 && msg[0].Kind != xcode.KindInt64) {
		c.Stats.BadReplies++
		p.done(nil, ErrBadReply)
		return
	}
	c.Stats.Replies++
	if msg[0].I64 == statusError {
		text := "remote error"
		if len(msg) > 1 && msg[1].Kind == xcode.KindString {
			text = msg[1].Str
		}
		p.done(nil, errors.New("rpc: "+text))
		return
	}
	p.done(msg[1:], nil)
}
