package rpc

import (
	"errors"
	"strings"
	"testing"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// rig wires a client and server over two ALF streams (calls a->b,
// replies b->a) with independent control channels.
type rig struct {
	sched  *sim.Scheduler
	client *Client
	server *Server
}

func newRig(t *testing.T, linkCfg netsim.LinkConfig, codec xcode.Codec, seed int64) *rig {
	t.Helper()
	s := sim.NewScheduler()
	n := netsim.New(s, seed)
	a := n.NewNode("client")
	b := n.NewNode("server")
	ab, ba := n.NewDuplex(a, b, linkCfg)

	cfg := alf.Config{NackDelay: 5 * time.Millisecond, NackInterval: 5 * time.Millisecond}
	callCfg, replyCfg := cfg, cfg
	callCfg.StreamID = 1
	replyCfg.StreamID = 2

	callSnd, err := alf.NewSender(s, ab.Send, callCfg)
	if err != nil {
		t.Fatal(err)
	}
	callRcv, err := alf.NewReceiver(s, ba.Send, callCfg)
	if err != nil {
		t.Fatal(err)
	}
	replySnd, err := alf.NewSender(s, ba.Send, replyCfg)
	if err != nil {
		t.Fatal(err)
	}
	replyRcv, err := alf.NewReceiver(s, ab.Send, replyCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Node demux: each node sees its stream's data plus the other
	// stream's control.
	a.SetHandler(func(p *netsim.Packet) {
		if callSnd.HandleControl(p.Payload) != nil {
			replyRcv.HandlePacket(p.Payload)
		}
	})
	b.SetHandler(func(p *netsim.Packet) {
		if replySnd.HandleControl(p.Payload) != nil {
			callRcv.HandlePacket(p.Payload)
		}
	})

	r := &rig{sched: s}
	r.client = NewClient(s, callSnd, codec)
	r.server = NewServer(replySnd, codec)
	callRcv.OnADU = r.server.HandleCall
	replyRcv.OnADU = r.client.HandleReply
	return r
}

func registerMath(srv *Server) {
	srv.Register("sum", func(args xcode.Message) (xcode.Message, error) {
		var total int64
		for _, a := range args {
			switch a.Kind {
			case xcode.KindInt32, xcode.KindInt64:
				total += a.I64
			case xcode.KindInt32s:
				for _, x := range a.Ints {
					total += int64(x)
				}
			}
		}
		return xcode.Message{xcode.Int64Value(total)}, nil
	})
	srv.Register("echo", func(args xcode.Message) (xcode.Message, error) {
		return args, nil
	})
	srv.Register("fail", func(args xcode.Message) (xcode.Message, error) {
		return nil, errors.New("deliberate failure")
	})
}

func TestBasicCall(t *testing.T) {
	for _, codec := range xcode.Codecs() {
		r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, codec, 1)
		registerMath(r.server)
		var got xcode.Message
		var gotErr error
		r.client.Go("sum", xcode.Message{
			xcode.Int32Value(40), xcode.Int32Value(2),
		}, func(m xcode.Message, err error) { got, gotErr = m, err })
		r.sched.Run()
		if gotErr != nil {
			t.Fatalf("%s: %v", codec.Name(), gotErr)
		}
		if len(got) != 1 || got[0].I64 != 42 {
			t.Errorf("%s: result = %+v", codec.Name(), got)
		}
	}
}

func TestEchoAllValueKinds(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, xcode.XDR{}, 1)
	registerMath(r.server)
	args := xcode.Message{
		xcode.BytesValue([]byte{1, 2, 3}),
		xcode.StringValue("hello"),
		xcode.Int32sValue([]int32{-1, 0, 1}),
		xcode.Int64Value(1 << 40),
	}
	var got xcode.Message
	r.client.Go("echo", args, func(m xcode.Message, err error) {
		if err != nil {
			t.Errorf("echo: %v", err)
		}
		got = m
	})
	r.sched.Run()
	if len(got) != len(args) {
		t.Fatalf("echoed %d of %d values", len(got), len(args))
	}
	for i := range args {
		if !got[i].Equal(args[i]) {
			t.Errorf("value %d mismatch: %+v != %+v", i, got[i], args[i])
		}
	}
}

func TestRemoteError(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, xcode.BER{}, 1)
	registerMath(r.server)
	var gotErr error
	r.client.Go("fail", nil, func(m xcode.Message, err error) { gotErr = err })
	r.sched.Run()
	if gotErr == nil || !strings.Contains(gotErr.Error(), "deliberate failure") {
		t.Errorf("err = %v", gotErr)
	}
	if r.server.Stats.Errors != 1 {
		t.Errorf("server errors = %d", r.server.Stats.Errors)
	}
}

func TestUnknownMethod(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, xcode.BER{}, 1)
	var gotErr error
	r.client.Go("nope", nil, func(m xcode.Message, err error) { gotErr = err })
	r.sched.Run()
	if gotErr == nil || !strings.Contains(gotErr.Error(), "no such method") {
		t.Errorf("err = %v", gotErr)
	}
}

func TestConcurrentCallsIndependentUnderLoss(t *testing.T) {
	// The ALF property at the RPC level: many in-flight calls; loss
	// delays only the affected calls. All complete.
	r := newRig(t, netsim.LinkConfig{Delay: 2 * time.Millisecond, LossProb: 0.1}, xcode.XDR{}, 7)
	registerMath(r.server)
	const n = 100
	results := map[int]int64{}
	for i := 0; i < n; i++ {
		i := i
		r.client.Go("sum", xcode.Message{xcode.Int32Value(int32(i)), xcode.Int32Value(int32(i))},
			func(m xcode.Message, err error) {
				if err != nil {
					t.Errorf("call %d: %v", i, err)
					return
				}
				results[i] = m[0].I64
			})
	}
	r.sched.Run()
	if len(results) != n {
		t.Fatalf("completed %d of %d", len(results), n)
	}
	for i, v := range results {
		if v != int64(2*i) {
			t.Errorf("call %d = %d", i, v)
		}
	}
	if r.client.Pending() != 0 {
		t.Errorf("pending = %d", r.client.Pending())
	}
}

func TestTimeout(t *testing.T) {
	// Server's replies are blackholed: calls must time out.
	s := sim.NewScheduler()
	cfg := alf.Config{HeartbeatLimit: 1}
	callSnd, _ := alf.NewSender(s, func([]byte) error { return nil }, cfg)
	cli := NewClient(s, callSnd, xcode.BER{})
	cli.Timeout = 100 * time.Millisecond
	var gotErr error
	cli.Go("x", nil, func(m xcode.Message, err error) { gotErr = err })
	s.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", gotErr)
	}
	if cli.Stats.Timeouts != 1 || cli.Pending() != 0 {
		t.Errorf("stats = %+v pending = %d", cli.Stats, cli.Pending())
	}
}

func TestLateReplyIsOrphan(t *testing.T) {
	s := sim.NewScheduler()
	cfg := alf.Config{HeartbeatLimit: 1}
	callSnd, _ := alf.NewSender(s, func([]byte) error { return nil }, cfg)
	cli := NewClient(s, callSnd, xcode.BER{})
	cli.Timeout = 10 * time.Millisecond
	cli.Go("x", nil, func(m xcode.Message, err error) {})
	s.Run() // times out
	enc, _ := xcode.EncodeMessage(xcode.BER{}, nil, xcode.Message{xcode.Int32Value(statusOK)})
	cli.HandleReply(alf.ADU{Tag: 0, Data: enc})
	if cli.Stats.Orphans != 1 {
		t.Errorf("orphans = %d", cli.Stats.Orphans)
	}
}

func TestClientClose(t *testing.T) {
	s := sim.NewScheduler()
	cfg := alf.Config{HeartbeatLimit: 1}
	callSnd, _ := alf.NewSender(s, func([]byte) error { return nil }, cfg)
	cli := NewClient(s, callSnd, xcode.BER{})
	var errs []error
	cli.Go("x", nil, func(m xcode.Message, err error) { errs = append(errs, err) })
	cli.Close()
	if len(errs) != 1 || !errors.Is(errs[0], ErrShutdown) {
		t.Errorf("errs = %v", errs)
	}
	if _, err := cli.Go("y", nil, nil); !errors.Is(err, ErrShutdown) {
		t.Errorf("post-close call err = %v", err)
	}
}

func TestBadCallDropped(t *testing.T) {
	srv := NewServer(mustSender(t), xcode.BER{})
	srv.HandleCall(alf.ADU{Tag: 1, Data: []byte{0xFF, 0xFF}})
	if srv.Stats.BadCalls != 1 {
		t.Errorf("bad calls = %d", srv.Stats.BadCalls)
	}
	// A call whose first value is not a method name.
	enc, _ := xcode.EncodeMessage(xcode.BER{}, nil, xcode.Message{xcode.Int32Value(1)})
	srv.HandleCall(alf.ADU{Tag: 2, Data: enc})
	if srv.Stats.BadCalls != 2 {
		t.Errorf("bad calls = %d", srv.Stats.BadCalls)
	}
}

func mustSender(t *testing.T) *alf.Sender {
	t.Helper()
	s := sim.NewScheduler()
	snd, err := alf.NewSender(s, func([]byte) error { return nil }, alf.Config{HeartbeatLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	return snd
}

func TestNestedStructuredArguments(t *testing.T) {
	// RPC arguments are structured records (§5): nested sequences must
	// survive the trip in every codec.
	for _, codec := range xcode.Codecs() {
		r := newRig(t, netsim.LinkConfig{Delay: time.Millisecond}, codec, 1)
		r.server.Register("describe", func(args xcode.Message) (xcode.Message, error) {
			rec := args[0]
			if rec.Kind != xcode.KindSeq {
				return nil, errors.New("want a record")
			}
			return xcode.Message{xcode.Int32Value(int32(len(rec.Seq)))}, nil
		})
		rec := xcode.SeqValue(
			xcode.StringValue("user"),
			xcode.Int32Value(99),
			xcode.SeqValue(xcode.StringValue("nested"), xcode.BytesValue([]byte{1})),
		)
		var got int64 = -1
		r.client.Go("describe", xcode.Message{rec}, func(m xcode.Message, err error) {
			if err != nil {
				t.Errorf("%s: %v", codec.Name(), err)
				return
			}
			got = m[0].I64
		})
		r.sched.Run()
		if got != 3 {
			t.Errorf("%s: field count = %d, want 3", codec.Name(), got)
		}
	}
}
