// Package scramble implements a keystream cipher used as the encryption
// data-manipulation stage (paper §3). The paper's argument is structural:
// encryption is one more pass that reads and writes every byte, and ILP
// should be able to fuse it with the other passes. Any byte-wise
// keystream cipher exercises that code path, so this package uses a
// xorshift64* generator keyed by a 64-bit secret.
//
// SECURITY: this is a simulation stage, NOT a real cipher. Do not use it
// to protect data.
package scramble

import "encoding/binary"

// Keystream generates a deterministic pseudo-random byte stream from a
// key using xorshift64*. The zero key is remapped internally (xorshift
// state must be non-zero).
type Keystream struct {
	state uint64
	buf   [8]byte
	n     int // bytes of buf consumed
}

// NewKeystream returns a keystream positioned at offset 0.
func NewKeystream(key uint64) *Keystream {
	k := &Keystream{}
	k.Reset(key)
	return k
}

// Reset rewinds the keystream to offset 0 with a (possibly new) key.
func (k *Keystream) Reset(key uint64) {
	if key == 0 {
		key = 0x9E3779B97F4A7C15 // golden-ratio constant; any non-zero value
	}
	k.state = key
	k.n = 8 // buffer empty
}

func (k *Keystream) next() uint64 {
	x := k.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	k.state = x
	return x * 0x2545F4914F6CDD1D
}

// Byte returns the next keystream byte.
func (k *Keystream) Byte() byte {
	if k.n == 8 {
		binary.LittleEndian.PutUint64(k.buf[:], k.next())
		k.n = 0
	}
	b := k.buf[k.n]
	k.n++
	return b
}

// Word64 returns the next eight keystream bytes packed as a
// little-endian word, so integrated loops can decrypt a 64-bit load
// with a single XOR (see internal/ilp). It is exactly equivalent to
// eight successive Byte calls.
func (k *Keystream) Word64() uint64 {
	if k.n == 8 {
		return k.next()
	}
	var w uint64
	for i := 0; i < 8; i++ {
		w |= uint64(k.Byte()) << uint(8*i)
	}
	return w
}

// XOR applies the keystream to src, writing into dst (dst and src may be
// the same slice for in-place operation). It returns the number of bytes
// processed, min(len(dst), len(src)). The inner loop runs eight bytes at
// a time when aligned.
func (k *Keystream) XOR(dst, src []byte) int {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	// Drain any partial word first.
	for i < n && k.n != 8 {
		dst[i] = src[i] ^ k.Byte()
		i++
	}
	// Word-at-a-time main loop. Deliberately NOT 4-way unrolled like the
	// internal/ilp kernels: the xorshift64* generator is one serial
	// dependency chain, so the chain latency — not loop overhead — is
	// the critical path, and the rolled loop already saturates it.
	// Measured on the reference machine (4 KiB): rolled ≈1.02 µs,
	// 4-way unrolled (state hoisted to a local) ≈1.23 µs — the unroll
	// only adds register pressure. The counter-mode kernels (WordAt in
	// this package, ChaCha20 in internal/cipher) have independent
	// per-block work and do profit from unrolling/interleaving.
	for n-i >= 8 {
		w := binary.LittleEndian.Uint64(src[i : i+8])
		binary.LittleEndian.PutUint64(dst[i:i+8], w^k.next())
		i += 8
	}
	for i < n {
		dst[i] = src[i] ^ k.Byte()
		i++
	}
	return n
}

// Apply is a convenience that encrypts (or decrypts — the operation is an
// involution) buf in place from offset 0 with the given key.
func Apply(key uint64, buf []byte) {
	NewKeystream(key).XOR(buf, buf)
}

// WordAt returns the keystream word for 8-byte word index idx under key
// — a position-addressable ("counter mode") keystream, so data units
// can be deciphered out of order and from any aligned offset. This is
// the cipher shape Application Level Framing wants: each ADU is its own
// cryptographic synchronization point. The mixing function is
// splitmix64.
func WordAt(key, idx uint64) uint64 {
	z := key + (idx+1)*0x9E3779B97F4A7C15
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// XORAt applies the counter-mode keystream to buf, which begins at the
// given byte offset within the stream. offset must be a multiple of 8;
// buf may end at any byte. Encrypt and decrypt are the same operation.
func XORAt(key uint64, offset int, buf []byte) {
	if offset%8 != 0 {
		panic("scramble: XORAt offset must be 8-byte aligned")
	}
	idx := uint64(offset / 8)
	i := 0
	for ; len(buf)-i >= 8; i += 8 {
		w := binary.LittleEndian.Uint64(buf[i:])
		binary.LittleEndian.PutUint64(buf[i:], w^WordAt(key, idx))
		idx++
	}
	if i < len(buf) {
		w := WordAt(key, idx)
		for ; i < len(buf); i++ {
			buf[i] ^= byte(w)
			w >>= 8
		}
	}
}
