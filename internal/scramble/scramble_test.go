package scramble

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestApplyIsInvolution(t *testing.T) {
	f := func(key uint64, data []byte) bool {
		orig := append([]byte(nil), data...)
		Apply(key, data)
		Apply(key, data)
		return bytes.Equal(orig, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestApplyChangesData(t *testing.T) {
	data := make([]byte, 256)
	Apply(1, data)
	if bytes.Equal(data, make([]byte, 256)) {
		t.Error("keystream left zero buffer unchanged")
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	Apply(1, a)
	Apply(2, b)
	if bytes.Equal(a, b) {
		t.Error("keys 1 and 2 produced identical keystreams")
	}
}

func TestZeroKeyUsable(t *testing.T) {
	data := make([]byte, 32)
	Apply(0, data)
	if bytes.Equal(data, make([]byte, 32)) {
		t.Error("zero key produced all-zero keystream")
	}
}

func TestXORChunkedMatchesWhole(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	src := make([]byte, 1000)
	r.Read(src)

	whole := append([]byte(nil), src...)
	NewKeystream(99).XOR(whole, whole)

	chunked := append([]byte(nil), src...)
	ks := NewKeystream(99)
	// Odd chunk sizes force the partial-word path.
	for off := 0; off < len(chunked); {
		n := 7
		if off+n > len(chunked) {
			n = len(chunked) - off
		}
		ks.XOR(chunked[off:off+n], chunked[off:off+n])
		off += n
	}
	if !bytes.Equal(whole, chunked) {
		t.Error("chunked XOR differs from single-shot XOR")
	}
}

func TestXORLengthMismatch(t *testing.T) {
	ks := NewKeystream(5)
	dst := make([]byte, 4)
	src := []byte{1, 2, 3, 4, 5, 6}
	if n := ks.XOR(dst, src); n != 4 {
		t.Errorf("XOR returned %d, want 4", n)
	}
	ks2 := NewKeystream(5)
	dst2 := make([]byte, 8)
	if n := ks2.XOR(dst2, src[:2]); n != 2 {
		t.Errorf("XOR returned %d, want 2", n)
	}
}

func TestResetRewinds(t *testing.T) {
	ks := NewKeystream(7)
	a := make([]byte, 16)
	ks.XOR(a, make([]byte, 16))
	ks.Reset(7)
	b := make([]byte, 16)
	ks.XOR(b, make([]byte, 16))
	if !bytes.Equal(a, b) {
		t.Error("Reset did not rewind the keystream")
	}
}

func TestByteMatchesXOR(t *testing.T) {
	ks1 := NewKeystream(11)
	ks2 := NewKeystream(11)
	stream := make([]byte, 40)
	ks1.XOR(stream, make([]byte, 40))
	for i := range stream {
		if b := ks2.Byte(); b != stream[i] {
			t.Fatalf("Byte()[%d] = %#x, want %#x", i, b, stream[i])
		}
	}
}

func BenchmarkXOR_4KB(b *testing.B) {
	data := make([]byte, 4096)
	ks := NewKeystream(1)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ks.XOR(data, data)
	}
}

func TestXORAtInvolution(t *testing.T) {
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	orig := append([]byte(nil), data...)
	XORAt(5, 0, data)
	if bytes.Equal(data, orig) {
		t.Error("XORAt did nothing")
	}
	XORAt(5, 0, data)
	if !bytes.Equal(data, orig) {
		t.Error("XORAt not an involution")
	}
}

func TestXORAtChunkedMatchesWhole(t *testing.T) {
	// Applying the counter-mode keystream to 8-aligned chunks in any
	// order must equal one whole-buffer application.
	r := rand.New(rand.NewSource(4))
	n := 1000
	whole := make([]byte, n)
	r.Read(whole)
	chunked := append([]byte(nil), whole...)
	XORAt(77, 0, whole)

	// Chunks of 64,8,16... applied back-to-front.
	bounds := []int{0, 64, 72, 88, 512, 1000}
	for i := len(bounds) - 2; i >= 0; i-- {
		XORAt(77, bounds[i], chunked[bounds[i]:bounds[i+1]])
	}
	if !bytes.Equal(whole, chunked) {
		t.Error("chunked XORAt differs from whole")
	}
}

func TestXORAtUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unaligned offset did not panic")
		}
	}()
	XORAt(1, 3, make([]byte, 8))
}

func TestWordAtDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		w := WordAt(9, i)
		if seen[w] {
			t.Fatalf("WordAt collision at idx %d", i)
		}
		seen[w] = true
	}
	if WordAt(1, 0) == WordAt(2, 0) {
		t.Error("different keys gave same word")
	}
	if WordAt(3, 5) != WordAt(3, 5) {
		t.Error("WordAt not deterministic")
	}
}
