// Package session is the out-of-band control plane the paper
// deliberately separates from data transfer (§3: "session initiation,
// service location, and so on ... do not occur at the same time as data
// transfer"): a small reliable handshake that establishes an ALF stream
// — negotiating the transfer syntax (§5's abstract-syntax agreement),
// the stream identity, fragmentation and pacing parameters, the
// recovery policy, FEC, and a shared scramble key.
//
// The initiator retransmits its OFFER on a timer until an ACCEPT or
// REJECT arrives; the responder answers duplicate OFFERs idempotently.
// Syntax negotiation picks the first entry of the initiator's
// preference list that the responder supports.
//
// The "key exchange" XORs one random contribution from each side — like
// everything in internal/scramble it is a simulation stand-in, not
// cryptography.
package session

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/checksum"
	alf "repro/internal/core"
	"repro/internal/sim"
	"repro/internal/xcode"
)

// Wire message types (distinct from the ALF data-plane types 1-3).
const (
	typeOffer  = 10
	typeAccept = 11
	typeReject = 12
)

// Reject reason codes.
const (
	ReasonNoCommonSyntax = 1
	ReasonRefused        = 2
	ReasonBadParams      = 3
)

// Errors.
var (
	ErrTimeout    = errors.New("session: handshake timed out")
	ErrRejected   = errors.New("session: offer rejected")
	ErrBadMessage = errors.New("session: malformed message")
	ErrState      = errors.New("session: unexpected message for state")
)

// Params is what the initiator proposes.
type Params struct {
	// StreamID for the data stream to establish.
	StreamID byte
	// Syntaxes in preference order; the responder picks the first it
	// supports.
	Syntaxes []xcode.SyntaxID
	// MTU, Policy, FECGroup, RateBps seed the alf.Config both ends will
	// use (zero values take alf defaults).
	MTU      int
	Policy   alf.Policy
	FECGroup int
	RateBps  float64
	// Encrypt requests a scramble key derived from both sides'
	// contributions.
	Encrypt bool
}

// Result is the established stream description, identical at both ends.
type Result struct {
	Params Params
	// Syntax is the negotiated transfer syntax.
	Syntax xcode.SyntaxID
	// Key is the combined scramble key (zero when Encrypt is false).
	Key uint64
}

// Config converts the negotiated result into an alf.Config.
func (r Result) Config() alf.Config {
	return alf.Config{
		StreamID: r.Params.StreamID,
		MTU:      r.Params.MTU,
		Policy:   r.Params.Policy,
		FECGroup: r.Params.FECGroup,
		RateBps:  r.Params.RateBps,
		Key:      r.Key,
	}
}

// offer wire layout:
//
//	0      type (10)
//	1      stream id
//	2      flags (bit0 encrypt)
//	3      policy
//	4:6    MTU
//	6:8    FEC group
//	8:16   rate (bits/s, uint64)
//	16:24  initiator key half
//	24     syntax count k
//	25:..  k syntax ids
//	..+2   checksum
func encodeOffer(p Params, keyHalf uint64) []byte {
	k := len(p.Syntaxes)
	msg := make([]byte, 25+k)
	msg[0] = typeOffer
	msg[1] = p.StreamID
	if p.Encrypt {
		msg[2] |= 1
	}
	msg[3] = byte(p.Policy)
	binary.BigEndian.PutUint16(msg[4:6], uint16(p.MTU))
	binary.BigEndian.PutUint16(msg[6:8], uint16(p.FECGroup))
	binary.BigEndian.PutUint64(msg[8:16], uint64(p.RateBps))
	binary.BigEndian.PutUint64(msg[16:24], keyHalf)
	msg[24] = byte(k)
	for i, s := range p.Syntaxes {
		msg[25+i] = byte(s)
	}
	return seal(msg)
}

func parseOffer(pkt []byte) (Params, uint64, error) {
	var p Params
	if len(pkt) < sealedLen(26) || pkt[0] != typeOffer || !verify(pkt) {
		return p, 0, fmt.Errorf("%w: offer", ErrBadMessage)
	}
	k := int(pkt[24])
	if len(pkt) != sealedLen(25+k) {
		return p, 0, fmt.Errorf("%w: offer length", ErrBadMessage)
	}
	p.StreamID = pkt[1]
	p.Encrypt = pkt[2]&1 != 0
	p.Policy = alf.Policy(pkt[3])
	p.MTU = int(binary.BigEndian.Uint16(pkt[4:6]))
	p.FECGroup = int(binary.BigEndian.Uint16(pkt[6:8]))
	p.RateBps = float64(binary.BigEndian.Uint64(pkt[8:16]))
	keyHalf := binary.BigEndian.Uint64(pkt[16:24])
	for i := 0; i < k; i++ {
		p.Syntaxes = append(p.Syntaxes, xcode.SyntaxID(pkt[25+i]))
	}
	return p, keyHalf, nil
}

// accept wire layout: type, stream, chosen syntax, responder key half,
// checksum.
func encodeAccept(stream byte, syntax xcode.SyntaxID, keyHalf uint64) []byte {
	msg := make([]byte, 11)
	msg[0] = typeAccept
	msg[1] = stream
	msg[2] = byte(syntax)
	binary.BigEndian.PutUint64(msg[3:11], keyHalf)
	return seal(msg)
}

func parseAccept(pkt []byte) (stream byte, syntax xcode.SyntaxID, keyHalf uint64, err error) {
	if len(pkt) != sealedLen(11) || pkt[0] != typeAccept || !verify(pkt) {
		return 0, 0, 0, fmt.Errorf("%w: accept", ErrBadMessage)
	}
	return pkt[1], xcode.SyntaxID(pkt[2]), binary.BigEndian.Uint64(pkt[3:11]), nil
}

func encodeReject(stream byte, reason byte) []byte {
	msg := make([]byte, 3)
	msg[0] = typeReject
	msg[1] = stream
	msg[2] = reason
	return seal(msg)
}

func parseReject(pkt []byte) (stream byte, reason byte, err error) {
	if len(pkt) != sealedLen(3) || pkt[0] != typeReject || !verify(pkt) {
		return 0, 0, fmt.Errorf("%w: reject", ErrBadMessage)
	}
	return pkt[1], pkt[2], nil
}

// seal pads body to even length (the 16-bit one's-complement check
// must sit word-aligned) and appends the checksum.
func seal(body []byte) []byte {
	if len(body)%2 == 1 {
		body = append(body, 0)
	}
	body = append(body, 0, 0)
	ck := checksum.Sum16(body[:len(body)-2])
	binary.BigEndian.PutUint16(body[len(body)-2:], ck)
	return body
}

// sealedLen returns the wire length of a body of n bytes after seal.
func sealedLen(n int) int { return n + n%2 + 2 }

func verify(msg []byte) bool { return checksum.Verify16(msg) }

// MessageType reports whether pkt is a session-plane message (10-12)
// or not (0), for node demultiplexers.
func MessageType(pkt []byte) int {
	if len(pkt) > 0 && pkt[0] >= typeOffer && pkt[0] <= typeReject {
		return int(pkt[0])
	}
	return 0
}

// combineKey mixes the two contributions into the stream key.
func combineKey(a, b uint64) uint64 {
	x := a ^ b ^ 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// Initiator drives the opening side of the handshake.
type Initiator struct {
	sched *sim.Scheduler
	rnd   *sim.Rand
	send  func([]byte) error

	// RetryInterval and MaxRetries bound OFFER retransmission
	// (defaults 100 ms, 10).
	RetryInterval sim.Duration
	MaxRetries    int

	// OnEstablished fires once with the negotiated result.
	OnEstablished func(Result)
	// OnFail fires once if the handshake cannot complete.
	OnFail func(error)

	params  Params
	keyHalf uint64
	offer   []byte
	timer   *sim.Timer
	tries   int
	done    bool
	failed  bool
	active  bool
}

// NewInitiator creates an initiator sending handshake messages through
// send. rnd supplies the key contribution.
func NewInitiator(sched *sim.Scheduler, rnd *sim.Rand, send func([]byte) error) *Initiator {
	i := &Initiator{
		sched:         sched,
		rnd:           rnd,
		send:          send,
		RetryInterval: 100 * time.Millisecond,
		MaxRetries:    10,
	}
	i.timer = sched.NewTimer(i.retry)
	return i
}

// Open starts the handshake with the given proposal.
func (i *Initiator) Open(p Params) error {
	if i.active || i.done {
		return fmt.Errorf("%w: handshake already started", ErrState)
	}
	if len(p.Syntaxes) == 0 {
		return fmt.Errorf("%w: no syntaxes offered", ErrBadMessage)
	}
	i.params = p
	i.keyHalf = i.rnd.Uint64()
	i.offer = encodeOffer(p, i.keyHalf)
	i.active = true
	i.tries = 0
	i.retry()
	return nil
}

func (i *Initiator) retry() {
	if i.done || !i.active {
		return
	}
	if i.tries >= i.MaxRetries {
		i.fail(fmt.Errorf("%w after %d offers", ErrTimeout, i.tries))
		return
	}
	i.tries++
	_ = i.send(i.offer)
	i.timer.Reset(i.RetryInterval)
}

func (i *Initiator) fail(err error) {
	i.done = true
	i.failed = true
	i.timer.Stop()
	if i.OnFail != nil {
		i.OnFail(err)
	}
}

// Handle processes one arriving session-plane packet.
func (i *Initiator) Handle(pkt []byte) error {
	if i.done || !i.active {
		return nil // late duplicates are harmless
	}
	switch MessageType(pkt) {
	case typeAccept:
		stream, syntax, theirHalf, err := parseAccept(pkt)
		if err != nil {
			return err
		}
		if stream != i.params.StreamID {
			return nil
		}
		supported := false
		for _, s := range i.params.Syntaxes {
			if s == syntax {
				supported = true
				break
			}
		}
		if !supported {
			i.fail(fmt.Errorf("%w: responder chose unoffered syntax %d", ErrBadMessage, syntax))
			return nil
		}
		i.done = true
		i.timer.Stop()
		res := Result{Params: i.params, Syntax: syntax}
		if i.params.Encrypt {
			res.Key = combineKey(i.keyHalf, theirHalf)
		}
		if i.OnEstablished != nil {
			i.OnEstablished(res)
		}
		return nil
	case typeReject:
		stream, reason, err := parseReject(pkt)
		if err != nil {
			return err
		}
		if stream != i.params.StreamID {
			return nil
		}
		i.fail(fmt.Errorf("%w: reason %d", ErrRejected, reason))
		return nil
	default:
		return fmt.Errorf("%w: type %d", ErrState, MessageType(pkt))
	}
}

// Established reports whether the handshake completed successfully.
func (i *Initiator) Established() bool { return i.done && !i.failed }

// Failed reports whether the handshake ended in failure.
func (i *Initiator) Failed() bool { return i.failed }

// Responder answers offers arriving at the accepting side.
type Responder struct {
	sched *sim.Scheduler
	rnd   *sim.Rand
	send  func([]byte) error

	// Supported lists the transfer syntaxes this side can decode.
	Supported []xcode.SyntaxID
	// Screen, if set, may veto an offer (return a Reason* code, or 0 to
	// accept).
	Screen func(Params) byte
	// OnEstablished fires once per established stream.
	OnEstablished func(Result)

	// established remembers per-stream results so duplicate OFFERs get
	// identical ACCEPTs (idempotence under retransmission).
	established map[byte]*respState
}

type respState struct {
	accept []byte
	result Result
}

// NewResponder creates a responder.
func NewResponder(sched *sim.Scheduler, rnd *sim.Rand, send func([]byte) error, supported []xcode.SyntaxID) *Responder {
	return &Responder{
		sched:       sched,
		rnd:         rnd,
		send:        send,
		Supported:   supported,
		established: make(map[byte]*respState),
	}
}

// Handle processes one arriving session-plane packet.
func (r *Responder) Handle(pkt []byte) error {
	if MessageType(pkt) != typeOffer {
		return fmt.Errorf("%w: type %d", ErrState, MessageType(pkt))
	}
	p, theirHalf, err := parseOffer(pkt)
	if err != nil {
		return err
	}
	if st, dup := r.established[p.StreamID]; dup {
		// Retransmitted OFFER: repeat the identical ACCEPT.
		_ = r.send(st.accept)
		return nil
	}
	if r.Screen != nil {
		if reason := r.Screen(p); reason != 0 {
			_ = r.send(encodeReject(p.StreamID, reason))
			return nil
		}
	}
	chosen := xcode.SyntaxID(0)
	for _, want := range p.Syntaxes {
		for _, have := range r.Supported {
			if want == have {
				chosen = want
				break
			}
		}
		if chosen != 0 {
			break
		}
	}
	if chosen == 0 {
		_ = r.send(encodeReject(p.StreamID, ReasonNoCommonSyntax))
		return nil
	}
	myHalf := r.rnd.Uint64()
	res := Result{Params: p, Syntax: chosen}
	if p.Encrypt {
		res.Key = combineKey(theirHalf, myHalf)
	}
	st := &respState{accept: encodeAccept(p.StreamID, chosen, myHalf), result: res}
	r.established[p.StreamID] = st
	_ = r.send(st.accept)
	if r.OnEstablished != nil {
		r.OnEstablished(res)
	}
	return nil
}

// Result returns the established result for a stream, if any.
func (r *Responder) Result(stream byte) (Result, bool) {
	st, ok := r.established[stream]
	if !ok {
		return Result{}, false
	}
	return st.result, true
}
