package session

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	alf "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xcode"
)

type hsRig struct {
	sched *sim.Scheduler
	init  *Initiator
	resp  *Responder

	initRes *Result
	respRes *Result
	initErr error
}

func newHSRig(t *testing.T, linkCfg netsim.LinkConfig, supported []xcode.SyntaxID, seed int64) *hsRig {
	t.Helper()
	s := sim.NewScheduler()
	n := netsim.New(s, seed)
	a := n.NewNode("init")
	b := n.NewNode("resp")
	ab, ba := n.NewDuplex(a, b, linkCfg)

	r := &hsRig{sched: s}
	r.init = NewInitiator(s, sim.NewRand(seed+1), ab.Send)
	r.resp = NewResponder(s, sim.NewRand(seed+2), ba.Send, supported)
	a.SetHandler(func(p *netsim.Packet) { r.init.Handle(p.Payload) })
	b.SetHandler(func(p *netsim.Packet) { r.resp.Handle(p.Payload) })
	r.init.OnEstablished = func(res Result) { cp := res; r.initRes = &cp }
	r.init.OnFail = func(err error) { r.initErr = err }
	r.resp.OnEstablished = func(res Result) { cp := res; r.respRes = &cp }
	return r
}

func allSyntaxes() []xcode.SyntaxID {
	return []xcode.SyntaxID{xcode.SyntaxRaw, xcode.SyntaxBER, xcode.SyntaxXDR, xcode.SyntaxLWTS}
}

func TestHandshakeCleanLink(t *testing.T) {
	r := newHSRig(t, netsim.LinkConfig{Delay: 5 * time.Millisecond}, allSyntaxes(), 1)
	params := Params{
		StreamID: 3,
		Syntaxes: []xcode.SyntaxID{xcode.SyntaxBER, xcode.SyntaxRaw},
		MTU:      2048,
		Policy:   alf.AppRecompute,
		FECGroup: 4,
		RateBps:  1e7,
		Encrypt:  true,
	}
	if err := r.init.Open(params); err != nil {
		t.Fatal(err)
	}
	r.sched.Run()
	if r.initErr != nil {
		t.Fatalf("handshake failed: %v", r.initErr)
	}
	if r.initRes == nil || r.respRes == nil {
		t.Fatal("handshake incomplete")
	}
	if r.initRes.Syntax != xcode.SyntaxBER {
		t.Errorf("syntax = %d, want BER (first preference)", r.initRes.Syntax)
	}
	if r.initRes.Key == 0 || r.initRes.Key != r.respRes.Key {
		t.Errorf("keys disagree: %x vs %x", r.initRes.Key, r.respRes.Key)
	}
	if !r.init.Established() || r.init.Failed() {
		t.Error("initiator state wrong")
	}
	// Both ends derive identical ALF configs.
	ic, rc := r.initRes.Config(), r.respRes.Config()
	if !reflect.DeepEqual(ic, rc) {
		t.Errorf("configs differ: %+v vs %+v", ic, rc)
	}
	if ic.StreamID != 3 || ic.MTU != 2048 || ic.Policy != alf.AppRecompute ||
		ic.FECGroup != 4 || ic.RateBps != 1e7 || ic.Key == 0 {
		t.Errorf("config lost fields: %+v", ic)
	}
}

func TestHandshakePreferenceOrder(t *testing.T) {
	// The responder supports XDR and raw; the initiator prefers
	// BER > XDR > raw: XDR must win.
	r := newHSRig(t, netsim.LinkConfig{Delay: time.Millisecond},
		[]xcode.SyntaxID{xcode.SyntaxRaw, xcode.SyntaxXDR}, 1)
	r.init.Open(Params{
		StreamID: 1,
		Syntaxes: []xcode.SyntaxID{xcode.SyntaxBER, xcode.SyntaxXDR, xcode.SyntaxRaw},
	})
	r.sched.Run()
	if r.initRes == nil || r.initRes.Syntax != xcode.SyntaxXDR {
		t.Fatalf("negotiated %+v, want XDR", r.initRes)
	}
}

func TestHandshakeNoCommonSyntax(t *testing.T) {
	r := newHSRig(t, netsim.LinkConfig{Delay: time.Millisecond},
		[]xcode.SyntaxID{xcode.SyntaxXDR}, 1)
	r.init.Open(Params{StreamID: 1, Syntaxes: []xcode.SyntaxID{xcode.SyntaxBER}})
	r.sched.Run()
	if !errors.Is(r.initErr, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", r.initErr)
	}
	if r.initRes != nil || r.respRes != nil {
		t.Error("rejected handshake established")
	}
	if !r.init.Failed() {
		t.Error("initiator not marked failed")
	}
}

func TestHandshakeScreening(t *testing.T) {
	r := newHSRig(t, netsim.LinkConfig{Delay: time.Millisecond}, allSyntaxes(), 1)
	r.resp.Screen = func(p Params) byte {
		if p.MTU > 1500 {
			return ReasonBadParams
		}
		return 0
	}
	r.init.Open(Params{StreamID: 1, MTU: 9000, Syntaxes: allSyntaxes()})
	r.sched.Run()
	if !errors.Is(r.initErr, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected via screen", r.initErr)
	}
}

func TestHandshakeSurvivesLoss(t *testing.T) {
	// 40% loss: retransmitted OFFERs and duplicate ACCEPTs must still
	// converge to one identical result on both sides.
	r := newHSRig(t, netsim.LinkConfig{Delay: 2 * time.Millisecond, LossProb: 0.4},
		allSyntaxes(), 17)
	r.init.RetryInterval = 20 * time.Millisecond
	r.init.MaxRetries = 50
	r.init.Open(Params{StreamID: 5, Syntaxes: allSyntaxes(), Encrypt: true})
	r.sched.Run()
	if r.initErr != nil {
		t.Fatalf("handshake failed under loss: %v", r.initErr)
	}
	if r.initRes == nil || r.respRes == nil {
		t.Fatal("incomplete")
	}
	if r.initRes.Key != r.respRes.Key {
		t.Error("duplicate OFFER handling produced different keys")
	}
}

func TestHandshakeTimeout(t *testing.T) {
	s := sim.NewScheduler()
	i := NewInitiator(s, sim.NewRand(1), func([]byte) error { return nil }) // black hole
	i.RetryInterval = 10 * time.Millisecond
	i.MaxRetries = 3
	var gotErr error
	i.OnFail = func(err error) { gotErr = err }
	i.Open(Params{StreamID: 1, Syntaxes: allSyntaxes()})
	s.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	if s.Now() < sim.Time(20*time.Millisecond) {
		t.Error("gave up too fast")
	}
}

func TestOpenTwiceRejected(t *testing.T) {
	s := sim.NewScheduler()
	i := NewInitiator(s, sim.NewRand(1), func([]byte) error { return nil })
	if err := i.Open(Params{StreamID: 1, Syntaxes: allSyntaxes()}); err != nil {
		t.Fatal(err)
	}
	if err := i.Open(Params{StreamID: 2, Syntaxes: allSyntaxes()}); !errors.Is(err, ErrState) {
		t.Errorf("second Open err = %v", err)
	}
}

func TestOpenNeedsSyntaxes(t *testing.T) {
	s := sim.NewScheduler()
	i := NewInitiator(s, sim.NewRand(1), func([]byte) error { return nil })
	if err := i.Open(Params{StreamID: 1}); err == nil {
		t.Error("empty syntax list accepted")
	}
}

func TestMessageCorruptionRejected(t *testing.T) {
	offer := encodeOffer(Params{StreamID: 1, Syntaxes: allSyntaxes()}, 42)
	offer[5] ^= 1
	if _, _, err := parseOffer(offer); !errors.Is(err, ErrBadMessage) {
		t.Errorf("corrupt offer err = %v", err)
	}
	acc := encodeAccept(1, xcode.SyntaxBER, 7)
	acc[3] ^= 1
	if _, _, _, err := parseAccept(acc); !errors.Is(err, ErrBadMessage) {
		t.Errorf("corrupt accept err = %v", err)
	}
	rej := encodeReject(1, ReasonRefused)
	rej[2] ^= 1
	if _, _, err := parseReject(rej); !errors.Is(err, ErrBadMessage) {
		t.Errorf("corrupt reject err = %v", err)
	}
}

func TestMessageType(t *testing.T) {
	if MessageType(encodeOffer(Params{StreamID: 1, Syntaxes: allSyntaxes()}, 1)) != typeOffer {
		t.Error("offer type")
	}
	if MessageType(encodeAccept(1, 1, 1)) != typeAccept {
		t.Error("accept type")
	}
	if MessageType([]byte{1, 2, 3}) != 0 || MessageType(nil) != 0 {
		t.Error("non-session types")
	}
}

func TestResponderResultLookup(t *testing.T) {
	r := newHSRig(t, netsim.LinkConfig{Delay: time.Millisecond}, allSyntaxes(), 1)
	r.init.Open(Params{StreamID: 9, Syntaxes: allSyntaxes()})
	r.sched.Run()
	if _, ok := r.resp.Result(9); !ok {
		t.Error("established stream not found")
	}
	if _, ok := r.resp.Result(8); ok {
		t.Error("phantom stream found")
	}
}

func TestEndToEndNegotiatedStream(t *testing.T) {
	// Full integration: handshake on one node pair, then run an
	// encrypted FEC ALF stream with the negotiated config and verify
	// data flows.
	s := sim.NewScheduler()
	n := netsim.New(s, 31)
	a := n.NewNode("a")
	b := n.NewNode("b")
	ab, ba := n.NewDuplex(a, b, netsim.LinkConfig{Delay: 2 * time.Millisecond, LossProb: 0.05})

	var snd *alf.Sender
	var rcv *alf.Receiver
	var got []alf.ADU

	init := NewInitiator(s, sim.NewRand(1), ab.Send)
	resp := NewResponder(s, sim.NewRand(2), ba.Send, allSyntaxes())

	a.SetHandler(func(p *netsim.Packet) {
		if MessageType(p.Payload) != 0 {
			init.Handle(p.Payload)
			return
		}
		if snd != nil {
			snd.HandleControl(p.Payload)
		}
	})
	b.SetHandler(func(p *netsim.Packet) {
		if MessageType(p.Payload) != 0 {
			resp.Handle(p.Payload)
			return
		}
		if rcv != nil {
			rcv.HandlePacket(p.Payload)
		}
	})

	data := bytes.Repeat([]byte{0x5A}, 20_000)
	resp.OnEstablished = func(res Result) {
		cfg := res.Config()
		cfg.NackDelay = 5 * time.Millisecond
		cfg.NackInterval = 5 * time.Millisecond
		var err error
		rcv, err = alf.NewReceiver(s, ba.Send, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rcv.OnADU = func(adu alf.ADU) { got = append(got, adu) }
	}
	init.OnEstablished = func(res Result) {
		cfg := res.Config()
		cfg.NackDelay = 5 * time.Millisecond
		cfg.NackInterval = 5 * time.Millisecond
		var err error
		snd, err = alf.NewSender(s, ab.Send, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := snd.Send(0, res.Syntax, data); err != nil {
			t.Fatal(err)
		}
	}
	init.RetryInterval = 20 * time.Millisecond
	init.Open(Params{
		StreamID: 7,
		Syntaxes: []xcode.SyntaxID{xcode.SyntaxRaw},
		Encrypt:  true,
		FECGroup: 4,
	})
	s.Run()

	if len(got) != 1 || !bytes.Equal(got[0].Data, data) {
		t.Fatalf("negotiated stream failed: %d ADUs", len(got))
	}
	if got[0].Syntax != xcode.SyntaxRaw {
		t.Errorf("syntax = %d", got[0].Syntax)
	}
}

func TestHandleFuzzNeverPanics(t *testing.T) {
	s := sim.NewScheduler()
	i := NewInitiator(s, sim.NewRand(1), func([]byte) error { return nil })
	i.OnFail = func(error) {}
	i.Open(Params{StreamID: 1, Syntaxes: allSyntaxes()})
	r := NewResponder(s, sim.NewRand(2), func([]byte) error { return nil }, allSyntaxes())
	f := func(pkt []byte) bool {
		i.Handle(pkt)
		r.Handle(pkt)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestResponderAnswersDuplicateOfferIdentically(t *testing.T) {
	s := sim.NewScheduler()
	var replies [][]byte
	r := NewResponder(s, sim.NewRand(3), func(p []byte) error {
		replies = append(replies, append([]byte(nil), p...))
		return nil
	}, allSyntaxes())
	offer := encodeOffer(Params{StreamID: 4, Syntaxes: allSyntaxes(), Encrypt: true}, 77)
	r.Handle(offer)
	r.Handle(offer)
	r.Handle(offer)
	if len(replies) != 3 {
		t.Fatalf("replies = %d", len(replies))
	}
	if !bytes.Equal(replies[0], replies[1]) || !bytes.Equal(replies[1], replies[2]) {
		t.Error("duplicate offers answered differently (key would diverge)")
	}
}
