package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Group is a set of per-shard Schedulers that can be drained in
// parallel. It is the kernel-level half of the repository's sharded
// endpoint (§7 of the paper): instead of one global event queue
// serializing every timer in the simulation, each shard owns a private
// Scheduler — its events, timers, and pooled freelists are touched by
// exactly one goroutine at a time — and shards only interact at
// explicit barriers.
//
// Two execution regimes are offered:
//
//   - Run / RunUntil drain the shards fully independently. Use these
//     when the shards share no mutable state at all.
//   - RunEpochs alternates parallel epochs with a single-threaded
//     exchange callback: within an epoch every shard advances alone to
//     the epoch boundary; at the barrier the exchange runs with all
//     shard clocks aligned and may move work between shards. This is
//     the conservative-synchronization pattern from parallel
//     discrete-event simulation, with the epoch length playing the
//     role of lookahead.
//
// Determinism contract: the virtual-time outcome of a Group run is a
// pure function of the per-shard event schedules and the exchange
// callback. The workers argument controls only how many OS goroutines
// drain shards concurrently — it must never change results, because a
// shard's events are totally ordered by its own (time, seq) heap and
// cross-shard effects happen only in the single-threaded exchange.
type Group struct {
	shards []*Scheduler
}

// NewGroup returns a group of n independent schedulers, all with their
// clocks at zero. n must be at least 1.
func NewGroup(n int) *Group {
	if n < 1 {
		panic(fmt.Sprintf("sim: group size %d < 1", n))
	}
	g := &Group{shards: make([]*Scheduler, n)}
	for i := range g.shards {
		g.shards[i] = NewScheduler()
	}
	return g
}

// Len returns the number of shards.
func (g *Group) Len() int { return len(g.shards) }

// Shard returns shard i's scheduler. The caller may schedule onto it
// freely between runs; during a parallel run a shard's scheduler must
// only be touched from its own callbacks (or from the exchange).
func (g *Group) Shard(i int) *Scheduler { return g.shards[i] }

// Now returns the maximum shard clock. After RunUntil or a RunEpochs
// barrier all shard clocks agree, and Now is that common time.
func (g *Group) Now() Time {
	var max Time
	for _, s := range g.shards {
		if s.now > max {
			max = s.now
		}
	}
	return max
}

// Pending returns the total number of queued events across shards.
func (g *Group) Pending() int {
	total := 0
	for _, s := range g.shards {
		total += s.Pending()
	}
	return total
}

// Fired returns the total number of callbacks executed across shards.
func (g *Group) Fired() uint64 {
	var total uint64
	for _, s := range g.shards {
		total += s.Fired()
	}
	return total
}

// clampWorkers bounds the goroutine count to [1, shards], defaulting
// workers <= 0 to GOMAXPROCS.
func (g *Group) clampWorkers(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(g.shards) {
		workers = len(g.shards)
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// each drains every shard with fn, using up to workers goroutines.
// Shards are claimed via an atomic cursor (cheap work stealing), so a
// slow shard never leaves idle workers behind a static partition. The
// first non-nil error is kept; remaining shards still run so the group
// stays in a consistent, fully-drained state.
func (g *Group) each(workers int, fn func(*Scheduler) error) error {
	workers = g.clampWorkers(workers)
	if workers == 1 {
		var first error
		for _, s := range g.shards {
			if err := fn(s); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var (
		cursor atomic.Int64
		errMu  sync.Mutex
		first  error
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(g.shards) {
					return
				}
				if err := fn(g.shards[i]); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Run drains every shard to an empty queue, using up to workers
// goroutines (workers <= 0 means GOMAXPROCS). Shard clocks end at
// their own last event; use RunUntil when aligned clocks matter.
func (g *Group) Run(workers int) error {
	return g.each(workers, func(s *Scheduler) error { return s.Run() })
}

// RunUntil advances every shard to exactly deadline, firing all events
// scheduled at or before it, using up to workers goroutines.
func (g *Group) RunUntil(deadline Time, workers int) error {
	return g.each(workers, func(s *Scheduler) error { return s.RunUntil(deadline) })
}

// RunEpochs drains the group in barrier-synchronized epochs of virtual
// length epoch. Within an epoch each shard runs independently (in
// parallel, up to workers goroutines) to the epoch boundary; then
// exchange, if non-nil, is invoked single-threaded with the boundary
// time, free to inspect every shard and schedule cross-shard events at
// or after that time. The loop ends when every shard's queue is empty
// and exchange reports no further work by returning false; exchange's
// return value is ignored while shard events remain. RunEpochs returns
// the first shard error, stopping at the barrier that observed it.
func (g *Group) RunEpochs(epoch Duration, workers int, exchange func(now Time) bool) error {
	if epoch <= 0 {
		panic(fmt.Sprintf("sim: epoch %v <= 0", epoch))
	}
	for {
		deadline := g.Now().Add(epoch)
		if err := g.RunUntil(deadline, workers); err != nil {
			return err
		}
		more := false
		if exchange != nil {
			more = exchange(deadline)
		}
		if g.Pending() == 0 && !more {
			return nil
		}
	}
}
