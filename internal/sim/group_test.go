package sim

import (
	"sync/atomic"
	"testing"
)

// TestGroupRunIndependent: shards drain independently and in their own
// timestamp order, regardless of worker count.
func TestGroupRunIndependent(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		g := NewGroup(4)
		var fired [4][]Time
		for i := 0; i < g.Len(); i++ {
			i := i
			s := g.Shard(i)
			for k := 10; k > 0; k-- {
				at := Time(k * 100)
				s.At(at, func() { fired[i] = append(fired[i], s.Now()) })
			}
		}
		if err := g.Run(workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, log := range fired {
			if len(log) != 10 {
				t.Fatalf("workers=%d shard %d fired %d events", workers, i, len(log))
			}
			for k := 1; k < len(log); k++ {
				if log[k] < log[k-1] {
					t.Fatalf("workers=%d shard %d out of order: %v", workers, i, log)
				}
			}
		}
		if g.Pending() != 0 {
			t.Fatalf("workers=%d: %d events left", workers, g.Pending())
		}
	}
}

// TestGroupRunUntilAligns: after RunUntil every shard clock sits at the
// deadline even when its own events stopped earlier.
func TestGroupRunUntilAligns(t *testing.T) {
	g := NewGroup(3)
	g.Shard(0).At(50, func() {})
	g.Shard(1).At(500, func() {})
	if err := g.RunUntil(200, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Len(); i++ {
		if now := g.Shard(i).Now(); now != 200 {
			t.Fatalf("shard %d clock %v, want 200", i, now)
		}
	}
	if g.Pending() != 1 {
		t.Fatalf("pending %d, want 1 (shard 1's late event)", g.Pending())
	}
	if g.Now() != 200 {
		t.Fatalf("group now %v, want 200", g.Now())
	}
}

// TestGroupRunEpochsExchange: a ping-pong relayed through the exchange
// callback terminates, sees aligned clocks at each barrier, and visits
// the shards alternately. The exchange is the only cross-shard channel.
func TestGroupRunEpochsExchange(t *testing.T) {
	for _, workers := range []int{1, 3} {
		g := NewGroup(2)
		const hops = 5
		var relay []int // shard index pending an injected event, drained by exchange
		var visits []int
		hop := 0
		g.Shard(0).At(10, func() { visits = append(visits, 0); relay = append(relay, 1) })
		err := g.RunEpochs(100, workers, func(now Time) bool {
			for i := 0; i < g.Len(); i++ {
				if got := g.Shard(i).Now(); got != now {
					t.Fatalf("barrier at %v: shard %d clock %v", now, i, got)
				}
			}
			if len(relay) == 0 {
				return false
			}
			next := relay[0]
			relay = relay[:0]
			hop++
			if hop >= hops {
				return false
			}
			g.Shard(next).At(now.Add(10), func() {
				visits = append(visits, next)
				relay = append(relay, 1-next)
			})
			return true
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := []int{0, 1, 0, 1, 0}
		if len(visits) != len(want) {
			t.Fatalf("workers=%d: visits %v, want %v", workers, visits, want)
		}
		for i := range want {
			if visits[i] != want[i] {
				t.Fatalf("workers=%d: visits %v, want %v", workers, visits, want)
			}
		}
	}
}

// TestGroupDeterministicAcrossWorkers: a mesh of shards that trade work
// at every barrier produces a bit-identical trace for any worker count.
func TestGroupDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]int64, uint64) {
		g := NewGroup(8)
		sums := make([]int64, g.Len())
		// Seed each shard with staggered self-rescheduling counters.
		for i := 0; i < g.Len(); i++ {
			i := i
			s := g.Shard(i)
			var tick func()
			n := 0
			tick = func() {
				n++
				sums[i] += int64(n) * int64(i+1)
				if n < 20 {
					s.After(Duration(7+i), tick)
				}
			}
			s.At(Time(i), tick)
		}
		rounds := 0
		err := g.RunEpochs(50, workers, func(now Time) bool {
			rounds++
			if rounds < 4 {
				// Cross-shard injection: shard i seeds shard (i+1)%N.
				for i := 0; i < g.Len(); i++ {
					j := (i + 1) % g.Len()
					v := sums[i]
					g.Shard(j).At(now.Add(1), func() { sums[j] += v % 97 })
				}
				return true
			}
			return false
		})
		if err != nil {
			t.Fatal(err)
		}
		return sums, g.Fired()
	}
	base, baseFired := run(1)
	for _, workers := range []int{2, 4, 8} {
		got, fired := run(workers)
		if fired != baseFired {
			t.Fatalf("workers=%d fired %d, want %d", workers, fired, baseFired)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d shard %d sum %d, want %d", workers, i, got[i], base[i])
			}
		}
	}
}

// TestGroupParallelReally: with enough workers the shard callbacks can
// observe concurrent execution (two shards inside callbacks at once).
// This is best-effort — on a single-CPU host the goroutines may still
// serialize — so the test asserts only that nothing deadlocks or races
// and the work completes. Run under -race for the real check.
func TestGroupParallelReally(t *testing.T) {
	g := NewGroup(8)
	var inFlight, peak atomic.Int32
	for i := 0; i < g.Len(); i++ {
		s := g.Shard(i)
		for k := 0; k < 100; k++ {
			s.At(Time(k), func() {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				inFlight.Add(-1)
			})
		}
	}
	if err := g.Run(8); err != nil {
		t.Fatal(err)
	}
	if g.Fired() != 800 {
		t.Fatalf("fired %d, want 800", g.Fired())
	}
	t.Logf("peak concurrent shard callbacks: %d", peak.Load())
}
