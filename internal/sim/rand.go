package sim

import "math/rand"

// Rand wraps a seeded math/rand source with the convenience draws the
// network substrate needs. Every experiment creates its own Rand from an
// explicit seed, so a run is fully determined by (code, seed).
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.r.Float64() < p
}

// Intn returns a uniform int in [0,n). n must be > 0.
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (r *Rand) Int63() int64 { return r.r.Int63() }

// Uint64 returns a uniform uint64.
func (r *Rand) Uint64() uint64 { return r.r.Uint64() }

// Float64 returns a uniform float64 in [0,1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// ExpDuration returns an exponentially distributed duration with the
// given mean, useful for Poisson arrival processes.
func (r *Rand) ExpDuration(mean Duration) Duration {
	return Duration(r.r.ExpFloat64() * float64(mean))
}

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// Fill fills b with pseudo-random bytes.
func (r *Rand) Fill(b []byte) {
	// rand.Rand.Read never returns an error.
	r.r.Read(b)
}
