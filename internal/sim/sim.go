// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event scheduler, and a seeded random source.
//
// Everything on the network side of this repository (links, transports,
// applications) is written as callback state machines driven by a
// Scheduler, in the style of classic network simulators. This keeps
// experiments fast (no wall-clock sleeps) and reproducible (a seed fully
// determines the run).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is a point in virtual time, expressed as nanoseconds since the
// start of the simulation.
type Time int64

// Duration re-exports time.Duration so callers can write sim-agnostic
// arithmetic (propagation delays, timeouts) with familiar units.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the virtual time like a duration, e.g. "1.5s".
func (t Time) String() string { return Duration(t).String() }

// ErrStopped is returned by Run when the scheduler was halted by Stop
// rather than by draining its event queue.
var ErrStopped = errors.New("sim: scheduler stopped")

// Event is a scheduled callback. It is returned by the scheduling methods
// so the caller can cancel it before it fires.
type Event struct {
	at     Time
	seq    uint64 // tie-break so equal-time events fire in schedule order
	fn     func()
	call   func(any) // pooled fire-and-forget form (AtCall/AfterCall)
	arg    any
	index  int // heap index; -1 once fired or cancelled
	cancel bool
	pooled bool // recycled into the scheduler's freelist after firing
}

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancel = true
	}
}

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && !e.cancel && e.index >= 0 }

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; the intended model is that all simulation work runs
// inside event callbacks on one goroutine.
type Scheduler struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
	free    []*Event // fired pooled events awaiting reuse
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events waiting to fire (including
// cancelled events that have not yet been discarded).
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired returns the total number of callbacks executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// NextAt returns the timestamp of the earliest pending event and
// whether one exists. Cancelled events at the head of the queue are
// discarded on the way, so a false/ok answer means the queue is truly
// idle. Real-time drivers (internal/udplink) use this to sleep exactly
// until the virtual schedule needs the CPU again.
func (s *Scheduler) NextAt() (Time, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].cancel {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0].at, true
	}
	return 0, false
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it is always a logic error in a simulation.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// AtCall schedules fn(arg) at absolute virtual time t on a pooled,
// fire-and-forget event: no handle is returned (the event cannot be
// cancelled) and the Event struct is recycled after firing, so the
// steady-state datapath schedules without allocating. Unlike a closure
// passed to At, fn should be a static function with its state in arg.
func (s *Scheduler) AtCall(t Time, fn func(any), arg any) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{pooled: true}
	}
	e.at, e.seq, e.call, e.arg = t, s.seq, fn, arg
	s.seq++
	heap.Push(&s.queue, e)
}

// AfterCall is AtCall at Now+d. Negative d is treated as zero.
func (s *Scheduler) AfterCall(d Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	s.AtCall(s.now.Add(d), fn, arg)
}

// Run executes events in timestamp order until the queue drains or Stop
// is called. It returns ErrStopped in the latter case.
func (s *Scheduler) Run() error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		s.step()
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to exactly deadline. Events after the deadline remain queued.
func (s *Scheduler) RunUntil(deadline Time) error {
	s.stopped = false
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		if s.stopped {
			return ErrStopped
		}
		s.step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
	if s.stopped {
		return ErrStopped
	}
	return nil
}

// RunFor is RunUntil(Now+d).
func (s *Scheduler) RunFor(d Duration) error { return s.RunUntil(s.now.Add(d)) }

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		if s.queue[0].cancel {
			heap.Pop(&s.queue)
			continue
		}
		s.step()
		return true
	}
	return false
}

func (s *Scheduler) step() {
	e := heap.Pop(&s.queue).(*Event)
	if e.cancel {
		return
	}
	s.now = e.at
	s.fired++
	if e.pooled {
		// Recycle before invoking so the callback itself can schedule
		// into the freed struct.
		fn, arg := e.call, e.arg
		e.call, e.arg = nil, nil
		s.free = append(s.free, e)
		fn(arg)
		return
	}
	e.fn()
}

// Stop halts a Run/RunUntil in progress after the current callback
// returns. Queued events are preserved.
func (s *Scheduler) Stop() { s.stopped = true }

// Every schedules fn to run every d of virtual time, first firing at
// Now+d. fn reports whether the series should continue: returning
// false stops the recurrence and releases its event. Non-positive d
// panics — a zero-period recurring event would freeze virtual time.
//
// The recurrence owns one Event struct for its whole life (re-armed
// like a Timer), so a long-running periodic task — a telemetry
// sampling tick, say — costs no allocation per firing. Because fn
// decides continuation each firing, callers must bound the series
// (by horizon, by Pending(), or both) or it will keep the queue
// non-empty forever and starve drain loops that run until idle.
func (s *Scheduler) Every(d Duration, fn func() bool) {
	if d <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive period %v", d))
	}
	var t *Timer
	t = s.NewTimer(func() {
		if fn() {
			t.Reset(d)
		}
	})
	t.Reset(d)
}

// Timer is a restartable one-shot timer bound to a scheduler, in the
// mould of time.Timer but on virtual time. The zero value is unusable;
// create timers with NewTimer. A timer owns one Event struct for its
// whole life, so re-arming is allocation-free.
type Timer struct {
	s  *Scheduler
	ev *Event
}

// NewTimer returns a stopped timer that will invoke fn when it expires.
func (s *Scheduler) NewTimer(fn func()) *Timer {
	return &Timer{s: s, ev: &Event{fn: fn, index: -1, cancel: true}}
}

// Reset (re)arms the timer to fire d from now, cancelling any pending
// expiry. Negative d is treated as zero. The timer's event keeps its
// heap slot when still pending and is re-pushed otherwise; either way
// it takes a fresh sequence number, so ties with events scheduled at
// the same instant resolve in (re)schedule order, as with After.
func (t *Timer) Reset(d Duration) {
	if d < 0 {
		d = 0
	}
	s, e := t.s, t.ev
	e.cancel = false
	e.at = s.now.Add(d)
	e.seq = s.seq
	s.seq++
	if e.index >= 0 {
		heap.Fix(&s.queue, e.index)
	} else {
		heap.Push(&s.queue, e)
	}
}

// Stop disarms the timer. Stopping a stopped timer is a no-op.
func (t *Timer) Stop() { t.ev.Cancel() }

// Active reports whether the timer is armed.
func (t *Timer) Active() bool { return t.ev.Scheduled() }
