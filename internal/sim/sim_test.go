package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if s.Now() != Time(30*time.Millisecond) {
		t.Errorf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(5*time.Millisecond), func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of schedule order: %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(time.Second, tick)
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if s.Now() != Time(5*time.Second) {
		t.Errorf("clock = %v, want 5s", s.Now())
	}
}

func TestEventCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.After(time.Second, func() { fired = true })
	if !e.Scheduled() {
		t.Fatal("event should be scheduled")
	}
	e.Cancel()
	if e.Scheduled() {
		t.Fatal("cancelled event reports scheduled")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	// Double-cancel and nil-cancel must not panic.
	e.Cancel()
	var nilEv *Event
	nilEv.Cancel()
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(3*time.Second, func() { got = append(got, 3) })
	if err := s.RunUntil(Time(2 * time.Second)); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
	if s.Now() != Time(2*time.Second) {
		t.Errorf("clock = %v, want 2s (advanced to deadline)", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("second event did not fire: %v", got)
	}
}

func TestRunForAccumulates(t *testing.T) {
	s := NewScheduler()
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if s.Now() != Time(2*time.Second) {
		t.Errorf("clock = %v, want 2s", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	ran := 0
	s.After(time.Second, func() { ran++; s.Stop() })
	s.After(2*time.Second, func() { ran++ })
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	// Resuming runs the remaining event.
	if err := s.Run(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if ran != 2 {
		t.Errorf("ran = %d, want 2 after resume", ran)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewScheduler()
	s.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestNegativeAfterClamped(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Error("negative-delay event did not fire")
	}
	if s.Now() != 0 {
		t.Errorf("clock = %v, want 0", s.Now())
	}
}

func TestStep(t *testing.T) {
	s := NewScheduler()
	a := s.After(time.Second, func() {})
	s.After(2*time.Second, func() {})
	a.Cancel()
	if !s.Step() {
		t.Fatal("Step should run the surviving event")
	}
	if s.Now() != Time(2*time.Second) {
		t.Errorf("clock = %v, want 2s (skipped cancelled event)", s.Now())
	}
	if s.Step() {
		t.Error("Step on empty queue reported work")
	}
}

func TestTimer(t *testing.T) {
	s := NewScheduler()
	fired := 0
	tm := s.NewTimer(func() { fired++ })
	if tm.Active() {
		t.Fatal("new timer active")
	}
	tm.Reset(time.Second)
	tm.Reset(2 * time.Second) // re-arm must cancel the first expiry
	if !tm.Active() {
		t.Fatal("armed timer inactive")
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != Time(2*time.Second) {
		t.Errorf("clock = %v, want 2s", s.Now())
	}
	tm.Reset(time.Second)
	tm.Stop()
	s.Run()
	if fired != 1 {
		t.Errorf("stopped timer fired (count %d)", fired)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(0).Add(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", tm.Seconds())
	}
	if tm.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Errorf("Sub wrong: %v", tm.Sub(Time(time.Second)))
	}
	if tm.String() != "1.5s" {
		t.Errorf("String = %q", tm.String())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRand(42).Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandBernoulli(t *testing.T) {
	r := NewRand(1)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) = true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) = false")
	}
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			n++
		}
	}
	frac := float64(n) / trials
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bernoulli(0.3) rate = %v, want ~0.3", frac)
	}
}

func TestRandExpDuration(t *testing.T) {
	r := NewRand(7)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := r.ExpDuration(time.Millisecond)
		if d < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += d
	}
	mean := sum / n
	if mean < 900*time.Microsecond || mean > 1100*time.Microsecond {
		t.Errorf("mean = %v, want ~1ms", mean)
	}
}

func TestRandFill(t *testing.T) {
	r := NewRand(9)
	b := make([]byte, 64)
	r.Fill(b)
	zero := 0
	for _, x := range b {
		if x == 0 {
			zero++
		}
	}
	if zero == len(b) {
		t.Error("Fill produced all zeros")
	}
}

func TestSchedulerFiresInTimestampOrderProperty(t *testing.T) {
	// Any multiset of event times must fire in nondecreasing order.
	f := func(delays []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, d := range delays {
			s.After(time.Duration(d)*time.Microsecond, func() {
				fired = append(fired, s.Now())
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSchedulerClockNeverRegresses(t *testing.T) {
	// Even with nested scheduling from inside callbacks, Now() is
	// monotone.
	s := NewScheduler()
	prev := Time(0)
	violated := false
	var spawn func(depth int)
	r := NewRand(5)
	spawn = func(depth int) {
		if s.Now() < prev {
			violated = true
		}
		prev = s.Now()
		if depth < 4 {
			for i := 0; i < 3; i++ {
				d := time.Duration(r.Intn(1000)) * time.Microsecond
				s.After(d, func() { spawn(depth + 1) })
			}
		}
	}
	spawn(0)
	s.Run()
	if violated {
		t.Error("clock regressed")
	}
}

func TestAtCallOrderingWithAt(t *testing.T) {
	// Pooled and closure events scheduled at the same instant fire in
	// schedule order, preserving determinism across the two forms.
	s := NewScheduler()
	var got []int
	rec := func(arg any) { got = append(got, arg.(int)) }
	s.AtCall(Time(time.Millisecond), rec, 0)
	s.At(Time(time.Millisecond), func() { got = append(got, 1) })
	s.AtCall(Time(time.Millisecond), rec, 2)
	s.AfterCall(time.Millisecond, rec, 3)
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("fire order %v, want [0 1 2 3]", got)
		}
	}
}

func TestAtCallRecyclesEvents(t *testing.T) {
	s := NewScheduler()
	fn := func(any) {}
	s.AtCall(0, fn, nil)
	s.Run()
	if len(s.free) != 1 {
		t.Fatalf("free = %d, want 1", len(s.free))
	}
	// Steady state: schedule+fire from the freelist allocates nothing.
	allocs := testing.AllocsPerRun(1000, func() {
		s.AtCall(s.Now(), fn, nil)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("pooled schedule/fire allocates %.1f/op", allocs)
	}
}

func TestAtCallNestedFromCallback(t *testing.T) {
	// A pooled callback may schedule again, reusing the struct that was
	// recycled just before it was invoked.
	s := NewScheduler()
	count := 0
	var tick func(any)
	tick = func(arg any) {
		count++
		if n := arg.(int); n > 0 {
			s.AfterCall(time.Second, tick, n-1)
		}
	}
	s.AfterCall(time.Second, tick, 4)
	s.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if s.Now() != Time(5*time.Second) {
		t.Errorf("clock = %v, want 5s", s.Now())
	}
}

func TestTimerResetReusesEvent(t *testing.T) {
	s := NewScheduler()
	fired := 0
	tm := s.NewTimer(func() { fired++ })
	tm.Reset(time.Second)
	ev := tm.ev
	s.Run()
	// Re-arm after expiry, after Stop, and while pending: always the
	// same struct, never an allocation.
	tm.Reset(time.Second)
	tm.Stop()
	tm.Reset(time.Second)
	tm.Reset(2 * time.Second)
	if tm.ev != ev {
		t.Error("Reset replaced the timer's event struct")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Reset(time.Second)
	})
	if allocs != 0 {
		t.Errorf("Timer.Reset allocates %.1f/op", allocs)
	}
	tm.Stop()
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
}

func TestTimerResetWhilePendingKeepsOrder(t *testing.T) {
	// A re-armed pending timer fires at its new time, ordered by its new
	// sequence number among same-instant events.
	s := NewScheduler()
	var got []string
	tm := s.NewTimer(func() { got = append(got, "timer") })
	tm.Reset(3 * time.Second)
	s.After(time.Second, func() {
		tm.Reset(time.Second) // move expiry earlier, to t=2s
		s.After(time.Second, func() { got = append(got, "after") })
	})
	s.Run()
	if len(got) != 2 || got[0] != "timer" || got[1] != "after" {
		t.Fatalf("fire order %v, want [timer after]", got)
	}
	if s.Now() != Time(2*time.Second) {
		t.Errorf("clock = %v, want 2s", s.Now())
	}
}

func TestEvery(t *testing.T) {
	// The recurrence fires at d, 2d, 3d, ... and stops the first time fn
	// returns false, leaving the queue drainable.
	s := NewScheduler()
	var at []Time
	s.Every(time.Second, func() bool {
		at = append(at, s.Now())
		return len(at) < 3
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(time.Second), Time(2 * time.Second), Time(3 * time.Second)}
	if len(at) != len(want) {
		t.Fatalf("fired %d times, want %d", len(at), len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("firing %d at %v, want %v", i, at[i], want[i])
		}
	}
	if s.Pending() != 0 {
		t.Errorf("queue not drained: %d pending", s.Pending())
	}
}

func TestEveryDoesNotAllocatePerFiring(t *testing.T) {
	// One Event struct serves the whole series: re-arming is free.
	s := NewScheduler()
	n := 0
	s.Every(time.Millisecond, func() bool {
		n++
		return n < 1000
	})
	allocs := testing.AllocsPerRun(1, func() {
		for s.Step() {
		}
	})
	if allocs != 0 {
		t.Errorf("Every allocates %.1f/op across firings", allocs)
	}
}

func TestEveryPanicsOnNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewScheduler().Every(0, func() bool { return false })
}
